// Use case #3 (paper §8.3.3): hash polarization mitigation.
//
// The ECMP hash inputs are malleable fields (each shiftable among header
// alternatives); the field_list usage triggers the compiler's load strategy
// (§4.1's read optimization) so the alternatives are not enumerated into
// field_lists. The reaction polls per-egress packet counters, computes the
// Median Absolute Deviation of port loads, and when the imbalance persists
// shifts the hash inputs to the next configuration.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace mantis::apps {

std::string hash_polarization_p4r_source();

/// Fabric variant: ECMP spreads over `ecmp_ports` ports (the switch's
/// switch-facing uplinks, ports 0..ecmp_ports-1) and an exact `route` table
/// applied *after* the ECMP stage overrides the egress for locally attached
/// destinations (hosts / downlinks). Same malleable hash inputs and
/// `hp_react` reaction as the single-switch program.
std::string hash_polarization_fabric_p4r_source(int ecmp_ports);

struct HashPolConfig {
  int num_ports = 8;
  /// MAD/mean ratio above which the load is considered imbalanced.
  double imbalance_ratio = 0.25;
  /// Consecutive imbalanced iterations before shifting.
  int persistence = 3;
  /// Hash-input configurations to cycle through, as (h_src, h_dst, h_l4)
  /// selector triples.
  std::vector<std::array<std::uint64_t, 3>> configs = {
      {0, 0, 0}, {1, 0, 1}, {0, 1, 1}, {1, 1, 0}};
};

struct HashPolState {
  HashPolConfig cfg;
  std::vector<std::uint64_t> last_counts;
  int imbalanced_streak = 0;
  std::size_t current_config = 0;
  std::uint64_t shifts = 0;
  std::function<void(std::size_t, Time)> on_shift;

  /// MAD/mean of the last window (for tests/benches).
  double last_ratio = 0.0;
};

agent::Agent::NativeFn make_hash_pol_reaction(std::shared_ptr<HashPolState> state);

}  // namespace mantis::apps
