#include "apps/int_gray_localization.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace mantis::apps {

namespace {

std::pair<int, int> canonical_link(int a, int b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// A probe report's path key, or nullopt for non-probe reports.
std::optional<std::array<int, 3>> probe_path_of(const int_tel::IntReport& r) {
  if (r.proto != 254 || r.hops.size() < 3) return std::nullopt;
  if (r.hops.front().ingress_port != int_tel::kSyntheticIngress) {
    return std::nullopt;
  }
  return std::array<int, 3>{static_cast<int>(r.hops[0].switch_id),
                            static_cast<int>(r.hops[1].switch_id),
                            static_cast<int>(r.hops.back().switch_id)};
}

void run_tomography(IntGrayState& st, agent::ReactionContext& ctx) {
  for (const auto* rep : st.collector->poll(st.cursor)) {
    const auto key = probe_path_of(*rep);
    if (!key.has_value()) continue;
    auto& ps = st.path_stats[*key];
    if (ps.last_seq >= 0 && static_cast<std::int64_t>(rep->seq) > ps.last_seq) {
      ps.missed += static_cast<std::uint64_t>(rep->seq) -
                   static_cast<std::uint64_t>(ps.last_seq) - 1;
    }
    ps.last_seq = rep->seq;
    ++ps.received;
  }

  if (st.window_start < 0) {
    st.window_start = ctx.now();
    return;
  }
  const Duration window =
      static_cast<Duration>(st.cfg.min_probes) * st.cfg.probe_period;
  const Duration elapsed = ctx.now() - st.window_start;
  if (elapsed < window) return;

  // Pooled per-link loss: every path's (missed, received) counts toward both
  // of its links; a silent path (no report all window) is charged its
  // expected probe count as missed. Pooling beats binary path voting under
  // *partial* loss, where per-path samples are too noisy to threshold.
  std::map<std::pair<int, int>, std::pair<std::uint64_t, std::uint64_t>>
      link_mr;  // link -> (missed, received)
  for (const auto& path : st.paths) {
    const auto l1 = canonical_link(path.src, path.via);
    const auto l2 = canonical_link(path.via, path.dst);
    const std::array<int, 3> key{path.src, path.via, path.dst};
    auto& ps = st.path_stats[key];
    std::uint64_t missed = ps.missed;
    std::uint64_t received = ps.received;
    ps.missed = 0;
    ps.received = 0;
    // Paths crossing an already-localized link are explained; counting them
    // would keep indicting the down link's healthy neighbours.
    if (st.down_links.count(l1) != 0 || st.down_links.count(l2) != 0) {
      continue;
    }
    if (received == 0) {
      missed = static_cast<std::uint64_t>(elapsed / st.cfg.probe_period);
    }
    link_mr[l1].first += missed;
    link_mr[l1].second += received;
    link_mr[l2].first += missed;
    link_mr[l2].second += received;
  }

  // Single-culprit election (single-fault-at-a-time bias, like binary
  // tomography): only the lossiest link accrues streak; a fault elsewhere
  // becomes visible once this one is localized and its paths excluded.
  std::pair<int, int> worst{-1, -1};
  double worst_loss = 0.0;
  for (const auto& [link, mr] : link_mr) {
    const std::uint64_t total = mr.first + mr.second;
    if (total == 0) continue;
    const double loss =
        static_cast<double>(mr.first) / static_cast<double>(total);
    if (loss > worst_loss) {
      worst_loss = loss;
      worst = link;
    }
  }
  const bool indicted = worst.first >= 0 && worst_loss >= st.cfg.loss_threshold;
  for (auto& [link, streak] : st.suspect_streak) {
    if (!indicted || link != worst) streak = 0;
  }
  if (indicted) {
    auto& streak = st.suspect_streak[worst];
    ++streak;
    if (streak >= st.cfg.consecutive_required &&
        st.down_links.count(worst) == 0) {
      st.down_links.insert(worst);
      st.suspect_streak.clear();
      ++st.epoch;
      if (st.on_localize) st.on_localize(worst.first, worst.second, ctx.now());
    }
  }
  st.window_start = ctx.now();
}

}  // namespace

std::vector<bool> IntGrayState::port_down_for(net::NodeId self) const {
  std::vector<bool> down;
  for (const auto& link : down_links) {
    net::NodeId peer = -1;
    if (link.first == self) {
      peer = link.second;
    } else if (link.second == self) {
      peer = link.first;
    } else {
      continue;
    }
    const int li = topo.link_between(self, peer);
    if (li < 0) continue;
    const auto& l = topo.links[static_cast<std::size_t>(li)];
    const int port = l.a == self ? l.port_a : l.port_b;
    if (static_cast<std::size_t>(port) >= down.size()) {
      down.resize(static_cast<std::size_t>(port) + 1, false);
    }
    down[static_cast<std::size_t>(port)] = true;
  }
  return down;
}

void IntGrayState::install_initial_routes(net::NodeId self,
                                          agent::ReactionContext& ctx) {
  auto& rs = routes[self];
  const auto computed = topo.compute_routes_from(self, {});
  for (const auto& [addr, port] : computed) {
    expects(port >= 0, "IntGrayState: unreachable destination");
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
    spec.action = "set_egress";
    spec.action_args = {static_cast<std::uint64_t>(port)};
    rs.ids[addr] = ctx.add_entry("route", spec);
    rs.current_port[addr] = port;
  }
}

agent::Agent::NativeFn make_int_gray_reaction(
    std::shared_ptr<IntGrayState> state, net::NodeId self) {
  expects(state != nullptr, "make_int_gray_reaction: null state");
  return [state, self](agent::ReactionContext& ctx) {
    auto& st = *state;
    if (self == st.analyzer_node && st.collector != nullptr) {
      run_tomography(st, ctx);
    }

    // Route sync: any instance whose mirror lags the localization epoch
    // recomputes around the down links (its own attached ports only; every
    // endpoint switch of a down link steers off it, which reroutes the
    // fabric hop-by-hop).
    auto& rs = st.routes[self];
    if (rs.epoch_seen == st.epoch) return;
    rs.epoch_seen = st.epoch;
    const auto computed =
        st.topo.compute_routes_from(self, st.port_down_for(self));
    bool changed = false;
    for (const auto& [addr, port] : computed) {
      auto cur = rs.current_port.find(addr);
      if (cur == rs.current_port.end() || cur->second == port) continue;
      if (port < 0) {
        ctx.mod_entry("route", rs.ids.at(addr), "_drop", {});
      } else {
        ctx.mod_entry("route", rs.ids.at(addr), "set_egress",
                      {static_cast<std::uint64_t>(port)});
      }
      cur->second = port;
      changed = true;
    }
    if (changed && st.on_routes_installed) st.on_routes_installed(self, ctx.now());
  };
}

}  // namespace mantis::apps
