// Example: reinforcement learning over the reaction loop (use case #4,
// §8.3.4). The DCTCP ECN marking threshold is a malleable value; the
// reaction runs epsilon-greedy tabular Q-learning over (utilization, queue
// depth) states, rewarded for utilization minus queue length, while DCTCP
// flows respond to the marks.
//
//   $ ./example_rl_dctcp
#include <cstdio>
#include <memory>
#include <vector>

#include "agent/agent.hpp"
#include "apps/rl_dctcp.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "sim/switch.hpp"
#include "workload/fluid_tcp.hpp"

int main() {
  using namespace mantis;

  const auto artifacts = compile::compile_source(apps::rl_dctcp_p4r_source());
  sim::EventLoop loop;
  sim::SwitchConfig cfg;
  cfg.port_gbps = 10.0;
  cfg.queue_capacity_bytes = 200 * 1500;
  sim::Switch sw(loop, artifacts.prog, cfg);
  driver::Driver drv(sw);
  agent::Agent agent(drv, artifacts);

  auto state = std::make_shared<apps::RlState>();
  state->cfg.link_gbps = 10.0;
  state->cfg.epsilon = 0.1;
  state->cfg.step_interval = 200 * kMicrosecond;  // one RL step per ~20 loops
  agent.set_native_reaction("rl_react", apps::make_rl_reaction(state));
  agent.run_prologue();

  // DCTCP senders toward the bottleneck.
  const Time horizon = 80 * kMillisecond;
  std::vector<std::unique_ptr<workload::FluidTcpFlow>> flows;
  for (int i = 0; i < 8; ++i) {
    workload::FluidTcpConfig fc;
    fc.src_ip = 0x0a000200 + static_cast<std::uint32_t>(i);
    fc.dst_ip = 0xc0a80000;
    fc.in_port = 2 + i;
    fc.init_rate_gbps = 0.5;
    fc.max_rate_gbps = 3.0;
    fc.additive_gbps = 0.1;
    fc.rtt = 200 * kMicrosecond;
    fc.dctcp = true;
    fc.seed = 900 + static_cast<std::uint64_t>(i);
    flows.push_back(std::make_unique<workload::FluidTcpFlow>(sw, fc));
  }
  sw.set_on_transmit([&](const sim::Packet& pkt, int, Time) {
    for (auto& f : flows) f->on_transmit(pkt);
  });
  // The route table default forwards to port 1 (the bottleneck).
  for (auto& f : flows) f->start(horizon);

  std::printf("RL steps (reward = utilization - queue penalty):\n");
  double window_reward = 0;
  int window_n = 0;
  state->on_step = [&](int action, double reward) {
    window_reward += reward;
    if (++window_n == 40) {
      std::printf("  steps %4llu..%4llu: avg reward %+.3f, current threshold %llu pkts\n",
                  static_cast<unsigned long long>(state->steps - 39),
                  static_cast<unsigned long long>(state->steps),
                  window_reward / window_n,
                  static_cast<unsigned long long>(
                      state->cfg.thresholds[static_cast<std::size_t>(action)]));
      window_reward = 0;
      window_n = 0;
    }
  };

  agent.run_dialogue_until(horizon);
  loop.run();

  const auto& hist = state->reward_history;
  const std::size_t q = hist.size() / 4;
  double early = 0, late = 0;
  for (std::size_t i = 0; i < q; ++i) early += hist[i];
  for (std::size_t i = hist.size() - q; i < hist.size(); ++i) late += hist[i];
  std::printf("\nRL steps: %llu; avg reward first quartile %+.3f -> last "
              "quartile %+.3f\n",
              static_cast<unsigned long long>(state->steps), early / q, late / q);
  std::printf("learned ECN threshold now: %llu packets\n",
              static_cast<unsigned long long>(agent.scalar("ecn_thresh")));
  return 0;
}
