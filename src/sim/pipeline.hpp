// One match-action pipeline (ingress or egress): walks the program's control
// block, looks up tables, and executes the winning actions on the packet.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "p4/ir.hpp"
#include "sim/action_exec.hpp"
#include "sim/table_state.hpp"

namespace mantis::telemetry {
class ProvenanceContext;
}

namespace mantis::sim {

class Pipeline {
 public:
  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t table_hits = 0;
    std::uint64_t table_misses = 0;
  };

  /// `tables` must outlive the pipeline and contain every table the control
  /// block applies. `prov`, when set, gets the provenance stamp of every
  /// winning rule (first-effect detection).
  Pipeline(const p4::Program& prog, const p4::ControlBlock& block,
           std::unordered_map<std::string, TableState>& tables,
           RegisterFile& regs, telemetry::ProvenanceContext* prov = nullptr);

  /// Runs the control block over the packet. Matches RMT semantics: a drop
  /// marks the packet but the remaining stages still execute.
  void process(Packet& pkt);

  const Stats& stats() const { return stats_; }

 private:
  const p4::Program* prog_;
  const p4::ControlBlock* block_;
  std::unordered_map<std::string, TableState>* tables_;
  ActionExecutor exec_;
  telemetry::ProvenanceContext* prov_;
  Stats stats_;

  void run_nodes(const std::vector<p4::ControlNode>& nodes, Packet& pkt);
};

}  // namespace mantis::sim
