// Figure 15: aggregate throughput of legitimate flows around a DoS flood.
//
// 250 AIMD flows (S_1..S_250) utilize ~20% of a 10 Gbps bottleneck toward D.
// At t_attack, S_0 blasts UDP at 25 Gbps. The Mantis DoS reaction detects the
// hostile sender from its estimated rate and installs a drop rule through the
// serializable update protocol; the paper observes the rule ~100us after the
// first hostile packet and benign recovery within ~500us.
#include "apps/dos_mitigation.hpp"
#include "baseline/legacy_controller.hpp"
#include "bench_util.hpp"
#include "workload/fluid_tcp.hpp"
#include "workload/udp_flood.hpp"

namespace {

using namespace mantis;

/// The comparison point: a traditional control plane that polls the raw
/// total-byte counter and last-seen source every 10ms (OpenFlow-style
/// cadence) and installs the drop rule through ordinary driver calls.
/// Returns the mitigation delay after the first hostile packet.
Duration run_traditional_defense() {
  sim::SwitchConfig sw_cfg;
  sw_cfg.port_gbps = 10.0;
  sw_cfg.queue_capacity_bytes = 150 * 1500;
  bench::Stack stack(apps::dos_p4r_source(), sw_cfg);
  stack.agent->run_prologue(
      [&](agent::ReactionContext& ctx) { apps::install_dos_routes(ctx, 1); });
  // No dialogue loop: only the slow poller reacts.

  workload::UdpFloodConfig atk;
  atk.src_ip = 0x0a0000aa;
  atk.dst_ip = 0xc0a80000;
  atk.in_port = 30;
  atk.rate_gbps = 25.0;
  atk.start_at = 10 * kMillisecond;
  workload::UdpFloodSource flood(*stack.sw, atk);
  const Time horizon = 120 * kMillisecond;
  flood.start(horizon);

  // The traditional poller reads the raw counter + the last-seen source
  // register (no isolation) and applies the same 1 Gbps/100us policy.
  Time blocked_at = -1;
  std::uint64_t last_total = 0;
  std::map<std::uint32_t, std::pair<Time, std::uint64_t>> flows;
  baseline::SlowPollerConfig cfg;
  cfg.reg = "total_bytes_r";
  cfg.lo = 0;
  cfg.hi = 0;
  cfg.period = 10 * kMillisecond;
  baseline::SlowPoller poller(
      *stack.drv, cfg,
      [&](Time now, const std::vector<std::uint64_t>& values) {
        if (blocked_at >= 0) return;
        const std::uint64_t total = values[0];
        const std::uint64_t delta = total - last_total;
        last_total = total;
        // Raw (unisolated) read of the last-seen source.
        const auto* rinfo = stack.artifacts.bindings.find_reaction("dos_react");
        const auto src = static_cast<std::uint32_t>(
            stack.sw->registers().read(rinfo->measure_regs[0], 0));
        if (src == 0) return;
        auto& [first_seen, bytes] = flows[src];
        if (first_seen == 0) first_seen = now;
        bytes += delta;
        const double age_us = to_us(now - first_seen);
        if (age_us > 100 &&
            static_cast<double>(bytes) * 8.0 / (age_us * 1000.0) > 1.0) {
          auto ctx = stack.agent->management_context();
          p4::EntrySpec spec;
          spec.key = {{src, ~std::uint64_t{0}}};
          spec.action = "_drop";
          ctx.add_entry("block", spec);
          blocked_at = stack.sw->loop().now();
        }
      });
  poller.start(horizon);
  stack.loop.run();
  return blocked_at < 0 ? -1 : blocked_at - flood.first_packet_at();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mantis;

  bench::Report report("fig15_dos", argc, argv);
  report.params().set("legit_flows", std::int64_t{250});
  report.params().set("attack_gbps", 25.0);
  sim::SwitchConfig sw_cfg;
  sw_cfg.num_ports = 32;
  sw_cfg.port_gbps = 10.0;  // the bottleneck link toward D is port 1
  sw_cfg.queue_capacity_bytes = 150 * 1500;
  bench::Stack stack(apps::dos_p4r_source(), sw_cfg);

  auto state = std::make_shared<apps::DosState>();
  apps::DosConfig dos_cfg;
  dos_cfg.block_threshold_gbps = 1.0;
  dos_cfg.min_age_us = 100;
  Time blocked_at = -1;
  std::uint32_t blocked_src = 0;
  state->on_block = [&](std::uint32_t src, Time t) {
    if (blocked_at < 0) {
      blocked_at = t;
      blocked_src = src;
    }
  };
  stack.agent->set_native_reaction("dos_react",
                                   apps::make_dos_reaction(state, dos_cfg));
  stack.agent->run_prologue(
      [&](agent::ReactionContext& ctx) { apps::install_dos_routes(ctx, 1); });

  // 250 legitimate AIMD flows at ~8 Mbps each (~20% of 10G aggregate).
  constexpr int kFlows = 250;
  std::vector<std::unique_ptr<workload::FluidTcpFlow>> flows;
  const Time horizon = 30 * kMillisecond;
  for (int i = 0; i < kFlows; ++i) {
    workload::FluidTcpConfig cfg;
    cfg.src_ip = 0x0a000100 + static_cast<std::uint32_t>(i);
    cfg.dst_ip = 0xc0a80000;  // D, routed to port 1
    cfg.in_port = 2 + (i % 24);
    cfg.init_rate_gbps = 0.008;
    cfg.min_rate_gbps = 0.002;
    cfg.max_rate_gbps = 0.012;  // application-limited, like the paper's flows
    cfg.additive_gbps = 0.002;
    cfg.rtt = 100 * kMicrosecond;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    flows.push_back(std::make_unique<workload::FluidTcpFlow>(*stack.sw, cfg));
  }

  // Per-100us goodput bins for the timeline.
  const Duration bin = 100 * kMicrosecond;
  std::vector<std::uint64_t> legit_bytes(
      static_cast<std::size_t>(horizon / bin) + 2, 0);
  stack.sw->set_on_transmit([&](const sim::Packet& pkt, int port, Time t) {
    for (auto& f : flows) f->on_transmit(pkt);
    if (port != 1) return;
    const auto src = stack.sw->factory().get(pkt, "ipv4.srcAddr");
    const auto slot = static_cast<std::size_t>(t / bin);
    if (src >= 0x0a000100 && src < 0x0a000100 + kFlows &&
        slot < legit_bytes.size()) {
      legit_bytes[slot] += pkt.length_bytes();
    }
  });
  // Stagger flow starts across the first 2ms (they are independent senders,
  // not a synchronized burst).
  Rng start_rng(7);
  const Time base = stack.loop.now();
  for (auto& f : flows) {
    const Time at =
        base + static_cast<Time>(start_rng.uniform(2000)) * kMicrosecond;
    stack.loop.schedule_at(at, [&f, horizon] { f->start(horizon); });
  }

  // The attacker: 25 Gbps UDP starting at t = 10ms.
  workload::UdpFloodConfig atk;
  atk.src_ip = 0x0a0000aa;
  atk.dst_ip = 0xc0a80000;
  atk.in_port = 30;
  atk.rate_gbps = 25.0;
  atk.start_at = 10 * kMillisecond;
  workload::UdpFloodSource flood(*stack.sw, atk);
  flood.start(horizon);

  stack.agent->run_dialogue_until(horizon);
  stack.loop.run();

  bench::print_header("Figure 15: aggregate legitimate goodput timeline");
  bench::print_row({"t_ms", "legit_gbps"});
  for (std::size_t b = 0; b < legit_bytes.size(); ++b) {
    const double gbps = static_cast<double>(legit_bytes[b]) * 8.0 /
                        static_cast<double>(bin);
    // Print a decimated timeline plus full resolution around the attack.
    const Time t = static_cast<Time>(b) * bin;
    const bool dense = t >= 9500 * kMicrosecond && t <= 13 * kMillisecond;
    if (dense || b % 10 == 0) {
      bench::print_row({bench::fmt(to_ms(t), 2), bench::fmt(gbps, 3)});
    }
  }

  bench::print_header("mitigation summary");
  std::printf("first hostile packet at: %.3f ms\n", to_ms(flood.first_packet_at()));
  report.set("first_hostile_ms", to_ms(flood.first_packet_at()));
  if (blocked_at >= 0) {
    std::printf("drop rule buffered at:   %.3f ms (src 0x%x)\n",
                to_ms(blocked_at), blocked_src);
    std::printf("detection-to-rule time:  %.1f us (paper: ~100 us)\n",
                to_us(blocked_at - flood.first_packet_at()));
    report.set("mantis_mitigation_us",
               to_us(blocked_at - flood.first_packet_at()));
  } else {
    std::printf("ATTACKER NEVER BLOCKED\n");
  }
  std::printf("attacker packets sent: %llu\n",
              static_cast<unsigned long long>(flood.sent()));
  report.count("attacker_pkts", flood.sent());

  const Duration traditional = run_traditional_defense();
  if (traditional >= 0) report.set("traditional_mitigation_ms", to_ms(traditional));
  if (traditional >= 0) {
    std::printf(
        "\ntraditional control plane (10ms polls): mitigation after %.1f ms\n"
        "-> Mantis reacts ~%.0fx faster (paper: orders of magnitude, cf. "
        "Poseidon)\n",
        to_ms(traditional),
        blocked_at >= 0 ? static_cast<double>(traditional) /
                              static_cast<double>(blocked_at -
                                                  flood.first_packet_at())
                        : 0.0);
  } else {
    std::printf("\ntraditional control plane: attacker NEVER blocked within "
                "the horizon\n");
  }
  report.write();
  return 0;
}
