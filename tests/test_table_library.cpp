// The generated table library as seen from interpreted reactions
// (paper §4: "users can interact directly via a set of automatically
// generated library functions, e.g., table_var.addEntry(...)"), plus
// runtime coverage of the remaining match kinds and egress control flow.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

const char* kLibrarySrc = R"P4R(
header_type h_t { fields { k : 16; tag : 16; } }
header h_t h;

action mark(v) { modify_field(h.tag, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }

malleable table acl {
  reads { h.k : exact; }
  actions { mark; _drop; }
  size : 32;
}
table o { actions { fwd; } default_action : fwd(1); size : 1; }

control ingress { apply(acl); apply(o); }
control egress { }

// Drives the full table library from interpreted C. Each iteration performs
// the step indicated by the static counter, reporting state via log().
reaction driver_rx() {
  static int step = 0;
  step = step + 1;
  if (step == 1) {
    acl.addEntry("mark", 7, 100);
    log(acl.entryCount());
  }
  if (step == 2) {
    log(acl.hasEntry(7));
    acl.modEntry("mark", 7, 200);
  }
  if (step == 3) {
    acl.addEntry("_drop", 9);
    log(acl.entryCount());
  }
  if (step == 4) {
    acl.delEntry(7);
    log(acl.hasEntry(7));
  }
  if (step == 5) {
    acl.setDefault("mark", 55);
  }
}
)P4R";

TEST(TableLibrary, FullLifecycleFromInterpretedReaction) {
  Stack stack(kLibrarySrc);
  std::vector<std::int64_t> logs;
  stack.agent->set_log_hook(
      [&](const std::string&, std::int64_t v) { logs.push_back(v); });
  stack.agent->run_prologue();

  auto probe_tag = [&](std::uint64_t k) {
    std::uint64_t tag = kFull;
    bool dropped = true;
    stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
      tag = stack.sw->factory().get(pkt, "h.tag");
      dropped = false;
    });
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.k", k);
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    return dropped ? kFull : tag;
  };

  // step 1: add (mark 100)
  stack.agent->dialogue_iteration();
  EXPECT_EQ(probe_tag(7), 100u);
  // step 2: modify (mark 200)
  stack.agent->dialogue_iteration();
  EXPECT_EQ(probe_tag(7), 200u);
  // step 3: second entry drops k=9
  stack.agent->dialogue_iteration();
  EXPECT_EQ(probe_tag(9), kFull);
  EXPECT_EQ(probe_tag(7), 200u);
  // step 4: delete k=7 -> falls to default (no mark)
  stack.agent->dialogue_iteration();
  EXPECT_EQ(probe_tag(7), 0u);
  // step 5: default action now marks 55
  stack.agent->dialogue_iteration();
  EXPECT_EQ(probe_tag(123), 55u);

  EXPECT_EQ(logs, (std::vector<std::int64_t>{1, 1, 2, 0}));
}

TEST(TableLibrary, BadCallsSurfaceAsUserError) {
  struct Case {
    const char* body;
  };
  const Case cases[] = {
      {"acl.addEntry(7, 1);"},            // missing action string
      {"acl.addEntry(\"mark\", 7);"},     // missing action arg
      {"acl.delEntry(99);"},              // no such entry
      {"acl.modEntry(\"mark\", 99, 1);"}, // no such entry
      {"acl.explode(1);"},                // unknown method
      {"ghost.addEntry(\"mark\", 1, 2);"},  // unknown table
  };
  for (const auto& c : cases) {
    std::string src(kLibrarySrc);
    const auto pos = src.find("static int step = 0;");
    ASSERT_NE(pos, std::string::npos);
    src = src.substr(0, pos) + c.body + "\nreturn;\n" + src.substr(pos);
    Stack stack(src);
    stack.agent->run_prologue();
    EXPECT_THROW(stack.agent->dialogue_iteration(), UserError) << c.body;
  }
}

TEST(MatchKinds, ValidMatchesPreParsedHeaders) {
  Stack stack(R"P4R(
header_type h_t { fields { k : 8; tag : 8; } }
header h_t h;
action mark(v) { modify_field(h.tag, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table t { reads { h.k : valid; } actions { mark; } size : 4; }
table o { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(t); apply(o); }
control egress { }
)P4R");
  // valid == 1 matches every packet in the pre-parsed model.
  p4::EntrySpec spec;
  spec.key = {{1, kFull}};
  spec.action = "mark";
  spec.action_args = {9};
  stack.sw->table("t").add_entry(spec);
  std::uint64_t tag = 0;
  stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
    tag = stack.sw->factory().get(pkt, "h.tag");
  });
  stack.sw->inject(stack.sw->factory().make(), 0);
  stack.loop.run();
  EXPECT_EQ(tag, 9u);
}

TEST(ControlFlow, EgressConditionalRuns) {
  Stack stack(R"P4R(
header_type h_t { fields { k : 8; tag : 8; } }
header h_t h;
action mark(v) { modify_field(h.tag, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table o { actions { fwd; } default_action : fwd(1); size : 1; }
table small { actions { mark; } default_action : mark(1); size : 1; }
table large { actions { mark; } default_action : mark(2); size : 1; }
control ingress { apply(o); }
control egress {
  if (h.k >= 10) { apply(large); } else { apply(small); }
}
)P4R");
  auto tag_for = [&](std::uint64_t k) {
    std::uint64_t tag = 0;
    stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
      tag = stack.sw->factory().get(pkt, "h.tag");
    });
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.k", k);
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    return tag;
  };
  EXPECT_EQ(tag_for(3), 1u);
  EXPECT_EQ(tag_for(10), 2u);
  EXPECT_EQ(tag_for(255), 2u);
}

TEST(AblationPaths, NoBatchProtocolStillSerializable) {
  // The three-phase protocol must stay correct when batching degrades to
  // single ops (only slower).
  driver::DriverOptions dopts;
  dopts.enable_batching = false;
  Stack stack(kLibrarySrc, {}, {}, dopts);
  stack.agent->run_prologue();
  stack.agent->run_dialogue(5);  // the scripted lifecycle above
  auto ctx = stack.agent->management_context();
  EXPECT_EQ(ctx.entry_count("acl"), 1u);  // only the _drop entry remains
  EXPECT_EQ(stack.sw->table("acl").entry_count(), 2u);  // x2 vv copies
}

}  // namespace
}  // namespace mantis::test
