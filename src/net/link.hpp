// A full-duplex point-to-point link between two fabric endpoints, modeled on
// the shared EventLoop: per-direction serialization at the configured rate
// (FIFO behind the previous frame), propagation latency, a seeded stochastic
// drop process, and the mutable fault surface (down / gray loss / extra
// latency) the FaultInjector drives.
//
// Determinism: each direction owns a seeded Rng consumed once per transmit,
// so the delivery sequence is a pure function of (traffic, seed, faults).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_loop.hpp"
#include "sim/packet.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace mantis::net {

using NodeId = int;

struct LinkModel {
  double gbps = 25.0;          ///< serialization rate
  Duration propagation = 200;  ///< ns of flight time
  double loss = 0.0;           ///< ambient stochastic loss probability
  std::uint64_t seed = 1;      ///< drop-process seed (direction B gets seed^flip)
};

class Link {
 public:
  /// One attachment point: which fabric node, and which of its ports.
  struct End {
    NodeId node = -1;
    int port = -1;
  };

  /// Called at arrival time with the packet and the *receiving* end.
  using Deliver = std::function<void(sim::Packet, NodeId node, int port)>;

  Link(sim::EventLoop& loop, std::string name, End a, End b, LinkModel model,
       Deliver deliver);

  const std::string& name() const { return name_; }
  const End& end_a() const { return a_; }
  const End& end_b() const { return b_; }
  const LinkModel& model() const { return model_; }
  bool attaches(NodeId node, int port) const {
    return (a_.node == node && a_.port == port) ||
           (b_.node == node && b_.port == port);
  }
  /// 0 = a->b, 1 = b->a; throws if `from` is not an endpoint.
  int direction_from(NodeId from) const;
  const End& receiver(int dir) const { return dir == 0 ? b_ : a_; }

  /// Entry point: `from`'s side puts the packet on the wire. Serialization
  /// occupies the direction FIFO; delivery (or loss) happens after
  /// serialization + propagation + any fault-injected extra latency.
  void transmit(NodeId from, sim::Packet pkt);

  /// Tags each end with the shard that owns it (the fabric assigns one
  /// shard per switch; hosts map to their uplink switch's shard). Delivery
  /// events are then scheduled *for the receiver's shard*, which is what
  /// lets the parallel engine run receivers concurrently — and what makes
  /// min(propagation) the safe lookahead. Direction state (busy_until, Rng,
  /// tx stats) is owned by the sender's shard; only delivered_pkts is
  /// written on the receiver's, a disjoint field.
  void set_shards(int shard_a, int shard_b) {
    dirs_[0].rx_shard = shard_b;  // a->b delivers at b
    dirs_[1].rx_shard = shard_a;
  }

  // ---- fault surface (dir: 0 = a->b, 1 = b->a, -1 = both) ----
  void set_down(bool down, int dir = -1);
  void set_loss(double p, int dir = -1);
  void set_extra_latency(Duration d, int dir = -1);
  bool down(int dir) const { return dirs_[check_dir(dir)].down; }
  double loss(int dir) const { return dirs_[check_dir(dir)].loss; }

  struct DirStats {
    std::uint64_t tx_pkts = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_pkts = 0;
    std::uint64_t dropped_pkts = 0;  ///< stochastic loss + down-interface drops
    /// Cumulative serialization occupancy (ns); the fabric's utilization
    /// gauges are windowed deltas of this.
    std::uint64_t busy_ns = 0;
    /// In-band telemetry accounting: packets carrying an INT stack and the
    /// stack bytes they added to this direction's wire occupancy.
    std::uint64_t int_pkts = 0;
    std::uint64_t int_bytes = 0;
  };
  const DirStats& dir_stats(int dir) const { return dirs_[check_dir(dir)].stats; }

  /// Publishes a windowed utilization sample to the direction's gauge
  /// (`net.link.<name>.<ab|ba>.util`). Driven by Fabric::sample_telemetry.
  void set_utilization(int dir, double util) {
    dirs_[check_dir(dir)].util_gauge->set(util);
  }

  Duration serialization_time(std::uint32_t bytes) const;

 private:
  struct Dir {
    DirStats stats;
    bool down = false;
    double loss = 0.0;
    Duration extra_latency = 0;
    Time busy_until = 0;
    int rx_shard = sim::EventLoop::kControlShard;  ///< receiver's shard tag
    Rng rng{1};
    telemetry::Counter* tx_ctr = nullptr;
    telemetry::Counter* drop_ctr = nullptr;
    telemetry::Gauge* util_gauge = nullptr;
  };

  static std::size_t check_dir(int dir);

  sim::EventLoop* loop_;
  std::string name_;
  End a_, b_;
  LinkModel model_;
  Deliver deliver_;
  Dir dirs_[2];
  telemetry::prof::Profiler* prof_ = nullptr;  ///< hot-path cost attribution
};

}  // namespace mantis::net
