#include "sim/register_file.hpp"

#include "util/bits.hpp"

namespace mantis::sim {

RegisterFile::RegisterFile(const p4::Program& prog) {
  for (const auto& reg : prog.registers) {
    arrays_.emplace(reg.name,
                    Array{reg.width, std::vector<std::uint64_t>(reg.instance_count, 0)});
  }
  for (const auto& ctr : prog.counters) {
    counters_.emplace(ctr.name, std::vector<std::uint64_t>(ctr.instance_count, 0));
  }
}

const RegisterFile::Array& RegisterFile::array(const std::string& reg) const {
  auto it = arrays_.find(reg);
  if (it == arrays_.end()) throw UserError("unknown register: " + reg);
  return it->second;
}

std::uint64_t RegisterFile::read(const std::string& reg, std::uint32_t index) const {
  const auto& arr = array(reg);
  if (index >= arr.cells.size()) {
    throw UserError("register " + reg + ": index " + std::to_string(index) +
                    " out of range");
  }
  return arr.cells[index];
}

void RegisterFile::write(const std::string& reg, std::uint32_t index,
                         std::uint64_t value) {
  auto it = arrays_.find(reg);
  if (it == arrays_.end()) throw UserError("unknown register: " + reg);
  auto& arr = it->second;
  if (index >= arr.cells.size()) {
    throw UserError("register " + reg + ": index " + std::to_string(index) +
                    " out of range");
  }
  arr.cells[index] = truncate_to_width(value, arr.width);
}

std::vector<std::uint64_t> RegisterFile::read_range(const std::string& reg,
                                                    std::uint32_t first,
                                                    std::uint32_t last) const {
  const auto& arr = array(reg);
  expects(first <= last, "RegisterFile::read_range: first > last");
  if (last >= arr.cells.size()) {
    throw UserError("register " + reg + ": range end out of bounds");
  }
  return std::vector<std::uint64_t>(arr.cells.begin() + first,
                                    arr.cells.begin() + last + 1);
}

std::uint32_t RegisterFile::instance_count(const std::string& reg) const {
  return static_cast<std::uint32_t>(array(reg).cells.size());
}

p4::Width RegisterFile::width(const std::string& reg) const {
  return array(reg).width;
}

void RegisterFile::count(const std::string& counter, std::uint32_t index) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) throw UserError("unknown counter: " + counter);
  if (index >= it->second.size()) {
    throw UserError("counter " + counter + ": index out of range");
  }
  ++it->second[index];
}

std::uint64_t RegisterFile::counter_value(const std::string& counter,
                                          std::uint32_t index) const {
  auto it = counters_.find(counter);
  if (it == counters_.end()) throw UserError("unknown counter: " + counter);
  if (index >= it->second.size()) {
    throw UserError("counter " + counter + ": index out of range");
  }
  return it->second[index];
}

}  // namespace mantis::sim
