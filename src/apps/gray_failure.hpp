// Use case #2 (paper §8.3.2): gray-failure detection + route recomputation.
//
// Neighbours emit heartbeats every T_s; the data plane counts them per port.
// The reaction polls the counts and the data-plane timestamp, compares each
// port's delta against delta_threshold = floor(eta * T_d / T_s), and after
// two consecutive violations marks the link down, recomputes shortest paths
// over the modeled topology, and rewrites the malleable route table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "net/topology.hpp"

namespace mantis::apps {

/// The gray-failure P4R program. `monitored_ports` sizes the heartbeat
/// register and the reaction's register window; the default reproduces the
/// classic single-switch app (8-port window over a 32-entry register).
/// Fabric scenarios pass their widest switch's port count.
std::string gray_failure_p4r_source(int monitored_ports = 8);

/// The modeled network around the monitored switch. Formerly a private
/// struct here; now the shared fabric topology type (same `compute_routes`
/// semantics — routes from node 0 — plus the generalized
/// `compute_routes_from` the multi-switch fabric scenarios use).
using Topology = net::Topology;

struct GrayFailureConfig {
  int num_ports = 8;                  ///< monitored heartbeat ports
  Duration ts = 1 * kMicrosecond;     ///< heartbeat period T_s
  double eta = 0.5;                   ///< delivery expectation
  int consecutive_required = 2;       ///< violations before declaring failure
};

struct GrayFailureState {
  GrayFailureConfig cfg;
  Topology topo;
  /// This switch's node id in `topo` (0 for the classic single-switch app;
  /// the fabric harness runs one state per switch with its own node).
  net::NodeId self_node = 0;

  std::vector<std::uint64_t> last_counts;
  std::uint64_t last_ts_us = 0;
  std::vector<int> below_streak;
  std::vector<bool> port_down;
  std::map<std::uint32_t, agent::UserEntryId> route_ids;
  std::map<std::uint32_t, int> current_port;

  std::function<void(int, Time)> on_detect;    ///< port declared down
  std::function<void(Time)> on_routes_installed;

  /// Prologue helper: installs initial routes and remembers entry ids.
  void install_initial_routes(agent::ReactionContext& ctx);
};

agent::Agent::NativeFn make_gray_failure_reaction(
    std::shared_ptr<GrayFailureState> state);

}  // namespace mantis::apps
