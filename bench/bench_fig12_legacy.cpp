// Figure 12: latency of concurrent legacy control-plane table updates with
// and without Mantis running.
//
// A legacy controller submits a continuous stream of table modifications
// through the shared driver channel. With the Mantis dialogue busy-looping,
// a legacy op sometimes queues behind the agent's current operation,
// producing a bimodal latency distribution; the paper reports median/p99
// inflation of 4.64% / 6.45%.
#include "baseline/legacy_controller.hpp"
#include "bench_util.hpp"

namespace {

using namespace mantis;

const char* kSrc = R"P4R(
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable value knob { width : 16; init : 0; }
action use(p) { modify_field(standard_metadata.egress_spec, p); add(h.b, h.b, ${knob}); }
table legacy_t { reads { h.a : exact; } actions { use; } size : 64; }
control ingress { apply(legacy_t); }
control egress { }
reaction rx(ing h.a) { ${knob} = ${knob} + 1; }
)P4R";

Samples run_case(bool with_mantis) {
  bench::Stack stack(kSrc);
  stack.agent->run_prologue();

  // The legacy controller's target entry.
  p4::EntrySpec spec;
  spec.key = {{1, ~std::uint64_t{0}}};
  spec.action = "use";
  spec.action_args = {1};
  const auto h = stack.drv->add_entry("legacy_t", spec);
  stack.drv->memoize("legacy_t", "use");

  baseline::LegacyUpdaterConfig cfg;
  cfg.table = "legacy_t";
  cfg.handle = h;
  cfg.action = "use";
  cfg.args = {2};
  cfg.think_time = 5 * kMicrosecond;
  baseline::LegacyUpdater updater(*stack.drv, cfg);
  const Time until = stack.loop.now() + 100 * kMillisecond;
  updater.start(until);

  if (with_mantis) {
    stack.agent->run_dialogue_until(until);
  }
  stack.loop.run();
  return updater.latencies();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig12_legacy", argc, argv);
  report.params().set("think_time_us", std::int64_t{5});
  report.params().set("duration_ms", std::int64_t{100});
  bench::print_header("Figure 12: legacy table-update latency, without/with Mantis");
  const auto without = run_case(false);
  const auto with = run_case(true);

  bench::print_row({"metric", "without_us", "with_us", "impact_%"});
  auto row = [&](const char* name, double a, double b) {
    bench::print_row({name, bench::fmt(a / 1000.0, 2), bench::fmt(b / 1000.0, 2),
                      bench::fmt(100.0 * (b - a) / a, 2)});
    const std::string key(name);
    report.set(key + ".without_us", a / 1000.0);
    report.set(key + ".with_us", b / 1000.0);
    report.set(key + ".impact_pct", 100.0 * (b - a) / a);
  };
  row("median", without.median(), with.median());
  row("p90", without.percentile(90), with.percentile(90));
  row("p99", without.percentile(99), with.percentile(99));
  row("max", without.max(), with.max());
  std::printf("ops: without=%zu with=%zu\n", without.count(), with.count());

  // Histogram showing the bimodal shape (queueing behind one agent op).
  bench::print_header("latency histogram (with Mantis), 100ns buckets");
  std::map<int, int> hist;
  for (const double v : with.values()) hist[static_cast<int>(v / 100.0)]++;
  int delayed = 0;
  for (const auto& [bucket, count] : hist) {
    std::printf("%5.1f-%5.1fus %6d %s\n", bucket / 10.0, (bucket + 1) / 10.0,
                count,
                std::string(static_cast<std::size_t>(
                                50.0 * count / static_cast<double>(with.count())),
                            '#')
                    .c_str());
  }
  for (const double v : with.values()) {
    if (v > without.median() + 1.0) ++delayed;
  }
  std::printf("ops delayed behind a Mantis op: %.1f%%\n",
              100.0 * delayed / static_cast<double>(with.count()));
  report.count("ops.without", without.count());
  report.count("ops.with", with.count());
  report.set("delayed_pct", 100.0 * delayed / static_cast<double>(with.count()));
  report.write();
  return 0;
}
