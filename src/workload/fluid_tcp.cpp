#include "workload/fluid_tcp.hpp"

#include <algorithm>

namespace mantis::workload {

FluidTcpFlow::FluidTcpFlow(sim::Switch& sw, FluidTcpConfig cfg)
    : sw_(&sw), cfg_(cfg), rng_(cfg.seed ^ cfg.src_ip), rate_gbps_(cfg.init_rate_gbps) {
  const auto& prog = sw.program();
  f_src_ = prog.fields.find("ipv4.srcAddr");
  f_dst_ = prog.fields.find("ipv4.dstAddr");
  f_ecn_ = prog.fields.find("ipv4.ecn");
  expects(f_src_ != p4::kInvalidField && f_dst_ != p4::kInvalidField,
          "FluidTcpFlow: program must declare ipv4.srcAddr/dstAddr");
}

Duration FluidTcpFlow::gap() const {
  const double bytes_per_ns = rate_gbps_ / 8.0;
  const double mean_gap = static_cast<double>(cfg_.pkt_bytes) / bytes_per_ns;
  return static_cast<Duration>(std::max(1.0, mean_gap));
}

void FluidTcpFlow::start(Time until) {
  emit(until);
  adjust(until);
}

void FluidTcpFlow::emit(Time until) {
  if (stopped_ || sw_->loop().now() > until) return;
  auto pkt = sw_->factory().make(cfg_.pkt_bytes);
  const auto& prog = sw_->program();
  pkt.set(f_src_, cfg_.src_ip, prog.fields.width(f_src_));
  pkt.set(f_dst_, cfg_.dst_ip, prog.fields.width(f_dst_));
  sw_->inject(std::move(pkt), cfg_.in_port);
  ++sent_total_;
  const Duration mean = gap();
  const auto next = static_cast<Duration>(
      std::max(1.0, rng_.exponential(static_cast<double>(mean))));
  sw_->loop().schedule_in(next, [this, until] { emit(until); });
}

void FluidTcpFlow::on_transmit(const sim::Packet& pkt) {
  if (pkt.get(f_src_) != cfg_.src_ip) return;
  ++delivered_total_;
  delivered_bytes_ += pkt.length_bytes();
  if (f_ecn_ != p4::kInvalidField && pkt.get(f_ecn_) != 0) ++marked_total_;
}

void FluidTcpFlow::adjust(Time until) {
  if (stopped_ || sw_->loop().now() > until) return;
  // Everything sent at least one RTT ago has had ample time to arrive
  // (pipeline + serialization are microseconds); whatever of it is still
  // outstanding was dropped or is stuck in a standing queue — both are
  // congestion signals, as for a real loss/delay-based sender.
  const std::uint64_t judged_sent =
      sent_asof_prev_adjust_ - sent_asof_prev2_adjust_;
  const std::uint64_t outstanding =
      sent_asof_prev_adjust_ > delivered_total_
          ? sent_asof_prev_adjust_ - delivered_total_
          : 0;
  const std::uint64_t judged_marked = marked_total_ - marked_asof_prev_adjust_;
  const std::uint64_t judged_delivered =
      delivered_total_ - delivered_asof_prev_adjust_;
  if (judged_sent > 0) {
    const double loss_frac = static_cast<double>(outstanding) /
                             static_cast<double>(judged_sent);
    const double mark_frac =
        judged_delivered == 0
            ? 0.0
            : static_cast<double>(judged_marked) /
                  static_cast<double>(judged_delivered);
    if (cfg_.dctcp && mark_frac > 0) {
      rate_gbps_ = std::max(cfg_.min_rate_gbps,
                            rate_gbps_ * std::max(0.1, 1.0 - mark_frac / 2.0));
    } else if (loss_frac > 0.02) {
      rate_gbps_ = std::max(cfg_.min_rate_gbps, rate_gbps_ / 2.0);
    } else {
      rate_gbps_ = std::min(cfg_.max_rate_gbps, rate_gbps_ + cfg_.additive_gbps);
    }
  }
  sent_asof_prev2_adjust_ = sent_asof_prev_adjust_;
  sent_asof_prev_adjust_ = sent_total_;
  delivered_asof_prev_adjust_ = delivered_total_;
  marked_asof_prev_adjust_ = marked_total_;
  sw_->loop().schedule_in(cfg_.rtt, [this, until] { adjust(until); });
}

}  // namespace mantis::workload
