// Unified metrics for the whole stack: counters, gauges, and histograms
// (fixed geometric buckets + streaming P² quantiles, built on util/stats),
// collected in one per-stack MetricsRegistry and exported as a JSON snapshot
// that benches and examples emit as machine-readable results.
//
// Design constraints, in order:
//  * recording must be cheap enough for per-iteration/per-op hot paths —
//    callers cache the Counter*/Gauge*/Histogram* returned by the registry
//    at construction time, so the steady state is pointer arithmetic only;
//  * names are stable, dot-separated, and documented in docs/TELEMETRY.md;
//  * snapshots are deterministic (name-sorted) so runs diff cleanly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/shard_lane.hpp"
#include "util/stats.hpp"

namespace mantis::telemetry {

/// Monotonically increasing event count. Additions are relaxed atomics:
/// sums are order-independent, so counters need no lane deferral to stay
/// deterministic under the parallel fabric engine.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, utilization, ...).
/// Order-dependent, so writes from shard contexts defer through the
/// thread's ShardLane and merge in canonical event order at round barriers.
class Gauge {
 public:
  void set(double v) {
    if (ShardLane* lane = ShardLane::current()) {
      lane->defer([this, v] { value_ = v; });
      return;
    }
    value_ = v;
  }
  void add(double d) {
    if (ShardLane* lane = ShardLane::current()) {
      lane->defer([this, d] { value_ += d; });
      return;
    }
    value_ += d;
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

struct HistogramOptions {
  /// Upper bound of the first bucket; subsequent bounds grow geometrically.
  double first_bucket = 1024.0;
  double growth = 2.0;
  std::size_t buckets = 24;  ///< + one implicit overflow bucket
  /// Streaming quantiles tracked (P² markers, O(1) memory each).
  std::vector<double> quantiles = {0.50, 0.90, 0.99};
  /// Also retain every raw sample (util/stats Samples) for exact
  /// percentiles. Bench-scale only; the agent uses it to keep the historical
  /// iteration_latencies() accessor exact.
  bool keep_raw = false;
};

/// Fixed-bucket histogram with streaming mean/stddev/min/max (OnlineStats)
/// and streaming quantile estimates (P2Quantile). All three reuse util/stats
/// rather than re-deriving the math here.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  /// Records one sample. P² quantile markers make this insertion-order
  /// dependent, so calls from shard contexts defer through the ShardLane
  /// (replayed in canonical event order at round barriers).
  void record(double v);

  std::uint64_t count() const { return total_; }
  const OnlineStats& stats() const { return stats_; }

  /// Bucket counts; index buckets() is the overflow bucket.
  std::size_t buckets() const { return bounds_.size(); }
  double bucket_upper_bound(std::size_t i) const { return bounds_[i]; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

  /// Quantile estimate for one of the configured quantiles (exact when
  /// keep_raw). Throws UserError if `q` was not configured and keep_raw is
  /// off, or when empty.
  double quantile(double q) const;
  const std::vector<double>& tracked_quantiles() const { return opts_.quantiles; }

  bool keeps_raw() const { return opts_.keep_raw; }
  /// Raw sample view; requires keep_raw.
  const Samples& raw() const;

 private:
  void record_direct(double v);

  HistogramOptions opts_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow)
  std::uint64_t total_ = 0;
  OnlineStats stats_;
  std::vector<P2Quantile> quantiles_;
  Samples raw_;
};

/// Name -> metric. One registry per stack (owned by the sim::EventLoop's
/// Telemetry bundle); deterministic iteration order for export.
class MetricsRegistry {
 public:
  /// Gets or creates. Returned pointers are stable for the registry's
  /// lifetime (callers cache them).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `opts` applies only on first creation.
  Histogram& histogram(const std::string& name, HistogramOptions opts = {});

  /// Lookup without creating; nullptr when absent or of a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const { return metrics_.size(); }

  /// JSON object mapping each metric name to its snapshot:
  ///   counters   -> {"type":"counter","value":N}
  ///   gauges     -> {"type":"gauge","value":X}
  ///   histograms -> {"type":"histogram","count":N,"mean":...,"min":...,
  ///                  "max":...,"p50":...,...,"buckets":[[le,count],...]}
  /// Deterministic (name-sorted), 2-space indent.
  std::string snapshot_json() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  /// Guards map mutation/lookup only (lazy creation can race from shard
  /// workers — e.g. a TrafficManager's first per-port depth gauge). The
  /// metric objects themselves are not guarded; see each sink's contract.
  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// The bench/example results schema: {"bench":name,"params":{...},
/// "metrics":<registry snapshot>}. Params are emitted in insertion order.
class ReportParams {
 public:
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  const std::vector<std::pair<std::string, std::string>>& raw() const {
    return kv_;  // values pre-rendered as JSON literals
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

std::string report_json(const std::string& bench, const ReportParams& params,
                        const MetricsRegistry& metrics);

/// Report with an embedded hot-path profile: `prof_json` is a pre-rendered
/// JSON object (prof::ProfileReport::to_json()), spliced in as the "prof"
/// key. Empty `prof_json` degenerates to the plain report.
std::string report_json(const std::string& bench, const ReportParams& params,
                        const MetricsRegistry& metrics,
                        const std::string& prof_json);

/// Writes `content` to `path`; throws UserError on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

}  // namespace mantis::telemetry
