// The simulated RMT switch: ingress pipeline -> traffic manager -> egress
// pipeline -> ports, plus the raw control-plane access surface (tables,
// registers) that the driver layer wraps with a latency model.
//
// This is the reproduction's stand-in for the paper's Wedge100BF-32X Tofino.
// It preserves the properties Mantis's correctness rests on:
//  * single-entry table updates are atomic w.r.t. packets,
//  * a packet observes one consistent table configuration per pipeline
//    traversal (packets are processed whole at ingress / at dequeue),
//  * registers are updated per packet and readable out-of-band,
//  * bounded per-pipeline latency, far below control-loop granularity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.hpp"
#include "sim/event_loop.hpp"
#include "sim/packet.hpp"
#include "sim/pipeline.hpp"
#include "sim/register_file.hpp"
#include "sim/table_state.hpp"
#include "sim/traffic_manager.hpp"

namespace mantis::sim {

struct SwitchConfig {
  int num_ports = 32;
  double port_gbps = 25.0;
  Duration ingress_latency = 400;   ///< ns through the ingress pipeline
  Duration egress_latency = 300;    ///< ns through the egress pipeline
  Duration recirc_latency = 100;    ///< extra ns for a recirculation hop
  std::uint64_t queue_capacity_bytes = 512ull * 1024;
  int recirc_port = 63;             ///< egress_spec value meaning "recirculate"
  /// Aggregate ingress-pipeline packet rate (packets/second); 0 = unlimited.
  /// RMT switches are packet-rate limited, so every pass — including each
  /// recirculation — consumes a slot (paper §2: recirculating every packet
  /// sharply cuts usable throughput). A small input buffer absorbs jitter;
  /// beyond it, arrivals are dropped at ingress.
  std::uint64_t pipeline_pps = 0;
  std::uint32_t ingress_buffer_pkts = 64;
};

class Switch {
 public:
  /// Copies `prog` (the switch owns its loaded program, like hardware owns
  /// its binary) and guarantees a `_no_op_` action exists for table misses.
  Switch(EventLoop& loop, const p4::Program& prog, SwitchConfig cfg = {});

  const p4::Program& program() const { return prog_; }
  const PacketFactory& factory() const { return factory_; }
  EventLoop& loop() { return *loop_; }
  const SwitchConfig& config() const { return cfg_; }

  /// Receives a packet on `port` at the current virtual time.
  void inject(Packet pkt, int port) { inject_internal(std::move(pkt), port, false); }

  /// Called when a packet leaves the switch: (packet, egress port, tx time).
  using TransmitHook = std::function<void(const Packet&, int, Time)>;
  void set_on_transmit(TransmitHook hook) { on_transmit_ = std::move(hook); }

  /// Egress-stage hook, invoked at dequeue time after the egress pipeline
  /// ran and the packet survived, before tx stats are charged — so a hook
  /// that grows the packet (e.g. the INT transit stamp) is reflected in
  /// tx_bytes and downstream serialization. The hook runs on the switch's
  /// shard with the egress intrinsics (egress_port, deq_qdepth, timestamps)
  /// already written into the packet.
  using EgressHook = std::function<void(Packet&, int port)>;
  void set_egress_hook(EgressHook hook) { egress_hook_ = std::move(hook); }

  /// Administrative port control; a down port drops at both RX and TX
  /// (used to emulate link failures in the gray-failure experiments).
  void set_port_up(int port, bool up);
  bool port_up(int port) const;

  // --- raw control-plane surface (wrapped by driver::Driver) ---
  TableState& table(const std::string& name);
  const TableState& table(const std::string& name) const;
  RegisterFile& registers() { return regs_; }
  const RegisterFile& registers() const { return regs_; }

  std::uint32_t queue_depth_pkts(int port) const { return tm_->queue_depth_pkts(port); }
  std::uint64_t queue_depth_bytes(int port) const { return tm_->queue_depth_bytes(port); }

  struct PortStats {
    std::uint64_t rx_pkts = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_drops = 0;     ///< down-port or pipeline drops at ingress
    std::uint64_t tx_pkts = 0;
    std::uint64_t tx_bytes = 0;
  };
  const PortStats& port_stats(int port) const;
  const TrafficManager& traffic_manager() const { return *tm_; }

  const Pipeline::Stats& ingress_stats() const { return ingress_->stats(); }
  const Pipeline::Stats& egress_stats() const { return egress_->stats(); }

  /// Appends a deterministic description of live state (registers, counters,
  /// tables, queue depths) — the flight recorder embeds this in .mfr dumps.
  void write_snapshot(std::string& out) const;

  ~Switch();
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

 private:
  EventLoop* loop_;
  p4::Program prog_;
  SwitchConfig cfg_;
  PacketFactory factory_;
  RegisterFile regs_;
  std::unordered_map<std::string, TableState> tables_;
  std::unique_ptr<Pipeline> ingress_;
  std::unique_ptr<Pipeline> egress_;
  std::unique_ptr<TrafficManager> tm_;
  std::vector<PortStats> port_stats_;
  std::vector<bool> rx_up_;
  TransmitHook on_transmit_;
  EgressHook egress_hook_;

  Time pipeline_free_at_ = 0;  ///< pipeline_pps admission bookkeeping

  telemetry::ProvenanceContext* prov_;
  telemetry::prof::Profiler* prof_;  ///< hot-path cost attribution
  int snapshot_provider_ = 0;  ///< flight-recorder registration id

  // Cached telemetry sinks (owned by the loop's registry): per-stage packet
  // latency (ingress pipeline, TM residency, egress pipeline) plus the
  // end-to-end switch transit time, and rx/tx/drop counters.
  telemetry::Counter* rx_ctr_;
  telemetry::Counter* tx_ctr_;
  telemetry::Counter* rx_drop_ctr_;
  telemetry::Counter* recirc_ctr_;
  telemetry::Histogram* ingress_stage_hist_;
  telemetry::Histogram* tm_stage_hist_;
  telemetry::Histogram* egress_stage_hist_;
  telemetry::Histogram* transit_hist_;

  // Cached intrinsic field ids.
  p4::FieldId f_ingress_port_;
  p4::FieldId f_egress_spec_;
  p4::FieldId f_egress_port_;
  p4::FieldId f_packet_length_;
  p4::FieldId f_enq_qdepth_;
  p4::FieldId f_deq_qdepth_;
  p4::FieldId f_ing_ts_;
  p4::FieldId f_egr_ts_;

  void on_dequeue(Packet pkt, int port);
  /// `recirculated` passes bypass the input-buffer drop check (the recirc
  /// path has its own dedicated port on real hardware) but still consume a
  /// pipeline slot — which is exactly why recirculation eats throughput.
  void inject_internal(Packet pkt, int port, bool recirculated);
};

}  // namespace mantis::sim
