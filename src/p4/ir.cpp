#include "p4/ir.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mantis::p4 {

// ---------------------------------------------------------------------------
// FieldCatalog
// ---------------------------------------------------------------------------

FieldId FieldCatalog::add(std::string_view instance, std::string_view field,
                          Width width) {
  expects(width >= 1 && width <= kMaxWidth,
          "FieldCatalog::add: width out of range for " + std::string(field));
  std::string full = std::string(instance) + "." + std::string(field);
  expects(find(full) == kInvalidField, "FieldCatalog::add: duplicate field " + full);
  Entry e;
  e.instance = std::string(instance);
  e.field = std::string(field);
  e.full_name = std::move(full);
  e.width = width;
  entries_.push_back(std::move(e));
  return static_cast<FieldId>(entries_.size() - 1);
}

FieldId FieldCatalog::find(std::string_view full_name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].full_name == full_name) return static_cast<FieldId>(i);
  }
  return kInvalidField;
}

FieldId FieldCatalog::require(std::string_view full_name) const {
  const FieldId id = find(full_name);
  if (id == kInvalidField) {
    throw UserError("unknown field reference: " + std::string(full_name));
  }
  return id;
}

const FieldCatalog::Entry& FieldCatalog::at(FieldId id) const {
  expects(id < entries_.size(), "FieldCatalog: invalid FieldId");
  return entries_[id];
}

Width FieldCatalog::width(FieldId id) const { return at(id).width; }
const std::string& FieldCatalog::full_name(FieldId id) const { return at(id).full_name; }
const std::string& FieldCatalog::instance(FieldId id) const { return at(id).instance; }
const std::string& FieldCatalog::field(FieldId id) const { return at(id).field; }

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

Width HeaderTypeDecl::total_width() const {
  std::uint32_t total = 0;
  for (const auto& f : fields) total += f.width;
  ensures(total <= 0xffff, "header type too wide");
  return static_cast<Width>(total);
}

std::string_view prim_op_name(PrimOp op) {
  switch (op) {
    case PrimOp::kModifyField: return "modify_field";
    case PrimOp::kAdd: return "add";
    case PrimOp::kSubtract: return "subtract";
    case PrimOp::kAddToField: return "add_to_field";
    case PrimOp::kSubtractFromField: return "subtract_from_field";
    case PrimOp::kBitAnd: return "bit_and";
    case PrimOp::kBitOr: return "bit_or";
    case PrimOp::kBitXor: return "bit_xor";
    case PrimOp::kShiftLeft: return "shift_left";
    case PrimOp::kShiftRight: return "shift_right";
    case PrimOp::kRegisterRead: return "register_read";
    case PrimOp::kRegisterWrite: return "register_write";
    case PrimOp::kCount: return "count";
    case PrimOp::kModifyFieldWithHash: return "modify_field_with_hash_based_offset";
    case PrimOp::kDrop: return "drop";
    case PrimOp::kNoOp: return "no_op";
  }
  return "?";
}

std::string_view match_kind_name(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kTernary: return "ternary";
    case MatchKind::kLpm: return "lpm";
    case MatchKind::kValid: return "valid";
  }
  return "?";
}

std::string_view rel_op_name(RelOp op) {
  switch (op) {
    case RelOp::kEq: return "==";
    case RelOp::kNe: return "!=";
    case RelOp::kLt: return "<";
    case RelOp::kLe: return "<=";
    case RelOp::kGt: return ">";
    case RelOp::kGe: return ">=";
  }
  return "?";
}

std::string_view gress_name(Gress g) {
  return g == Gress::kIngress ? "ingress" : "egress";
}

bool TableDecl::is_ternary() const {
  return std::any_of(reads.begin(), reads.end(), [](const MatchSpec& m) {
    return m.kind == MatchKind::kTernary;
  });
}

// ---------------------------------------------------------------------------
// Program lookups
// ---------------------------------------------------------------------------

namespace {
template <typename Vec>
auto* find_by_name(Vec& vec, std::string_view name) {
  for (auto& item : vec) {
    if (item.name == name) return &item;
  }
  using Item = std::remove_reference_t<decltype(vec[0])>;
  return static_cast<Item*>(nullptr);
}
}  // namespace

const ActionDecl* Program::find_action(std::string_view name) const {
  return find_by_name(actions, name);
}
ActionDecl* Program::find_action(std::string_view name) {
  return find_by_name(actions, name);
}
const TableDecl* Program::find_table(std::string_view name) const {
  return find_by_name(tables, name);
}
TableDecl* Program::find_table(std::string_view name) {
  return find_by_name(tables, name);
}
const RegisterDecl* Program::find_register(std::string_view name) const {
  return find_by_name(registers, name);
}
const HeaderTypeDecl* Program::find_header_type(std::string_view name) const {
  return find_by_name(header_types, name);
}
const HeaderInstance* Program::find_instance(std::string_view name) const {
  return find_by_name(instances, name);
}
const FieldListDecl* Program::find_field_list(std::string_view name) const {
  return find_by_name(field_lists, name);
}
const HashCalcDecl* Program::find_hash_calc(std::string_view name) const {
  return find_by_name(hash_calcs, name);
}

std::string Program::add_metadata_instance(
    std::string_view type_name, std::string_view instance_name,
    const std::vector<std::pair<std::string, Width>>& field_specs) {
  expects(find_header_type(type_name) == nullptr,
          "add_metadata_instance: duplicate type " + std::string(type_name));
  expects(find_instance(instance_name) == nullptr,
          "add_metadata_instance: duplicate instance " + std::string(instance_name));
  HeaderTypeDecl type;
  type.name = std::string(type_name);
  for (const auto& [fname, width] : field_specs) {
    type.fields.push_back(FieldDecl{fname, width});
    fields.add(instance_name, fname, width);
  }
  header_types.push_back(std::move(type));

  HeaderInstance inst;
  inst.name = std::string(instance_name);
  inst.type_name = std::string(type_name);
  inst.is_metadata = true;
  instances.push_back(std::move(inst));
  return std::string(instance_name);
}

FieldId Program::append_metadata_field(std::string_view instance_name,
                                       std::string_view field_name, Width width,
                                       std::uint64_t init_value) {
  auto* inst = find_by_name(instances, instance_name);
  expects(inst != nullptr,
          "append_metadata_field: unknown instance " + std::string(instance_name));
  auto* type = find_by_name(header_types, inst->type_name);
  ensures(type != nullptr, "instance with missing type");
  type->fields.push_back(FieldDecl{std::string(field_name), width});
  if (init_value != 0) {
    inst->initializers.emplace_back(std::string(field_name), init_value);
  }
  return fields.add(instance_name, field_name, width);
}

// ---------------------------------------------------------------------------
// Control-flow helpers
// ---------------------------------------------------------------------------

namespace {

void collect_tables(const std::vector<ControlNode>& nodes,
                    std::vector<std::string>& out,
                    std::unordered_set<std::string>& seen) {
  for (const auto& node : nodes) {
    if (const auto* apply = std::get_if<ApplyNode>(&node.node)) {
      if (seen.insert(apply->table).second) out.push_back(apply->table);
    } else {
      const auto& ifn = std::get<IfNode>(node.node);
      collect_tables(ifn.then_branch, out, seen);
      collect_tables(ifn.else_branch, out, seen);
    }
  }
}

}  // namespace

std::vector<std::string> Program::tables_in(const ControlBlock& block) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  collect_tables(block.nodes, out, seen);
  return out;
}

bool Program::applied_in(std::string_view table, const ControlBlock& block) const {
  const auto tables = tables_in(block);
  return std::find(tables.begin(), tables.end(), table) != tables.end();
}

Gress Program::gress_of_table(std::string_view table) const {
  if (applied_in(table, ingress)) return Gress::kIngress;
  if (applied_in(table, egress)) return Gress::kEgress;
  throw PreconditionError("gress_of_table: table not applied anywhere: " +
                          std::string(table));
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

std::size_t expected_arg_count(PrimOp op) {
  switch (op) {
    case PrimOp::kModifyField: return 2;
    case PrimOp::kAdd:
    case PrimOp::kSubtract:
    case PrimOp::kBitAnd:
    case PrimOp::kBitOr:
    case PrimOp::kBitXor:
    case PrimOp::kShiftLeft:
    case PrimOp::kShiftRight:
    case PrimOp::kModifyFieldWithHash: return 3;
    case PrimOp::kAddToField:
    case PrimOp::kSubtractFromField:
    case PrimOp::kRegisterRead:
    case PrimOp::kRegisterWrite: return 2;
    case PrimOp::kCount: return 1;
    case PrimOp::kDrop:
    case PrimOp::kNoOp: return 0;
  }
  return 0;
}

bool op_needs_object(PrimOp op) {
  return op == PrimOp::kRegisterRead || op == PrimOp::kRegisterWrite ||
         op == PrimOp::kCount || op == PrimOp::kModifyFieldWithHash;
}

}  // namespace

void Program::validate() const {
  auto check_operand = [&](const Operand& o, const ActionDecl& act,
                           const std::string& ctx) {
    switch (o.kind) {
      case OperandKind::kField:
        ensures(o.field < fields.size(), "validate: bad FieldId in " + ctx);
        break;
      case OperandKind::kParam:
        ensures(o.param < act.params.size(), "validate: bad param index in " + ctx);
        break;
      case OperandKind::kConst:
        break;
      case OperandKind::kMbl:
        throw InvariantError("validate: unresolved malleable reference ${" +
                             o.mbl + "} in " + ctx +
                             " (program not compiled by the Mantis compiler?)");
    }
  };

  for (const auto& act : actions) {
    for (const auto& ins : act.body) {
      const std::string ctx = "action " + act.name;
      ensures(ins.args.size() == expected_arg_count(ins.op),
              "validate: wrong arg count for " + std::string(prim_op_name(ins.op)) +
                  " in " + ctx);
      if (op_needs_object(ins.op)) {
        ensures(!ins.object.empty(), "validate: missing object in " + ctx);
        if (ins.op == PrimOp::kRegisterRead || ins.op == PrimOp::kRegisterWrite) {
          ensures(find_register(ins.object) != nullptr,
                  "validate: unknown register " + ins.object + " in " + ctx);
        } else if (ins.op == PrimOp::kCount) {
          ensures(find_by_name(counters, ins.object) != nullptr,
                  "validate: unknown counter " + ins.object + " in " + ctx);
        } else if (ins.op == PrimOp::kModifyFieldWithHash) {
          ensures(find_hash_calc(ins.object) != nullptr,
                  "validate: unknown hash calc " + ins.object + " in " + ctx);
        }
      }
      for (const auto& arg : ins.args) check_operand(arg, act, ctx);
      // First operand of field-writing primitives must be a field.
      switch (ins.op) {
        case PrimOp::kModifyField:
        case PrimOp::kAdd:
        case PrimOp::kSubtract:
        case PrimOp::kAddToField:
        case PrimOp::kSubtractFromField:
        case PrimOp::kBitAnd:
        case PrimOp::kBitOr:
        case PrimOp::kBitXor:
        case PrimOp::kShiftLeft:
        case PrimOp::kShiftRight:
        case PrimOp::kRegisterRead:
        case PrimOp::kModifyFieldWithHash:
          ensures(ins.args[0].kind == OperandKind::kField,
                  "validate: destination must be a field in " + ctx);
          break;
        default:
          break;
      }
    }
  }

  for (const auto& tbl : tables) {
    for (const auto& read : tbl.reads) {
      ensures(!read.is_malleable(),
              "validate: unresolved malleable match key ${" + read.mbl + "} in " +
                  tbl.name);
      ensures(read.field < fields.size(), "validate: bad match field in " + tbl.name);
    }
    ensures(!tbl.actions.empty(), "validate: table with no actions: " + tbl.name);
    for (const auto& act : tbl.actions) {
      ensures(find_action(act) != nullptr,
              "validate: table " + tbl.name + " references unknown action " + act);
    }
    if (!tbl.default_action.empty()) {
      const auto* act = find_action(tbl.default_action);
      ensures(act != nullptr, "validate: unknown default action in " + tbl.name);
      ensures(act->params.size() == tbl.default_action_args.size(),
              "validate: default action arg mismatch in " + tbl.name);
    }
  }

  for (const auto& fl : field_lists) {
    for (const auto& entry : fl.fields) {
      ensures(!entry.is_malleable(),
              "validate: unresolved malleable ${" + entry.mbl + "} in field_list " +
                  fl.name);
      ensures(entry.field < fields.size(),
              "validate: bad field in field_list " + fl.name);
    }
  }
  for (const auto& hc : hash_calcs) {
    ensures(find_field_list(hc.field_list) != nullptr,
            "validate: hash calc " + hc.name + " references unknown field list");
  }

  // Control blocks reference declared tables.
  for (const ControlBlock* block : {&ingress, &egress}) {
    for (const auto& tbl : tables_in(*block)) {
      ensures(find_table(tbl) != nullptr,
              "validate: control block applies unknown table " + tbl);
    }
  }
}

// ---------------------------------------------------------------------------
// Standard metadata
// ---------------------------------------------------------------------------

void add_standard_metadata(Program& prog) {
  if (prog.find_instance(intrinsics::kInstance) != nullptr) return;
  prog.add_metadata_instance(
      "standard_metadata_t", intrinsics::kInstance,
      {{"ingress_port", 9},
       {"egress_spec", 9},
       {"egress_port", 9},
       {"packet_length", 32},
       {"enq_qdepth", 19},
       {"deq_qdepth", 19},
       {"ingress_global_timestamp", 48},
       {"egress_global_timestamp", 48}});
}

}  // namespace mantis::p4
