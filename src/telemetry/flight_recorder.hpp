// Bounded flight recorder: a ring of structured virtual-time control-plane
// events (dialogue snapshots, malleable commits, driver ops, net fault
// transitions) that can be dumped as a deterministic `.mfr` text file when
// an anomaly fires — a check-harness divergence, a fabric fault injection,
// or a reaction-latency SLO breach.
//
// Determinism contract: events carry ONLY virtual time plus a monotonic
// sequence number (never wall clock), and snapshot providers must render
// from simulation state alone, so two same-seed runs dump byte-identical
// files. tools/p4r_inspect loads and queries the dumps; the format is
// documented in docs/TELEMETRY.md.
//
// The recorder is always compiled (like metrics, unlike trace spans): it
// records only at control-plane rate — driver ops, dialogue iterations,
// fault transitions — never per packet.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace mantis::telemetry {

struct FlightEvent {
  enum class Kind : std::uint8_t {
    kReaction,   ///< dialogue-iteration snapshot / first-effect observation
    kMalleable,  ///< a malleable scalar committed a new value
    kDriverOp,   ///< one PCIe-model driver operation
    kFault,      ///< a net fault-injector transition
    kAnomaly,    ///< the trigger itself (divergence / SLO breach / ...)
    kIntReport,  ///< an INT sink exported a hop-by-hop telemetry report
  };

  Time t = 0;                     ///< virtual ns
  std::uint64_t seq = 0;          ///< monotonic across the recorder's life
  Kind kind = Kind::kDriverOp;
  std::uint64_t reaction_id = 0;  ///< provenance correlation id (0 = none)
  std::int64_t value = 0;         ///< kind-specific scalar payload
  std::string name;               ///< op / scalar / link name
  std::string detail;             ///< free-form, single line
};

const char* flight_kind_name(FlightEvent::Kind kind);
std::optional<FlightEvent::Kind> flight_kind_from(std::string_view name);

/// Parsed form of one `.mfr` dump (see render_mfr for the exact format).
struct MfrDump {
  std::string reason;
  Time vt = 0;                 ///< virtual time of the trigger
  std::uint64_t recorded = 0;  ///< events ever recorded
  std::uint64_t dropped = 0;   ///< of those, overwritten before the dump
  std::vector<FlightEvent> events;
  struct Snapshot {
    std::string label;
    std::vector<std::string> lines;
  };
  std::vector<Snapshot> snapshots;
};

/// Serializes a dump as deterministic `.mfr` text (tab-separated event rows,
/// newline-terminated; no wall-clock content).
std::string render_mfr(const MfrDump& dump);

/// Parses `.mfr` text back; throws UserError on malformed input.
MfrDump parse_mfr(const std::string& text);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// On by default (control-plane-rate cost only); disabling drops new
  /// events but keeps recorded ones.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void record(Time t, FlightEvent::Kind kind, std::uint64_t reaction_id,
              std::string name, std::string detail = {},
              std::int64_t value = 0);

  /// Retained events, oldest first (ring order resolved).
  std::vector<FlightEvent> events() const;
  std::size_t size() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - ring_.size(); }
  void clear();

  // ---- snapshots of live state ----
  /// Providers append deterministic description lines of live switch state
  /// (registers, table entries, queue depths); every dump embeds each
  /// provider's output. Returns an id for remove_snapshot_provider (owners
  /// deregister in their destructor).
  using SnapshotFn = std::function<void(std::string& out)>;
  int add_snapshot_provider(std::string label, SnapshotFn fn);
  void remove_snapshot_provider(int id);

  // ---- anomaly dumps ----
  /// When set, trigger() also writes the rendered dump to this path.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  /// Records a kAnomaly event, renders the dump (events + snapshots), writes
  /// it to dump_path() when set, and returns the text.
  std::string trigger(Time t, const std::string& reason);
  /// Renders the current dump without recording or writing anything.
  std::string dump_text(Time t, const std::string& reason) const;

  std::uint64_t triggers() const { return triggers_; }
  const std::string& last_trigger_reason() const { return last_reason_; }

 private:
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t triggers_ = 0;
  std::string dump_path_;
  std::string last_reason_;

  struct Provider {
    int id = 0;
    std::string label;
    SnapshotFn fn;
  };
  std::vector<Provider> providers_;
  int next_provider_id_ = 1;
};

}  // namespace mantis::telemetry
