// Compiler driver: init-table generation (paper §4.1 "Compound usages" +
// §5.1.1), control-block assembly, and the public compile() entry points.
#include "compile/compiler.hpp"

#include "compile/context.hpp"
#include "compile/packing.hpp"
#include "p4/alloc/stage_alloc.hpp"
#include "p4/emit.hpp"
#include "util/check.hpp"

namespace mantis::compile {

namespace detail {

void run_init_pass(Context& ctx) {
  auto& prog = ctx.prog;

  if (ctx.opts.rmt.max_action_bits < 2) {
    throw UserError("compile options: rmt.max_action_bits must be >= 2 "
                    "(the vv/mv version bits live in the master init action)");
  }

  // Pack all malleable scalars plus the two version bits into as few init
  // actions as the platform action-size budget allows; vv/mv are pinned into
  // the first (master) action so a single update is the serialization point.
  std::vector<PackItem> items;
  for (const auto& s : ctx.scalar_items) items.push_back(PackItem{s.name, s.width});
  const std::size_t vv_idx = items.size();
  items.push_back(PackItem{"vv_", 1});
  const std::size_t mv_idx = items.size();
  items.push_back(PackItem{"mv_", 1});

  // Malleable scalars must land inside real actions, so oversized items are
  // a hard resource rejection rather than a dedicated over-wide bin.
  const auto bins = first_fit_decreasing_pinned(
      items, ctx.opts.rmt.max_action_bits, {vv_idx, mv_idx},
      p4::RmtResource::kActionBits, /*allow_oversized=*/false);

  auto scalar_of = [&](const std::string& name) -> const Context::ScalarItem* {
    for (const auto& s : ctx.scalar_items) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  auto field_of = [&](const std::string& name) -> p4::FieldId {
    if (name == "vv_") return ctx.bind.vv_field;
    if (name == "mv_") return ctx.bind.mv_field;
    auto vit = ctx.value_fields.find(name);
    if (vit != ctx.value_fields.end()) return vit->second;
    auto sit = ctx.selector_fields.find(name);
    ensures(sit != ctx.selector_fields.end(), "init_pass: unknown scalar " + name);
    return sit->second;
  };

  for (std::size_t k = 0; k < bins.size(); ++k) {
    const bool master = k == 0;
    const std::string table_name =
        master ? "p4r_init_" : "p4r_init" + std::to_string(k) + "_";
    const std::string action_name =
        master ? "p4r_init_action_" : "p4r_init" + std::to_string(k) + "_action_";

    p4::ActionDecl act;
    act.name = action_name;
    InitTable init_info;
    init_info.table = table_name;
    init_info.action = action_name;
    init_info.master = master;
    std::vector<std::uint64_t> init_args;

    for (const auto item_idx : bins[k].items) {
      const std::string& name = items[item_idx].name;
      const std::uint16_t param_pos = static_cast<std::uint16_t>(act.params.size());
      act.params.push_back(
          p4::ActionParam{name, static_cast<p4::Width>(items[item_idx].size)});
      p4::Instruction ins;
      ins.op = p4::PrimOp::kModifyField;
      ins.args = {p4::Operand::of_field(field_of(name)),
                  p4::Operand::of_param(param_pos)};
      act.body.push_back(std::move(ins));
      init_info.params.push_back(name);

      if (name == "vv_") {
        ensures(master, "init_pass: vv_ must land in the master init table");
        ctx.bind.vv_param = param_pos;
        init_args.push_back(0);
      } else if (name == "mv_") {
        ensures(master, "init_pass: mv_ must land in the master init table");
        ctx.bind.mv_param = param_pos;
        init_args.push_back(0);
      } else {
        const auto* s = scalar_of(name);
        ensures(s != nullptr, "init_pass: missing scalar item " + name);
        ScalarSlot slot;
        slot.init_table = k;
        slot.param = param_pos;
        slot.init_value = s->init;
        slot.width = s->width;
        slot.is_selector = s->is_selector;
        slot.alt_count = s->alt_count;
        ctx.bind.scalars.emplace(name, slot);
        init_args.push_back(s->init);
      }
    }

    p4::TableDecl tbl;
    tbl.name = table_name;
    if (!master) {
      // Overflow init tables read vv and hold two entries, managed like
      // malleable tables; the master (updated last) is the commit point.
      tbl.reads.push_back(
          p4::MatchSpec{ctx.bind.vv_field, p4::MatchKind::kExact, ""});
      tbl.size = 2;
    } else {
      tbl.size = 1;
    }
    tbl.actions = {action_name};
    tbl.default_action = action_name;
    tbl.default_action_args = init_args;

    prog.actions.push_back(std::move(act));
    prog.tables.push_back(std::move(tbl));
    ctx.init_table_names.push_back(table_name);
    ctx.bind.init_tables.push_back(std::move(init_info));
  }
}

void run_assemble(Context& ctx) {
  auto& prog = ctx.prog;

  std::vector<p4::ControlNode> ingress;
  for (const auto& name : ctx.init_table_names) {
    ingress.push_back(p4::ControlNode{p4::ApplyNode{name}});
  }
  for (const auto& name : ctx.load_tables) {
    ingress.push_back(p4::ControlNode{p4::ApplyNode{name}});
  }
  for (auto& node : prog.ingress.nodes) ingress.push_back(std::move(node));
  for (const auto& name : ctx.measure_tables_ing) {
    ingress.push_back(p4::ControlNode{p4::ApplyNode{name}});
  }
  prog.ingress.nodes = std::move(ingress);

  for (const auto& name : ctx.measure_tables_egr) {
    prog.egress.nodes.push_back(p4::ControlNode{p4::ApplyNode{name}});
  }

  if (prog.find_action("_no_op_") == nullptr) {
    p4::ActionDecl no_op;
    no_op.name = "_no_op_";
    prog.actions.push_back(std::move(no_op));
  }
  prog.validate();
}

// Front-door model checks, run before the transformation passes so no pass
// ever packs an impossible program:
//  - every user-declared field (and malleable scalar, which lowers to a
//    metadata field) must fit the model's widest PHV container. Compiler-
//    generated scratch fields (the 64-bit shift temporary) are exempt: they
//    model VLIW ALU operand width, not PHV allocation. Intrinsic standard
//    metadata is likewise exempt: the hardware holds it in dedicated
//    containers (its 48-bit timestamps exist on every target), so it never
//    competes for user PHV space.
//  - every user action's total parameter bits must fit the action-size
//    budget (the compiler splits only its own init actions, never user
//    actions, so an over-budget user action is a hard rejection).
void check_model_limits(const p4r::P4RProgram& src, const Options& opts) {
  if (!opts.enforce_rmt) return;
  const unsigned cap = opts.rmt.phv_container_bits;
  auto reject = [&](const std::string& what, p4::Width w) {
    throw p4::ResourceExhausted(
        p4::RmtResource::kContainerWidth,
        what + " is " + std::to_string(w) +
            " bits wide but the widest PHV container is " +
            std::to_string(cap) + " bits");
  };
  for (const auto& ht : src.prog.header_types) {
    if (ht.name == "standard_metadata_t") continue;
    for (const auto& f : ht.fields) {
      if (f.width > cap) reject("field " + ht.name + "." + f.name, f.width);
    }
  }
  for (const auto& mv : src.values) {
    if (mv.width > cap) reject("malleable value " + mv.name, mv.width);
  }
  for (const auto& mf : src.fields) {
    if (mf.width > cap) reject("malleable field " + mf.name, mf.width);
  }
  for (const auto& act : src.prog.actions) {
    std::uint64_t bits = 0;
    for (const auto& p : act.params) bits += p.width;
    if (bits > opts.rmt.max_action_bits) {
      throw p4::ResourceExhausted(
          p4::RmtResource::kActionBits,
          "action " + act.name + " needs " + std::to_string(bits) +
              " parameter bits but the budget is " +
              std::to_string(opts.rmt.max_action_bits));
    }
  }
}

}  // namespace detail

// Defined in emit_c.cpp.
std::string emit_c_skeleton(const detail::Context& ctx);

Artifacts compile(const p4r::P4RProgram& src, const Options& opts) {
  detail::Context ctx;
  ctx.src = &src;
  ctx.opts = opts;

  detail::check_model_limits(src, opts);
  detail::run_setup(ctx);
  detail::run_value_pass(ctx);
  detail::run_field_pass(ctx);
  detail::run_isolation_pass(ctx);
  detail::run_measure_pass(ctx);
  detail::run_init_pass(ctx);
  detail::run_assemble(ctx);

  // The assembled pipeline (user tables + generated init/load/measure tables)
  // must place onto the modeled hardware; over-budget programs are rejected
  // here with a ResourceExhausted naming the exhausted resource.
  if (opts.enforce_rmt) p4::allocate_program_stages(ctx.prog, opts.rmt);

  Artifacts out;
  out.c_source = emit_c_skeleton(ctx);
  out.p4_source = p4::emit_p4(ctx.prog);
  out.reactions = src.reactions;
  out.bindings = std::move(ctx.bind);
  out.prog = std::move(ctx.prog);
  return out;
}

Artifacts compile_source(std::string_view p4r_source, const Options& opts) {
  const p4r::P4RProgram analyzed = p4r::frontend(p4r_source);
  return compile(analyzed, opts);
}

}  // namespace mantis::compile
