#include "check/minimize.hpp"

#include <functional>
#include <vector>

namespace mantis::check {

namespace {

using Edit = std::function<bool(Scenario&)>;  ///< false = not applicable

/// All single-step reductions of `s`, coarsest first (dropping a whole epoch
/// or table prunes more than dropping one field assignment).
std::vector<Edit> edits_of(const Scenario& s) {
  std::vector<Edit> out;

  if (s.epochs > 1) {
    out.push_back([](Scenario& c) {
      c.epochs -= 1;
      std::erase_if(c.packets,
                    [&](const PacketSpec& p) { return p.epoch >= c.epochs; });
      return true;
    });
  }

  auto chunk_removals = [&out](std::vector<std::string> GenSpec::* member,
                               std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back([member, i](Scenario& c) {
        auto& v = c.program.*member;
        if (i >= v.size()) return false;
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      });
    }
  };
  chunk_removals(&GenSpec::tables, s.program.tables.size());
  chunk_removals(&GenSpec::actions, s.program.actions.size());
  chunk_removals(&GenSpec::decls, s.program.decls.size());
  chunk_removals(&GenSpec::ingress, s.program.ingress.size());
  chunk_removals(&GenSpec::egress, s.program.egress.size());
  chunk_removals(&GenSpec::reaction_stmts, s.program.reaction_stmts.size());

  if (!s.program.reaction_sig.empty()) {
    out.push_back([](Scenario& c) {
      if (c.program.reaction_sig.empty()) return false;
      c.program.reaction_sig.clear();
      c.program.reaction_stmts.clear();
      return true;
    });
  }

  for (std::size_t i = 0; i < s.packets.size(); ++i) {
    out.push_back([i](Scenario& c) {
      if (i >= c.packets.size()) return false;
      c.packets.erase(c.packets.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    });
  }
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    out.push_back([i](Scenario& c) {
      if (i >= c.entries.size()) return false;
      c.entries.erase(c.entries.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    });
  }
  for (std::size_t p = 0; p < s.packets.size(); ++p) {
    for (std::size_t f = 0; f < s.packets[p].fields.size(); ++f) {
      out.push_back([p, f](Scenario& c) {
        if (p >= c.packets.size()) return false;
        auto& fields = c.packets[p].fields;
        if (f >= fields.size()) return false;
        fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(f));
        return true;
      });
    }
  }
  return out;
}

}  // namespace

Scenario minimize_scenario_with(
    const Scenario& s, const std::function<bool(const Scenario&)>& oracle,
    const MinimizeOptions& opts, MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;

  auto interesting = [&](const Scenario& c) {
    ++st.runs;
    return oracle(c);
  };

  Scenario cur = s;
  if (!interesting(cur)) return cur;

  bool changed = true;
  while (changed && st.runs < opts.max_runs) {
    changed = false;
    for (const auto& edit : edits_of(cur)) {
      if (st.runs >= opts.max_runs) break;
      Scenario cand = cur;
      if (!edit(cand)) continue;
      if (interesting(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        changed = true;
        break;  // chunk indices shifted; rebuild the edit list
      }
    }
  }
  return cur;
}

Scenario minimize_scenario(const Scenario& s, const MinimizeOptions& opts,
                           MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;

  auto diverges = [&](const Scenario& c) {
    ++st.runs;
    return run_diff(c).diverged();
  };

  Scenario cur = s;
  if (!diverges(cur)) return cur;

  // Truncating to just past the first divergent epoch is almost always the
  // single biggest reduction, so do it before the greedy pass.
  {
    Scenario cand = cur;
    DiffResult r = run_diff(cand);
    ++st.runs;
    if (r.diverged() && !r.divergences.empty()) {
      const std::uint32_t keep = r.divergences.front().epoch + 1;
      if (keep < cand.epochs) {
        cand.epochs = keep;
        std::erase_if(cand.packets,
                      [&](const PacketSpec& p) { return p.epoch >= keep; });
        if (diverges(cand)) {
          cur = std::move(cand);
          ++st.accepted;
        }
      }
    }
  }

  MinimizeOptions rest = opts;
  rest.max_runs = opts.max_runs > st.runs ? opts.max_runs - st.runs : 0;
  MinimizeStats greedy;
  Scenario out = minimize_scenario_with(
      cur, [&](const Scenario& c) { return run_diff(c).diverged(); }, rest,
      &greedy);
  st.runs += greedy.runs;
  st.accepted += greedy.accepted;
  return out;
}

}  // namespace mantis::check
