// Chrome trace_event JSON exporter: serializes a Tracer's retained events
// into the format chrome://tracing and Perfetto load directly. Virtual time
// maps to the trace timeline (ts/dur, microseconds); the wall-clock capture
// instant rides along as an event argument.
#pragma once

#include <string>

#include "telemetry/trace.hpp"

namespace mantis::telemetry {

namespace prof {
class Profiler;
}  // namespace prof

/// Serializes the trace: {"displayTimeUnit":"ns","traceEvents":[...]}.
/// Tracks become named pseudo-threads of pid 0. Complete events use ph "X",
/// instants ph "i" (thread scope). When `profiler` is non-null and has
/// samples, its per-kind self-time series render as Chrome counter tracks
/// (ph "C", "prof" lane) alongside the spans.
std::string chrome_trace_json(const Tracer& tracer,
                              const prof::Profiler* profiler = nullptr);

/// Writes chrome_trace_json to `path`; throws UserError on I/O failure.
void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const prof::Profiler* profiler = nullptr);

}  // namespace mantis::telemetry
