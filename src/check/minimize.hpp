// Greedy scenario minimizer: shrinks a diverging Scenario while preserving
// the divergence, so tests/corpus/ repros stay small enough to debug by hand.
//
// The reduction space is the chunk structure GenSpec already exposes —
// whole declarations, actions, tables, control statements, reaction
// statements — plus trace-level elements (epochs, packets, packet field
// assignments, initial entries). A candidate is accepted only when the
// differential runner still reports kDiverged on it; candidates that stop
// compiling (or fall out of the comparable domain) are rejected by the same
// oracle, so the minimizer needs no grammar knowledge of its own.
#pragma once

#include <cstdint>
#include <functional>

#include "check/diff.hpp"
#include "check/scenario.hpp"

namespace mantis::check {

struct MinimizeOptions {
  /// Upper bound on differential runs spent minimizing one scenario.
  std::size_t max_runs = 400;
};

struct MinimizeStats {
  std::size_t runs = 0;      ///< differential runs spent
  std::size_t accepted = 0;  ///< reductions that kept the divergence
};

/// Shrinks `s` (which must currently diverge; returns `s` unchanged if it
/// does not). The result is guaranteed to still diverge.
Scenario minimize_scenario(const Scenario& s, const MinimizeOptions& opts = {},
                           MinimizeStats* stats = nullptr);

/// Greedy reduction against an arbitrary interestingness oracle: shrinks `s`
/// while `oracle(candidate)` stays true (returns `s` unchanged if the oracle
/// rejects it up front). The divergence minimizer above and the resource-
/// fuzz repro minimizer are both built on this.
Scenario minimize_scenario_with(
    const Scenario& s, const std::function<bool(const Scenario&)>& oracle,
    const MinimizeOptions& opts = {}, MinimizeStats* stats = nullptr);

}  // namespace mantis::check
