// Measurement transformation (paper §4.2 + §5.2 "Fields"):
// header/metadata reaction parameters are packed (sorted first-fit) into
// generated 32-bit registers with two instances each, written at the end of
// the annotated pipeline and indexed by the packet's mv bit. The control
// plane polls only the checkpoint copies, giving serializable measurement.
// Packing is per reaction, so each dialogue polls only the registers the
// reaction about to run actually needs (freshness, §4.2).
#include "compile/context.hpp"
#include "compile/packing.hpp"
#include "util/check.hpp"

namespace mantis::compile::detail {

void run_measure_pass(Context& ctx) {
  auto& prog = ctx.prog;

  // Shared shift temporary for the packing instructions.
  const p4::FieldId shift_tmp =
      prog.append_metadata_field(kMetaInstance, "p4r_sh_", 64);

  std::vector<p4::Instruction> ing_body;
  std::vector<p4::Instruction> egr_body;

  for (const auto& rx : ctx.src->reactions) {
    ReactionInfo rinfo;
    rinfo.name = rx.name;

    for (const p4::Gress gress : {p4::Gress::kIngress, p4::Gress::kEgress}) {
      // Collect this reaction's field params for this pipeline.
      std::vector<const p4r::ReactionParam*> params;
      std::vector<PackItem> items;
      for (const auto& param : rx.params) {
        if (param.kind != p4r::ReactionParam::Kind::kField) continue;
        if (param.gress != gress) continue;
        params.push_back(&param);
        items.push_back(PackItem{param.c_name, prog.fields.width(param.field)});
      }
      if (items.empty()) continue;

      // Oversized fields are allowed: the bin's backing register widens to 64
      // bits below. A zero-width measure word is a structured SRAM rejection.
      const auto bins =
          first_fit_decreasing(items, ctx.opts.rmt.measure_word_bits,
                               p4::RmtResource::kSram, /*allow_oversized=*/true);
      auto& body = gress == p4::Gress::kIngress ? ing_body : egr_body;

      for (std::size_t k = 0; k < bins.size(); ++k) {
        const auto& bin = bins[k];
        const p4::Width reg_width =
            bin.used > ctx.opts.rmt.measure_word_bits ? 64
            : static_cast<p4::Width>(ctx.opts.rmt.measure_word_bits);
        const std::string reg_name =
            "p4r_meas_" + rx.name + "_" +
            std::string(gress == p4::Gress::kIngress ? "ing" : "egr") + "_" +
            std::to_string(k) + "_";
        prog.registers.push_back(p4::RegisterDecl{reg_name, reg_width, 2});

        const p4::FieldId acc =
            prog.append_metadata_field(kMetaInstance, reg_name + "acc_", reg_width);

        p4::Instruction clear;
        clear.op = p4::PrimOp::kModifyField;
        clear.args = {p4::Operand::of_field(acc), p4::Operand::of_const(0)};
        body.push_back(std::move(clear));

        unsigned offset = 0;
        for (const auto item_idx : bin.items) {
          const auto* param = params[item_idx];
          const p4::Width w = prog.fields.width(param->field);

          p4::Instruction shl;
          shl.op = p4::PrimOp::kShiftLeft;
          shl.args = {p4::Operand::of_field(shift_tmp),
                      p4::Operand::of_field(param->field),
                      p4::Operand::of_const(offset)};
          body.push_back(std::move(shl));
          p4::Instruction orr;
          orr.op = p4::PrimOp::kBitOr;
          orr.args = {p4::Operand::of_field(acc), p4::Operand::of_field(acc),
                      p4::Operand::of_field(shift_tmp)};
          body.push_back(std::move(orr));

          FieldParamSlot slot;
          slot.c_name = param->c_name;
          slot.gress = gress;
          slot.reg = reg_name;
          slot.bit_offset = offset;
          slot.width = w;
          rinfo.fields.push_back(std::move(slot));
          offset += w;
        }

        p4::Instruction store;
        store.op = p4::PrimOp::kRegisterWrite;
        store.object = reg_name;
        store.args = {p4::Operand::of_field(ctx.bind.mv_field),
                      p4::Operand::of_field(acc)};
        body.push_back(std::move(store));

        rinfo.measure_regs.push_back(reg_name);
      }
    }

    for (const auto& param : rx.params) {
      switch (param.kind) {
        case p4r::ReactionParam::Kind::kRegister: {
          RegParamSlot slot;
          slot.c_name = param.c_name;
          slot.user_reg = param.reg;
          slot.dup_reg = param.reg + "__dup_";
          slot.ts_reg = param.reg + "__ts_";
          slot.lo = param.lo;
          slot.hi = param.hi;
          slot.original_eliminated = prog.find_register(param.reg) == nullptr;
          rinfo.regs.push_back(std::move(slot));
          break;
        }
        case p4r::ReactionParam::Kind::kMalleable:
          rinfo.mbl_params.push_back(param.mbl);
          break;
        case p4r::ReactionParam::Kind::kField:
          break;  // handled above
      }
    }

    ctx.bind.reactions.push_back(std::move(rinfo));
  }

  auto make_measure = [&](std::vector<p4::Instruction> body, p4::Gress gress,
                          std::vector<std::string>& out_tables) {
    if (body.empty()) return;
    const std::string suffix = gress == p4::Gress::kIngress ? "ing" : "egr";
    p4::ActionDecl act;
    act.name = "p4r_measure_" + suffix + "_action_";
    act.body = std::move(body);
    prog.actions.push_back(std::move(act));

    p4::TableDecl tbl;
    tbl.name = "p4r_measure_" + suffix + "_";
    tbl.actions = {"p4r_measure_" + suffix + "_action_"};
    tbl.default_action = tbl.actions[0];
    tbl.size = 1;
    out_tables.push_back(tbl.name);
    prog.tables.push_back(std::move(tbl));
  };
  make_measure(std::move(ing_body), p4::Gress::kIngress, ctx.measure_tables_ing);
  make_measure(std::move(egr_body), p4::Gress::kEgress, ctx.measure_tables_egr);
}

}  // namespace mantis::compile::detail
