#include "net/scenarios.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>
#include <utility>

#include "int/int_fabric.hpp"
#include "net/engine.hpp"
#include "util/check.hpp"

namespace mantis::net {

namespace {

/// Self-rescheduling host sender (copies itself per firing; no ownership
/// cycle, so the loop drains once `until` passes).
struct HostSendTick {
  sim::EventLoop* loop = nullptr;
  Fabric* fabric = nullptr;
  NodeId host = -1;
  Duration period = 0;
  Time until = 0;
  std::shared_ptr<std::function<sim::Packet()>> make;

  void operator()() const {
    if (loop->now() > until) return;
    fabric->host_at(host).send((*make)());
    loop->schedule_in(period, *this);
  }
};

void start_host_traffic(sim::EventLoop& loop, Fabric& fabric, NodeId host,
                        Duration period, Time until,
                        std::function<sim::Packet()> make) {
  HostSendTick tick{&loop, &fabric, host, period, until,
                    std::make_shared<std::function<sim::Packet()>>(std::move(make))};
  // Pinned to the host's shard: the tick mutates host tx state and the
  // uplink's sender direction, both owned by the uplink switch's shard.
  // Reschedules inherit the tag via schedule_in.
  fabric.schedule_for_node(host, loop.now() + period, tick);
}

/// Periodic windowed-utilization sampling (scenario-driven; the Fabric never
/// schedules events itself).
struct SampleTick {
  sim::EventLoop* loop = nullptr;
  Fabric* fabric = nullptr;
  Duration period = 0;
  Time until = 0;

  void operator()() const {
    if (loop->now() > until) return;
    fabric->sample_telemetry();
    loop->schedule_in(period, *this);
  }
};

void start_telemetry_sampling(sim::EventLoop& loop, Fabric& fabric,
                              Duration period, Time until) {
  loop.schedule_in(period, SampleTick{&loop, &fabric, period, until});
}

/// Merge per-source event lines ("<t_ns> ...") into one time-ordered log.
std::vector<std::string> merge_events(std::vector<std::string> a,
                                      const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::stable_sort(a.begin(), a.end(),
                   [](const std::string& x, const std::string& y) {
                     return std::strtoll(x.c_str(), nullptr, 10) <
                            std::strtoll(y.c_str(), nullptr, 10);
                   });
  return a;
}

int port_toward(const Topology& topo, NodeId from, NodeId to) {
  const int li = topo.link_between(from, to);
  expects(li >= 0, "port_toward: nodes not adjacent");
  const auto& l = topo.links[static_cast<std::size_t>(li)];
  return l.a == from ? l.port_a : l.port_b;
}

/// The leaf a host hangs off (the other end of its uplink).
NodeId leaf_of(const Topology& topo, NodeId host) {
  const int li = topo.link_at(host, 0);
  expects(li >= 0, "leaf_of: host has no uplink");
  const auto& l = topo.links[static_cast<std::size_t>(li)];
  return l.a == host ? l.b : l.a;
}

}  // namespace

// ---------------------------------------------------------------------------
// GrayFabricScenario
// ---------------------------------------------------------------------------

/// End-to-end delivery tracker shared between the sending and receiving
/// hosts: restoration = the receive instant of the first packet in a run of
/// K consecutive post-fault sequence numbers.
struct GrayDeliveryTracker {
  Time fault_at = 0;
  std::size_t k = 4;
  /// seq -> virtual send time. Written only on the *sending* host's shard
  /// (and read back after the run); the receive path classifies packets by
  /// their origin-time stamp instead of indexing here, so the two hosts'
  /// shards never touch the same field concurrently.
  std::vector<Time> sent_at;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_before_fault = 0;
  Time restored_at = -1;
  std::deque<std::pair<std::uint64_t, Time>> recent;  ///< (seq, rx time)

  void on_receive(std::uint64_t seq, Time sent_time, Time rx_time) {
    ++delivered;
    if (sent_time >= 0 && sent_time < fault_at) {
      ++delivered_before_fault;
      recent.clear();  // a pre-fault straggler breaks any post-fault run
      return;
    }
    recent.emplace_back(seq, rx_time);
    if (recent.size() > k) recent.pop_front();
    if (restored_at >= 0 || recent.size() < k) return;
    for (std::size_t i = 1; i < recent.size(); ++i) {
      if (recent[i].first != recent[i - 1].first + 1) return;
    }
    restored_at = recent.front().second;
  }
};

GrayFabricScenario::GrayFabricScenario(GrayScenarioConfig cfg)
    : cfg_(std::move(cfg)) {
  expects(cfg_.leaves >= 2 && cfg_.spines >= 2,
          "GrayFabricScenario: need an alternate path (>=2 leaves, >=2 spines)");
  expects(cfg_.hosts_per_leaf >= 1, "GrayFabricScenario: need hosts");
  Topology topo =
      Topology::leaf_spine(cfg_.leaves, cfg_.spines, cfg_.hosts_per_leaf);

  // The shared program's heartbeat register must cover the widest switch's
  // monitored (switch-facing) port range; small fabrics keep the classic
  // 8-port reaction window.
  int monitored = 8;
  for (NodeId n = 0; n < topo.num_switches; ++n) {
    const auto ports = topo.switch_facing_ports(n);
    for (const int p : ports) {
      if (p + 1 > monitored) monitored = p + 1;
    }
  }
  artifacts_ = compile::compile_source(apps::gray_failure_p4r_source(monitored));
  FabricConfig fc;
  fc.switch_cfg = cfg_.switch_cfg;
  fc.default_link = cfg_.link;
  fc.base_seed = cfg_.seed;
  fabric_ = std::make_unique<Fabric>(loop_, artifacts_.prog, std::move(topo), fc);
  injector_ = std::make_unique<FaultInjector>(*fabric_);

  if (cfg_.int_enable) {
    int_tel::IntFabricConfig ic;
    ic.sample_every = cfg_.int_sample_every;
    int_fabric_ = std::make_unique<int_tel::IntFabric>(*fabric_, ic);
  }

  HarnessOptions hopts;
  hopts.agent = cfg_.agent;
  hopts.agent.pacing_sleep = cfg_.pacing;
  harness_ = std::make_unique<FabricAgentHarness>(*fabric_, artifacts_, hopts);
  harness_->add_all_switches();

  for (NodeId n = 0; n < fabric_->num_switches(); ++n) {
    auto st = std::make_shared<apps::GrayFailureState>();
    st->cfg = cfg_.gf;
    st->cfg.num_ports = static_cast<int>(
        fabric_->topo().switch_facing_ports(n).size());
    st->topo = fabric_->topo();
    st->self_node = n;
    st->on_detect = [this, n](int port, Time t) {
      events_.push_back(std::to_string(t) + " n" + std::to_string(n) +
                        " detect port" + std::to_string(port));
      if (n == 0 && detected_at_ < 0) detected_at_ = t;
    };
    st->on_routes_installed = [this, n](Time t) {
      events_.push_back(std::to_string(t) + " n" + std::to_string(n) +
                        " reroute");
      if (n == 0 && rerouted_at_ < 0) rerouted_at_ = t;
    };
    harness_->agent_at(n).set_native_reaction(
        "gf_react", apps::make_gray_failure_reaction(st));
    states_.push_back(std::move(st));
  }
}

GrayFabricScenario::~GrayFabricScenario() = default;

GrayScenarioResult GrayFabricScenario::run() {
  expects(!ran_, "GrayFabricScenario::run: single-shot");
  ran_ = true;

  const auto& topo = fabric_->topo();
  const NodeId src_host = topo.num_switches;  // first host of leaf 0
  const NodeId dst_host = topo.num_switches + cfg_.hosts_per_leaf;  // leaf 1
  const std::uint32_t src_addr = fabric_->host_at(src_host).address();
  const std::uint32_t dst_addr = fabric_->host_at(dst_host).address();

  // The fault hits the link the sender's traffic actually crosses: leaf 0's
  // initial first hop toward the destination.
  const auto initial_routes = topo.compute_routes_from(0, {});
  const int faulted_port = initial_routes.at(dst_addr);
  expects(faulted_port >= 0, "GrayFabricScenario: destination unreachable");
  const int fault_link = topo.link_at(0, faulted_port);
  expects(fault_link >= 0, "GrayFabricScenario: no link on faulted port");

  if (cfg_.inject_fault) {
    FaultSpec fault;
    fault.kind = FaultSpec::Kind::kGrayLoss;
    fault.link = static_cast<std::size_t>(fault_link);
    fault.direction = -1;  // symmetric gray failure
    fault.at = cfg_.fault_at;
    fault.duration = 0;  // permanent; the reroute is the recovery
    fault.loss = cfg_.fault_loss;
    injector_->schedule(fault);
  }

  // Link-local heartbeats (proto 253) in both directions of every
  // switch-switch link, flowing from t=0 so the detectors' very first poll
  // window is already fed. They traverse the real (faultable) links.
  for (std::size_t i = 0; i < fabric_->num_links(); ++i) {
    const auto& l = topo.links[i];
    if (!topo.is_switch(l.a) || !topo.is_switch(l.b)) continue;
    auto make_hb = [this]() {
      auto pkt = fabric_->factory().make(64);
      fabric_->factory().set(pkt, "ipv4.protocol", 253);
      hb_sent_.fetch_add(1, std::memory_order_relaxed);
      hb_bytes_.fetch_add(pkt.length_bytes(), std::memory_order_relaxed);
      return pkt;
    };
    fabric_->start_periodic(l.a, l.b, cfg_.hb_period, cfg_.run_until, make_hb);
    fabric_->start_periodic(l.b, l.a, cfg_.hb_period, cfg_.run_until, make_hb);
  }

  // Prologues install each switch's initial routes + heartbeat tally entry.
  harness_->run_prologue([this](NodeId node, agent::ReactionContext& ctx) {
    states_[static_cast<std::size_t>(node)]->install_initial_routes(ctx);
  });
  expects(loop_.now() < cfg_.fault_at,
          "GrayFabricScenario: prologues overran fault_at; raise fault_at");

  // Sequenced end-to-end traffic; the receiver decides restoration.
  auto tracker = std::make_shared<GrayDeliveryTracker>();
  tracker->fault_at = cfg_.fault_at;
  tracker->k = static_cast<std::size_t>(cfg_.restore_consecutive);
  start_host_traffic(
      loop_, *fabric_, src_host, cfg_.traffic_period, cfg_.run_until,
      [this, tracker, src_addr, dst_addr]() {
        auto pkt = fabric_->factory().make(cfg_.traffic_bytes);
        fabric_->factory().set(pkt, "ipv4.srcAddr", src_addr);
        fabric_->factory().set(pkt, "ipv4.dstAddr", dst_addr);
        fabric_->factory().set(pkt, "ipv4.protocol", 6);
        fabric_->factory().set(pkt, "ipv4.totalLen", tracker->sent_at.size());
        tracker->sent_at.push_back(loop_.now());
        return pkt;
      });
  fabric_->host_at(dst_host).set_on_receive(
      [this, tracker](const sim::Packet& pkt, Time t) {
        const Time before = tracker->restored_at;
        tracker->on_receive(fabric_->factory().get(pkt, "ipv4.totalLen"),
                            pkt.origin_time(), t);
        if (before < 0 && tracker->restored_at >= 0) {
          events_.push_back(std::to_string(tracker->restored_at) +
                            " delivery restored");
        }
      });

  start_telemetry_sampling(loop_, *fabric_, cfg_.telemetry_window,
                           cfg_.run_until);
  std::unique_ptr<ParallelFabricEngine> engine;
  if (cfg_.threads > 1) {
    engine = std::make_unique<ParallelFabricEngine>(*fabric_, cfg_.threads);
    harness_->set_engine([&e = *engine](Time t) { e.run_until(t); });
  }
  harness_->run_until(cfg_.run_until);
  harness_->set_engine({});
  fabric_->sample_telemetry();

  GrayScenarioResult res;
  res.fault_at = cfg_.fault_at;
  res.fault_link_name = fabric_->link(static_cast<std::size_t>(fault_link)).name();
  res.faulted_port = faulted_port;
  res.detected_at = detected_at_;
  res.rerouted_at = rerouted_at_;
  res.restored_at = tracker->restored_at;
  res.sent = tracker->sent_at.size();
  res.delivered = tracker->delivered;
  res.delivered_before_fault = tracker->delivered_before_fault;
  res.hb_sent = hb_sent_.load(std::memory_order_relaxed);
  res.hb_bytes = hb_bytes_.load(std::memory_order_relaxed);
  if (int_fabric_) res.int_reports = int_fabric_->collector().size();
  res.events = merge_events(injector_->log(), events_);

  auto& metrics = loop_.telemetry().metrics();
  auto us = [](Time from, Time to) {
    return to < 0 ? -1.0 : static_cast<double>(to - from) / kMicrosecond;
  };
  metrics.gauge("net.scenario.gray.detected_us").set(us(res.fault_at, res.detected_at));
  metrics.gauge("net.scenario.gray.rerouted_us").set(us(res.fault_at, res.rerouted_at));
  metrics.gauge("net.scenario.gray.restored_us").set(us(res.fault_at, res.restored_at));
  metrics.gauge("net.scenario.gray.delivered_pkts").set(static_cast<double>(res.delivered));
  return res;
}

// ---------------------------------------------------------------------------
// EcmpFabricScenario
// ---------------------------------------------------------------------------

EcmpFabricScenario::EcmpFabricScenario(EcmpScenarioConfig cfg)
    : cfg_(std::move(cfg)) {
  expects(cfg_.leaves >= 2 && cfg_.spines >= 2,
          "EcmpFabricScenario: need >=2 leaves and >=2 spines");
  expects(cfg_.hosts_per_leaf >= 1, "EcmpFabricScenario: need hosts");
  expects(cfg_.flows >= 2, "EcmpFabricScenario: need >=2 flows");
  artifacts_ = compile::compile_source(
      apps::hash_polarization_fabric_p4r_source(cfg_.spines));

  Topology topo =
      Topology::leaf_spine(cfg_.leaves, cfg_.spines, cfg_.hosts_per_leaf);
  FabricConfig fc;
  fc.switch_cfg = cfg_.switch_cfg;
  fc.default_link = cfg_.link;
  fc.base_seed = cfg_.seed;
  fabric_ = std::make_unique<Fabric>(loop_, artifacts_.prog, std::move(topo), fc);

  if (cfg_.int_enable) {
    int_tel::IntFabricConfig ic;
    ic.sample_every = cfg_.int_sample_every;
    int_fabric_ = std::make_unique<int_tel::IntFabric>(*fabric_, ic);
  }

  HarnessOptions hopts;
  hopts.agent = cfg_.agent;
  hopts.agent.pacing_sleep = cfg_.pacing;
  harness_ = std::make_unique<FabricAgentHarness>(*fabric_, artifacts_, hopts);
  harness_->add_all_switches();

  for (NodeId n = 0; n < fabric_->num_switches(); ++n) {
    auto st = std::make_shared<apps::HashPolState>();
    st->cfg = cfg_.hp;
    st->cfg.num_ports = static_cast<int>(
        fabric_->topo().switch_facing_ports(n).size());
    st->on_shift = [this, n](std::size_t config, Time t) {
      events_.push_back(std::to_string(t) + " n" + std::to_string(n) +
                        " shift config" + std::to_string(config));
      ++shifts_total_;
      if (n == 0) shift_snaps_.push_back({t, uplink_tx()});
    };
    harness_->agent_at(n).set_native_reaction(
        "hp_react", apps::make_hash_pol_reaction(st));
    states_.push_back(std::move(st));
  }
}

EcmpFabricScenario::~EcmpFabricScenario() = default;

std::vector<std::uint64_t> EcmpFabricScenario::uplink_tx() const {
  std::vector<std::uint64_t> tx;
  for (int s = 0; s < cfg_.spines; ++s) {
    auto& l = const_cast<Fabric&>(*fabric_).link_between(0, cfg_.leaves + s);
    tx.push_back(l.dir_stats(l.direction_from(0)).tx_pkts);
  }
  return tx;
}

namespace {

/// Max share of any entry in (end - start), or 0 when nothing flowed.
double max_share(const std::vector<std::uint64_t>& start,
                 const std::vector<std::uint64_t>& end) {
  std::uint64_t total = 0, max_delta = 0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    const std::uint64_t d = end[i] - start[i];
    total += d;
    max_delta = std::max(max_delta, d);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(max_delta) / static_cast<double>(total);
}

}  // namespace

EcmpScenarioResult EcmpFabricScenario::run() {
  expects(!ran_, "EcmpFabricScenario::run: single-shot");
  ran_ = true;

  const auto& topo = fabric_->topo();
  const NodeId src_host = topo.num_switches;  // first host of leaf 0
  const NodeId dst_host = topo.num_switches + cfg_.hosts_per_leaf;  // leaf 1
  const std::uint32_t src_addr = fabric_->host_at(src_host).address();
  const std::uint32_t dst_addr = fabric_->host_at(dst_host).address();

  // Prologue: leaves install route entries for their *local* hosts only
  // (remote traffic falls through to ECMP); spines for every destination.
  harness_->run_prologue([this, &topo](NodeId node, agent::ReactionContext& ctx) {
    for (const auto& [addr, host] : topo.dst_node) {
      const NodeId leaf = leaf_of(topo, host);
      int port = -1;
      if (node < cfg_.leaves) {
        if (leaf != node) continue;
        port = port_toward(topo, node, host);
      } else {
        port = port_toward(topo, node, leaf);
      }
      p4::EntrySpec spec;
      spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
      spec.action = "set_egress";
      spec.action_args = {static_cast<std::uint64_t>(port)};
      ctx.add_entry("route", spec);
    }
  });

  // NAT'd flows: identical srcAddr/dstAddr/srcPort, distinct dstPort — the
  // initial (src, dst, srcPort) hash inputs polarize them all onto one
  // uplink; any shifted configuration includes dstPort and spreads them.
  auto sent = std::make_shared<std::uint64_t>(0);
  start_host_traffic(
      loop_, *fabric_, src_host, cfg_.send_period, cfg_.run_until,
      [this, sent, src_addr, dst_addr]() {
        auto pkt = fabric_->factory().make(cfg_.traffic_bytes);
        fabric_->factory().set(pkt, "ipv4.srcAddr", src_addr);
        fabric_->factory().set(pkt, "ipv4.dstAddr", dst_addr);
        fabric_->factory().set(pkt, "ipv4.protocol", 6);
        fabric_->factory().set(pkt, "l4.srcPort", 5555);
        fabric_->factory().set(
            pkt, "l4.dstPort",
            1000 + *sent % static_cast<std::uint64_t>(cfg_.flows));
        ++*sent;
        return pkt;
      });
  auto delivered = std::make_shared<std::uint64_t>(0);
  fabric_->host_at(dst_host).set_on_receive(
      [delivered](const sim::Packet&, Time) { ++*delivered; });

  const auto tx_start = uplink_tx();
  start_telemetry_sampling(loop_, *fabric_, cfg_.telemetry_window,
                           cfg_.run_until);
  std::unique_ptr<ParallelFabricEngine> engine;
  if (cfg_.threads > 1) {
    engine = std::make_unique<ParallelFabricEngine>(*fabric_, cfg_.threads);
    harness_->set_engine([&e = *engine](Time t) { e.run_until(t); });
  }
  harness_->run_until(cfg_.run_until);
  harness_->set_engine({});
  fabric_->sample_telemetry();
  const auto tx_end = uplink_tx();

  EcmpScenarioResult res;
  res.shifts = shifts_total_;
  res.sent = *sent;
  res.delivered = *delivered;
  if (int_fabric_) res.int_reports = int_fabric_->collector().size();
  res.events = events_;
  if (shift_snaps_.empty()) {
    res.share_before = max_share(tx_start, tx_end);
    res.share_after = res.share_before;
  } else {
    res.first_shift_at = shift_snaps_.front().t;
    res.share_before = max_share(tx_start, shift_snaps_.front().tx);
    res.share_after = max_share(shift_snaps_.back().tx, tx_end);
  }

  auto& metrics = loop_.telemetry().metrics();
  metrics.gauge("net.scenario.ecmp.share_before").set(res.share_before);
  metrics.gauge("net.scenario.ecmp.share_after").set(res.share_after);
  metrics.gauge("net.scenario.ecmp.first_shift_us")
      .set(res.first_shift_at < 0
               ? -1.0
               : static_cast<double>(res.first_shift_at) / kMicrosecond);
  metrics.gauge("net.scenario.ecmp.shifts").set(static_cast<double>(res.shifts));
  return res;
}

}  // namespace mantis::net
