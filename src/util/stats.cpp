#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mantis {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const {
  expects(n_ > 0, "OnlineStats::mean: no samples");
  return mean_;
}

double OnlineStats::variance() const {
  expects(n_ > 1, "OnlineStats::variance: need >= 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  expects(n_ > 0, "OnlineStats::min: no samples");
  return min_;
}

double OnlineStats::max() const {
  expects(n_ > 0, "OnlineStats::max: no samples");
  return max_;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  expects(!values_.empty(), "Samples::mean: no samples");
  double total = 0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Samples::percentile(double q) const {
  expects(!values_.empty(), "Samples::percentile: no samples");
  expects(q >= 0.0 && q <= 100.0, "Samples::percentile: q out of [0,100]");
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double median_of(std::vector<double> values) {
  expects(!values.empty(), "median_of: no samples");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

double median_absolute_deviation(const std::vector<double>& values) {
  const double med = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - med));
  return median_of(std::move(deviations));
}

}  // namespace mantis
