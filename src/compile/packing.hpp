// Sorted first-fit bin packing (paper §4.1 "Compound usages" and §4.2):
// Mantis packs init-action parameters into as few actions as possible and
// measurement fields into as few 32-bit registers as possible, using
// first-fit-decreasing.
//
// The capacity is a budget from the RmtResourceModel; running out of it is a
// user-visible target limitation, so packing failures surface as
// p4::ResourceExhausted naming the budget (never a crash or a silent
// over-full bin).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/rmt_model.hpp"

namespace mantis::compile {

struct PackItem {
  std::string name;
  unsigned size = 0;  ///< bits
};

struct PackedBin {
  std::vector<std::size_t> items;  ///< indices into the input vector
  unsigned used = 0;               ///< bits consumed
};

/// First-fit-decreasing. The relative order of equal-sized items is preserved
/// (stable sort).
///
/// `budget` names the RmtResourceModel budget `capacity` came from; it labels
/// the ResourceExhausted thrown when capacity is zero, or when an item is
/// larger than capacity and `allow_oversized` is false. With
/// `allow_oversized` (the measurement-register path, which widens the backing
/// register for >capacity fields) oversized items get a dedicated solo bin
/// instead.
std::vector<PackedBin> first_fit_decreasing(
    const std::vector<PackItem>& items, unsigned capacity,
    p4::RmtResource budget = p4::RmtResource::kActionBits,
    bool allow_oversized = true);

/// Variant that pins `pinned` item indices into the first bin (used to force
/// vv/mv into the master init action).
std::vector<PackedBin> first_fit_decreasing_pinned(
    const std::vector<PackItem>& items, unsigned capacity,
    const std::vector<std::size_t>& pinned,
    p4::RmtResource budget = p4::RmtResource::kActionBits,
    bool allow_oversized = true);

}  // namespace mantis::compile
