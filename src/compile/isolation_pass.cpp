// Isolation transformations (paper §5):
//  * every user-declared malleable table gains an exact-match vv column and
//    doubled capacity (primary + shadow copies, Figs 7-8);
//  * every user register polled by a reaction gains an interleaved duplicate
//    register (2x instances, index = 2*i + mv) and a parallel timestamp
//    register incremented on each write (§5.2), with the write-only
//    elimination optimization when the data plane never reads the original.
#include <set>

#include "compile/context.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace mantis::compile::detail {

namespace {

bool data_plane_reads(const p4::Program& prog, const std::string& reg) {
  for (const auto& act : prog.actions) {
    for (const auto& ins : act.body) {
      if (ins.op == p4::PrimOp::kRegisterRead && ins.object == reg) return true;
    }
  }
  return false;
}

}  // namespace

void run_isolation_pass(Context& ctx) {
  auto& prog = ctx.prog;

  // ---- vv column on malleable tables ---------------------------------------
  for (auto& [name, info] : ctx.bind.tables) {
    if (!info.malleable) continue;
    auto* tbl = prog.find_table(name);
    ensures(tbl != nullptr, "isolation_pass: missing table " + name);
    info.vv_col = static_cast<int>(tbl->reads.size());
    tbl->reads.push_back(
        p4::MatchSpec{ctx.bind.vv_field, p4::MatchKind::kExact, ""});
    info.total_cols = tbl->reads.size();
    tbl->size *= 2;  // primary + shadow copy of every entry
  }

  // ---- duplicate + timestamp registers for reaction register params --------
  std::set<std::string> done;
  for (const auto& rx : ctx.src->reactions) {
    for (const auto& param : rx.params) {
      if (param.kind != p4r::ReactionParam::Kind::kRegister) continue;
      if (!done.insert(param.reg).second) continue;

      const auto* reg = prog.find_register(param.reg);
      ensures(reg != nullptr, "isolation_pass: missing register " + param.reg);
      // Copy out before the push_backs below: they may reallocate
      // prog.registers and invalidate `reg`.
      const std::uint32_t reg_width = reg->width;
      const std::uint32_t reg_count = reg->instance_count;
      const std::string dup_name = param.reg + "__dup_";
      const std::string ts_name = param.reg + "__ts_";
      const std::string seq_name = param.reg + "__seq_";
      const std::uint32_t dup_count = reg_count * 2;
      prog.registers.push_back(p4::RegisterDecl{dup_name, reg_width, dup_count});
      // ts holds, per copy, the value of the per-index write counter (seq)
      // at write time. A global-per-index stamp (not a per-copy count) is
      // what lets the control plane order the two copies' contents.
      prog.registers.push_back(p4::RegisterDecl{ts_name, 32, dup_count});
      prog.registers.push_back(p4::RegisterDecl{seq_name, 32, reg_count});

      const p4::FieldId dupidx = prog.append_metadata_field(
          kMetaInstance, param.reg + "_dupidx_", 32);
      const p4::FieldId tsv = prog.append_metadata_field(
          kMetaInstance, param.reg + "_tsv_", 32);

      const bool keep_original = data_plane_reads(prog, param.reg);

      for (auto& act : prog.actions) {
        std::vector<p4::Instruction> body;
        body.reserve(act.body.size());
        for (auto& ins : act.body) {
          if (ins.op != p4::PrimOp::kRegisterWrite || ins.object != param.reg) {
            body.push_back(std::move(ins));
            continue;
          }
          const p4::Operand idx_op = ins.args[0];
          const p4::Operand val_op = ins.args[1];
          if (keep_original) body.push_back(std::move(ins));

          // seq[idx] += 1 (read-modify-write in the stateful ALU)
          p4::Instruction rseq;
          rseq.op = p4::PrimOp::kRegisterRead;
          rseq.object = seq_name;
          rseq.args = {p4::Operand::of_field(tsv), idx_op};
          body.push_back(std::move(rseq));
          p4::Instruction inc;
          inc.op = p4::PrimOp::kAddToField;
          inc.args = {p4::Operand::of_field(tsv), p4::Operand::of_const(1)};
          body.push_back(std::move(inc));
          p4::Instruction wseq;
          wseq.op = p4::PrimOp::kRegisterWrite;
          wseq.object = seq_name;
          wseq.args = {idx_op, p4::Operand::of_field(tsv)};
          body.push_back(std::move(wseq));
          // dupidx = idx * 2 + mv
          p4::Instruction shl;
          shl.op = p4::PrimOp::kShiftLeft;
          shl.args = {p4::Operand::of_field(dupidx), idx_op,
                      p4::Operand::of_const(1)};
          body.push_back(std::move(shl));
          p4::Instruction addmv;
          addmv.op = p4::PrimOp::kAddToField;
          addmv.args = {p4::Operand::of_field(dupidx),
                        p4::Operand::of_field(ctx.bind.mv_field)};
          body.push_back(std::move(addmv));
          // dup[dupidx] = value; ts[dupidx] = seq[idx]
          p4::Instruction wdup;
          wdup.op = p4::PrimOp::kRegisterWrite;
          wdup.object = dup_name;
          wdup.args = {p4::Operand::of_field(dupidx), val_op};
          body.push_back(std::move(wdup));
          p4::Instruction wts;
          wts.op = p4::PrimOp::kRegisterWrite;
          wts.object = ts_name;
          wts.args = {p4::Operand::of_field(dupidx), p4::Operand::of_field(tsv)};
          body.push_back(std::move(wts));
        }
        act.body = std::move(body);
      }

      if (!keep_original) {
        // Write-only optimization: the original register is dead; remove it.
        std::erase_if(prog.registers, [&](const p4::RegisterDecl& r) {
          return r.name == param.reg;
        });
      }
    }
  }
}

}  // namespace mantis::compile::detail
