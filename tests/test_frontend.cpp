// P4R frontend tests: lexer, parser, and semantic analysis.
#include <gtest/gtest.h>

#include "p4r/lexer.hpp"
#include "p4r/parser.hpp"
#include "p4r/sema.hpp"

namespace mantis::p4r {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenKindsAndPositions) {
  const auto toks = lex("table foo {\n  size : 0x1F;\n}");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_TRUE(toks[0].is_ident("table"));
  EXPECT_TRUE(toks[1].is_ident("foo"));
  EXPECT_TRUE(toks[2].is_sym("{"));
  EXPECT_TRUE(toks[3].is_ident("size"));
  EXPECT_TRUE(toks[4].is_sym(":"));
  EXPECT_EQ(toks[5].kind, TokKind::kNumber);
  EXPECT_EQ(toks[5].value, 0x1fu);
  EXPECT_EQ(toks[3].line, 2u);
  EXPECT_EQ(toks[3].col, 3u);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = lex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(toks.size(), 3u);  // a, b, EOF
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_TRUE(toks[1].is_ident("b"));
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(Lexer, MultiCharOperatorsLongestMatch) {
  const auto toks = lex("a <<= b << c <= d < e ${f}");
  EXPECT_TRUE(toks[1].is_sym("<<="));
  EXPECT_TRUE(toks[3].is_sym("<<"));
  EXPECT_TRUE(toks[5].is_sym("<="));
  EXPECT_TRUE(toks[7].is_sym("<"));
  EXPECT_TRUE(toks[9].is_sym("${"));
  EXPECT_TRUE(toks[10].is_ident("f"));
  EXPECT_TRUE(toks[11].is_sym("}"));
}

TEST(Lexer, StringLiterals) {
  const auto toks = lex("t.addEntry(\"my_action\", 1)");
  bool found = false;
  for (const auto& tok : toks) {
    if (tok.kind == TokKind::kString) {
      EXPECT_EQ(tok.text, "my_action");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(lex("\"unterminated"), UserError);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex("@"), UserError);
  EXPECT_THROW(lex("/* never closed"), UserError);
  EXPECT_THROW(lex("123abc"), UserError);
  EXPECT_THROW(lex("0x"), UserError);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, FullDeclarationSweep) {
  const auto ast = parse(R"(
header_type h_t { fields { a : 32; b : 8; } }
header h_t h;
metadata h_t m;
register r { width : 16; instance_count : 4; }
counter c { type : packets; instance_count : 2; }
field_list fl { h.a; ${mf}; }
field_list_calculation hc {
  input { fl; }
  algorithm : crc16;
  output_width : 12;
}
malleable value mv { width : 16; init : 3; }
malleable field mf { width : 32; init : h.a; alts { h.a, m.a } }
action act(x) { modify_field(h.b, x); }
malleable table mt {
  reads { ${mf} : exact; h.b : ternary; }
  actions { act; _drop; }
  size : 32;
}
table pt { reads { h.a : lpm; } actions { act; } default_action : act(7); }
control ingress { apply(mt); if (h.b == 1) { apply(pt); } else { apply(pt); } }
control egress { }
reaction rx(ing h.a, egr h.b, reg r[0:3], ${mv}) {
  int x = ${mv} + 1;
  ${mv} = x;
}
)");
  EXPECT_EQ(ast.header_types.size(), 1u);
  EXPECT_EQ(ast.instances.size(), 2u);
  EXPECT_EQ(ast.registers.size(), 1u);
  EXPECT_EQ(ast.counters.size(), 1u);
  ASSERT_EQ(ast.field_lists.size(), 1u);
  EXPECT_TRUE(ast.field_lists[0].entries[1].malleable);
  EXPECT_EQ(ast.hash_calcs[0].algorithm, "crc16");
  EXPECT_EQ(ast.mbl_values[0].init, 3u);
  ASSERT_EQ(ast.mbl_fields.size(), 1u);
  EXPECT_EQ(ast.mbl_fields[0].alts,
            (std::vector<std::string>{"h.a", "m.a"}));
  ASSERT_EQ(ast.tables.size(), 2u);
  EXPECT_TRUE(ast.tables[0].malleable);
  EXPECT_FALSE(ast.tables[1].malleable);
  EXPECT_EQ(ast.tables[1].default_action, "act");
  EXPECT_EQ(ast.tables[1].default_args, (std::vector<std::uint64_t>{7}));
  ASSERT_EQ(ast.reactions.size(), 1u);
  ASSERT_EQ(ast.reactions[0].args.size(), 4u);
  EXPECT_EQ(ast.reactions[0].args[2].kind, AstReactionArg::Kind::kRegister);
  EXPECT_EQ(ast.reactions[0].args[2].lo, 0u);
  EXPECT_EQ(ast.reactions[0].args[2].hi, 3u);
  EXPECT_EQ(ast.reactions[0].args[3].kind, AstReactionArg::Kind::kMalleable);
  EXPECT_FALSE(ast.reactions[0].body.empty());
  // Control flow captured if/else.
  ASSERT_EQ(ast.ingress.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<AstIf>(ast.ingress[1].node));
}

TEST(Parser, ReactionBodyCapturesNestedBracesAndMblRefs) {
  const auto ast = parse(R"(
reaction r() {
  for (int i = 0; i < 4; ++i) {
    if (i > 2) { ${v} = i; }
  }
}
)");
  ASSERT_EQ(ast.reactions.size(), 1u);
  int braces = 0;
  for (const auto& tok : ast.reactions[0].body) {
    if (tok.is_sym("{")) ++braces;
  }
  EXPECT_EQ(braces, 2);  // for-body and if-body, not the ${v} close
}

TEST(Parser, ParserDeclIgnored) {
  const auto ast = parse(R"(
parser start { extract(h); return ingress; }
header_type h_t { fields { a : 8; } }
header h_t h;
)");
  EXPECT_EQ(ast.header_types.size(), 1u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse("table { }"), UserError);           // missing name
  EXPECT_THROW(parse("malleable widget x { }"), UserError);
  EXPECT_THROW(parse("control sideways { }"), UserError);
  EXPECT_THROW(parse("reaction r(bogus h.a) { }"), UserError);
  EXPECT_THROW(parse("action a() { foo(1) }"), UserError);  // missing ';'
  EXPECT_THROW(parse("reaction r() { "), UserError);        // unterminated
}

// ---------------------------------------------------------------------------
// Sema
// ---------------------------------------------------------------------------

const char* kGoodSrc = R"(
header_type h_t { fields { a : 32; b : 32; c : 8; } }
header h_t h;
register r { width : 32; instance_count : 8; }
malleable value knob { width : 8; init : 2; }
malleable field sel { width : 32; init : h.a; alts { h.a, h.b } }
action act() { add(h.c, h.c, ${knob}); modify_field(${sel}, 5); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt {
  reads { ${sel} : exact; }
  actions { act; }
  size : 16;
}
table ft { reads { h.c : exact; } actions { fwd; } }
control ingress { apply(mt); apply(ft); }
control egress { }
reaction rx(ing h.a, reg r[2:5]) { ${knob} = 1; }
)";

TEST(Sema, LowersGoodProgram) {
  const auto out = frontend(kGoodSrc);
  EXPECT_EQ(out.values.size(), 1u);
  ASSERT_EQ(out.fields.size(), 1u);
  EXPECT_EQ(out.fields[0].alts.size(), 2u);
  EXPECT_EQ(out.fields[0].init_alt, 0u);
  EXPECT_TRUE(out.is_malleable_table("mt"));
  EXPECT_FALSE(out.is_malleable_table("ft"));
  ASSERT_EQ(out.reactions.size(), 1u);
  const auto& rx = out.reactions[0];
  ASSERT_EQ(rx.params.size(), 2u);
  EXPECT_EQ(rx.params[0].kind, ReactionParam::Kind::kField);
  EXPECT_EQ(rx.params[0].c_name, "h_a");
  EXPECT_EQ(rx.params[1].kind, ReactionParam::Kind::kRegister);
  EXPECT_EQ(rx.params[1].lo, 2u);
  EXPECT_EQ(rx.params[1].hi, 5u);
  // Malleable refs preserved as kMbl operands for the compiler.
  const auto* act = out.prog.find_action("act");
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(act->body[0].args[2].kind, p4::OperandKind::kMbl);
  EXPECT_EQ(act->body[1].args[0].mbl, "sel");
  // Table read kept as malleable.
  EXPECT_TRUE(out.prog.find_table("mt")->reads[0].is_malleable());
}

struct SemaErrorCase {
  const char* name;
  const char* source;
};

class SemaErrors : public ::testing::TestWithParam<SemaErrorCase> {};

TEST_P(SemaErrors, Rejected) {
  EXPECT_THROW(frontend(GetParam().source), UserError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemaErrors,
    ::testing::Values(
        SemaErrorCase{"unknown_field_in_action",
                      "action a() { modify_field(h.x, 1); }"},
        SemaErrorCase{"unknown_malleable",
                      "action a() { modify_field(standard_metadata.egress_spec, "
                      "${ghost}); }"},
        SemaErrorCase{"init_not_in_alts",
                      "header_type h_t { fields { a : 32; b : 32; c : 32; } }\n"
                      "header h_t h;\n"
                      "malleable field f { width : 32; init : h.c; alts { h.a, "
                      "h.b } }"},
        SemaErrorCase{"alt_width_mismatch",
                      "header_type h_t { fields { a : 32; b : 16; } }\n"
                      "header h_t h;\n"
                      "malleable field f { width : 32; init : h.a; alts { h.a, "
                      "h.b } }"},
        SemaErrorCase{"value_as_write_destination",
                      "header_type h_t { fields { a : 32; } }\nheader h_t h;\n"
                      "malleable value v { width : 8; init : 0; }\n"
                      "action a() { modify_field(${v}, h.a); }"},
        SemaErrorCase{"duplicate_malleable",
                      "malleable value v { width : 8; init : 0; }\n"
                      "malleable value v { width : 8; init : 0; }"},
        SemaErrorCase{"reaction_bad_register_range",
                      "register r { width : 32; instance_count : 4; }\n"
                      "reaction rx(reg r[0:4]) { }"},
        SemaErrorCase{"reaction_unknown_field", "reaction rx(ing h.a) { }"},
        SemaErrorCase{"table_unknown_action",
                      "header_type h_t { fields { a : 32; } }\nheader h_t h;\n"
                      "table t { reads { h.a : exact; } actions { nope; } }"},
        SemaErrorCase{"apply_unknown_table", "control ingress { apply(t); }"},
        SemaErrorCase{"field_width_zero",
                      "header_type h_t { fields { a : 0; } }\nheader h_t h;"},
        SemaErrorCase{"duplicate_table",
                      "header_type h_t { fields { a : 32; } }\nheader h_t h;\n"
                      "action x() { }\n"
                      "table t { reads { h.a : exact; } actions { x; } }\n"
                      "table t { reads { h.a : exact; } actions { x; } }"}),
    [](const ::testing::TestParamInfo<SemaErrorCase>& info) {
      return info.param.name;
    });

TEST(Sema, ReactionNameCollisionRejected) {
  // ing h.a and a register named h_a would collide in the C namespace.
  EXPECT_THROW(frontend(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
register h_a { width : 32; instance_count : 2; }
reaction rx(ing h.a, reg h_a[0:1]) { }
)"),
               UserError);
}

}  // namespace
}  // namespace mantis::p4r
