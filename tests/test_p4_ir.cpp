// Unit tests for the P4 IR: field catalog, program validation, control-flow
// helpers, and the P4-14 emitter.
#include <gtest/gtest.h>

#include "p4/emit.hpp"
#include "p4/ir.hpp"

namespace mantis::p4 {
namespace {

Program tiny_program() {
  Program prog;
  add_standard_metadata(prog);
  prog.add_metadata_instance("m_t", "m", {{"a", 32}, {"b", 16}});

  ActionDecl act;
  act.name = "bump";
  act.params.push_back(ActionParam{"amount", 16});
  Instruction ins;
  ins.op = PrimOp::kAddToField;
  ins.args = {Operand::of_field(prog.fields.require("m.a")), Operand::of_param(0)};
  act.body.push_back(ins);
  prog.actions.push_back(act);

  TableDecl tbl;
  tbl.name = "t";
  tbl.reads.push_back(MatchSpec{prog.fields.require("m.b"), MatchKind::kExact, ""});
  tbl.actions = {"bump"};
  tbl.size = 16;
  prog.tables.push_back(tbl);

  prog.ingress.nodes.push_back(ControlNode{ApplyNode{"t"}});
  return prog;
}

TEST(FieldCatalog, AddFindWidths) {
  FieldCatalog cat;
  const FieldId a = cat.add("h", "x", 32);
  const FieldId b = cat.add("h", "y", 9);
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.find("h.x"), a);
  EXPECT_EQ(cat.find("h.z"), kInvalidField);
  EXPECT_EQ(cat.width(b), 9);
  EXPECT_EQ(cat.full_name(a), "h.x");
  EXPECT_EQ(cat.instance(a), "h");
  EXPECT_EQ(cat.field(a), "x");
  EXPECT_THROW(cat.add("h", "x", 8), PreconditionError);  // duplicate
  EXPECT_THROW(cat.add("h", "w", 0), PreconditionError);  // zero width
  EXPECT_THROW(cat.add("h", "w", 65), PreconditionError);
  EXPECT_THROW(cat.require("h.z"), UserError);
}

TEST(ProgramTest, ValidateAcceptsTiny) {
  auto prog = tiny_program();
  EXPECT_NO_THROW(prog.validate());
}

TEST(ProgramTest, ValidateRejectsUnknownAction) {
  auto prog = tiny_program();
  prog.tables[0].actions.push_back("missing");
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, ValidateRejectsWrongArity) {
  auto prog = tiny_program();
  prog.actions[0].body[0].args.push_back(Operand::of_const(1));
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, ValidateRejectsUnresolvedMalleable) {
  auto prog = tiny_program();
  prog.actions[0].body[0].args[1] = Operand::of_mbl("ghost");
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, ValidateRejectsMalleableMatchKey) {
  auto prog = tiny_program();
  prog.tables[0].reads[0].mbl = "ghost";
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, ValidateRejectsConstDestination) {
  auto prog = tiny_program();
  prog.actions[0].body[0].args[0] = Operand::of_const(1);
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, ValidateRejectsDefaultArgMismatch) {
  auto prog = tiny_program();
  prog.tables[0].default_action = "bump";  // bump takes one arg, none given
  EXPECT_THROW(prog.validate(), InvariantError);
}

TEST(ProgramTest, TablesInAndGress) {
  auto prog = tiny_program();
  const auto ing = prog.tables_in(prog.ingress);
  ASSERT_EQ(ing.size(), 1u);
  EXPECT_EQ(ing[0], "t");
  EXPECT_TRUE(prog.applied_in("t", prog.ingress));
  EXPECT_FALSE(prog.applied_in("t", prog.egress));
  EXPECT_EQ(prog.gress_of_table("t"), Gress::kIngress);
  EXPECT_THROW(prog.gress_of_table("nope"), PreconditionError);
}

TEST(ProgramTest, TablesInSeesNestedIfBranches) {
  auto prog = tiny_program();
  TableDecl t2 = prog.tables[0];
  t2.name = "t2";
  prog.tables.push_back(t2);
  IfNode ifn;
  ifn.cond.lhs = Operand::of_field(prog.fields.require("m.a"));
  ifn.cond.op = RelOp::kGt;
  ifn.cond.rhs = Operand::of_const(3);
  ifn.then_branch.push_back(ControlNode{ApplyNode{"t2"}});
  prog.ingress.nodes.push_back(ControlNode{std::move(ifn)});
  const auto ing = prog.tables_in(prog.ingress);
  EXPECT_EQ(ing.size(), 2u);
  EXPECT_NO_THROW(prog.validate());
}

TEST(ProgramTest, AppendMetadataField) {
  auto prog = tiny_program();
  const FieldId f = prog.append_metadata_field("m", "extra", 4, 9);
  EXPECT_EQ(prog.fields.width(f), 4);
  const auto* inst = prog.find_instance("m");
  ASSERT_NE(inst, nullptr);
  ASSERT_FALSE(inst->initializers.empty());
  EXPECT_EQ(inst->initializers.back().first, "extra");
  EXPECT_EQ(inst->initializers.back().second, 9u);
  const auto* type = prog.find_header_type("m_t");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->fields.back().name, "extra");
}

TEST(ProgramTest, HeaderTotalWidth) {
  HeaderTypeDecl ht;
  ht.fields = {{"a", 32}, {"b", 16}, {"c", 1}};
  EXPECT_EQ(ht.total_width(), 49);
}

TEST(Emit, ActionAndTableShapes) {
  auto prog = tiny_program();
  const auto text = emit_p4(prog);
  EXPECT_NE(text.find("action bump(amount) {"), std::string::npos);
  EXPECT_NE(text.find("add_to_field(m.a, amount);"), std::string::npos);
  EXPECT_NE(text.find("table t {"), std::string::npos);
  EXPECT_NE(text.find("m.b : exact;"), std::string::npos);
  EXPECT_NE(text.find("control ingress {"), std::string::npos);
  EXPECT_NE(text.find("apply(t);"), std::string::npos);
}

TEST(Emit, RegisterPrimitiveOrderFollowsP4_14) {
  Program prog;
  add_standard_metadata(prog);
  prog.add_metadata_instance("m_t", "m", {{"a", 32}});
  prog.registers.push_back(RegisterDecl{"r", 32, 4});
  ActionDecl act;
  act.name = "rw";
  Instruction rd;
  rd.op = PrimOp::kRegisterRead;
  rd.object = "r";
  rd.args = {Operand::of_field(prog.fields.require("m.a")), Operand::of_const(2)};
  act.body.push_back(rd);
  Instruction wr;
  wr.op = PrimOp::kRegisterWrite;
  wr.object = "r";
  wr.args = {Operand::of_const(2), Operand::of_field(prog.fields.require("m.a"))};
  act.body.push_back(wr);
  prog.actions.push_back(act);
  const auto text = emit_action(prog, prog.actions.back());
  EXPECT_NE(text.find("register_read(m.a, r, 2);"), std::string::npos);
  EXPECT_NE(text.find("register_write(r, 2, m.a);"), std::string::npos);
}

TEST(Emit, MalleablePlaceholdersVisibleInPreCompileDumps) {
  auto prog = tiny_program();
  prog.actions[0].body[0].args[1] = Operand::of_mbl("knob");
  const auto text = emit_action(prog, prog.actions[0]);
  EXPECT_NE(text.find("${knob}"), std::string::npos);
}

TEST(StandardMetadata, Idempotent) {
  Program prog;
  add_standard_metadata(prog);
  const auto n = prog.fields.size();
  add_standard_metadata(prog);
  EXPECT_EQ(prog.fields.size(), n);
  EXPECT_NE(prog.fields.find(intrinsics::kIngressPort), kInvalidField);
  EXPECT_EQ(prog.fields.width(prog.fields.require(intrinsics::kEnqQdepth)), 19);
}

}  // namespace
}  // namespace mantis::p4
