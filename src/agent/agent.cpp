#include "agent/agent.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mantis::agent {

namespace {
constexpr std::uint64_t kFullMask = ~std::uint64_t{0};
}

// ---------------------------------------------------------------------------
// ReactionContext
// ---------------------------------------------------------------------------

bool ReactionContext::has_arg(const std::string& name) const {
  return params_ != nullptr && (params_->scalars.count(name) != 0 ||
                                params_->arrays.count(name) != 0);
}

std::int64_t ReactionContext::arg(const std::string& name) const {
  expects(params_ != nullptr, "arg() outside a reaction");
  auto it = params_->scalars.find(name);
  if (it == params_->scalars.end()) throw UserError("no scalar arg: " + name);
  return it->second;
}

std::int64_t ReactionContext::arg(const std::string& name,
                                  std::uint32_t index) const {
  expects(params_ != nullptr, "arg() outside a reaction");
  auto it = params_->arrays.find(name);
  if (it == params_->arrays.end()) throw UserError("no array arg: " + name);
  const auto& arr = it->second;
  if (index < arr.lo || index >= arr.lo + arr.values.size()) {
    throw UserError("arg " + name + ": index out of range");
  }
  return arr.values[index - arr.lo];
}

std::uint32_t ReactionContext::arg_lo(const std::string& name) const {
  expects(params_ != nullptr, "arg_lo() outside a reaction");
  auto it = params_->arrays.find(name);
  if (it == params_->arrays.end()) throw UserError("no array arg: " + name);
  return it->second.lo;
}

std::uint32_t ReactionContext::arg_hi(const std::string& name) const {
  expects(params_ != nullptr, "arg_hi() outside a reaction");
  auto it = params_->arrays.find(name);
  if (it == params_->arrays.end()) throw UserError("no array arg: " + name);
  return it->second.lo + static_cast<std::uint32_t>(it->second.values.size()) - 1;
}

std::uint64_t ReactionContext::get(const std::string& name) const {
  auto it = agent_->scalars_.find(name);
  if (it == agent_->scalars_.end()) throw UserError("no malleable scalar: " + name);
  return it->second;
}

void ReactionContext::set(const std::string& name, std::uint64_t value) {
  auto it = agent_->scalars_.find(name);
  if (it == agent_->scalars_.end()) throw UserError("no malleable scalar: " + name);
  const auto& slot = agent_->art_->bindings.scalars.at(name);
  if (slot.is_selector && value >= slot.alt_count) {
    throw UserError("malleable field " + name + ": alt index " +
                    std::to_string(value) + " out of range");
  }
  if ((value & mask_for_width(slot.width)) != value) {
    throw UserError("malleable " + name + ": value wider than " +
                    std::to_string(slot.width) + " bits");
  }
  it->second = value;
  if (!agent_->in_reaction_) agent_->commit_scalars_immediate();
}

void ReactionContext::shift_field(const std::string& name, std::size_t alt_index) {
  set(name, alt_index);
}

UserEntryId ReactionContext::add_entry(const std::string& table,
                                       const p4::EntrySpec& user) {
  auto it = agent_->tables_.find(table);
  if (it == agent_->tables_.end()) throw UserError("unknown user table: " + table);
  auto& rt = it->second;
  if (!agent_->in_reaction_ || !rt.info->malleable) {
    // Immediate mode touches concrete handles; a still-in-flight async
    // mirror may own some of them, so settle it first.
    agent_->drain_pending_pushes();
    return agent_->protocol_.immediate_add(table, user);
  }
  // Buffered: materialize the user entry now (so find_entry sees it), defer
  // the data-plane installs to prepare/mirror.
  const UserEntryId id = rt.next_id++;
  TableRuntime::UserEntry entry;
  entry.user_spec = user;
  rt.entries.emplace(id, std::move(entry));
  PendingOp op;
  op.kind = PendingOp::Kind::kAdd;
  op.table = table;
  op.id = id;
  op.user_spec = user;
  agent_->pending_.push_back(std::move(op));
  return id;
}

void ReactionContext::mod_entry(const std::string& table, UserEntryId id,
                                const std::string& action,
                                std::vector<std::uint64_t> args) {
  auto it = agent_->tables_.find(table);
  if (it == agent_->tables_.end()) throw UserError("unknown user table: " + table);
  auto& rt = it->second;
  if (!agent_->in_reaction_ || !rt.info->malleable) {
    agent_->drain_pending_pushes();
    agent_->protocol_.immediate_mod(table, id, action, std::move(args));
    return;
  }
  auto eit = rt.entries.find(id);
  if (eit == rt.entries.end()) throw UserError("mod_entry: bad entry id");
  if (eit->second.pending_delete) {
    throw UserError("mod_entry: entry deleted this iteration");
  }
  PendingOp op;
  op.kind = PendingOp::Kind::kMod;
  op.table = table;
  op.id = id;
  op.old_action = eit->second.user_spec.action;
  eit->second.user_spec.action = action;
  eit->second.user_spec.action_args = std::move(args);
  op.user_spec = eit->second.user_spec;
  agent_->pending_.push_back(std::move(op));
}

void ReactionContext::del_entry(const std::string& table, UserEntryId id) {
  auto it = agent_->tables_.find(table);
  if (it == agent_->tables_.end()) throw UserError("unknown user table: " + table);
  auto& rt = it->second;
  if (!agent_->in_reaction_ || !rt.info->malleable) {
    agent_->drain_pending_pushes();
    agent_->protocol_.immediate_del(table, id);
    return;
  }
  auto eit = rt.entries.find(id);
  if (eit == rt.entries.end()) throw UserError("del_entry: bad entry id");
  if (eit->second.pending_delete) {
    throw UserError("del_entry: entry already deleted this iteration");
  }
  eit->second.pending_delete = true;
  PendingOp op;
  op.kind = PendingOp::Kind::kDel;
  op.table = table;
  op.id = id;
  agent_->pending_.push_back(std::move(op));
}

std::optional<UserEntryId> ReactionContext::find_entry(
    const std::string& table, const std::vector<p4::MatchValue>& key) const {
  auto it = agent_->tables_.find(table);
  if (it == agent_->tables_.end()) throw UserError("unknown user table: " + table);
  return it->second.find_by_key(key);
}

std::size_t ReactionContext::entry_count(const std::string& table) const {
  auto it = agent_->tables_.find(table);
  if (it == agent_->tables_.end()) throw UserError("unknown user table: " + table);
  std::size_t n = 0;
  for (const auto& [id, entry] : it->second.entries) {
    if (!entry.pending_delete) ++n;
  }
  return n;
}

Time ReactionContext::now() const { return agent_->loop().now(); }

// ---------------------------------------------------------------------------
// InterpEnv: bridges the creact interpreter to the context
// ---------------------------------------------------------------------------

class Agent::InterpEnv : public p4r::creact::ReactionEnv {
 public:
  InterpEnv(ReactionContext& ctx, std::string reaction)
      : ctx_(&ctx), reaction_(std::move(reaction)) {}

  void log_value(p4r::creact::CValue v) override {
    if (ctx_->agent_->log_hook_) ctx_->agent_->log_hook_(reaction_, v);
  }

  p4r::creact::CValue mbl_get(const std::string& name) override {
    return static_cast<p4r::creact::CValue>(ctx_->get(name));
  }
  void mbl_set(const std::string& name, p4r::creact::CValue value) override {
    ctx_->set(name, static_cast<std::uint64_t>(value));
  }

  p4r::creact::CValue table_call(
      const std::string& table, const std::string& method,
      const std::vector<p4r::creact::TableCallArg>& args) override {
    Agent& agent = *ctx_->agent_;
    const auto& info = agent.art_->bindings.table(table);
    const std::size_t keys = info.original_read_count;

    auto key_from = [&](std::size_t first) {
      std::vector<p4::MatchValue> key;
      for (std::size_t i = 0; i < keys; ++i) {
        const auto& a = args.at(first + i);
        if (a.is_string) throw UserError(table + "." + method + ": key must be numeric");
        key.push_back(p4::MatchValue{static_cast<std::uint64_t>(a.num), kFullMask});
      }
      return key;
    };
    auto action_args_from = [&](std::size_t first) {
      std::vector<std::uint64_t> out;
      for (std::size_t i = first; i < args.size(); ++i) {
        if (args[i].is_string) {
          throw UserError(table + "." + method + ": unexpected string argument");
        }
        out.push_back(static_cast<std::uint64_t>(args[i].num));
      }
      return out;
    };
    auto action_name = [&](std::size_t idx) {
      if (idx >= args.size() || !args[idx].is_string) {
        throw UserError(table + "." + method + ": expected action name string");
      }
      return args[idx].str;
    };

    if (method == "addEntry") {
      // addEntry("action", key..., actionArgs...)
      p4::EntrySpec spec;
      spec.action = action_name(0);
      spec.key = key_from(1);
      spec.action_args = action_args_from(1 + keys);
      return static_cast<p4r::creact::CValue>(ctx_->add_entry(table, spec));
    }
    if (method == "modEntry") {
      // modEntry("action", key..., actionArgs...)
      const std::string action = action_name(0);
      const auto key = key_from(1);
      const auto id = ctx_->find_entry(table, key);
      if (!id.has_value()) throw UserError(table + ".modEntry: no such entry");
      ctx_->mod_entry(table, *id, action, action_args_from(1 + keys));
      return 0;
    }
    if (method == "delEntry") {
      // delEntry(key...)
      const auto key = key_from(0);
      const auto id = ctx_->find_entry(table, key);
      if (!id.has_value()) throw UserError(table + ".delEntry: no such entry");
      ctx_->del_entry(table, *id);
      return 0;
    }
    if (method == "hasEntry") {
      return ctx_->find_entry(table, key_from(0)).has_value() ? 1 : 0;
    }
    if (method == "entryCount") {
      return static_cast<p4r::creact::CValue>(ctx_->entry_count(table));
    }
    if (method == "setDefault") {
      // setDefault("action", args...) — management-style, not versioned.
      const std::string action = action_name(0);
      const auto* ai = info.find_action(action);
      if (ai == nullptr || !ai->dims.empty()) {
        throw UserError(table + ".setDefault: action must exist and be "
                        "specialization-free");
      }
      agent.drv_->set_default(table, ai->specialized[0], action_args_from(1));
      return 0;
    }
    throw UserError("unknown table method: " + table + "." + method);
  }

  p4r::creact::CValue now_us() override { return ctx_->now() / 1000; }

 private:
  ReactionContext* ctx_;
  std::string reaction_;
};

// ---------------------------------------------------------------------------
// Agent
// ---------------------------------------------------------------------------

Agent::Agent(driver::Driver& drv, const compile::Artifacts& artifacts,
             AgentOptions opts)
    : drv_(&drv),
      art_(&artifacts),
      opts_(opts),
      measure_(opts.register_cache),
      protocol_(drv, tables_) {
  const auto& bind = art_->bindings;
  expects(!bind.init_tables.empty(), "Agent: artifacts have no init tables");

  if (opts_.async_push) {
    driver::AsyncDriverOptions aopts;
    aopts.pipeline_depth = opts_.async_pipeline_depth;
    adrv_ = std::make_unique<driver::AsyncDriver>(drv, aopts);
  }

  tel_ = &drv.target().loop().telemetry();
  prov_ = &tel_->provenance();
  rec_ = &tel_->recorder();
  // Agents sharing one loop (multi-pipeline stacks) each get their own
  // metric names; the first keeps the plain "agent." prefix so the common
  // single-agent case reads naturally.
  auto& instances = tel_->metrics().counter("agent.instances");
  const std::uint64_t index = instances.value();
  instances.add();
  const std::string prefix =
      index == 0 ? "agent." : "agent" + std::to_string(index) + ".";
  iters_ctr_ = &tel_->metrics().counter(prefix + "dialogue.iterations");
  busy_ctr_ = &tel_->metrics().counter(prefix + "dialogue.busy_ns");
  telemetry::HistogramOptions iter_opts;
  iter_opts.first_bucket = 1024;  // ns; iterations run ~10..100us
  iter_opts.keep_raw = true;      // iteration_latencies() stays exact
  iter_hist_ =
      &tel_->metrics().histogram(prefix + "dialogue.iteration_ns", iter_opts);
  telemetry::HistogramOptions phase_opts;
  phase_opts.first_bucket = 256;
  phase_mv_flip_ =
      &tel_->metrics().histogram(prefix + "phase.mv_flip_ns", phase_opts);
  phase_measure_ =
      &tel_->metrics().histogram(prefix + "phase.measure_ns", phase_opts);
  phase_react_ =
      &tel_->metrics().histogram(prefix + "phase.react_ns", phase_opts);
  phase_update_ =
      &tel_->metrics().histogram(prefix + "phase.update_ns", phase_opts);

  // Alternative counts per malleable field (from the selector scalar slots).
  AltCounts alt_counts;
  for (const auto& [name, slot] : bind.scalars) {
    scalars_.emplace(name, slot.init_value);
    if (slot.is_selector) alt_counts.emplace(name, slot.alt_count);
  }

  for (const auto& [name, info] : bind.tables) {
    TableRuntime rt;
    rt.info = &info;
    for (const auto& [field, col] : info.selector_cols) {
      (void)col;
      rt.alts.emplace(field, alt_counts.at(field));
    }
    tables_.emplace(name, std::move(rt));
  }

  for (const auto& rx : art_->reactions) {
    ReactionRt rt;
    rt.info = bind.find_reaction(rx.name);
    ensures(rt.info != nullptr, "Agent: no binding for reaction " + rx.name);
    rt.body = std::make_unique<p4r::creact::CBody>(
        p4r::creact::parse_body(rx.body));
    rt.interp = std::make_unique<p4r::creact::Interp>(*rt.body);
    reactions_.push_back(std::move(rt));
  }
}

sim::EventLoop& Agent::loop() { return drv_->target().loop(); }

Agent::ReactionRt* Agent::find_reaction(const std::string& name) {
  for (auto& rt : reactions_) {
    if (rt.info->name == name) return &rt;
  }
  return nullptr;
}

void Agent::set_native_reaction(const std::string& name, NativeFn fn,
                                Duration cost) {
  auto* rt = find_reaction(name);
  if (rt == nullptr) throw UserError("no such reaction: " + name);
  rt->native = std::move(fn);
  rt->native_cost = cost;
  rt->use_native = true;
}

void Agent::swap_to_interpreted(const std::string& name, bool reinit_statics) {
  auto* rt = find_reaction(name);
  if (rt == nullptr) throw UserError("no such reaction: " + name);
  rt->use_native = false;
  if (reinit_statics) rt->interp->reset_statics();
}

std::vector<std::uint64_t> Agent::master_args(int vv, int mv) const {
  const auto& master = art_->bindings.init_tables.front();
  std::vector<std::uint64_t> args;
  args.reserve(master.params.size());
  for (const auto& p : master.params) {
    if (p == "vv_") {
      args.push_back(static_cast<std::uint64_t>(vv));
    } else if (p == "mv_") {
      args.push_back(static_cast<std::uint64_t>(mv));
    } else {
      args.push_back(scalars_.at(p));
    }
  }
  return args;
}

std::vector<std::uint64_t> Agent::init_args(
    std::size_t table_idx,
    const std::map<std::string, std::uint64_t>& scalars) const {
  const auto& init = art_->bindings.init_tables[table_idx];
  std::vector<std::uint64_t> args;
  args.reserve(init.params.size());
  for (const auto& p : init.params) args.push_back(scalars.at(p));
  return args;
}

void Agent::run_prologue(const std::function<void(ReactionContext&)>& user_init) {
  expects(!prologue_done_, "run_prologue called twice");
  const auto& bind = art_->bindings;

  // Static entries (e.g. malleable-field load tables).
  if (!bind.static_entries.empty()) {
    driver::Driver::Batch batch;
    for (const auto& [table, spec] : bind.static_entries) batch.add(table, spec);
    drv_->run_batch(std::move(batch));
  }

  // Overflow init tables: two entries each (one per vv value).
  init_handles_.assign(bind.init_tables.size(), {0, 0});
  for (std::size_t k = 1; k < bind.init_tables.size(); ++k) {
    for (const int vv : {0, 1}) {
      p4::EntrySpec spec;
      spec.key.push_back(
          p4::MatchValue{static_cast<std::uint64_t>(vv), kFullMask});
      spec.action = bind.init_tables[k].action;
      spec.action_args = init_args(k, scalars_);
      init_handles_[k][static_cast<std::size_t>(vv)] =
          drv_->add_entry(bind.init_tables[k].table, spec);
    }
  }

  // Memoization: precompute driver metadata for everything the dialogue
  // touches repeatedly (paper §6 "prologue").
  for (const auto& init : bind.init_tables) drv_->memoize(init.table, init.action);
  for (const auto& [name, info] : bind.tables) {
    for (const auto& act : info.actions) {
      for (const auto& spec : act.specialized) drv_->memoize(name, spec);
    }
    drv_->memoize(name, "\x1f" "del");
  }

  // Establish the master entry (and its memo) with initial values.
  const auto& master = bind.init_tables.front();
  drv_->set_default(master.table, master.action, master_args(vv_, mv_));
  committed_scalars_ = scalars_;
  prologue_done_ = true;

  if (user_init) {
    user_init_ = user_init;
    ReactionContext ctx(*this, nullptr);
    user_init_(ctx);
  }
}

void Agent::rerun_user_init() {
  expects(prologue_done_, "rerun_user_init requires the prologue");
  if (!user_init_) return;
  ReactionContext ctx(*this, nullptr);
  user_init_(ctx);
}

void Agent::run_one_reaction(ReactionRt& rt) {
  const int checkpoint = mv_ ^ 1;  // the copy the data plane just vacated
  const Time t0 = loop().now();
  const auto params = measure_.poll(*drv_, *rt.info, checkpoint);
  const Time after_poll = loop().now();
  iter_poll_ += after_poll - t0;
  phase_measure_->record(static_cast<double>(after_poll - t0));
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.measure", "dialogue",
                     telemetry::Track::kAgent, t0, after_poll);

  ReactionContext ctx(*this, &params);
  Duration cost = 0;
  if (rt.use_native) {
    rt.native(ctx);
    cost = rt.native_cost > 0 ? rt.native_cost : opts_.native_reaction_cost;
  } else {
    InterpEnv env(ctx, rt.info->name);
    const auto steps = rt.interp->run(params, env);
    cost = static_cast<Duration>(steps) * opts_.interp_step_cost;
  }
  // Charge the reaction's CPU time; the data plane keeps running meanwhile.
  loop().run_until(loop().now() + cost);
  iter_compute_ += loop().now() - after_poll;
  phase_react_->record(static_cast<double>(loop().now() - after_poll));
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.react", "dialogue",
                     telemetry::Track::kAgent, after_poll, loop().now());
}

namespace {

/// Coalesces buffered ops so each user entry appears at most once
/// (add+mod -> add with final spec; add+del -> nothing; mod+mod -> one mod;
/// mod+del -> del).
std::vector<PendingOp> coalesce(std::vector<PendingOp> ops,
                                std::map<std::string, TableRuntime>& tables) {
  std::vector<PendingOp> out;
  std::map<std::pair<std::string, UserEntryId>, std::size_t> index;
  for (auto& op : ops) {
    const auto key = std::make_pair(op.table, op.id);
    auto it = index.find(key);
    if (it == index.end()) {
      index.emplace(key, out.size());
      out.push_back(std::move(op));
      continue;
    }
    PendingOp& prev = out[it->second];
    switch (op.kind) {
      case PendingOp::Kind::kAdd:
        throw InvariantError("coalesce: duplicate add for one entry id");
      case PendingOp::Kind::kMod:
        if (prev.kind == PendingOp::Kind::kAdd) {
          prev.user_spec = std::move(op.user_spec);  // add with final payload
        } else if (prev.kind == PendingOp::Kind::kMod) {
          prev.user_spec = std::move(op.user_spec);  // keep original old_action
        } else {
          throw UserError("coalesce: modify after delete of the same entry");
        }
        break;
      case PendingOp::Kind::kDel:
        if (prev.kind == PendingOp::Kind::kAdd) {
          // Entry never reached the data plane; drop both and the runtime
          // bookkeeping.
          tables.at(op.table).entries.erase(op.id);
          prev.kind = PendingOp::Kind::kDel;
          prev.id = 0;  // tombstone, filtered below
        } else {
          prev.kind = PendingOp::Kind::kDel;
        }
        break;
    }
  }
  std::erase_if(out, [](const PendingOp& op) {
    return op.kind == PendingOp::Kind::kDel && op.id == 0;
  });
  return out;
}

}  // namespace

void Agent::apply_updates() {
  // Settle the previous iteration's in-flight push batches (normally just
  // the mirror) before staging against those copies again: the mirror's add
  // handles must be recorded before prepare can modify or delete them.
  drain_pending_pushes();

  auto ops = coalesce(std::move(pending_), tables_);
  pending_.clear();
  const bool scalars_dirty = scalars_ != committed_scalars_;
  if (ops.empty() && !scalars_dirty && !opts_.commit_every_iteration) return;

  if (adrv_) {
    apply_updates_async(ops);
    return;
  }

  const auto& bind = art_->bindings;
  const int vv_next = vv_ ^ 1;
  const Time t0 = loop().now();

  // PREPARE: shadow copies of table ops + dirty overflow init entries.
  protocol_.prepare(ops, vv_next);
  std::vector<std::size_t> dirty_inits;
  {
    driver::Driver::Batch batch;
    for (std::size_t k = 1; k < bind.init_tables.size(); ++k) {
      const auto now_args = init_args(k, scalars_);
      if (now_args != init_args(k, committed_scalars_)) {
        batch.modify(bind.init_tables[k].table,
                     init_handles_[k][static_cast<std::size_t>(vv_next)],
                     bind.init_tables[k].action, now_args);
        dirty_inits.push_back(k);
      }
    }
    if (!batch.empty()) drv_->run_batch(std::move(batch));
  }
  const Time after_prepare = loop().now();
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.prepare", "dialogue",
                     telemetry::Track::kAgent, t0, after_prepare, "ops",
                     static_cast<std::int64_t>(ops.size()));

  // COMMIT: one master update flips vv and carries the new scalars.
  const auto& master = bind.init_tables.front();
  drv_->set_default(master.table, master.action, master_args(vv_next, mv_));
  const int vv_old = vv_;
  vv_ = vv_next;
  const Time after_commit = loop().now();
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.vv_commit", "dialogue",
                     telemetry::Track::kAgent, after_prepare, after_commit,
                     "vv", vv_);

  // MIRROR: bring the old-primary copies up to date.
  protocol_.mirror(ops, vv_old);
  if (!dirty_inits.empty()) {
    driver::Driver::Batch batch;
    for (const auto k : dirty_inits) {
      batch.modify(bind.init_tables[k].table,
                   init_handles_[k][static_cast<std::size_t>(vv_old)],
                   bind.init_tables[k].action, init_args(k, scalars_));
    }
    drv_->run_batch(std::move(batch));
  }
  record_scalar_commits();
  committed_scalars_ = scalars_;
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.shadow_fill", "dialogue",
                     telemetry::Track::kAgent, after_commit, loop().now(),
                     "ops", static_cast<std::int64_t>(ops.size()));
}

void Agent::apply_updates_async(const std::vector<PendingOp>& ops) {
  const auto& bind = art_->bindings;
  const int vv_next = vv_ ^ 1;
  const int vv_old = vv_;
  const Time t0 = loop().now();
  const std::uint64_t rid = prov_->current_reaction();

  // PREPARE: shadow copies of table ops + dirty overflow init entries, one
  // batch. submit() returns immediately; effects land at DMA completion.
  driver::BatchBuilder prep;
  auto prep_staged = protocol_.stage_copy(ops, vv_next, prep);
  std::vector<std::size_t> dirty_inits;
  for (std::size_t k = 1; k < bind.init_tables.size(); ++k) {
    const auto now_args = init_args(k, scalars_);
    if (now_args != init_args(k, committed_scalars_)) {
      prep.modify_entry(bind.init_tables[k].table,
                        init_handles_[k][static_cast<std::size_t>(vv_next)],
                        bind.init_tables[k].action, now_args);
      dirty_inits.push_back(k);
    }
  }
  if (!prep.empty()) {
    driver::SubmitOptions so;
    so.reaction_id = rid;
    so.label = "driver.async.prepare";
    const auto id = adrv_->submit(std::move(prep), so);
    async_pending_.push_back(PendingAsync{id, std::move(prep_staged)});
  }

  // COMMIT: the master update that flips vv and carries the new scalars.
  // The channel is FIFO, so its effects apply strictly after the prepare's.
  driver::BatchBuilder commit;
  const auto& master = bind.init_tables.front();
  commit.set_default(master.table, master.action, master_args(vv_next, mv_));
  driver::SubmitOptions commit_so;
  commit_so.reaction_id = rid;
  commit_so.label = "driver.async.commit";
  const auto commit_id = adrv_->submit(std::move(commit), commit_so);
  async_pending_.push_back(PendingAsync{commit_id, {}});

  // MIRROR: staged now so its prep overlaps the commit's DMA, reaped at the
  // *next* iteration's apply_updates — shadow maintenance runs concurrently
  // with the upcoming poll + compute instead of on the critical path.
  driver::BatchBuilder mirror;
  auto mirror_staged = protocol_.stage_copy(ops, vv_old, mirror);
  for (const auto k : dirty_inits) {
    mirror.modify_entry(bind.init_tables[k].table,
                        init_handles_[k][static_cast<std::size_t>(vv_old)],
                        bind.init_tables[k].action, init_args(k, scalars_));
  }
  if (!mirror.empty()) {
    driver::SubmitOptions so;
    so.reaction_id = rid;
    so.label = "driver.async.mirror";
    const auto id = adrv_->submit(std::move(mirror), so);
    async_pending_.push_back(PendingAsync{id, std::move(mirror_staged)});
  }
  protocol_.erase_deleted(ops);

  // Block on the commit only — the serializability point. Packets and other
  // actors keep running while we wait in virtual time.
  loop().run_until(adrv_->completion_time(commit_id));
  vv_ = vv_next;
  // The prepare (and commit) completed no later than the commit instant;
  // absorb their records without waiting for the mirror.
  while (auto c = adrv_->try_reap()) absorb_async(*c);

  record_scalar_commits();
  committed_scalars_ = scalars_;
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.async_push", "dialogue",
                     telemetry::Track::kAgent, t0, loop().now(), "ops",
                     static_cast<std::int64_t>(ops.size()));
}

void Agent::absorb_async(const driver::BatchCompletion& c) {
  ensures(!async_pending_.empty() && async_pending_.front().id == c.id,
          "async push: completion reaped out of submit order");
  ensures(c.ok, "async push: batch failed — update-protocol invariant broken");
  const auto staged = std::move(async_pending_.front().staged);
  async_pending_.erase(async_pending_.begin());
  if (!staged.adds.empty()) protocol_.absorb_copy(staged, c);
}

void Agent::drain_pending_pushes() {
  while (adrv_ && !async_pending_.empty()) {
    absorb_async(adrv_->reap());
  }
}

void Agent::record_scalar_commits() {
  if (!rec_->enabled()) return;
  for (const auto& [name, value] : scalars_) {
    auto it = committed_scalars_.find(name);
    if (it != committed_scalars_.end() && it->second == value) continue;
    rec_->record(loop().now(), telemetry::FlightEvent::Kind::kMalleable,
                 prov_->current_reaction(), name,
                 "prev=" + std::to_string(
                               it == committed_scalars_.end() ? 0 : it->second),
                 static_cast<std::int64_t>(value));
  }
}

void Agent::commit_scalars_immediate() {
  expects(prologue_done_, "scalar writes require the prologue");
  const auto& bind = art_->bindings;
  driver::Driver::Batch batch;
  for (std::size_t k = 1; k < bind.init_tables.size(); ++k) {
    const auto now_args = init_args(k, scalars_);
    if (now_args == init_args(k, committed_scalars_)) continue;
    for (const int vv : {0, 1}) {
      batch.modify(bind.init_tables[k].table,
                   init_handles_[k][static_cast<std::size_t>(vv)],
                   bind.init_tables[k].action, now_args);
    }
  }
  if (!batch.empty()) drv_->run_batch(std::move(batch));
  const auto& master = bind.init_tables.front();
  drv_->set_default(master.table, master.action, master_args(vv_, mv_));
  record_scalar_commits();
  committed_scalars_ = scalars_;
}

void Agent::set_scalar(const std::string& name, std::uint64_t value) {
  ReactionContext ctx(*this, nullptr);
  ctx.set(name, value);
}

std::uint64_t Agent::scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end()) throw UserError("no malleable scalar: " + name);
  return it->second;
}

void Agent::dialogue_iteration() {
  MANTIS_PROF_SCOPE(&tel_->prof(), kAgentPoll, "agent.dialogue");
  expects(prologue_done_, "dialogue requires the prologue");
  const Time t0 = loop().now();
  const auto& master = art_->bindings.init_tables.front();
  const std::uint64_t rid = prov_->begin_reaction(t0);
  iter_poll_ = 0;
  iter_compute_ = 0;

  // (1) flip the measurement version: data plane starts writing the other
  // copy; the vacated copy becomes this iteration's checkpoint.
  drv_->set_default(master.table, master.action, master_args(vv_, mv_ ^ 1));
  mv_ ^= 1;
  const Time after_flip = loop().now();
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.mv_flip", "dialogue",
                     telemetry::Track::kAgent, t0, after_flip, "mv", mv_);

  // (2)+(3) per reaction: poll freshest checkpoints, run the body.
  in_reaction_ = true;
  for (auto& rt : reactions_) run_one_reaction(rt);
  in_reaction_ = false;
  const Time after_react = loop().now();

  // (4)-(6) prepare / commit / mirror.
  apply_updates();

  last_breakdown_.mv_flip = after_flip - t0;
  last_breakdown_.measure_and_react = after_react - after_flip;
  last_breakdown_.update = loop().now() - after_react;

  phase_mv_flip_->record(static_cast<double>(last_breakdown_.mv_flip));
  phase_update_->record(static_cast<double>(last_breakdown_.update));

  iters_ctr_->add();
  const Duration busy = loop().now() - t0;
  busy_ctr_->add(static_cast<std::uint64_t>(busy));
  iter_hist_->record(static_cast<double>(busy));
  MANTIS_SPAN_RECORD(tel_->tracer(), "dialogue.iteration", "dialogue",
                     telemetry::Track::kAgent, t0, loop().now(), "iteration",
                     static_cast<std::int64_t>(iters_ctr_->value()));

  // Provenance: poll = mv flip + measurement reads, compute = reaction
  // bodies, push = prepare/commit/mirror. Closing the frame arms
  // first-effect detection when this iteration mutated dataplane state.
  prov_->end_reaction(rid, loop().now(),
                      last_breakdown_.mv_flip + iter_poll_, iter_compute_,
                      last_breakdown_.update);

  if (opts_.reaction_slo > 0 && busy > opts_.reaction_slo) {
    rec_->trigger(loop().now(),
                  "slo_breach reaction=" + std::to_string(rid) +
                      " busy_ns=" + std::to_string(busy) +
                      " slo_ns=" + std::to_string(opts_.reaction_slo));
  }

  if (opts_.pacing_sleep > 0) {
    loop().run_until(loop().now() + opts_.pacing_sleep);
  }
}

void Agent::run_dialogue(std::size_t iterations) {
  for (std::size_t i = 0; i < iterations; ++i) dialogue_iteration();
}

void Agent::run_dialogue_until(Time t) {
  while (loop().now() < t) dialogue_iteration();
}

}  // namespace mantis::agent
