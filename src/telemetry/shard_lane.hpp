// Per-shard deferred-telemetry lane for the parallel fabric engine.
//
// The determinism contract (docs/NETWORK.md) requires that a parallel run
// produce byte-identical telemetry to the sequential engine. Counters are
// order-independent sums, but histograms (P² quantile markers), gauges
// (last-write-wins) and the flight-recorder ring are *insertion-order
// dependent*: two shards recording concurrently would interleave by wall
// clock. So while a worker thread executes a shard's events, every such
// sink call is deferred into the thread's installed ShardLane, tagged with
// the canonical key of the *executing event* — (virtual time, scheduling
// shard, per-shard sequence number) plus an intra-event emission index —
// and at each round barrier the engine merges all lanes by that key and
// applies the operations on the main thread. The merged order equals the
// order a sequential run would have produced, because sequential execution
// order *is* the canonical key order (see sim/event_loop.hpp).
//
// When no lane is installed (sequential engine, control-plane phases,
// everything outside the fabric) the sinks record directly, exactly as
// before: the lane costs one thread-local load per record site.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/small_fn.hpp"
#include "util/time.hpp"

namespace mantis::telemetry {

class ShardLane {
 public:
  /// One deferred sink operation, tagged with the canonical key of the
  /// event that emitted it. `apply` replays the operation on the main
  /// thread (where no lane is installed, so sinks record directly).
  struct Op {
    Time t = 0;
    int src = -1;
    std::uint64_t seq = 0;
    std::uint32_t emit = 0;
    /// Move-only, pool-backed (util/small_fn.hpp): most deferrals are a
    /// pointer and a double, which fit inline — a histogram record in a
    /// parallel round costs no allocation.
    util::SmallFn apply;
  };

  /// The lane installed on the calling thread, or nullptr (record direct).
  static ShardLane* current() { return tls_; }
  static void set_current(ShardLane* lane) { tls_ = lane; }

  /// Called by the engine before each event callback runs: subsequent
  /// deferrals carry this event's canonical key.
  void begin_event(Time t, int src, std::uint64_t seq) {
    t_ = t;
    src_ = src;
    seq_ = seq;
    emit_ = 0;
  }

  void defer(util::SmallFn apply) {
    ops_.push_back(Op{t_, src_, seq_, emit_++, std::move(apply)});
  }

  std::vector<Op>& ops() { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Merges every lane's deferred operations into canonical order —
  /// (t, src, seq, emit) — applies them, and clears the lanes. Must run on
  /// a thread with no lane installed (the engine's barrier phase).
  static void merge_apply(const std::vector<ShardLane*>& lanes);

 private:
  static thread_local ShardLane* tls_;

  Time t_ = 0;
  int src_ = -1;
  std::uint64_t seq_ = 0;
  std::uint32_t emit_ = 0;
  std::vector<Op> ops_;
};

}  // namespace mantis::telemetry
