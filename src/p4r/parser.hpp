// Recursive-descent parser for P4R (the P4-14 v1.0.5 subset Mantis's use
// cases need, extended per paper Figure 3). The paper's implementation used
// Flex/Bison; a hand-written parser gives the same language with better
// diagnostics and no generated-code build step.
#pragma once

#include <string_view>

#include "p4r/ast.hpp"

namespace mantis::p4r {

/// Parses P4R source text. Throws UserError with line:col diagnostics.
AstProgram parse(std::string_view source);

}  // namespace mantis::p4r
