// Behavioural tests for the four paper use cases (§8.3), run on the full
// stack. These are the miniature versions of the Fig 14-16 experiments.
#include <gtest/gtest.h>

#include "apps/gray_failure.hpp"
#include "apps/hash_polarization.hpp"
#include "apps/rl_dctcp.hpp"
#include "helpers.hpp"
#include "workload/heartbeat.hpp"
#include "workload/trace_gen.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

// ---------------------------------------------------------------------------
// Use case #2: gray failure
// ---------------------------------------------------------------------------

struct GrayFailureFixture {
  Stack stack{apps::gray_failure_p4r_source()};
  std::shared_ptr<apps::GrayFailureState> state =
      std::make_shared<apps::GrayFailureState>();
  std::vector<std::unique_ptr<workload::HeartbeatSource>> sources;

  explicit GrayFailureFixture(int fanout = 4) {
    state->cfg.num_ports = fanout;
    state->cfg.ts = 1 * kMicrosecond;
    state->cfg.eta = 0.5;
    state->topo = apps::Topology::fat_tree_slice(fanout, 8);
    stack.agent->set_native_reaction("gf_react",
                                     apps::make_gray_failure_reaction(state));
    stack.agent->run_prologue([&](agent::ReactionContext& ctx) {
      state->install_initial_routes(ctx);
    });
    for (int p = 0; p < fanout; ++p) {
      workload::HeartbeatConfig cfg;
      cfg.port = p;
      cfg.period = state->cfg.ts;
      cfg.seed = 100 + static_cast<std::uint64_t>(p);
      sources.push_back(std::make_unique<workload::HeartbeatSource>(stack.sw.operator*(), cfg));
      sources.back()->start(stack.loop.now() + 50 * kMillisecond);
    }
  }
};

TEST(GrayFailure, TopologyRoutesAvoidDownPorts) {
  const auto topo = apps::Topology::fat_tree_slice(4, 8);
  std::vector<bool> up(4, false);
  const auto routes = topo.compute_routes(up);
  EXPECT_EQ(routes.size(), 8u);
  for (const auto& [dst, port] : routes) {
    EXPECT_GE(port, 0);
    EXPECT_LT(port, 4);
  }
  // Fail port 0: every destination still reachable via another port.
  std::vector<bool> down0(4, false);
  down0[0] = true;
  const auto rerouted = topo.compute_routes(down0);
  for (const auto& [dst, port] : rerouted) {
    EXPECT_GE(port, 0);
    EXPECT_NE(port, 0);
  }
  // All ports down: unreachable.
  std::vector<bool> all_down(4, true);
  for (const auto& [dst, port] : topo.compute_routes(all_down)) {
    EXPECT_EQ(port, -1);
  }
}

TEST(GrayFailure, DetectsHardFailureAndReroutes) {
  GrayFailureFixture fx;
  int detected_port = -1;
  Time detect_time = -1, reroute_time = -1;
  fx.state->on_detect = [&](int port, Time t) {
    detected_port = port;
    detect_time = t;
  };
  fx.state->on_routes_installed = [&](Time t) { reroute_time = t; };

  // Warm up so counters have a baseline.
  fx.stack.agent->run_dialogue(20);
  EXPECT_EQ(detected_port, -1) << "spurious detection on healthy links";

  // Hard-fail port 2's neighbour at a known instant.
  const Time fail_at = fx.stack.loop.now();
  fx.sources[2]->stop();
  while (detected_port == -1 &&
         fx.stack.loop.now() < fail_at + 10 * kMillisecond) {
    fx.stack.agent->dialogue_iteration();
  }
  ASSERT_EQ(detected_port, 2);
  EXPECT_GE(detect_time, fail_at);
  ASSERT_GE(reroute_time, detect_time);
  // Detection + reroute within a millisecond (paper: 100-200us on Tofino).
  EXPECT_LT(reroute_time - fail_at, 1 * kMillisecond);

  // The malleable route table no longer uses port 2.
  auto probe = fx.stack.sw->factory().make();
  for (const auto& [addr, id] : fx.state->route_ids) {
    EXPECT_NE(fx.state->current_port.at(addr), 2);
  }
}

TEST(GrayFailure, GrayLossDetectedViaEta) {
  GrayFailureFixture fx;
  int detected_port = -1;
  fx.state->on_detect = [&](int port, Time) { detected_port = port; };
  fx.stack.agent->run_dialogue(20);
  // 80% loss on port 1: heartbeat deltas fall below eta=0.5 expectations.
  fx.sources[1]->set_loss_prob(0.8);
  const Time start = fx.stack.loop.now();
  while (detected_port == -1 && fx.stack.loop.now() < start + 10 * kMillisecond) {
    fx.stack.agent->dialogue_iteration();
  }
  EXPECT_EQ(detected_port, 1);
}

TEST(GrayFailure, MildLossToleratedUnderLowEta) {
  GrayFailureFixture fx;
  int detected_port = -1;
  fx.state->on_detect = [&](int port, Time) { detected_port = port; };
  fx.stack.agent->run_dialogue(20);
  // 10% loss with eta = 0.5 should NOT trip the detector.
  fx.sources[0]->set_loss_prob(0.1);
  const Time start = fx.stack.loop.now();
  while (fx.stack.loop.now() < start + 5 * kMillisecond) {
    fx.stack.agent->dialogue_iteration();
  }
  EXPECT_EQ(detected_port, -1);
}

// ---------------------------------------------------------------------------
// Use case #3: hash polarization
// ---------------------------------------------------------------------------

struct HashPolFixture {
  Stack stack{apps::hash_polarization_p4r_source()};
  std::shared_ptr<apps::HashPolState> state = std::make_shared<apps::HashPolState>();
  Rng rng{99};

  HashPolFixture() {
    stack.agent->set_native_reaction("hp_react",
                                     apps::make_hash_pol_reaction(state));
    stack.agent->run_prologue();
  }

  /// A polarized workload: 16 correlated flow tuples (srcAddr determines
  /// dstAddr and srcPort, e.g. NAT'd prefixes), so the initial hash config
  /// {srcAddr, dstAddr, srcPort} sees only 16 distinct inputs and loads the
  /// ports unevenly. dstPort is high-entropy, so a config that includes it
  /// rebalances.
  void send_polarized(int n) {
    for (int i = 0; i < n; ++i) {
      const std::uint32_t tuple = static_cast<std::uint32_t>(rng.uniform(16));
      auto pkt = stack.sw->factory().make(200);
      stack.sw->factory().set(pkt, "ipv4.srcAddr", 0x0a000000 + tuple);
      stack.sw->factory().set(pkt, "ipv4.dstAddr", 0xc0a80000 + tuple * 7);
      stack.sw->factory().set(pkt, "l4.srcPort", 4096);
      stack.sw->factory().set(pkt, "l4.dstPort", rng.uniform(40000));
      stack.sw->inject(std::move(pkt), 0);
      stack.loop.run();
    }
  }

  std::vector<double> port_loads() {
    std::vector<double> loads;
    for (int p = 0; p < 8; ++p) {
      loads.push_back(static_cast<double>(stack.sw->port_stats(p).tx_pkts));
    }
    return loads;
  }
};

TEST(HashPolarization, ShiftsInputsUntilBalanced) {
  HashPolFixture fx;
  std::size_t shifted_to = 0;
  Time shift_time = -1;
  fx.state->on_shift = [&](std::size_t cfg, Time t) {
    shifted_to = cfg;
    shift_time = t;
  };

  // Drive a few measure-react rounds over the polarized workload.
  for (int round = 0; round < 10 && shift_time < 0; ++round) {
    fx.send_polarized(400);
    fx.stack.agent->dialogue_iteration();
  }
  ASSERT_GE(shift_time, 0) << "persistent imbalance never triggered a shift";
  EXPECT_GT(fx.state->last_ratio, fx.state->cfg.imbalance_ratio);

  // After the shift the selected config hashes on high-entropy fields; the
  // incremental load must spread out.
  const auto before = fx.port_loads();
  fx.send_polarized(1500);
  const auto after = fx.port_loads();
  std::vector<double> delta;
  for (int p = 0; p < 8; ++p) delta.push_back(after[p] - before[p]);
  const double mad = median_absolute_deviation(delta);
  double total = 0;
  for (const double d : delta) total += d;
  EXPECT_GT(total, 0);
  EXPECT_LT(mad / (total / 8), fx.state->cfg.imbalance_ratio)
      << "post-shift load still polarized";
}

TEST(HashPolarization, BalancedLoadNeverShifts) {
  HashPolFixture fx;
  bool shifted = false;
  fx.state->on_shift = [&](std::size_t, Time) { shifted = true; };
  Rng rng(5);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 300; ++i) {
      auto pkt = fx.stack.sw->factory().make(200);
      // High-entropy everything: initial config balances fine.
      fx.stack.sw->factory().set(pkt, "ipv4.srcAddr", rng.uniform(1u << 30));
      fx.stack.sw->factory().set(pkt, "ipv4.dstAddr", rng.uniform(1u << 30));
      fx.stack.sw->factory().set(pkt, "l4.srcPort", rng.uniform(60000));
      fx.stack.sw->inject(std::move(pkt), 0);
      fx.stack.loop.run();
    }
    fx.stack.agent->dialogue_iteration();
  }
  EXPECT_FALSE(shifted);
}

TEST(HashPolarization, LoadStrategyFieldListSelectsAlternative) {
  // The compiler's load strategy must make the hash actually depend on the
  // selected alternative: shifting h_src from srcAddr to dstAddr changes the
  // egress port of a crafted packet.
  HashPolFixture fx;
  auto egress_of = [&](std::uint32_t src, std::uint32_t dst) {
    int port = -1;
    fx.stack.sw->set_on_transmit(
        [&](const sim::Packet&, int p, Time) { port = p; });
    auto pkt = fx.stack.sw->factory().make(100);
    fx.stack.sw->factory().set(pkt, "ipv4.srcAddr", src);
    fx.stack.sw->factory().set(pkt, "ipv4.dstAddr", dst);
    fx.stack.sw->inject(std::move(pkt), 0);
    fx.stack.loop.run();
    return port;
  };
  // Find (src, dst) whose hashes differ under the two configs.
  int a = -1, b = -1;
  std::uint32_t src = 1, dst = 0x1000;
  for (; src < 64; ++src) {
    a = egress_of(src, dst);
    fx.stack.agent->set_scalar("h_src", 1);  // now hashes dstAddr twice
    b = egress_of(src, dst);
    fx.stack.agent->set_scalar("h_src", 0);
    if (a != b) break;
  }
  EXPECT_NE(a, b) << "shifting the malleable hash input had no effect";
}

// ---------------------------------------------------------------------------
// Use case #4: RL DCTCP
// ---------------------------------------------------------------------------

TEST(RlDctcp, EcnMarkingRespectsMalleableThreshold) {
  Stack stack(apps::rl_dctcp_p4r_source());
  stack.agent->run_prologue();
  stack.agent->set_scalar("ecn_thresh", 4);

  int marked = 0, unmarked = 0;
  stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
    if (stack.sw->factory().get(pkt, "ipv4.ecn") != 0) {
      ++marked;
    } else {
      ++unmarked;
    }
  });
  // A burst deep enough that later packets dequeue with qdepth >= 4.
  for (int i = 0; i < 32; ++i) {
    auto pkt = stack.sw->factory().make(1500);
    stack.sw->factory().set(pkt, "ipv4.dstAddr", 1);
    stack.sw->inject(std::move(pkt), 0);
  }
  stack.loop.run();
  EXPECT_GT(marked, 0);
  EXPECT_GT(unmarked, 0);  // the tail of the queue drains below threshold

  // Raise the threshold far above the burst size: nothing marks.
  stack.agent->set_scalar("ecn_thresh", 500);
  marked = unmarked = 0;
  for (int i = 0; i < 32; ++i) {
    auto pkt = stack.sw->factory().make(1500);
    stack.sw->factory().set(pkt, "ipv4.dstAddr", 1);
    stack.sw->inject(std::move(pkt), 0);
  }
  stack.loop.run();
  EXPECT_EQ(marked, 0);
}

TEST(RlDctcp, QLearningStepsAndImproves) {
  Stack stack(apps::rl_dctcp_p4r_source());
  auto state = std::make_shared<apps::RlState>();
  state->cfg.link_gbps = 25.0;
  state->cfg.epsilon = 0.2;
  stack.agent->set_native_reaction("rl_react", apps::make_rl_reaction(state));
  stack.agent->run_prologue();

  // Steady traffic so utilization/qdepth signals exist.
  Rng rng(1);
  for (int round = 0; round < 120; ++round) {
    for (int i = 0; i < 30; ++i) {
      auto pkt = stack.sw->factory().make(1500);
      stack.sw->factory().set(pkt, "ipv4.dstAddr", 1);
      stack.sw->factory().set(pkt, "ipv4.srcAddr", rng.uniform(1 << 16));
      stack.sw->inject(std::move(pkt), 0);
    }
    stack.agent->dialogue_iteration();
  }
  EXPECT_GT(state->steps, 100u);
  ASSERT_GT(state->reward_history.size(), 40u);
  // Q values were learned (some state visited and updated).
  double qsum = 0;
  for (const auto& row : state->q) {
    for (const double v : row) qsum += std::abs(v);
  }
  EXPECT_GT(qsum, 0.0);
  // The committed threshold is one of the action-space values.
  const auto t = stack.agent->scalar("ecn_thresh");
  EXPECT_NE(std::find(state->cfg.thresholds.begin(), state->cfg.thresholds.end(), t),
            state->cfg.thresholds.end());
}

}  // namespace
}  // namespace mantis::test
