#include "int/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <utility>

#include "apps/gray_failure.hpp"
#include "net/engine.hpp"
#include "util/check.hpp"

namespace mantis::int_tel {

namespace {

/// Self-rescheduling host sender (same shape as the gray scenario's).
struct HostSendTick {
  sim::EventLoop* loop = nullptr;
  net::Fabric* fabric = nullptr;
  net::NodeId host = -1;
  Duration period = 0;
  Time until = 0;
  std::shared_ptr<std::function<sim::Packet()>> make;

  void operator()() const {
    if (loop->now() > until) return;
    fabric->host_at(host).send((*make)());
    loop->schedule_in(period, *this);
  }
};

struct SampleTick {
  sim::EventLoop* loop = nullptr;
  net::Fabric* fabric = nullptr;
  Duration period = 0;
  Time until = 0;

  void operator()() const {
    if (loop->now() > until) return;
    fabric->sample_telemetry();
    loop->schedule_in(period, *this);
  }
};

/// End-to-end delivery tracker (see net/scenarios.cpp for the semantics:
/// restoration = first packet of K consecutive post-fault seqs).
struct DeliveryTracker {
  Time fault_at = 0;
  std::size_t k = 4;
  std::vector<Time> sent_at;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_before_fault = 0;
  Time restored_at = -1;
  std::deque<std::pair<std::uint64_t, Time>> recent;

  void on_receive(std::uint64_t seq, Time sent_time, Time rx_time) {
    ++delivered;
    if (sent_time >= 0 && sent_time < fault_at) {
      ++delivered_before_fault;
      recent.clear();
      return;
    }
    recent.emplace_back(seq, rx_time);
    if (recent.size() > k) recent.pop_front();
    if (restored_at >= 0 || recent.size() < k) return;
    for (std::size_t i = 1; i < recent.size(); ++i) {
      if (recent[i].first != recent[i - 1].first + 1) return;
    }
    restored_at = recent.front().second;
  }
};

std::vector<std::string> merge_events(std::vector<std::string> a,
                                      const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::stable_sort(a.begin(), a.end(),
                   [](const std::string& x, const std::string& y) {
                     return std::strtoll(x.c_str(), nullptr, 10) <
                            std::strtoll(y.c_str(), nullptr, 10);
                   });
  return a;
}

}  // namespace

IntGrayFabricScenario::IntGrayFabricScenario(IntGrayScenarioConfig cfg)
    : cfg_(std::move(cfg)) {
  expects(cfg_.leaves >= 3,
          "IntGrayFabricScenario: tomography needs >= 3 leaves (see config)");
  expects(cfg_.spines >= 2, "IntGrayFabricScenario: need an alternate spine");
  expects(cfg_.hosts_per_leaf >= 1, "IntGrayFabricScenario: need hosts");
  net::Topology topo =
      net::Topology::leaf_spine(cfg_.leaves, cfg_.spines, cfg_.hosts_per_leaf);

  // Same program as the heartbeat scenario (route table + tally), sized to
  // the widest switch: the INT reaction rides the same gf_react slot, which
  // keeps the head-to-head comparison apples-to-apples on the data plane.
  int monitored = 8;
  for (net::NodeId n = 0; n < topo.num_switches; ++n) {
    for (const int p : topo.switch_facing_ports(n)) {
      if (p + 1 > monitored) monitored = p + 1;
    }
  }
  artifacts_ = compile::compile_source(apps::gray_failure_p4r_source(monitored));

  net::FabricConfig fc;
  fc.switch_cfg = cfg_.switch_cfg;
  fc.default_link = cfg_.link;
  fc.base_seed = cfg_.seed;
  fabric_ = std::make_unique<net::Fabric>(loop_, artifacts_.prog,
                                          std::move(topo), fc);
  injector_ = std::make_unique<net::FaultInjector>(*fabric_);

  IntFabricConfig ic;
  ic.sample_every = cfg_.sample_every;
  int_fabric_ = std::make_unique<IntFabric>(*fabric_, ic);

  net::HarnessOptions hopts;
  hopts.agent.pacing_sleep = cfg_.pacing;
  harness_ = std::make_unique<net::FabricAgentHarness>(*fabric_, artifacts_,
                                                       hopts);
  harness_->add_all_switches();

  cfg_.ig.probe_period = cfg_.probe_period;
  state_ = std::make_shared<apps::IntGrayState>();
  state_->cfg = cfg_.ig;
  state_->topo = fabric_->topo();
  state_->collector = &int_fabric_->collector();
  state_->analyzer_node = 0;
  state_->on_localize = [this](int a, int b, Time t) {
    events_.push_back(std::to_string(t) + " localize link n" +
                      std::to_string(a) + "-n" + std::to_string(b));
    if (localized_at_ < 0) {
      localized_at_ = t;
      localized_a_ = a;
      localized_b_ = b;
    }
  };
  state_->on_routes_installed = [this](net::NodeId n, Time t) {
    events_.push_back(std::to_string(t) + " n" + std::to_string(n) +
                      " reroute");
    if (n == 0 && rerouted_at_ < 0) rerouted_at_ = t;
  };
  for (net::NodeId n = 0; n < fabric_->num_switches(); ++n) {
    harness_->agent_at(n).set_native_reaction(
        "gf_react", apps::make_int_gray_reaction(state_, n));
  }
}

IntGrayFabricScenario::~IntGrayFabricScenario() = default;

IntGrayScenarioResult IntGrayFabricScenario::run() {
  expects(!ran_, "IntGrayFabricScenario::run: single-shot");
  ran_ = true;

  const auto& topo = fabric_->topo();
  const net::NodeId src_host = topo.num_switches;  // first host of leaf 0
  const net::NodeId dst_host = topo.num_switches + cfg_.hosts_per_leaf;
  const std::uint32_t src_addr = fabric_->host_at(src_host).address();
  const std::uint32_t dst_addr = fabric_->host_at(dst_host).address();

  const auto initial_routes = topo.compute_routes_from(0, {});
  const int faulted_port = initial_routes.at(dst_addr);
  expects(faulted_port >= 0, "IntGrayFabricScenario: destination unreachable");
  const int fault_link = topo.link_at(0, faulted_port);
  expects(fault_link >= 0, "IntGrayFabricScenario: no link on faulted port");

  if (cfg_.inject_fault) {
    net::FaultSpec fault;
    fault.kind = net::FaultSpec::Kind::kGrayLoss;
    fault.link = static_cast<std::size_t>(fault_link);
    fault.direction = -1;
    fault.at = cfg_.fault_at;
    fault.duration = 0;
    fault.loss = cfg_.fault_loss;
    injector_->schedule(fault);
  }

  // The probe mesh replaces the heartbeat mesh. Probes flowing during the
  // prologue are dropped by the not-yet-installed route tables, which only
  // delays the tomography's first full window.
  int_fabric_->start_probes(cfg_.probe_period, cfg_.run_until);
  state_->paths = int_fabric_->probe_paths();

  harness_->run_prologue([this](net::NodeId node, agent::ReactionContext& ctx) {
    state_->install_initial_routes(node, ctx);
  });
  expects(loop_.now() < cfg_.fault_at,
          "IntGrayFabricScenario: prologues overran fault_at; raise fault_at");

  auto tracker = std::make_shared<DeliveryTracker>();
  tracker->fault_at = cfg_.fault_at;
  tracker->k = static_cast<std::size_t>(cfg_.restore_consecutive);
  HostSendTick tick{
      &loop_, fabric_.get(), src_host, cfg_.traffic_period, cfg_.run_until,
      std::make_shared<std::function<sim::Packet()>>(
          [this, tracker, src_addr, dst_addr]() {
            auto pkt = fabric_->factory().make(cfg_.traffic_bytes);
            fabric_->factory().set(pkt, "ipv4.srcAddr", src_addr);
            fabric_->factory().set(pkt, "ipv4.dstAddr", dst_addr);
            fabric_->factory().set(pkt, "ipv4.protocol", 6);
            fabric_->factory().set(pkt, "ipv4.totalLen", tracker->sent_at.size());
            tracker->sent_at.push_back(loop_.now());
            return pkt;
          })};
  fabric_->schedule_for_node(src_host, loop_.now() + cfg_.traffic_period, tick);
  fabric_->host_at(dst_host).set_on_receive(
      [this, tracker](const sim::Packet& pkt, Time t) {
        // INT probes also land here (stripped); only sequenced data counts.
        if (fabric_->factory().get(pkt, "ipv4.protocol") == 254) return;
        const Time before = tracker->restored_at;
        tracker->on_receive(fabric_->factory().get(pkt, "ipv4.totalLen"),
                            pkt.origin_time(), t);
        if (before < 0 && tracker->restored_at >= 0) {
          events_.push_back(std::to_string(tracker->restored_at) +
                            " delivery restored");
        }
      });

  loop_.schedule_in(cfg_.telemetry_window,
                    SampleTick{&loop_, fabric_.get(), cfg_.telemetry_window,
                               cfg_.run_until});
  std::unique_ptr<net::ParallelFabricEngine> engine;
  if (cfg_.threads > 1) {
    engine = std::make_unique<net::ParallelFabricEngine>(*fabric_, cfg_.threads);
    harness_->set_engine([&e = *engine](Time t) { e.run_until(t); });
  }
  harness_->run_until(cfg_.run_until);
  harness_->set_engine({});
  fabric_->sample_telemetry();

  IntGrayScenarioResult res;
  res.fault_at = cfg_.fault_at;
  res.fault_link_name =
      fabric_->link(static_cast<std::size_t>(fault_link)).name();
  res.faulted_port = faulted_port;
  res.localized_at = localized_at_;
  res.localized_a = localized_a_;
  res.localized_b = localized_b_;
  const auto& fl = topo.links[static_cast<std::size_t>(fault_link)];
  res.localized_correct =
      localized_at_ >= 0 &&
      std::minmax(fl.a, fl.b) == std::minmax(localized_a_, localized_b_);
  res.rerouted_at = rerouted_at_;
  res.restored_at = tracker->restored_at;
  res.sent = tracker->sent_at.size();
  res.delivered = tracker->delivered;
  res.delivered_before_fault = tracker->delivered_before_fault;
  res.int_reports = int_fabric_->collector().size();
  res.probes_sent = int_fabric_->probes_sent();
  res.stack_wire_bytes = int_fabric_->stack_wire_bytes();
  // Probe frames as injected on their first link (lost probes never reach
  // the second one, so this is the injection-side cost).
  res.probe_wire_bytes =
      res.probes_sent *
      (int_fabric_->config().probe_bytes + kHeaderBytes + kHopBytes);
  res.events = merge_events(injector_->log(), events_);

  auto& metrics = loop_.telemetry().metrics();
  auto us = [](Time from, Time to) {
    return to < 0 ? -1.0 : static_cast<double>(to - from) / kMicrosecond;
  };
  metrics.gauge("net.scenario.intgray.localized_us")
      .set(us(res.fault_at, res.localized_at));
  metrics.gauge("net.scenario.intgray.rerouted_us")
      .set(us(res.fault_at, res.rerouted_at));
  metrics.gauge("net.scenario.intgray.restored_us")
      .set(us(res.fault_at, res.restored_at));
  metrics.gauge("net.scenario.intgray.reports")
      .set(static_cast<double>(res.int_reports));
  return res;
}

}  // namespace mantis::int_tel
