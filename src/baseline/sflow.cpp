#include "baseline/sflow.hpp"

#include "util/check.hpp"

namespace mantis::baseline {

SflowEstimator::SflowEstimator(std::uint32_t sample_rate_n, std::uint64_t seed)
    : n_(sample_rate_n), rng_(seed) {
  expects(n_ > 0, "SflowEstimator: sample rate must be positive");
}

void SflowEstimator::observe(std::uint32_t src_ip, std::uint32_t bytes) {
  // Random 1-in-N sampling (the standard sFlow sampling process).
  if (rng_.uniform(n_) != 0) return;
  ++samples_;
  sampled_bytes_[src_ip] += bytes;
}

std::uint64_t SflowEstimator::estimate(std::uint32_t src_ip) const {
  auto it = sampled_bytes_.find(src_ip);
  if (it == sampled_bytes_.end()) return 0;
  return it->second * n_;
}

}  // namespace mantis::baseline
