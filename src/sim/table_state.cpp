#include "sim/table_state.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/provenance.hpp"
#include "util/bits.hpp"

namespace mantis::sim {

namespace {

/// Prefix length of an LPM mask (number of leading set bits within width).
unsigned prefix_length(std::uint64_t mask, unsigned width) {
  unsigned len = 0;
  for (unsigned bit = width; bit-- > 0;) {
    if ((mask >> bit) & 1) {
      ++len;
    } else {
      break;
    }
  }
  return len;
}

}  // namespace

TableState::TableState(const p4::Program& prog, const p4::TableDecl& decl)
    : prog_(&prog), decl_(&decl) {
  all_exact_ = !decl.reads.empty() &&
               std::all_of(decl.reads.begin(), decl.reads.end(),
                           [](const p4::MatchSpec& m) {
                             return m.kind == p4::MatchKind::kExact;
                           });
  default_action_ = decl.default_action;
  default_args_ = decl.default_action_args;
  if (default_action_.empty()) {
    // P4-14 default-default: no_op. The program is guaranteed (by the
    // loader) to contain a no_op action named "_no_op_".
    default_action_ = "_no_op_";
  }
}

void TableState::check_spec(const p4::EntrySpec& spec) const {
  if (spec.key.size() != decl_->reads.size()) {
    throw UserError("table " + name() + ": key arity " +
                    std::to_string(spec.key.size()) + " != " +
                    std::to_string(decl_->reads.size()));
  }
  if (std::find(decl_->actions.begin(), decl_->actions.end(), spec.action) ==
      decl_->actions.end()) {
    throw UserError("table " + name() + ": action " + spec.action +
                    " not bound to table");
  }
  const auto* act = prog_->find_action(spec.action);
  ensures(act != nullptr, "TableState: action missing from program");
  if (act->params.size() != spec.action_args.size()) {
    throw UserError("table " + name() + ": action " + spec.action + " expects " +
                    std::to_string(act->params.size()) + " args, got " +
                    std::to_string(spec.action_args.size()));
  }
  for (std::size_t i = 0; i < spec.key.size(); ++i) {
    const auto width = prog_->fields.width(decl_->reads[i].field);
    const auto m = mask_for_width(width);
    if ((spec.key[i].value & ~m) != 0) {
      throw UserError("table " + name() + ": key component " + std::to_string(i) +
                      " wider than field");
    }
    if (decl_->reads[i].kind == p4::MatchKind::kExact &&
        (spec.key[i].mask & m) != m) {
      throw UserError("table " + name() + ": exact key component " +
                      std::to_string(i) + " must use a full mask");
    }
  }
}

EntryHandle TableState::add_entry(const p4::EntrySpec& spec) {
  check_spec(spec);
  if (entries_.size() >= decl_->size) {
    throw UserError("table " + name() + ": full (" + std::to_string(decl_->size) +
                    " entries)");
  }
  if (all_exact_) {
    std::vector<std::uint64_t> packed;
    packed.reserve(spec.key.size());
    for (const auto& k : spec.key) packed.push_back(k.value);
    if (exact_index_.count(packed) != 0) {
      throw UserError("table " + name() + ": duplicate exact key");
    }
    const EntryHandle h = next_handle_++;
    exact_index_.emplace(std::move(packed), h);
    entries_.emplace(h, StoredEntry{spec, next_seq_++, stamp_mutation()});
    return h;
  }
  const EntryHandle h = next_handle_++;
  entries_.emplace(h, StoredEntry{spec, next_seq_++, stamp_mutation()});
  return h;
}

void TableState::modify_entry(EntryHandle h, const std::string& action,
                              std::vector<std::uint64_t> args) {
  auto it = entries_.find(h);
  if (it == entries_.end()) throw UserError("table " + name() + ": bad handle");
  p4::EntrySpec updated = it->second.spec;
  updated.action = action;
  updated.action_args = std::move(args);
  check_spec(updated);
  it->second.spec = std::move(updated);
  it->second.provenance = stamp_mutation();
}

void TableState::delete_entry(EntryHandle h) {
  auto it = entries_.find(h);
  if (it == entries_.end()) throw UserError("table " + name() + ": bad handle");
  if (all_exact_) {
    std::vector<std::uint64_t> packed;
    for (const auto& k : it->second.spec.key) packed.push_back(k.value);
    exact_index_.erase(packed);
  }
  entries_.erase(it);
  stamp_mutation();  // marks the live reaction as having mutated state
}

void TableState::set_default(const std::string& action,
                             std::vector<std::uint64_t> args) {
  if (std::find(decl_->actions.begin(), decl_->actions.end(), action) ==
      decl_->actions.end()) {
    throw UserError("table " + name() + ": default action " + action +
                    " not bound to table");
  }
  default_action_ = action;
  default_args_ = std::move(args);
  default_provenance_ = stamp_mutation();
}

std::optional<EntryHandle> TableState::find_entry(
    const std::vector<p4::MatchValue>& key) const {
  for (const auto& [h, e] : entries_) {
    if (e.spec.key == key) return h;
  }
  return std::nullopt;
}

bool TableState::entry_matches(const StoredEntry& e, const Packet& pkt) const {
  for (std::size_t i = 0; i < decl_->reads.size(); ++i) {
    const auto& read = decl_->reads[i];
    const auto& k = e.spec.key[i];
    const std::uint64_t field_val = pkt.get(read.field);
    switch (read.kind) {
      case p4::MatchKind::kExact:
        if (field_val != k.value) return false;
        break;
      case p4::MatchKind::kTernary:
      case p4::MatchKind::kLpm:
        if ((field_val & k.mask) != (k.value & k.mask)) return false;
        break;
      case p4::MatchKind::kValid:
        // All headers are considered valid in the pre-parsed model; a key
        // value of 1 matches, 0 never does.
        if (k.value != 1) return false;
        break;
    }
  }
  return true;
}

TableState::LookupResult TableState::lookup(const Packet& pkt) const {
  LookupResult miss;
  miss.hit = false;
  miss.action = &default_action_;
  miss.args = &default_args_;
  miss.provenance = default_provenance_;

  if (decl_->reads.empty()) return miss;  // default-action-only table

  if (all_exact_) {
    // Per-thread scratch: the exact index is keyed by std::vector, and
    // building a fresh key per lookup was one allocation per table apply on
    // the packet hot path. Contents are fully rewritten every call.
    thread_local std::vector<std::uint64_t> packed;
    packed.clear();
    packed.reserve(decl_->reads.size());
    for (const auto& read : decl_->reads) packed.push_back(pkt.get(read.field));
    auto it = exact_index_.find(packed);
    if (it == exact_index_.end()) return miss;
    const auto& e = entries_.at(it->second);
    return LookupResult{true, &e.spec.action, &e.spec.action_args, it->second,
                        e.provenance};
  }

  // Ternary / LPM / mixed: scan all entries, pick by (priority, then longest
  // total prefix for LPM reads, then earliest insert).
  const StoredEntry* best = nullptr;
  EntryHandle best_h = 0;
  unsigned best_prefix = 0;
  for (const auto& [h, e] : entries_) {
    if (!entry_matches(e, pkt)) continue;
    unsigned prefix = 0;
    for (std::size_t i = 0; i < decl_->reads.size(); ++i) {
      if (decl_->reads[i].kind == p4::MatchKind::kLpm) {
        prefix += prefix_length(e.spec.key[i].mask,
                                prog_->fields.width(decl_->reads[i].field));
      }
    }
    const bool better =
        best == nullptr || e.spec.priority > best->spec.priority ||
        (e.spec.priority == best->spec.priority && prefix > best_prefix) ||
        (e.spec.priority == best->spec.priority && prefix == best_prefix &&
         e.insert_seq < best->insert_seq);
    if (better) {
      best = &e;
      best_h = h;
      best_prefix = prefix;
    }
  }
  if (best == nullptr) return miss;
  return LookupResult{true, &best->spec.action, &best->spec.action_args, best_h,
                      best->provenance};
}

const p4::EntrySpec& TableState::entry(EntryHandle h) const {
  auto it = entries_.find(h);
  if (it == entries_.end()) throw UserError("table " + name() + ": bad handle");
  return it->second.spec;
}

std::vector<EntryHandle> TableState::handles() const {
  std::vector<EntryHandle> out;
  out.reserve(entries_.size());
  for (const auto& [h, e] : entries_) out.push_back(h);
  return out;
}

std::uint64_t TableState::stamp_mutation() {
  return prov_ != nullptr ? prov_->on_table_mutation() : 0;
}

void TableState::write_snapshot(std::string& out) const {
  std::ostringstream s;
  s << "table " << name() << " entries=" << entries_.size() << "/"
    << decl_->size << "\n";
  s << "  default " << default_action_;
  for (auto a : default_args_) s << " " << a;
  if (default_provenance_ != 0) s << " rid=" << default_provenance_;
  s << "\n";
  // entries_ is a std::map keyed by handle, so iteration is deterministic.
  constexpr std::size_t kMaxEntries = 64;
  std::size_t shown = 0;
  for (const auto& [h, e] : entries_) {
    if (shown++ >= kMaxEntries) {
      s << "  ... " << (entries_.size() - kMaxEntries) << " more\n";
      break;
    }
    s << "  entry " << h << " key";
    for (const auto& k : e.spec.key) s << " " << k.value << "/" << k.mask;
    s << " -> " << e.spec.action;
    for (auto a : e.spec.action_args) s << " " << a;
    if (e.spec.priority != 0) s << " prio=" << e.spec.priority;
    if (e.provenance != 0) s << " rid=" << e.provenance;
    s << "\n";
  }
  out += s.str();
}

}  // namespace mantis::sim
