// Round-trip and cross-cutting property tests:
//  * the compiler's emitted P4-14 is valid input to our own frontend
//    (artifact #1 must be a real P4 program);
//  * entry expansion is semantics-preserving: for random packets and random
//    malleable-field configurations, the transformed table + expanded
//    entries behave exactly like the user's declared table would.
#include <gtest/gtest.h>

#include "apps/dos_mitigation.hpp"
#include "apps/gray_failure.hpp"
#include "apps/hash_polarization.hpp"
#include "apps/rl_dctcp.hpp"
#include "helpers.hpp"
#include "p4/emit.hpp"
#include "util/rng.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

class EmittedP4RoundTrip : public ::testing::TestWithParam<const char*> {};

std::string source_for(const std::string& name) {
  if (name == "dos") return apps::dos_p4r_source();
  if (name == "grayfail") return apps::gray_failure_p4r_source();
  if (name == "hashpol") return apps::hash_polarization_p4r_source();
  if (name == "rl") return apps::rl_dctcp_p4r_source();
  if (name == "figure1") return figure1_style_source();
  throw PreconditionError("unknown source " + name);
}

TEST_P(EmittedP4RoundTrip, EmittedProgramReparsesAndValidates) {
  const auto art = compile::compile_source(source_for(GetParam()));
  // The generated P4-14 text must parse through our own frontend (it is a
  // plain P4 program: no malleables, no reactions)...
  const auto reparsed = p4r::frontend(art.p4_source);
  EXPECT_TRUE(reparsed.values.empty());
  EXPECT_TRUE(reparsed.fields.empty());
  EXPECT_TRUE(reparsed.reactions.empty());
  // ...validate...
  EXPECT_NO_THROW(reparsed.prog.validate());
  // ...and agree with the compiled program's structure.
  EXPECT_EQ(reparsed.prog.tables.size(), art.prog.tables.size());
  EXPECT_EQ(reparsed.prog.actions.size(), art.prog.actions.size());
  EXPECT_EQ(reparsed.prog.registers.size(), art.prog.registers.size());
  for (const auto& tbl : art.prog.tables) {
    const auto* twin = reparsed.prog.find_table(tbl.name);
    ASSERT_NE(twin, nullptr) << tbl.name;
    EXPECT_EQ(twin->reads.size(), tbl.reads.size()) << tbl.name;
    EXPECT_EQ(twin->actions, tbl.actions) << tbl.name;
    EXPECT_EQ(twin->size, tbl.size) << tbl.name;
  }
  // A switch can load the re-parsed program.
  sim::EventLoop loop;
  EXPECT_NO_THROW(sim::Switch(loop, reparsed.prog));
}

INSTANTIATE_TEST_SUITE_P(AllApps, EmittedP4RoundTrip,
                         ::testing::Values("dos", "grayfail", "hashpol", "rl",
                                           "figure1"),
                         [](const auto& info) { return std::string(info.param); });

// ---------------------------------------------------------------------------
// Expansion semantics property test
// ---------------------------------------------------------------------------

// Program: table with one plain exact read, one malleable exact read, and
// actions that read and write another malleable field.
const char* kPropSrc = R"P4R(
header_type h_t { fields { k : 8; a : 16; b : 16; c : 16; out : 16; } }
header h_t h;

malleable field mkey { width : 16; init : h.a; alts { h.a, h.b, h.c } }
malleable field mval { width : 16; init : h.b; alts { h.b, h.c } }

action pick(v) { modify_field(h.out, v); add(h.out, h.out, ${mval}); }
action plain(v) { modify_field(h.out, v); }

malleable table t {
  reads { h.k : exact; ${mkey} : exact; }
  actions { pick; plain; }
  size : 64;
}
table fwd_t { actions { fwd; } default_action : fwd(1); size : 1; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }

control ingress { apply(t); apply(fwd_t); }
control egress { }
reaction nop() { }
)P4R";

/// The user-level (untransformed) semantics, evaluated by hand.
struct UserEntry {
  std::uint64_t k, mkey;
  std::string action;
  std::uint64_t v;
};

std::uint64_t expected_out(const std::vector<UserEntry>& entries,
                           std::uint64_t k, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c, std::size_t mkey_alt,
                           std::size_t mval_alt) {
  const std::uint64_t key_val = mkey_alt == 0 ? a : mkey_alt == 1 ? b : c;
  const std::uint64_t mval = mval_alt == 0 ? b : c;
  for (const auto& e : entries) {
    if (e.k == k && e.mkey == key_val) {
      if (e.action == "pick") return (e.v + mval) & 0xffff;
      return e.v;
    }
  }
  return 0;  // miss: out untouched
}

TEST(ExpansionSemantics, RandomizedEquivalenceWithUserModel) {
  Stack stack(kPropSrc);
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();

  // Install a handful of user entries (unique (k, mkey) pairs).
  Rng rng(2024);
  std::vector<UserEntry> entries;
  for (int i = 0; i < 12; ++i) {
    UserEntry e;
    e.k = rng.uniform(4);
    e.mkey = rng.uniform(6);
    const bool dup = std::any_of(entries.begin(), entries.end(), [&](const UserEntry& x) {
      return x.k == e.k && x.mkey == e.mkey;
    });
    if (dup) continue;
    e.action = rng.chance(0.5) ? "pick" : "plain";
    e.v = rng.uniform(1000);
    p4::EntrySpec spec;
    spec.key = {{e.k, kFull}, {e.mkey, kFull}};
    spec.action = e.action;
    spec.action_args = {e.v};
    ctx.add_entry("t", spec);
    entries.push_back(e);
  }

  // Sweep configurations x random packets; transformed behaviour must equal
  // the user model for every combination.
  int checked = 0;
  for (std::size_t mkey_alt = 0; mkey_alt < 3; ++mkey_alt) {
    for (std::size_t mval_alt = 0; mval_alt < 2; ++mval_alt) {
      stack.agent->set_scalar("mkey", mkey_alt);
      stack.agent->set_scalar("mval", mval_alt);
      for (int trial = 0; trial < 40; ++trial) {
        const std::uint64_t k = rng.uniform(4);
        const std::uint64_t a = rng.uniform(6);
        const std::uint64_t b = rng.uniform(6);
        const std::uint64_t c = rng.uniform(6);
        std::uint64_t got = kFull;
        stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
          got = stack.sw->factory().get(pkt, "h.out");
        });
        auto pkt = stack.sw->factory().make();
        stack.sw->factory().set(pkt, "h.k", k);
        stack.sw->factory().set(pkt, "h.a", a);
        stack.sw->factory().set(pkt, "h.b", b);
        stack.sw->factory().set(pkt, "h.c", c);
        stack.sw->inject(std::move(pkt), 0);
        stack.loop.run();
        ASSERT_NE(got, kFull) << "packet not delivered";
        EXPECT_EQ(got, expected_out(entries, k, a, b, c, mkey_alt, mval_alt))
            << "k=" << k << " a=" << a << " b=" << b << " c=" << c
            << " mkey_alt=" << mkey_alt << " mval_alt=" << mval_alt;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 240);
}

TEST(ExpansionSemantics, ModAndDeleteStayConsistent) {
  Stack stack(kPropSrc);
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();

  p4::EntrySpec spec;
  spec.key = {{1, kFull}, {5, kFull}};
  spec.action = "plain";
  spec.action_args = {100};
  const auto id = ctx.add_entry("t", spec);

  auto probe = [&](std::uint64_t a) {
    std::uint64_t got = 0;
    stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
      got = stack.sw->factory().get(pkt, "h.out");
    });
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.k", 1);
    stack.sw->factory().set(pkt, "h.a", a);
    stack.sw->factory().set(pkt, "h.b", 7);
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    return got;
  };

  EXPECT_EQ(probe(5), 100u);
  // Modify to the action with different dims (plain -> pick): the protocol
  // replaces the concrete entries (expansion shape changes).
  ctx.mod_entry("t", id, "pick", {30});
  EXPECT_EQ(probe(5), 37u);  // 30 + mval (h.b == 7)
  // And back.
  ctx.mod_entry("t", id, "plain", {55});
  EXPECT_EQ(probe(5), 55u);
  ctx.del_entry("t", id);
  EXPECT_EQ(probe(5), 0u);
  EXPECT_EQ(stack.sw->table("t").entry_count(), 0u);
}

}  // namespace
}  // namespace mantis::test

namespace mantis::test {
namespace {

TEST(MaskedMalleableRead, EntriesMatchOnlyMaskedBits) {
  Stack stack(R"P4R(
header_type h_t { fields { a : 32; b : 32; c : 16; } }
header h_t h;
malleable field mk { width : 32; init : h.a; alts { h.a, h.b } }
action mark(v) { modify_field(h.c, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table t {
  reads { ${mk} mask 0xff : exact; }
  actions { mark; }
  size : 16;
}
table o { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(t); apply(o); }
control egress { }
reaction nop() { }
)P4R");
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();
  p4::EntrySpec spec;
  spec.key = {{0x42, ~std::uint64_t{0}}};
  spec.action = "mark";
  spec.action_args = {9};
  ctx.add_entry("t", spec);

  auto probe = [&](std::uint64_t a) {
    std::uint64_t got = 0;
    stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
      got = stack.sw->factory().get(pkt, "h.c");
    });
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.a", a);
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    return got;
  };
  // Only the low byte participates in the match.
  EXPECT_EQ(probe(0x42), 9u);
  EXPECT_EQ(probe(0xdead42), 9u);   // high bits ignored
  EXPECT_EQ(probe(0x43), 0u);       // low byte differs -> miss
}

}  // namespace
}  // namespace mantis::test

namespace mantis::test {
namespace {

TEST(EmitRoundTrip, CountersAndMixedKindsSurvive) {
  const char* src = R"P4R(
header_type h_t { fields { a : 32; b : 16; } }
header h_t h;
register r { width : 24; instance_count : 5; }
counter c { type : packets; instance_count : 3; }
action tally() { count(c, 1); }
table t { reads { h.a : lpm; h.b : ternary; } actions { tally; } size : 12; }
control ingress { apply(t); }
control egress { }
)P4R";
  const auto first = p4r::frontend(src);
  const auto text = p4::emit_p4(first.prog);
  const auto second = p4r::frontend(text);
  ASSERT_EQ(second.prog.counters.size(), 1u);
  EXPECT_EQ(second.prog.counters[0].instance_count, 3u);
  ASSERT_EQ(second.prog.registers.size(), 1u);
  EXPECT_EQ(second.prog.registers[0].width, 24);
  const auto* tbl = second.prog.find_table("t");
  ASSERT_NE(tbl, nullptr);
  EXPECT_EQ(tbl->reads[0].kind, p4::MatchKind::kLpm);
  EXPECT_EQ(tbl->reads[1].kind, p4::MatchKind::kTernary);
  EXPECT_NO_THROW(second.prog.validate());
}

TEST(CompileOptions, TinyInitBudgetRejectedGracefully) {
  compile::Options opts;
  opts.rmt.max_action_bits = 1;
  EXPECT_THROW(compile::compile_source(figure1_style_source(), opts), UserError);
}

}  // namespace
}  // namespace mantis::test
