// Driver-layer tests: latency model shapes, channel serialization/queueing,
// batching, memoization, sync/async interplay.
#include <gtest/gtest.h>

#include "driver/driver.hpp"
#include "p4r/sema.hpp"

namespace mantis::driver {
namespace {

const char* kSrc = R"P4R(
header_type h_t { fields { a : 32; } }
header h_t h;
register r { width : 32; instance_count : 64; }
action set_out(port) { modify_field(standard_metadata.egress_spec, port); }
table t {
  reads { h.a : exact; }
  actions { set_out; }
  size : 128;
}
control ingress { apply(t); }
control egress { }
)P4R";

struct DriverFixture : ::testing::Test {
  sim::EventLoop loop;
  p4::Program prog;
  std::unique_ptr<sim::Switch> sw;

  void SetUp() override {
    prog = p4r::frontend(kSrc).prog;
    sw = std::make_unique<sim::Switch>(loop, prog);
  }

  static p4::EntrySpec entry(std::uint64_t key, std::uint64_t port) {
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{key, ~std::uint64_t{0}});
    spec.action = "set_out";
    spec.action_args = {port};
    return spec;
  }
};

TEST_F(DriverFixture, SyncOpsAdvanceVirtualTimeByModelCost) {
  Driver drv(*sw);
  const auto& costs = drv.costs();
  const Time t0 = loop.now();
  drv.read_register("r", 0);
  EXPECT_EQ(loop.now() - t0, costs.packed_words_read(1));

  const Time t1 = loop.now();
  drv.read_register_range("r", 0, 15);  // 16 cells x 4B
  EXPECT_EQ(loop.now() - t1, costs.range_read(64));

  const Time t2 = loop.now();
  drv.add_entry("t", entry(1, 2));  // cold
  EXPECT_EQ(loop.now() - t2, costs.table_add(false));

  const Time t3 = loop.now();
  drv.add_entry("t", entry(2, 2));  // memoized (same table+action)
  EXPECT_EQ(loop.now() - t3, costs.table_add(true));
}

TEST_F(DriverFixture, RangeReadCheaperPerByteThanScatteredWords) {
  Driver drv(*sw);
  const auto& costs = drv.costs();
  // 64 scattered 32-bit words vs one 256B contiguous range (Fig 10a shape).
  EXPECT_GT(costs.packed_words_read(64), costs.range_read(256));
}

TEST_F(DriverFixture, MemoizationDiscountsAndCanBeDisabled) {
  Driver warm(*sw);
  warm.memoize("t", "set_out");
  const Time t0 = loop.now();
  warm.add_entry("t", entry(10, 1));
  const Duration warm_cost = loop.now() - t0;
  EXPECT_EQ(warm_cost, warm.costs().table_add(true));

  DriverOptions no_memo;
  no_memo.enable_memoization = false;
  Driver cold(*sw, no_memo);
  const Time t1 = loop.now();
  cold.add_entry("t", entry(11, 1));
  cold.add_entry("t", entry(12, 1));
  // Every op stays cold.
  EXPECT_EQ(loop.now() - t1, 2 * cold.costs().table_add(false));
}

TEST_F(DriverFixture, BatchSharesOverhead) {
  Driver drv(*sw);
  drv.memoize("t", "set_out");
  Driver::Batch batch;
  for (int i = 0; i < 8; ++i) batch.add("t", entry(100 + i, 1));
  const Time t0 = loop.now();
  const auto handles = drv.run_batch(std::move(batch));
  const Duration batched = loop.now() - t0;
  EXPECT_EQ(handles.size(), 8u);
  // One shared PCIe round trip instead of eight.
  const Duration unbatched = 8 * drv.costs().table_add(true);
  EXPECT_LT(batched, unbatched);
  EXPECT_EQ(batched, drv.costs().batch_overhead + drv.costs().pcie_rtt +
                         8 * (drv.costs().table_add(true) - drv.costs().pcie_rtt));
}

TEST_F(DriverFixture, BatchingAblationFallsBackToSingles) {
  DriverOptions opts;
  opts.enable_batching = false;
  Driver drv(*sw, opts);
  drv.memoize("t", "set_out");
  Driver::Batch batch;
  for (int i = 0; i < 4; ++i) batch.add("t", entry(200 + i, 1));
  const Time t0 = loop.now();
  drv.run_batch(std::move(batch));
  EXPECT_EQ(loop.now() - t0, 4 * drv.costs().table_add(true));
}

TEST_F(DriverFixture, BatchMutationsApplyAtomicallyAtCompletion) {
  Driver drv(*sw);
  Driver::Batch batch;
  batch.add("t", entry(1, 1));
  batch.add("t", entry(2, 2));
  // During the batch occupancy, inject a packet: it must see NEITHER entry
  // (mutations land at completion).
  bool mid_check_done = false;
  loop.schedule_at(loop.now() + 100, [&] {
    EXPECT_EQ(sw->table("t").entry_count(), 0u);
    mid_check_done = true;
  });
  drv.run_batch(std::move(batch));
  EXPECT_TRUE(mid_check_done);
  EXPECT_EQ(sw->table("t").entry_count(), 2u);
}

TEST_F(DriverFixture, AsyncOpsQueueBehindSyncOps) {
  Driver drv(*sw);
  const auto h = drv.add_entry("t", entry(1, 1));

  // Launch an async modify while the channel is busy with a long range read.
  Duration async_latency = -1;
  loop.schedule_at(loop.now() + 10, [&] {
    drv.async_modify_entry("t", h, "set_out", {9},
                           [&](Duration lat) { async_latency = lat; });
  });
  drv.read_register_range("r", 0, 63);  // occupies the channel
  loop.run();
  ASSERT_GE(async_latency, 0);
  // Latency includes queueing behind the in-flight read.
  EXPECT_GT(async_latency, drv.costs().table_mod(true));
  EXPECT_EQ(sw->table("t").entry(h).action_args[0], 9u);
}

TEST_F(DriverFixture, ChannelTracksBusyTime) {
  Driver drv(*sw);
  drv.read_register("r", 0);
  drv.read_register("r", 1);
  EXPECT_EQ(drv.channel().busy_time(), 2 * drv.costs().packed_words_read(1));
  EXPECT_EQ(drv.channel().ops_submitted(), 2u);
}

TEST_F(DriverFixture, ReadPackedWordsReturnsRequestOrder) {
  Driver drv(*sw);
  sw->registers().write("r", 3, 33);
  sw->registers().write("r", 1, 11);
  const auto vals = drv.read_packed_words({{"r", 3}, {"r", 1}});
  EXPECT_EQ(vals, (std::vector<std::uint64_t>{33, 11}));
}

TEST_F(DriverFixture, AsyncReadRegisterRange) {
  Driver drv(*sw);
  sw->registers().write("r", 2, 7);
  std::vector<std::uint64_t> got;
  drv.async_read_register_range("r", 0, 3,
                                [&](std::vector<std::uint64_t> v, Duration) {
                                  got = std::move(v);
                                });
  loop.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 0, 7, 0}));
}

}  // namespace
}  // namespace mantis::driver
