#include "telemetry/prof/prof.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "telemetry/metrics.hpp"  // json_escape
#include "util/check.hpp"

namespace mantis::telemetry::prof {

namespace detail {
thread_local Frame* tls_frame_top = nullptr;
}  // namespace detail

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kOther: return "other";
    case EventKind::kPacketTransit: return "packet_transit";
    case EventKind::kPipelineExecute: return "pipeline_execute";
    case EventKind::kTmDequeue: return "tm_dequeue";
    case EventKind::kControlDriver: return "control_driver";
    case EventKind::kAgentPoll: return "agent_poll";
    case EventKind::kFaultTransition: return "fault_transition";
    case EventKind::kInt: return "int";
  }
  return "other";
}

// ---------------------------------------------------------------------------
// Site registry. Global (sites are call-site statics shared by every
// Profiler instance); lookups during registration are mutex-guarded, reads
// on the report path go through the same lock, and hot-path code only ever
// carries the SiteId, never touches the registry.

namespace {

struct SiteRegistry {
  std::mutex mu;
  const char* names[kMaxSites] = {};
  EventKind kinds[kMaxSites] = {};
  std::size_t count = 1;  // id 0 reserved

  static SiteRegistry& instance() {
    static SiteRegistry reg;
    return reg;
  }
};

}  // namespace

SiteId register_site(const char* name, EventKind kind) {
  auto& reg = SiteRegistry::instance();
  const std::lock_guard<std::mutex> lock(reg.mu);
  // Re-registration (same name, e.g. a template or macro in a header) reuses
  // the existing id so folded stacks stay stable.
  for (std::size_t i = 1; i < reg.count; ++i) {
    if (std::strcmp(reg.names[i], name) == 0 && reg.kinds[i] == kind) {
      return static_cast<SiteId>(i);
    }
  }
  if (reg.count >= kMaxSites) return 0;
  const std::size_t id = reg.count++;
  reg.names[id] = name;
  reg.kinds[id] = kind;
  return static_cast<SiteId>(id);
}

const char* site_name(SiteId id) {
  auto& reg = SiteRegistry::instance();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (id == 0 || id >= reg.count) return "?";
  return reg.names[id];
}

EventKind site_kind(SiteId id) {
  auto& reg = SiteRegistry::instance();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (id == 0 || id >= reg.count) return EventKind::kOther;
  return reg.kinds[id];
}

std::size_t num_sites() {
  auto& reg = SiteRegistry::instance();
  const std::lock_guard<std::mutex> lock(reg.mu);
  return reg.count;
}

SiteId EventScope::dispatch_site() {
  // The root frame of every event callback: whatever a callback does
  // outside a named MANTIS_PROF_SCOPE lands here, so the attribution always
  // sums to total dispatch time instead of silently losing the remainder.
  static const SiteId id = register_site("event.dispatch", EventKind::kOther);
  return id;
}

// ---------------------------------------------------------------------------

std::int64_t Profiler::wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Profiler::Profiler()
    : site_cells_(new SiteCell[kMaxSites]),
      folded_(new FoldedSlot[kFoldedSlots]) {
  samples_.reserve(64);
}

Profiler::~Profiler() = default;

void Profiler::reset() {
  for (std::size_t i = 0; i < kMaxSites; ++i) {
    site_cells_[i].count.store(0, std::memory_order_relaxed);
    site_cells_[i].self_ns.store(0, std::memory_order_relaxed);
    site_cells_[i].allocs.store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kFoldedSlots; ++i) {
    folded_[i].path.store(0, std::memory_order_relaxed);
    folded_[i].self_ns.store(0, std::memory_order_relaxed);
    folded_[i].count.store(0, std::memory_order_relaxed);
  }
  folded_overflow_ns_.store(0, std::memory_order_relaxed);
  for (auto& cell : shard_cells_) {
    cell->events.store(0, std::memory_order_relaxed);
    cell->wall_ns.store(0, std::memory_order_relaxed);
    cell->allocs.store(0, std::memory_order_relaxed);
  }
  main_cell_.events.store(0, std::memory_order_relaxed);
  main_cell_.wall_ns.store(0, std::memory_order_relaxed);
  main_cell_.allocs.store(0, std::memory_order_relaxed);
  heap_pushes_.store(0, std::memory_order_relaxed);
  heap_pops_.store(0, std::memory_order_relaxed);
  heap_peak_depth_.store(0, std::memory_order_relaxed);
  local_pushes_.store(0, std::memory_order_relaxed);
  outbox_pushes_.store(0, std::memory_order_relaxed);
  rounds_.store(0, std::memory_order_relaxed);
  barrier_stall_ns_.store(0, std::memory_order_relaxed);
  idle_shard_rounds_.store(0, std::memory_order_relaxed);
  sum_round_max_events_.store(0, std::memory_order_relaxed);
  sum_round_events_.store(0, std::memory_order_relaxed);
  samples_.clear();
}

void Profiler::attribute(SiteId site, std::uint32_t path,
                         std::uint64_t self_ns, std::uint64_t self_allocs) {
  SiteCell& cell = site_cells_[site];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
  cell.allocs.fetch_add(self_allocs, std::memory_order_relaxed);

  if (path == 0) return;
  // Open addressing, linear probe. Slots claim their path by CAS; a full
  // table routes the remainder into the overflow bucket instead of looping.
  std::size_t idx = (path * 2654435761u) & (kFoldedSlots - 1);
  for (std::size_t probe = 0; probe < kFoldedSlots; ++probe) {
    FoldedSlot& slot = folded_[idx];
    std::uint32_t cur = slot.path.load(std::memory_order_acquire);
    if (cur == 0) {
      if (!slot.path.compare_exchange_strong(cur, path,
                                             std::memory_order_acq_rel)) {
        if (cur != path) {
          idx = (idx + 1) & (kFoldedSlots - 1);
          continue;
        }
      }
      cur = path;
    }
    if (cur == path) {
      slot.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    idx = (idx + 1) & (kFoldedSlots - 1);
  }
  folded_overflow_ns_.fetch_add(self_ns, std::memory_order_relaxed);
}

void Profiler::count_event(int shard, std::uint64_t incl_ns,
                           std::uint64_t incl_allocs) {
  ShardCell& cell =
      (shard >= 0 && static_cast<std::size_t>(shard) < shard_cells_.size())
          ? *shard_cells_[static_cast<std::size_t>(shard)]
          : main_cell_;
  cell.events.fetch_add(1, std::memory_order_relaxed);
  cell.wall_ns.fetch_add(incl_ns, std::memory_order_relaxed);
  cell.allocs.fetch_add(incl_allocs, std::memory_order_relaxed);
}

void Profiler::count_heap_push(std::size_t depth_after) {
  heap_pushes_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t depth = static_cast<std::uint64_t>(depth_after);
  std::uint64_t peak = heap_peak_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !heap_peak_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

void Profiler::ensure_shards(std::size_t count) {
  // Grown only from the main thread before any round is in flight: the
  // vector never reallocates under workers (they index, never push).
  while (shard_cells_.size() < count) {
    shard_cells_.push_back(std::make_unique<ShardCell>());
  }
}

void Profiler::note_round(std::uint64_t max_events, std::uint64_t total_events,
                          std::size_t idle_shards, std::uint64_t stall_ns) {
  rounds_.fetch_add(1, std::memory_order_relaxed);
  barrier_stall_ns_.fetch_add(stall_ns, std::memory_order_relaxed);
  idle_shard_rounds_.fetch_add(idle_shards, std::memory_order_relaxed);
  sum_round_max_events_.fetch_add(max_events, std::memory_order_relaxed);
  sum_round_events_.fetch_add(total_events, std::memory_order_relaxed);
}

void Profiler::sample(Time vt) {
  if (samples_.size() >= kMaxSamples) return;
  ProfileReport::Sample s;
  s.vt = vt;
  std::uint64_t events = main_cell_.events.load(std::memory_order_relaxed);
  for (const auto& cell : shard_cells_) {
    events += cell->events.load(std::memory_order_relaxed);
  }
  s.events = events;
  for (std::size_t i = 1; i < kMaxSites && i < num_sites(); ++i) {
    const auto kind = static_cast<std::size_t>(site_kind(static_cast<SiteId>(i)));
    s.kind_self_ns[kind] +=
        site_cells_[i].self_ns.load(std::memory_order_relaxed);
  }
  samples_.push_back(s);
}

double ProfileReport::RoundStats::imbalance() const {
  if (rounds == 0 || shard_count == 0 || sum_round_events == 0) return 1.0;
  const double avg_max = static_cast<double>(sum_round_max_events) /
                         static_cast<double>(rounds);
  const double avg_mean = static_cast<double>(sum_round_events) /
                          static_cast<double>(rounds) /
                          static_cast<double>(shard_count);
  return avg_mean <= 0 ? 1.0 : avg_max / avg_mean;
}

ProfileReport Profiler::report() const {
  ProfileReport rep;
  rep.compiled = MANTIS_TELEMETRY_ENABLED != 0;
  rep.enabled = enabled();
  rep.lifetime_allocs = total_allocs();
  rep.lifetime_frees = total_frees();

  const std::size_t sites = std::min<std::size_t>(num_sites(), kMaxSites);
  for (std::size_t i = 1; i < sites; ++i) {
    const auto id = static_cast<SiteId>(i);
    ProfileReport::SiteStats s;
    s.name = site_name(id);
    s.kind = site_kind(id);
    s.count = site_cells_[i].count.load(std::memory_order_relaxed);
    s.self_ns = site_cells_[i].self_ns.load(std::memory_order_relaxed);
    s.allocs = site_cells_[i].allocs.load(std::memory_order_relaxed);
    if (s.count == 0) continue;
    auto& k = rep.kinds[static_cast<std::size_t>(s.kind)];
    k.count += s.count;
    k.self_ns += s.self_ns;
    k.allocs += s.allocs;
    rep.sites.push_back(std::move(s));
  }

  rep.events = main_cell_.events.load(std::memory_order_relaxed);
  rep.wall_ns = main_cell_.wall_ns.load(std::memory_order_relaxed);
  rep.event_allocs = main_cell_.allocs.load(std::memory_order_relaxed);
  for (const auto& cell : shard_cells_) {
    ProfileReport::ShardStats s;
    s.events = cell->events.load(std::memory_order_relaxed);
    s.wall_ns = cell->wall_ns.load(std::memory_order_relaxed);
    s.allocs = cell->allocs.load(std::memory_order_relaxed);
    rep.events += s.events;
    rep.wall_ns += s.wall_ns;
    rep.event_allocs += s.allocs;
    rep.shards.push_back(s);
  }

  rep.heap.pushes = heap_pushes_.load(std::memory_order_relaxed);
  rep.heap.pops = heap_pops_.load(std::memory_order_relaxed);
  rep.heap.peak_depth = heap_peak_depth_.load(std::memory_order_relaxed);
  rep.heap.local_pushes = local_pushes_.load(std::memory_order_relaxed);
  rep.heap.outbox_pushes = outbox_pushes_.load(std::memory_order_relaxed);

  rep.rounds.rounds = rounds_.load(std::memory_order_relaxed);
  rep.rounds.barrier_stall_ns =
      barrier_stall_ns_.load(std::memory_order_relaxed);
  rep.rounds.idle_shard_rounds =
      idle_shard_rounds_.load(std::memory_order_relaxed);
  rep.rounds.sum_round_max_events =
      sum_round_max_events_.load(std::memory_order_relaxed);
  rep.rounds.sum_round_events =
      sum_round_events_.load(std::memory_order_relaxed);
  rep.rounds.shard_count = shard_cells_.size();

  // Folded stacks: decode packed paths (highest occupied byte = outermost
  // frame), sort by self time descending then name for determinism.
  for (std::size_t i = 0; i < kFoldedSlots; ++i) {
    const std::uint32_t path = folded_[i].path.load(std::memory_order_relaxed);
    if (path == 0) continue;
    const std::uint64_t ns = folded_[i].self_ns.load(std::memory_order_relaxed);
    std::string stack;
    bool started = false;
    for (int shift = 24; shift >= 0; shift -= 8) {
      const auto id = static_cast<SiteId>((path >> shift) & 0xFFu);
      if (id == 0 && !started) continue;
      started = true;
      if (!stack.empty()) stack += ';';
      stack += site_name(id);
    }
    rep.folded.emplace_back(std::move(stack), ns);
  }
  const std::uint64_t overflow =
      folded_overflow_ns_.load(std::memory_order_relaxed);
  if (overflow > 0) rep.folded.emplace_back("prof.overflow", overflow);
  std::sort(rep.folded.begin(), rep.folded.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  rep.samples = samples_;
  return rep;
}

// ---------------------------------------------------------------------------
// Rendering.

namespace {

std::string fmt_ratio(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

std::string ProfileReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"mantis-prof/1\",\n";
  out << "  \"compiled\": " << (compiled ? "true" : "false") << ",\n";
  out << "  \"enabled\": " << (enabled ? "true" : "false") << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"wall_ns\": " << wall_ns << ",\n";
  out << "  \"event_allocs\": " << event_allocs << ",\n";
  out << "  \"allocs_per_event\": " << fmt_ratio(allocs_per_event()) << ",\n";
  out << "  \"lifetime_allocs\": " << lifetime_allocs << ",\n";
  out << "  \"lifetime_frees\": " << lifetime_frees << ",\n";

  out << "  \"kinds\": {";
  bool first = true;
  for (std::size_t i = 0; i < kNumKinds; ++i) {
    const KindStats& k = kinds[i];
    if (k.count == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << kind_name(static_cast<EventKind>(i))
        << "\": {\"count\": " << k.count << ", \"self_ns\": " << k.self_ns
        << ", \"allocs\": " << k.allocs << "}";
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"sites\": [";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteStats& s = sites[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(s.name) << "\", \"kind\": \""
        << kind_name(s.kind) << "\", \"count\": " << s.count
        << ", \"self_ns\": " << s.self_ns << ", \"allocs\": " << s.allocs
        << "}";
  }
  out << (sites.empty() ? "" : "\n  ") << "],\n";

  out << "  \"heap\": {\"pushes\": " << heap.pushes
      << ", \"pops\": " << heap.pops << ", \"peak_depth\": " << heap.peak_depth
      << ", \"local_pushes\": " << heap.local_pushes
      << ", \"outbox_pushes\": " << heap.outbox_pushes << "},\n";

  out << "  \"shards\": {\"count\": " << rounds.shard_count
      << ", \"rounds\": " << rounds.rounds
      << ", \"barrier_stall_ns\": " << rounds.barrier_stall_ns
      << ", \"idle_shard_rounds\": " << rounds.idle_shard_rounds
      << ", \"imbalance\": " << fmt_ratio(rounds.imbalance())
      << ", \"per_shard\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    out << (i == 0 ? "" : ", ");
    out << "{\"events\": " << s.events << ", \"wall_ns\": " << s.wall_ns
        << ", \"allocs\": " << s.allocs << "}";
  }
  out << "]},\n";

  out << "  \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"vt\": " << s.vt << ", \"events\": " << s.events
        << ", \"kind_self_ns\": {";
    bool f2 = true;
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      if (s.kind_self_ns[k] == 0) continue;
      if (!f2) out << ", ";
      f2 = false;
      out << "\"" << kind_name(static_cast<EventKind>(k))
          << "\": " << s.kind_self_ns[k];
    }
    out << "}}";
  }
  out << (samples.empty() ? "" : "\n  ") << "]\n";
  out << "}\n";
  return out.str();
}

std::string ProfileReport::to_folded() const {
  std::ostringstream out;
  for (const auto& [stack, ns] : folded) {
    if (ns == 0) continue;
    out << stack << " " << ns << "\n";
  }
  return out.str();
}

}  // namespace mantis::telemetry::prof
