#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "util/check.hpp"

namespace mantis::net {

std::map<std::uint32_t, int> Topology::compute_routes_from(
    NodeId src, const std::vector<bool>& port_down) const {
  expects(src >= 0 && src < num_nodes, "compute_routes_from: bad source node");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(num_nodes), kInf);
  std::vector<int> first_hop(static_cast<std::size_t>(num_nodes), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0.0, src);

  auto relax = [&](int from, int to, int via_port_of_src, double cost) {
    if (dist[static_cast<std::size_t>(from)] + cost <
        dist[static_cast<std::size_t>(to)]) {
      dist[static_cast<std::size_t>(to)] =
          dist[static_cast<std::size_t>(from)] + cost;
      first_hop[static_cast<std::size_t>(to)] =
          from == src ? via_port_of_src
                      : first_hop[static_cast<std::size_t>(from)];
      pq.emplace(dist[static_cast<std::size_t>(to)], to);
    }
  };

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& link : links) {
      // A down port of `src` disables the link in both directions (the
      // detector only has local knowledge; remote faults surface as their
      // own ports' heartbeat deltas on the remote switch).
      const bool usable =
          !((link.a == src &&
             static_cast<std::size_t>(link.port_a) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_a)]) ||
            (link.b == src &&
             static_cast<std::size_t>(link.port_b) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_b)]));
      if (!usable) continue;
      if (link.a == u) relax(u, link.b, link.port_a, link.cost);
      if (link.b == u) relax(u, link.a, link.port_b, link.cost);
    }
  }

  std::map<std::uint32_t, int> routes;
  for (const auto& [addr, node] : dst_node) {
    routes[addr] = dist[static_cast<std::size_t>(node)] == kInf
                       ? -1
                       : first_hop[static_cast<std::size_t>(node)];
  }
  return routes;
}

int Topology::link_at(NodeId node, int port) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if ((links[i].a == node && links[i].port_a == port) ||
        (links[i].b == node && links[i].port_b == port)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::link_between(NodeId a, NodeId b) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if ((links[i].a == a && links[i].b == b) ||
        (links[i].a == b && links[i].b == a)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> Topology::switch_facing_ports(NodeId node) const {
  std::vector<int> ports;
  for (const auto& link : links) {
    if (link.a == node && is_switch(link.b)) ports.push_back(link.port_a);
    if (link.b == node && is_switch(link.a)) ports.push_back(link.port_b);
  }
  std::sort(ports.begin(), ports.end());
  return ports;
}

Topology Topology::fat_tree_slice(int fanout, int num_dsts) {
  expects(fanout >= 2, "fat_tree_slice: need >= 2 uplinks");
  Topology topo;
  // node 0: this switch; nodes 1..fanout: aggregation neighbours;
  // nodes fanout+1..fanout+num_dsts: destinations, each dual-homed to two
  // consecutive aggregation nodes.
  topo.num_nodes = 1 + fanout + num_dsts;
  for (int a = 0; a < fanout; ++a) {
    topo.links.push_back(Link{0, 1 + a, a, 0, 1.0});
  }
  for (int d = 0; d < num_dsts; ++d) {
    const int node = 1 + fanout + d;
    const int agg1 = 1 + (d % fanout);
    const int agg2 = 1 + ((d + 1) % fanout);
    topo.links.push_back(Link{agg1, node, 1 + d, 0, 1.0});
    topo.links.push_back(Link{agg2, node, 1 + d, 0, 1.1});
    topo.dst_node.emplace(0xc0a80000u + static_cast<std::uint32_t>(d), node);
  }
  return topo;
}

Topology Topology::leaf_spine(int leaves, int spines, int hosts_per_leaf) {
  expects(leaves >= 1 && spines >= 1, "leaf_spine: need leaves and spines");
  expects(hosts_per_leaf >= 0, "leaf_spine: bad hosts_per_leaf");
  Topology topo;
  topo.num_switches = leaves + spines;
  topo.num_nodes = leaves + spines + leaves * hosts_per_leaf;
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      // leaf l port s <-> spine (leaves+s) port l
      topo.links.push_back(Link{l, leaves + s, s, l, 1.0});
    }
  }
  for (int l = 0; l < leaves; ++l) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = leaves + spines + l * hosts_per_leaf + h;
      topo.links.push_back(Link{l, host, spines + h, 0, 1.0});
      topo.dst_node.emplace(
          0x0a000000u + (static_cast<std::uint32_t>(l) << 8) +
              static_cast<std::uint32_t>(h),
          host);
    }
  }
  return topo;
}

Topology Topology::ring(int switches, int hosts_per_switch) {
  expects(switches >= 3, "ring: need >= 3 switches");
  expects(hosts_per_switch >= 0, "ring: bad hosts_per_switch");
  Topology topo;
  topo.num_switches = switches;
  topo.num_nodes = switches + switches * hosts_per_switch;
  for (int i = 0; i < switches; ++i) {
    // switch i port 0 -> next ring member's port 1.
    topo.links.push_back(Link{i, (i + 1) % switches, 0, 1, 1.0});
  }
  for (int i = 0; i < switches; ++i) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = switches + i * hosts_per_switch + h;
      topo.links.push_back(Link{i, host, 2 + h, 0, 1.0});
      topo.dst_node.emplace(
          0x0a000000u + (static_cast<std::uint32_t>(i) << 8) +
              static_cast<std::uint32_t>(h),
          host);
    }
  }
  return topo;
}

}  // namespace mantis::net
