// Demonstration of the paper's §5 guarantee — and what goes wrong without
// it. A reaction updates entries in TWO malleable tables; packets stream
// through continuously. With Mantis's three-phase protocol every packet sees
// a consistent (x == y) configuration; the naive driver path tears.
//
//   $ ./example_serializability_demo
#include <cstdio>
#include <memory>

#include "agent/agent.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "sim/switch.hpp"

namespace {

const char* kSrc = R"P4R(
header_type h_t { fields { k : 16; x : 16; y : 16; } }
header h_t h;

action seta(v) { modify_field(h.x, v); }
action setb(v) { modify_field(h.y, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }

malleable table t1 { reads { h.k : exact; } actions { seta; } size : 16; }
malleable table t2 { reads { h.k : exact; } actions { setb; } size : 16; }
table out { actions { fwd; } default_action : fwd(1); size : 1; }

control ingress { apply(t1); apply(t2); apply(out); }
control egress { }
reaction bump() { }
)P4R";

struct Observation {
  int consistent = 0;
  int torn = 0;
};

}  // namespace

int main() {
  using namespace mantis;
  constexpr std::uint64_t kFull = ~std::uint64_t{0};

  for (const bool use_protocol : {true, false}) {
    const auto artifacts = compile::compile_source(kSrc);
    sim::EventLoop loop;
    sim::Switch sw(loop, artifacts.prog);
    driver::Driver drv(sw);
    agent::Agent agent(drv, artifacts);

    agent::UserEntryId id1 = 0, id2 = 0;
    agent.run_prologue([&](agent::ReactionContext& ctx) {
      p4::EntrySpec e;
      e.key = {{7, kFull}};
      e.action = "seta";
      e.action_args = {0};
      id1 = ctx.add_entry("t1", e);
      e.action = "setb";
      id2 = ctx.add_entry("t2", e);
    });

    Observation obs;
    sw.set_on_transmit([&](const sim::Packet& pkt, int, Time) {
      const auto x = sw.factory().get(pkt, "h.x");
      const auto y = sw.factory().get(pkt, "h.y");
      (x == y ? obs.consistent : obs.torn)++;
    });
    const Time base = loop.now();
    for (int i = 0; i < 3000; ++i) {
      loop.schedule_at(base + i * 400, [&sw] {
        auto pkt = sw.factory().make();
        sw.factory().set(pkt, "h.k", 7);
        sw.inject(std::move(pkt), 0);
      });
    }

    std::uint64_t generation = 0;
    if (use_protocol) {
      // The Mantis way: both mods buffered in one reaction, committed by a
      // single vv flip.
      agent.set_native_reaction("bump", [&](agent::ReactionContext& ctx) {
        ++generation;
        ctx.mod_entry("t1", id1, "seta", {generation});
        ctx.mod_entry("t2", id2, "setb", {generation});
      });
      agent.run_dialogue(60);
    } else {
      // The naive way: modify the concrete entries directly, one driver op
      // at a time, while packets fly.
      for (int g = 1; g <= 60; ++g) {
        for (const auto& table : {"t1", "t2"}) {
          auto& tbl = sw.table(table);
          for (const auto h : tbl.handles()) {
            drv.modify_entry(table, h, tbl.entry(h).action,
                             {static_cast<std::uint64_t>(g)});
          }
        }
      }
    }
    loop.run();

    std::printf("%-28s consistent=%5d  torn=%5d\n",
                use_protocol ? "three-phase (Mantis):" : "naive driver updates:",
                obs.consistent, obs.torn);
  }
  std::printf("\nEvery packet under the Mantis protocol saw x == y; the naive\n"
              "path exposed mixed configurations (paper 5.1's motivation).\n");
  return 0;
}
