// Unit tests for the hot-path profiler (telemetry/prof): site registry,
// per-event cost attribution, allocation accounting (including the pinned
// per-packet-event allocation count), heap-operation counters, and the
// report/JSON/folded output shapes.
//
// Everything observable here is wall-clock-side only; the companion
// equivalence suite (test_parallel_fabric.cpp) proves the virtual execution
// is byte-identical with profiling on.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "sim/event_loop.hpp"
#include "telemetry/inspect.hpp"
#include "telemetry/prof/alloc_hook.hpp"
#include "telemetry/prof/prof.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/pool.hpp"

namespace mantis::telemetry::prof {
namespace {

TEST(ProfSiteRegistry, DeduplicatesByNameAndKind) {
  const SiteId a = register_site("test.dedup_site", EventKind::kOther);
  const SiteId b = register_site("test.dedup_site", EventKind::kOther);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0);  // 0 is the reserved "unknown" site
  EXPECT_STREQ(site_name(a), "test.dedup_site");
  EXPECT_EQ(site_kind(a), EventKind::kOther);
}

#if MANTIS_TELEMETRY_ENABLED

TEST(ProfProfiler, DisabledProfilerCountsNothing) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  ASSERT_FALSE(prof.enabled());  // off by default
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  const ProfileReport rep = prof.report();
  EXPECT_EQ(rep.events, 0u);
  EXPECT_EQ(rep.heap.pushes, 0u);
  EXPECT_EQ(rep.heap.pops, 0u);
  EXPECT_TRUE(rep.compiled);
  EXPECT_FALSE(rep.enabled);
}

TEST(ProfProfiler, CountsEventsAndHeapOps) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);
  constexpr int kEvents = 5;
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    loop.schedule_at(10 * (i + 1), [&] { ++fired; });
  }
  loop.run();
  prof.set_enabled(false);

  EXPECT_EQ(fired, kEvents);
  const ProfileReport rep = prof.report();
  EXPECT_EQ(rep.events, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(rep.heap.pushes, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(rep.heap.pops, static_cast<std::uint64_t>(kEvents));
  EXPECT_GE(rep.heap.peak_depth, 1u);
  EXPECT_LE(rep.heap.peak_depth, static_cast<std::uint64_t>(kEvents));
  // Everything dispatched lands in some kind bucket; with no ProfScopes in
  // the callbacks it is all the "event.dispatch" remainder (kOther).
  EXPECT_EQ(rep.kinds[static_cast<std::size_t>(EventKind::kOther)].count,
            static_cast<std::uint64_t>(kEvents));
}

TEST(ProfProfiler, ScopesAttributeSelfTimeToSites) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);
  loop.schedule_at(10, [&] {
    MANTIS_PROF_SCOPE(&prof, kPipelineExecute, "test.scope_outer");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(i);
  });
  loop.run();
  prof.set_enabled(false);

  const ProfileReport rep = prof.report();
  bool found = false;
  for (const auto& s : rep.sites) {
    if (s.name == "test.scope_outer") {
      found = true;
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.kind, EventKind::kPipelineExecute);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(
      rep.kinds[static_cast<std::size_t>(EventKind::kPipelineExecute)].count,
      1u);
  // Folded stacks nest the scope under the dispatch root.
  const std::string folded = rep.to_folded();
  EXPECT_NE(folded.find("event.dispatch;test.scope_outer"), std::string::npos)
      << folded;
}

TEST(ProfAllocHook, CountsExactAllocationsPerEvent) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);
  constexpr int kEvents = 10;
  constexpr int kAllocsPerEvent = 5;
  std::vector<std::unique_ptr<int>> keep;
  keep.reserve(kEvents * kAllocsPerEvent);  // no reallocation inside events
  for (int i = 0; i < kEvents; ++i) {
    loop.schedule_at(10 * (i + 1), [&] {
      for (int a = 0; a < kAllocsPerEvent; ++a) {
        keep.push_back(std::make_unique<int>(a));
      }
    });
  }
  loop.run();
  prof.set_enabled(false);

  const ProfileReport rep = prof.report();
  EXPECT_EQ(rep.events, static_cast<std::uint64_t>(kEvents));
  // The operator-new hook sees exactly the make_unique calls: the callbacks
  // perform no other heap activity (the keep vector was pre-reserved).
  EXPECT_EQ(rep.event_allocs,
            static_cast<std::uint64_t>(kEvents * kAllocsPerEvent));
  EXPECT_DOUBLE_EQ(rep.allocs_per_event(), 0.0 + kAllocsPerEvent);
  EXPECT_GT(total_allocs(), 0u);
  EXPECT_GT(total_frees(), 0u);
}

TEST(ProfAllocHook, SourceIsPluggable) {
  static std::uint64_t fake_count;
  fake_count = 1000;
  set_alloc_source([] { return fake_count; });
  EXPECT_EQ(alloc_count(), 1000u);
  fake_count = 1234;
  EXPECT_EQ(alloc_count(), 1234u);
  set_alloc_source(nullptr);  // restore the operator-new counter
  const std::uint64_t before = alloc_count();
  auto p = std::make_unique<int>(7);
  EXPECT_GE(alloc_count(), before + 1);
}

// The pinned per-packet-event allocation count: a fixed packet workload
// through the full switch pipeline must allocate identically run to run
// (the determinism contract extends to heap behavior at threads=1), and
// stay within a generous budget so allocation regressions on the hot path
// surface here before they show up as throughput loss.
struct PacketRunProfile {
  std::uint64_t events = 0;
  std::uint64_t event_allocs = 0;
};

PacketRunProfile profile_packet_run() {
  // Pool reuse makes the operator-new count depend on freelist warmth from
  // earlier tests in this process; start each run from a cold pool so the
  // count is a pure function of the workload.
  util::pool::purge_thread_cache();
  test::Stack stack(test::figure1_style_source());
  auto& prof = stack.loop.telemetry().prof();
  prof.set_enabled(true);
  constexpr int kPackets = 32;
  for (int i = 0; i < kPackets; ++i) {
    stack.loop.schedule_at(1000 * (i + 1), [&stack, i] {
      auto pkt = stack.sw->factory().make(100);
      stack.sw->factory().set(pkt, "hdr.foo", static_cast<std::uint32_t>(i));
      stack.sw->inject(std::move(pkt), 0);
    });
  }
  stack.loop.run();
  prof.set_enabled(false);
  const ProfileReport rep = prof.report();
  PacketRunProfile r;
  r.events = rep.events;
  r.event_allocs = rep.event_allocs;
  return r;
}

TEST(ProfAllocHook, PacketEventAllocationCountIsPinned) {
  const PacketRunProfile a = profile_packet_run();
  const PacketRunProfile b = profile_packet_run();
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.event_allocs, b.event_allocs) << "allocation count must be a "
                                               "deterministic function of the "
                                               "workload at threads=1";
  // Generous ceiling: a packet event through the interpreted pipeline stays
  // well under 4096 allocations. A breach means a per-packet path started
  // allocating per field/table visit — fix that, don't raise the bound.
  EXPECT_LT(a.event_allocs / a.events, 4096u);
  if (util::pool::pooling_active()) {
    // With the freelist pools live, the steady-state packet hot path is
    // allocation-free: the operator-new hook only sees what the pools could
    // not absorb (cold-pool warmup plus non-pooled odds and ends), which
    // amortizes to under 2 per event even on a 32-packet run. A breach
    // means a hot-path allocation bypassed the pools — route it through
    // util::pool or SmallFn, don't raise the bound.
    EXPECT_LT(static_cast<double>(a.event_allocs) /
                  static_cast<double>(a.events),
              2.0);
  }
}

TEST(ProfReport, JsonAndRendererRoundTrip) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    loop.schedule_at(10 * (i + 1), [&] {
      MANTIS_PROF_SCOPE(&prof, kTmDequeue, "test.json_site");
    });
  }
  loop.run();
  prof.sample(loop.now());
  prof.set_enabled(false);

  const std::string json = prof.report_json();
  EXPECT_NE(json.find("\"schema\": \"mantis-prof/1\""), std::string::npos);
  EXPECT_NE(json.find("\"tm_dequeue\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_site\""), std::string::npos);

  // The p4r_inspect renderer parses what the writer emits.
  const std::string text = prof_report_text(json);
  EXPECT_NE(text.find("hot-path profile"), std::string::npos);
  EXPECT_NE(text.find("test.json_site"), std::string::npos);
  EXPECT_NE(text.find("tm_dequeue"), std::string::npos);

  // Malformed input and non-prof reports fail loudly, not silently.
  EXPECT_THROW(prof_report_text("{\"schema\": \"mantis-prof/1\""), UserError);
  EXPECT_THROW(prof_report_text("{\"bench\": \"x\"}"), UserError);
}

TEST(ProfProfiler, ShardAccounting) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.ensure_shards(2);
  prof.set_enabled(true);
  prof.count_event(0, 100, 1);
  prof.count_event(0, 100, 0);
  prof.count_event(1, 50, 0);
  prof.note_round(/*max_events=*/2, /*total_events=*/3, /*idle=*/0,
                  /*stall_ns=*/10);
  prof.note_round(/*max_events=*/2, /*total_events=*/2, /*idle=*/1,
                  /*stall_ns=*/5);
  prof.set_enabled(false);

  const ProfileReport rep = prof.report();
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].events, 2u);
  EXPECT_EQ(rep.shards[1].events, 1u);
  EXPECT_EQ(rep.rounds.rounds, 2u);
  EXPECT_EQ(rep.rounds.barrier_stall_ns, 15u);
  EXPECT_EQ(rep.rounds.idle_shard_rounds, 1u);
  // mean max 2, mean per-shard (3+2)/2/2 = 1.25 -> imbalance 1.6
  EXPECT_NEAR(rep.rounds.imbalance(), 1.6, 1e-9);
}

#else  // !MANTIS_TELEMETRY_ENABLED

TEST(ProfProfiler, CompiledOutIsInert) {
  sim::EventLoop loop;
  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);
  loop.schedule_at(10, [] {});
  loop.run();
  const ProfileReport rep = prof.report();
  EXPECT_FALSE(rep.compiled);
  EXPECT_EQ(rep.events, 0u);
  EXPECT_EQ(alloc_count(), 0u);
}

#endif  // MANTIS_TELEMETRY_ENABLED

}  // namespace
}  // namespace mantis::telemetry::prof
