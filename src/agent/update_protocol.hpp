// The serializable update protocol (paper §5.1.2, Figs 7-8).
//
// Reaction-time table operations are buffered; after the reaction body runs,
// the agent executes:
//   PREPARE — install/modify/delete the *shadow* copies (vv = vv^1) of every
//             touched entry, batched; packets keep using the primary copies.
//   COMMIT  — one master-init-table update flips vv (done by the agent, which
//             also carries scalar malleable changes in the same update).
//   MIRROR  — replay the same operations on the now-shadow old-primary
//             copies, so a subsequent flip is instantly safe and the shadow
//             maintenance cost is amortized into every iteration.
// Outside the dialogue (prologue / management), IMMEDIATE mode installs both
// copies at once.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "agent/handles.hpp"
#include "driver/async/batch_builder.hpp"
#include "driver/async/completion.hpp"
#include "driver/driver.hpp"

namespace mantis::agent {

struct PendingOp {
  enum class Kind : std::uint8_t { kAdd, kMod, kDel };
  Kind kind = Kind::kAdd;
  std::string table;
  UserEntryId id = 0;
  p4::EntrySpec user_spec;   ///< kAdd/kMod: the (new) user-level spec
  std::string old_action;    ///< kMod: the action before the modification
};

class UpdateProtocol {
 public:
  UpdateProtocol(driver::Driver& drv, std::map<std::string, TableRuntime>& tables)
      : drv_(&drv), tables_(&tables) {}

  /// PREPARE: applies `ops` to the vv = `vv_next` copies in one batch.
  /// All target tables must be malleable.
  void prepare(const std::vector<PendingOp>& ops, int vv_next);

  /// MIRROR: replays `ops` onto the vv = `vv_old` copies in one batch and
  /// finalizes bookkeeping (deletes user entries that were removed).
  void mirror(const std::vector<PendingOp>& ops, int vv_old);

  // ---- async staging (the batched driver runtime, src/driver/async) ----
  //
  // stage_copy() emits one vv copy's ops into a BatchBuilder instead of
  // running a sync batch. Agent-side bookkeeping that later staging depends
  // on (handle-list clears for deletes and shape-changing mods) happens at
  // stage time; the handles new installs produce exist only when the batch
  // completes, so stage_copy returns absorb slots and absorb_copy() fills
  // them from the reaped completion — before anything stages against that
  // copy again.

  struct StagedCopy {
    int vv = 0;
    struct AddSlot {
      std::string table;
      UserEntryId id = 0;
      std::size_t count = 0;  ///< expanded concrete entries for this add
    };
    std::vector<AddSlot> adds;  ///< in batch add-op order
  };
  StagedCopy stage_copy(const std::vector<PendingOp>& ops, int vv,
                        driver::BatchBuilder& out);
  /// Records the handles of `staged`'s adds from the completed batch (which
  /// may also carry unrelated non-add ops, e.g. init-entry modifies).
  void absorb_copy(const StagedCopy& staged, const driver::BatchCompletion& c);
  /// The bookkeeping tail of mirror(): drops user entries whose delete has
  /// now reached (or been staged against) both copies.
  void erase_deleted(const std::vector<PendingOp>& ops);

  /// IMMEDIATE mode: installs both vv copies (malleable) or the single copy
  /// (plain table) right away. Returns the new user entry id.
  UserEntryId immediate_add(const std::string& table, const p4::EntrySpec& user);
  void immediate_mod(const std::string& table, UserEntryId id,
                     const std::string& action, std::vector<std::uint64_t> args);
  void immediate_del(const std::string& table, UserEntryId id);

 private:
  driver::Driver* drv_;
  std::map<std::string, TableRuntime>* tables_;

  TableRuntime& runtime(const std::string& table);

  /// Applies ops to one vv copy; `record_adds` stores returned handles into
  /// the user entries' handle lists for that copy.
  void apply_copy(const std::vector<PendingOp>& ops, int vv);
};

}  // namespace mantis::agent
