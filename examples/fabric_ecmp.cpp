// Fabric ECMP hash-polarization demo: NAT'd flows (identical src/dst
// address and srcPort, distinct dstPort) polarize onto one uplink of a
// 2-leaf/2-spine fabric under the initial (src, dst, srcPort) hash inputs.
// The per-switch hash-polarization reactions detect the imbalance from real
// per-egress counters and shift the malleable hash inputs to a
// configuration that includes dstPort, measurably rebalancing the link
// loads.
//
//   $ ./example_fabric_ecmp
//   $ ./example_fabric_ecmp --seed 7 --metrics m.json
//   $ ./example_fabric_ecmp --int 2   # INT on ~1/2 of the NAT'd flows
//
// Exits nonzero if the fabric never rebalances (smoke check).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "int/int_fabric.hpp"
#include "net/scenarios.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace mantis;

  std::string metrics_path, prof_path;
  net::EcmpScenarioConfig cfg;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[i + 1];
    if (std::strcmp(argv[i], "--prof") == 0) prof_path = argv[i + 1];
    if (std::strcmp(argv[i], "--flows") == 0) {
      cfg.flows = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      cfg.threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--int") == 0) {
      cfg.int_enable = true;
      cfg.int_sample_every =
          static_cast<std::uint32_t>(std::max(1, std::atoi(argv[i + 1])));
    }
  }

  net::EcmpFabricScenario scenario(cfg);
  // Wall-clock cost attribution only; results stay byte-identical.
  if (!prof_path.empty()) scenario.loop().telemetry().prof().set_enabled(true);
  auto res = scenario.run();

  std::printf("leaf-spine 2x2 ECMP, %d flows distinct only in dstPort\n\n",
              cfg.flows);
  std::printf("--- event log ---\n");
  for (const auto& e : res.events) std::printf("%s\n", e.c_str());

  std::printf("\nmax uplink share: %.3f before first shift, %.3f after last "
              "(%llu shifts, first at t=%lldns)\n",
              res.share_before, res.share_after,
              static_cast<unsigned long long>(res.shifts),
              static_cast<long long>(res.first_shift_at));
  std::printf("delivered %llu/%llu packets\n",
              static_cast<unsigned long long>(res.delivered),
              static_cast<unsigned long long>(res.sent));

  if (scenario.int_fabric() != nullptr) {
    std::printf("\n--- INT sink summary (1/%u of flows) ---\n%s",
                cfg.int_sample_every,
                scenario.int_fabric()->summary().c_str());
  }

  if (!metrics_path.empty()) {
    telemetry::ReportParams params;
    params.set("seed", static_cast<std::int64_t>(cfg.seed));
    params.set("flows", static_cast<std::int64_t>(cfg.flows));
    scenario.loop().telemetry().write_metrics_json(metrics_path, "fabric_ecmp",
                                                   params);
    std::printf("metrics: %s\n", metrics_path.c_str());
  }

  if (!prof_path.empty()) {
    scenario.loop().telemetry().prof().sample(scenario.loop().now());
    scenario.loop().telemetry().write_prof_json(prof_path);
    std::printf("profile: %s (render with p4r_inspect prof)\n",
                prof_path.c_str());
  }

  if (!res.rebalanced()) {
    std::printf("FAIL: fabric never rebalanced\n");
    return 1;
  }
  return 0;
}
