// Upstream example conformance: every P4R program shipped under
// examples/p4r/ (the upstream Mantis example set, transcribed into this
// repo's dialect) is pinned end to end — parse → sema → compile (with the
// RMT model enforced) → a short scripted packet/reaction scenario whose
// final state digest is checked byte-exactly against a hand-derived golden.
//
// Unlike the generated-program conformance tests (test_conformance.cpp),
// these run the *verbatim file contents* through the differential harness
// via GenSpec::raw, so any drift in the frontend grammar, the compiler
// transformation, or the runtime semantics of the shipped examples fails
// here with the exact state delta.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/diff.hpp"
#include "check/scenario.hpp"
#include "compile/compiler.hpp"
#include "p4r/sema.hpp"

namespace mantis::check {
namespace {

std::string load_example(const std::string& name) {
  const std::string path = std::string(MANTIS_EXAMPLES_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Parse + analyze + compile the example standalone, with the full RMT
// resource model enforced: every shipped example must place onto the
// default (Tofino-like) target, not just onto the stage-less simulator.
void expect_compiles(const std::string& source, const std::string& name) {
  compile::Options opts;
  opts.enforce_rmt = true;
  try {
    const p4r::P4RProgram analyzed = p4r::frontend(source);
    (void)compile::compile(analyzed, opts);
  } catch (const std::exception& e) {
    ADD_FAILURE() << name << " failed to compile: " << e.what();
  }
}

Scenario raw_scenario(const std::string& source, std::uint32_t epochs) {
  Scenario s;
  s.epochs = epochs;
  s.program.raw = source;
  return s;
}

void expect_conformance(const Scenario& s, const std::string& golden) {
  const DiffResult r = run_diff(s);
  ASSERT_EQ(r.outcome, Outcome::kAgreed)
      << outcome_name(r.outcome) << " " << r.skip_reason
      << (r.divergences.empty() ? "" : " / " + r.divergences[0].detail);
  EXPECT_EQ(r.digest, golden);
}

PacketSpec packet(std::uint32_t epoch,
                  std::vector<std::pair<std::string, std::uint64_t>> fields) {
  PacketSpec p;
  p.epoch = epoch;
  p.fields = std::move(fields);
  return p;
}

InitialEntry exact_entry(std::string table, std::string action,
                         std::vector<std::uint64_t> key,
                         std::vector<std::uint64_t> args = {}) {
  InitialEntry e;
  e.table = std::move(table);
  e.action = std::move(action);
  e.key = std::move(key);
  e.masks.assign(e.key.size(), ~std::uint64_t{0});
  e.args = std::move(args);
  return e;
}

// figure1.p4r: malleable value + malleable field + malleable table, with a
// register-window argmax reaction. The simulator never populates qdepths
// (no data-plane writer), so the argmax stays at port 0 and value_var is
// driven from its init (1) to 0 after the first dialogue.
TEST(UpstreamConformance, Figure1) {
  const std::string src = load_example("figure1.p4r");
  expect_compiles(src, "figure1.p4r");

  Scenario s = raw_scenario(src, 2);
  s.entries.push_back(exact_entry("table_var", "my_action", {0x42}));
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(packet(
        ep, {{"hdr.foo", 0x42}, {"hdr.baz", 5}, {"hdr.qux", 9}}));
  }
  // epoch 0: match on foo (alt 0) -> baz = 5 + value_var(1) = 6, foo := qux.
  // reaction: all qdepths are 0 -> max_port = 0 -> value_var = 0.
  // epoch 1: same match, baz = 5 + 0 = 5.
  expect_conformance(s,
                     "epochs=2\n"
                     "scalar field_var=0\n"
                     "scalar value_var=0\n"
                     "register qdepths = 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
                     "table out count=0\n"
                     "table table_var count=1\n"
                     "dut_iterations=2\n");
}

// figure4.p4r: a malleable value is the addend on every packet; the
// reaction recomputes it from the measured post-ingress hdr.foo.
TEST(UpstreamConformance, Figure4) {
  const std::string src = load_example("figure4.p4r");
  expect_compiles(src, "figure4.p4r");

  Scenario s = raw_scenario(src, 2);
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(packet(ep, {{"hdr.foo", 10}}));
  }
  // epoch 0: foo = 10 + 1 = 11 -> value_var = 11 + 1 = 12.
  // epoch 1: foo = 10 + 12 = 22 -> value_var = 23.
  expect_conformance(s,
                     "epochs=2\n"
                     "scalar value_var=23\n"
                     "register ri_foo = 22 0\n"
                     "table my_table count=0\n"
                     "table out count=0\n"
                     "log my_reaction 11\n"
                     "log my_reaction 22\n"
                     "dut_iterations=2\n");
}

// figure5.p4r: the malleable field is a write *destination*; flipping the
// selector re-points the assignment from hdr.foo to hdr.bar.
TEST(UpstreamConformance, Figure5) {
  const std::string src = load_example("figure5.p4r");
  expect_compiles(src, "figure5.p4r");

  Scenario s = raw_scenario(src, 2);
  s.entries.push_back(exact_entry("my_table", "my_action", {51}));
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(
        packet(ep, {{"hdr.foo", 1}, {"hdr.bar", 2}, {"hdr.baz", 51}}));
  }
  // epoch 0 (alt 0): foo := baz = 51, bar untouched -> logs 51, 2.
  // epoch 1 (alt 1): bar := 51, foo untouched       -> logs 1, 51.
  expect_conformance(s,
                     "epochs=2\n"
                     "scalar write_var=1\n"
                     "table my_table count=1\n"
                     "table out count=0\n"
                     "log my_reaction 51\n"
                     "log my_reaction 2\n"
                     "log my_reaction 1\n"
                     "log my_reaction 51\n"
                     "dut_iterations=2\n");
}

// figure6.p4r: the malleable field is a read source in both the match key
// of my_table and the addition inside my_action; one selector flip
// re-points both references.
TEST(UpstreamConformance, Figure6) {
  const std::string src = load_example("figure6.p4r");
  expect_compiles(src, "figure6.p4r");

  Scenario s = raw_scenario(src, 2);
  s.entries.push_back(exact_entry("my_table", "my_action", {5}));
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(
        packet(ep, {{"hdr.foo", 5}, {"hdr.bar", 9}, {"hdr.baz", 100}}));
  }
  // epoch 0 (alt 0 = foo): key 5 matches -> baz = 100 + 5 = 105.
  // epoch 1 (alt 1 = bar): bar = 9 misses the entry -> baz stays 100.
  expect_conformance(s,
                     "epochs=2\n"
                     "scalar read_var=1\n"
                     "table my_table count=1\n"
                     "table out count=0\n"
                     "log my_reaction 105\n"
                     "log my_reaction 100\n"
                     "dut_iterations=2\n");
}

// mbl_table.p4r: the reaction adds/removes a marker entry in the malleable
// table based on a packet tally the data plane keeps in ri_tally[0].
TEST(UpstreamConformance, MblTable) {
  const std::string src = load_example("mbl_table.p4r");
  expect_compiles(src, "mbl_table.p4r");

  Scenario s = raw_scenario(src, 3);
  s.packets.push_back(packet(0, {{"hdr.foo", 7}}));
  s.packets.push_back(packet(0, {{"hdr.foo", 7}}));
  s.packets.push_back(packet(1, {{"hdr.foo", 7}}));
  s.packets.push_back(packet(1, {{"hdr.foo", 7}}));
  s.packets.push_back(packet(2, {{"hdr.foo", 7}}));
  // epoch 0: tally 2 (not > 2)  -> no entry,  logs 0, 2.
  // epoch 1: tally 4 (> 2)      -> addEntry,  logs 1, 4.
  // epoch 2: tally 5, entry hits -> unchanged, logs 1, 5.
  expect_conformance(s,
                     "epochs=3\n"
                     "register ri_tally = 5 0\n"
                     "table ti_out count=0\n"
                     "table ti_tally count=0\n"
                     "table ti_var_table count=1\n"
                     "log my_reaction 0\n"
                     "log my_reaction 2\n"
                     "log my_reaction 1\n"
                     "log my_reaction 4\n"
                     "log my_reaction 1\n"
                     "log my_reaction 5\n"
                     "dut_iterations=3\n");
}

// field_arg.p4r: ing/egr header fields read as C variables; measurements
// are taken after the respective pipeline ran (last writer wins).
TEST(UpstreamConformance, FieldArg) {
  const std::string src = load_example("field_arg.p4r");
  expect_compiles(src, "field_arg.p4r");

  Scenario s = raw_scenario(src, 2);
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(
        packet(ep, {{"hdr.foo", 16}, {"hdr.bar", 3}, {"hdr.baz", 9}}));
  }
  // epoch 0: bar = 3 + 2 = 5, logs 16, 5, 9 -> scale = (16+5+9) & 7 = 6.
  // epoch 1: bar = 3 + 6 = 9, logs 16, 9, 9 -> scale = (16+9+9) & 7 = 2.
  expect_conformance(s,
                     "epochs=2\n"
                     "scalar scale_var=2\n"
                     "table my_table count=0\n"
                     "table out count=0\n"
                     "log my_reaction 16\n"
                     "log my_reaction 5\n"
                     "log my_reaction 9\n"
                     "log my_reaction 16\n"
                     "log my_reaction 9\n"
                     "log my_reaction 9\n"
                     "dut_iterations=2\n");
}

// failover_tstamp.p4r: C statics remember the previous dialogue's counter
// and probe timestamp; a stalled counter flips traffic to the backup port.
TEST(UpstreamConformance, FailoverTstamp) {
  const std::string src = load_example("failover_tstamp.p4r");
  expect_compiles(src, "failover_tstamp.p4r");

  Scenario s = raw_scenario(src, 3);
  s.packets.push_back(packet(0, {{"probe.sport", 0}, {"probe.tstamp", 100}}));
  s.packets.push_back(packet(1, {{"probe.sport", 0}, {"probe.tstamp", 200}}));
  // epoch 2: the primary (sport 0) goes silent; only sport 3 probes arrive.
  s.packets.push_back(packet(2, {{"probe.sport", 3}, {"probe.tstamp", 50}}));
  // epoch 0/1: counter[0] advances -> port 1. epoch 2: stalled -> port 2.
  expect_conformance(s,
                     "epochs=3\n"
                     "scalar out_port_var=2\n"
                     "register ri_ingress_tstamp = 200 0 0 50\n"
                     "register ri_pkt_counter = 2 0 0 1\n"
                     "table ti_out count=0\n"
                     "table ti_record count=0\n"
                     "log my_reaction 1\n"
                     "log my_reaction 100\n"
                     "log my_reaction 2\n"
                     "log my_reaction 200\n"
                     "log my_reaction 2\n"
                     "log my_reaction 200\n"
                     "dut_iterations=3\n");
}

// dos.p4r: per-bucket SYN tallies; the reaction blocklists any bucket past
// the threshold with a _drop entry. Counting sits before the blocklist, so
// tallies keep growing even for blocked sources.
TEST(UpstreamConformance, Dos) {
  const std::string src = load_example("dos.p4r");
  expect_compiles(src, "dos.p4r");

  Scenario s = raw_scenario(src, 2);
  for (int i = 0; i < 5; ++i) {
    s.packets.push_back(packet(0, {{"pkt.src", 2}, {"pkt.syn", 1}}));
  }
  s.packets.push_back(packet(0, {{"pkt.src", 3}, {"pkt.syn", 1}}));
  for (int i = 0; i < 2; ++i) {
    s.packets.push_back(packet(1, {{"pkt.src", 2}, {"pkt.syn", 1}}));
  }
  s.packets.push_back(packet(1, {{"pkt.src", 3}, {"pkt.syn", 1}}));
  // epoch 0: count[2] = 5 > 3 -> block source 2 (entryCount 1).
  // epoch 1: source 2 dropped but still counted (7); source 3 at 2 stays.
  expect_conformance(s,
                     "epochs=2\n"
                     "register ri_syn_count = 0 0 7 2 0 0 0 0\n"
                     "table ti_block count=1\n"
                     "table ti_count count=0\n"
                     "table ti_out count=0\n"
                     "log my_reaction 1\n"
                     "log my_reaction 1\n"
                     "dut_iterations=2\n");
}

// table_add_del_mod.p4r: add -> mod -> del across four dialogues, with the
// egress-measured hdr.val pinning which action data each epoch's packet saw.
TEST(UpstreamConformance, TableAddDelMod) {
  const std::string src = load_example("table_add_del_mod.p4r");
  expect_compiles(src, "table_add_del_mod.p4r");

  Scenario s = raw_scenario(src, 4);
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    s.packets.push_back(packet(ep, {{"hdr.key", 5}, {"hdr.val", 7}}));
  }
  // epoch 0: no entry yet        -> val 7;   then addEntry(111) (count 1).
  // epoch 1: entry ai_set(111)   -> val 111; then modEntry(222).
  // epoch 2: entry ai_set(222)   -> val 222; then delEntry (count 0).
  // epoch 3: entry gone          -> val 7.
  expect_conformance(s,
                     "epochs=4\n"
                     "table ti_acl count=0\n"
                     "table ti_out count=0\n"
                     "log my_reaction 1\n"
                     "log my_reaction 7\n"
                     "log my_reaction 1\n"
                     "log my_reaction 111\n"
                     "log my_reaction 0\n"
                     "log my_reaction 222\n"
                     "log my_reaction 0\n"
                     "log my_reaction 7\n"
                     "dut_iterations=4\n");
}

}  // namespace
}  // namespace mantis::check
