// Tests for the differential fuzzing harness itself (src/check): generator
// determinism and validity, repro round-trips, differential agreement on
// generated scenarios, the minimizer's contract, and deterministic replay of
// the pinned corpus under tests/corpus/.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/diff.hpp"
#include "check/gen.hpp"
#include "check/minimize.hpp"
#include "check/ref_model.hpp"
#include "check/resource_fuzz.hpp"
#include "compile/compiler.hpp"
#include "p4r/sema.hpp"

namespace mantis::check {
namespace {

#ifndef MANTIS_TEST_DATA_DIR
#define MANTIS_TEST_DATA_DIR "."
#endif

/// A small hand-written scenario both paths fully support: one malleable
/// value driven by an ingress field param, one malleable table.
Scenario hand_scenario() {
  Scenario s;
  s.epochs = 3;
  s.program.decls = {
      "header_type h_t { fields { f0 : 16; f1 : 16; } }\nheader h_t hdr;",
      "malleable value mv0 { width : 16; init : 3; }",
      "register r0 { width : 32; instance_count : 4; }",
  };
  s.program.actions = {
      "action seta() {\n"
      "  modify_field(hdr.f1, ${mv0});\n"
      "  register_write(r0, 1, hdr.f0);\n}",
      "action fwd(port) {\n"
      "  modify_field(standard_metadata.egress_spec, port);\n}",
  };
  s.program.tables = {
      "malleable table mtbl {\n  reads { hdr.f0 : exact; }\n"
      "  actions { seta; }\n  size : 8;\n}",
      "table forward {\n  actions { fwd; }\n  default_action : fwd(2);\n"
      "  size : 1;\n}",
  };
  s.program.ingress = {"  apply(mtbl);", "  apply(forward);"};
  s.program.reaction_sig = "reaction rx(ing hdr.f0)";
  s.program.reaction_stmts = {
      "  ${mv0} = (hdr_f0 + 1) & 0xffff;",
      "  log(hdr_f0);",
  };
  InitialEntry e;
  e.table = "mtbl";
  e.action = "seta";
  e.key = {5};
  e.masks = {~std::uint64_t{0}};
  s.entries.push_back(e);
  for (std::uint32_t ep = 0; ep < s.epochs; ++ep) {
    PacketSpec p;
    p.epoch = ep;
    p.port = 0;
    p.fields = {{"hdr.f0", 5}, {"hdr.f1", 0}};
    s.packets.push_back(p);
  }
  return s;
}

TEST(CheckGen, DeterministicInSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 999ull}) {
    EXPECT_EQ(generate_scenario(seed), generate_scenario(seed));
  }
  EXPECT_NE(generate_scenario(1).program.render(),
            generate_scenario(2).program.render());
}

TEST(CheckGen, IterationSeedsDecorrelate) {
  EXPECT_NE(iteration_seed(1, 0), iteration_seed(1, 1));
  EXPECT_NE(iteration_seed(1, 0), iteration_seed(2, 0));
}

TEST(CheckGen, GeneratedScenariosCompileOnBothPaths) {
  for (std::uint64_t it = 0; it < 40; ++it) {
    const std::uint64_t seed = iteration_seed(7, it);
    const Scenario s = generate_scenario(seed);
    ASSERT_NO_THROW({
      auto fp = p4r::frontend(s.program.render());
      compile::compile(fp);
      RefModel ref(std::move(fp));
    }) << "seed " << seed;
  }
}

TEST(CheckGen, SerializeParseRoundtrip) {
  for (std::uint64_t it = 0; it < 10; ++it) {
    const Scenario s = generate_scenario(iteration_seed(3, it));
    EXPECT_EQ(parse_scenario(serialize_scenario(s)), s);
  }
  const Scenario h = hand_scenario();
  EXPECT_EQ(parse_scenario(serialize_scenario(h)), h);
}

TEST(CheckDiff, GeneratedScenariosAgree) {
  for (std::uint64_t it = 0; it < 15; ++it) {
    const std::uint64_t seed = iteration_seed(11, it);
    const DiffResult r = run_diff(generate_scenario(seed));
    EXPECT_EQ(r.outcome, Outcome::kAgreed)
        << "seed " << seed << ": " << outcome_name(r.outcome) << " "
        << r.skip_reason
        << (r.divergences.empty() ? "" : " / " + r.divergences[0].detail);
  }
}

TEST(CheckDiff, HandScenarioAgreesWithExactDigest) {
  const DiffResult r = run_diff(hand_scenario());
  ASSERT_EQ(r.outcome, Outcome::kAgreed) << r.skip_reason;
  EXPECT_EQ(r.epochs_run, 3u);
  // The reaction sets mv0 = f0 + 1 = 6 every epoch; the packets all hit the
  // mtbl entry, r0[1] ends at 5, and the log carries one probe per epoch.
  EXPECT_NE(r.digest.find("scalar mv0=6"), std::string::npos) << r.digest;
  EXPECT_NE(r.digest.find("register r0 = 0 5 0 0"), std::string::npos)
      << r.digest;
  EXPECT_NE(r.digest.find("log rx 5"), std::string::npos) << r.digest;
}

TEST(CheckDiff, ReplayIsDeterministic) {
  const Scenario s = generate_scenario(iteration_seed(13, 4));
  const DiffResult a = run_diff(s);
  const DiffResult b = run_diff(s);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_FALSE(a.digest.empty());
}

TEST(CheckDiff, FlagsTimingDivergence) {
  // now_us() is deliberately outside the comparable domain: the reference
  // model pins it to 0 while the compiled stack reports virtual time. A
  // reaction that logs it MUST be reported as a log divergence — this is the
  // harness's own end-to-end detection test.
  Scenario s = hand_scenario();
  s.program.reaction_stmts = {"  log(now_us());"};
  const DiffResult r = run_diff(s);
  ASSERT_EQ(r.outcome, Outcome::kDiverged) << r.skip_reason;
  ASSERT_FALSE(r.divergences.empty());
  EXPECT_EQ(r.divergences[0].surface, "log");
}

TEST(CheckDiff, SkipsRecirculation) {
  Scenario s = hand_scenario();
  s.program.tables[1] =
      "table forward {\n  actions { fwd; }\n  default_action : fwd(63);\n"
      "  size : 1;\n}";
  const DiffResult r = run_diff(s);
  EXPECT_EQ(r.outcome, Outcome::kSkipped);
  EXPECT_NE(r.skip_reason.find("recirculation"), std::string::npos)
      << r.skip_reason;
}

TEST(CheckDiff, AgreedErrorWhenBothRejectAnEpoch) {
  // Unguarded delEntry of a missing key: both interpreters must throw
  // ".delEntry: no such entry" during the first dialogue epoch.
  Scenario s = hand_scenario();
  s.program.reaction_stmts = {"  mtbl.delEntry(1234);"};
  const DiffResult r = run_diff(s);
  EXPECT_EQ(r.outcome, Outcome::kAgreedError) << r.skip_reason;
  EXPECT_NE(r.skip_reason.find("delEntry"), std::string::npos)
      << r.skip_reason;
}

TEST(CheckMinimize, PreservesDivergenceAndShrinks) {
  Scenario s = hand_scenario();
  s.program.reaction_stmts = {
      "  log(hdr_f0);",
      "  log(now_us());",
      "  ${mv0} = (hdr_f0 + 1) & 0xffff;",
  };
  MinimizeStats st;
  const Scenario m = minimize_scenario(s, {}, &st);
  EXPECT_TRUE(run_diff(m).diverged());
  EXPECT_GT(st.accepted, 0u);
  // The two statements that agree on both paths must have been removed.
  ASSERT_EQ(m.program.reaction_stmts.size(), 1u);
  EXPECT_NE(m.program.reaction_stmts[0].find("now_us"), std::string::npos);
  // Epoch truncation: one epoch suffices to show a log divergence.
  EXPECT_EQ(m.epochs, 1u);
}

TEST(CheckMinimize, ReturnsNonDivergentInputUnchanged) {
  const Scenario s = hand_scenario();
  MinimizeStats st;
  EXPECT_EQ(minimize_scenario(s, {}, &st), s);
  EXPECT_EQ(st.accepted, 0u);
}

TEST(CheckCorpus, ReprosReplayDeterministically) {
  const std::filesystem::path dir =
      std::filesystem::path(MANTIS_TEST_DATA_DIR) / "corpus";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    // Resource-model repros bundle a model line with the scenario and are
    // replayed by CheckResourceCorpus below.
    if (entry.path().filename().string().rfind("resource_", 0) == 0) continue;
    ++seen;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    const Scenario s = parse_scenario(buf.str());
    const DiffResult a = run_diff(s);
    const DiffResult b = run_diff(s);
    EXPECT_EQ(a.outcome, b.outcome) << entry.path();
    EXPECT_EQ(a.digest, b.digest) << entry.path();
    const std::string name = entry.path().filename().string();
    if (name.rfind("agreed_", 0) == 0) {
      EXPECT_EQ(a.outcome, Outcome::kAgreed)
          << entry.path() << ": " << a.skip_reason
          << (a.divergences.empty() ? "" : " / " + a.divergences[0].detail);
    } else if (name.rfind("diverge_", 0) == 0) {
      // A fixed bug's repro must keep replaying as agreed after the fix is
      // merged; a still-open divergence stays prefixed diverge_.
      EXPECT_EQ(a.outcome, Outcome::kDiverged) << entry.path();
    }
  }
  EXPECT_GE(seen, 3u) << "corpus should hold pinned regression repros";
}

// Minimized repros from `p4r_fuzz --resources`: each bundles a randomized
// RmtResourceModel with a scenario and pins its classification in the
// filename (resource_fit_* / resource_rejected_<resource>_*). Replaying
// must reproduce that exact classification — and never a violation.
TEST(CheckResourceCorpus, ReprosReplayWithPinnedClassification) {
  const std::filesystem::path dir =
      std::filesystem::path(MANTIS_TEST_DATA_DIR) / "corpus";
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() != ".repro") continue;
    if (name.rfind("resource_", 0) != 0) continue;
    ++seen;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    const ResourceRepro repro = parse_resource_repro(buf.str());
    const auto a = run_resource_iteration(repro.scenario, repro.model);
    const auto b = run_resource_iteration(repro.scenario, repro.model);
    EXPECT_EQ(a.kind, b.kind) << entry.path();
    EXPECT_EQ(a.detail, b.detail) << entry.path();
    EXPECT_NE(a.kind, ResourceFuzzResult::Kind::kViolation)
        << entry.path() << ": " << a.detail;

    const auto seed_pos = name.find("_seed_");
    ASSERT_NE(seed_pos, std::string::npos) << entry.path();
    const std::string label = name.substr(9, seed_pos - 9);
    if (label == "fit") {
      EXPECT_EQ(a.kind, ResourceFuzzResult::Kind::kFit)
          << entry.path() << ": " << a.detail;
    } else if (label.rfind("rejected_", 0) == 0) {
      ASSERT_EQ(a.kind, ResourceFuzzResult::Kind::kRejected)
          << entry.path() << ": " << a.detail;
      EXPECT_EQ(p4::rmt_resource_name(a.resource), label.substr(9))
          << entry.path();
    } else {
      ADD_FAILURE() << entry.path() << ": unrecognized classification label";
    }
  }
  EXPECT_GE(seen, 5u) << "corpus should hold pinned resource-fuzz repros";
}

}  // namespace
}  // namespace mantis::check
