// Latency cost model for control-plane <-> ASIC interactions.
//
// This stands in for the Barefoot driver + PCIe measurements of paper Fig 10.
// Parameters are chosen so the *shapes* the paper reports hold:
//  * reading field arguments costs one PCIe transaction per packed 32-bit
//    register -> linear in packed-register count (Fig 10a, "field args"),
//  * a contiguous register-array range read is one DMA; each extra byte adds
//    10s of ns (Fig 10a, "register args"),
//  * scalar malleable updates are a single memoized table modification ->
//    flat in the number of malleables (Fig 10b),
//  * malleable-table updates are linear in entries touched (Fig 10b),
//  * memoization (prologue-computed driver metadata) makes repeated
//    operations several times cheaper than cold ones (§6, §7).
// Absolute numbers land end-to-end reactions in the 10s-of-µs band the paper
// reports. EXPERIMENTS.md lists the exact values used.
#pragma once

#include "util/time.hpp"

namespace mantis::driver {

struct CostModel {
  Duration pcie_rtt = 900;             ///< fixed round-trip per transaction
  Duration reg_read_base = 800;        ///< driver bookkeeping per read op
  Duration reg_read_per_word = 250;    ///< each packed 32-bit register read
  Duration reg_range_per_byte = 16;    ///< contiguous DMA range, per byte
  Duration reg_write = 1200;

  Duration table_mod_memoized = 1400;
  Duration table_mod_cold = 7000;
  Duration table_add_memoized = 2600;
  Duration table_add_cold = 11000;
  Duration table_del_memoized = 1400;
  Duration table_del_cold = 7000;
  Duration table_set_default = 1600;

  Duration batch_overhead = 300;       ///< per submitted batch

  // ---- batched-async runtime calibration (src/driver/async) ----
  // RBFRT-style batched updates split each op into driver-thread descriptor
  // preparation and wire/DMA occupancy, both heavily discounted against the
  // solo cost: the driver prepares descriptors in bulk (one metadata walk
  // per batch, not per op) and the DMA engine streams ops back-to-back
  // behind one shared round trip. Factors are fractions of the op's solo
  // cost net of `pcie_rtt` (which the whole batch pays once).
  double batch_prep_factor = 0.22;     ///< per-op CPU prep inside a batch
  double batch_dma_factor = 0.18;      ///< per-op DMA occupancy inside a batch

  /// Fraction of an operation's latency that holds the shared driver/ASIC
  /// path exclusively (lock + MMIO kick); the rest is thread-local work and
  /// in-flight DMA that concurrent clients do not queue behind. This is what
  /// keeps Mantis's busy loop from starving legacy control planes (Fig 12).
  double exclusive_fraction = 0.06;

  Duration critical(Duration cost) const {
    return static_cast<Duration>(static_cast<double>(cost) * exclusive_fraction);
  }

  // ---- derived helpers ----
  Duration packed_words_read(std::size_t words) const {
    return pcie_rtt + reg_read_base +
           reg_read_per_word * static_cast<Duration>(words);
  }
  Duration range_read(std::size_t bytes) const {
    return pcie_rtt + reg_read_base +
           reg_range_per_byte * static_cast<Duration>(bytes);
  }
  Duration register_write() const { return pcie_rtt + reg_write; }
  Duration table_mod(bool memoized) const {
    return pcie_rtt + (memoized ? table_mod_memoized : table_mod_cold);
  }
  Duration table_add(bool memoized) const {
    return pcie_rtt + (memoized ? table_add_memoized : table_add_cold);
  }
  Duration table_del(bool memoized) const {
    return pcie_rtt + (memoized ? table_del_memoized : table_del_cold);
  }
  Duration set_default() const { return pcie_rtt + table_set_default; }

  // ---- batched-async helpers ----
  /// Driver-thread preparation charged per op inside an async batch.
  /// `solo` is the op's synchronous cost (including its round trip).
  Duration batch_prep(Duration solo) const {
    return static_cast<Duration>(static_cast<double>(solo - pcie_rtt) *
                                 batch_prep_factor);
  }
  /// Wire/DMA occupancy charged per op inside an async batch.
  Duration batch_dma(Duration solo) const {
    return static_cast<Duration>(static_cast<double>(solo - pcie_rtt) *
                                 batch_dma_factor);
  }
};

}  // namespace mantis::driver
