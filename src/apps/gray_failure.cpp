#include "apps/gray_failure.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace mantis::apps {

std::string gray_failure_p4r_source() {
  return R"P4R(
// Use case #2: gray-failure detection and route recomputation (paper 8.3.2).
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type gf_meta_t {
  fields { c : 32; }
}
metadata gf_meta_t gf_meta;

// Per-ingress-port heartbeat counter (polled by the reaction).
register hb_count_r { width : 32; instance_count : 32; }

action count_hb() {
  register_read(gf_meta.c, hb_count_r, standard_metadata.ingress_port);
  add_to_field(gf_meta.c, 1);
  register_write(hb_count_r, standard_metadata.ingress_port, gf_meta.c);
}
table hb_tally {
  reads { ipv4.protocol : exact; }
  actions { count_hb; no_op; }
  default_action : no_op;
  size : 4;
}

action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
malleable table route {
  reads { ipv4.dstAddr : exact; }
  actions { set_egress; _drop; }
  default_action : _drop;
  size : 256;
}

control ingress {
  apply(hb_tally);
  apply(route);
}
control egress { }

// Interpreted detector (the native version adds full Dijkstra rerouting):
// flags ports whose heartbeat delta falls below eta * T_d / T_s twice in a
// row. eta = 1/2, T_s = 1us.
reaction gf_react(reg hb_count_r[0:7], ing standard_metadata.ingress_global_timestamp) {
  static uint64_t last_counts[8];
  static uint64_t last_ts = 0;
  static int below[8];
  static uint8_t down[8];

  uint64_t ts = standard_metadata_ingress_global_timestamp;
  uint64_t td = ts - last_ts;
  last_ts = ts;
  if (td == 0) return;

  for (int p = 0; p < 8; ++p) {
    uint64_t delta = hb_count_r[p] - last_counts[p];
    last_counts[p] = hb_count_r[p];
    uint64_t threshold = td / 2;  // eta=1/2, T_s=1us, td in us
    if (delta < threshold) {
      below[p] = below[p] + 1;
    } else {
      below[p] = 0;
    }
    if (below[p] >= 2 && down[p] == 0) {
      down[p] = 1;
      log(p);
    }
  }
}
)P4R";
}

// ---------------------------------------------------------------------------
// Topology / Dijkstra
// ---------------------------------------------------------------------------

std::map<std::uint32_t, int> Topology::compute_routes(
    const std::vector<bool>& port_down) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(num_nodes), kInf);
  std::vector<int> first_hop(static_cast<std::size_t>(num_nodes), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[0] = 0;
  pq.emplace(0.0, 0);

  auto relax = [&](int from, int to, int via_port_of_zero, double cost) {
    if (dist[static_cast<std::size_t>(from)] + cost <
        dist[static_cast<std::size_t>(to)]) {
      dist[static_cast<std::size_t>(to)] =
          dist[static_cast<std::size_t>(from)] + cost;
      first_hop[static_cast<std::size_t>(to)] =
          from == 0 ? via_port_of_zero : first_hop[static_cast<std::size_t>(from)];
      pq.emplace(dist[static_cast<std::size_t>(to)], to);
    }
  };

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& link : links) {
      // A down port of node 0 disables the link in both directions.
      const bool usable =
          !((link.a == 0 &&
             static_cast<std::size_t>(link.port_a) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_a)]) ||
            (link.b == 0 &&
             static_cast<std::size_t>(link.port_b) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_b)]));
      if (!usable) continue;
      if (link.a == u) relax(u, link.b, link.port_a, link.cost);
      if (link.b == u) relax(u, link.a, link.port_b, link.cost);
    }
  }

  std::map<std::uint32_t, int> routes;
  for (const auto& [addr, node] : dst_node) {
    routes[addr] = dist[static_cast<std::size_t>(node)] == kInf
                       ? -1
                       : first_hop[static_cast<std::size_t>(node)];
  }
  return routes;
}

Topology Topology::fat_tree_slice(int fanout, int num_dsts) {
  expects(fanout >= 2, "fat_tree_slice: need >= 2 uplinks");
  Topology topo;
  // node 0: this switch; nodes 1..fanout: aggregation neighbours;
  // nodes fanout+1..fanout+num_dsts: destinations, each dual-homed to two
  // consecutive aggregation nodes.
  topo.num_nodes = 1 + fanout + num_dsts;
  for (int a = 0; a < fanout; ++a) {
    topo.links.push_back(Link{0, 1 + a, a, 0, 1.0});
  }
  for (int d = 0; d < num_dsts; ++d) {
    const int node = 1 + fanout + d;
    const int agg1 = 1 + (d % fanout);
    const int agg2 = 1 + ((d + 1) % fanout);
    topo.links.push_back(Link{agg1, node, 1 + d, 0, 1.0});
    topo.links.push_back(Link{agg2, node, 1 + d, 0, 1.1});
    topo.dst_node.emplace(0xc0a80000u + static_cast<std::uint32_t>(d), node);
  }
  return topo;
}

// ---------------------------------------------------------------------------
// Reaction
// ---------------------------------------------------------------------------

void GrayFailureState::install_initial_routes(agent::ReactionContext& ctx) {
  last_counts.assign(static_cast<std::size_t>(cfg.num_ports), 0);
  below_streak.assign(static_cast<std::size_t>(cfg.num_ports), 0);
  port_down.assign(static_cast<std::size_t>(cfg.num_ports), false);

  const auto routes = topo.compute_routes(port_down);
  for (const auto& [addr, port] : routes) {
    expects(port >= 0, "install_initial_routes: unreachable destination");
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
    spec.action = "set_egress";
    spec.action_args = {static_cast<std::uint64_t>(port)};
    route_ids[addr] = ctx.add_entry("route", spec);
    current_port[addr] = port;
  }

  // Heartbeats are protocol 253.
  p4::EntrySpec hb;
  hb.key.push_back(p4::MatchValue{253, ~std::uint64_t{0}});
  hb.action = "count_hb";
  ctx.add_entry("hb_tally", hb);
}

agent::Agent::NativeFn make_gray_failure_reaction(
    std::shared_ptr<GrayFailureState> state) {
  expects(state != nullptr, "make_gray_failure_reaction: null state");
  return [state](agent::ReactionContext& ctx) {
    auto& st = *state;
    const auto ts_us = static_cast<std::uint64_t>(
        ctx.arg("standard_metadata_ingress_global_timestamp"));
    const std::uint64_t td_us = ts_us - st.last_ts_us;
    st.last_ts_us = ts_us;
    if (td_us == 0) return;

    const double ts_per_us =
        1.0 / (static_cast<double>(st.cfg.ts) / kMicrosecond);
    const auto threshold = static_cast<std::uint64_t>(
        st.cfg.eta * static_cast<double>(td_us) * ts_per_us);

    bool newly_down = false;
    for (int p = 0; p < st.cfg.num_ports; ++p) {
      const auto count = static_cast<std::uint64_t>(
          ctx.arg("hb_count_r", static_cast<std::uint32_t>(p)));
      const std::uint64_t delta = count - st.last_counts[static_cast<std::size_t>(p)];
      st.last_counts[static_cast<std::size_t>(p)] = count;
      auto& streak = st.below_streak[static_cast<std::size_t>(p)];
      streak = delta < threshold ? streak + 1 : 0;
      if (streak >= st.cfg.consecutive_required &&
          !st.port_down[static_cast<std::size_t>(p)]) {
        st.port_down[static_cast<std::size_t>(p)] = true;
        newly_down = true;
        if (st.on_detect) st.on_detect(p, ctx.now());
      }
    }
    if (!newly_down) return;

    // Recompute shortest paths and rewrite entries whose first hop changed.
    const auto routes = st.topo.compute_routes(st.port_down);
    for (const auto& [addr, port] : routes) {
      auto cur = st.current_port.find(addr);
      if (cur == st.current_port.end() || cur->second == port) continue;
      if (port < 0) {
        ctx.mod_entry("route", st.route_ids.at(addr), "_drop", {});
      } else {
        ctx.mod_entry("route", st.route_ids.at(addr), "set_egress",
                      {static_cast<std::uint64_t>(port)});
      }
      cur->second = port;
    }
    if (st.on_routes_installed) st.on_routes_installed(ctx.now());
  };
}

}  // namespace mantis::apps
