#include "apps/hash_polarization.hpp"

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mantis::apps {

std::string hash_polarization_p4r_source() {
  return R"P4R(
// Use case #3: ECMP hash polarization mitigation (paper 8.3.3).
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type l4_t {
  fields {
    srcPort : 16;
    dstPort : 16;
  }
}
header l4_t l4;

header_type hp_meta_t {
  fields { c : 32; }
}
metadata hp_meta_t hp_meta;

// Malleable hash inputs: each can be shifted among same-width header fields.
malleable field h_src {
  width : 32;
  init : ipv4.srcAddr;
  alts { ipv4.srcAddr, ipv4.dstAddr }
}
malleable field h_dst {
  width : 32;
  init : ipv4.dstAddr;
  alts { ipv4.dstAddr, ipv4.srcAddr }
}
malleable field h_l4 {
  width : 16;
  init : l4.srcPort;
  alts { l4.srcPort, l4.dstPort }
}

field_list ecmp_fl {
  ${h_src};
  ${h_dst};
  ${h_l4};
  ipv4.protocol;
}
field_list_calculation ecmp_hash {
  input { ecmp_fl; }
  algorithm : crc32;
  output_width : 16;
}

action ecmp_route() {
  modify_field_with_hash_based_offset(standard_metadata.egress_spec, 0, ecmp_hash, 8);
}
table ecmp {
  actions { ecmp_route; }
  default_action : ecmp_route;
  size : 1;
}

// Per-egress-port packet counters, collected in the egress pipeline.
register egr_pkts_r { width : 32; instance_count : 8; }

action count_egr() {
  register_read(hp_meta.c, egr_pkts_r, standard_metadata.egress_port);
  add_to_field(hp_meta.c, 1);
  register_write(egr_pkts_r, standard_metadata.egress_port, hp_meta.c);
}
table egr_tally {
  actions { count_egr; }
  default_action : count_egr;
  size : 1;
}

control ingress {
  apply(ecmp);
}
control egress {
  apply(egr_tally);
}

// Interpreted MAD detector; the native reaction also cycles configurations.
reaction hp_react(reg egr_pkts_r[0:7]) {
  static uint64_t last[8];
  uint64_t loads[8];
  uint64_t total = 0;
  for (int p = 0; p < 8; ++p) {
    loads[p] = egr_pkts_r[p] - last[p];
    last[p] = egr_pkts_r[p];
    total = total + loads[p];
  }
  if (total == 0) return;

  // median via insertion sort of a copy
  uint64_t sorted[8];
  for (int i = 0; i < 8; ++i) sorted[i] = loads[i];
  for (int i = 1; i < 8; ++i) {
    uint64_t key = sorted[i];
    int j = i - 1;
    while (j >= 0 && sorted[j] > key) {
      sorted[j + 1] = sorted[j];
      j = j - 1;
    }
    sorted[j + 1] = key;
  }
  uint64_t med = (sorted[3] + sorted[4]) / 2;

  uint64_t dev[8];
  for (int i = 0; i < 8; ++i) {
    dev[i] = loads[i] > med ? loads[i] - med : med - loads[i];
  }
  for (int i = 1; i < 8; ++i) {
    uint64_t key = dev[i];
    int j = i - 1;
    while (j >= 0 && dev[j] > key) {
      dev[j + 1] = dev[j];
      j = j - 1;
    }
    dev[j + 1] = key;
  }
  uint64_t mad = (dev[3] + dev[4]) / 2;

  static int streak = 0;
  uint64_t mean = total / 8;
  if (mean > 0 && mad * 4 > mean) {
    streak = streak + 1;
  } else {
    streak = 0;
  }
  if (streak >= 3) {
    // shift the hash inputs to the next configuration
    ${h_src} = 1 - ${h_src};
    ${h_l4} = 1 - ${h_l4};
    streak = 0;
  }
}
)P4R";
}

std::string hash_polarization_fabric_p4r_source(int ecmp_ports) {
  expects(ecmp_ports >= 2, "hash_polarization_fabric_p4r_source: need >= 2");
  // Same headers / malleable hash inputs / reaction as the single-switch
  // program; the differences are the ECMP width (the switch's uplink count)
  // and a post-ECMP exact route table for locally attached destinations.
  std::string src = R"P4R(
// Use case #3, fabric-truthful form: ECMP over the uplinks, exact routes
// for local hosts, per-egress counters feeding the MAD reaction.
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type l4_t {
  fields {
    srcPort : 16;
    dstPort : 16;
  }
}
header l4_t l4;

header_type hp_meta_t {
  fields { c : 32; }
}
metadata hp_meta_t hp_meta;

malleable field h_src {
  width : 32;
  init : ipv4.srcAddr;
  alts { ipv4.srcAddr, ipv4.dstAddr }
}
malleable field h_dst {
  width : 32;
  init : ipv4.dstAddr;
  alts { ipv4.dstAddr, ipv4.srcAddr }
}
malleable field h_l4 {
  width : 16;
  init : l4.srcPort;
  alts { l4.srcPort, l4.dstPort }
}

field_list ecmp_fl {
  ${h_src};
  ${h_dst};
  ${h_l4};
  ipv4.protocol;
}
field_list_calculation ecmp_hash {
  input { ecmp_fl; }
  algorithm : crc32;
  output_width : 16;
}

action ecmp_route() {
  modify_field_with_hash_based_offset(standard_metadata.egress_spec, 0, ecmp_hash, ECMP_PORTS);
}
table ecmp {
  actions { ecmp_route; }
  default_action : ecmp_route;
  size : 1;
}

// Local destinations (hosts, downlinks) override the ECMP choice.
action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
table route {
  reads { ipv4.dstAddr : exact; }
  actions { set_egress; no_op; }
  default_action : no_op;
  size : 64;
}

register egr_pkts_r { width : 32; instance_count : 8; }

action count_egr() {
  register_read(hp_meta.c, egr_pkts_r, standard_metadata.egress_port);
  add_to_field(hp_meta.c, 1);
  register_write(egr_pkts_r, standard_metadata.egress_port, hp_meta.c);
}
table egr_tally {
  actions { count_egr; }
  default_action : count_egr;
  size : 1;
}

control ingress {
  apply(ecmp);
  apply(route);
}
control egress {
  apply(egr_tally);
}

reaction hp_react(reg egr_pkts_r[0:7]) {
  static uint64_t last[8];
  uint64_t loads[8];
  uint64_t total = 0;
  for (int p = 0; p < 8; ++p) {
    loads[p] = egr_pkts_r[p] - last[p];
    last[p] = egr_pkts_r[p];
    total = total + loads[p];
  }
  if (total == 0) return;
  static int streak = 0;
  uint64_t mean = total / 8;
  if (mean > 0) {
    streak = streak + 1;
  }
}
)P4R";
  const std::string needle = "ECMP_PORTS";
  const auto pos = src.find(needle);
  src.replace(pos, needle.size(), std::to_string(ecmp_ports));
  return src;
}

agent::Agent::NativeFn make_hash_pol_reaction(
    std::shared_ptr<HashPolState> state) {
  expects(state != nullptr, "make_hash_pol_reaction: null state");
  expects(!state->cfg.configs.empty(), "make_hash_pol_reaction: no configs");
  return [state](agent::ReactionContext& ctx) {
    auto& st = *state;
    const int n = st.cfg.num_ports;
    if (st.last_counts.empty()) {
      st.last_counts.assign(static_cast<std::size_t>(n), 0);
    }
    std::vector<double> loads(static_cast<std::size_t>(n));
    double total = 0;
    for (int p = 0; p < n; ++p) {
      const auto count = static_cast<std::uint64_t>(
          ctx.arg("egr_pkts_r", static_cast<std::uint32_t>(p)));
      loads[static_cast<std::size_t>(p)] = static_cast<double>(
          count - st.last_counts[static_cast<std::size_t>(p)]);
      st.last_counts[static_cast<std::size_t>(p)] = count;
      total += loads[static_cast<std::size_t>(p)];
    }
    if (total <= 0) return;

    const double mad = median_absolute_deviation(loads);
    const double mean = total / n;
    st.last_ratio = mad / mean;
    if (st.last_ratio > st.cfg.imbalance_ratio) {
      ++st.imbalanced_streak;
    } else {
      st.imbalanced_streak = 0;
    }
    if (st.imbalanced_streak < st.cfg.persistence) return;
    st.imbalanced_streak = 0;

    st.current_config = (st.current_config + 1) % st.cfg.configs.size();
    const auto& cfg = st.cfg.configs[st.current_config];
    ctx.set("h_src", cfg[0]);
    ctx.set("h_dst", cfg[1]);
    ctx.set("h_l4", cfg[2]);
    ++st.shifts;
    if (st.on_shift) st.on_shift(st.current_config, ctx.now());
  };
}

}  // namespace mantis::apps
