// Runtime state of one match-action table: the entry store plus the match
// engines (exact hash index, ternary priority scan, LPM longest-prefix scan).
//
// Single-entry operations are atomic with respect to packets by construction
// (each driver op is one event on the loop) — exactly the guarantee RMT
// hardware gives and the *only* one Mantis's update protocol assumes (§5.1.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.hpp"
#include "sim/packet.hpp"

namespace mantis::telemetry {
class ProvenanceContext;
}

namespace mantis::sim {

/// Opaque handle for a installed entry; stable until delete.
using EntryHandle = std::uint64_t;

class TableState {
 public:
  TableState(const p4::Program& prog, const p4::TableDecl& decl);

  const p4::TableDecl& decl() const { return *decl_; }
  const std::string& name() const { return decl_->name; }

  /// Mutations stamp entries with the live reaction id (0 = none); the
  /// switch wires this to its loop's provenance context.
  void set_provenance(telemetry::ProvenanceContext* prov) { prov_ = prov; }

  /// Installs an entry. Throws UserError when the table is full, the key
  /// arity is wrong, or the action is not bound to this table.
  EntryHandle add_entry(const p4::EntrySpec& spec);

  /// Replaces the action/args of an existing entry (match key is immutable,
  /// as on RMT hardware).
  void modify_entry(EntryHandle h, const std::string& action,
                    std::vector<std::uint64_t> args);

  void delete_entry(EntryHandle h);

  void set_default(const std::string& action, std::vector<std::uint64_t> args);

  /// Finds an installed entry with this exact key spec (values+masks), if any.
  std::optional<EntryHandle> find_entry(const std::vector<p4::MatchValue>& key) const;

  struct LookupResult {
    bool hit = false;
    const std::string* action = nullptr;            ///< never null
    const std::vector<std::uint64_t>* args = nullptr;  ///< never null
    EntryHandle handle = 0;                         ///< valid when hit
    /// Reaction id of the mutation that installed the winning rule (entry
    /// or default), 0 when it predates any reaction.
    std::uint64_t provenance = 0;
  };

  /// Matches `pkt` against the table; returns the winning entry's action or
  /// the default action on miss.
  LookupResult lookup(const Packet& pkt) const;

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t capacity() const { return decl_->size; }

  const p4::EntrySpec& entry(EntryHandle h) const;

  /// All live handles (stable iteration order: ascending handle).
  std::vector<EntryHandle> handles() const;

  /// Appends a deterministic description of the table (default action,
  /// entries sorted by handle) for flight-recorder snapshots.
  void write_snapshot(std::string& out) const;

 private:
  struct StoredEntry {
    p4::EntrySpec spec;
    std::uint64_t insert_seq = 0;  ///< tie-break: earlier insert wins
    std::uint64_t provenance = 0;  ///< reaction id that last wrote the entry
  };

  const p4::Program* prog_;
  const p4::TableDecl* decl_;
  std::map<EntryHandle, StoredEntry> entries_;
  EntryHandle next_handle_ = 1;
  std::uint64_t next_seq_ = 0;

  std::string default_action_;
  std::vector<std::uint64_t> default_args_;
  std::uint64_t default_provenance_ = 0;
  telemetry::ProvenanceContext* prov_ = nullptr;

  bool all_exact_ = false;
  /// Exact-match index: packed key -> handle (only when all reads exact).
  std::map<std::vector<std::uint64_t>, EntryHandle> exact_index_;

  void check_spec(const p4::EntrySpec& spec) const;
  bool entry_matches(const StoredEntry& e, const Packet& pkt) const;
  /// Reports this mutation to the provenance layer; returns the entry stamp.
  std::uint64_t stamp_mutation();
};

}  // namespace mantis::sim
