#include "apps/gray_failure.hpp"

#include <string>

#include "util/check.hpp"

namespace mantis::apps {

std::string gray_failure_p4r_source(int monitored_ports) {
  expects(monitored_ports >= 1, "gray_failure_p4r_source: bad port count");
  // The register must cover every monitored ingress port; the classic
  // single-switch app keeps the historical 32-entry register with an
  // 8-port reaction window, wider fabrics size both to the port count.
  const std::string ports = std::to_string(monitored_ports);
  const std::string reg_size =
      std::to_string(monitored_ports < 32 ? 32 : monitored_ports);
  const std::string window_hi = std::to_string(monitored_ports - 1);
  return R"P4R(
// Use case #2: gray-failure detection and route recomputation (paper 8.3.2).
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type gf_meta_t {
  fields { c : 32; }
}
metadata gf_meta_t gf_meta;

// Per-ingress-port heartbeat counter (polled by the reaction).
register hb_count_r { width : 32; instance_count : )P4R" + reg_size + R"P4R(; }

action count_hb() {
  register_read(gf_meta.c, hb_count_r, standard_metadata.ingress_port);
  add_to_field(gf_meta.c, 1);
  register_write(hb_count_r, standard_metadata.ingress_port, gf_meta.c);
}
table hb_tally {
  reads { ipv4.protocol : exact; }
  actions { count_hb; no_op; }
  default_action : no_op;
  size : 4;
}

action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
malleable table route {
  reads { ipv4.dstAddr : exact; }
  actions { set_egress; _drop; }
  default_action : _drop;
  size : 256;
}

control ingress {
  apply(hb_tally);
  apply(route);
}
control egress { }

// Interpreted detector (the native version adds full Dijkstra rerouting):
// flags ports whose heartbeat delta falls below eta * T_d / T_s twice in a
// row. eta = 1/2, T_s = 1us.
reaction gf_react(reg hb_count_r[0:)P4R" + window_hi + R"P4R(], ing standard_metadata.ingress_global_timestamp) {
  static uint64_t last_counts[)P4R" + ports + R"P4R(];
  static uint64_t last_ts = 0;
  static int below[)P4R" + ports + R"P4R(];
  static uint8_t down[)P4R" + ports + R"P4R(];

  uint64_t ts = standard_metadata_ingress_global_timestamp;
  uint64_t td = ts - last_ts;
  last_ts = ts;
  if (td == 0) return;

  for (int p = 0; p < )P4R" + ports + R"P4R(; ++p) {
    uint64_t delta = hb_count_r[p] - last_counts[p];
    last_counts[p] = hb_count_r[p];
    uint64_t threshold = td / 2;  // eta=1/2, T_s=1us, td in us
    if (delta < threshold) {
      below[p] = below[p] + 1;
    } else {
      below[p] = 0;
    }
    if (below[p] >= 2 && down[p] == 0) {
      down[p] = 1;
      log(p);
    }
  }
}
)P4R";
}

// ---------------------------------------------------------------------------
// Reaction (topology/Dijkstra now live in net/topology.cpp)
// ---------------------------------------------------------------------------

void GrayFailureState::install_initial_routes(agent::ReactionContext& ctx) {
  last_counts.assign(static_cast<std::size_t>(cfg.num_ports), 0);
  below_streak.assign(static_cast<std::size_t>(cfg.num_ports), 0);
  port_down.assign(static_cast<std::size_t>(cfg.num_ports), false);

  const auto routes = topo.compute_routes_from(self_node, port_down);
  for (const auto& [addr, port] : routes) {
    expects(port >= 0, "install_initial_routes: unreachable destination");
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
    spec.action = "set_egress";
    spec.action_args = {static_cast<std::uint64_t>(port)};
    route_ids[addr] = ctx.add_entry("route", spec);
    current_port[addr] = port;
  }

  // Heartbeats are protocol 253.
  p4::EntrySpec hb;
  hb.key.push_back(p4::MatchValue{253, ~std::uint64_t{0}});
  hb.action = "count_hb";
  ctx.add_entry("hb_tally", hb);
}

agent::Agent::NativeFn make_gray_failure_reaction(
    std::shared_ptr<GrayFailureState> state) {
  expects(state != nullptr, "make_gray_failure_reaction: null state");
  return [state](agent::ReactionContext& ctx) {
    auto& st = *state;
    const auto ts_us = static_cast<std::uint64_t>(
        ctx.arg("standard_metadata_ingress_global_timestamp"));
    const std::uint64_t td_us = ts_us - st.last_ts_us;
    st.last_ts_us = ts_us;
    if (td_us == 0) return;

    const double ts_per_us =
        1.0 / (static_cast<double>(st.cfg.ts) / kMicrosecond);
    const auto threshold = static_cast<std::uint64_t>(
        st.cfg.eta * static_cast<double>(td_us) * ts_per_us);

    bool newly_down = false;
    for (int p = 0; p < st.cfg.num_ports; ++p) {
      const auto count = static_cast<std::uint64_t>(
          ctx.arg("hb_count_r", static_cast<std::uint32_t>(p)));
      const std::uint64_t delta = count - st.last_counts[static_cast<std::size_t>(p)];
      st.last_counts[static_cast<std::size_t>(p)] = count;
      auto& streak = st.below_streak[static_cast<std::size_t>(p)];
      streak = delta < threshold ? streak + 1 : 0;
      if (streak >= st.cfg.consecutive_required &&
          !st.port_down[static_cast<std::size_t>(p)]) {
        st.port_down[static_cast<std::size_t>(p)] = true;
        newly_down = true;
        if (st.on_detect) st.on_detect(p, ctx.now());
      }
    }
    if (!newly_down) return;

    // Recompute shortest paths and rewrite entries whose first hop changed.
    const auto routes = st.topo.compute_routes_from(st.self_node, st.port_down);
    for (const auto& [addr, port] : routes) {
      auto cur = st.current_port.find(addr);
      if (cur == st.current_port.end() || cur->second == port) continue;
      if (port < 0) {
        ctx.mod_entry("route", st.route_ids.at(addr), "_drop", {});
      } else {
        ctx.mod_entry("route", st.route_ids.at(addr), "set_egress",
                      {static_cast<std::uint64_t>(port)});
      }
      cur->second = port;
    }
    if (st.on_routes_installed) st.on_routes_installed(ctx.now());
  };
}

}  // namespace mantis::apps
