#include "workload/flow_classes.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.hpp"

namespace mantis::workload {

std::vector<std::uint64_t> FlowClasses::zipf_partition(std::uint64_t total,
                                                       std::size_t classes,
                                                       double s) {
  expects(classes >= 1, "zipf_partition: need >= 1 class");
  std::vector<double> w(classes);
  double sum = 0;
  for (std::size_t i = 0; i < classes; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    sum += w[i];
  }
  std::vector<std::uint64_t> out(classes);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < classes; ++i) {
    out[i] = static_cast<std::uint64_t>(static_cast<double>(total) * w[i] / sum);
    assigned += out[i];
  }
  // Floors under-assign by < classes; hand the remainder out in class order
  // (heaviest first) so the partition is exact and deterministic.
  for (std::size_t i = 0; assigned < total; i = (i + 1) % classes) {
    ++out[i];
    ++assigned;
  }
  return out;
}

FlowClasses::FlowClasses(net::Fabric& fabric, FlowClassesConfig cfg,
                         std::vector<Endpoint> endpoints)
    : fabric_(&fabric), cfg_(cfg) {
  expects(!endpoints.empty(), "FlowClasses: need >= 1 endpoint pair");
  expects(cfg_.epoch > 0, "FlowClasses: epoch must be positive");
  const auto& prog = fabric.factory().program();
  f_src_ = prog.fields.require("ipv4.srcAddr");
  f_dst_ = prog.fields.require("ipv4.dstAddr");

  const auto flows =
      zipf_partition(cfg_.total_flows, endpoints.size(), cfg_.zipf_s);
  classes_.resize(endpoints.size());
  std::set<std::uint32_t> dst_addrs;
  for (std::size_t c = 0; c < endpoints.size(); ++c) {
    auto& cs = classes_[c];
    cs.ep = endpoints[c];
    cs.src_node = fabric.host_for(cs.ep.src_addr).node();
    cs.flows = flows[c];
    cs.rate_pps = cfg_.init_rate_pps;
    dst_addrs.insert(cs.ep.dst_addr);
  }
  // One hook per distinct receiving host; the hook dispatches on the class
  // id the sample carries. A bench may already use these hosts for other
  // traffic — non-sample packets (srcAddr outside the class range) are
  // ignored.
  for (const std::uint32_t addr : dst_addrs) {
    fabric.host_at(fabric.host_for(addr).node())
        .set_on_receive([this](const sim::Packet& pkt, Time now) {
          on_host_receive(pkt, now);
        });
  }
}

double FlowClasses::aggregate_rate_pps() const {
  double sum = 0;
  for (const auto& cs : classes_) {
    sum += cs.rate_pps * static_cast<double>(cs.flows);
  }
  return sum;
}

std::uint64_t FlowClasses::samples_sent() const {
  std::uint64_t sum = 0;
  for (const auto& cs : classes_) {
    sum += cs.sent_total;
  }
  return sum;
}

std::uint64_t FlowClasses::samples_delivered() const {
  std::uint64_t sum = 0;
  for (const auto& cs : classes_) {
    sum += cs.delivered_total.load(std::memory_order_relaxed);
  }
  return sum;
}

void FlowClasses::start(Time until, Duration engine_lookahead) {
  expects(engine_lookahead <= 0 || cfg_.epoch >= 2 * engine_lookahead,
          "FlowClasses: epoch must be >= 2x the engine lookahead (the "
          "delivery-cell ring is only deterministic with that margin)");
  start_time_ = fabric_->loop().now();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    emit_epoch(c, 0, until);
  }
}

void FlowClasses::emit_epoch(std::size_t c, std::uint64_t e, Time until) {
  auto& cs = classes_[c];
  const Time epoch_start = start_time_ + static_cast<Time>(e) * cfg_.epoch;
  if (epoch_start >= until) return;

  // Aggregate fluid rate -> ideal packets this epoch -> bounded samples.
  const double aggregate_pps = cs.rate_pps * static_cast<double>(cs.flows);
  const double ideal_pkts = aggregate_pps * static_cast<double>(cfg_.epoch) / 1e9;
  const std::uint32_t samples = static_cast<std::uint32_t>(std::min<double>(
      cfg_.max_samples_per_epoch, std::max(1.0, std::floor(ideal_pkts))));
  cs.sent[e & 3] = samples;

  // Evenly spaced inside the epoch, all on the source host's shard so the
  // canonical keys are identical under any engine.
  const Duration gap = cfg_.epoch / static_cast<Duration>(samples);
  for (std::uint32_t j = 0; j < samples; ++j) {
    fabric_->schedule_for_node(cs.src_node, epoch_start + j * gap,
                               [this, c] { send_sample(c); });
  }
  // AIMD tick for this epoch: half an epoch after the arrival window
  // closes, so every delivery cell write is barrier-ordered before it.
  fabric_->schedule_for_node(
      cs.src_node, epoch_start + cfg_.epoch + cfg_.epoch / 2,
      [this, c, e] { adjust(c, e); });
  fabric_->schedule_for_node(cs.src_node, epoch_start + cfg_.epoch,
                             [this, c, e, until] {
                               emit_epoch(c, e + 1, until);
                             });
}

void FlowClasses::send_sample(std::size_t c) {
  auto& cs = classes_[c];
  auto pkt = fabric_->factory().make(cfg_.pkt_bytes);
  pkt.set(f_src_, kClassAddrBase + static_cast<std::uint32_t>(c), 32);
  pkt.set(f_dst_, cs.ep.dst_addr, 32);
  fabric_->host_for(cs.ep.src_addr).send(std::move(pkt));
  ++cs.sent_total;
}

void FlowClasses::on_host_receive(const sim::Packet& pkt, Time now) {
  const std::uint64_t src = pkt.get(f_src_);
  if (src < kClassAddrBase ||
      src >= kClassAddrBase + classes_.size()) {
    return;  // not a sample (e.g. other bench traffic sharing the host)
  }
  const std::uint64_t e = static_cast<std::uint64_t>(now - start_time_) /
                          static_cast<std::uint64_t>(cfg_.epoch);
  auto& cs = classes_[src - kClassAddrBase];
  cs.delivered[e & 3].fetch_add(1, std::memory_order_relaxed);
  cs.delivered_total.fetch_add(1, std::memory_order_relaxed);
}

void FlowClasses::adjust(std::size_t c, std::uint64_t e) {
  auto& cs = classes_[c];
  const std::uint64_t delivered =
      cs.delivered[e & 3].load(std::memory_order_relaxed);
  const std::uint32_t sent = cs.sent[e & 3];
  // Recycle the cell two epochs ahead: its next writer runs a half-epoch
  // after this tick, on the far side of at least one round barrier.
  cs.delivered[(e + 2) & 3].store(0, std::memory_order_relaxed);
  if (sent == 0) return;
  if (delivered >= sent) {
    cs.rate_pps = std::min(cfg_.max_rate_pps, cs.rate_pps + cfg_.additive_pps);
  } else {
    // Multiplicative decrease proportional to the sampled loss, floored at
    // a halving (classic AIMD worst case).
    const double frac = static_cast<double>(delivered) / sent;
    cs.rate_pps = std::max(cfg_.min_rate_pps,
                           cs.rate_pps * std::max(0.5, frac));
  }
}

}  // namespace mantis::workload
