// p4r_fuzz: differential fuzzing driver for the P4R stack.
//
// Each iteration generates a seeded random P4R program + packet trace
// (check::generate_scenario), runs it through the reference interpreter and
// the full compiled stack (check::run_diff), and reports any disagreement.
// Diverging scenarios are greedily minimized and written as standalone text
// repros; `p4r_fuzz --replay <file>` re-runs one.
//
// Usage:
//   p4r_fuzz [--seed S] [--iters N] [--minimize] [--corpus-dir DIR]
//            [--metrics FILE] [--replay FILE] [--dump SEED] [--quiet]
//            [--fabric] [--resources]
//
// --fabric switches to the multi-switch differential mode: each iteration
// generates a seeded fabric scenario (topology + traffic + fault schedule),
// runs it on the sequential event loop and on the parallel fabric engine,
// and diffs every determinism surface (metrics JSON, link stats, fault log,
// flight-recorder dump). A divergence is an equivalence bug; the scenario
// is reproducible from its seed alone.
//
// --resources switches to resource-budget fuzzing: each iteration pairs the
// generated program with a *randomized* RMT resource model and asserts
// graceful degradation — an over-budget program must be rejected with a
// structured ResourceExhausted diagnostic naming the exhausted resource
// (never a crash, an unstructured error, or a silent mis-pack), and a
// fitting program must still pass the differential check under that model.
// Violations are written as `resource_seed_*.repro` files that bundle the
// model with the scenario; `--replay` recognizes the format.
//
// Exit status: 0 when every iteration agreed (or was skipped), 1 on any
// divergence (or, with --resources, any contract violation), 2 on usage
// errors.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/diff.hpp"
#include "check/fabric_diff.hpp"
#include "check/gen.hpp"
#include "check/minimize.hpp"
#include "check/resource_fuzz.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"

namespace {

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t iters = 100;
  bool minimize = false;
  bool quiet = false;
  std::string corpus_dir;
  std::string metrics_path;
  std::string replay_path;
  std::uint64_t dump_seed = 0;
  bool dump = false;
  bool fabric = false;
  bool resources = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--iters N] [--minimize] "
               "[--corpus-dir DIR] [--metrics FILE] [--replay FILE] "
               "[--quiet] [--fabric] [--resources]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (opt == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      a.seed = std::strtoull(v, nullptr, 0);
    } else if (opt == "--iters") {
      const char* v = value();
      if (v == nullptr) return false;
      a.iters = std::strtoull(v, nullptr, 0);
    } else if (opt == "--minimize") {
      a.minimize = true;
    } else if (opt == "--fabric") {
      a.fabric = true;
    } else if (opt == "--resources") {
      a.resources = true;
    } else if (opt == "--quiet") {
      a.quiet = true;
    } else if (opt == "--corpus-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      a.corpus_dir = v;
    } else if (opt == "--metrics") {
      const char* v = value();
      if (v == nullptr) return false;
      a.metrics_path = v;
    } else if (opt == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      a.replay_path = v;
    } else if (opt == "--dump") {
      const char* v = value();
      if (v == nullptr) return false;
      a.dump = true;
      a.dump_seed = std::strtoull(v, nullptr, 0);
    } else {
      return false;
    }
  }
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw mantis::UserError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void report_divergences(const mantis::check::DiffResult& r) {
  for (const auto& d : r.divergences) {
    std::fprintf(stderr, "  epoch %u [%s] %s\n", d.epoch, d.surface.c_str(),
                 d.detail.c_str());
  }
}

int replay(const Args& args) {
  const std::string text = read_file(args.replay_path);
  // Resource repros bundle a model line with the scenario; replay the full
  // graceful-degradation contract rather than the plain differential check.
  if (text.rfind("# p4r_fuzz resource repro", 0) == 0) {
    const auto rr = mantis::check::parse_resource_repro(text);
    const auto res =
        mantis::check::run_resource_iteration(rr.scenario, rr.model);
    std::printf("%s: %s", args.replay_path.c_str(),
                std::string(mantis::check::resource_fuzz_kind_name(res.kind))
                    .c_str());
    if (res.kind == mantis::check::ResourceFuzzResult::Kind::kRejected) {
      std::printf(" (%s)", mantis::p4::rmt_resource_name(res.resource));
    }
    if (!res.detail.empty()) std::printf(": %s", res.detail.c_str());
    std::printf("\n");
    return res.kind == mantis::check::ResourceFuzzResult::Kind::kViolation ? 1
                                                                           : 0;
  }
  const mantis::check::Scenario s = mantis::check::parse_scenario(text);
  const auto r = mantis::check::run_diff(s);
  std::printf("%s: %s", args.replay_path.c_str(),
              std::string(mantis::check::outcome_name(r.outcome)).c_str());
  if (!r.skip_reason.empty()) std::printf(" (%s)", r.skip_reason.c_str());
  std::printf("\n");
  report_divergences(r);
  return r.diverged() ? 1 : 0;
}

// Resource-budget campaign: every scenario that compiles on the default
// model is re-compiled under a seeded random RmtResourceModel. The contract
// under ANY model is: structured rejection (ResourceExhausted) or a fit
// whose artifacts independently re-verify and still pass the differential
// check. Anything else — crash, unstructured error, silent mis-pack,
// divergence — is a violation and fails the campaign.
int resources_campaign(const Args& args) {
  using Kind = mantis::check::ResourceFuzzResult::Kind;
  mantis::telemetry::MetricsRegistry metrics;
  std::uint64_t fit = 0, rejected = 0, skipped = 0, violations = 0;
  std::uint64_t by_resource[16] = {};

  for (std::uint64_t it = 0; it < args.iters; ++it) {
    const std::uint64_t seed = mantis::check::iteration_seed(args.seed, it);
    const auto model = mantis::check::random_resource_model(seed);
    mantis::check::ResourceFuzzResult r;
    try {
      const auto s = mantis::check::generate_scenario(seed);
      metrics.counter("check.resource_fuzz.iterations").add();
      r = mantis::check::run_resource_iteration(s, model);
      switch (r.kind) {
        case Kind::kFit: ++fit; break;
        case Kind::kSkipped: ++skipped; break;
        case Kind::kRejected: {
          ++rejected;
          const auto idx = static_cast<std::size_t>(r.resource);
          if (idx < 16) ++by_resource[idx];
          metrics
              .counter(std::string("check.resource_fuzz.rejected.") +
                       mantis::p4::rmt_resource_name(r.resource))
              .add();
          break;
        }
        case Kind::kViolation: break;  // handled below with the repro dump
      }
      if (r.kind == Kind::kViolation) {
        ++violations;
        metrics.counter("check.resource_fuzz.violations").add();
        std::fprintf(stderr, "iter %llu (seed %llu): VIOLATION  %s\n",
                     static_cast<unsigned long long>(it),
                     static_cast<unsigned long long>(seed), r.detail.c_str());
        std::fprintf(stderr, "  %s\n", model.describe().c_str());
        mantis::check::ResourceRepro repro{model, s};
        if (args.minimize) {
          repro = mantis::check::minimize_resource_repro(repro);
        }
        const std::string text =
            mantis::check::serialize_resource_repro(repro);
        if (!args.corpus_dir.empty()) {
          const std::string path = args.corpus_dir + "/resource_seed_" +
                                   std::to_string(seed) + ".repro";
          std::ofstream out(path);
          out << text;
          std::fprintf(stderr, "  repro written to %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "---- repro ----\n%s---- end ----\n",
                       text.c_str());
        }
      }
    } catch (const std::exception& e) {
      // run_resource_iteration classifies everything it anticipates; an
      // exception escaping it IS the crash the campaign exists to catch.
      ++violations;
      std::fprintf(stderr, "iter %llu (seed %llu): VIOLATION  escaped: %s\n",
                   static_cast<unsigned long long>(it),
                   static_cast<unsigned long long>(seed), e.what());
    }
    if (!args.quiet && (it + 1) % 50 == 0) {
      std::fprintf(stderr,
                   "progress: %llu/%llu (fit %llu, rejected %llu, "
                   "skipped %llu, violations %llu)\n",
                   static_cast<unsigned long long>(it + 1),
                   static_cast<unsigned long long>(args.iters),
                   static_cast<unsigned long long>(fit),
                   static_cast<unsigned long long>(rejected),
                   static_cast<unsigned long long>(skipped),
                   static_cast<unsigned long long>(violations));
    }
  }

  if (!args.metrics_path.empty()) {
    mantis::telemetry::write_text_file(
        args.metrics_path,
        mantis::telemetry::report_json("p4r_fuzz_resources", {}, metrics));
  }
  std::printf(
      "p4r_fuzz --resources: %llu iterations: %llu fit, %llu rejected, "
      "%llu skipped, %llu violations\n",
      static_cast<unsigned long long>(args.iters),
      static_cast<unsigned long long>(fit),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(violations));
  for (std::size_t i = 0; i < 16; ++i) {
    if (by_resource[i] == 0) continue;
    std::printf("  rejected by %s: %llu\n",
                mantis::p4::rmt_resource_name(
                    static_cast<mantis::p4::RmtResource>(i)),
                static_cast<unsigned long long>(by_resource[i]));
  }
  return violations != 0 ? 1 : 0;
}

int fabric_campaign(const Args& args) {
  mantis::telemetry::MetricsRegistry metrics;
  std::uint64_t diverged = 0;
  for (std::uint64_t it = 0; it < args.iters; ++it) {
    const std::uint64_t seed = mantis::check::iteration_seed(args.seed, it);
    const auto spec = mantis::check::generate_fabric_scenario(seed);
    const auto r = mantis::check::run_fabric_diff(spec, &metrics);
    if (r.diverged) {
      ++diverged;
      std::fprintf(stderr, "iter %llu (seed %llu): DIVERGED  %s\n",
                   static_cast<unsigned long long>(it),
                   static_cast<unsigned long long>(seed),
                   spec.summary().c_str());
      for (const auto& d : r.divergences) {
        std::fprintf(stderr, "  %s\n", d.c_str());
      }
    } else if (!args.quiet && (it + 1) % 50 == 0) {
      std::fprintf(stderr, "progress: %llu/%llu (%llu diverged)\n",
                   static_cast<unsigned long long>(it + 1),
                   static_cast<unsigned long long>(args.iters),
                   static_cast<unsigned long long>(diverged));
    }
  }
  if (!args.metrics_path.empty()) {
    mantis::telemetry::write_text_file(
        args.metrics_path,
        mantis::telemetry::report_json("p4r_fuzz_fabric", {}, metrics));
  }
  std::printf("p4r_fuzz --fabric: %llu scenarios, %llu diverged\n",
              static_cast<unsigned long long>(args.iters),
              static_cast<unsigned long long>(diverged));
  return diverged != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  try {
    if (args.dump) {
      std::printf("%s", mantis::check::serialize_scenario(
                            mantis::check::generate_scenario(args.dump_seed))
                            .c_str());
      return 0;
    }
    if (!args.replay_path.empty()) return replay(args);
    if (args.fabric) return fabric_campaign(args);
    if (args.resources) return resources_campaign(args);

    mantis::telemetry::MetricsRegistry metrics;
    std::uint64_t diverged = 0, agreed = 0, agreed_error = 0, skipped = 0;

    for (std::uint64_t it = 0; it < args.iters; ++it) {
      const std::uint64_t seed = mantis::check::iteration_seed(args.seed, it);
      mantis::check::Scenario s = mantis::check::generate_scenario(seed);
      metrics.counter("check.fuzz.iterations").add();
      const auto r = mantis::check::run_diff(s, &metrics);
      switch (r.outcome) {
        case mantis::check::Outcome::kAgreed: ++agreed; break;
        case mantis::check::Outcome::kAgreedError: ++agreed_error; break;
        case mantis::check::Outcome::kSkipped:
          ++skipped;
          if (!args.quiet) {
            std::fprintf(stderr, "iter %llu (seed %llu): skipped: %s\n",
                         static_cast<unsigned long long>(it),
                         static_cast<unsigned long long>(seed),
                         r.skip_reason.c_str());
          }
          break;
        case mantis::check::Outcome::kDiverged: {
          ++diverged;
          metrics.counter("check.fuzz.divergences").add();
          std::fprintf(stderr, "iter %llu (seed %llu): DIVERGED\n",
                       static_cast<unsigned long long>(it),
                       static_cast<unsigned long long>(seed));
          report_divergences(r);
          mantis::check::Scenario repro = s;
          if (args.minimize) {
            mantis::check::MinimizeStats st;
            repro = mantis::check::minimize_scenario(s, {}, &st);
            std::fprintf(stderr,
                         "  minimized: %zu reductions in %zu runs\n",
                         st.accepted, st.runs);
          }
          const std::string text = mantis::check::serialize_scenario(repro);
          if (!args.corpus_dir.empty()) {
            const std::string path = args.corpus_dir + "/diverge_seed_" +
                                     std::to_string(seed) + ".repro";
            std::ofstream out(path);
            out << text;
            std::fprintf(stderr, "  repro written to %s\n", path.c_str());
            if (args.minimize) {
              // The minimizer guarantees the final repro still diverges;
              // rerun it to capture its flight-recorder state (driver ops,
              // reaction records, switch snapshot at the divergence).
              const auto rr = mantis::check::run_diff(repro);
              const std::string& mfr =
                  rr.flight_dump.empty() ? r.flight_dump : rr.flight_dump;
              if (!mfr.empty()) {
                const std::string mfr_path = args.corpus_dir +
                                             "/diverge_seed_" +
                                             std::to_string(seed) + ".mfr";
                std::ofstream mout(mfr_path);
                mout << mfr;
                std::fprintf(stderr, "  flight recorder written to %s\n",
                             mfr_path.c_str());
              }
            }
          } else {
            std::fprintf(stderr, "---- repro ----\n%s---- end ----\n",
                         text.c_str());
          }
          break;
        }
      }
      if (!args.quiet && (it + 1) % 50 == 0) {
        std::fprintf(stderr,
                     "progress: %llu/%llu (agreed %llu, skipped %llu, "
                     "agreed-error %llu, diverged %llu)\n",
                     static_cast<unsigned long long>(it + 1),
                     static_cast<unsigned long long>(args.iters),
                     static_cast<unsigned long long>(agreed),
                     static_cast<unsigned long long>(skipped),
                     static_cast<unsigned long long>(agreed_error),
                     static_cast<unsigned long long>(diverged));
      }
    }

    if (!args.metrics_path.empty()) {
      mantis::telemetry::write_text_file(
          args.metrics_path,
          mantis::telemetry::report_json("p4r_fuzz", {}, metrics));
    }
    std::printf(
        "p4r_fuzz: %llu iterations: %llu agreed, %llu skipped, "
        "%llu agreed-error, %llu diverged\n",
        static_cast<unsigned long long>(args.iters),
        static_cast<unsigned long long>(agreed),
        static_cast<unsigned long long>(skipped),
        static_cast<unsigned long long>(agreed_error),
        static_cast<unsigned long long>(diverged));
    return diverged != 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "p4r_fuzz: %s\n", e.what());
    return 2;
  }
}
