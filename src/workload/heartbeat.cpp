#include "workload/heartbeat.hpp"

namespace mantis::workload {

HeartbeatSource::HeartbeatSource(sim::Switch& sw, HeartbeatConfig cfg)
    : sw_(&sw), cfg_(cfg), rng_(cfg.seed) {}

void HeartbeatSource::start(Time until) { tick(until); }

void HeartbeatSource::tick(Time until) {
  if (stopped_ || sw_->loop().now() > until) return;
  if (!rng_.chance(cfg_.loss_prob)) {
    auto pkt = sw_->factory().make(64);
    const auto& prog = sw_->program();
    const auto proto = prog.fields.find("ipv4.protocol");
    if (proto != p4::kInvalidField) {
      pkt.set(proto, cfg_.proto, prog.fields.width(proto));
    }
    sw_->inject(std::move(pkt), cfg_.port);
    ++emitted_;
  }
  sw_->loop().schedule_in(cfg_.period, [this, until] { tick(until); });
}

}  // namespace mantis::workload
