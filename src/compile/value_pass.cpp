// Setup + malleable value transformation (paper Fig 4).
//
// Each malleable value becomes a field of the generated p4r_meta_ metadata
// instance, loaded by the init action at the start of the ingress pipeline.
// Every `${value}` use in an action body is rewritten to read that field.
#include "compile/context.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace mantis::compile::detail {

void run_setup(Context& ctx) {
  ctx.prog = ctx.src->prog;  // work on a copy; the frontend output is reusable
  p4::add_standard_metadata(ctx.prog);

  ctx.prog.add_metadata_instance("p4r_meta_t_", kMetaInstance,
                                 {{"vv_", 1}, {"mv_", 1}});
  ctx.bind.vv_field = ctx.prog.fields.require("p4r_meta_.vv_");
  ctx.bind.mv_field = ctx.prog.fields.require("p4r_meta_.mv_");
}

void run_value_pass(Context& ctx) {
  for (const auto& value : ctx.src->values) {
    const p4::FieldId field = ctx.prog.append_metadata_field(
        kMetaInstance, value.name, value.width, value.init);
    ctx.value_fields.emplace(value.name, field);
    ctx.scalar_items.push_back(Context::ScalarItem{
        value.name, value.width, value.init, /*is_selector=*/false,
        /*alt_count=*/0});
  }

  // Rewrite `${value}` operands to the generated metadata field. (Malleable
  // *field* operands are handled by the field pass.)
  for (auto& action : ctx.prog.actions) {
    for (auto& ins : action.body) {
      for (auto& arg : ins.args) {
        if (arg.kind != p4::OperandKind::kMbl) continue;
        auto it = ctx.value_fields.find(arg.mbl);
        if (it == ctx.value_fields.end()) continue;
        arg = p4::Operand::of_field(it->second);
      }
    }
  }
}

}  // namespace mantis::compile::detail
