// Batched asynchronous driver runtime (src/driver/async): calibrated batch
// costs, completion-queue ordering under interleaved sync clients, batch
// atomicity on mid-batch errors, pipelining semantics, the degrade path,
// and async-vs-sync final-state equivalence.
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "driver/async/async_driver.hpp"
#include "p4r/sema.hpp"

namespace mantis::driver {
namespace {

const char* kSrc = R"P4R(
header_type h_t { fields { a : 32; } }
header h_t h;
register r { width : 32; instance_count : 64; }
action set_out(port) { modify_field(standard_metadata.egress_spec, port); }
action drop_it() { drop(); }
table t {
  reads { h.a : exact; }
  actions { set_out; drop_it; }
  size : 8;
}
control ingress { apply(t); }
control egress { }
)P4R";

struct AsyncDriverFixture : ::testing::Test {
  sim::EventLoop loop;
  p4::Program prog;
  std::unique_ptr<sim::Switch> sw;
  std::unique_ptr<Driver> drv;

  void SetUp() override {
    prog = p4r::frontend(kSrc).prog;
    sw = std::make_unique<sim::Switch>(loop, prog);
    drv = std::make_unique<Driver>(*sw);
  }

  static p4::EntrySpec entry(std::uint64_t key, std::uint64_t port) {
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{key, ~std::uint64_t{0}});
    spec.action = "set_out";
    spec.action_args = {port};
    return spec;
  }
};

TEST_F(AsyncDriverFixture, BatchPaysCalibratedPrepAndDmaOnce) {
  drv->memoize("t", "set_out");
  AsyncDriver adrv(*drv);
  const auto& costs = drv->costs();

  BatchBuilder b;
  for (int i = 0; i < 4; ++i) b.add_entry("t", entry(i, 1));
  const Time t0 = loop.now();
  adrv.submit(std::move(b));
  const auto c = adrv.reap();

  const Duration solo = costs.table_add(true);
  const Duration prep = costs.batch_overhead + 4 * costs.batch_prep(solo);
  const Duration dma = costs.pcie_rtt + 4 * costs.batch_dma(solo);
  EXPECT_EQ(c.prep_start, t0);
  EXPECT_EQ(c.dma_start, t0 + prep);
  EXPECT_EQ(c.completed, t0 + prep + dma);
  EXPECT_EQ(loop.now(), c.completed);
  // Far cheaper than even the synchronous batch (which pays full solo costs
  // net of the shared round trip).
  const Duration sync_batch =
      costs.batch_overhead + costs.pcie_rtt + 4 * (solo - costs.pcie_rtt);
  EXPECT_LT(c.completed - t0, sync_batch);

  ASSERT_TRUE(c.ok);
  ASSERT_EQ(c.results.size(), 4u);
  for (const auto& r : c.results) {
    EXPECT_TRUE(r.ok);
    EXPECT_NE(r.handle, 0u);
  }
  EXPECT_EQ(sw->table("t").entry_count(), 4u);
}

TEST_F(AsyncDriverFixture, ColdAndMemoizedOpsPricedIndividuallyInOneBatch) {
  drv->memoize("t", "set_out");
  AsyncDriver adrv(*drv);
  const auto& costs = drv->costs();

  // set_out is memoized, drop_it is cold; both adds share one batch.
  BatchBuilder b;
  b.add_entry("t", entry(1, 1));
  p4::EntrySpec cold = entry(2, 0);
  cold.action = "drop_it";
  cold.action_args = {};
  b.add_entry("t", std::move(cold));

  const Time t0 = loop.now();
  adrv.submit(std::move(b));
  const auto c = adrv.reap();

  const Duration warm_solo = costs.table_add(true);
  const Duration cold_solo = costs.table_add(false);
  const Duration prep = costs.batch_overhead + costs.batch_prep(warm_solo) +
                        costs.batch_prep(cold_solo);
  const Duration dma = costs.pcie_rtt + costs.batch_dma(warm_solo) +
                       costs.batch_dma(cold_solo);
  EXPECT_EQ(c.completed - t0, prep + dma);
  EXPECT_TRUE(c.ok);

  // The cold touch memoized (t, drop_it): a second identical batch is
  // cheaper by the warm/cold prep+dma difference.
  BatchBuilder b2;
  p4::EntrySpec warm2 = entry(3, 0);
  warm2.action = "drop_it";
  warm2.action_args = {};
  b2.add_entry("t", std::move(warm2));
  const Time t1 = loop.now();
  adrv.submit(std::move(b2));
  EXPECT_EQ(adrv.reap().completed - t1,
            costs.batch_overhead + costs.batch_prep(warm_solo) +
                costs.pcie_rtt + costs.batch_dma(warm_solo));
}

TEST_F(AsyncDriverFixture, CompletionsReapInSubmitOrderAroundSyncClients) {
  drv->memoize("t", "set_out");
  AsyncDriver adrv(*drv);

  BatchBuilder b1;
  b1.add_entry("t", entry(1, 1));
  const BatchId id1 = adrv.submit(std::move(b1));

  // A synchronous client cuts in while batch 1 is in flight: the channel is
  // FIFO, so the sync op lands strictly after batch 1's DMA.
  drv->write_register("r", 5, 55);
  const Time sync_done = loop.now();
  EXPECT_GT(sync_done, adrv.completion_time(id1));
  EXPECT_EQ(sw->registers().read("r", 5), 55u);

  BatchBuilder b2;
  b2.read_register("r", 5);
  const BatchId id2 = adrv.submit(std::move(b2));
  EXPECT_GT(adrv.completion_time(id2), sync_done);

  // Reaping returns submit order regardless of when each finished.
  const auto c1 = adrv.reap();
  const auto c2 = adrv.reap();
  EXPECT_EQ(c1.id, id1);
  EXPECT_EQ(c2.id, id2);
  // Batch 2's read observed the sync client's write (it ran later).
  ASSERT_EQ(c2.results.size(), 1u);
  EXPECT_EQ(c2.results[0].value, 55u);
}

TEST_F(AsyncDriverFixture, MidBatchHandleErrorAbortsWholeBatch) {
  drv->memoize("t", "set_out");
  const auto h = drv->add_entry("t", entry(9, 9));
  drv->delete_entry("t", h);  // h is now stale
  AsyncDriver adrv(*drv);

  const auto count_before = sw->table("t").entry_count();
  const auto regs_before = sw->registers().read("r", 0);

  BatchBuilder b;
  b.add_entry("t", entry(1, 1));          // would succeed alone
  b.modify_entry("t", h, "set_out", {2});  // stale handle
  b.write_register("r", 0, 42);            // would succeed alone
  adrv.submit(std::move(b));
  const auto c = adrv.reap();

  EXPECT_FALSE(c.ok);
  ASSERT_EQ(c.results.size(), 3u);
  EXPECT_FALSE(c.results[0].ok);
  EXPECT_NE(c.results[0].error.find("aborted: op 1"), std::string::npos);
  EXPECT_FALSE(c.results[1].ok);
  EXPECT_EQ(c.results[1].error.find("aborted"), std::string::npos)
      << "the failing op carries its own error, not the abort marker";
  EXPECT_FALSE(c.results[2].ok);

  // Atomicity: nothing applied.
  EXPECT_EQ(sw->table("t").entry_count(), count_before);
  EXPECT_EQ(sw->registers().read("r", 0), regs_before);
}

TEST_F(AsyncDriverFixture, CapacityValidatedAgainstInBatchOccupancy) {
  drv->memoize("t", "set_out");
  AsyncDriver adrv(*drv);
  // Table capacity is 8: a single batch of 9 adds must abort as a unit,
  // even though each prefix of 8 would fit.
  BatchBuilder b;
  for (int i = 0; i < 9; ++i) b.add_entry("t", entry(i, 1));
  adrv.submit(std::move(b));
  const auto c = adrv.reap();
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(sw->table("t").entry_count(), 0u);
  EXPECT_NE(c.results[8].error.find("table full"), std::string::npos);

  // A batch whose deletes make room for its adds passes the same check.
  BatchBuilder fill;
  for (int i = 0; i < 8; ++i) fill.add_entry("t", entry(100 + i, 1));
  adrv.submit(std::move(fill));
  const auto filled = adrv.reap();
  ASSERT_TRUE(filled.ok);
  BatchBuilder swap;
  swap.delete_entry("t", filled.results[0].handle);
  swap.add_entry("t", entry(200, 2));
  adrv.submit(std::move(swap));
  EXPECT_TRUE(adrv.reap().ok);
  EXPECT_EQ(sw->table("t").entry_count(), 8u);
}

TEST_F(AsyncDriverFixture, PipelineDepthGatesTheRing) {
  drv->memoize("t", "set_out");
  const auto h1 = drv->add_entry("t", entry(1, 1));
  const auto h2 = drv->add_entry("t", entry(2, 1));

  auto mk = [&](sim::EntryHandle h) {
    BatchBuilder b;
    for (int i = 0; i < 8; ++i) b.modify_entry("t", h, "set_out", {1});
    return b;
  };

  // Depth 1: batch 2's prep cannot start until batch 1 completed.
  {
    AsyncDriverOptions opts;
    opts.pipeline_depth = 1;
    AsyncDriver adrv(*drv, opts);
    adrv.submit(mk(h1));
    adrv.submit(mk(h2));
    const auto c1 = adrv.reap();
    const auto c2 = adrv.reap();
    EXPECT_GE(c2.prep_start, c1.completed);
  }
  // Depth 2: batch 2 preps while batch 1's DMA is on the wire.
  {
    AsyncDriverOptions opts;
    opts.pipeline_depth = 2;
    AsyncDriver adrv(*drv, opts);
    adrv.submit(mk(h1));
    adrv.submit(mk(h2));
    const auto c1 = adrv.reap();
    const auto c2 = adrv.reap();
    EXPECT_LT(c2.prep_start, c1.completed);
    EXPECT_EQ(c2.prep_start, c1.dma_start);  // prep chains on the driver thread
    // The wire itself stays serialized.
    EXPECT_GE(c2.completed - c2.dma_start, 0);
    EXPECT_GE(c2.completed, c1.completed);
  }
}

TEST_F(AsyncDriverFixture, TryReapOnlyAfterCompletionEvent) {
  drv->memoize("t", "set_out");
  AsyncDriver adrv(*drv);
  BatchBuilder b;
  b.add_entry("t", entry(1, 1));
  adrv.submit(std::move(b));
  EXPECT_FALSE(adrv.try_reap().has_value());
  EXPECT_EQ(adrv.in_flight(), 1u);
  loop.run();
  ASSERT_TRUE(adrv.ready());
  const auto c = adrv.try_reap();
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->ok);
  EXPECT_EQ(adrv.in_flight(), 0u);
}

TEST_F(AsyncDriverFixture, DegradeModeAppliesPerOpWithoutAtomicity) {
  DriverOptions dopts;
  dopts.enable_batching = false;
  Driver plain(*sw, dopts);
  plain.memoize("t", "set_out");
  const auto h = plain.add_entry("t", entry(9, 9));
  plain.delete_entry("t", h);  // stale
  const auto count_before = sw->table("t").entry_count();

  AsyncDriver adrv(plain);
  const auto& costs = plain.costs();
  BatchBuilder b;
  b.add_entry("t", entry(1, 1));
  b.modify_entry("t", h, "set_out", {2});  // fails alone
  b.add_entry("t", entry(2, 2));
  const Time t0 = loop.now();
  adrv.submit(std::move(b));
  const auto c = adrv.reap();

  // One full transfer per op: full solo prep serialized on the driver
  // thread, each with its own round trip (which overlaps the next op's
  // prep), no coalescing discount, no atomicity.
  EXPECT_EQ(c.completed - t0,
            2 * (costs.table_add(true) - costs.pcie_rtt) +
                (costs.table_mod(true) - costs.pcie_rtt) + costs.pcie_rtt);
  EXPECT_FALSE(c.ok);
  EXPECT_TRUE(c.results[0].ok);
  EXPECT_FALSE(c.results[1].ok);
  EXPECT_TRUE(c.results[2].ok);
  EXPECT_EQ(sw->table("t").entry_count(), count_before + 2);
}

TEST_F(AsyncDriverFixture, AsyncMatchesSyncFinalState) {
  // The same logical op stream through the sync driver and through async
  // batches must leave identical dataplane state.
  auto run_ops = [](sim::Switch& target, bool async) {
    Driver d(target);
    d.memoize("t", "set_out");
    std::vector<sim::EntryHandle> handles;
    if (async) {
      AsyncDriver a(d);
      BatchBuilder b1;
      for (int i = 0; i < 4; ++i) b1.add_entry("t", entry(i, 1));
      b1.write_register("r", 3, 7);
      a.submit(std::move(b1));
      const auto c1 = a.reap();
      for (const auto& r : c1.results) {
        if (r.kind == AsyncOp::Kind::kAdd) handles.push_back(r.handle);
      }
      BatchBuilder b2;
      b2.modify_entry("t", handles[1], "set_out", {5});
      b2.delete_entry("t", handles[3]);
      b2.set_default("t", "drop_it", {});
      a.submit(std::move(b2));
      EXPECT_TRUE(a.reap().ok);
    } else {
      for (int i = 0; i < 4; ++i) {
        handles.push_back(d.add_entry("t", entry(i, 1)));
      }
      d.write_register("r", 3, 7);
      d.modify_entry("t", handles[1], "set_out", {5});
      d.delete_entry("t", handles[3]);
      d.set_default("t", "drop_it", {});
    }
    return handles;
  };

  sim::EventLoop loop_sync, loop_async;
  sim::Switch sw_sync(loop_sync, prog), sw_async(loop_async, prog);
  const auto hs = run_ops(sw_sync, false);
  const auto ha = run_ops(sw_async, true);
  ASSERT_EQ(hs, ha);  // same allocation order => same handles

  EXPECT_EQ(sw_sync.table("t").entry_count(), sw_async.table("t").entry_count());
  for (const auto h : {hs[0], hs[1], hs[2]}) {
    const auto& es = sw_sync.table("t").entry(h);
    const auto& ea = sw_async.table("t").entry(h);
    EXPECT_EQ(es.action, ea.action);
    EXPECT_EQ(es.action_args, ea.action_args);
    EXPECT_EQ(es.key, ea.key);
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sw_sync.registers().read("r", i),
              sw_async.registers().read("r", i));
  }
}

TEST_F(AsyncDriverFixture, AgentAsyncPushMatchesSyncDialogueEffects) {
  // Same program, same reaction, sync vs async push: the user-visible table
  // state after each dialogue run must match.
  const char* kProg = R"P4R(
header_type h_t { fields { k : 32; } }
header h_t h;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt { reads { h.k : exact; } actions { fwd; } size : 64; }
control ingress { apply(mt); }
control egress { }
reaction rx(ing h.k) { }
)P4R";

  auto run = [&](bool async_push) {
    auto artifacts = compile::compile_source(kProg);
    sim::EventLoop l;
    sim::Switch s(l, artifacts.prog);
    Driver d(s);
    agent::AgentOptions aopts;
    aopts.async_push = async_push;
    agent::Agent ag(d, artifacts, aopts);
    std::vector<agent::UserEntryId> ids;
    ag.run_prologue([&](agent::ReactionContext& ctx) {
      for (int i = 0; i < 6; ++i) {
        p4::EntrySpec spec;
        spec.key = {{static_cast<std::uint64_t>(i), ~std::uint64_t{0}}};
        spec.action = "fwd";
        spec.action_args = {1};
        ids.push_back(ctx.add_entry("mt", spec));
      }
    });
    std::uint64_t round = 0;
    ag.set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
      ++round;
      // ids[0] is deleted in round 3; mod only the surviving tail.
      ctx.mod_entry("mt", ids[1 + round % (ids.size() - 1)], "fwd", {round});
      if (round == 3) ctx.del_entry("mt", ids[0]);
      if (round == 5) {
        p4::EntrySpec spec;
        spec.key = {{99, ~std::uint64_t{0}}};
        spec.action = "fwd";
        spec.action_args = {9};
        ids.push_back(ctx.add_entry("mt", spec));
      }
    });
    ag.run_dialogue(8);
    ag.drain_pending_pushes();
    // Canonical table text (default action + entries sorted by handle).
    std::string out;
    s.table("mt").write_snapshot(out);
    return out;
  };

  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace mantis::driver
