// Robustness: malformed and adversarial inputs must produce UserError
// diagnostics — never crashes, never other exception types — across the
// frontend, the compiler, and the reaction interpreter.
#include <gtest/gtest.h>

#include "compile/compiler.hpp"
#include "helpers.hpp"
#include "p4r/sema.hpp"
#include "util/rng.hpp"

namespace mantis::test {
namespace {

/// Runs the frontend+compiler; the only acceptable outcomes are success or
/// UserError.
void expect_graceful(const std::string& source) {
  try {
    compile::compile_source(source);
  } catch (const UserError&) {
    // fine: a diagnostic
  } catch (const std::exception& e) {
    FAIL() << "non-diagnostic exception " << typeid(e).name() << ": "
           << e.what() << "\nsource:\n"
           << source;
  }
}

TEST(Robustness, TruncatedPrograms) {
  const std::string full = figure1_style_source();
  // Cut the program at many byte offsets; every prefix must be handled.
  for (std::size_t cut = 0; cut < full.size(); cut += 37) {
    expect_graceful(full.substr(0, cut));
  }
}

TEST(Robustness, TokenDeletionFuzz) {
  const std::string full = figure1_style_source();
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    // Delete a random slice.
    const std::size_t a = rng.uniform(full.size());
    const std::size_t len = 1 + rng.uniform(40);
    std::string mutated = full;
    mutated.erase(a, len);
    expect_graceful(mutated);
  }
}

TEST(Robustness, RandomCharacterCorruption) {
  const std::string full = figure1_style_source();
  const std::string charset = "{}();:,.${}<>=+-*/ abz019_\"";
  Rng rng(78);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = full;
    for (int k = 0; k < 5; ++k) {
      mutated[rng.uniform(mutated.size())] =
          charset[rng.uniform(charset.size())];
    }
    expect_graceful(mutated);
  }
}

TEST(Robustness, ReactionBodyFuzz) {
  const char* prefix = R"(
header_type h_t { fields { a : 32; } }
header h_t h;
control ingress { }
control egress { }
reaction rx(ing h.a) {
)";
  const std::string pieces[] = {
      "int x = 0;", "x += h_a;",       "for (;;) { break; }",
      "${v}",       "= 1;",            "while (x < 3) ++x;",
      "if (",       "x)",              "{ }",
      "log(x);",    "t.addEntry(\"a\"", ");",
      "} else {",   "return;",          "int a[4]; a[x] = 1;",
  };
  Rng rng(79);
  for (int trial = 0; trial < 80; ++trial) {
    std::string body;
    const int n = 1 + static_cast<int>(rng.uniform(8));
    for (int i = 0; i < n; ++i) {
      body += pieces[rng.uniform(std::size(pieces))];
      body += "\n";
    }
    expect_graceful(std::string(prefix) + body + "\n}\n");
  }
}

TEST(Robustness, InterpretedRuntimeFaultsSurfaceAsUserError) {
  // Compile-clean programs whose reactions fault at runtime.
  const char* bodies[] = {
      "int a[2]; ${out} = a[h_a + 5];",  // index out of range (h_a polls 0)
      "${out} = 10 / h_a;",          // div by zero when h_a == 0
      "while (h_a == 0) { }",        // runaway when h_a == 0
  };
  for (const char* body : bodies) {
    Stack stack(std::string(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value out { width : 16; init : 0; }
action use() { add(h.a, h.a, ${out}); }
table t { actions { use; } default_action : use; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(ing h.a) {
)") + body + "\n}\n");
    stack.agent->run_prologue();
    // h_a polls as 0 (no packets) -> each body faults.
    EXPECT_THROW(stack.agent->dialogue_iteration(), UserError) << body;
  }
}

TEST(Robustness, AgentBreakdownSumsToIteration) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->dialogue_iteration();
  const auto& bd = stack.agent->last_breakdown();
  EXPECT_GT(bd.mv_flip, 0);
  EXPECT_GT(bd.measure_and_react, 0);
  EXPECT_GT(bd.update, 0);
  EXPECT_DOUBLE_EQ(static_cast<double>(bd.total()),
                   stack.agent->iteration_latencies().values().back());
}

}  // namespace
}  // namespace mantis::test
