#include "sim/event_loop.hpp"

namespace mantis::sim {

thread_local EventLoop::ShardFrame* EventLoop::tls_frame_ = nullptr;

telemetry::Telemetry& EventLoop::telemetry() {
  if (!telemetry_) {
    telemetry_ = std::make_unique<mantis::telemetry::Telemetry>();
    // now() (not now_): trace events emitted from worker threads must read
    // the shard-local clock of the running event.
    telemetry_->tracer().set_clock([this] { return now(); });
    prof_ = &telemetry_->prof();
  }
  return *telemetry_;
}

std::uint64_t EventLoop::next_seq(int src) {
  const auto idx = static_cast<std::size_t>(src + 1);
  if (idx >= seq_by_src_.size()) seq_by_src_.resize(idx + 1, 0);
  return seq_by_src_[idx]++;
}

void EventLoop::ensure_tags(int count) {
  expects(count >= 0, "EventLoop::ensure_tags: negative count");
  const auto need = static_cast<std::size_t>(count) + 1;
  if (seq_by_src_.size() < need) seq_by_src_.resize(need, 0);
}

std::uint64_t* EventLoop::seq_counter(int tag) {
  const auto idx = static_cast<std::size_t>(tag + 1);
  expects(tag >= kControlShard && idx < seq_by_src_.size(),
          "EventLoop::seq_counter: tag not registered");
  return &seq_by_src_[idx];
}

void EventLoop::schedule_at(Time t, Callback cb) {
  ShardFrame* f = tls_frame_;
  const int tag = (f != nullptr && f->loop == this) ? f->shard : exec_tag_;
  schedule_for(tag, t, std::move(cb));
}

void EventLoop::schedule_for(int dst, Time t, Callback cb) {
  expects(static_cast<bool>(cb), "EventLoop::schedule_for: empty callback");
  expects(dst >= kControlShard, "EventLoop::schedule_for: bad shard tag");
  ShardFrame* f = tls_frame_;
  if (f != nullptr && f->loop == this) {
    // Worker context: route into the shard's local queue when the event
    // stays on this shard inside the round horizon; otherwise park it in
    // the outbox for barrier reinsertion. Cross-shard events inside the
    // horizon would violate conservative lookahead — that is a modeling
    // bug (a cross-shard interaction faster than the minimum link delay).
    expects(t >= f->now, "EventLoop::schedule_for: time in the past (shard)");
    expects(dst != kControlShard,
            "EventLoop::schedule_for: shard context may not schedule "
            "control events");
    Event ev{t, dst, f->shard, f->seq_base[f->shard]++, std::move(cb)};
    if (dst == f->shard && t < f->round_end) {
      f->local->push(std::move(ev));
#if MANTIS_TELEMETRY_ENABLED
      if (prof_ != nullptr && prof_->enabled()) prof_->count_local_push();
#endif
    } else {
      expects(dst == f->shard || t >= f->round_end,
              "EventLoop::schedule_for: cross-shard event inside the "
              "lookahead horizon");
      f->outbox->push_back(std::move(ev));
#if MANTIS_TELEMETRY_ENABLED
      if (prof_ != nullptr && prof_->enabled()) prof_->count_outbox_push();
#endif
    }
    return;
  }
  expects(t >= now_, "EventLoop::schedule_at: time in the past");
  const int src = exec_tag_;
  expects(src == kControlShard || dst != kControlShard,
          "EventLoop::schedule_for: shard context may not schedule control "
          "events");
  queue_.push(Event{t, dst, src, next_seq(src), std::move(cb)});
#if MANTIS_TELEMETRY_ENABLED
  if (prof_ != nullptr && prof_->enabled()) {
    prof_->count_heap_push(queue_.size());
  }
#endif
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // Move out before running so the callback may schedule more events. The
  // old top()+pop() copied the whole event — capture, packet and all —
  // once per dispatch; pop_top moves it.
  Event ev = queue_.pop_top();
  ensures(ev.t >= now_, "EventLoop: time went backwards");
  now_ = ev.t;
  // Sequential execution of a tagged event runs in that shard's context:
  // its schedules inherit the tag, exactly as a parallel worker would
  // stamp them — keeping the canonical keys engine-independent.
  const int prev = exec_tag_;
  exec_tag_ = ev.dst;
#if MANTIS_TELEMETRY_ENABLED
  if (prof_ != nullptr && prof_->enabled()) prof_->count_heap_pop();
  {
    // Wall-clock + allocation attribution only: never reads or writes the
    // virtual clock, so event ordering is untouched (determinism contract).
    telemetry::prof::EventScope prof_scope(prof_, ev.dst);
    ev.cb();
  }
#else
  ev.cb();
#endif
  exec_tag_ = prev;
  return true;
}

std::size_t EventLoop::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void EventLoop::run_until(Time t) {
  expects(t >= now_, "EventLoop::run_until: time in the past");
  while (!queue_.empty() && queue_.top().t <= t) step();
  now_ = t;
}

void EventLoop::advance_now(Time t) {
  expects(t >= now_, "EventLoop::advance_now: time in the past");
  expects(queue_.empty() || queue_.top().t >= t,
          "EventLoop::advance_now: pending earlier events");
  now_ = t;
}

Time EventLoop::next_time() const {
  expects(!queue_.empty(), "EventLoop::next_time: empty queue");
  return queue_.top().t;
}

int EventLoop::next_dst() const {
  expects(!queue_.empty(), "EventLoop::next_dst: empty queue");
  return queue_.top().dst;
}

Time EventLoop::extract_until(Time limit, std::vector<Event>& out) {
  [[maybe_unused]] const std::size_t before = out.size();
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.t >= limit) break;
    if (top.dst == kControlShard) {
      // Control events run inline at barriers. Because control sorts first
      // among same-t ties, everything already extracted is strictly
      // earlier than the lowered horizon.
      limit = top.t;
      break;
    }
    out.push_back(queue_.pop_top());
  }
#if MANTIS_TELEMETRY_ENABLED
  if (prof_ != nullptr && prof_->enabled() && out.size() > before) {
    prof_->count_heap_pop(out.size() - before);
  }
#endif
  return limit;
}

void EventLoop::reinsert(Event ev) {
  expects(ev.t >= now_, "EventLoop::reinsert: time in the past");
  queue_.push(std::move(ev));
#if MANTIS_TELEMETRY_ENABLED
  if (prof_ != nullptr && prof_->enabled()) {
    prof_->count_heap_push(queue_.size());
  }
#endif
}

}  // namespace mantis::sim
