// The control-plane driver: the API the Mantis agent (and legacy control
// planes) use to touch the ASIC. Wraps the simulated switch's raw surface
// with the latency model, the serialized channel, request batching, and the
// paper's prologue-time memoization of repeated operations (§6–7).
//
// Two calling styles:
//  * Synchronous (the Mantis agent): the call advances virtual time to the
//    op's completion — packets and other actors keep running in between —
//    then returns the result. This models a CPU thread blocked on the driver.
//  * Asynchronous (legacy clients): submit with a completion callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "driver/channel.hpp"
#include "driver/cost_model.hpp"
#include "sim/switch.hpp"

namespace mantis::driver {

struct DriverOptions {
  CostModel costs;
  bool enable_memoization = true;  ///< ablation: always-cold when false
  bool enable_batching = true;     ///< ablation: batches degrade to single ops
};

class Driver {
 public:
  Driver(sim::Switch& sw, DriverOptions opts = {});

  sim::Switch& target() { return *sw_; }
  const CostModel& costs() const { return opts_.costs; }
  Channel& channel() { return channel_; }

  // ---------- synchronous API (Mantis agent) ----------

  /// Installs an entry; returns its handle. Virtual time advances to
  /// completion.
  sim::EntryHandle add_entry(const std::string& table, const p4::EntrySpec& spec);

  void modify_entry(const std::string& table, sim::EntryHandle h,
                    const std::string& action, std::vector<std::uint64_t> args);

  void delete_entry(const std::string& table, sim::EntryHandle h);

  void set_default(const std::string& table, const std::string& action,
                   std::vector<std::uint64_t> args);

  /// Reads one register cell.
  std::uint64_t read_register(const std::string& reg, std::uint32_t index);

  /// Reads a contiguous range [first, last] in one DMA (cheap per byte).
  std::vector<std::uint64_t> read_register_range(const std::string& reg,
                                                 std::uint32_t first,
                                                 std::uint32_t last);

  /// Reads a set of scattered packed words (the field-argument path: one
  /// PCIe word read per packed register). Returns values in request order.
  struct WordRef {
    std::string reg;
    std::uint32_t index = 0;
  };
  std::vector<std::uint64_t> read_packed_words(const std::vector<WordRef>& words);

  void write_register(const std::string& reg, std::uint32_t index,
                      std::uint64_t value);

  /// Reads a P4 counter cell (same latency class as a register word).
  std::uint64_t read_counter(const std::string& counter, std::uint32_t index);

  // ---------- batched synchronous table updates ----------

  /// A group of table mutations submitted as one channel occupancy (batch
  /// overhead amortized). Mutations all apply at the batch completion
  /// instant. Used for the prepare and mirror steps of the update protocol.
  class Batch {
   public:
    void add(std::string table, p4::EntrySpec spec);
    void modify(std::string table, sim::EntryHandle h, std::string action,
                std::vector<std::uint64_t> args);
    void erase(std::string table, sim::EntryHandle h);
    bool empty() const { return ops_.empty(); }
    std::size_t size() const { return ops_.size(); }

   private:
    friend class Driver;
    struct Op {
      enum class Kind { kAdd, kMod, kDel } kind;
      std::string table;
      p4::EntrySpec spec;           // kAdd
      sim::EntryHandle handle = 0;  // kMod/kDel
      std::string action;           // kMod
      std::vector<std::uint64_t> args;
    };
    std::vector<Op> ops_;
  };

  /// Executes the batch; returns handles for the adds, in order.
  std::vector<sim::EntryHandle> run_batch(Batch batch);

  // ---------- asynchronous API (legacy control planes) ----------

  /// Submits a table modification; `done(latency)` fires at completion with
  /// the op's total latency including queueing (Fig 12's measured quantity).
  void async_modify_entry(const std::string& table, sim::EntryHandle h,
                          const std::string& action,
                          std::vector<std::uint64_t> args,
                          std::function<void(Duration)> done);

  /// Submits a register range read; `done(values, latency)` fires at
  /// completion. Used by clients that live on the event loop (a synchronous
  /// read from inside an event callback would nest run_until and distort
  /// other actors' timing).
  void async_read_register_range(
      const std::string& reg, std::uint32_t first, std::uint32_t last,
      std::function<void(std::vector<std::uint64_t>, Duration)> done);

  // ---------- memoization ----------

  /// Pre-warms the driver metadata for a (table, action) pair so the first
  /// dialogue-time touch is already cheap. Called from the agent prologue.
  void memoize(const std::string& table, const std::string& action);

  std::uint64_t sync_ops() const { return sync_ops_; }

 private:
  /// The batched async runtime (driver/async) shares the memo table, cost
  /// model, and channel so batched and solo ops see one driver state.
  friend class AsyncDriver;

  sim::Switch* sw_;
  DriverOptions opts_;
  Channel channel_;
  std::unordered_set<std::string> memo_;
  std::uint64_t sync_ops_ = 0;

  // Cached telemetry sinks (owned by the loop's registry / bundle).
  telemetry::Counter* sync_ops_ctr_;
  telemetry::Histogram* legacy_latency_hist_;
  telemetry::ProvenanceContext* prov_;

  bool memoized(const std::string& table, const std::string& action);
  /// Submits a synchronous op: occupies the channel, runs the loop to the
  /// completion instant, performs `effect` there, and returns. `op` (a
  /// static string literal) and `detail` feed the provenance layer.
  void sync_submit(Duration cost, const char* op, const std::string& detail,
                   const std::function<void()>& effect);
};

}  // namespace mantis::driver
