#include "sim/action_exec.hpp"

#include "util/bits.hpp"

namespace mantis::sim {

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : bytes) {
    crc ^= b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> bytes, std::uint16_t seed) {
  std::uint16_t crc = seed;
  for (const std::uint8_t b : bytes) {
    crc = static_cast<std::uint16_t>(crc ^ b);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint16_t>((crc >> 1) ^ (0xA001u & (~(crc & 1u) + 1u)));
    }
  }
  return crc;
}

namespace {

/// Serializes the field-list values (big-endian per field, whole bytes) so
/// hash results are stable across field widths.
std::vector<std::uint8_t> serialize_fields(const p4::Program& prog,
                                           const p4::FieldListDecl& fl,
                                           const Packet& pkt) {
  std::vector<std::uint8_t> bytes;
  for (const auto& entry : fl.fields) {
    ensures(!entry.is_malleable(),
            "serialize_fields: malleable survived compilation in " + fl.name);
    const auto f = entry.field;
    const auto width = prog.fields.width(f);
    const auto nbytes = bits_to_bytes(width);
    const std::uint64_t v = pkt.get(f);
    for (std::uint64_t i = nbytes; i-- > 0;) {
      bytes.push_back(static_cast<std::uint8_t>((v >> (i * 8)) & 0xff));
    }
  }
  return bytes;
}

}  // namespace

std::uint64_t compute_hash(const p4::Program& prog, const p4::HashCalcDecl& calc,
                           const Packet& pkt) {
  const auto* fl = prog.find_field_list(calc.field_list);
  ensures(fl != nullptr, "compute_hash: missing field list " + calc.field_list);
  const auto bytes = serialize_fields(prog, *fl, pkt);

  std::uint64_t h = 0;
  if (calc.algorithm == "crc32") {
    h = crc32(bytes);
  } else if (calc.algorithm == "crc16") {
    h = crc16(bytes);
  } else if (calc.algorithm == "identity") {
    for (const auto b : bytes) h = (h << 8) | b;
  } else if (calc.algorithm == "xor_fold") {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      acc ^= static_cast<std::uint64_t>(bytes[i]) << ((i % 8) * 8);
    }
    h = acc;
  } else {
    throw UserError("unknown hash algorithm: " + calc.algorithm);
  }
  return truncate_to_width(h, calc.output_width);
}

std::uint64_t ActionExecutor::eval(const p4::Operand& o,
                                   std::span<const std::uint64_t> args,
                                   const Packet& pkt) const {
  switch (o.kind) {
    case p4::OperandKind::kField: return pkt.get(o.field);
    case p4::OperandKind::kConst: return o.value;
    case p4::OperandKind::kParam:
      expects(o.param < args.size(), "ActionExecutor: missing runtime arg");
      return args[o.param];
    case p4::OperandKind::kMbl:
      throw InvariantError("ActionExecutor: unresolved malleable ${" + o.mbl + "}");
  }
  return 0;
}

void ActionExecutor::execute(const p4::ActionDecl& action,
                             std::span<const std::uint64_t> args, Packet& pkt) {
  if (args.size() != action.params.size()) [[unlikely]] {
    // Concat only on the throw path; this guard runs once per table apply.
    throw PreconditionError("ActionExecutor: arg count mismatch for " +
                            action.name);
  }
  for (const auto& ins : action.body) {
    auto dst_field = [&]() -> p4::FieldId { return ins.args[0].field; };
    auto dst_width = [&]() -> p4::Width {
      return prog_->fields.width(ins.args[0].field);
    };
    switch (ins.op) {
      case p4::PrimOp::kModifyField:
        pkt.set(dst_field(), eval(ins.args[1], args, pkt), dst_width());
        break;
      case p4::PrimOp::kAdd:
        pkt.set(dst_field(),
                eval(ins.args[1], args, pkt) + eval(ins.args[2], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kSubtract:
        pkt.set(dst_field(),
                eval(ins.args[1], args, pkt) - eval(ins.args[2], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kAddToField:
        pkt.set(dst_field(), pkt.get(dst_field()) + eval(ins.args[1], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kSubtractFromField:
        pkt.set(dst_field(), pkt.get(dst_field()) - eval(ins.args[1], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kBitAnd:
        pkt.set(dst_field(),
                eval(ins.args[1], args, pkt) & eval(ins.args[2], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kBitOr:
        pkt.set(dst_field(),
                eval(ins.args[1], args, pkt) | eval(ins.args[2], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kBitXor:
        pkt.set(dst_field(),
                eval(ins.args[1], args, pkt) ^ eval(ins.args[2], args, pkt),
                dst_width());
        break;
      case p4::PrimOp::kShiftLeft: {
        const auto shift = eval(ins.args[2], args, pkt) & 63;
        pkt.set(dst_field(), eval(ins.args[1], args, pkt) << shift, dst_width());
        break;
      }
      case p4::PrimOp::kShiftRight: {
        const auto shift = eval(ins.args[2], args, pkt) & 63;
        pkt.set(dst_field(), eval(ins.args[1], args, pkt) >> shift, dst_width());
        break;
      }
      case p4::PrimOp::kRegisterRead: {
        const auto index =
            static_cast<std::uint32_t>(eval(ins.args[1], args, pkt));
        pkt.set(dst_field(), regs_->read(ins.object, index), dst_width());
        break;
      }
      case p4::PrimOp::kRegisterWrite: {
        const auto index =
            static_cast<std::uint32_t>(eval(ins.args[0], args, pkt));
        regs_->write(ins.object, index, eval(ins.args[1], args, pkt));
        break;
      }
      case p4::PrimOp::kCount: {
        const auto index =
            static_cast<std::uint32_t>(eval(ins.args[0], args, pkt));
        regs_->count(ins.object, index);
        break;
      }
      case p4::PrimOp::kModifyFieldWithHash: {
        const auto* calc = prog_->find_hash_calc(ins.object);
        ensures(calc != nullptr, "execute: unknown hash calc " + ins.object);
        const std::uint64_t base = eval(ins.args[1], args, pkt);
        const std::uint64_t size = eval(ins.args[2], args, pkt);
        expects(size > 0, "modify_field_with_hash_based_offset: size == 0");
        const std::uint64_t h = compute_hash(*prog_, *calc, pkt);
        pkt.set(dst_field(), base + (h % size), dst_width());
        break;
      }
      case p4::PrimOp::kDrop:
        pkt.mark_dropped();
        break;
      case p4::PrimOp::kNoOp:
        break;
    }
  }
}

bool eval_condition(const p4::Program& /*prog*/, const p4::CondExpr& cond,
                    const Packet& pkt) {
  auto value_of = [&](const p4::Operand& o) -> std::uint64_t {
    switch (o.kind) {
      case p4::OperandKind::kField: return pkt.get(o.field);
      case p4::OperandKind::kConst: return o.value;
      case p4::OperandKind::kParam:
      case p4::OperandKind::kMbl:
        throw PreconditionError("eval_condition: params/malleables not allowed here");
    }
    return 0;
  };
  const std::uint64_t a = value_of(cond.lhs);
  const std::uint64_t b = value_of(cond.rhs);
  switch (cond.op) {
    case p4::RelOp::kEq: return a == b;
    case p4::RelOp::kNe: return a != b;
    case p4::RelOp::kLt: return a < b;
    case p4::RelOp::kLe: return a <= b;
    case p4::RelOp::kGt: return a > b;
    case p4::RelOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace mantis::sim
