// AsyncDriver: the batched asynchronous driver runtime.
//
// The synchronous Driver models a CPU thread blocked on each PCIe op; a
// dialogue's push phase therefore pays (queueing + full op latency) per
// update. This runtime instead coalesces one epoch's control-plane ops into
// a single DMA-modeled transfer and overlaps transfers with agent compute:
//
//  * BatchBuilder collects table add/mod/del, set_default, and register
//    ops; submit() turns them into one transfer whose cost splits into
//    driver-thread *descriptor prep* (batch_overhead + Σ batch_prep(solo))
//    and *wire/DMA occupancy* (one shared pcie_rtt + Σ batch_dma(solo)).
//    Both per-op terms are heavily discounted against the solo cost — the
//    driver walks its metadata once per batch and the DMA engine streams
//    ops back-to-back behind one round trip (CostModel calibration).
//  * Pipelining: prep runs on the (single) driver thread, serialized by
//    prep_free_; the DMA is reserved on the Channel at the future instant
//    prep finishes (Channel::submit_at), so batch N+1's prep overlaps
//    batch N's DMA. At most `pipeline_depth` transfers are in flight: batch
//    i's prep additionally waits for batch i-depth's completion (a DMA
//    descriptor-ring slot must free up).
//  * Completions are *typed* and reaped strictly in submit order: per-op
//    status, entry handles for adds, cell values for reads. The whole
//    schedule is computed eagerly at submit() from channel arithmetic, so
//    completion times are known synchronously and identical under the
//    sequential and parallel fabric engines (driver events are
//    control-shard events; nothing here depends on worker scheduling).
//  * Atomicity: a batched transfer validates every op at the completion
//    instant before applying any (two-phase); a mid-batch error — a stale
//    entry handle, an unknown table, a full table — aborts the whole batch
//    with per-op diagnostics and no state change. With
//    DriverOptions::enable_batching=false the runtime degrades to one
//    transfer per op (the ablation path): no shared round trip, no
//    discounts, and no cross-op atomicity.
//
// Provenance: every op in a batch is stamped with the *submitting*
// reaction's id (SubmitOptions::reaction_id) via ScopedAttribution, so flow
// arcs and first-effect detection stay truthful even though the apply runs
// after — or entirely outside — the submitting reaction's frame.
//
// Completion events capture only the batch record and sinks owned by the
// loop's telemetry (never the AsyncDriver itself), so tearing down an
// AsyncDriver with batches still in flight is safe — the effects still
// apply at their completion instants, they just can't be reaped.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "driver/async/batch_builder.hpp"
#include "driver/async/completion.hpp"
#include "driver/driver.hpp"

namespace mantis::driver {

struct AsyncDriverOptions {
  /// Maximum transfers in flight (descriptor-ring depth). Batch i's prep
  /// waits for batch i-depth's completion; 1 = no overlap between batches.
  std::size_t pipeline_depth = 2;
};

/// Per-submit metadata.
struct SubmitOptions {
  std::uint64_t reaction_id = 0;  ///< provenance stamp for every op applied
  /// Span/flight-recorder label; must be a static string literal.
  const char* label = "driver.async.batch";
};

class AsyncDriver {
 public:
  explicit AsyncDriver(Driver& drv, AsyncDriverOptions opts = {});

  Driver& driver() { return *drv_; }
  std::size_t pipeline_depth() const { return opts_.pipeline_depth; }

  /// Schedules the batch (must be non-empty) and returns immediately; the
  /// caller keeps computing while prep and DMA proceed in virtual time.
  /// Effects apply at the completion instant, in builder order.
  BatchId submit(BatchBuilder batch, SubmitOptions sopts = {});

  /// Batches submitted but not yet reaped.
  std::size_t in_flight() const { return queue_.size(); }
  /// True when the oldest unreaped batch has already completed (its
  /// completion can be reaped without advancing virtual time).
  bool ready() const { return !queue_.empty() && queue_.front()->done; }
  /// Completion instant of a submitted batch — known at submit time; the
  /// schedule is deterministic channel arithmetic.
  Time completion_time(BatchId id) const;

  /// Reaps the oldest batch if it has completed; nullopt otherwise (or when
  /// nothing is in flight). Never advances virtual time.
  std::optional<BatchCompletion> try_reap();
  /// Reaps the oldest batch, advancing virtual time to its completion if
  /// needed (other actors keep running meanwhile). Expects one in flight.
  BatchCompletion reap();
  /// Drains every in-flight batch, in submit order.
  std::vector<BatchCompletion> reap_all();

  std::uint64_t batches_submitted() const { return completions_.size(); }

 private:
  struct InFlight {
    const char* label = "driver.async.batch";
    std::vector<AsyncOp> ops;
    BatchCompletion c;
    bool done = false;        ///< completion event has executed
    std::size_t applied = 0;  ///< degraded mode: per-op applies so far
  };

  /// Everything a completion event needs, all owned by objects that outlive
  /// the event (the Driver and the loop's telemetry) — captured by value so
  /// the events never dereference the AsyncDriver.
  struct Sinks {
    sim::Switch* sw = nullptr;
    telemetry::ProvenanceContext* prov = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* ops = nullptr;
    telemetry::Counter* aborted = nullptr;
    telemetry::Histogram* batch_ops = nullptr;
    telemetry::Histogram* batch_ns = nullptr;
  };

  /// Solo (synchronous) cost of one op; establishes memoization like the
  /// sync path — the driver metadata walk happens during prep.
  Duration solo_cost(const AsyncOp& op);
  /// Two-phase validate + apply of a whole batched transfer.
  static void finish_batched(const Sinks& s,
                             const std::shared_ptr<InFlight>& rec);
  /// Degraded (enable_batching=false) per-op apply; finalizes on last op.
  static void finish_single(const Sinks& s,
                            const std::shared_ptr<InFlight>& rec,
                            std::size_t i);
  static void finalize(const Sinks& s, const std::shared_ptr<InFlight>& rec,
                       Time now);

  Driver* drv_;
  AsyncDriverOptions opts_;
  Sinks sinks_;

  /// Driver-thread serialization point: when the prep of the most recently
  /// submitted batch finishes.
  Time prep_free_ = 0;
  /// Completion instant of every batch ever submitted, by id-1 (ring
  /// gating + completion_time lookups).
  std::vector<Time> completions_;
  /// Unreaped batches, submit order (== completion order).
  std::deque<std::shared_ptr<InFlight>> queue_;

  telemetry::Gauge* inflight_gauge_;
};

}  // namespace mantis::driver
