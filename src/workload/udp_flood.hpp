// Constant-rate UDP flood source (the paper's DPDK blaster, Fig 15).
#pragma once

#include <cstdint>

#include "sim/switch.hpp"
#include "util/rng.hpp"

namespace mantis::workload {

struct UdpFloodConfig {
  std::uint32_t src_ip = 0xdead0001;
  std::uint32_t dst_ip = 0;
  int in_port = 0;
  double rate_gbps = 25.0;
  std::uint32_t pkt_bytes = 1500;
  Time start_at = 0;
};

class UdpFloodSource {
 public:
  UdpFloodSource(sim::Switch& sw, UdpFloodConfig cfg);

  void start(Time until);
  void stop() { stopped_ = true; }

  std::uint64_t sent() const { return sent_; }
  Time first_packet_at() const { return first_packet_at_; }

 private:
  sim::Switch* sw_;
  UdpFloodConfig cfg_;
  bool stopped_ = false;
  std::uint64_t sent_ = 0;
  Time first_packet_at_ = -1;
  p4::FieldId f_src_, f_dst_, f_proto_;

  void emit(Time until);
};

}  // namespace mantis::workload
