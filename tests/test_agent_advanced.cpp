// Advanced agent scenarios: split init tables under a tight action budget,
// multiple reactions per program, egress-side measurement through the
// traffic manager, and error handling.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

// ---------------------------------------------------------------------------
// Overflow init tables (paper §5.1.1 "splitting the init table")
// ---------------------------------------------------------------------------

const char* kManyScalarsSrc = R"P4R(
header_type h_t { fields { x : 32; } }
header h_t h;
malleable value k1 { width : 32; init : 1; }
malleable value k2 { width : 32; init : 2; }
malleable value k3 { width : 32; init : 3; }
malleable value k4 { width : 32; init : 4; }
action bump() {
  add(h.x, ${k1}, ${k2});
  add(h.x, h.x, ${k3});
  add(h.x, h.x, ${k4});
}
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table t { actions { bump; } default_action : bump; size : 1; }
table o { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(t); apply(o); }
control egress { }
reaction rx() {
  ${k1} = ${k1} + 10;
  ${k4} = ${k4} + 100;
}
)P4R";

struct OverflowFixture {
  compile::Options copts;
  Stack stack;

  OverflowFixture()
      : copts([] {
          compile::Options o;
          o.rmt.max_action_bits = 70;  // forces >= 2 init tables
          return o;
        }()),
        stack(kManyScalarsSrc, {}, {}, {}, copts) {}
};

TEST(OverflowInit, SplitHappenedAndPrologueInstallsEntries) {
  OverflowFixture fx;
  ASSERT_GE(fx.stack.artifacts.bindings.init_tables.size(), 2u);
  fx.stack.agent->run_prologue();
  for (std::size_t k = 1; k < fx.stack.artifacts.bindings.init_tables.size(); ++k) {
    const auto& name = fx.stack.artifacts.bindings.init_tables[k].table;
    EXPECT_EQ(fx.stack.sw->table(name).entry_count(), 2u) << name;
  }
}

TEST(OverflowInit, ScalarCommitsSpanInitTablesAtomically) {
  OverflowFixture fx;
  fx.stack.agent->run_prologue();

  // Stream packets and check every packet's x == k1+k2+k3+k4 for a single
  // consistent scalar generation (all-old or all-new), even though the
  // scalars live in different init tables updated by separate driver ops.
  std::vector<std::uint64_t> seen;
  fx.stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
    seen.push_back(fx.stack.sw->factory().get(pkt, "h.x"));
  });
  const Time base = fx.stack.loop.now();
  for (int i = 0; i < 200; ++i) {
    fx.stack.loop.schedule_at(base + i * 500, [&fx] {
      fx.stack.sw->inject(fx.stack.sw->factory().make(), 0);
    });
  }
  fx.stack.agent->run_dialogue(4);
  fx.stack.loop.run();

  // Generations: iteration j has k1 = 1+10j, k4 = 4+100j -> sum = 10+110j.
  ASSERT_GT(seen.size(), 100u);
  for (const auto x : seen) {
    EXPECT_EQ((x - 10) % 110, 0u) << "torn scalar generation observed: " << x;
  }
  // Multiple generations were actually observed.
  std::set<std::uint64_t> distinct(seen.begin(), seen.end());
  EXPECT_GE(distinct.size(), 3u);
}

TEST(OverflowInit, ManagementScalarWriteAlsoLandsInOverflowTable) {
  OverflowFixture fx;
  fx.stack.agent->run_prologue();
  fx.stack.agent->set_scalar("k4", 77);
  std::uint64_t got = 0;
  fx.stack.sw->set_on_transmit([&](const sim::Packet& pkt, int, Time) {
    got = fx.stack.sw->factory().get(pkt, "h.x");
  });
  fx.stack.sw->inject(fx.stack.sw->factory().make(), 0);
  fx.stack.loop.run();
  EXPECT_EQ(got, 1u + 2 + 3 + 77);
}

// ---------------------------------------------------------------------------
// Multiple reactions, egress measurement
// ---------------------------------------------------------------------------

const char* kTwoReactionsSrc = R"P4R(
header_type h_t { fields { a : 16; b : 16; } }
header h_t h;
malleable value u { width : 16; init : 0; }
malleable value v { width : 16; init : 0; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table o { actions { fwd; } default_action : fwd(2); size : 1; }
control ingress { apply(o); }
control egress { }
reaction r1(ing h.a) { ${u} = h_a; }
reaction r2(egr h.b, egr standard_metadata.egress_port) {
  ${v} = h_b + standard_metadata_egress_port;
}
)P4R";

TEST(MultiReaction, BothRunPerIterationWithOwnParams) {
  Stack stack(kTwoReactionsSrc);
  stack.agent->run_prologue();
  auto pkt = stack.sw->factory().make();
  stack.sw->factory().set(pkt, "h.a", 33);
  stack.sw->factory().set(pkt, "h.b", 44);
  stack.sw->inject(std::move(pkt), 0);
  stack.loop.run();  // packet reaches egress; measurement registers written
  stack.agent->dialogue_iteration();
  EXPECT_EQ(stack.agent->scalar("u"), 33u);
  EXPECT_EQ(stack.agent->scalar("v"), 44u + 2u);  // b + egress port
}

TEST(MultiReaction, EgressParamsOnlyUpdateWhenPacketsReachEgress) {
  Stack stack(kTwoReactionsSrc);
  stack.agent->run_prologue();
  // Down the egress port: packets die in the TM, so egress measurement
  // registers never see them.
  stack.sw->set_port_up(2, false);
  auto pkt = stack.sw->factory().make();
  stack.sw->factory().set(pkt, "h.a", 5);
  stack.sw->factory().set(pkt, "h.b", 6);
  stack.sw->inject(std::move(pkt), 0);
  stack.loop.run();
  stack.agent->dialogue_iteration();
  EXPECT_EQ(stack.agent->scalar("u"), 5u);  // ingress side still measured
  EXPECT_EQ(stack.agent->scalar("v"), 0u);  // egress side never written
}

// ---------------------------------------------------------------------------
// Error handling
// ---------------------------------------------------------------------------

TEST(AgentErrors, DialogueBeforePrologueRejected) {
  Stack stack(kTwoReactionsSrc);
  EXPECT_THROW(stack.agent->dialogue_iteration(), PreconditionError);
}

TEST(AgentErrors, DoublePrologueRejected) {
  Stack stack(kTwoReactionsSrc);
  stack.agent->run_prologue();
  EXPECT_THROW(stack.agent->run_prologue(), PreconditionError);
}

TEST(AgentErrors, ReactionExceptionPropagatesWithContext) {
  Stack stack(kTwoReactionsSrc);
  stack.agent->set_native_reaction("r1", [](agent::ReactionContext& ctx) {
    ctx.arg("no_such_param");
  });
  stack.agent->run_prologue();
  EXPECT_THROW(stack.agent->dialogue_iteration(), UserError);
}

TEST(AgentErrors, UnknownTableInReactionRejected) {
  Stack stack(kTwoReactionsSrc);
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();
  p4::EntrySpec spec;
  spec.action = "fwd";
  EXPECT_THROW(ctx.add_entry("ghost", spec), UserError);
  EXPECT_THROW(ctx.entry_count("ghost"), UserError);
  EXPECT_THROW(ctx.del_entry("o", 999), UserError);
}

TEST(AgentErrors, InterpretedReactionErrorsCarryLocation) {
  // Division by zero inside a .p4r reaction surfaces as UserError with
  // line:col of the reaction body.
  Stack stack(R"P4R(
header_type h_t { fields { a : 16; } }
header h_t h;
control ingress { }
control egress { }
reaction bad() {
  int x = 1 / 0;
}
)P4R");
  stack.agent->run_prologue();
  try {
    stack.agent->dialogue_iteration();
    FAIL() << "expected UserError";
  } catch (const UserError& e) {
    EXPECT_NE(std::string(e.what()).find("division by zero"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("7:"), std::string::npos);  // line 7
  }
}

// ---------------------------------------------------------------------------
// Capacity: expanded entries respect the transformed table budget
// ---------------------------------------------------------------------------

TEST(AgentCapacity, MalleableTableFullSurfacesCleanly) {
  Stack stack(R"P4R(
header_type h_t { fields { k : 16; } }
header h_t h;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt { reads { h.k : exact; } actions { fwd; } size : 2; }
control ingress { apply(mt); }
control egress { }
reaction rx() { }
)P4R");
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();
  for (std::uint64_t i = 0; i < 2; ++i) {
    p4::EntrySpec spec;
    spec.key = {{i, kFull}};
    spec.action = "fwd";
    spec.action_args = {1};
    ctx.add_entry("mt", spec);  // 2 user entries * 2 vv copies == size 4
  }
  p4::EntrySpec extra;
  extra.key = {{9, kFull}};
  extra.action = "fwd";
  extra.action_args = {1};
  EXPECT_THROW(ctx.add_entry("mt", extra), UserError);
}

}  // namespace
}  // namespace mantis::test
