// Multi-switch differential mode for the fuzzing harness: each generated
// fabric scenario (seeded topology + traffic schedule + fault schedule) is
// run twice — once on the sequential event loop and once on the parallel
// engine — and every determinism surface is diffed byte-for-byte
// afterwards: metrics JSON, per-link-direction delivery/drop/occupancy
// stats, the fault injector's transition log, and the flight-recorder dump.
// Any mismatch is an equivalence bug in net::ParallelFabricEngine (or a
// missed shared-state race), the exact class of defect the tentpole's
// byte-identical contract exists to catch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace mantis::telemetry {
class MetricsRegistry;
}

namespace mantis::check {

/// A generated multi-switch scenario. Plain data; the same spec always
/// produces the same pair of executions.
struct FabricScenarioSpec {
  std::uint64_t seed = 1;  ///< fabric base seed (link drop processes)

  enum class Topo { kLeafSpine, kRing, kClos };
  Topo topo = Topo::kLeafSpine;
  int leaves = 2;     ///< leaf-spine only
  int spines = 2;     ///< leaf-spine only
  int switches = 4;   ///< ring only
  int clos_pods = 2;  ///< clos only: clos(P, 2, 2, 2P, 1)

  double ambient_loss = 0.0;
  Duration propagation = 200;

  /// Periodic link-local traffic: one period per direction class.
  Duration period_ab = 500;
  Duration period_ba = 700;

  struct Fault {
    int kind = 0;  ///< FaultSpec::Kind as int (0 down, 1 gray, 2 lat, 3 flap)
    std::size_t link = 0;
    int direction = -1;
    Time at = 0;
    Duration duration = 0;
    double loss = 1.0;
    Duration extra_latency = 0;
    Duration flap_period = 0;
  };
  std::vector<Fault> faults;

  /// Attach the INT subsystem (stamp/strip on every switch, sink exports
  /// into the shared collector) and, when probe_period > 0, the injected
  /// probe mesh — its report stream joins the diffed surfaces.
  bool int_enabled = false;
  Duration int_probe_period = 0;

  Time horizon = 50 * kMicrosecond;
  int threads = 4;  ///< parallel run's worker count

  /// One-line reproducible description ("topo=... seed=... faults=N ...").
  std::string summary() const;
};

/// Deterministically derives a scenario from `seed`.
FabricScenarioSpec generate_fabric_scenario(std::uint64_t seed);

struct FabricDiffResult {
  bool diverged = false;
  /// "<surface>: <first differing line pair>" entries, one per mismatched
  /// determinism surface.
  std::vector<std::string> divergences;
};

/// Runs `spec` on both engines and diffs the determinism surfaces.
/// `metrics`, when given, receives check.fabric.{runs,divergences} counters.
FabricDiffResult run_fabric_diff(const FabricScenarioSpec& spec,
                                 telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace mantis::check
