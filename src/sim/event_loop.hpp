// Discrete-event scheduler with a virtual nanosecond clock.
//
// Everything in the reproduction — packet arrivals, pipeline latencies, PCIe
// transactions, reaction CPU time, legacy control-plane clients — runs as
// events on one loop, so the interleaving of the Mantis agent with packet
// processing is deterministic and serializability becomes a testable
// property rather than a hope.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

namespace mantis::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// The stack-wide telemetry bundle (metrics + tracer). Lazily created;
  /// the tracer's clock is this loop's virtual clock. Everything attached
  /// to this loop (switch, driver, agent, legacy clients) records here.
  telemetry::Telemetry& telemetry();

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Ties run in scheduling
  /// order (FIFO), which the update-protocol proofs rely on.
  void schedule_at(Time t, Callback cb);

  /// Schedules `cb` `d` nanoseconds from now.
  void schedule_in(Duration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `max_events` executed.
  /// Returns the number executed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t);

  /// Advances the clock without running anything scheduled in between.
  /// Only legal when nothing earlier is pending — used by actors that model
  /// blocking work (e.g. a PCIe transaction occupying the CPU). Prefer
  /// schedule_in for anything that can interleave.
  void advance_now(Time t);

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
};

}  // namespace mantis::sim
