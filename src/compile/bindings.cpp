#include "compile/bindings.hpp"

#include "util/check.hpp"

namespace mantis::compile {

const std::string& ActionInfo::specialized_for(
    const std::vector<std::size_t>& alts) const {
  expects(alts.size() == dims.size(), "specialized_for: wrong choice arity");
  std::size_t index = 0;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    expects(alts[k] < dim_alts[k], "specialized_for: alt out of range");
    index = index * dim_alts[k] + alts[k];
  }
  ensures(index < specialized.size(), "specialized_for: bad combination index");
  return specialized[index];
}

const ActionInfo* TableInfo::find_action(const std::string& name) const {
  for (const auto& a : actions) {
    if (a.original == name) return &a;
  }
  return nullptr;
}

const TableInfo& Bindings::table(const std::string& name) const {
  auto it = tables.find(name);
  if (it == tables.end()) {
    throw UserError("unknown user table: " + name);
  }
  return it->second;
}

const ReactionInfo* Bindings::find_reaction(const std::string& name) const {
  for (const auto& r : reactions) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace mantis::compile
