#include "p4r/ast.hpp"

// The AST is plain data; out-of-line definitions are not currently needed.
// This translation unit anchors the header's inclusion in the build.
namespace mantis::p4r {}
