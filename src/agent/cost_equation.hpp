// The reaction latency cost model of paper §8.1:
//
//   F10b(1 tblMod) + sum_args F10a(arg) + C
//     + sum_tblMods 2*F10b(t) + 2*F10b(N_init - 1) + F10b(1 tblMod)
//
// where F10a/F10b are the measurement/update latency curves of Figs 10a/10b,
// C the reaction body's compute time, and N_init the number of init tables.
// The first line is serializable measurement + reaction logic (mv flip, arg
// polls, body); the second is serializable update (prepare+mirror for each
// table modification and overflow init table, plus the vv commit).
// bench_fig10_raw_latency validates the prediction against measured loops.
#pragma once

#include "compile/bindings.hpp"
#include "driver/cost_model.hpp"
#include "util/time.hpp"

namespace mantis::agent {

struct CostBreakdown {
  Duration mv_flip = 0;
  Duration measurement = 0;
  Duration reaction_compute = 0;
  Duration prepare_and_mirror = 0;
  Duration init_overflow = 0;
  Duration commit = 0;

  Duration total() const {
    return mv_flip + measurement + reaction_compute + prepare_and_mirror +
           init_overflow + commit;
  }
};

/// Predicts one dialogue iteration's latency for a reaction.
/// `table_entry_mods` is the number of concrete table entries the reaction
/// touches per iteration; `n_init_tables` counts all init tables (>= 1);
/// `dirty_init_overflow` how many overflow init tables change this iteration.
CostBreakdown predict_iteration(const driver::CostModel& costs,
                                const compile::ReactionInfo& rinfo,
                                Duration reaction_compute,
                                std::size_t table_entry_mods,
                                std::size_t n_init_tables,
                                std::size_t dirty_init_overflow = 0);

}  // namespace mantis::agent
