#include "apps/rl_dctcp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mantis::apps {

std::string rl_dctcp_p4r_source() {
  return R"P4R(
// Use case #4: RL-tuned DCTCP ECN marking threshold (paper 8.3.4).
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type rl_meta_t {
  fields {
    diff : 19;
    over : 1;
    b : 32;
  }
}
metadata rl_meta_t rl_meta;

// The DCTCP marking threshold (packets), reconfigured by the RL reaction.
malleable value ecn_thresh { width : 16; init : 64; }

action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
table route {
  reads { ipv4.dstAddr : exact; }
  actions { set_egress; }
  default_action : set_egress(1);
  size : 64;
}

// Egress: mark ECN when deq_qdepth >= threshold. RMT has no branch in
// actions, so compute the comparison arithmetically: diff wraps negative
// (bit 18 set) exactly when qdepth < threshold.
action ecn_mark() {
  subtract(rl_meta.diff, standard_metadata.deq_qdepth, ${ecn_thresh});
  shift_right(rl_meta.over, rl_meta.diff, 18);
  bit_xor(ipv4.ecn, rl_meta.over, 1);
}

// Egress byte counter: half of the reward's state.
register egr_bytes_r { width : 48; instance_count : 1; }

action count_egr_bytes() {
  register_read(rl_meta.b, egr_bytes_r, 0);
  add_to_field(rl_meta.b, standard_metadata.packet_length);
  register_write(egr_bytes_r, 0, rl_meta.b);
}

table ecn_stage {
  actions { ecn_mark; }
  default_action : ecn_mark;
  size : 1;
}
table egr_tally {
  actions { count_egr_bytes; }
  default_action : count_egr_bytes;
  size : 1;
}

control ingress {
  apply(route);
}
control egress {
  apply(ecn_stage);
  apply(egr_tally);
}

// Interpreted placeholder policy (the native reaction implements epsilon-
// greedy tabular Q-learning): proportional threshold adaptation.
reaction rl_react(reg egr_bytes_r[0:0], egr standard_metadata.deq_qdepth) {
  static uint64_t last_bytes = 0;
  uint64_t delivered = egr_bytes_r[0] - last_bytes;
  last_bytes = egr_bytes_r[0];
  uint64_t q = standard_metadata_deq_qdepth;
  uint64_t t = ${ecn_thresh};
  if (q > t * 2 && t > 4) {
    ${ecn_thresh} = t / 2;
  }
  if (q < t / 2 && delivered > 0 && t < 256) {
    ${ecn_thresh} = t * 2;
  }
}
)P4R";
}

int RlState::state_index(double util, std::uint64_t qdepth) const {
  const int ub = std::min(cfg.util_buckets - 1,
                          static_cast<int>(util * cfg.util_buckets));
  // Queue depth buckets are logarithmic: 0,1-2,3-6,7-14,...
  int qb = 0;
  std::uint64_t limit = 1;
  while (qb < cfg.qdepth_buckets - 1 && qdepth > limit) {
    limit = limit * 2 + 1;
    ++qb;
  }
  return ub * cfg.qdepth_buckets + qb;
}

agent::Agent::NativeFn make_rl_reaction(std::shared_ptr<RlState> state) {
  expects(state != nullptr, "make_rl_reaction: null state");
  expects(!state->cfg.thresholds.empty(), "make_rl_reaction: empty action space");
  return [state](agent::ReactionContext& ctx) {
    auto& st = *state;
    const auto& cfg = st.cfg;
    if (st.q.empty()) {
      st.q.assign(static_cast<std::size_t>(cfg.util_buckets * cfg.qdepth_buckets),
                  std::vector<double>(cfg.thresholds.size(), 0.0));
      st.rng = Rng(cfg.seed);
      st.last_step_at = ctx.now();
      st.last_bytes = static_cast<std::uint64_t>(ctx.arg("egr_bytes_r", 0));
      return;
    }
    if (cfg.step_interval > 0 && ctx.now() - st.last_step_at < cfg.step_interval) {
      return;
    }

    // Observe s_{i+1} and the reward r_i of the previous action.
    const auto bytes = static_cast<std::uint64_t>(ctx.arg("egr_bytes_r", 0));
    const auto qdepth =
        static_cast<std::uint64_t>(ctx.arg("standard_metadata_deq_qdepth"));
    const double interval_ns =
        std::max<double>(1.0, static_cast<double>(ctx.now() - st.last_step_at));
    const double gbps =
        static_cast<double>(bytes - st.last_bytes) * 8.0 / interval_ns;
    const double util = std::clamp(gbps / cfg.link_gbps, 0.0, 1.0);
    st.last_bytes = bytes;
    st.last_step_at = ctx.now();

    const int s_next = st.state_index(util, qdepth);
    const double reward =
        util - cfg.queue_penalty *
                   (static_cast<double>(qdepth) /
                    static_cast<double>(cfg.thresholds.back() * 2));

    // TD(0) update for the transition (s, a) -> s_next.
    if (st.last_state >= 0) {
      auto& row = st.q[static_cast<std::size_t>(st.last_state)];
      const double best_next =
          *std::max_element(st.q[static_cast<std::size_t>(s_next)].begin(),
                            st.q[static_cast<std::size_t>(s_next)].end());
      double& qsa = row[static_cast<std::size_t>(st.last_action)];
      qsa += cfg.alpha * (reward + cfg.gamma * best_next - qsa);
      st.cumulative_reward += reward;
      st.reward_history.push_back(reward);
      if (st.on_step) st.on_step(st.last_action, reward);
    }

    // epsilon-greedy action selection.
    int action;
    if (st.rng.chance(cfg.epsilon)) {
      action = static_cast<int>(st.rng.uniform(cfg.thresholds.size()));
    } else {
      const auto& row = st.q[static_cast<std::size_t>(s_next)];
      action = static_cast<int>(
          std::max_element(row.begin(), row.end()) - row.begin());
    }
    ctx.set("ecn_thresh", cfg.thresholds[static_cast<std::size_t>(action)]);
    st.last_state = s_next;
    st.last_action = action;
    ++st.steps;
  };
}

}  // namespace mantis::apps
