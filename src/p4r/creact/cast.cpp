#include "p4r/creact/cast.hpp"

// The reaction AST is plain data; this TU anchors the header in the build.
namespace mantis::p4r::creact {}
