#include "driver/channel.hpp"

#include "util/check.hpp"

namespace mantis::driver {

Channel::Channel(sim::EventLoop& loop) : loop_(&loop) {
  auto& tel = loop.telemetry();
  ops_ctr_ = &tel.metrics().counter("driver.channel.ops");
  telemetry::HistogramOptions occ;
  occ.first_bucket = 64;  // ns; channel ops span ~100ns..100us
  occupancy_hist_ = &tel.metrics().histogram("driver.channel.occupancy_ns", occ);
  queue_wait_hist_ = &tel.metrics().histogram("driver.channel.queue_wait_ns", occ);
  telemetry::HistogramOptions depth_opts;
  depth_opts.first_bucket = 1;  // ops in flight at submit: 0..pipeline depth
  depth_opts.buckets = 8;
  depth_hist_ = &tel.metrics().histogram("driver.channel.depth_at_submit",
                                         depth_opts);
  depth_gauge_ = &tel.metrics().gauge("driver.channel.depth");
  tracer_ = &tel.tracer();
  prof_ = &tel.prof();
  // Utilization snapshot for flight-recorder dumps (p4r_inspect channel).
  snapshot_provider_ = tel.recorder().add_snapshot_provider(
      "driver.channel", [this](std::string& out) {
        const Time now = loop_->now();
        // Integer per-mille keeps the rendering byte-deterministic.
        const std::uint64_t per_mille =
            now > 0 ? static_cast<std::uint64_t>(busy_time_) * 1000 /
                          static_cast<std::uint64_t>(now)
                    : 0;
        out += "ops=" + std::to_string(ops_) +
               " busy_ns=" + std::to_string(busy_time_) +
               " depth=" + std::to_string(depth_) +
               " free_at=" + std::to_string(free_at_) +
               " utilization_permille=" + std::to_string(per_mille) + "\n";
      });
}

Channel::~Channel() {
  loop_->telemetry().recorder().remove_snapshot_provider(snapshot_provider_);
}

Time Channel::submit(Duration cost, std::function<void()> apply,
                     std::optional<Duration> critical) {
  return submit_at(loop_->now(), cost, std::move(apply), critical);
}

Time Channel::submit_at(Time t, Duration cost, std::function<void()> apply,
                        std::optional<Duration> critical) {
  MANTIS_PROF_SCOPE(prof_, kControlDriver, "driver.channel_submit");
  expects(cost >= 0, "Channel::submit: negative cost");
  expects(t >= loop_->now(), "Channel::submit_at: start time in the past");
  const Duration crit = critical.value_or(cost);
  expects(crit >= 0 && crit <= cost,
          "Channel::submit: critical section outside [0, cost]");
  // Local preparation runs from `t`; the critical section queues behind
  // whatever currently holds the channel.
  const Time local_done = t + (cost - crit);
  const Time start_critical = std::max(local_done, free_at_);
  const Time completion = start_critical + crit;
  free_at_ = completion;
  busy_time_ += cost;
  ++ops_;

  ops_ctr_->add();
  occupancy_hist_->record(static_cast<double>(cost));
  queue_wait_hist_->record(static_cast<double>(start_critical - local_done));
  depth_hist_->record(static_cast<double>(depth_));
  ++depth_;
  depth_gauge_->set(static_cast<double>(depth_));
#if MANTIS_TELEMETRY_ENABLED
  // One lane-2 span per occupancy: [start, completion), queue wait as the
  // argument, so contention is visible as back-to-back blocks.
  tracer_->complete("channel.op", "driver", telemetry::Track::kDriverChannel,
                    t, completion, "queue_wait_ns",
                    start_critical - local_done);
#endif

  loop_->schedule_at(completion, [this, apply = std::move(apply)] {
    MANTIS_PROF_SCOPE(prof_, kControlDriver, "driver.channel_completion");
    if (apply) apply();
    --depth_;
    depth_gauge_->set(static_cast<double>(depth_));
  });
  return completion;
}

Time Channel::free_at() const { return std::max(loop_->now(), free_at_); }

}  // namespace mantis::driver
