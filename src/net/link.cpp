#include "net/link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace mantis::net {

Link::Link(sim::EventLoop& loop, std::string name, End a, End b,
           LinkModel model, Deliver deliver)
    : loop_(&loop),
      name_(std::move(name)),
      a_(a),
      b_(b),
      model_(model),
      deliver_(std::move(deliver)) {
  expects(model_.gbps > 0, "Link: rate must be positive");
  expects(model_.loss >= 0 && model_.loss <= 1, "Link: bad loss probability");
  expects(static_cast<bool>(deliver_), "Link: deliver callback required");
  auto& metrics = loop.telemetry().metrics();
  prof_ = &loop.telemetry().prof();
  const char* dir_tag[2] = {"ab", "ba"};
  for (int d = 0; d < 2; ++d) {
    auto& dir = dirs_[d];
    dir.loss = model_.loss;
    // Direction b->a gets an independent stream from the same seed.
    dir.rng = Rng(d == 0 ? model_.seed
                         : model_.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::string base = "net.link." + name_ + "." + dir_tag[d] + ".";
    dir.tx_ctr = &metrics.counter(base + "tx_pkts");
    dir.drop_ctr = &metrics.counter(base + "drops");
    dir.util_gauge = &metrics.gauge(base + "util");
  }
}

int Link::direction_from(NodeId from) const {
  if (from == a_.node) return 0;
  if (from == b_.node) return 1;
  throw UserError("Link " + name_ + ": node " + std::to_string(from) +
                  " is not an endpoint");
}

std::size_t Link::check_dir(int dir) {
  expects(dir == 0 || dir == 1, "Link: direction must be 0 or 1");
  return static_cast<std::size_t>(dir);
}

Duration Link::serialization_time(std::uint32_t bytes) const {
  const double ns = static_cast<double>(bytes) * 8.0 / model_.gbps;
  return static_cast<Duration>(std::llround(std::max(1.0, ns)));
}

void Link::transmit(NodeId from, sim::Packet pkt) {
  MANTIS_PROF_SCOPE(prof_, kPacketTransit, "link.transmit");
  auto& dir = dirs_[static_cast<std::size_t>(direction_from(from))];
  if (dir.down) {
    // Interface down: the TX side discards without occupying the wire.
    ++dir.stats.dropped_pkts;
    dir.drop_ctr->add();
    return;
  }
  const Duration ser = serialization_time(pkt.length_bytes());
  const Time start = std::max(loop_->now(), dir.busy_until);
  dir.busy_until = start + ser;
  dir.stats.busy_ns += static_cast<std::uint64_t>(ser);
  ++dir.stats.tx_pkts;
  dir.stats.tx_bytes += pkt.length_bytes();
  dir.tx_ctr->add();
  if (pkt.has_header_stack()) {
    ++dir.stats.int_pkts;
    dir.stats.int_bytes += pkt.header_stack().size();
  }

  // Gray loss corrupts the frame *after* it occupied the wire (so a lossy
  // link still consumes capacity). The draw happens at transmit time to keep
  // the Rng consumption order independent of delivery interleaving.
  const bool lost = dir.loss > 0 && dir.rng.chance(dir.loss);
  if (lost) {
    ++dir.stats.dropped_pkts;
    dir.drop_ctr->add();
    return;
  }
  const Time arrival = dir.busy_until + model_.propagation + dir.extra_latency;
  const End to = receiver(direction_from(from));
  auto& d = dir;
  auto cb = [this, to, &d, p = std::move(pkt)]() mutable {
    MANTIS_PROF_SCOPE(prof_, kPacketTransit, "link.deliver");
    ++d.stats.delivered_pkts;
    deliver_(std::move(p), to.node, to.port);
  };
  if (d.rx_shard != sim::EventLoop::kControlShard) {
    // Shard-tagged fabric: delivery executes on the receiver's shard.
    loop_->schedule_for(d.rx_shard, arrival, std::move(cb));
  } else {
    loop_->schedule_at(arrival, std::move(cb));
  }
}

void Link::set_down(bool down, int dir) {
  for (int d = 0; d < 2; ++d) {
    if (dir == -1 || dir == d) dirs_[d].down = down;
  }
}

void Link::set_loss(double p, int dir) {
  expects(p >= 0 && p <= 1, "Link::set_loss: bad probability");
  for (int d = 0; d < 2; ++d) {
    if (dir == -1 || dir == d) dirs_[d].loss = p;
  }
}

void Link::set_extra_latency(Duration d_ns, int dir) {
  expects(d_ns >= 0, "Link::set_extra_latency: negative latency");
  for (int d = 0; d < 2; ++d) {
    if (dir == -1 || dir == d) dirs_[d].extra_latency = d_ns;
  }
}

}  // namespace mantis::net
