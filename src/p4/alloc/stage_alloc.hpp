// RMT stage allocation: places each pipeline's tables into match-action
// stages subject to data dependencies and per-stage capacity, mirroring how a
// Tofino-class compiler lays out a program. Backs Table 1's "Stgs" column.
//
// Dependency rules (standard match/action dependency analysis):
//  - MATCH dependency: B matches on (or its actions read) a field some action
//    of an earlier-applied table A writes => stage(B) > stage(A).
//  - WRITE-WRITE dependency on the same field also serializes A before B.
//  - Tables that share a stateful register must land in the same stage (RMT
//    restricts a register to one stage); if dependencies make that
//    impossible the allocator throws.
//  - Otherwise tables may share a stage up to the capacity limits.
//
// Capacity comes from an explicit RmtResourceModel (stages, SRAM/TCAM bytes,
// tables, ALUs, hash units, registers per stage). Every over-budget program
// is rejected with a ResourceExhausted naming the exhausted resource.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.hpp"
#include "p4/resources.hpp"
#include "p4/rmt_model.hpp"

namespace mantis::p4 {

struct StageAssignment {
  /// table name -> stage index (0-based)
  std::unordered_map<std::string, int> table_stage;
  int stages_used = 0;
};

/// Allocates all tables applied by `block` (one pipeline). Throws
/// ResourceExhausted (a UserError naming the exhausted resource) if the
/// program cannot fit within `model`.
StageAssignment allocate_stages(const Program& prog, const ControlBlock& block,
                                const RmtResourceModel& model = RmtResourceModel{});

/// Convenience: max of ingress and egress stage counts... reported per
/// pipeline as ingress_stages + egress_stages (Tofino has separate gress
/// stage budgets; we report the sum as the program's stage footprint).
struct ProgramStages {
  int ingress = 0;
  int egress = 0;
  int total() const { return ingress + egress; }
};

ProgramStages allocate_program_stages(const Program& prog,
                                      const RmtResourceModel& model = RmtResourceModel{});

/// Fields written by any action of the table (destinations of field-writing
/// primitives). Exposed for tests.
std::vector<FieldId> fields_written_by(const Program& prog, const TableDecl& tbl);

/// Fields read by the table: match keys plus action source operands.
std::vector<FieldId> fields_read_by(const Program& prog, const TableDecl& tbl);

/// Registers accessed (read or written) by any action of the table.
std::vector<std::string> registers_used_by(const Program& prog, const TableDecl& tbl);

/// The table's per-stage demand under the model's cost accounting: ALU slots
/// (widest action body), hash units (exact/LPM key + hash actions), SRAM and
/// TCAM bits, and the distinct registers it must co-locate with. Exposed for
/// tests and the resource fuzzer's mis-pack re-check.
struct TableDemand {
  std::uint64_t sram_bits = 0;
  std::uint64_t tcam_bits = 0;
  int alus = 0;
  int hash_units = 0;
  std::vector<std::string> registers;
};

TableDemand table_demand(const Program& prog, const TableDecl& tbl);

}  // namespace mantis::p4
