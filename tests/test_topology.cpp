// Invariant tests for the Clos / fat-tree builders (net/topology.*).
//
// The ClosSpec arithmetic (node ids, port numbers, structural next hops) is
// what lets the 1024-switch bench install routes without running Dijkstra
// per switch — so these tests pin the arithmetic against the slow oracles:
// link-count formulas, exhaustive port-consistency scans, and a hop-by-hop
// walk of next_hop_port compared with compute_routes_from (Dijkstra) path
// lengths on every (switch, host) pair of several small fabrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/topology.hpp"
#include "util/check.hpp"

namespace mantis::net {
namespace {

// ---------------------------------------------------------------------------
// Structural counts.
// ---------------------------------------------------------------------------

TEST(ClosTopology, NodeAndLinkCountFormulas) {
  const ClosSpec spec{2, 2, 2, 4, 1};
  const Topology t = Topology::clos(spec);

  EXPECT_EQ(spec.num_leaves(), 4);
  EXPECT_EQ(spec.num_aggs(), 4);
  EXPECT_EQ(spec.num_switches(), 12);
  EXPECT_EQ(spec.num_hosts(), 4);
  EXPECT_EQ(t.num_switches, spec.num_switches());
  EXPECT_EQ(t.num_nodes, spec.num_switches() + spec.num_hosts());
  EXPECT_EQ(t.num_hosts(), spec.num_hosts());

  // links = leaf-agg (P*L*A) + agg-core (P*C) + leaf-host (leaves*H).
  const std::size_t expected = 2 * 2 * 2 + 2 * 4 + 4 * 1;
  EXPECT_EQ(t.links.size(), expected);
}

TEST(ClosTopology, FatTreeIsTheCanonicalKaryInstance) {
  // Al-Fares et al.: k pods, k/2 edge + k/2 agg per pod, (k/2)^2 cores,
  // k/2 hosts per edge switch, every switch with exactly k ports, and
  // 3k^3/4 links in total (k^3/4 per tier).
  for (const int k : {2, 4, 6}) {
    const Topology t = Topology::fat_tree(k);
    const int half = k / 2;
    EXPECT_EQ(t.num_switches, k * half + k * half + half * half) << "k=" << k;
    EXPECT_EQ(t.num_hosts(), k * half * half) << "k=" << k;
    EXPECT_EQ(t.links.size(),
              static_cast<std::size_t>(3 * k * k * k / 4))
        << "k=" << k;

    // Port-per-switch census: a k-ary fat tree is k-regular over switches.
    std::map<NodeId, int> ports_used;
    for (const auto& l : t.links) {
      if (t.is_switch(l.a)) ++ports_used[l.a];
      if (t.is_switch(l.b)) ++ports_used[l.b];
    }
    for (NodeId sw = 0; sw < t.num_switches; ++sw) {
      EXPECT_EQ(ports_used[sw], k) << "k=" << k << " switch " << sw;
    }
  }
}

TEST(ClosTopology, BisectionScalesWithCoreTier) {
  // Cutting the fabric at the core tier severs exactly the agg-core links:
  // P*C of them. Doubling the core count doubles the cut.
  const ClosSpec narrow{2, 2, 2, 4, 1};
  const ClosSpec wide{2, 2, 2, 8, 1};
  auto core_cut = [](const ClosSpec& spec) {
    const Topology t = Topology::clos(spec);
    std::size_t cut = 0;
    for (const auto& l : t.links) {
      if (spec.is_core(l.a) || spec.is_core(l.b)) ++cut;
    }
    return cut;
  };
  EXPECT_EQ(core_cut(narrow), static_cast<std::size_t>(2 * 4));
  EXPECT_EQ(core_cut(wide), static_cast<std::size_t>(2 * 8));
}

// ---------------------------------------------------------------------------
// Wiring consistency.
// ---------------------------------------------------------------------------

TEST(ClosTopology, NoSelfLoopsAndUniquePorts) {
  for (const ClosSpec spec :
       {ClosSpec{2, 2, 2, 4, 1}, ClosSpec{3, 2, 2, 6, 2}}) {
    const Topology t = Topology::clos(spec);
    std::set<std::pair<NodeId, int>> endpoints;
    for (const auto& l : t.links) {
      EXPECT_NE(l.a, l.b);
      EXPECT_TRUE(endpoints.insert({l.a, l.port_a}).second)
          << "duplicate (node " << l.a << ", port " << l.port_a << ")";
      EXPECT_TRUE(endpoints.insert({l.b, l.port_b}).second)
          << "duplicate (node " << l.b << ", port " << l.port_b << ")";
    }
  }
}

TEST(ClosTopology, PortLayoutMatchesSpecArithmetic) {
  const ClosSpec spec{2, 3, 2, 4, 2};
  const Topology t = Topology::clos(spec);
  // Leaf port a reaches pod agg a; leaf port A+h reaches local host h.
  for (int p = 0; p < spec.pods; ++p) {
    for (int l = 0; l < spec.leaves_per_pod; ++l) {
      const NodeId leaf = spec.leaf_id(p, l);
      for (int a = 0; a < spec.aggs_per_pod; ++a) {
        const int li = t.link_at(leaf, a);
        ASSERT_GE(li, 0);
        const auto& link = t.links[static_cast<std::size_t>(li)];
        EXPECT_EQ(link.a == leaf ? link.b : link.a, spec.agg_id(p, a));
      }
      const int g = p * spec.leaves_per_pod + l;
      for (int h = 0; h < spec.hosts_per_leaf; ++h) {
        const int li = t.link_at(leaf, spec.aggs_per_pod + h);
        ASSERT_GE(li, 0);
        const auto& link = t.links[static_cast<std::size_t>(li)];
        EXPECT_EQ(link.a == leaf ? link.b : link.a, spec.host_id(g, h));
      }
    }
  }
  // Core c hangs off agg agg_of_core(c) in every pod, on core port p -> pod.
  for (int c = 0; c < spec.cores; ++c) {
    const NodeId core = spec.core_id(c);
    for (int p = 0; p < spec.pods; ++p) {
      const int li = t.link_at(core, p);
      ASSERT_GE(li, 0);
      const auto& link = t.links[static_cast<std::size_t>(li)];
      EXPECT_EQ(link.a == core ? link.b : link.a,
                spec.agg_id(p, spec.agg_of_core(c)));
    }
  }
}

TEST(ClosTopology, HostAddressingMatchesLeafSpineScheme) {
  const ClosSpec spec{2, 2, 2, 4, 2};
  const Topology t = Topology::clos(spec);
  for (int g = 0; g < spec.num_leaves(); ++g) {
    for (int h = 0; h < spec.hosts_per_leaf; ++h) {
      const std::uint32_t addr = spec.host_addr(g, h);
      EXPECT_EQ(addr, 0x0a000000u + (static_cast<std::uint32_t>(g) << 8) +
                          static_cast<std::uint32_t>(h));
      ASSERT_TRUE(t.dst_node.count(addr));
      EXPECT_EQ(t.dst_node.at(addr), spec.host_id(g, h));
      EXPECT_EQ(ClosSpec::leaf_of_addr(addr), g);
      EXPECT_EQ(ClosSpec::host_of_addr(addr), h);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural routing vs the Dijkstra oracle.
// ---------------------------------------------------------------------------

/// Hops from `sw` to the host owning `addr`, following `next_port` at each
/// switch. Returns -1 on a dead end or a walk longer than the fabric
/// diameter allows (loop).
int walk(const Topology& t, NodeId sw, std::uint32_t addr,
         const std::function<int(NodeId)>& next_port) {
  const NodeId target = t.dst_node.at(addr);
  NodeId cur = sw;
  for (int hops = 1; hops <= 8; ++hops) {
    const int port = next_port(cur);
    if (port < 0) return -1;
    const int li = t.link_at(cur, port);
    if (li < 0) return -1;
    const auto& l = t.links[static_cast<std::size_t>(li)];
    cur = l.a == cur ? l.b : l.a;
    if (cur == target) return hops;
    if (!t.is_switch(cur)) return -1;  // wrong host
  }
  return -1;
}

TEST(ClosTopology, NextHopPortMatchesDijkstraPathLengths) {
  // Every (switch, host) pair of two small fabrics: the structural walk
  // must terminate at the right host in exactly the Dijkstra shortest-path
  // hop count (next_hop_port picks AMONG equal-cost first hops; path
  // length is the ECMP-invariant the oracle can check).
  for (const ClosSpec spec :
       {ClosSpec{2, 2, 2, 4, 1}, ClosSpec{4, 2, 2, 4, 2} /* fat_tree(4) */}) {
    const Topology t = Topology::clos(spec);
    for (NodeId sw = 0; sw < t.num_switches; ++sw) {
      const auto oracle = t.compute_routes_from(sw, {});
      for (const auto& [addr, first_port] : oracle) {
        ASSERT_GE(first_port, 0) << "oracle: unreachable " << addr;
        // Oracle walk: compute_routes_from at every intermediate switch
        // follows one shortest path (Dijkstra, deterministic ties).
        const int want = walk(t, sw, addr, [&](NodeId cur) {
          return t.compute_routes_from(cur, {}).at(addr);
        });
        const int got = walk(t, sw, addr, [&](NodeId cur) {
          return spec.next_hop_port(cur, addr);
        });
        ASSERT_GT(want, 0);
        EXPECT_EQ(got, want)
            << "switch " << sw << " dst " << std::hex << addr;
      }
    }
  }
}

TEST(ClosTopology, EcmpHashIsDeterministicAndSpreads) {
  const ClosSpec spec{2, 2, 4, 8, 8};
  // Same inputs, same answer (the bench installs routes from this).
  EXPECT_EQ(spec.next_hop_port(0, spec.host_addr(3, 0)),
            spec.next_hop_port(0, spec.host_addr(3, 0)));
  // Across many destinations a leaf must use more than one of its 4
  // uplinks (a constant hash would recreate the hash-polarization bug),
  // and every chosen port must be a real uplink.
  std::set<int> uplinks;
  for (int g = 2; g < 4; ++g) {  // other-pod leaves only: uplink routes
    for (int h = 0; h < spec.hosts_per_leaf; ++h) {
      const int port = spec.next_hop_port(0, spec.host_addr(g, h));
      EXPECT_GE(port, 0);
      EXPECT_LT(port, spec.aggs_per_pod);
      uplinks.insert(port);
    }
  }
  EXPECT_GT(uplinks.size(), 1u);
}

TEST(ClosTopology, RejectsBadSpecs) {
  EXPECT_THROW(Topology::clos(ClosSpec{0, 1, 1, 1, 1}), PreconditionError);
  EXPECT_THROW(Topology::clos(ClosSpec{2, 2, 3, 4, 1}),
               PreconditionError);  // C % A != 0
  EXPECT_THROW(Topology::clos(ClosSpec{2, 2, 2, 4, 300}),
               PreconditionError);  // H > 256 breaks addressing
  EXPECT_THROW(Topology::fat_tree(3), PreconditionError);  // odd k
  EXPECT_THROW(Topology::fat_tree(0), PreconditionError);
}

}  // namespace
}  // namespace mantis::net
