#include "baseline/count_min.hpp"

#include <algorithm>
#include <array>

#include "sim/action_exec.hpp"
#include "util/check.hpp"

namespace mantis::baseline {

CountMinSketch::CountMinSketch(std::size_t depth, std::size_t width)
    : width_(width), rows_(depth, std::vector<std::uint64_t>(width, 0)) {
  expects(depth > 0 && width > 0, "CountMinSketch: empty dimensions");
}

std::size_t CountMinSketch::index(std::uint32_t key, std::size_t row) const {
  // Same CRC-32 as the simulated data plane, with a per-row seed — mirrors a
  // P4 implementation using distinct field_list_calculations per stage.
  std::array<std::uint8_t, 4> bytes = {
      static_cast<std::uint8_t>(key >> 24), static_cast<std::uint8_t>(key >> 16),
      static_cast<std::uint8_t>(key >> 8), static_cast<std::uint8_t>(key)};
  const std::uint32_t h = sim::crc32(bytes, static_cast<std::uint32_t>(row) * 0x9e3779b9u);
  return h % width_;
}

void CountMinSketch::add(std::uint32_t key, std::uint64_t amount) {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    rows_[r][index(key, r)] += amount;
  }
}

std::uint64_t CountMinSketch::estimate(std::uint32_t key) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    best = std::min(best, rows_[r][index(key, r)]);
  }
  return best;
}

}  // namespace mantis::baseline
