#include "telemetry/inspect.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "int/collector.hpp"
#include "telemetry/metrics.hpp"  // json_escape

namespace mantis::telemetry {

namespace {

void render_event_line(std::ostringstream& out, const FlightEvent& ev) {
  out << "  #" << ev.seq << " t=" << ev.t << "ns " << flight_kind_name(ev.kind);
  if (ev.reaction_id != 0) out << " reaction=" << ev.reaction_id;
  out << " " << ev.name;
  if (ev.value != 0) out << " value=" << ev.value;
  if (!ev.detail.empty()) out << " (" << ev.detail << ")";
  out << "\n";
}

void render_header(std::ostringstream& out, const MfrDump& dump) {
  out << "mfr dump: reason=\"" << dump.reason << "\" vt=" << dump.vt
      << "ns events=" << dump.events.size() << " (recorded=" << dump.recorded
      << " dropped=" << dump.dropped << ") snapshots=" << dump.snapshots.size()
      << "\n";
}

}  // namespace

std::string mfr_show_text(const MfrDump& dump) {
  std::ostringstream out;
  render_header(out, dump);
  out << "events:\n";
  for (const auto& ev : dump.events) render_event_line(out, ev);
  for (const auto& snap : dump.snapshots) {
    out << "snapshot " << snap.label << ":\n";
    for (const auto& line : snap.lines) out << "  " << line << "\n";
  }
  return out.str();
}

std::string mfr_diff_text(const MfrDump& dump, Time t1, Time t2) {
  if (t2 < t1) std::swap(t1, t2);
  std::ostringstream out;
  render_header(out, dump);
  out << "window [" << t1 << "ns, " << t2 << "ns]:\n";
  std::set<std::uint64_t> ended, affected;
  std::size_t in_window = 0;
  for (const auto& ev : dump.events) {
    if (ev.t < t1 || ev.t > t2) continue;
    ++in_window;
    render_event_line(out, ev);
    if (ev.reaction_id != 0) {
      affected.insert(ev.reaction_id);
      if (ev.kind == FlightEvent::Kind::kReaction && ev.name == "iteration") {
        ended.insert(ev.reaction_id);
      }
    }
  }
  out << in_window << " events in window";
  if (!affected.empty()) {
    out << "; reactions touched:";
    for (auto rid : affected) {
      out << " " << rid << (ended.count(rid) != 0 ? "(ended)" : "");
    }
  }
  out << "\n";
  return out.str();
}

std::string mfr_reaction_text(const MfrDump& dump, std::uint64_t reaction_id) {
  std::ostringstream out;
  render_header(out, dump);
  out << "reaction " << reaction_id << ":\n";
  std::size_t n = 0;
  for (const auto& ev : dump.events) {
    if (ev.reaction_id != reaction_id) continue;
    ++n;
    render_event_line(out, ev);
  }
  if (n == 0) out << "  (no events for this reaction id)\n";
  return out.str();
}

std::string mfr_chrome_json(const MfrDump& dump) {
  // Bespoke emitter: chrome_trace_json renders a live Tracer whose event
  // names are static strings; dump events own std::strings, so we serialize
  // directly here rather than round-tripping through TraceEvent.
  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  bool first = true;
  auto emit_sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // One lane per event kind.
  const FlightEvent::Kind kinds[] = {
      FlightEvent::Kind::kReaction,  FlightEvent::Kind::kMalleable,
      FlightEvent::Kind::kDriverOp,  FlightEvent::Kind::kFault,
      FlightEvent::Kind::kAnomaly,   FlightEvent::Kind::kIntReport};
  for (const auto kind : kinds) {
    emit_sep();
    out << R"({"ph": "M", "pid": 0, "tid": )"
        << static_cast<unsigned>(static_cast<std::uint8_t>(kind))
        << R"(, "name": "thread_name", "args": {"name": ")"
        << flight_kind_name(kind) << "\"}}";
  }

  auto ts_us = [](Time t) {
    std::ostringstream s;
    s << (t / 1000) << "." << (t % 1000 < 0 ? -(t % 1000) : t % 1000);
    return s.str();
  };

  // Track flow endpoints so each reaction renders as one arc: flow start at
  // its first event, flow end at its last (single-event reactions get none).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> flow_span;
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const auto rid = dump.events[i].reaction_id;
    if (rid == 0) continue;
    auto [it, fresh] = flow_span.emplace(rid, std::make_pair(i, i));
    if (!fresh) it->second.second = i;
  }

  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    const auto& ev = dump.events[i];
    const unsigned tid =
        static_cast<unsigned>(static_cast<std::uint8_t>(ev.kind));
    emit_sep();
    out << "{\"name\": \"" << json_escape(ev.name)
        << "\", \"cat\": \"mfr\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
        << "\"tid\": " << tid << ", \"ts\": " << ts_us(ev.t)
        << ", \"args\": {\"seq\": " << ev.seq
        << ", \"reaction_id\": " << ev.reaction_id
        << ", \"value\": " << ev.value << ", \"detail\": \""
        << json_escape(ev.detail) << "\"}}";
    if (ev.reaction_id != 0) {
      const auto span = flow_span.at(ev.reaction_id);
      if (span.first != span.second) {
        const char* ph =
            i == span.first ? "s" : (i == span.second ? "f" : "t");
        emit_sep();
        out << "{\"name\": \"reaction\", \"cat\": \"mfr\", \"ph\": \"" << ph
            << "\", \"pid\": 0, \"tid\": " << tid << ", \"ts\": " << ts_us(ev.t)
            << ", \"id\": " << ev.reaction_id;
        if (*ph == 'f') out << ", \"bp\": \"e\"";
        out << "}";
      }
    }
  }

  out << "\n]\n}\n";
  return out.str();
}

std::string mfr_int_text(const MfrDump& dump) {
  using mantis::int_tel::IntReport;
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& ev : dump.events) {
    if (ev.kind != FlightEvent::Kind::kIntReport) continue;
    ++shown;
    IntReport rep;
    if (!IntReport::parse(ev.detail, rep)) {
      os << "t=" << ev.t << " <unparseable int_report: " << ev.detail << ">\n";
      continue;
    }
    os << "t=" << ev.t << " sink=n" << rep.sink << " seq=" << rep.seq
       << " proto=" << static_cast<unsigned>(rep.proto) << " flow "
       << rep.flow_src << "->" << rep.flow_dst
       << (rep.truncated ? " TRUNCATED" : "") << "\n";
    for (const auto& hop : rep.hops) {
      os << "    n" << hop.switch_id;
      if (hop.ingress_port == mantis::int_tel::kSyntheticIngress) {
        os << " in=probe";
      } else {
        os << " in=" << hop.ingress_port;
      }
      os << " out=" << hop.egress_port << " latency=" << hop.hop_latency_ns
         << "ns queue=" << hop.queue_bytes << "B\n";
    }
  }
  os << shown << " INT report(s) in dump (recorder samples 1 in N; see "
        "net.int.sink_reports for the full count)\n";
  return os.str();
}

std::string mfr_channel_text(const MfrDump& dump) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& snap : dump.snapshots) {
    if (snap.label.find("driver.channel") == std::string::npos) continue;
    for (const auto& line : snap.lines) {
      // key=value tokens, whitespace-separated.
      std::uint64_t ops = 0, busy_ns = 0, depth = 0, per_mille = 0;
      std::int64_t free_at = 0;
      std::istringstream is(line);
      std::string tok;
      while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = tok.substr(0, eq);
        const char* val = tok.c_str() + eq + 1;
        if (key == "ops") ops = std::strtoull(val, nullptr, 0);
        if (key == "busy_ns") busy_ns = std::strtoull(val, nullptr, 0);
        if (key == "depth") depth = std::strtoull(val, nullptr, 0);
        if (key == "free_at") free_at = std::strtoll(val, nullptr, 0);
        if (key == "utilization_permille") {
          per_mille = std::strtoull(val, nullptr, 0);
        }
      }
      ++shown;
      os << snap.label << ": ops=" << ops << " busy=" << busy_ns / 1000 << "."
         << busy_ns % 1000 / 100 << "us in_flight=" << depth
         << " free_at=" << free_at << "ns utilization=" << per_mille / 10 << "."
         << per_mille % 10 << "%\n";
    }
  }
  if (shown == 0) {
    os << "no driver.channel snapshot in dump (pre-channel-gauge .mfr?)\n";
  } else {
    os << shown << " channel(s); utilization is busy time / virtual time at "
          "dump. Batched transfers land as one occupancy each; see "
          "driver.channel.depth_at_submit for the pipelining histogram.\n";
  }
  return os.str();
}

}  // namespace mantis::telemetry
