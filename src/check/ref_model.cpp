#include "check/ref_model.hpp"

#include <algorithm>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace mantis::check {

namespace {

constexpr std::uint64_t kFullMask = ~std::uint64_t{0};

/// Prefix length of an LPM mask (leading set bits within width); mirrors the
/// sim's tie-break exactly.
unsigned prefix_length(std::uint64_t mask, unsigned width) {
  unsigned len = 0;
  for (unsigned bit = width; bit-- > 0;) {
    if ((mask >> bit) & 1) {
      ++len;
    } else {
      break;
    }
  }
  return len;
}

}  // namespace

// ---------------------------------------------------------------------------
// RefEnv: the creact environment over RefModel state. Mirrors the agent's
// InterpEnv byte-for-byte where the generated programs can observe it.
// ---------------------------------------------------------------------------

class RefEnv : public p4r::creact::ReactionEnv {
 public:
  RefEnv(RefModel& m, std::string reaction)
      : m_(&m), reaction_(std::move(reaction)) {}

  void log_value(p4r::creact::CValue v) override {
    m_->log_.emplace_back(reaction_, v);
  }

  p4r::creact::CValue mbl_get(const std::string& name) override {
    return static_cast<p4r::creact::CValue>(m_->ctx_get_scalar(name));
  }
  void mbl_set(const std::string& name, p4r::creact::CValue value) override {
    m_->ctx_set_scalar(name, static_cast<std::uint64_t>(value));
  }

  p4r::creact::CValue table_call(
      const std::string& table, const std::string& method,
      const std::vector<p4r::creact::TableCallArg>& args) override {
    const auto& t = m_->table_rt(table);
    const std::size_t keys = t.decl->reads.size();

    auto key_from = [&](std::size_t first) {
      std::vector<p4::MatchValue> key;
      for (std::size_t i = 0; i < keys; ++i) {
        const auto& a = args.at(first + i);
        if (a.is_string) {
          throw UserError(table + "." + method + ": key must be numeric");
        }
        key.push_back(
            p4::MatchValue{static_cast<std::uint64_t>(a.num), kFullMask});
      }
      return key;
    };
    auto action_args_from = [&](std::size_t first) {
      std::vector<std::uint64_t> out;
      for (std::size_t i = first; i < args.size(); ++i) {
        if (args[i].is_string) {
          throw UserError(table + "." + method + ": unexpected string argument");
        }
        out.push_back(static_cast<std::uint64_t>(args[i].num));
      }
      return out;
    };
    auto action_name = [&](std::size_t idx) {
      if (idx >= args.size() || !args[idx].is_string) {
        throw UserError(table + "." + method + ": expected action name string");
      }
      return args[idx].str;
    };

    if (method == "addEntry") {
      p4::EntrySpec spec;
      spec.action = action_name(0);
      spec.key = key_from(1);
      spec.action_args = action_args_from(1 + keys);
      return static_cast<p4r::creact::CValue>(m_->ctx_add_entry(table, spec));
    }
    if (method == "modEntry") {
      const std::string action = action_name(0);
      const auto key = key_from(1);
      const auto id = m_->ctx_find_entry(table, key);
      if (!id.has_value()) throw UserError(table + ".modEntry: no such entry");
      m_->ctx_mod_entry(table, *id, action, action_args_from(1 + keys));
      return 0;
    }
    if (method == "delEntry") {
      const auto key = key_from(0);
      const auto id = m_->ctx_find_entry(table, key);
      if (!id.has_value()) throw UserError(table + ".delEntry: no such entry");
      m_->ctx_del_entry(table, *id);
      return 0;
    }
    if (method == "hasEntry") {
      return m_->ctx_find_entry(table, key_from(0)).has_value() ? 1 : 0;
    }
    if (method == "entryCount") {
      return static_cast<p4r::creact::CValue>(m_->ctx_entry_count(table));
    }
    if (method == "setDefault") {
      const std::string action = action_name(0);
      const bool bound =
          std::find(t.decl->actions.begin(), t.decl->actions.end(), action) !=
          t.decl->actions.end();
      auto it = m_->action_uses_mbl_field_.find(action);
      const bool specialized = it != m_->action_uses_mbl_field_.end() && it->second;
      if (!bound || specialized) {
        throw UserError(table + ".setDefault: action must exist and be "
                        "specialization-free");
      }
      auto& rt = m_->table_rt(table);
      rt.default_action = action;
      rt.default_args = action_args_from(1);
      return 0;
    }
    throw UserError("unknown table method: " + table + "." + method);
  }

  p4r::creact::CValue now_us() override { return 0; }

 private:
  RefModel* m_;
  std::string reaction_;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

RefModel::RefModel(p4r::P4RProgram fp) : fp_(std::move(fp)) {
  p4::add_standard_metadata(fp_.prog);
  const auto& cat = fp_.prog.fields;
  f_ingress_port_ = cat.require(p4::intrinsics::kIngressPort);
  f_egress_spec_ = cat.require(p4::intrinsics::kEgressSpec);
  f_egress_port_ = cat.require(p4::intrinsics::kEgressPort);
  f_packet_length_ = cat.require(p4::intrinsics::kPacketLength);
  f_pid_ = cat.find("pm.pid");

  for (const auto& v : fp_.values) {
    scalar_meta_[v.name] = ScalarMeta{v.width, false, 0};
    staged_[v.name] = v.init;
  }
  for (const auto& f : fp_.fields) {
    scalar_meta_[f.name] = ScalarMeta{
        static_cast<p4::Width>(ceil_log2(f.alts.size())), true, f.alts.size()};
    staged_[f.name] = f.init_alt;
  }
  committed_ = staged_;

  for (const auto& t : fp_.prog.tables) {
    TableMeta meta;
    meta.decl = &t;
    meta.malleable = fp_.is_malleable_table(t.name);
    meta.default_action = t.default_action;
    meta.default_args = t.default_action_args;
    for (const auto& r : t.reads) {
      if (r.kind == p4::MatchKind::kValid) {
        throw RefUnsupported("ref: valid match kind unsupported");
      }
      if (r.is_malleable() && fp_.find_field(r.mbl) == nullptr) {
        throw RefUnsupported("ref: malleable value table reads unsupported");
      }
    }
    tables_.emplace(t.name, std::move(meta));
  }

  for (const auto& r : fp_.prog.registers) {
    regs_[r.name].assign(r.instance_count, 0);
    reg_width_[r.name] = r.width;
  }
  for (const auto& c : fp_.prog.counters) {
    counters_[c.name].assign(c.instance_count, 0);
  }

  for (const auto& a : fp_.prog.actions) {
    bool uses = false;
    for (const auto& ins : a.body) {
      for (const auto& arg : ins.args) {
        if (arg.kind == p4::OperandKind::kMbl &&
            fp_.find_field(arg.mbl) != nullptr) {
          uses = true;
        }
      }
    }
    action_uses_mbl_field_[a.name] = uses;
  }

  for (const auto& rx : fp_.reactions) {
    ReactionRt rt;
    rt.decl = &rx;
    for (const auto& p : rx.params) {
      switch (p.kind) {
        case p4r::ReactionParam::Kind::kField: {
          rt.caps.push_back(FieldCap{p.c_name, p.gress, p.field});
          rt.meas[0][p.c_name] = 0;
          rt.meas[1][p.c_name] = 0;
          break;
        }
        case p4r::ReactionParam::Kind::kRegister:
          if (regs_.count(p.reg) == 0) {
            throw UserError("reaction " + rx.name + ": unknown register " +
                            p.reg);
          }
          rt.windows.push_back(Window{p.c_name, p.reg, p.lo, p.hi});
          break;
        case p4r::ReactionParam::Kind::kMalleable:
          break;  // readable through mbl_get; nothing to poll
      }
    }
    rt.body = std::make_unique<p4r::creact::CBody>(
        p4r::creact::parse_body(rx.body));
    rt.interp = std::make_unique<p4r::creact::Interp>(*rt.body);
    reactions_.push_back(std::move(rt));
  }
}

// ---------------------------------------------------------------------------
// Table runtime helpers
// ---------------------------------------------------------------------------

RefModel::TableMeta& RefModel::table_rt(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw UserError("unknown user table: " + name);
  return it->second;
}

const RefModel::TableMeta& RefModel::table_rt(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) throw UserError("unknown user table: " + name);
  return it->second;
}

void RefModel::validate_user_spec(const std::string& table, const TableMeta& t,
                                  const p4::EntrySpec& spec) const {
  const auto& decl = *t.decl;
  if (spec.key.size() != decl.reads.size()) {
    throw UserError("table " + table + ": key arity " +
                    std::to_string(spec.key.size()) + " != " +
                    std::to_string(decl.reads.size()));
  }
  if (std::find(decl.actions.begin(), decl.actions.end(), spec.action) ==
      decl.actions.end()) {
    throw UserError("table " + table + ": action " + spec.action +
                    " not bound to table");
  }
  const auto* act = fp_.prog.find_action(spec.action);
  if (act == nullptr) {
    throw UserError("table " + table + ": action " + spec.action + " unknown");
  }
  if (act->params.size() != spec.action_args.size()) {
    throw UserError("table " + table + ": action " + spec.action + " expects " +
                    std::to_string(act->params.size()) + " args, got " +
                    std::to_string(spec.action_args.size()));
  }
  for (std::size_t i = 0; i < spec.key.size(); ++i) {
    const auto& read = decl.reads[i];
    if (read.is_malleable()) {
      // The compiled path stores {v & premask, m & premask} in a ternary (or
      // lpm) alternative column of the malleable field's width.
      const auto* mf = fp_.find_field(read.mbl);
      ensures(mf != nullptr, "validate: unchecked malleable read");
      if (((spec.key[i].value & read.premask) & ~mask_for_width(mf->width)) !=
          0) {
        throw UserError("table " + table + ": key component " +
                        std::to_string(i) + " wider than field");
      }
      continue;
    }
    const auto width = fp_.prog.fields.width(read.field);
    const auto m = mask_for_width(width);
    if ((spec.key[i].value & ~m) != 0) {
      throw UserError("table " + table + ": key component " +
                      std::to_string(i) + " wider than field");
    }
    if (read.kind == p4::MatchKind::kExact && (spec.key[i].mask & m) != m) {
      throw UserError("table " + table + ": exact key component " +
                      std::to_string(i) + " must use a full mask");
    }
  }
}

std::uint64_t RefModel::ctx_add_entry(const std::string& table,
                                      const p4::EntrySpec& user) {
  auto& t = table_rt(table);
  if (!in_reaction_ || !t.malleable) {
    validate_user_spec(table, t, user);
    if (t.entries.size() >= t.decl->size) {
      throw UserError("table " + table + ": full (" +
                      std::to_string(t.decl->size) + " entries)");
    }
    const std::uint64_t id = t.next_id++;
    TableMeta::Entry e;
    e.staged = user;
    e.committed = user;
    t.entries.emplace(id, std::move(e));
    return id;
  }
  // Buffered: visible to user-level reads now, to packets after apply.
  // Validation is deferred to apply, matching the compiled path (the driver
  // only sees buffered entries at prepare time).
  const std::uint64_t id = t.next_id++;
  TableMeta::Entry e;
  e.staged = user;
  t.entries.emplace(id, std::move(e));
  return id;
}

void RefModel::ctx_mod_entry(const std::string& table, std::uint64_t id,
                             const std::string& action,
                             std::vector<std::uint64_t> args) {
  auto& t = table_rt(table);
  auto it = t.entries.find(id);
  if (it == t.entries.end()) throw UserError("mod_entry: bad entry id");
  if (!in_reaction_ || !t.malleable) {
    p4::EntrySpec updated = it->second.staged;
    updated.action = action;
    updated.action_args = std::move(args);
    validate_user_spec(table, t, updated);
    it->second.staged = updated;
    it->second.committed = updated;
    return;
  }
  if (it->second.pending_delete) {
    throw UserError("mod_entry: entry deleted this iteration");
  }
  it->second.staged.action = action;
  it->second.staged.action_args = std::move(args);
}

void RefModel::ctx_del_entry(const std::string& table, std::uint64_t id) {
  auto& t = table_rt(table);
  auto it = t.entries.find(id);
  if (it == t.entries.end()) throw UserError("del_entry: bad entry id");
  if (!in_reaction_ || !t.malleable) {
    t.entries.erase(it);
    return;
  }
  if (it->second.pending_delete) {
    throw UserError("del_entry: entry already deleted this iteration");
  }
  it->second.pending_delete = true;
}

std::optional<std::uint64_t> RefModel::ctx_find_entry(
    const std::string& table, const std::vector<p4::MatchValue>& key) const {
  const auto& t = table_rt(table);
  for (const auto& [id, e] : t.entries) {
    if (!e.pending_delete && e.staged.key == key) return id;
  }
  return std::nullopt;
}

std::size_t RefModel::ctx_entry_count(const std::string& table) const {
  const auto& t = table_rt(table);
  std::size_t n = 0;
  for (const auto& [id, e] : t.entries) {
    if (!e.pending_delete) ++n;
  }
  return n;
}

std::uint64_t RefModel::ctx_get_scalar(const std::string& name) const {
  auto it = staged_.find(name);
  if (it == staged_.end()) throw UserError("no malleable scalar: " + name);
  return it->second;
}

void RefModel::ctx_set_scalar(const std::string& name, std::uint64_t value) {
  auto it = staged_.find(name);
  if (it == staged_.end()) throw UserError("no malleable scalar: " + name);
  const auto& slot = scalar_meta_.at(name);
  if (slot.is_selector && value >= slot.alt_count) {
    throw UserError("malleable field " + name + ": alt index " +
                    std::to_string(value) + " out of range");
  }
  if ((value & mask_for_width(slot.width)) != value) {
    throw UserError("malleable " + name + ": value wider than " +
                    std::to_string(slot.width) + " bits");
  }
  it->second = value;
  if (!in_reaction_) committed_ = staged_;
}

std::uint64_t RefModel::add_entry(const std::string& table,
                                  const p4::EntrySpec& user) {
  expects(!in_reaction_, "RefModel::add_entry is management-plane only");
  return ctx_add_entry(table, user);
}

void RefModel::apply_updates() {
  for (auto& [name, t] : tables_) {
    for (auto it = t.entries.begin(); it != t.entries.end();) {
      if (it->second.pending_delete) {
        it = t.entries.erase(it);
        continue;
      }
      // Re-validating unchanged entries is harmless (validation depends only
      // on static decl info) and matches the dirty-op check at prepare time.
      validate_user_spec(name, t, it->second.staged);
      it->second.committed = it->second.staged;
      ++it;
    }
    if (t.entries.size() > t.decl->size) {
      throw UserError("table " + name + ": full (" +
                      std::to_string(t.decl->size) + " entries)");
    }
  }
  committed_ = staged_;
}

// ---------------------------------------------------------------------------
// Dialogue
// ---------------------------------------------------------------------------

void RefModel::dialogue_iteration() {
  mv_ ^= 1;
  const int checkpoint = mv_ ^ 1;

  in_reaction_ = true;
  for (auto& rx : reactions_) {
    p4r::creact::PolledParams params;
    for (const auto& [c_name, v] : rx.meas[checkpoint]) {
      params.scalars[c_name] = static_cast<p4r::creact::CValue>(v);
    }
    for (const auto& w : rx.windows) {
      p4r::creact::PolledParams::Array arr;
      arr.lo = w.lo;
      const auto& cells = regs_.at(w.reg);
      for (std::uint32_t i = w.lo; i <= w.hi; ++i) {
        if (i >= cells.size()) {
          throw UserError("reaction " + rx.decl->name + ": register window [" +
                          std::to_string(w.lo) + ":" + std::to_string(w.hi) +
                          "] out of range for " + w.reg);
        }
        arr.values.push_back(static_cast<p4r::creact::CValue>(cells[i]));
      }
      params.arrays.emplace(w.c_name, std::move(arr));
    }
    RefEnv env(*this, rx.decl->name);
    rx.interp->run(params, env);
  }
  in_reaction_ = false;

  apply_updates();
}

// ---------------------------------------------------------------------------
// Packet-time execution
// ---------------------------------------------------------------------------

std::size_t RefModel::selector_of(const p4r::MalleableField& mf) const {
  return static_cast<std::size_t>(committed_.at(mf.name));
}

std::uint64_t RefModel::eval_operand(const p4::Operand& o,
                                     const std::vector<std::uint64_t>& args,
                                     const PacketState& st) const {
  switch (o.kind) {
    case p4::OperandKind::kField:
      return st.vals[o.field];
    case p4::OperandKind::kConst:
      return o.value;
    case p4::OperandKind::kParam:
      if (o.param >= args.size()) {
        throw UserError("ref: missing runtime arg " + std::to_string(o.param));
      }
      return args[o.param];
    case p4::OperandKind::kMbl: {
      auto it = st.value_shadow.find(o.mbl);
      if (it != st.value_shadow.end()) return it->second;
      const auto* mf = fp_.find_field(o.mbl);
      if (mf == nullptr) throw UserError("ref: unknown malleable ${" + o.mbl + "}");
      return st.vals[mf->alts[selector_of(*mf)]];
    }
  }
  return 0;
}

bool RefModel::eval_cond(const p4::CondExpr& cond, const PacketState& st) const {
  auto value_of = [&](const p4::Operand& o) -> std::uint64_t {
    if (o.kind == p4::OperandKind::kParam) {
      throw UserError("ref: action param in control condition");
    }
    return eval_operand(o, {}, st);
  };
  const std::uint64_t a = value_of(cond.lhs);
  const std::uint64_t b = value_of(cond.rhs);
  switch (cond.op) {
    case p4::RelOp::kEq: return a == b;
    case p4::RelOp::kNe: return a != b;
    case p4::RelOp::kLt: return a < b;
    case p4::RelOp::kLe: return a <= b;
    case p4::RelOp::kGt: return a > b;
    case p4::RelOp::kGe: return a >= b;
  }
  return false;
}

void RefModel::exec_action(const p4::ActionDecl& act,
                           const std::vector<std::uint64_t>& args,
                           PacketState& st) {
  if (args.size() != act.params.size()) {
    throw UserError("ref: arg count mismatch for action " + act.name);
  }
  // A destination is a concrete field or a malleable: a malleable field
  // writes the committed alternative (the compiled path's specialization
  // does a fresh write at instruction time); a malleable value writes the
  // packet's metadata copy.
  auto store = [&](const p4::Operand& dst, std::uint64_t v) {
    if (dst.kind == p4::OperandKind::kField) {
      st.vals[dst.field] =
          truncate_to_width(v, fp_.prog.fields.width(dst.field));
      return;
    }
    if (dst.kind == p4::OperandKind::kMbl) {
      auto it = st.value_shadow.find(dst.mbl);
      if (it != st.value_shadow.end()) {
        const auto* mv = fp_.find_value(dst.mbl);
        ensures(mv != nullptr, "ref: shadow without declaration");
        it->second = truncate_to_width(v, mv->width);
        return;
      }
      const auto* mf = fp_.find_field(dst.mbl);
      if (mf != nullptr) {
        const p4::FieldId f = mf->alts[selector_of(*mf)];
        st.vals[f] = truncate_to_width(v, fp_.prog.fields.width(f));
        return;
      }
    }
    throw UserError("ref: bad destination operand in " + act.name);
  };
  for (const auto& ins : act.body) {
    auto arg = [&](std::size_t i) { return eval_operand(ins.args[i], args, st); };
    switch (ins.op) {
      case p4::PrimOp::kModifyField:
        store(ins.args[0], arg(1));
        break;
      case p4::PrimOp::kAdd:
        store(ins.args[0], arg(1) + arg(2));
        break;
      case p4::PrimOp::kSubtract:
        store(ins.args[0], arg(1) - arg(2));
        break;
      case p4::PrimOp::kAddToField:
        store(ins.args[0], eval_operand(ins.args[0], args, st) + arg(1));
        break;
      case p4::PrimOp::kSubtractFromField:
        store(ins.args[0], eval_operand(ins.args[0], args, st) - arg(1));
        break;
      case p4::PrimOp::kBitAnd:
        store(ins.args[0], arg(1) & arg(2));
        break;
      case p4::PrimOp::kBitOr:
        store(ins.args[0], arg(1) | arg(2));
        break;
      case p4::PrimOp::kBitXor:
        store(ins.args[0], arg(1) ^ arg(2));
        break;
      case p4::PrimOp::kShiftLeft:
        store(ins.args[0], arg(1) << (arg(2) & 63));
        break;
      case p4::PrimOp::kShiftRight:
        store(ins.args[0], arg(1) >> (arg(2) & 63));
        break;
      case p4::PrimOp::kRegisterRead: {
        auto rit = regs_.find(ins.object);
        if (rit == regs_.end()) {
          throw UserError("ref: unknown register " + ins.object);
        }
        const auto index = static_cast<std::uint32_t>(arg(1));
        if (index >= rit->second.size()) {
          throw UserError("register " + ins.object + ": index out of range");
        }
        store(ins.args[0], rit->second[index]);
        break;
      }
      case p4::PrimOp::kRegisterWrite: {
        auto rit = regs_.find(ins.object);
        if (rit == regs_.end()) {
          throw UserError("ref: unknown register " + ins.object);
        }
        const auto index = static_cast<std::uint32_t>(arg(0));
        if (index >= rit->second.size()) {
          throw UserError("register " + ins.object + ": index out of range");
        }
        rit->second[index] =
            truncate_to_width(arg(1), reg_width_.at(ins.object));
        break;
      }
      case p4::PrimOp::kCount: {
        auto cit = counters_.find(ins.object);
        if (cit == counters_.end()) {
          throw UserError("ref: unknown counter " + ins.object);
        }
        const auto index = static_cast<std::uint32_t>(arg(0));
        if (index >= cit->second.size()) {
          throw UserError("counter " + ins.object + ": index out of range");
        }
        ++cit->second[index];
        break;
      }
      case p4::PrimOp::kModifyFieldWithHash:
        throw RefUnsupported("ref: hash calculations unsupported");
      case p4::PrimOp::kDrop:
        st.dropped = true;
        break;
      case p4::PrimOp::kNoOp:
        break;
    }
  }
}

bool RefModel::entry_matches(const TableMeta& t, const p4::EntrySpec& spec,
                             const PacketState& st) const {
  const auto& reads = t.decl->reads;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto& read = reads[i];
    const auto& k = spec.key[i];
    if (read.is_malleable()) {
      const auto* mf = fp_.find_field(read.mbl);
      ensures(mf != nullptr, "ref: unchecked malleable read");
      const std::uint64_t fval = st.vals[mf->alts[selector_of(*mf)]];
      // The compiled alternative column holds {v & premask, m & premask} and
      // matches ternary-style regardless of the user-facing kind.
      const std::uint64_t eff = k.mask & read.premask;
      if ((fval & eff) != (k.value & eff)) return false;
      continue;
    }
    const std::uint64_t fval = st.vals[read.field];
    switch (read.kind) {
      case p4::MatchKind::kExact:
        if (fval != k.value) return false;
        break;
      case p4::MatchKind::kTernary:
      case p4::MatchKind::kLpm:
        if ((fval & k.mask) != (k.value & k.mask)) return false;
        break;
      case p4::MatchKind::kValid:
        throw RefUnsupported("ref: valid match kind unsupported");
    }
  }
  return true;
}

unsigned RefModel::entry_prefix(const TableMeta& t,
                                const p4::EntrySpec& spec) const {
  unsigned prefix = 0;
  const auto& reads = t.decl->reads;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].kind != p4::MatchKind::kLpm) continue;
    if (reads[i].is_malleable()) {
      const auto* mf = fp_.find_field(reads[i].mbl);
      prefix += prefix_length(spec.key[i].mask & reads[i].premask, mf->width);
    } else {
      prefix += prefix_length(spec.key[i].mask,
                              fp_.prog.fields.width(reads[i].field));
    }
  }
  return prefix;
}

void RefModel::apply_table(const TableMeta& t, PacketState& st) {
  const p4::EntrySpec* best = nullptr;
  unsigned best_prefix = 0;
  if (!t.decl->reads.empty()) {
    // Ascending id order mirrors the concrete table's insert_seq tie-break:
    // user entries reach every vv copy in add order.
    for (const auto& [id, e] : t.entries) {
      if (!e.committed.has_value()) continue;
      if (!entry_matches(t, *e.committed, st)) continue;
      const unsigned prefix = entry_prefix(t, *e.committed);
      const bool better =
          best == nullptr || e.committed->priority > best->priority ||
          (e.committed->priority == best->priority && prefix > best_prefix);
      if (better) {
        best = &*e.committed;
        best_prefix = prefix;
      }
    }
  }
  if (best != nullptr) {
    const auto* act = fp_.prog.find_action(best->action);
    if (act == nullptr) throw UserError("ref: unknown action " + best->action);
    exec_action(*act, best->action_args, st);
    return;
  }
  if (t.default_action.empty()) return;  // miss + no default = no-op
  const auto* act = fp_.prog.find_action(t.default_action);
  if (act == nullptr) {
    throw UserError("ref: unknown default action " + t.default_action);
  }
  exec_action(*act, t.default_args, st);
}

void RefModel::run_control(const std::vector<p4::ControlNode>& nodes,
                           PacketState& st) {
  for (const auto& node : nodes) {
    if (const auto* ap = std::get_if<p4::ApplyNode>(&node.node)) {
      apply_table(table_rt(ap->table), st);
    } else {
      const auto& iff = std::get<p4::IfNode>(node.node);
      if (eval_cond(iff.cond, st)) {
        run_control(iff.then_branch, st);
      } else {
        run_control(iff.else_branch, st);
      }
    }
  }
}

void RefModel::capture(PacketState& st, p4::Gress gress) {
  for (auto& rx : reactions_) {
    for (const auto& cap : rx.caps) {
      if (cap.gress != gress) continue;
      rx.meas[mv_][cap.c_name] = st.vals[cap.field];
    }
  }
}

RefVerdict RefModel::process_packet(const PacketSpec& ps, std::uint64_t pid) {
  RefVerdict v;
  v.pid = pid;

  PacketState st;
  st.vals.assign(fp_.prog.fields.size(), 0);
  for (const auto& mval : fp_.values) {
    st.value_shadow[mval.name] = committed_.at(mval.name);
  }
  const auto& cat = fp_.prog.fields;
  auto set_field = [&](p4::FieldId f, std::uint64_t value) {
    st.vals[f] = truncate_to_width(value, cat.width(f));
  };
  set_field(f_ingress_port_, static_cast<std::uint64_t>(ps.port));
  set_field(f_packet_length_, ps.length);
  if (f_pid_ != p4::kInvalidField) set_field(f_pid_, pid);
  for (const auto& [name, value] : ps.fields) {
    const p4::FieldId f = cat.find(name);
    if (f == p4::kInvalidField) {
      throw UserError("packet spec: unknown field " + name);
    }
    set_field(f, value);
  }

  run_control(fp_.prog.ingress.nodes, st);
  capture(st, p4::Gress::kIngress);
  if (st.dropped) return v;

  const std::uint64_t port_out = st.vals[f_egress_spec_];
  if (port_out == static_cast<std::uint64_t>(recirc_port_)) {
    throw RefUnsupported("ref: recirculation unsupported");
  }
  if (port_out >= static_cast<std::uint64_t>(num_ports_)) return v;

  set_field(f_egress_port_, port_out);
  run_control(fp_.prog.egress.nodes, st);
  capture(st, p4::Gress::kEgress);
  if (st.dropped) return v;

  v.forwarded = true;
  v.port = static_cast<int>(port_out);
  for (p4::FieldId f = 0; f < cat.size(); ++f) {
    if (cat.instance(f) == p4::intrinsics::kInstance) continue;
    v.fields.emplace_back(cat.full_name(f), st.vals[f]);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Snapshot surface
// ---------------------------------------------------------------------------

std::uint64_t RefModel::scalar(const std::string& name) const {
  auto it = staged_.find(name);
  if (it == staged_.end()) throw UserError("no malleable scalar: " + name);
  return it->second;
}

std::vector<std::string> RefModel::scalar_names() const {
  std::vector<std::string> out;
  for (const auto& [name, v] : staged_) out.push_back(name);
  return out;
}

std::uint32_t RefModel::counter_count(const std::string& name) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) throw UserError("unknown counter: " + name);
  return static_cast<std::uint32_t>(it->second.size());
}

std::uint64_t RefModel::counter_value(const std::string& name,
                                      std::uint32_t idx) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) throw UserError("unknown counter: " + name);
  if (idx >= it->second.size()) {
    throw UserError("counter " + name + ": index out of range");
  }
  return it->second[idx];
}

std::vector<std::string> RefModel::counter_names() const {
  std::vector<std::string> out;
  for (const auto& [name, cells] : counters_) out.push_back(name);
  return out;
}

std::size_t RefModel::entry_count(const std::string& table) const {
  return ctx_entry_count(table);
}

std::vector<RefModel::EntryView> RefModel::entries(
    const std::string& table) const {
  const auto& t = table_rt(table);
  std::vector<EntryView> out;
  for (const auto& [id, e] : t.entries) {
    if (e.pending_delete) continue;
    out.push_back(EntryView{e.staged.key, e.staged.action,
                            e.staged.action_args});
  }
  return out;
}

std::vector<std::string> RefModel::table_names() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

}  // namespace mantis::check
