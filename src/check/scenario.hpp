// Shared types for the differential fuzzing harness (src/check): a Scenario
// bundles everything one differential run needs — a generated (or hand-
// written) P4R program, the initial table entries, and a seeded packet trace
// partitioned into dialogue epochs. Scenarios are plain data: the same
// Scenario always produces the same execution on both the reference
// interpreter path and the compiled sim path, which is what makes minimized
// repros replayable byte-for-byte from tests/corpus/.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mantis::check {

/// A P4R program as a list of independently removable source chunks. The
/// renderer concatenates the sections in declaration order; the minimizer
/// deletes chunks and lets the compile oracle reject invalid candidates.
struct GenSpec {
  std::vector<std::string> decls;    ///< headers, malleables, registers, ...
  std::vector<std::string> actions;  ///< one complete action block each
  std::vector<std::string> tables;   ///< one complete table block each
  std::vector<std::string> ingress;  ///< one control statement each
  std::vector<std::string> egress;
  std::string reaction_sig;          ///< e.g. "reaction rx(reg q[0:7])"
  std::vector<std::string> reaction_stmts;  ///< self-contained C statements

  /// Verbatim P4R source. When set, render() returns it unchanged and the
  /// chunk lists above are ignored — this is how hand-written programs (the
  /// upstream conformance set in examples/p4r/) run through the differential
  /// harness without being re-sliced into chunks.
  std::string raw;

  /// Renders the spec as P4R source text.
  std::string render() const;

  bool operator==(const GenSpec&) const = default;
};

/// One management-plane entry installed before the first epoch (on both the
/// reference model and the compiled stack, in scenario order).
struct InitialEntry {
  std::string table;
  std::string action;
  std::vector<std::uint64_t> key;    ///< one value per original read
  std::vector<std::uint64_t> masks;  ///< parallel masks (all-ones for exact)
  std::vector<std::uint64_t> args;   ///< runtime action parameters
  std::int32_t priority = 0;

  bool operator==(const InitialEntry&) const = default;
};

/// One injected packet. Packets are replayed in vector order; each epoch's
/// packets are injected (spaced so the switch fully drains between arrivals)
/// and the event loop drained before the dialogue iteration runs.
struct PacketSpec {
  std::uint32_t epoch = 0;
  int port = 0;
  std::uint32_t length = 64;
  /// Field assignments by full name ("hdr.f0"); unset fields stay zero.
  std::vector<std::pair<std::string, std::uint64_t>> fields;

  bool operator==(const PacketSpec&) const = default;
};

struct Scenario {
  std::uint64_t seed = 0;    ///< generator seed (bookkeeping only)
  std::uint32_t epochs = 1;  ///< dialogue iterations to run
  GenSpec program;
  std::vector<InitialEntry> entries;
  std::vector<PacketSpec> packets;  ///< sorted by epoch at generation time

  bool operator==(const Scenario&) const = default;
};

/// Serializes a scenario as a standalone text repro (the tests/corpus/
/// format) and parses it back. parse throws UserError on malformed input.
std::string serialize_scenario(const Scenario& s);
Scenario parse_scenario(const std::string& text);

}  // namespace mantis::check
