// Tests for workload generators and estimation baselines.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baseline/count_min.hpp"
#include "baseline/dp_hashtable.hpp"
#include "baseline/legacy_controller.hpp"
#include "baseline/sflow.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "p4r/sema.hpp"
#include "sim/switch.hpp"
#include "util/check.hpp"
#include "workload/flow_classes.hpp"
#include "workload/fluid_tcp.hpp"
#include "workload/heartbeat.hpp"
#include "workload/trace_gen.hpp"
#include "workload/udp_flood.hpp"

namespace mantis {
namespace {

// ---------------------------------------------------------------------------
// Trace generator
// ---------------------------------------------------------------------------

TEST(TraceGen, MatchesConfiguredShape) {
  workload::TraceConfig cfg;
  cfg.num_flows = 500;
  cfg.num_packets = 20000;
  cfg.duration_s = 0.1;
  const auto trace = workload::generate_trace(cfg);
  EXPECT_EQ(trace.packets.size(), 20000u);
  // Sorted by time, within the configured duration (approximately).
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_GE(trace.packets[i].t, trace.packets[i - 1].t);
  }
  EXPECT_LT(trace.packets.back().t, static_cast<Time>(0.2 * 1e9));
  // Ground truth is consistent with the packets.
  std::uint64_t total = 0;
  for (const auto& [src, bytes] : trace.bytes_per_src) total += bytes;
  std::uint64_t sum = 0;
  for (const auto& pkt : trace.packets) sum += pkt.bytes;
  EXPECT_EQ(total, sum);
  // Heavy tail: the top source dominates the median source.
  const auto top = trace.bytes_per_src.at(0x0a000001);
  std::vector<std::uint64_t> sizes;
  for (const auto& [src, bytes] : trace.bytes_per_src) sizes.push_back(bytes);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_GT(top, 20 * sizes[sizes.size() / 2]);
}

TEST(TraceGen, DeterministicPerSeed) {
  workload::TraceConfig cfg;
  cfg.num_flows = 100;
  cfg.num_packets = 1000;
  const auto a = workload::generate_trace(cfg);
  const auto b = workload::generate_trace(cfg);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.packets[500].src_ip, b.packets[500].src_ip);
  EXPECT_EQ(a.packets[500].t, b.packets[500].t);
  cfg.seed = 2;
  const auto c = workload::generate_trace(cfg);
  EXPECT_NE(a.packets[500].t, c.packets[500].t);
}

// ---------------------------------------------------------------------------
// Estimation baselines
// ---------------------------------------------------------------------------

TEST(Sflow, UnbiasedForLargeFlows) {
  baseline::SflowEstimator est(100, /*seed=*/5);
  const std::uint64_t truth = 1000000;
  for (std::uint64_t i = 0; i < truth / 100; ++i) est.observe(1, 100);
  const double rel_err =
      std::abs(static_cast<double>(est.estimate(1)) - truth) / truth;
  EXPECT_LT(rel_err, 0.35);
  EXPECT_GT(est.samples_taken(), 0u);
}

TEST(Sflow, SmallFlowsUsuallyMissed) {
  baseline::SflowEstimator est(30000, 5);
  for (int f = 0; f < 100; ++f) {
    for (int i = 0; i < 10; ++i) est.observe(static_cast<std::uint32_t>(f), 100);
  }
  int missed = 0;
  for (int f = 0; f < 100; ++f) {
    if (est.estimate(static_cast<std::uint32_t>(f)) == 0) ++missed;
  }
  EXPECT_GT(missed, 90);  // 1000 bytes at 1:30000 is almost never sampled
}

TEST(CountMin, NeverUnderestimates) {
  baseline::CountMinSketch cms(2, 64);
  Rng rng(3);
  std::map<std::uint32_t, std::uint64_t> truth;
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.uniform(300));
    const auto amount = rng.uniform_range(1, 1000);
    cms.add(key, amount);
    truth[key] += amount;
  }
  for (const auto& [key, value] : truth) {
    EXPECT_GE(cms.estimate(key), value);
  }
}

TEST(CountMin, CollisionsInflateSmallKeys) {
  // Small table, one elephant: victims of collisions overestimate hugely.
  baseline::CountMinSketch cms(2, 16);
  cms.add(42, 1'000'000);
  for (std::uint32_t k = 0; k < 200; ++k) cms.add(k, 10);
  std::uint64_t worst = 0;
  for (std::uint32_t k = 0; k < 200; ++k) {
    if (k != 42) worst = std::max(worst, cms.estimate(k));
  }
  EXPECT_GT(worst, 100'000u);
}

TEST(DpHashTable, ExactWithoutCollisions) {
  baseline::DpHashTable ht(1u << 16);
  ht.add(1, 100);
  ht.add(1, 50);
  ht.add(2, 70);
  EXPECT_EQ(ht.estimate(1), 150u);
  EXPECT_EQ(ht.estimate(2), 70u);
  EXPECT_EQ(ht.estimate(3), 0u);
}

TEST(DpHashTable, CollisionsMisattribute) {
  baseline::DpHashTable ht(4);  // tiny: collisions guaranteed
  for (std::uint32_t k = 0; k < 64; ++k) ht.add(k, 100);
  EXPECT_GT(ht.collisions(), 0u);
  // Some owner absorbed colliders' bytes; victims read zero.
  std::uint64_t max_est = 0;
  int zeros = 0;
  for (std::uint32_t k = 0; k < 64; ++k) {
    max_est = std::max(max_est, ht.estimate(k));
    if (ht.estimate(k) == 0) ++zeros;
  }
  EXPECT_GT(max_est, 100u);
  EXPECT_GT(zeros, 0);
}

// ---------------------------------------------------------------------------
// Sources driving the simulated switch
// ---------------------------------------------------------------------------

const char* kEchoSrc = R"P4R(
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; } }
header ipv4_t ipv4;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table out { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(out); }
control egress { }
)P4R";

TEST(Heartbeat, EmitsAtConfiguredPeriodWithLoss) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::Switch sw(loop, prog);
  workload::HeartbeatConfig cfg;
  cfg.port = 3;
  cfg.period = 1 * kMicrosecond;
  workload::HeartbeatSource hb(sw, cfg);
  hb.start(1 * kMillisecond);
  loop.run();
  EXPECT_NEAR(static_cast<double>(hb.emitted()), 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(sw.port_stats(3).rx_pkts), 1000.0, 2.0);

  workload::HeartbeatConfig lossy = cfg;
  lossy.loss_prob = 0.5;
  workload::HeartbeatSource hb2(sw, lossy);
  hb2.start(loop.now() + 1 * kMillisecond);
  loop.run();
  EXPECT_NEAR(static_cast<double>(hb2.emitted()), 500.0, 80.0);
}

TEST(FluidTcp, RampsUpWhenUncongested) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::Switch sw(loop, prog);
  workload::FluidTcpConfig cfg;
  cfg.src_ip = 0x0a000001;
  cfg.dst_ip = 1;
  cfg.init_rate_gbps = 0.05;
  cfg.additive_gbps = 0.05;
  cfg.rtt = 20 * kMicrosecond;
  workload::FluidTcpFlow flow(sw, cfg);
  sw.set_on_transmit(
      [&](const sim::Packet& pkt, int, Time) { flow.on_transmit(pkt); });
  flow.start(2 * kMillisecond);
  loop.run_until(2 * kMillisecond);
  EXPECT_GT(flow.rate_gbps(), 1.0);
  EXPECT_GT(flow.delivered_bytes(), 0u);
}

TEST(FluidTcp, BacksOffUnderLoss) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::SwitchConfig scfg;
  scfg.port_gbps = 1.0;  // 1G bottleneck
  scfg.queue_capacity_bytes = 15000;
  sim::Switch sw(loop, prog, scfg);
  workload::FluidTcpConfig cfg;
  cfg.src_ip = 0x0a000001;
  cfg.dst_ip = 1;
  cfg.init_rate_gbps = 5.0;  // way above the bottleneck
  cfg.rtt = 20 * kMicrosecond;
  workload::FluidTcpFlow flow(sw, cfg);
  sw.set_on_transmit(
      [&](const sim::Packet& pkt, int, Time) { flow.on_transmit(pkt); });
  flow.start(3 * kMillisecond);
  loop.run_until(3 * kMillisecond);
  EXPECT_LT(flow.rate_gbps(), 2.5);
}

// ---------------------------------------------------------------------------
// Aggregated Zipf flow classes
// ---------------------------------------------------------------------------

constexpr const char* kRouteOnlySrc = R"P4R(
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; }
}
header ipv4_t ipv4;
action set_egress(port) { modify_field(standard_metadata.egress_spec, port); }
table route {
  reads { ipv4.dstAddr : exact; }
  actions { set_egress; _drop; }
  default_action : _drop;
  size : 64;
}
control ingress { apply(route); }
control egress { }
)P4R";

/// 2x2 leaf-spine with shortest-path routes installed on every switch.
struct FlowClassFabric {
  sim::EventLoop loop;
  p4::Program prog;
  std::unique_ptr<net::Fabric> fabric;

  FlowClassFabric() {
    prog = p4r::frontend(kRouteOnlySrc).prog;
    net::FabricConfig fc;
    fc.base_seed = 11;
    fabric = std::make_unique<net::Fabric>(
        loop, prog, net::Topology::leaf_spine(2, 2, 1), fc);
    for (net::NodeId n = 0; n < fabric->num_switches(); ++n) {
      for (const auto& [addr, port] :
           fabric->topo().compute_routes_from(n, {})) {
        p4::EntrySpec spec;
        spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
        spec.action = "set_egress";
        spec.action_args = {static_cast<std::uint64_t>(port)};
        fabric->switch_at(n).table("route").add_entry(spec);
      }
    }
  }
};

TEST(FlowClasses, ZipfPartitionIsExactAndHeavyTailed) {
  const auto parts = workload::FlowClasses::zipf_partition(1'000'000, 64, 1.1);
  ASSERT_EQ(parts.size(), 64u);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    sum += parts[i];
    if (i > 0) EXPECT_LE(parts[i], parts[i - 1]) << "class " << i;
  }
  EXPECT_EQ(sum, 1'000'000u);                  // exact partition
  EXPECT_GT(parts[0], 10 * parts[63]);         // heavy tail
  EXPECT_GT(parts[63], 0u);                    // no starved class
  // Deterministic (the bench and tests rely on replayability).
  EXPECT_EQ(parts, workload::FlowClasses::zipf_partition(1'000'000, 64, 1.1));
  // Remainder handling: totals that don't divide cleanly still sum exactly.
  const auto odd = workload::FlowClasses::zipf_partition(17, 5, 1.0);
  std::uint64_t odd_sum = 0;
  for (const auto v : odd) odd_sum += v;
  EXPECT_EQ(odd_sum, 17u);
}

TEST(FlowClasses, EmitsCappedSamplesAndDeliversAll) {
  FlowClassFabric f;
  workload::FlowClassesConfig cfg;
  cfg.total_flows = 100'000;  // huge aggregate rate: every epoch hits the cap
  cfg.epoch = 10 * kMicrosecond;
  cfg.max_samples_per_epoch = 4;
  std::vector<workload::FlowClasses::Endpoint> eps = {
      {0x0a000000u, 0x0a000100u},  // leaf0 host -> leaf1 host
      {0x0a000100u, 0x0a000000u},
  };
  workload::FlowClasses flows(*f.fabric, cfg, eps);
  EXPECT_EQ(flows.num_classes(), 2u);
  EXPECT_EQ(flows.flows_in(0) + flows.flows_in(1), 100'000u);

  const Time until = 100 * kMicrosecond;  // 10 epochs
  flows.start(until);
  // Drain past the horizon so in-flight samples land.
  f.loop.run_until(until + 50 * kMicrosecond);

  // The cap binds every epoch at this rate: 2 classes x 10 epochs x 4.
  EXPECT_EQ(flows.samples_sent(), 80u);
  // Lossless fabric: every sample delivered and attributed to its class.
  EXPECT_EQ(flows.samples_delivered(), flows.samples_sent());
  // AIMD kept rates inside the configured band, deterministically.
  for (std::size_t c = 0; c < flows.num_classes(); ++c) {
    EXPECT_GE(flows.rate_pps(c), cfg.min_rate_pps);
    EXPECT_LE(flows.rate_pps(c), cfg.max_rate_pps);
  }
  EXPECT_GT(flows.aggregate_rate_pps(), 0.0);
}

TEST(FlowClasses, RunsAreReplayable) {
  auto run = [] {
    FlowClassFabric f;
    workload::FlowClassesConfig cfg;
    cfg.total_flows = 5'000;
    cfg.epoch = 10 * kMicrosecond;
    std::vector<workload::FlowClasses::Endpoint> eps = {
        {0x0a000000u, 0x0a000100u},
        {0x0a000100u, 0x0a000000u},
    };
    workload::FlowClasses flows(*f.fabric, cfg, eps);
    flows.start(80 * kMicrosecond);
    f.loop.run_until(120 * kMicrosecond);
    return std::tuple(flows.samples_sent(), flows.samples_delivered(),
                      flows.rate_pps(0), flows.rate_pps(1));
  };
  EXPECT_EQ(run(), run());
}

TEST(FlowClasses, RejectsEpochsBelowTheLookaheadContract) {
  FlowClassFabric f;
  workload::FlowClassesConfig cfg;
  cfg.epoch = 1 * kMicrosecond;
  std::vector<workload::FlowClasses::Endpoint> eps = {
      {0x0a000000u, 0x0a000100u}};
  workload::FlowClasses flows(*f.fabric, cfg, eps);
  // The delivery-cell ring is only deterministic with epoch >= 2x the
  // engine lookahead; a too-coarse lookahead must be rejected loudly.
  EXPECT_THROW(flows.start(10 * kMicrosecond, /*engine_lookahead=*/600),
               PreconditionError);
}

TEST(UdpFlood, SendsAtConfiguredRate) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::Switch sw(loop, prog);
  workload::UdpFloodConfig cfg;
  cfg.rate_gbps = 10.0;
  cfg.pkt_bytes = 1250;
  cfg.start_at = 100 * kMicrosecond;
  workload::UdpFloodSource flood(sw, cfg);
  flood.start(1100 * kMicrosecond);
  loop.run_until(1100 * kMicrosecond);
  // 10 Gbps for 1ms = 1.25MB = 1000 packets of 1250B.
  EXPECT_NEAR(static_cast<double>(flood.sent()), 1000.0, 10.0);
  EXPECT_EQ(flood.first_packet_at(), 100 * kMicrosecond);
}

TEST(LegacyUpdater, RecordsLatencies) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::Switch sw(loop, prog);
  driver::Driver drv(sw);
  const auto h = drv.add_entry("out", [] {
    p4::EntrySpec s;
    s.action = "fwd";
    s.action_args = {2};
    return s;
  }());
  baseline::LegacyUpdaterConfig cfg;
  cfg.table = "out";
  cfg.handle = h;
  cfg.action = "fwd";
  cfg.args = {3};
  baseline::LegacyUpdater updater(drv, cfg);
  updater.start(2 * kMillisecond);
  loop.run();
  EXPECT_GT(updater.latencies().count(), 50u);
  // Uncontended: every op completes in exactly the model cost.
  EXPECT_DOUBLE_EQ(updater.latencies().max(),
                   static_cast<double>(drv.costs().table_mod(true)));
}

TEST(SlowPoller, PollsAtCadence) {
  sim::EventLoop loop;
  auto prog = p4r::frontend(kEchoSrc).prog;
  sim::Switch sw(loop, prog);
  driver::Driver drv(sw);
  // Reuse an intrinsic-free register by augmenting the program is overkill;
  // poll a register added via a fresh program instead.
  auto prog2 = p4r::frontend(R"P4R(
register r { width : 32; instance_count : 8; }
control ingress { }
control egress { }
)P4R").prog;
  sim::Switch sw2(loop, prog2);
  driver::Driver drv2(sw2);
  baseline::SlowPollerConfig cfg;
  cfg.reg = "r";
  cfg.lo = 0;
  cfg.hi = 7;
  cfg.period = 10 * kMillisecond;
  int callbacks = 0;
  baseline::SlowPoller poller(drv2, cfg, [&](Time, const std::vector<std::uint64_t>& v) {
    ++callbacks;
    EXPECT_EQ(v.size(), 8u);
  });
  poller.start(95 * kMillisecond);
  loop.run();
  EXPECT_EQ(callbacks, 10);
}

}  // namespace
}  // namespace mantis
