#include "sim/packet.hpp"

namespace mantis::sim {

Packet::Packet(std::size_t field_count, std::uint32_t length_bytes)
    : values_(field_count, 0), length_bytes_(length_bytes) {}

}  // namespace mantis::sim
