#include "telemetry/shard_lane.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mantis::telemetry {

thread_local ShardLane* ShardLane::tls_ = nullptr;

void ShardLane::merge_apply(const std::vector<ShardLane*>& lanes) {
  expects(current() == nullptr,
          "ShardLane::merge_apply: must run outside any lane");
  std::size_t total = 0;
  for (const ShardLane* lane : lanes) total += lane->ops_.size();
  if (total == 0) return;

  std::vector<Op*> merged;
  merged.reserve(total);
  for (ShardLane* lane : lanes) {
    for (Op& op : lane->ops_) merged.push_back(&op);
  }
  // Canonical order. Keys are unique — (t, src, seq) identifies the
  // emitting event, emit its operations — so the sort is a total order and
  // the merged stream equals the sequential recording order.
  std::sort(merged.begin(), merged.end(), [](const Op* a, const Op* b) {
    if (a->t != b->t) return a->t < b->t;
    if (a->src != b->src) return a->src < b->src;
    if (a->seq != b->seq) return a->seq < b->seq;
    return a->emit < b->emit;
  });
  for (Op* op : merged) op->apply();
  for (ShardLane* lane : lanes) lane->ops_.clear();
}

}  // namespace mantis::telemetry
