// Figure 11: CPU utilization vs reaction time.
//
// The Mantis agent busy-loops on a dedicated core by default; `nanosleep`
// pacing trades reaction time for lower CPU utilization. The paper's claim:
// reducing utilization to ~20% still keeps average reaction time in the 10s
// of microseconds. Workload: the update of a single malleable field, as in
// the paper.
#include "bench_util.hpp"

namespace {

using namespace mantis;

const char* kSingleFieldSrc = R"P4R(
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable field sel { width : 32; init : h.a; alts { h.a, h.b } }
action use() { modify_field(standard_metadata.egress_spec, 1); add(h.b, h.b, ${sel}); }
table t { reads { h.a : ternary; } actions { use; } size : 8; }
control ingress { apply(t); }
control egress { }
reaction flip() {
  ${sel} = 1 - ${sel};
}
)P4R";

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig11_cpu", argc, argv);
  report.params().set("duration_ms", std::int64_t{20});
  bench::print_header(
      "Figure 11: CPU utilization vs avg reaction time (single malleable "
      "field update, nanosleep pacing)");
  bench::print_row({"sleep_us", "cpu_util_%", "avg_iter_us", "p99_iter_us",
                    "avg_period_us", "avg_react_us"});

  for (const Duration sleep_us : {0, 5, 10, 20, 50, 100, 200, 500}) {
    agent::AgentOptions opts;
    opts.pacing_sleep = sleep_us * kMicrosecond;
    bench::Stack stack(kSingleFieldSrc, {}, opts);
    stack.agent->run_prologue();

    const Time t0 = stack.loop.now();
    stack.agent->run_dialogue_until(t0 + 20 * kMillisecond);
    const Time elapsed = stack.loop.now() - t0;

    const double util = 100.0 * static_cast<double>(stack.agent->busy_time()) /
                        static_cast<double>(elapsed);
    const auto& lat = stack.agent->iteration_latencies();
    const double period =
        static_cast<double>(elapsed) /
        static_cast<double>(stack.agent->iterations());
    // An event lands uniformly within a loop period; it waits half a period
    // on average before the next iteration picks it up and reacts.
    const double react = period / 2.0 + lat.mean();
    bench::print_row({std::to_string(sleep_us), bench::fmt(util, 1),
                      bench::fmt(lat.mean() / 1000.0, 2),
                      bench::fmt(lat.percentile(99) / 1000.0, 2),
                      bench::fmt(period / 1000.0, 2),
                      bench::fmt(react / 1000.0, 2)});
    const std::string key = "sleep_us" + std::to_string(sleep_us);
    report.set(key + ".cpu_util_pct", util);
    report.set(key + ".avg_iter_us", lat.mean() / 1000.0);
    report.set(key + ".p99_iter_us", lat.percentile(99) / 1000.0);
    report.set(key + ".avg_period_us", period / 1000.0);
    report.set(key + ".avg_react_us", react / 1000.0);
  }
  std::printf(
      "\nNote: 'avg_react_us' = expected event-to-reaction latency\n"
      "(half a loop period of waiting + one iteration), the paper's\n"
      "reaction-time metric for the utilization tradeoff.\n");
  report.write();
  return 0;
}
