// Thread-local size-class freelist pools for the hot-path allocations the
// profiler (telemetry/prof) attributed to event dispatch: std::function
// captures carrying packets, per-packet field vectors, and deferred
// telemetry ops. ~29 operator-new calls per event at the 64-switch scale
// (docs/EXPERIMENTS.md) were the dominant cost after packet_transit itself.
//
// Design:
//  * acquire(bytes)/release(ptr, bytes) round the request up to a power-of-
//    two size class (64..4096 bytes) and recycle blocks through a per-thread
//    fixed-capacity freelist. Freelists never allocate and never migrate
//    blocks between threads: a block released on thread T is only ever
//    reused by thread T, so no synchronization is needed and TSan sees
//    nothing to race on (fresh blocks come from operator new, whose
//    happens-before edges are the allocator's problem).
//  * Exhaustion is graceful by construction: an empty freelist falls back
//    to operator new (counted in stats().fresh — the "pool grew" signal),
//    a full freelist falls back to operator delete (stats().overflow).
//    Oversize requests (> kMaxBlockBytes) pass through entirely.
//  * Under AddressSanitizer the pools pass every request straight through
//    to operator new/delete: recycling would defeat ASan's use-after-free
//    quarantine. pooling_active() tells tests which behavior to expect.
//  * Pool hits are invisible to the operator-new allocation hook
//    (telemetry/prof/alloc_hook.hpp) — that is the point: test_prof's
//    pinned per-packet-event allocation count measures what the pools
//    could not absorb.
//
// PoolAllocator<T> adapts acquire/release to the std::allocator interface
// so containers on per-event paths (sim::Packet's field vector) recycle
// their buffers too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

namespace mantis::util::pool {

/// Largest pooled request; anything bigger passes through to operator new.
inline constexpr std::size_t kMaxBlockBytes = 4096;
/// Smallest block handed out (also the class granularity floor).
inline constexpr std::size_t kMinBlockBytes = 64;
/// Per-thread, per-class freelist capacity (blocks kept for reuse).
inline constexpr std::size_t kFreelistCap = 256;

/// True when acquire/release actually recycle (false under ASan, where
/// everything passes through so the sanitizer sees real malloc/free).
bool pooling_active();

/// Lifetime counters, summed over all threads (relaxed atomics; read for
/// tests and reports, not for control flow).
struct PoolStats {
  std::uint64_t hits = 0;      ///< acquires served from a freelist
  std::uint64_t fresh = 0;     ///< acquires that fell back to operator new
  std::uint64_t recycled = 0;  ///< releases parked on a freelist
  std::uint64_t overflow = 0;  ///< releases freed because the list was full
  std::uint64_t oversize = 0;  ///< requests beyond kMaxBlockBytes
};
PoolStats stats();

/// Frees every block parked on the calling thread's freelists. For tests
/// that pin operator-new counts: pooled reuse makes the count depend on
/// cache warmth, so runs that must allocate identically purge first.
void purge_thread_cache() noexcept;

/// A block of at least `bytes` bytes, aligned for std::max_align_t.
void* acquire(std::size_t bytes);
/// Returns a block obtained from acquire(bytes) — same `bytes` value.
void release(void* p, std::size_t bytes) noexcept;

/// std::allocator drop-in backed by acquire/release. Stateless: all
/// instances compare equal, so containers move buffers freely between
/// allocator copies (release is keyed only by size).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > SIZE_MAX / sizeof(T)) throw std::bad_array_new_length();
    return static_cast<T*>(acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace mantis::util::pool
