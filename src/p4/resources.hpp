// Resource accounting over the IR: TCAM/SRAM bits, metadata bits, table and
// register counts. Backs Table 1's Memory columns and Figure 13's TCAM plots.
//
// Cost model (documented, deliberately simple):
//  - A ternary or LPM table lives in TCAM; its cost is entries * key_bits
//    (value+mask doubling and slicing granularity are constant factors the
//    paper's relative comparisons don't depend on).
//  - An exact table lives in SRAM: entries * (key_bits + action data bits),
//    where action data bits = widest action's parameter bits + an 8-bit
//    action id.
//  - Ternary tables additionally pay SRAM for action data.
//  - Registers and counters are SRAM.
//  - Metadata bits = sum of all metadata instance field widths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4/ir.hpp"
#include "p4/rmt_model.hpp"

namespace mantis::p4 {

struct TableResources {
  std::string name;
  std::size_t entries = 0;
  std::uint64_t match_bits = 0;        ///< key width in bits
  std::uint64_t action_data_bits = 0;  ///< per-entry action payload
  std::uint64_t tcam_bits = 0;
  std::uint64_t sram_bits = 0;
};

struct ResourceSummary {
  std::vector<TableResources> tables;
  std::uint64_t table_tcam_bits = 0;
  std::uint64_t table_sram_bits = 0;
  std::uint64_t register_sram_bits = 0;
  std::uint64_t metadata_bits = 0;
  std::size_t num_tables = 0;
  std::size_t num_registers = 0;

  std::uint64_t total_tcam_bytes() const { return (table_tcam_bits + 7) / 8; }
  std::uint64_t total_sram_bytes() const {
    return (table_sram_bits + register_sram_bits + 7) / 8;
  }
};

/// Computes the summary for a whole program.
ResourceSummary compute_resources(const Program& prog);

/// Key width (bits) of a single table, counting each read at its field width
/// (valid matches count 1 bit).
std::uint64_t table_match_bits(const Program& prog, const TableDecl& tbl);

/// Widest action payload among the table's actions, plus an 8-bit action id.
std::uint64_t table_action_data_bits(const Program& prog, const TableDecl& tbl);

/// Signed per-component difference of two summaries. Negative components are
/// meaningful (a transformation can *save* resources — e.g. eliminating a
/// user register in favor of duplicated copies), so this no longer clamps at
/// zero the way the implicit-constant model did.
struct ResourceDelta {
  std::int64_t table_tcam_bits = 0;
  std::int64_t table_sram_bits = 0;
  std::int64_t register_sram_bits = 0;
  std::int64_t metadata_bits = 0;
  std::int64_t num_tables = 0;
  std::int64_t num_registers = 0;
};

/// Marginal usage of `full` over `base` (signed per component).
/// This is how Table 1 reports "marginal increase over a basic router".
ResourceDelta marginal(const ResourceSummary& full, const ResourceSummary& base);

/// Whole-pipeline headroom of `summary` against `model` (stages x per-stage
/// capacity). Negative components mean the program is over budget; fits()
/// is the aggregate answer. This is the summary-level round-trip through the
/// same RmtResourceModel the stage allocator enforces per stage (the
/// allocator can still reject a program whose aggregate fits, e.g. for
/// dependency-chain or co-location reasons).
struct ResourceHeadroom {
  std::int64_t tcam_bits = 0;
  std::int64_t sram_bits = 0;  ///< tables + registers vs total SRAM
  std::int64_t tables = 0;
  std::int64_t registers = 0;
  bool fits() const {
    return tcam_bits >= 0 && sram_bits >= 0 && tables >= 0 && registers >= 0;
  }
};

ResourceHeadroom headroom(const ResourceSummary& summary,
                          const RmtResourceModel& model);

}  // namespace mantis::p4
