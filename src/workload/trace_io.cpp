#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace mantis::workload {

namespace {
constexpr const char* kMagic = "#mantis-trace v1";
}

void write_trace(const Trace& trace, std::ostream& out) {
  out << kMagic << "\n";
  out << "# t_ns src_ip dst_ip src_port dst_port proto bytes\n";
  for (const auto& pkt : trace.packets) {
    out << pkt.t << ' ' << std::hex << pkt.src_ip << ' ' << pkt.dst_ip
        << std::dec << ' ' << pkt.src_port << ' ' << pkt.dst_port << ' '
        << static_cast<unsigned>(pkt.proto) << ' ' << pkt.bytes << "\n";
  }
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw UserError("save_trace: cannot open " + path);
  write_trace(trace, out);
  if (!out) throw UserError("save_trace: write failed for " + path);
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  bool magic_seen = false;
  Time last_t = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kMagic) magic_seen = true;
      continue;
    }
    if (!magic_seen) {
      throw UserError("read_trace: missing '" + std::string(kMagic) +
                      "' header before data");
    }
    std::istringstream ss(line);
    TracePacket pkt;
    long long t = 0;
    unsigned proto = 0;
    if (!(ss >> t >> std::hex >> pkt.src_ip >> pkt.dst_ip >> std::dec >>
          pkt.src_port >> pkt.dst_port >> proto >> pkt.bytes)) {
      throw UserError("read_trace: malformed line " + std::to_string(line_no));
    }
    if (t < last_t) {
      throw UserError("read_trace: timestamps not monotone at line " +
                      std::to_string(line_no));
    }
    last_t = t;
    pkt.t = t;
    pkt.proto = static_cast<std::uint8_t>(proto);
    trace.bytes_per_src[pkt.src_ip] += pkt.bytes;
    trace.packets_per_src[pkt.src_ip] += 1;
    trace.packets.push_back(pkt);
  }
  if (!magic_seen) throw UserError("read_trace: not a mantis trace file");
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UserError("load_trace: cannot open " + path);
  return read_trace(in);
}

}  // namespace mantis::workload
