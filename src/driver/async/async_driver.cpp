#include "driver/async/async_driver.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/provenance.hpp"
#include "util/check.hpp"

namespace mantis::driver {

namespace {

/// One record per op validation failure; nullopt = op is applicable.
/// `occupancy` tracks the net entry-count delta the batch itself causes per
/// table, so capacity is checked against the state the batch produces.
std::optional<std::string> validate_op(
    sim::Switch& sw, const AsyncOp& op,
    std::unordered_map<std::string, std::int64_t>& occupancy) {
  try {
    switch (op.kind) {
      case AsyncOp::Kind::kAdd: {
        auto& table = sw.table(op.target);
        const auto& decl = table.decl();
        if (op.spec.key.size() != decl.reads.size()) {
          return "key arity " + std::to_string(op.spec.key.size()) +
                 " != " + std::to_string(decl.reads.size());
        }
        if (std::find(decl.actions.begin(), decl.actions.end(),
                      op.spec.action) == decl.actions.end()) {
          return "action not bound: " + op.spec.action;
        }
        auto& delta = occupancy[op.target];
        if (static_cast<std::int64_t>(table.entry_count()) + delta >=
            static_cast<std::int64_t>(table.capacity())) {
          return "table full: " + op.target;
        }
        ++delta;
        return std::nullopt;
      }
      case AsyncOp::Kind::kMod: {
        auto& table = sw.table(op.target);
        table.entry(op.handle);  // throws on a stale/unknown handle
        const auto& decl = table.decl();
        if (std::find(decl.actions.begin(), decl.actions.end(), op.action) ==
            decl.actions.end()) {
          return "action not bound: " + op.action;
        }
        return std::nullopt;
      }
      case AsyncOp::Kind::kDel: {
        sw.table(op.target).entry(op.handle);
        --occupancy[op.target];
        return std::nullopt;
      }
      case AsyncOp::Kind::kSetDefault: {
        const auto& decl = sw.table(op.target).decl();
        if (!op.action.empty() &&
            std::find(decl.actions.begin(), decl.actions.end(), op.action) ==
                decl.actions.end()) {
          return "action not bound: " + op.action;
        }
        return std::nullopt;
      }
      case AsyncOp::Kind::kRegWrite:
      case AsyncOp::Kind::kRegRead:
        sw.registers().read(op.target, op.index);  // throws on bad reg/index
        return std::nullopt;
    }
  } catch (const UserError& e) {
    return std::string(e.what());
  }
  return "unreachable op kind";
}

/// Applies one op; fills the result's payload. May throw UserError for the
/// rare spec classes validation doesn't cover (e.g. duplicate exact key).
void apply_op(sim::Switch& sw, AsyncOp& op, OpResult& res) {
  switch (op.kind) {
    case AsyncOp::Kind::kAdd:
      res.handle = sw.table(op.target).add_entry(op.spec);
      break;
    case AsyncOp::Kind::kMod:
      sw.table(op.target).modify_entry(op.handle, op.action,
                                       std::move(op.args));
      break;
    case AsyncOp::Kind::kDel:
      sw.table(op.target).delete_entry(op.handle);
      break;
    case AsyncOp::Kind::kSetDefault:
      sw.table(op.target).set_default(op.action, std::move(op.args));
      break;
    case AsyncOp::Kind::kRegWrite:
      sw.registers().write(op.target, op.index, op.value);
      break;
    case AsyncOp::Kind::kRegRead:
      res.value = sw.registers().read(op.target, op.index);
      break;
  }
}

telemetry::HistogramOptions batch_ops_histogram() {
  telemetry::HistogramOptions opts;
  opts.first_bucket = 1.0;
  opts.growth = 2.0;
  opts.buckets = 10;
  return opts;
}

telemetry::HistogramOptions batch_latency_histogram() {
  telemetry::HistogramOptions opts;
  opts.first_bucket = 256.0;  // ns
  return opts;
}

}  // namespace

AsyncDriver::AsyncDriver(Driver& drv, AsyncDriverOptions opts)
    : drv_(&drv), opts_(opts) {
  expects(opts_.pipeline_depth >= 1,
          "AsyncDriver: pipeline_depth must be >= 1");
  auto& tel = drv.target().loop().telemetry();
  sinks_.sw = &drv.target();
  sinks_.prov = &tel.provenance();
  sinks_.batches = &tel.metrics().counter("driver.async.batches");
  sinks_.ops = &tel.metrics().counter("driver.async.ops");
  sinks_.aborted = &tel.metrics().counter("driver.async.aborted_batches");
  sinks_.batch_ops =
      &tel.metrics().histogram("driver.async.batch_ops", batch_ops_histogram());
  sinks_.batch_ns = &tel.metrics().histogram("driver.async.batch_ns",
                                             batch_latency_histogram());
  inflight_gauge_ = &tel.metrics().gauge("driver.async.inflight");
}

Duration AsyncDriver::solo_cost(const AsyncOp& op) {
  const CostModel& costs = drv_->opts_.costs;
  switch (op.kind) {
    case AsyncOp::Kind::kAdd:
      return costs.table_add(drv_->memoized(op.target, op.spec.action));
    case AsyncOp::Kind::kMod:
      return costs.table_mod(drv_->memoized(op.target, op.action));
    case AsyncOp::Kind::kDel:
      return costs.table_del(drv_->memoized(op.target, "\x1f""del"));
    case AsyncOp::Kind::kSetDefault:
      return costs.set_default();
    case AsyncOp::Kind::kRegWrite:
      return costs.register_write();
    case AsyncOp::Kind::kRegRead:
      return costs.packed_words_read(1);
  }
  return costs.pcie_rtt;
}

BatchId AsyncDriver::submit(BatchBuilder batch, SubmitOptions sopts) {
  expects(!batch.empty(), "AsyncDriver::submit: empty batch");
  const CostModel& costs = drv_->opts_.costs;
  sim::EventLoop& loop = drv_->target().loop();

  auto rec = std::make_shared<InFlight>();
  rec->label = sopts.label;
  rec->ops = std::move(batch.ops_);
  rec->c.id = static_cast<BatchId>(completions_.size()) + 1;
  rec->c.reaction_id = sopts.reaction_id;
  rec->c.submitted = loop.now();
  rec->c.results.resize(rec->ops.size());
  for (std::size_t i = 0; i < rec->ops.size(); ++i) {
    rec->c.results[i].kind = rec->ops[i].kind;
  }

  // Descriptor-ring gating: at most pipeline_depth transfers outstanding.
  Time ring_gate = 0;
  if (completions_.size() >= opts_.pipeline_depth) {
    ring_gate = completions_[completions_.size() - opts_.pipeline_depth];
  }

  if (drv_->opts_.enable_batching) {
    Duration prep = costs.batch_overhead;
    Duration dma = costs.pcie_rtt;
    for (const auto& op : rec->ops) {
      const Duration solo = solo_cost(op);
      prep += costs.batch_prep(solo);
      dma += costs.batch_dma(solo);
    }
    const Time prep_start =
        std::max(std::max(loop.now(), prep_free_), ring_gate);
    rec->c.prep_start = prep_start;
    rec->c.dma_start = prep_start + prep;
    prep_free_ = rec->c.dma_start;
    // The DMA holds the wire for its whole duration (no critical split: a
    // streamed transfer is exclusive occupancy, unlike a solo op's mostly
    // thread-local cost).
    rec->c.completed = drv_->channel_.submit_at(
        rec->c.dma_start, dma,
        [s = sinks_, rec] { finish_batched(s, rec); });
  } else {
    // Ablation degrade: one transfer per op — full solo prep, its own round
    // trip on the wire, per-op apply (no cross-op atomicity).
    Time completed = 0;
    Time prep_cursor = std::max(std::max(loop.now(), prep_free_), ring_gate);
    for (std::size_t i = 0; i < rec->ops.size(); ++i) {
      const Duration solo = solo_cost(rec->ops[i]);
      const Time prep_end = prep_cursor + (solo - costs.pcie_rtt);
      if (i == 0) rec->c.prep_start = prep_cursor;
      completed = drv_->channel_.submit_at(
          prep_end, costs.pcie_rtt,
          [s = sinks_, rec, i] { finish_single(s, rec, i); });
      if (i == 0) rec->c.dma_start = prep_end;
      prep_cursor = prep_end;
    }
    prep_free_ = prep_cursor;
    rec->c.completed = completed;
  }

  completions_.push_back(rec->c.completed);
  queue_.push_back(rec);
  inflight_gauge_->set(static_cast<double>(queue_.size()));
  return rec->c.id;
}

void AsyncDriver::finish_batched(const Sinks& s,
                                 const std::shared_ptr<InFlight>& rec) {
  sim::Switch& sw = *s.sw;
  telemetry::ProvenanceContext::ScopedAttribution attr(*s.prov,
                                                       rec->c.reaction_id);
  // Phase 1: validate every op against the state the batch would produce.
  std::unordered_map<std::string, std::int64_t> occupancy;
  std::size_t bad = rec->ops.size();
  for (std::size_t i = 0; i < rec->ops.size() && bad == rec->ops.size(); ++i) {
    if (auto err = validate_op(sw, rec->ops[i], occupancy)) {
      bad = i;
      rec->c.results[i].ok = false;
      rec->c.results[i].error = *err;
    }
  }
  if (bad != rec->ops.size()) {
    // Phase 2a: abort — no op applies; the others carry the abort marker.
    rec->c.ok = false;
    for (std::size_t i = 0; i < rec->ops.size(); ++i) {
      if (i == bad) continue;
      rec->c.results[i].ok = false;
      rec->c.results[i].error =
          "aborted: op " + std::to_string(bad) + " failed validation";
    }
    s.aborted->add();
  } else {
    // Phase 2b: apply, builder order, all at this completion instant.
    for (std::size_t i = 0; i < rec->ops.size(); ++i) {
      try {
        apply_op(sw, rec->ops[i], rec->c.results[i]);
      } catch (const UserError& e) {
        rec->c.results[i].ok = false;
        rec->c.results[i].error = e.what();
        rec->c.ok = false;
      }
    }
  }
  finalize(s, rec, sw.loop().now());
}

void AsyncDriver::finish_single(const Sinks& s,
                                const std::shared_ptr<InFlight>& rec,
                                std::size_t i) {
  telemetry::ProvenanceContext::ScopedAttribution attr(*s.prov,
                                                       rec->c.reaction_id);
  try {
    apply_op(*s.sw, rec->ops[i], rec->c.results[i]);
  } catch (const UserError& e) {
    rec->c.results[i].ok = false;
    rec->c.results[i].error = e.what();
    rec->c.ok = false;
  }
  if (++rec->applied == rec->ops.size()) {
    finalize(s, rec, s.sw->loop().now());
  }
}

void AsyncDriver::finalize(const Sinks& s, const std::shared_ptr<InFlight>& rec,
                           Time now) {
  rec->done = true;
  s.batches->add();
  s.ops->add(rec->ops.size());
  s.batch_ops->record(static_cast<double>(rec->ops.size()));
  s.batch_ns->record(static_cast<double>(now - rec->c.submitted));
  s.prov->on_driver_op_for(rec->c.reaction_id, rec->label,
                           "batch=" + std::to_string(rec->c.id) +
                               " ops=" + std::to_string(rec->ops.size()) +
                               (rec->c.ok ? "" : " FAILED"),
                           rec->c.submitted, rec->c.completed);
}

Time AsyncDriver::completion_time(BatchId id) const {
  expects(id >= 1 && id <= completions_.size(),
          "AsyncDriver::completion_time: unknown batch id");
  return completions_[id - 1];
}

std::optional<BatchCompletion> AsyncDriver::try_reap() {
  if (!ready()) return std::nullopt;
  auto rec = queue_.front();
  queue_.pop_front();
  inflight_gauge_->set(static_cast<double>(queue_.size()));
  return std::move(rec->c);
}

BatchCompletion AsyncDriver::reap() {
  expects(!queue_.empty(), "AsyncDriver::reap: nothing in flight");
  auto rec = queue_.front();
  if (!rec->done) {
    drv_->target().loop().run_until(rec->c.completed);
  }
  expects(rec->done, "AsyncDriver::reap: completion event did not fire");
  queue_.pop_front();
  inflight_gauge_->set(static_cast<double>(queue_.size()));
  return std::move(rec->c);
}

std::vector<BatchCompletion> AsyncDriver::reap_all() {
  std::vector<BatchCompletion> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) out.push_back(reap());
  return out;
}

}  // namespace mantis::driver
