// Discrete-event scheduler with a virtual nanosecond clock.
//
// Everything in the reproduction — packet arrivals, pipeline latencies, PCIe
// transactions, reaction CPU time, legacy control-plane clients — runs as
// events on one loop, so the interleaving of the Mantis agent with packet
// processing is deterministic and serializability becomes a testable
// property rather than a hope.
//
// Canonical event order (the parallel-engine determinism contract): every
// event carries a destination tag `dst` (the shard — fabric switch — whose
// state it touches; kControlShard for control-plane/main-thread work), the
// tag `src` of the context that scheduled it, and a per-src sequence number
// `seq`. Events execute in (t, src, seq) order, with control first among
// ties. That key is a pure function of scheduling history — independent of
// which engine runs the events — so the sequential engine and the
// conservative parallel engine (net::ParallelFabricEngine) produce
// byte-identical executions. Code that never tags anything sees the old
// behavior exactly: all events are control-tagged and the per-tag sequence
// degenerates to the global FIFO tie-break.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/small_fn.hpp"
#include "util/time.hpp"

namespace mantis::sim {

class EventLoop {
 public:
  /// Move-only (util/small_fn.hpp): packet-carrying captures live in one
  /// pooled block and events can never be copied by accident — the queue
  /// hands them out by move.
  using Callback = util::SmallFn;

  /// Destination tag for control-plane work (agents, drivers, fault
  /// transitions, periodic samplers): always executed on the main thread,
  /// sorted before shard events at the same instant.
  static constexpr int kControlShard = -1;

  struct Event {
    Time t = 0;
    int dst = kControlShard;  ///< shard whose state the callback touches
    int src = kControlShard;  ///< tag of the scheduling context
    std::uint64_t seq = 0;    ///< per-src sequence number
    Callback cb;
  };

  /// Min-heap comparator for the canonical (t, src, seq) order
  /// (kControlShard = -1 sorts first among same-t ties).
  struct RunsAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };
  /// Per-shard round queue for the parallel engine: a plain binary heap
  /// (rounds hold few events; the calendar ring pays off only on the big
  /// global queue).
  using LocalQueue = EventHeap<Event, RunsAfter>;

  /// Execution context a parallel-engine worker installs (thread-local)
  /// while running one shard group's events for one round. While installed:
  ///  * now() returns the running event's time,
  ///  * `shard` is the RUNNING event's dst tag (the engine updates it per
  ///    event — a group drains several switches' tags interleaved in
  ///    canonical order, exactly as the sequential engine would),
  ///  * schedule_* stamps src = shard and draws seq from seq_base[shard],
  ///    the same per-tag counters the sequential path uses — canonical
  ///    keys stay independent of how switches are grouped into shards,
  ///  * same-tag events inside the horizon go to `local`, everything
  ///    else to `outbox` (cross-switch targets must land >= round_end —
  ///    that is exactly the conservative-lookahead guarantee).
  struct ShardFrame {
    const EventLoop* loop = nullptr;
    int shard = kControlShard;  ///< dst tag of the running event
    Time now = 0;
    Time round_end = 0;
    std::uint64_t* seq_base = nullptr;  ///< per-src counters, index = tag
    LocalQueue* local = nullptr;
    std::vector<Event>* outbox = nullptr;
  };
  static void set_shard_frame(ShardFrame* frame) { tls_frame_ = frame; }
  static ShardFrame* shard_frame() { return tls_frame_; }

  /// The stack-wide telemetry bundle (metrics + tracer). Lazily created;
  /// the tracer's clock is this loop's virtual clock. Everything attached
  /// to this loop (switch, driver, agent, legacy clients) records here.
  telemetry::Telemetry& telemetry();

  /// The bundle's hot-path profiler, or nullptr while the bundle has never
  /// been created. Dispatch and heap accounting key off this cached pointer
  /// so an unprofiled loop pays one null test per site.
  telemetry::prof::Profiler* profiler() const { return prof_; }

  /// Current virtual time — shard-local while a ShardFrame is installed on
  /// the calling thread, the global clock otherwise.
  Time now() const {
    const ShardFrame* f = tls_frame_;
    if (f != nullptr && f->loop == this) return f->now;
    return now_;
  }

  /// Schedules `cb` at absolute time `t` (>= now). The event inherits the
  /// scheduling context's tag as both src and dst, so shard-internal work
  /// (pipeline latencies, queue service) stays on its shard and untagged
  /// code stays control. Ties run in canonical (t, src, seq) order.
  void schedule_at(Time t, Callback cb);

  /// Schedules `cb` `d` nanoseconds from now.
  void schedule_in(Duration d, Callback cb) {
    schedule_at(now() + d, std::move(cb));
  }

  /// Schedules `cb` at `t` for shard `dst` (kControlShard for control).
  /// From a shard context, a cross-shard target must satisfy the lookahead
  /// horizon (t >= round_end) and dst must not be control.
  void schedule_for(int dst, Time t, Callback cb);

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `max_events` executed.
  /// Returns the number executed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs all events with time <= t, then advances the clock to exactly t.
  void run_until(Time t);

  /// Advances the clock without running anything scheduled in between.
  /// Only legal when nothing earlier is pending — used by actors that model
  /// blocking work (e.g. a PCIe transaction occupying the CPU). Prefer
  /// schedule_in for anything that can interleave.
  void advance_now(Time t);

  std::size_t pending() const { return queue_.size(); }

  // ---- parallel-engine plumbing (net::ParallelFabricEngine) ----

  /// Pre-registers shard tags [0, count) so per-src sequence counters never
  /// reallocate under worker threads. Call before the first parallel round.
  void ensure_tags(int count);
  /// Pointer into the per-src counter for `tag`; stable until ensure_tags /
  /// an untagged schedule grows the table, so re-fetch each round.
  std::uint64_t* seq_counter(int tag);
  /// Base of the per-tag counter array (element `tag` = counter for tag,
  /// valid for tags [0, count) after ensure_tags(count)); same stability
  /// caveat as seq_counter. ShardFrame::seq_base points here.
  std::uint64_t* seq_array() { return seq_counter(0); }

  bool queue_empty() const { return queue_.empty(); }
  /// Head-of-queue time / destination; queue must be non-empty.
  Time next_time() const;
  int next_dst() const;

  /// Pops every event with t < limit (in canonical order) into `out`,
  /// stopping early at the first control-destined event — control events
  /// run inline at round barriers, never inside a parallel round. Returns
  /// the (possibly lowered) horizon; every extracted event has t strictly
  /// below it.
  Time extract_until(Time limit, std::vector<Event>& out);

  /// Re-queues an event preserving its tags and sequence number (round
  /// outbox reinsertion; order of reinsertion is irrelevant because the
  /// canonical key is already assigned).
  void reinsert(Event ev);

 private:
  std::uint64_t next_seq(int src);

  static thread_local ShardFrame* tls_frame_;

  /// Calendar queue (sim/calendar_queue.hpp): same pop order as the old
  /// std::priority_queue bit for bit (the key is a strict total order),
  /// O(1)-amortized for the dense fabric workloads.
  CalendarQueue<Event, RunsAfter> queue_;
  Time now_ = 0;
  int exec_tag_ = kControlShard;  ///< dst of the event step() is running
  /// Per-src sequence counters, index src + 1 (slot 0 = control).
  std::vector<std::uint64_t> seq_by_src_ = std::vector<std::uint64_t>(1, 0);
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  telemetry::prof::Profiler* prof_ = nullptr;  ///< cached &telemetry_->prof()
};

}  // namespace mantis::sim
