// INT-driven congestion reaction (HPCC-flavoured, per Li et al. SIGCOMM'19
// adapted to the Mantis dialogue model): an analyzer agent polls the INT
// sink report stream and reacts to *per-hop queue depth* — the signal only
// in-band telemetry can deliver at this granularity.
//
//   * pacing: when the deepest queue along any reported path exceeds the
//     target, the sender rate is multiplicatively decreased in proportion
//     to the overshoot (HPCC's multiplicative part); when every hop is
//     under target, the rate recovers by an additive step,
//   * ECMP weights: per-transit-switch queue maxima become inverse-
//     proportional path weights, steering load off hot spines.
//
// The reaction publishes through callbacks (on_pace / on_weights) because
// pacing lives at the host in this fabric model; scenarios wire on_pace to
// the sender's period and on_weights wherever the ECMP selector lives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "agent/agent.hpp"
#include "int/collector.hpp"

namespace mantis::apps {

struct IntCongestionConfig {
  std::uint32_t target_queue_bytes = 8 * 1024;  ///< HPCC's T: headroom knob
  double min_rate = 0.05;       ///< normalized pacing floor
  double additive_step = 0.05;  ///< recovery per uncongested poll
  /// on_pace / on_weights fire only when the value moved at least this much
  /// (hysteresis; keeps the dialogue from thrashing the sender).
  double publish_delta = 0.01;
};

struct IntCongestionState {
  IntCongestionConfig cfg;
  int_tel::IntCollector* collector = nullptr;

  std::size_t cursor = 0;
  double rate = 1.0;  ///< normalized sending rate in [min_rate, 1]
  /// Deepest queue seen per transit switch over the reaction's lifetime
  /// window (reset each poll), and the derived, published weights.
  std::map<std::uint32_t, std::uint32_t> switch_queue;
  std::map<std::uint32_t, double> weights;
  std::uint64_t decreases = 0;
  std::uint64_t increases = 0;

  std::function<void(double, Time)> on_pace;
  std::function<void(const std::map<std::uint32_t, double>&, Time)> on_weights;
};

/// One control step: drains the collector cursor, updates rate/weights,
/// fires the callbacks. Exposed separately so the policy is testable
/// without an agent; the reaction below is a thin wrapper.
void int_congestion_step(IntCongestionState& st, Time now);

/// The analyzer reaction: install on one agent; other switches need none.
agent::Agent::NativeFn make_int_congestion_reaction(
    std::shared_ptr<IntCongestionState> state);

}  // namespace mantis::apps
