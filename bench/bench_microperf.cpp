// Host-side performance microbenchmarks (real time, google-benchmark):
// how fast the library itself executes — table lookups, packet pipeline
// traversals, reaction interpretation, end-to-end frontend+compile. These
// gate the simulator's usefulness for large experiments (Fig 14 replays
// hundreds of thousands of packets).
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "p4r/creact/cparser.hpp"
#include "p4r/creact/interp.hpp"
#include "p4r/lexer.hpp"
#include "util/rng.hpp"

namespace {

using namespace mantis;

const char* kFwdSrc = R"P4R(
header_type h_t { fields { k : 32; tag : 16; } }
header h_t h;
action mark(v) { modify_field(h.tag, v); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table acl { reads { h.k : ternary; } actions { mark; } size : 256; }
table route { reads { h.k : exact; } actions { fwd; } default_action : fwd(1); size : 1024; }
control ingress { apply(acl); apply(route); }
control egress { }
)P4R";

void BM_ExactTableLookup(benchmark::State& state) {
  bench::Stack stack(kFwdSrc);
  auto& tbl = stack.sw->table("route");
  Rng rng(1);
  for (int i = 0; i < 512; ++i) {
    p4::EntrySpec spec;
    spec.key = {{static_cast<std::uint64_t>(i), ~std::uint64_t{0}}};
    spec.action = "fwd";
    spec.action_args = {2};
    tbl.add_entry(spec);
  }
  auto pkt = stack.sw->factory().make();
  const auto f = stack.artifacts.prog.fields.require("h.k");
  for (auto _ : state) {
    pkt.set(f, rng.uniform(1024), 32);
    benchmark::DoNotOptimize(tbl.lookup(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExactTableLookup);

void BM_TernaryTableScan(benchmark::State& state) {
  bench::Stack stack(kFwdSrc);
  auto& tbl = stack.sw->table("acl");
  for (int i = 0; i < state.range(0); ++i) {
    p4::EntrySpec spec;
    spec.key = {{static_cast<std::uint64_t>(i) << 8, 0xff00}};
    spec.action = "mark";
    spec.action_args = {1};
    spec.priority = i;
    tbl.add_entry(spec);
  }
  auto pkt = stack.sw->factory().make();
  const auto f = stack.artifacts.prog.fields.require("h.k");
  Rng rng(2);
  for (auto _ : state) {
    pkt.set(f, rng.uniform(1u << 16), 32);
    benchmark::DoNotOptimize(tbl.lookup(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TernaryTableScan)->Arg(16)->Arg(64)->Arg(256);

void BM_PacketThroughSwitch(benchmark::State& state) {
  bench::Stack stack(kFwdSrc);
  Rng rng(3);
  for (auto _ : state) {
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.k", rng.uniform(1024));
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketThroughSwitch);

void BM_InterpretedMadReaction(benchmark::State& state) {
  // The hash-polarization MAD body: a realistic interpreted workload.
  auto toks = p4r::lex(R"(
static uint64_t last[8];
uint64_t loads[8];
uint64_t total = 0;
for (int p = 0; p < 8; ++p) {
  loads[p] = counts[p] - last[p];
  last[p] = counts[p];
  total = total + loads[p];
}
uint64_t sorted[8];
for (int i = 0; i < 8; ++i) sorted[i] = loads[i];
for (int i = 1; i < 8; ++i) {
  uint64_t key = sorted[i];
  int j = i - 1;
  while (j >= 0 && sorted[j] > key) { sorted[j + 1] = sorted[j]; j = j - 1; }
  sorted[j + 1] = key;
}
${out} = (sorted[3] + sorted[4]) / 2;
)");
  toks.pop_back();
  const auto body = p4r::creact::parse_body(toks);
  p4r::creact::Interp interp(body);
  struct Env : p4r::creact::ReactionEnv {
    p4r::creact::CValue v = 0;
    p4r::creact::CValue mbl_get(const std::string&) override { return v; }
    void mbl_set(const std::string&, p4r::creact::CValue x) override { v = x; }
    p4r::creact::CValue table_call(
        const std::string&, const std::string&,
        const std::vector<p4r::creact::TableCallArg>&) override {
      return 0;
    }
  } env;
  p4r::creact::PolledParams params;
  p4r::creact::PolledParams::Array arr;
  arr.lo = 0;
  arr.values = {5, 9, 2, 7, 7, 3, 8, 1};
  params.arrays["counts"] = arr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(params, env));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InterpretedMadReaction);

void BM_FrontendAndCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile::compile_source(kFwdSrc));
  }
}
BENCHMARK(BM_FrontendAndCompile);

// A representative dialogue workload: one reaction with four 32-bit field
// args and a scalar commit each iteration. This is the binary the telemetry
// overhead budget is checked against (docs/TELEMETRY.md): build with
// -DMANTIS_TELEMETRY=OFF and compare.
const char* kDialogueSrc = R"P4R(
header_type h_t { fields { f0 : 32; f1 : 32; f2 : 32; f3 : 32; } }
header h_t h;
malleable value knob { width : 32; init : 0; }
action use() { add(h.f1, h.f1, ${knob}); }
table t { actions { use; } default_action : use; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(ing h.f0, ing h.f1, ing h.f2, ing h.f3) {
  ${knob} = ${knob} + 1;
}
)P4R";

void BM_DialogueIteration(benchmark::State& state) {
  bench::Stack stack(kDialogueSrc);
  stack.agent->run_prologue();
  for (auto _ : state) {
    stack.agent->dialogue_iteration();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DialogueIteration);

// --breakdown: the reaction-provenance latency decomposition. Runs the
// dialogue workload in virtual time with packets arriving between
// iterations so first-effect detection fires, then reports the
// poll/compute/push/take-effect histograms from the stack registry
// (reaction.*_ns, populated by telemetry::ProvenanceContext).
int run_breakdown(int argc, char** argv) {
  constexpr std::size_t kIterations = 200;
  bench::Stack stack(kDialogueSrc);
  stack.agent->run_prologue();
  for (std::size_t i = 0; i < kIterations; ++i) {
    stack.agent->dialogue_iteration();
    // A packet shortly after the iteration hits the freshly committed master
    // default (stamped with this reaction's id) => take_effect sample.
    stack.loop.schedule_in(500, [&] {
      auto pkt = stack.sw->factory().make();
      stack.sw->inject(std::move(pkt), 0);
    });
    stack.loop.run();
  }

  const auto& metrics = stack.loop.telemetry().metrics();
  bench::print_header("reaction latency breakdown (virtual ns)");
  bench::print_row({"phase", "count", "mean", "p50", "p99"}, 26);
  for (const char* name :
       {"reaction.poll_ns", "reaction.compute_ns", "reaction.push_ns",
        "reaction.take_effect_ns"}) {
    const auto* h = metrics.find_histogram(name);
    if (h == nullptr || h->count() == 0) {
      bench::print_row({name, "0", "-", "-", "-"}, 26);
      continue;
    }
    bench::print_row({name, std::to_string(h->count()),
                      bench::fmt(h->stats().mean(), 1),
                      bench::fmt(h->quantile(0.50), 1),
                      bench::fmt(h->quantile(0.99), 1)},
                     26);
  }

  std::string out_path = "BENCH_microperf_breakdown.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }
  telemetry::ReportParams params;
  params.set("mode", "breakdown");
  params.set("iterations", static_cast<std::int64_t>(kIterations));
  stack.loop.telemetry().write_metrics_json(out_path, "microperf_breakdown",
                                            params);
  std::printf("\nresults: %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--breakdown") == 0) {
      return run_breakdown(argc, argv);
    }
  }
  mantis::bench::Report report("microperf", argc, argv);
  mantis::bench::run_benchmarks(argc, argv, report);
  report.write();
  return 0;
}
