// INT vs heartbeat head-to-head: the same 3-leaf/2-spine fabric, the same
// injected gray loss on the sender's first-hop link, two detection schemes:
//
//   heartbeat — every switch counts link-local heartbeats per port
//               (net::GrayFabricScenario); detection names a *port*, and a
//               sub-threshold loss rate never trips the eta detector,
//   INT       — an injected probe mesh + per-flow INT stacks feed one
//               analyzer running pooled per-link loss tomography
//               (int_tel::IntGrayFabricScenario); detection names the
//               *link*, at any loss rate the pooled estimate resolves.
//
// Compared per loss rate: detection/localization latency, end-to-end
// delivery restoration, localization accuracy (INT must name the injected
// link; heartbeats cannot name a link at all), and detection-plane byte
// overhead — heartbeat frames vs probe frames + INT stack bytes, absolute
// and per delivered data packet. A final same-seed sequential-vs-parallel
// run asserts the INT scenario's determinism contract from inside the
// bench, so the JSON also records the equivalence bit CI keys on.
#include <algorithm>

#include "bench_util.hpp"
#include "int/scenario.hpp"
#include "net/scenarios.hpp"
#include "util/rng.hpp"

namespace {

using namespace mantis;

constexpr int kLeaves = 3;
constexpr int kSpines = 2;
constexpr int kTrials = 6;

struct SchemeStats {
  Samples detect_us;   ///< detect (hb) / localize (int) latency
  Samples restore_us;
  int detected = 0;
  int localized_correct = 0;
  int restored = 0;
  std::uint64_t overhead_bytes = 0;  ///< detection-plane wire bytes
  std::uint64_t probe_bytes = 0;     ///< of those: injected probe frames
  std::uint64_t stack_bytes = 0;     ///< of those: INT stacks on the wire
  std::uint64_t delivered = 0;
};

/// Both schemes see the same fault phase per trial (a shared rng stream),
/// with prologue headroom for five switches.
Time trial_fault_at(int trial) {
  Rng phase(static_cast<std::uint64_t>(trial) * 17 + 5);
  return 300 * kMicrosecond +
         static_cast<Duration>(phase.uniform(60 * kMicrosecond));
}

SchemeStats run_heartbeat(double loss, int restore_consecutive) {
  SchemeStats out;
  for (int trial = 0; trial < kTrials; ++trial) {
    net::GrayScenarioConfig cfg;
    cfg.leaves = kLeaves;
    cfg.spines = kSpines;
    cfg.seed = static_cast<std::uint64_t>(trial) * 101 + 7;
    cfg.fault_loss = loss;
    cfg.fault_at = trial_fault_at(trial);
    cfg.run_until = cfg.fault_at + 400 * kMicrosecond;
    cfg.restore_consecutive = restore_consecutive;
    net::GrayFabricScenario scenario(cfg);
    const auto res = scenario.run();
    if (res.detected_at >= 0) {
      ++out.detected;
      out.detect_us.add(to_us(res.detection_latency()));
    }
    if (res.restored()) {
      ++out.restored;
      out.restore_us.add(to_us(res.restoration_latency()));
    }
    out.overhead_bytes += res.hb_bytes;
    out.delivered += res.delivered;
  }
  return out;
}

SchemeStats run_int(double loss, int restore_consecutive) {
  SchemeStats out;
  for (int trial = 0; trial < kTrials; ++trial) {
    int_tel::IntGrayScenarioConfig cfg;
    cfg.leaves = kLeaves;
    cfg.spines = kSpines;
    cfg.seed = static_cast<std::uint64_t>(trial) * 101 + 7;
    cfg.fault_loss = loss;
    cfg.fault_at = trial_fault_at(trial);
    cfg.run_until = cfg.fault_at + 400 * kMicrosecond;
    cfg.restore_consecutive = restore_consecutive;
    int_tel::IntGrayFabricScenario scenario(cfg);
    const auto res = scenario.run();
    if (res.localized_at >= 0) {
      ++out.detected;
      out.detect_us.add(to_us(res.detection_latency()));
      if (res.localized_correct) ++out.localized_correct;
    }
    if (res.restored()) {
      ++out.restored;
      out.restore_us.add(to_us(res.restoration_latency()));
    }
    out.probe_bytes += res.probe_wire_bytes;
    out.stack_bytes += res.stack_wire_bytes;
    out.overhead_bytes += res.probe_wire_bytes + res.stack_wire_bytes;
    out.delivered += res.delivered;
  }
  return out;
}

/// Same seed, sequential vs 4-thread parallel engine: the event log and the
/// rendered report stream must match byte-for-byte.
bool par_equivalent() {
  auto run = [](int threads) {
    int_tel::IntGrayScenarioConfig cfg;
    cfg.leaves = kLeaves;
    cfg.spines = kSpines;
    cfg.seed = 5;
    cfg.threads = threads;
    int_tel::IntGrayFabricScenario scenario(cfg);
    const auto res = scenario.run();
    std::string sig;
    for (const auto& e : res.events) {
      sig += e;
      sig += '\n';
    }
    std::size_t cursor = 0;
    for (const auto* rep : scenario.int_fabric().collector().poll(cursor)) {
      sig += rep->render();
      sig += '\n';
    }
    return sig;
  };
  return run(1) == run(4);
}

std::string rate(int n, int of) {
  return bench::fmt(static_cast<double>(n) / of, 2);
}

void emit_scheme(bench::Report& report, const std::string& key,
                 const SchemeStats& s) {
  report.set(key + ".detect_rate", static_cast<double>(s.detected) / kTrials);
  report.set(key + ".detect_mean_us",
             s.detected > 0 ? s.detect_us.mean() : -1.0);
  report.set(key + ".restore_rate", static_cast<double>(s.restored) / kTrials);
  report.set(key + ".restore_mean_us",
             s.restored > 0 ? s.restore_us.mean() : -1.0);
  report.set(key + ".overhead_bytes", static_cast<double>(s.overhead_bytes));
  report.set(key + ".overhead_bytes_per_delivered_pkt",
             s.delivered > 0 ? static_cast<double>(s.overhead_bytes) /
                                   static_cast<double>(s.delivered)
                             : -1.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("int_vs_heartbeat", argc, argv);
  report.params().set("fabric", "leaf_spine_3x2");
  report.params().set("trials", std::int64_t{kTrials});

  for (const double loss : {1.0, 0.35}) {
    // Partial loss can fake a short consecutive-delivery run
    // (0.65^4 ~= 18%), so restoration demands a longer run there.
    const int restore_k = loss >= 1.0 ? 4 : 12;
    const auto hb = run_heartbeat(loss, restore_k);
    const auto in = run_int(loss, restore_k);

    bench::print_header("gray loss " + bench::fmt(loss, 2) +
                        " on the sender's first-hop link (3x2 fabric, " +
                        std::to_string(kTrials) + " trials)");
    bench::print_row({"scheme", "detect", "latency_us", "localized",
                      "restored", "restore_us", "ovh_B/pkt"},
                     12);
    bench::print_row(
        {"heartbeat", rate(hb.detected, kTrials),
         hb.detected > 0 ? bench::fmt(hb.detect_us.mean(), 1) : "-",
         "port-only", rate(hb.restored, kTrials),
         hb.restored > 0 ? bench::fmt(hb.restore_us.mean(), 1) : "-",
         bench::fmt(static_cast<double>(hb.overhead_bytes) /
                        std::max<std::uint64_t>(1, hb.delivered),
                    1)},
        12);
    bench::print_row(
        {"int", rate(in.detected, kTrials),
         in.detected > 0 ? bench::fmt(in.detect_us.mean(), 1) : "-",
         rate(in.localized_correct, kTrials), rate(in.restored, kTrials),
         in.restored > 0 ? bench::fmt(in.restore_us.mean(), 1) : "-",
         bench::fmt(static_cast<double>(in.overhead_bytes) /
                        std::max<std::uint64_t>(1, in.delivered),
                    1)},
        12);

    const std::string key = "loss" + bench::fmt(loss, 2);
    emit_scheme(report, key + ".hb", hb);
    emit_scheme(report, key + ".int", in);
    report.set(key + ".int.localized_correct_rate",
               static_cast<double>(in.localized_correct) / kTrials);
    report.set(key + ".int.probe_bytes", static_cast<double>(in.probe_bytes));
    report.set(key + ".int.stack_bytes", static_cast<double>(in.stack_bytes));
  }

  const bool equiv = par_equivalent();
  bench::print_header("determinism");
  std::printf("sequential vs 4-thread parallel, same seed: %s\n",
              equiv ? "byte-identical" : "DIVERGED");
  report.set("int.par_equiv_ok", equiv ? 1.0 : 0.0);

  report.write();
  return equiv ? 0 : 1;
}
