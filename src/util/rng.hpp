// Deterministic random number generation for workloads and experiments.
//
// We implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// rather than using std::mt19937 so that traces are bit-identical across
// standard libraries, which keeps EXPERIMENTS.md numbers reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mantis {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability `p`.
  bool chance(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Samples ranks from a Zipf(s) distribution over {1, ..., n} by inverting a
/// precomputed CDF. Used to synthesize heavy-tailed (CAIDA-like) flow sizes.
class ZipfSampler {
 public:
  /// `n` is the support size, `s` the skew exponent (s > 0).
  ZipfSampler(std::uint64_t n, double s);

  /// Returns a rank in [1, n]; rank 1 is the most probable.
  std::uint64_t sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double pmf(std::uint64_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mantis
