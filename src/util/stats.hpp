// Streaming and batch statistics used by reactions (MAD over port counters),
// the benchmark harness (latency percentiles), and the evaluation code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mantis {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Batch sample container with percentile queries. Keeps all samples;
/// intended for benchmark-scale data (up to a few million points).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  double mean() const;
  /// Percentile by linear interpolation, q in [0, 100]. Throws when empty.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// P-square (P²) streaming quantile estimator (Jain & Chlamtac 1985):
/// maintains five markers and adjusts them with parabolic interpolation, so
/// one quantile is tracked in O(1) memory regardless of stream length. Used
/// by telemetry histograms to report percentiles without retaining samples.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  void add(double x);

  std::size_t count() const { return n_; }
  double q() const { return q_; }
  /// Current estimate. Exact while fewer than 5 samples seen. Throws when
  /// empty.
  double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {};   ///< marker heights
  double pos_[5] = {};       ///< actual marker positions (1-based)
  double desired_[5] = {};   ///< desired marker positions
  double increment_[5] = {}; ///< desired-position increments per sample
};

/// Median of a span of values (copies; input untouched). Throws when empty.
double median_of(std::vector<double> values);

/// Median Absolute Deviation: median(|x_i - median(x)|). This is the
/// imbalance statistic the hash-polarization reaction computes (paper §8.3.3).
double median_absolute_deviation(const std::vector<double>& values);

}  // namespace mantis
