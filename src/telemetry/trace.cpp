#include "telemetry/trace.hpp"

#include <chrono>

#include "telemetry/shard_lane.hpp"
#include "util/check.hpp"

namespace mantis::telemetry {

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const char* track_name(Track t) {
  switch (t) {
    case Track::kAgent: return "agent";
    case Track::kDriverChannel: return "driver.channel";
    case Track::kSwitch: return "switch";
    case Track::kTrafficManager: return "traffic_manager";
    case Track::kLegacy: return "legacy";
    case Track::kHost: return "host";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), wall_epoch_ns_(steady_now_ns()) {
  expects(capacity > 0, "Tracer: capacity must be positive");
}

void Tracer::set_enabled(bool on) {
  enabled_ = on;
  if (on && ring_.capacity() < capacity_) ring_.reserve(capacity_);
}

void Tracer::set_capacity(std::size_t capacity) {
  expects(capacity > 0, "Tracer: capacity must be positive");
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  recorded_ = 0;
  if (enabled_) ring_.reserve(capacity_);
}

void Tracer::set_clock(std::function<Time()> now) { clock_ = std::move(now); }

Time Tracer::now() const {
  if (clock_) return clock_();
  return steady_now_ns() - wall_epoch_ns_;
}

std::int64_t Tracer::wall_now_ns() const {
  return steady_now_ns() - wall_epoch_ns_;
}

void Tracer::push(TraceEvent ev) {
  if (ShardLane* lane = ShardLane::current()) {
    lane->defer([this, ev] { push_direct(ev); });
    return;
  }
  push_direct(ev);
}

void Tracer::push_direct(TraceEvent ev) {
  ev.wall_ns = wall_now_ns();
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    // Ring wrap: slot of the oldest event.
    ring_[recorded_ % capacity_] = ev;
  }
  ++recorded_;
}

void Tracer::complete(const char* name, const char* category, Track track,
                      Time vt_begin, Time vt_end, const char* arg_name,
                      std::int64_t arg) {
  if (!enabled_) return;
  expects(vt_end >= vt_begin, "Tracer::complete: negative span duration");
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.track = track;
  ev.vt_begin = vt_begin;
  ev.vt_dur = vt_end - vt_begin;
  ev.arg_name = arg_name;
  ev.arg = arg;
  push(ev);
}

void Tracer::instant(const char* name, const char* category, Track track,
                     Time at, const char* arg_name, std::int64_t arg) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.track = track;
  ev.vt_begin = at;
  ev.vt_dur = 0;
  ev.arg_name = arg_name;
  ev.arg = arg;
  push(ev);
}

void Tracer::flow(TraceEvent::Phase phase, const char* name,
                  const char* category, Track track, Time at,
                  std::uint64_t flow_id) {
  if (!enabled_) return;
  expects(phase == TraceEvent::Phase::kFlowStart ||
              phase == TraceEvent::Phase::kFlowStep ||
              phase == TraceEvent::Phase::kFlowEnd,
          "Tracer::flow: not a flow phase");
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = phase;
  ev.track = track;
  ev.vt_begin = at;
  ev.vt_dur = 0;
  ev.flow_id = flow_id;
  push(ev);
}

std::size_t Tracer::size() const { return ring_.size(); }

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest slot is where the next overwrite would land.
    const std::size_t head = recorded_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void Tracer::clear() {
  ring_.clear();
  recorded_ = 0;
}

}  // namespace mantis::telemetry
