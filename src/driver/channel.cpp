#include "driver/channel.hpp"

#include "util/check.hpp"

namespace mantis::driver {

Channel::Channel(sim::EventLoop& loop) : loop_(&loop) {
  auto& tel = loop.telemetry();
  ops_ctr_ = &tel.metrics().counter("driver.channel.ops");
  telemetry::HistogramOptions occ;
  occ.first_bucket = 64;  // ns; channel ops span ~100ns..100us
  occupancy_hist_ = &tel.metrics().histogram("driver.channel.occupancy_ns", occ);
  queue_wait_hist_ = &tel.metrics().histogram("driver.channel.queue_wait_ns", occ);
  tracer_ = &tel.tracer();
}

Time Channel::submit(Duration cost, std::function<void()> apply,
                     Duration critical) {
  expects(cost >= 0, "Channel::submit: negative cost");
  if (critical < 0) critical = cost;
  expects(critical <= cost, "Channel::submit: critical section exceeds cost");
  // Local preparation runs immediately; the critical section queues behind
  // whatever currently holds the channel.
  const Time local_done = loop_->now() + (cost - critical);
  const Time start_critical = std::max(local_done, free_at_);
  const Time completion = start_critical + critical;
  free_at_ = completion;
  busy_time_ += cost;
  ++ops_;

  ops_ctr_->add();
  occupancy_hist_->record(static_cast<double>(cost));
  queue_wait_hist_->record(static_cast<double>(start_critical - local_done));
#if MANTIS_TELEMETRY_ENABLED
  // One lane-2 span per occupancy: [submission, completion), queue wait as
  // the argument, so contention is visible as back-to-back blocks.
  tracer_->complete("channel.op", "driver", telemetry::Track::kDriverChannel,
                    loop_->now(), completion, "queue_wait_ns",
                    start_critical - local_done);
#endif

  if (apply) loop_->schedule_at(completion, std::move(apply));
  return completion;
}

Time Channel::free_at() const { return std::max(loop_->now(), free_at_); }

}  // namespace mantis::driver
