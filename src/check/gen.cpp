#include "check/gen.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace mantis::check {

namespace {

/// Internal generation state: richer than GenSpec (the generator needs to
/// know widths, domains, and arities to produce valid traces and entries;
/// the rendered program only needs the text).
struct FieldG {
  std::string name;  ///< full name "hdr.fK"
  unsigned width;
};

struct ActionG {
  std::string name;
  std::size_t params = 0;
  bool uses_mbl_field = false;  ///< body contains ${mfld} (needs specialization)
};

struct ReadG {
  std::string ref;       ///< "hdr.fK" or malleable name (no ${})
  bool malleable = false;
  std::string kind;      ///< exact | ternary | lpm
  unsigned width = 16;
  bool has_premask = false;
  std::uint64_t premask = ~std::uint64_t{0};
};

struct TableG {
  std::string name;
  bool malleable = false;
  std::vector<ReadG> reads;
  std::vector<ActionG> actions;  ///< installable (non-builtin) first
  bool has_drop = false;
  std::size_t size = 64;
};

struct Gen {
  Rng rng;
  const GenOptions& opts;
  Scenario out;

  std::vector<FieldG> fields;
  std::vector<FieldG> writable;    ///< action-writable header fields
  std::vector<std::string> mbl_values;    ///< names
  std::vector<unsigned> mbl_value_width;
  std::string mbl_field;           ///< "" when absent
  std::size_t mbl_field_alts = 0;
  struct RegG { std::string name; unsigned width; std::uint32_t count; };
  std::vector<RegG> regs;
  bool have_counter = false;
  std::vector<ActionG> user_actions;
  std::vector<TableG> match_tables;

  explicit Gen(std::uint64_t seed, const GenOptions& o)
      : rng(seed ^ 0xda7a5eedULL), opts(o) {}

  std::uint64_t u(std::uint64_t bound) { return rng.uniform(bound); }
  bool chance(double p) { return rng.chance(p); }

  std::string num(std::uint64_t v) { return std::to_string(v); }

  void gen_fields() {
    const unsigned pool[] = {8, 16, 16, 24, 32, 32, 48, 64};
    const std::size_t nf = 4 + u(3);  // 4..6
    for (std::size_t i = 0; i < nf; ++i) {
      // The first three fields are fixed 16-bit: match keys and malleable
      // alts need same-width company.
      const unsigned w = i < 3 ? 16 : pool[u(std::size(pool))];
      fields.push_back({"hdr.f" + num(i), w});
    }
    std::string decl = "header_type h_t {\n  fields {\n";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      decl += "    f" + num(i) + " : " + num(fields[i].width) + ";\n";
    }
    decl += "  }\n}\nheader h_t hdr;";
    out.program.decls.push_back(decl);
    out.program.decls.push_back(
        "header_type pm_t { fields { pid : 32; } }\nmetadata pm_t pm;");
    out.program.decls.push_back(
        "header_type scr_t { fields { s0 : 32; s1 : 32; } }\n"
        "metadata scr_t scr;");
    writable = fields;
  }

  void gen_malleables() {
    const std::size_t nv = 1 + u(2);  // 1..2 malleable values
    for (std::size_t i = 0; i < nv; ++i) {
      const unsigned w = std::array<unsigned, 3>{8, 16, 32}[u(3)];
      const std::uint64_t init = u(1ull << std::min(w, 8u));
      const std::string name = "mval" + num(i);
      out.program.decls.push_back("malleable value " + name + " { width : " +
                                  num(w) + "; init : " + num(init) + "; }");
      mbl_values.push_back(name);
      mbl_value_width.push_back(w);
    }
    if (chance(0.7)) {
      // Alts among the fixed-width-16 trio.
      const std::size_t nalts = 2 + u(2);  // 2..3
      mbl_field = "mfld";
      mbl_field_alts = nalts;
      std::string alts;
      for (std::size_t i = 0; i < nalts; ++i) {
        if (i > 0) alts += ", ";
        alts += "hdr.f" + num(i);
      }
      const std::size_t init_alt = u(nalts);
      out.program.decls.push_back(
          "malleable field " + mbl_field + " {\n  width : 16;\n  init : hdr.f" +
          num(init_alt) + ";\n  alts { " + alts + " }\n}");
    }
  }

  void gen_state() {
    const std::size_t nr = 1 + u(2);  // 1..2 registers
    for (std::size_t i = 0; i < nr; ++i) {
      const unsigned w = std::array<unsigned, 3>{16, 32, 48}[u(3)];
      const std::uint32_t count = 1u << (2 + u(3));  // 4, 8, 16
      const std::string name = "r" + num(i);
      out.program.decls.push_back("register " + name + " { width : " + num(w) +
                                  "; instance_count : " + num(count) + "; }");
      regs.push_back({name, w, count});
    }
    if (chance(0.4)) {
      have_counter = true;
      out.program.decls.push_back(
          "counter c0 { type : packets; instance_count : 8; }");
    }
  }

  /// A random source operand for a primitive: const, field, or malleable.
  std::string src_operand() {
    const auto roll = u(10);
    if (roll < 3) return num(u(256));
    if (roll < 7) return fields[u(fields.size())].name;
    if (roll < 9 || mbl_field.empty()) {
      return "${" + mbl_values[u(mbl_values.size())] + "}";
    }
    return "${" + mbl_field + "}";
  }

  std::string dst_operand() {
    // Destinations: header fields or the malleable field (specialized write).
    if (!mbl_field.empty() && chance(0.15)) return "${" + mbl_field + "}";
    return writable[u(writable.size())].name;
  }

  /// Emits one safe primitive line for an action with `params` parameters.
  std::string gen_prim(std::size_t params) {
    switch (u(8)) {
      case 0: {
        std::string src = params > 0 && chance(0.5)
                              ? "p" + num(u(params))
                              : src_operand();
        return "  modify_field(" + dst_operand() + ", " + src + ");";
      }
      case 1:
        return "  add(" + dst_operand() + ", " + src_operand() + ", " +
               src_operand() + ");";
      case 2:
        return "  subtract(" + dst_operand() + ", " + src_operand() + ", " +
               src_operand() + ");";
      case 3: {
        const char* ops[] = {"bit_and", "bit_or", "bit_xor"};
        return std::string("  ") + ops[u(3)] + "(" + dst_operand() + ", " +
               src_operand() + ", " + src_operand() + ");";
      }
      case 4: {
        const char* ops[] = {"shift_left", "shift_right"};
        return std::string("  ") + ops[u(2)] + "(" + dst_operand() + ", " +
               src_operand() + ", " + num(u(8)) + ");";
      }
      case 5: {
        // Register write: const index, or a field masked into range via the
        // scratch metadata (count is a power of two).
        const auto& r = regs[u(regs.size())];
        std::string val = chance(0.5) ? src_operand() : num(u(1024));
        if (chance(0.5)) {
          return "  register_write(" + r.name + ", " + num(u(r.count)) + ", " +
                 val + ");";
        }
        const std::string idx_src = fields[u(fields.size())].name;
        return "  bit_and(scr.s0, " + idx_src + ", " + num(r.count - 1) +
               ");\n  register_write(" + r.name + ", scr.s0, " + val + ");";
      }
      case 6: {
        const auto& r = regs[u(regs.size())];
        return "  register_read(" + writable[u(writable.size())].name + ", " +
               r.name + ", " + num(u(r.count)) + ");";
      }
      default:
        if (have_counter) return "  count(c0, " + num(u(8)) + ");";
        return "  add_to_field(" + dst_operand() + ", " + src_operand() + ");";
    }
  }

  void gen_actions() {
    const std::size_t na = 2 + u(2);  // 2..3 user actions
    for (std::size_t i = 0; i < na; ++i) {
      ActionG a;
      a.name = "act" + num(i);
      a.params = u(3);  // 0..2
      std::string sig = "action " + a.name + "(";
      for (std::size_t p = 0; p < a.params; ++p) {
        if (p > 0) sig += ", ";
        sig += "p" + num(p);
      }
      sig += ") {\n";
      const std::size_t np = 1 + u(3);
      for (std::size_t p = 0; p < np; ++p) sig += gen_prim(a.params) + "\n";
      sig += "}";
      a.uses_mbl_field = !mbl_field.empty() &&
                         sig.find("${" + mbl_field + "}") != std::string::npos;
      out.program.actions.push_back(sig);
      user_actions.push_back(a);
    }
    out.program.actions.push_back(
        "action fwd(port) {\n"
        "  modify_field(standard_metadata.egress_spec, port);\n}");
  }

  ReadG gen_read(bool allow_malleable) {
    ReadG r;
    if (allow_malleable && !mbl_field.empty() && chance(0.5)) {
      r.ref = mbl_field;
      r.malleable = true;
      r.width = 16;
      r.kind = chance(0.7) ? "exact" : "ternary";
      if (chance(0.4)) {
        r.has_premask = true;
        r.premask = 0xff00u | u(256);  // keep the domain bits comparable
      }
      return r;
    }
    const std::size_t fi = u(3);  // the 16-bit trio
    r.ref = "hdr.f" + num(fi);
    r.width = 16;
    const auto roll = u(10);
    r.kind = roll < 6 ? "exact" : (roll < 9 ? "ternary" : "lpm");
    return r;
  }

  std::string render_table(const TableG& t, const std::string& default_clause) {
    std::string s = (t.malleable ? std::string("malleable table ")
                                 : std::string("table ")) +
                    t.name + " {\n";
    if (!t.reads.empty()) {
      s += "  reads {\n";
      for (const auto& r : t.reads) {
        s += "    " + (r.malleable ? "${" + r.ref + "}" : r.ref);
        if (r.has_premask) s += " mask " + num(r.premask);
        s += " : " + r.kind + ";\n";
      }
      s += "  }\n";
    }
    s += "  actions { ";
    for (const auto& a : t.actions) s += a.name + "; ";
    if (t.has_drop) s += "_drop; ";
    s += "}\n";
    s += default_clause;
    s += "  size : " + num(t.size) + ";\n}";
    return s;
  }

  void gen_tables() {
    // The malleable table: the serializability machinery's main customer.
    TableG mt;
    mt.name = "mtbl";
    mt.malleable = true;
    mt.reads.push_back(gen_read(true));
    if (chance(0.4)) mt.reads.push_back(gen_read(false));
    mt.actions.push_back(user_actions[0]);
    if (user_actions.size() > 1 && chance(0.8)) {
      mt.actions.push_back(user_actions[1]);
    }
    mt.has_drop = chance(0.3);
    out.program.tables.push_back(render_table(mt, ""));
    match_tables.push_back(mt);

    if (chance(0.6)) {
      TableG pt;
      pt.name = "ptbl";
      pt.malleable = false;
      pt.reads.push_back(gen_read(false));
      pt.actions.push_back(user_actions.back());
      pt.has_drop = chance(0.2);
      std::string dflt;
      // Default actions cannot be specialized, so the clause is only legal
      // when the action never touches the malleable field.
      if (user_actions.back().params == 0 &&
          !user_actions.back().uses_mbl_field && chance(0.5)) {
        dflt = "  default_action : " + user_actions.back().name + ";\n";
      }
      out.program.tables.push_back(render_table(pt, dflt));
      match_tables.push_back(pt);
    }

    out.program.tables.push_back(
        "table forward {\n  actions { fwd; }\n  default_action : fwd(" +
        num(1 + u(4)) + ");\n  size : 1;\n}");

    if (chance(0.35)) {
      // Default-only egress table touching a register or counter.
      const auto& r = regs[u(regs.size())];
      out.program.actions.push_back(
          "action eact() {\n  bit_and(scr.s1, hdr.f1, " + num(r.count - 1) +
          ");\n  register_write(" + r.name + ", scr.s1, hdr.f0);\n}");
      out.program.tables.push_back(
          "table etbl {\n  actions { eact; }\n  default_action : eact;\n"
          "  size : 1;\n}");
      out.program.egress.push_back("  apply(etbl);");
    }
  }

  void gen_control() {
    if (match_tables.size() == 2 && chance(0.5)) {
      const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
      out.program.ingress.push_back(
          "  if (hdr.f0 " + std::string(ops[u(6)]) + " " +
          num(u(opts.match_domain)) + ") {\n    apply(mtbl);\n  } else {\n"
          "    apply(ptbl);\n  }");
    } else {
      for (const auto& t : match_tables) {
        out.program.ingress.push_back("  apply(" + t.name + ");");
      }
    }
    out.program.ingress.push_back("  apply(forward);");
  }

  // ---- reaction -----------------------------------------------------------

  struct Window { std::string reg; std::uint32_t lo, hi; };
  std::vector<Window> windows;
  std::vector<std::string> field_params;  ///< c_names ("hdr_f3")
  std::string field_param_ref;            ///< first param's "hdr.f3"

  void gen_reaction_sig() {
    std::string sig = "reaction rx(";
    bool first = true;
    auto add = [&](const std::string& p) {
      if (!first) sig += ", ";
      sig += p;
      first = false;
    };
    for (const auto& r : regs) {
      if (!windows.empty() && !chance(0.6)) continue;
      Window w;
      w.reg = r.name;
      w.lo = static_cast<std::uint32_t>(u(r.count));
      w.hi = w.lo + static_cast<std::uint32_t>(u(r.count - w.lo));
      windows.push_back(w);
      add("reg " + r.name + "[" + num(w.lo) + ":" + num(w.hi) + "]");
    }
    const std::size_t fi = u(fields.size());
    field_param_ref = fields[fi].name;
    std::string c_name = field_param_ref;
    std::replace(c_name.begin(), c_name.end(), '.', '_');
    field_params.push_back(c_name);
    add("ing " + field_param_ref);
    if (chance(0.4)) {
      // Avoid the ing param's field: reaction arg c_names must be distinct.
      std::size_t ei = u(3);
      if ("hdr.f" + num(ei) == field_param_ref) ei = (ei + 1) % 3;
      add("egr hdr.f" + num(ei));
      field_params.push_back("hdr_f" + num(ei));
    }
    if (chance(0.3)) add("${" + mbl_values[0] + "}");
    sig += ")";
    out.program.reaction_sig = sig;
  }

  /// Exact key literal list for a match table (respects arity).
  std::string table_key(const TableG& t) {
    std::string k;
    for (std::size_t i = 0; i < t.reads.size(); ++i) {
      if (i > 0) k += ", ";
      k += num(u(opts.match_domain));
    }
    return k;
  }

  std::string action_args(const ActionG& a, bool leading_comma) {
    std::string s;
    for (std::size_t i = 0; i < a.params; ++i) {
      if (i > 0 || leading_comma) s += ", ";
      s += num(u(64));
    }
    return s;
  }

  std::string mask_for(std::size_t value_index) {
    const unsigned w = mbl_value_width[value_index];
    return "0x" + [&] {
      char buf[32];
      snprintf(buf, sizeof buf, "%llx",
               static_cast<unsigned long long>(mask_for_width(w)));
      return std::string(buf);
    }();
  }

  std::string gen_stmt(std::size_t k) {
    const std::string K = num(k);
    const auto roll = u(8);
    if (roll == 0 || windows.empty()) {
      // Log probe over a scalar param (always valid: field params exist).
      return "  log(" + field_params[u(field_params.size())] + ");";
    }
    const auto& w = windows[u(windows.size())];
    const std::string i = "i" + K;
    const std::string loop_hdr = "for (int " + i + " = " + num(w.lo) + "; " +
                                 i + " <= " + num(w.hi) + "; ++" + i + ")";
    switch (roll) {
      case 1:
        return "  " + loop_hdr + " { log(" + w.reg + "[" + i + "]); }";
      case 2: {
        // Argmax over the window into a malleable value (masked to width).
        const std::size_t vi = u(mbl_values.size());
        return "  {\n    long mx" + K + " = -1; long mi" + K + " = " +
               num(w.lo) + ";\n    " + loop_hdr + " {\n      if (" + w.reg +
               "[" + i + "] > mx" + K + ") { mx" + K + " = " + w.reg + "[" +
               i + "]; mi" + K + " = " + i + "; }\n    }\n    ${" +
               mbl_values[vi] + "} = (mi" + K + ") & " + mask_for(vi) +
               ";\n  }";
      }
      case 3: {
        // Sum + threshold-guarded table add/del on the malleable table.
        const auto& t = match_tables[0];
        const auto& a = t.actions[u(t.actions.size())];
        const std::string key = table_key(t);
        const std::string thresh = num(1 + u(64));
        return "  {\n    long s" + K + " = 0;\n    " + loop_hdr + " { s" + K +
               " += " + w.reg + "[" + i + "]; }\n    if (s" + K + " > " +
               thresh + ") {\n      if (!" + t.name + ".hasEntry(" + key +
               ")) { " + t.name + ".addEntry(\"" + a.name + "\", " + key +
               action_args(a, true) + "); }\n    } else {\n      if (" +
               t.name + ".hasEntry(" + key + ")) { " + t.name +
               ".delEntry(" + key + "); }\n    }\n  }";
      }
      case 4: {
        // Static accumulator with threshold-driven malleable update.
        const std::size_t vi = u(mbl_values.size());
        return "  static long acc" + K + ";\n  acc" + K + " += " +
               field_params[0] + " + 1;\n  log(acc" + K + ");\n  if (acc" +
               K + " > " + num(8 + u(64)) + ") { ${" + mbl_values[vi] +
               "} = (acc" + K + ") & " + mask_for(vi) + "; }";
      }
      case 5: {
        if (mbl_field.empty()) return "  log(" + field_params[0] + ");";
        // Selector shift: rotate the malleable field among its alts.
        return "  ${" + mbl_field + "} = ((" + field_params[0] + ") & 0xff) % " +
               num(mbl_field_alts) + ";";
      }
      case 6: {
        const auto& t = match_tables[u(match_tables.size())];
        return "  log(" + t.name + ".entryCount());";
      }
      default: {
        // modEntry when present.
        const auto& t = match_tables[0];
        const auto& a = t.actions[u(t.actions.size())];
        const std::string key = table_key(t);
        return "  if (" + t.name + ".hasEntry(" + key + ")) { " + t.name +
               ".modEntry(\"" + a.name + "\", " + key + action_args(a, true) +
               "); }";
      }
    }
  }

  void gen_reaction_body() {
    const std::size_t n = 2 + u(4);  // 2..5 statements
    for (std::size_t k = 0; k < n; ++k) {
      out.program.reaction_stmts.push_back(gen_stmt(k));
    }
  }

  // ---- runtime: initial entries + trace -----------------------------------

  void gen_entries() {
    for (const auto& t : match_tables) {
      const std::size_t n = u(opts.max_initial_entries + 1);
      std::set<std::vector<std::uint64_t>> seen;  ///< effective masked keys
      std::int32_t prio = 100;
      for (std::size_t e = 0; e < n; ++e) {
        InitialEntry ent;
        ent.table = t.name;
        if (t.has_drop && chance(0.25)) {
          ent.action = "_drop";  // exercises the drop verdict path
        } else {
          const auto& a = t.actions[u(t.actions.size())];
          ent.action = a.name;
          for (std::size_t p = 0; p < a.params; ++p) ent.args.push_back(u(64));
        }
        std::vector<std::uint64_t> effective;
        bool any_nonexact = false;
        for (const auto& r : t.reads) {
          const std::uint64_t v = u(opts.match_domain);
          // Exact reads use the full 64-bit mask, matching what the creact
          // runtime's addEntry builds — so hasEntry-guarded reaction adds
          // dedup against initial entries instead of colliding.
          std::uint64_t mask = ~std::uint64_t{0};
          if (r.kind == "ternary") {
            any_nonexact = true;
            // Mask keeps the low domain bits so entries still hit.
            mask = (opts.match_domain - 1) |
                   (u(2) ? 0 : 0xff00ull & mask_for_width(r.width));
          } else if (r.kind == "lpm") {
            any_nonexact = true;
            const unsigned plen = 8 + static_cast<unsigned>(u(9));
            mask = mask_for_width(r.width) &
                   ~mask_for_width(r.width - std::min(plen, r.width));
          }
          const std::uint64_t pre = r.has_premask ? r.premask
                                                  : ~std::uint64_t{0};
          ent.key.push_back(v & mask);
          ent.masks.push_back(mask);
          effective.push_back(v & mask & pre);
          effective.push_back(mask & pre);
        }
        if (!seen.insert(effective).second) continue;  // avoid ambiguity
        // Distinct priorities sidestep insertion-order tie-breaks between
        // overlapping ternary entries (they are legal but make the oracle
        // depend on mirror-order internals).
        ent.priority = any_nonexact ? prio-- : 0;
        out.entries.push_back(std::move(ent));
      }
    }
  }

  void gen_trace() {
    out.epochs = static_cast<std::uint32_t>(
        opts.min_epochs + u(opts.max_epochs - opts.min_epochs + 1));
    for (std::uint32_t ep = 0; ep < out.epochs; ++ep) {
      const std::size_t n = 1 + u(opts.max_packets_per_epoch);
      for (std::size_t j = 0; j < n; ++j) {
        PacketSpec p;
        p.epoch = ep;
        p.port = static_cast<int>(u(4));
        p.length = 64 + static_cast<std::uint32_t>(u(4)) * 64;
        for (const auto& f : fields) {
          // Match-relevant trio in the small domain; the rest wider.
          const bool match_field = f.name <= "hdr.f2";
          const std::uint64_t v =
              match_field ? u(opts.match_domain)
                          : u(1ull << std::min(f.width, 16u));
          p.fields.emplace_back(f.name, v);
        }
        out.packets.push_back(std::move(p));
      }
    }
  }
};

}  // namespace

std::uint64_t iteration_seed(std::uint64_t base, std::uint64_t iteration) {
  // splitmix64 over (base + iteration): decorrelates adjacent iterations.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Scenario generate_scenario(std::uint64_t seed, const GenOptions& opts) {
  Gen g(seed, opts);
  g.out.seed = seed;
  g.gen_fields();
  g.gen_malleables();
  g.gen_state();
  g.gen_actions();
  g.gen_tables();
  g.gen_control();
  g.gen_reaction_sig();
  g.gen_reaction_body();
  g.gen_entries();
  g.gen_trace();
  return g.out;
}

}  // namespace mantis::check
