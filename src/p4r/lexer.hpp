// Lexer for P4R source (P4-14 subset + Figure 3 extensions + embedded C
// reaction bodies). One pass tokenizes the whole file, including reaction
// bodies, whose C-subset operators are all in the symbol table below.
#pragma once

#include <string_view>
#include <vector>

#include "p4r/token.hpp"

namespace mantis::p4r {

/// Tokenizes `source`; throws UserError with line:col on bad input.
/// The result always ends with a kEof token.
std::vector<Token> lex(std::string_view source);

}  // namespace mantis::p4r
