// Reaction provenance: a monotonically increasing reaction_id minted per
// dialogue iteration and threaded agent -> driver -> sim so one reaction
// renders as a connected Chrome-trace flow arc (agent iteration span ->
// driver op spans -> sim table-commit span -> first-effect packet span) and
// its poll/compute/push/take-effect latency breakdown lands in registry
// histograms.
//
// Iterations can nest: with multiple agents on one event loop, agent B's
// dialogue iteration may run inside agent A's driver wait (run_until), so
// the live reaction is a stack of frames, not a scalar. Driver ops and table
// mutations attribute to the innermost open frame.
//
// First-effect detection: table entries/defaults are stamped with the
// mutating reaction's id; when that reaction's iteration *ends* with at
// least one mutation, the context arms effect_pending_. The pipeline flags
// the first packet whose lookup hits a stamped rule (one branch per lookup),
// and the switch converts the flag into a take-effect histogram sample plus
// the flow-ending span. Arming at end_reaction — not at mutation time —
// avoids false positives from packets arriving mid-reaction.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"
#include "util/time.hpp"

namespace mantis::telemetry {

class Histogram;
class Counter;
class MetricsRegistry;

class ProvenanceContext {
 public:
  ProvenanceContext(MetricsRegistry& metrics, Tracer& tracer,
                    FlightRecorder& recorder);

  // ---- agent side ----
  /// Opens a new reaction frame and returns its id (ids start at 1; 0 means
  /// "no reaction in flight"). Emits the flow-start event on the agent track.
  std::uint64_t begin_reaction(Time now);
  /// Closes the frame `rid` (must be the innermost open frame), records the
  /// poll/compute/push breakdown, and — if the reaction mutated dataplane
  /// state — arms first-effect detection.
  void end_reaction(std::uint64_t rid, Time now, Duration poll,
                    Duration compute, Duration push);
  /// Innermost open reaction id, or 0.
  std::uint64_t current_reaction() const {
    return frames_.empty() ? 0 : frames_.back().id;
  }

  // ---- driver side ----
  /// One completed PCIe-model op: span on the driver-channel track with the
  /// reaction id as argument, flow step, and a flight-recorder entry. `op`
  /// must be a static string literal (trace events don't copy).
  void on_driver_op(const char* op, const std::string& detail, Time submitted,
                    Time completion);

  /// Same, but attributed to an explicit reaction id: async batch
  /// completions execute after (or outside) the submitting reaction's
  /// frame, so the driver runtime captures the id at submit time and stamps
  /// the completed ops with it here.
  void on_driver_op_for(std::uint64_t rid, const char* op,
                        const std::string& detail, Time submitted,
                        Time completion);

  /// Forces table-mutation attribution to `rid` while alive. The async
  /// driver wraps a batch's apply phase in one of these so every entry the
  /// batch touches is stamped with the *submitting* reaction — not whatever
  /// frame happens to be open at the completion instant. If the submitting
  /// frame is still open (the agent reaping its own push), its `mutated`
  /// bit is set so first-effect detection arms as usual; mutations applied
  /// after the frame closed (mirror maintenance) stamp entries but never
  /// re-arm.
  class ScopedAttribution {
   public:
    ScopedAttribution(ProvenanceContext& ctx, std::uint64_t rid)
        : ctx_(&ctx), prev_(ctx.forced_rid_) {
      ctx_->forced_rid_ = rid;
    }
    ~ScopedAttribution() { ctx_->forced_rid_ = prev_; }
    ScopedAttribution(const ScopedAttribution&) = delete;
    ScopedAttribution& operator=(const ScopedAttribution&) = delete;

   private:
    ProvenanceContext* ctx_;
    std::uint64_t prev_;
  };

  // ---- sim side ----
  /// Called by TableState on add/modify/delete/set_default. Marks the
  /// innermost frame as having mutated dataplane state and returns its id
  /// (the stamp for the entry). Returns 0 outside any reaction (management
  /// plane, test setup).
  std::uint64_t on_table_mutation();
  /// Hot path (one compare per table lookup): the pipeline reports the
  /// provenance stamp of the rule a packet hit. Safe from shard workers:
  /// effect_pending_ is a relaxed atomic (armed on the control thread
  /// strictly before any round that can observe the stamped rule), and the
  /// flag itself is thread-local — it is set and consumed within one event
  /// on one thread, so shards never contend on it.
  void note_hit(std::uint64_t stamp) {
    if (stamp != 0 &&
        stamp == effect_pending_.load(std::memory_order_relaxed)) {
      hit_owner_ = this;
    }
  }
  /// The switch polls this after each pipeline pass; true at most once per
  /// armed reaction. The owner check keeps stacks with several contexts
  /// (multi-fabric tests) from consuming each other's hits.
  bool consume_flagged_hit() {
    if (hit_owner_ != this) return false;
    hit_owner_ = nullptr;
    return true;
  }
  /// Converts a consumed hit into the take-effect sample, the first-effect
  /// span [arrival, arrival + pass_latency), and the flow end.
  void on_first_effect(Time arrival, Duration pass_latency);

  std::uint64_t last_reaction() const { return next_id_; }
  std::uint64_t pending_effect_reaction() const {
    return effect_pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    std::uint64_t id = 0;
    bool mutated = false;
  };

  Tracer& tracer_;
  FlightRecorder& recorder_;
  Histogram* poll_hist_;
  Histogram* compute_hist_;
  Histogram* push_hist_;
  Histogram* take_effect_hist_;
  Counter* reactions_;
  Counter* first_effects_;

  std::uint64_t next_id_ = 0;
  std::uint64_t forced_rid_ = 0;  ///< ScopedAttribution override (0 = none)
  std::vector<Frame> frames_;
  /// Reaction awaiting its first effect. Relaxed atomic: armed on the
  /// control thread between rounds, read by shard pipelines during rounds.
  std::atomic<std::uint64_t> effect_pending_{0};
  /// end_reaction time of that reaction. Plain: written on the control
  /// thread, read by the shard that consumes the hit; the round dispatch
  /// barrier (release/acquire) orders the write before the read.
  Time committed_at_ = 0;
  /// Set by note_hit, consumed by consume_flagged_hit within the same
  /// pipeline pass on the same thread. Thread-local so shards don't race.
  static thread_local const ProvenanceContext* hit_owner_;
};

}  // namespace mantis::telemetry
