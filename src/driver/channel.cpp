#include "driver/channel.hpp"

#include "util/check.hpp"

namespace mantis::driver {

Time Channel::submit(Duration cost, std::function<void()> apply,
                     Duration critical) {
  expects(cost >= 0, "Channel::submit: negative cost");
  if (critical < 0) critical = cost;
  expects(critical <= cost, "Channel::submit: critical section exceeds cost");
  // Local preparation runs immediately; the critical section queues behind
  // whatever currently holds the channel.
  const Time local_done = loop_->now() + (cost - critical);
  const Time start_critical = std::max(local_done, free_at_);
  const Time completion = start_critical + critical;
  free_at_ = completion;
  busy_time_ += cost;
  ++ops_;
  if (apply) loop_->schedule_at(completion, std::move(apply));
  return completion;
}

Time Channel::free_at() const { return std::max(loop_->now(), free_at_); }

}  // namespace mantis::driver
