#include "agent/measurement.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace mantis::agent {

p4r::creact::PolledParams Measurement::poll(driver::Driver& drv,
                                            const compile::ReactionInfo& rinfo,
                                            int checkpoint_mv) {
  expects(checkpoint_mv == 0 || checkpoint_mv == 1, "poll: bad mv");
  p4r::creact::PolledParams out;
  last_poll_ops_ = 0;

  // ---- packed field params: one scattered-word read over all registers ----
  if (!rinfo.measure_regs.empty()) {
    std::vector<driver::Driver::WordRef> words;
    words.reserve(rinfo.measure_regs.size());
    for (const auto& reg : rinfo.measure_regs) {
      words.push_back(driver::Driver::WordRef{
          reg, static_cast<std::uint32_t>(checkpoint_mv)});
    }
    const auto values = drv.read_packed_words(words);
    ++last_poll_ops_;

    for (const auto& slot : rinfo.fields) {
      // Locate the word for this slot's register.
      std::size_t word_idx = 0;
      for (; word_idx < rinfo.measure_regs.size(); ++word_idx) {
        if (rinfo.measure_regs[word_idx] == slot.reg) break;
      }
      ensures(word_idx < values.size(), "poll: missing measurement register");
      const std::uint64_t word = values[word_idx];
      const std::uint64_t v =
          (word >> slot.bit_offset) & mask_for_width(slot.width);
      out.scalars[slot.c_name] = static_cast<p4r::creact::CValue>(v);
    }
  }

  // ---- duplicated register params: range DMA + timestamp cache ----
  for (const auto& slot : rinfo.regs) {
    const std::uint32_t n = slot.hi - slot.lo + 1;
    // Interleaved layout: checkpoint cells are dup[2*i + checkpoint_mv].
    const std::uint32_t first = 2 * slot.lo;
    const std::uint32_t last = 2 * slot.hi + 1;
    const auto dup_vals = drv.read_register_range(slot.dup_reg, first, last);
    const auto ts_vals = drv.read_register_range(slot.ts_reg, first, last);
    last_poll_ops_ += 2;

    p4r::creact::PolledParams::Array arr;
    arr.lo = slot.lo;
    arr.values.resize(n);

    auto& line = cache_[slot.dup_reg];
    if (cache_enabled_ && !line.primed) {
      line.ts.assign(n, 0);
      line.value.assign(n, 0);
      line.primed = true;
    }

    for (std::uint32_t i = 0; i < n; ++i) {
      const std::size_t cell = 2 * i + static_cast<std::size_t>(checkpoint_mv);
      const std::uint64_t v = dup_vals[cell];
      const std::uint64_t t = ts_vals[cell];
      if (cache_enabled_) {
        // Replace the cached value only when the checkpoint copy is newer —
        // this is what suppresses the r_i / r_{i+1} alternation (§5.2).
        if (t > line.ts[i]) {
          line.ts[i] = t;
          line.value[i] = v;
        }
        arr.values[i] = static_cast<p4r::creact::CValue>(line.value[i]);
      } else {
        arr.values[i] = static_cast<p4r::creact::CValue>(v);
      }
    }
    out.arrays.emplace(slot.c_name, std::move(arr));
  }

  return out;
}

}  // namespace mantis::agent
