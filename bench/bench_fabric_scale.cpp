// Parallel fabric engine scaling: wall-clock time to simulate a fixed
// virtual horizon of a data-plane-heavy leaf-spine fabric, swept over
// switch count x worker threads. The equivalence contract (identical
// results for any thread count — tests/test_parallel_fabric.cpp) means the
// thread knob is purely a speed knob; this bench measures what it buys.
//
// Speedup is a property of the host: with fewer cores than threads the
// workers timeslice and the barrier rounds cost more than they win, so the
// report records hardware_concurrency alongside every sample. The
// acceptance target (>= 2x at 16 switches / 8 threads) applies on hosts
// with >= 8 cores.
//
// The hot-path profiler (telemetry/prof) runs for every configuration:
// events_per_sec is reported per cell (the headline DES throughput metric;
// wall-clock, so advisory — never gated by bench_regress), and one showcase
// configuration's full cost-attribution breakdown embeds in the report as
// the "prof" section. Extra flags on top of --out:
//   --prof <path>          standalone ProfileReport JSON (showcase config)
//   --prof-folded <path>   folded stacks for flamegraph.pl / speedscope
//   --prof-switches N      showcase topology size    (default 16)
//   --prof-threads T       showcase thread count     (default 4)
//   --overhead-guard       measure profiling overhead (enabled vs disabled)
//                          instead of the sweep; exits 1 only on >2x
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/gray_failure.hpp"
#include "bench_util.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "workload/flow_classes.hpp"

namespace {

using namespace mantis;

struct ScaleResult {
  double wall_ms = 0;
  std::uint64_t delivered = 0;  ///< cross-check: thread-count invariant
  std::uint64_t events = 0;     ///< event callbacks dispatched (profiler)
  telemetry::prof::ProfileReport prof;

  double events_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(events) * 1000.0 / wall_ms : 0;
  }
};

// Pure data-plane load: link-local traffic in both directions of every
// switch-switch link. Long propagation widens the conservative lookahead
// window, so each barrier round carries enough per-shard work to amortize
// the synchronization — the regime the engine is for.
ScaleResult run_once(int switches, int threads, Time horizon,
                     bool profile = true) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());

  net::FabricConfig fc;
  fc.default_link.propagation = 2000;
  net::Fabric fabric(loop, artifacts.prog,
                     net::Topology::leaf_spine(switches / 2, switches / 2, 1),
                     fc);
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    const auto& l = fabric.topo().links[i];
    if (!fabric.topo().is_switch(l.a) || !fabric.topo().is_switch(l.b))
      continue;
    auto make = [&fabric] {
      auto pkt = fabric.factory().make(64);
      fabric.factory().set(pkt, "ipv4.protocol", 253);
      return pkt;
    };
    fabric.start_periodic(l.a, l.b, 100, horizon, make);
    fabric.start_periodic(l.b, l.a, 100, horizon, make);
  }

  auto& prof = loop.telemetry().prof();
  prof.set_enabled(profile);

  const auto t0 = std::chrono::steady_clock::now();
  if (threads > 1) {
    net::ParallelFabricEngine engine(fabric, threads);
    engine.run_until(horizon);
  } else {
    loop.run_until(horizon);
  }
  const auto t1 = std::chrono::steady_clock::now();
  prof.set_enabled(false);

  ScaleResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    r.delivered += fabric.link(i).dir_stats(0).delivered_pkts +
                   fabric.link(i).dir_stats(1).delivered_pkts;
  }
  if (profile) {
    r.prof = prof.report();
    r.prof.enabled = true;  // snapshot taken after the disable above
    r.events = r.prof.events;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Datacenter-scale: 1024-switch 3-tier Clos under a million aggregated
// Zipf fluid-TCP flows (workload/flow_classes.hpp). Routes are installed
// structurally (ClosSpec::next_hop_port — no per-switch Dijkstra), only for
// the destinations the workload uses, so setup stays linear in switches.
// ---------------------------------------------------------------------------

// 16 pods x (32 leaves + 16 aggs) + 256 cores = 1024 switches, 1 host/leaf.
constexpr net::ClosSpec kClos{16, 32, 16, 256, 1};
constexpr int kClosClasses = 128;   ///< flow classes (2 per dst host)
constexpr int kClosDsts = 64;       ///< distinct dst hosts (route table <= 256)
constexpr std::uint64_t kClosFlows = 1'048'576;

ScaleResult run_clos_once(int threads, Time horizon, bool profile = false) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());

  net::FabricConfig fc;
  fc.default_link.propagation = 2000;
  // Aggs have the widest radix: L + C/A = 32 + 16 = 48 ports.
  fc.switch_cfg.num_ports = 48;
  net::Fabric fabric(loop, artifacts.prog, net::Topology::clos(kClos), fc);

  // Deterministic endpoint plan: 64 distinct destination leaves (stride 8
  // covers every pod), two classes per destination, sources spread by a
  // coprime stride. Only these 64 addresses need route entries.
  std::vector<workload::FlowClasses::Endpoint> endpoints;
  std::vector<std::uint32_t> dst_addrs;
  for (int k = 0; k < kClosDsts; ++k) {
    dst_addrs.push_back(kClos.host_addr((k * 8 + 3) % kClos.num_leaves(), 0));
  }
  for (int c = 0; c < kClosClasses; ++c) {
    const std::uint32_t dst = dst_addrs[static_cast<std::size_t>(c % kClosDsts)];
    int src_leaf = (c * 37 + 11) % kClos.num_leaves();
    if (kClos.host_addr(src_leaf, 0) == dst) {
      src_leaf = (src_leaf + 1) % kClos.num_leaves();
    }
    endpoints.push_back({kClos.host_addr(src_leaf, 0), dst});
  }
  // Structural route install: every switch gets a next hop per workload
  // destination (65536 entries fabric-wide, 64 per switch).
  for (int sw = 0; sw < kClos.num_switches(); ++sw) {
    auto& route = fabric.switch_at(sw).table("route");
    for (const std::uint32_t addr : dst_addrs) {
      const int port = kClos.next_hop_port(sw, addr);
      if (port < 0) continue;
      p4::EntrySpec spec;
      spec.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
      // The isolation pass gives malleable tables a vv version column; no
      // agent runs here, so packets (and entries) stay on version 0.
      spec.key.push_back(p4::MatchValue{0, ~std::uint64_t{0}});
      spec.action = "set_egress";
      spec.action_args.push_back(static_cast<std::uint64_t>(port));
      route.add_entry(spec);
    }
  }

  workload::FlowClassesConfig wc;
  wc.total_flows = kClosFlows;
  wc.epoch = 20 * kMicrosecond;
  wc.max_samples_per_epoch = 64;
  workload::FlowClasses flows(fabric, wc, std::move(endpoints));

  auto& prof = loop.telemetry().prof();
  prof.set_enabled(true);  // events/sec needs the dispatch counter

  const auto t0 = std::chrono::steady_clock::now();
  if (threads > 1) {
    net::ParallelFabricEngine engine(fabric, threads);
    flows.start(horizon, engine.lookahead());
    engine.run_until(horizon);
  } else {
    flows.start(horizon);
    loop.run_until(horizon);
  }
  const auto t1 = std::chrono::steady_clock::now();
  prof.set_enabled(false);

  ScaleResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.delivered = flows.samples_delivered();
  r.prof = prof.report();
  r.prof.enabled = true;
  r.events = r.prof.events;
  if (!profile) r.prof = telemetry::prof::ProfileReport{};
  return r;
}

/// Satellite: profiling compiled in but *disabled* vs enabled, same small
/// configuration. Soft-warns past the ~5% budget; hard-fails only past 2x
/// (something is badly wrong — e.g. a scope on a per-field path).
int run_overhead_guard(Time horizon) {
  constexpr int kSwitches = 8;
  constexpr int kThreads = 4;
  constexpr int kReps = 3;
  double off_ms = -1, on_ms = -1;
  // Interleave reps and keep minima: least-noise estimate on shared CI hosts.
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = run_once(kSwitches, kThreads, horizon, false).wall_ms;
    const double on = run_once(kSwitches, kThreads, horizon, true).wall_ms;
    if (off_ms < 0 || off < off_ms) off_ms = off;
    if (on_ms < 0 || on < on_ms) on_ms = on;
  }
  const double ratio = off_ms > 0 ? on_ms / off_ms : 1.0;
  std::printf("profiling overhead: disabled %.2f ms, enabled %.2f ms "
              "(%.1f%%)\n",
              off_ms, on_ms, (ratio - 1.0) * 100.0);
  if (ratio > 2.0) {
    std::printf("FAIL: profiling overhead exceeds 2x\n");
    return 1;
  }
  if (ratio > 1.05) {
    std::printf("WARN: profiling overhead above the ~5%% budget (advisory)\n");
  } else {
    std::printf("OK: within the ~5%% budget\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fabric_scale", argc, argv);
  const unsigned cores = std::thread::hardware_concurrency();
  report.params().set("hardware_concurrency", static_cast<std::int64_t>(cores));

  std::string prof_path, folded_path;
  int prof_switches = 16, prof_threads = 4;
  bool overhead_guard = false;
  bool prof_clos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prof-clos") == 0) {
      prof_clos = true;
    } else if (std::strcmp(argv[i], "--prof") == 0 && i + 1 < argc) {
      prof_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prof-folded") == 0 && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prof-switches") == 0 && i + 1 < argc) {
      prof_switches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--prof-threads") == 0 && i + 1 < argc) {
      prof_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--overhead-guard") == 0) {
      overhead_guard = true;
    }
  }

  const Time horizon = 200 * kMicrosecond;
  if (overhead_guard) return run_overhead_guard(horizon);

  // --prof-clos: skip the sweeps and print per-event-kind attribution for a
  // single sequential 1024-switch Clos run (what is the datacenter-scale
  // hot path actually spending cycles on?).
  if (prof_clos) {
    const auto r = run_clos_once(1, horizon, /*profile=*/true);
    std::printf("clos1024 t1: %.2f ms, %llu events, %.2f Mev/s\n\n", r.wall_ms,
                static_cast<unsigned long long>(r.events),
                r.events_per_sec() / 1e6);
    std::printf("%s\n", r.prof.to_folded().c_str());
    return 0;
  }

  bench::print_header(
      "Parallel fabric engine: wall-clock per 200us virtual horizon "
      "(leaf-spine, saturated link-local traffic)");
  std::printf("host cores: %u (speedup needs cores >= threads)\n\n", cores);
  bench::print_row({"switches", "threads", "wall_ms", "speedup", "Mev/s",
                    "pkts"});

  std::string prof_json, prof_folded;
  bool showcased = false;
  for (const int switches : {4, 8, 16}) {
    double base_ms = 0;
    std::uint64_t base_delivered = 0;
    for (const int threads : {1, 2, 4, 8}) {
      const auto r = run_once(switches, threads, horizon);
      if (threads == 1) {
        base_ms = r.wall_ms;
        base_delivered = r.delivered;
      } else if (r.delivered != base_delivered) {
        std::printf("FAIL: thread-count changed delivery (%llu vs %llu)\n",
                    static_cast<unsigned long long>(r.delivered),
                    static_cast<unsigned long long>(base_delivered));
        return 1;
      }
      const double speedup = r.wall_ms > 0 ? base_ms / r.wall_ms : 0;
      bench::print_row({std::to_string(switches), std::to_string(threads),
                        bench::fmt(r.wall_ms, 2), bench::fmt(speedup, 2),
                        bench::fmt(r.events_per_sec() / 1e6, 2),
                        std::to_string(r.delivered)});
      const std::string key =
          "sw" + std::to_string(switches) + ".t" + std::to_string(threads);
      report.set(key + ".wall_ms", r.wall_ms);
      report.set(key + ".speedup", speedup);
      report.set(key + ".events_per_sec", r.events_per_sec());
      if (switches == prof_switches && threads == prof_threads) {
        prof_json = r.prof.to_json();
        prof_folded = r.prof.to_folded();
        showcased = true;
      }
    }
  }
  // Datacenter-scale Clos sweep. Delivery invariance across thread counts
  // is the same hard determinism check as above; events/sec is the
  // headline (per-switch-normalized too, so it compares against the
  // smaller sweeps). On few-core hosts the parallel rows measure engine
  // overhead, not speedup — same caveat as the leaf-spine sweep.
  std::printf("\n");
  bench::print_header(
      "Datacenter scale: 1024-switch 3-tier Clos (16 pods x 32 leaves x 16 "
      "aggs + 256 cores), 1M+ aggregated Zipf fluid-TCP flows");
  bench::print_row({"topology", "threads", "wall_ms", "speedup", "Mev/s",
                    "samples"});
  {
    double base_ms = 0;
    std::uint64_t base_delivered = 0;
    for (const int threads : {1, 2, 4, 8}) {
      const auto r = run_clos_once(threads, horizon);
      if (threads == 1) {
        base_ms = r.wall_ms;
        base_delivered = r.delivered;
      } else if (r.delivered != base_delivered) {
        std::printf("FAIL: thread-count changed clos delivery (%llu vs %llu)\n",
                    static_cast<unsigned long long>(r.delivered),
                    static_cast<unsigned long long>(base_delivered));
        return 1;
      }
      const double speedup = r.wall_ms > 0 ? base_ms / r.wall_ms : 0;
      bench::print_row({"clos1024", std::to_string(threads),
                        bench::fmt(r.wall_ms, 2), bench::fmt(speedup, 2),
                        bench::fmt(r.events_per_sec() / 1e6, 2),
                        std::to_string(r.delivered)});
      const std::string key = "clos1024.t" + std::to_string(threads);
      report.set(key + ".wall_ms", r.wall_ms);
      report.set(key + ".speedup", speedup);
      report.set(key + ".events_per_sec", r.events_per_sec());
      report.set(key + ".events_per_sec_per_switch",
                 r.events_per_sec() / kClos.num_switches());
    }
    report.set("clos1024.flows", static_cast<std::int64_t>(kClosFlows));
    report.set("clos1024.classes", static_cast<std::int64_t>(kClosClasses));
    report.set("clos1024.delivered_samples",
               static_cast<std::int64_t>(base_delivered));
    std::printf(
        "\n%d switches, %d aggregated classes carrying %llu Zipf flows; "
        "identical sample delivery at every thread count.\n",
        kClos.num_switches(), kClosClasses,
        static_cast<unsigned long long>(kClosFlows));
  }

  // Showcase config outside the default sweep (e.g. --prof-switches 64):
  // run it separately so the attribution breakdown covers what was asked.
  if (!showcased) {
    const auto r = run_once(prof_switches, prof_threads, horizon);
    const std::string key = "sw" + std::to_string(prof_switches) + ".t" +
                            std::to_string(prof_threads);
    report.set(key + ".wall_ms", r.wall_ms);
    report.set(key + ".events_per_sec", r.events_per_sec());
    bench::print_row({std::to_string(prof_switches),
                      std::to_string(prof_threads), bench::fmt(r.wall_ms, 2),
                      "-", bench::fmt(r.events_per_sec() / 1e6, 2),
                      std::to_string(r.delivered)});
    prof_json = r.prof.to_json();
    prof_folded = r.prof.to_folded();
  }

  report.set_prof(prof_json);
  if (!prof_path.empty()) {
    telemetry::write_text_file(prof_path, prof_json);
    std::printf("profile: %s\n", prof_path.c_str());
  }
  if (!folded_path.empty()) {
    telemetry::write_text_file(folded_path, prof_folded);
    std::printf("folded stacks: %s\n", folded_path.c_str());
  }

  std::printf(
      "\nEvery configuration delivers the identical packet set (the\n"
      "determinism contract), so the sweep isolates pure engine cost:\n"
      "barrier rounds vs single-queue sequential dispatch. The \"prof\"\n"
      "section of the report attributes host cycles and allocations per\n"
      "event kind for sw%d.t%d.\n",
      prof_switches, prof_threads);
  report.write();
  return 0;
}
