// Sequential-vs-parallel equivalence suite for the fabric engine.
//
// The determinism contract (docs/NETWORK.md): for any seed, topology, fault
// schedule, and thread count, net::ParallelFabricEngine produces *the same
// execution* as the sequential event loop — same packet orders, same
// telemetry counters and histograms, same flight-recorder dumps. These
// tests enforce the contract byte-for-byte: every signature string below is
// compared with EXPECT_EQ against the threads=1 baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gray_failure.hpp"
#include "compile/compiler.hpp"
#include "int/scenario.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/scenarios.hpp"
#include "net/topology.hpp"
#include "sim/event_loop.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/flow_classes.hpp"

namespace mantis {
namespace {

// ---------------------------------------------------------------------------
// Run signatures: everything the contract promises is byte-identical.
// ---------------------------------------------------------------------------

struct RunSignature {
  std::string events;   ///< scenario / injector event log, joined
  std::string metrics;  ///< MetricsRegistry::snapshot_json
  std::string mfr;      ///< flight-recorder text dump (canonical ring order)
  std::string stats;    ///< link DirStats + fabric counters, formatted

  bool operator==(const RunSignature&) const = default;
};

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string link_stats_text(net::Fabric& fabric) {
  std::ostringstream os;
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    net::Link& l = fabric.link(i);
    for (int dir = 0; dir < 2; ++dir) {
      const auto& s = l.dir_stats(dir);
      os << l.name() << (dir == 0 ? " ab " : " ba ") << s.tx_pkts << ' '
         << s.tx_bytes << ' ' << s.delivered_pkts << ' ' << s.dropped_pkts
         << ' ' << s.busy_ns << ' ' << s.int_pkts << ' ' << s.int_bytes
         << '\n';
    }
  }
  os << "host_tx=" << fabric.stats().host_tx_pkts.load()
     << " host_rx=" << fabric.stats().host_rx_pkts.load()
     << " unwired=" << fabric.stats().unwired_tx_pkts.load() << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// Scenario equivalence: the full Mantis stack (per-switch agents, drivers,
// PCIe models, detectors) under the gray-failure and ECMP scenarios.
// ---------------------------------------------------------------------------

RunSignature run_gray(int threads, std::uint64_t seed, Duration pacing = 0,
                      int leaves = 2, int spines = 2, bool async_push = false) {
  net::GrayScenarioConfig cfg;
  cfg.leaves = leaves;
  cfg.spines = spines;
  cfg.seed = seed;
  cfg.pacing = pacing;
  cfg.threads = threads;
  cfg.agent.async_push = async_push;
  if (leaves * spines > 4) {
    // Prologues serialize on the virtual clock; more switches need a later
    // fault (the scenario throws if prologues overrun fault_at).
    cfg.fault_at = 300 * kMicrosecond;
    cfg.run_until = 600 * kMicrosecond;
  }
  net::GrayFabricScenario scenario(cfg);
  auto res = scenario.run();

  RunSignature sig;
  sig.events = join(res.events);
  sig.metrics = scenario.loop().telemetry().metrics().snapshot_json();
  sig.mfr = scenario.loop().telemetry().recorder().dump_text(
      scenario.loop().now(), "equivalence");
  sig.stats = link_stats_text(scenario.fabric());
  return sig;
}

TEST(ParallelFabricEquivalence, GraySeedsAndThreadCounts) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    const RunSignature base = run_gray(1, seed);
    for (int threads : {2, 4, 8}) {
      const RunSignature par = run_gray(threads, seed);
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.mfr, base.mfr) << "seed " << seed << " threads "
                                   << threads;
      EXPECT_EQ(par.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelFabricEquivalence, GrayWithPacedAgents) {
  // Pacing turns the agents into periodic sleepers instead of busy loops —
  // a different control/shard interleaving shape than the default.
  const RunSignature base = run_gray(1, 3, 5 * kMicrosecond);
  const RunSignature par = run_gray(4, 3, 5 * kMicrosecond);
  EXPECT_EQ(par.events, base.events);
  EXPECT_EQ(par.metrics, base.metrics);
  EXPECT_EQ(par.mfr, base.mfr);
  EXPECT_EQ(par.stats, base.stats);
}

TEST(ParallelFabricEquivalence, GrayWiderFabric) {
  // 4x2: more shards than the default topology, uneven shard loads.
  const RunSignature base = run_gray(1, 5, 0, /*leaves=*/4, /*spines=*/2);
  const RunSignature par = run_gray(4, 5, 0, /*leaves=*/4, /*spines=*/2);
  EXPECT_EQ(par.events, base.events);
  EXPECT_EQ(par.metrics, base.metrics);
  EXPECT_EQ(par.stats, base.stats);
}

TEST(ParallelFabricEquivalence, GrayWithAsyncPushAgents) {
  // Every agent pushes through the batched async driver runtime: the reroute
  // lands as pipelined prepare/commit/mirror batches whose completions are
  // events on the owning switch's control shard. Determinism must hold at
  // every batch size / pipeline depth the scenario produces.
  for (std::uint64_t seed : {2ull, 8ull}) {
    const RunSignature base =
        run_gray(1, seed, 0, 2, 2, /*async_push=*/true);
    for (int threads : {2, 4}) {
      const RunSignature par =
          run_gray(threads, seed, 0, 2, 2, /*async_push=*/true);
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.mfr, base.mfr) << "seed " << seed << " threads "
                                   << threads;
      EXPECT_EQ(par.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Hot-path profiler equivalence: enabling wall-clock profiling must not
// perturb the virtual execution at any thread count. The profiler reads
// host clocks and allocation counters but never feeds back into virtual
// time, so every signature stays byte-identical to an unprofiled baseline.
// ---------------------------------------------------------------------------

RunSignature run_gray_profiled(int threads, std::uint64_t seed,
                               Duration pacing) {
  net::GrayScenarioConfig cfg;
  cfg.seed = seed;
  cfg.pacing = pacing;
  cfg.threads = threads;
  net::GrayFabricScenario scenario(cfg);
  scenario.loop().telemetry().prof().set_enabled(true);
  auto res = scenario.run();

  RunSignature sig;
  sig.events = join(res.events);
  sig.metrics = scenario.loop().telemetry().metrics().snapshot_json();
  sig.mfr = scenario.loop().telemetry().recorder().dump_text(
      scenario.loop().now(), "equivalence");
  sig.stats = link_stats_text(scenario.fabric());
#if MANTIS_TELEMETRY_ENABLED
  // The profiler must actually have observed the run it didn't perturb.
  EXPECT_GT(scenario.loop().telemetry().prof().report().events, 0u)
      << "threads " << threads;
#endif
  return sig;
}

TEST(ParallelFabricEquivalence, ProfilingScopesDoNotPerturbExecution) {
  // Pacing 100us gives the harness inter-poll drain windows, so threads=4
  // exercises real engine rounds (barrier stalls, outbox reinsertion) with
  // the profiler's round/shard accounting active.
  const Duration pacing = 100 * kMicrosecond;
  for (std::uint64_t seed : {1ull, 9ull}) {
    const RunSignature base = run_gray(1, seed, pacing);
    for (int threads : {1, 4}) {
      const RunSignature prof = run_gray_profiled(threads, seed, pacing);
      EXPECT_EQ(prof.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(prof.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(prof.mfr, base.mfr)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(prof.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

RunSignature run_ecmp(int threads, std::uint64_t seed) {
  net::EcmpScenarioConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  net::EcmpFabricScenario scenario(cfg);
  auto res = scenario.run();

  RunSignature sig;
  sig.events = join(res.events);
  sig.metrics = scenario.loop().telemetry().metrics().snapshot_json();
  sig.mfr = scenario.loop().telemetry().recorder().dump_text(
      scenario.loop().now(), "equivalence");
  sig.stats = link_stats_text(scenario.fabric());
  return sig;
}

TEST(ParallelFabricEquivalence, EcmpScenario) {
  const RunSignature base = run_ecmp(1, 1);
  for (int threads : {2, 4}) {
    const RunSignature par = run_ecmp(threads, 1);
    EXPECT_EQ(par.events, base.events) << "threads " << threads;
    EXPECT_EQ(par.metrics, base.metrics) << "threads " << threads;
    EXPECT_EQ(par.stats, base.stats) << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// INT-enabled equivalence: the probe mesh + sink exports + tomography
// reroute on top of the parallel engine. The signature additionally pins
// the rendered report stream, so report *ordering* (merged across sink
// shards via ShardLane) must match byte-for-byte, not just the counters.
// ---------------------------------------------------------------------------

RunSignature run_int_gray(int threads, std::uint64_t seed,
                          double fault_loss = 1.0) {
  int_tel::IntGrayScenarioConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.fault_loss = fault_loss;
  int_tel::IntGrayFabricScenario scenario(cfg);
  auto res = scenario.run();

  RunSignature sig;
  sig.events = join(res.events);
  std::size_t cursor = 0;
  for (const auto* rep : scenario.int_fabric().collector().poll(cursor)) {
    sig.events += rep->render();
    sig.events += '\n';
  }
  sig.metrics = scenario.loop().telemetry().metrics().snapshot_json();
  sig.mfr = scenario.loop().telemetry().recorder().dump_text(
      scenario.loop().now(), "equivalence");
  sig.stats = link_stats_text(scenario.fabric());
  return sig;
}

TEST(ParallelFabricEquivalence, IntGrayScenario) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    const RunSignature base = run_int_gray(1, seed);
    for (int threads : {2, 4}) {
      const RunSignature par = run_int_gray(threads, seed);
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.mfr, base.mfr) << "seed " << seed << " threads "
                                   << threads;
      EXPECT_EQ(par.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelFabricEquivalence, IntGrayPartialLoss) {
  // Partial loss exercises the seeded per-link drop streams under INT
  // stacks of varying length (probes grow in flight).
  const RunSignature base = run_int_gray(1, 2, 0.35);
  const RunSignature par = run_int_gray(4, 2, 0.35);
  EXPECT_EQ(par.events, base.events);
  EXPECT_EQ(par.metrics, base.metrics);
  EXPECT_EQ(par.stats, base.stats);
}

// ---------------------------------------------------------------------------
// Raw-fabric equivalence: a ring topology driven directly through the
// engine (no agents), with an active FaultInjector schedule covering every
// fault kind. Exercises link-level scheduling, per-direction RNG streams,
// and fault transitions (control events) interleaving with rounds.
// ---------------------------------------------------------------------------

RunSignature run_ring(int threads, std::uint64_t seed) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());

  net::FabricConfig fc;
  fc.base_seed = seed;
  fc.default_link.loss = 0.02;  // ambient loss: every direction draws RNG
  net::Fabric fabric(loop, artifacts.prog, net::Topology::ring(6, 1), fc);

  const Time horizon = 80 * kMicrosecond;

  // Link-local traffic in both directions of every switch-switch link.
  for (int i = 0; i < fabric.topo().num_switches; ++i) {
    const net::NodeId a = i;
    const net::NodeId b = (i + 1) % fabric.topo().num_switches;
    auto make = [&fabric] {
      auto pkt = fabric.factory().make(64);
      fabric.factory().set(pkt, "ipv4.protocol", 253);
      return pkt;
    };
    fabric.start_periodic(a, b, 500, horizon, make);
    fabric.start_periodic(b, a, 700, horizon, make);
  }

  // One fault of every kind, at staggered times on different links.
  net::FaultInjector inj(fabric);
  net::FaultSpec gray;
  gray.kind = net::FaultSpec::Kind::kGrayLoss;
  gray.link = 0;
  gray.at = 10 * kMicrosecond;
  gray.duration = 30 * kMicrosecond;
  gray.loss = 0.5;
  inj.schedule(gray);

  net::FaultSpec down;
  down.kind = net::FaultSpec::Kind::kDown;
  down.link = 1;
  down.direction = 0;
  down.at = 20 * kMicrosecond;
  down.duration = 20 * kMicrosecond;
  inj.schedule(down);

  net::FaultSpec lat;
  lat.kind = net::FaultSpec::Kind::kLatency;
  lat.link = 2;
  lat.at = 15 * kMicrosecond;
  lat.duration = 40 * kMicrosecond;
  lat.extra_latency = 3 * kMicrosecond;
  inj.schedule(lat);

  net::FaultSpec flap;
  flap.kind = net::FaultSpec::Kind::kFlap;
  flap.link = 3;
  flap.at = 5 * kMicrosecond;
  flap.duration = 50 * kMicrosecond;
  flap.flap_period = 4 * kMicrosecond;
  inj.schedule(flap);

  if (threads > 1) {
    net::ParallelFabricEngine engine(fabric, threads);
    engine.run_until(horizon);
    EXPECT_GT(engine.rounds(), 0u);
  } else {
    loop.run_until(horizon);
  }
  fabric.sample_telemetry();

  RunSignature sig;
  sig.events = join(inj.log());
  sig.metrics = loop.telemetry().metrics().snapshot_json();
  sig.mfr = loop.telemetry().recorder().dump_text(loop.now(), "equivalence");
  sig.stats = link_stats_text(fabric);
  return sig;
}

TEST(ParallelFabricEquivalence, RingWithFaultSchedule) {
  for (std::uint64_t seed : {2ull, 11ull}) {
    const RunSignature base = run_ring(1, seed);
    for (int threads : {2, 4, 8}) {
      const RunSignature par = run_ring(threads, seed);
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.mfr, base.mfr) << "seed " << seed << " threads "
                                   << threads;
      EXPECT_EQ(par.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine mechanics.
// ---------------------------------------------------------------------------

TEST(ParallelFabricEngine, LookaheadIsMinPropagationPlusSerialization) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());
  net::FabricConfig fc;
  fc.default_link.propagation = 500;
  net::LinkModel fast = fc.default_link;
  fast.propagation = 120;
  fc.link_overrides[1] = fast;
  net::Fabric fabric(loop, artifacts.prog, net::Topology::ring(4, 0), fc);
  // min over links of (propagation + 1 ns minimum serialization slot).
  EXPECT_EQ(net::ParallelFabricEngine::compute_lookahead(fabric), 121);
}

TEST(ParallelFabricEngine, ClampsThreadsToShardsAndDegeneratesToSequential) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());
  net::Fabric fabric(loop, artifacts.prog, net::Topology::ring(3, 1), {});
  // 16 requested threads on 3 shards must not spawn 15 workers; and with
  // the queue empty, run_until just advances the clock.
  net::ParallelFabricEngine engine(fabric, 16);
  loop.run();  // drain construction-time events, if any
  engine.run_until(loop.now() + 10);
  SUCCEED();
}

TEST(EventLoopOrder, CanonicalKeyIsSchedulingHistoryNotInsertionOrder) {
  // Same-t events: control-scheduled events run in FIFO (seq) order
  // regardless of dst, because they share src = kControlShard.
  sim::EventLoop loop;
  loop.ensure_tags(4);
  std::vector<int> order;
  loop.schedule_for(2, 10, [&] { order.push_back(2); });
  loop.schedule_for(0, 10, [&] { order.push_back(0); });
  loop.schedule_at(10, [&] { order.push_back(-1); });
  loop.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{2, 0, -1}));
}

TEST(EventLoopOrder, ShardScheduledEventsSortAfterControlAtSameInstant) {
  // An event scheduled *from* shard context carries src = shard >= 0 and
  // must sort after control-scheduled (src = -1) events at the same t.
  sim::EventLoop loop;
  loop.ensure_tags(2);
  std::vector<std::string> order;
  // Shard event at t=5 schedules a follow-up at t=10 (src will be 1).
  loop.schedule_for(1, 5, [&] {
    loop.schedule_for(1, 10, [&] { order.push_back("from-shard"); });
  });
  loop.schedule_at(2, [&] {
    loop.schedule_for(1, 10, [&] { order.push_back("from-control"); });
  });
  loop.run_until(20);
  EXPECT_EQ(order,
            (std::vector<std::string>{"from-control", "from-shard"}));
}

// ---------------------------------------------------------------------------
// Seeded-RNG ownership: every link direction owns an independent,
// deterministically seeded drop process. No generator is shared across
// shards, so parallel execution cannot perturb any stream.
// ---------------------------------------------------------------------------

TEST(RngOwnership, FabricAssignsDistinctPerLinkSeeds) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());
  net::FabricConfig fc;
  fc.base_seed = 40;
  net::Fabric fabric(loop, artifacts.prog, net::Topology::leaf_spine(2, 2, 1),
                     {});
  net::Fabric fabric2(loop, artifacts.prog,
                      net::Topology::leaf_spine(2, 2, 1), fc);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < fabric2.num_links(); ++i) {
    EXPECT_EQ(fabric2.link(i).model().seed, 40 + 2 * i) << "link " << i;
    seeds.push_back(fabric2.link(i).model().seed);
  }
  // Default base seed: still distinct, still base + 2i.
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    EXPECT_EQ(fabric.link(i).model().seed,
              fabric.config().base_seed + 2 * i);
  }
}

TEST(RngOwnership, DirectionStreamsAreIndependentAndReplayable) {
  // Drive N lossy transmissions down each direction of a standalone link;
  // the surviving-packet patterns must differ between directions (distinct
  // streams) yet replay byte-identically under the same seed.
  auto survivors = [](std::uint64_t seed) {
    sim::EventLoop loop;
    net::LinkModel model;
    model.loss = 0.4;
    model.seed = seed;
    std::vector<std::vector<Time>> delivered(2);
    net::Link link(
        loop, "l", {0, 0}, {1, 0}, model,
        [&](sim::Packet pkt, net::NodeId node, int) {
          delivered[node == 1 ? 0 : 1].push_back(pkt.origin_time());
        });
    for (int i = 0; i < 64; ++i) {
      loop.schedule_at(i * 1000, [&link, &loop, i] {
        sim::Packet pkt(0, 64);
        pkt.set_origin_time(loop.now());
        link.transmit(0, pkt);
        sim::Packet back(0, 64);
        back.set_origin_time(loop.now());
        link.transmit(1, back);
      });
    }
    loop.run();
    return delivered;
  };

  auto a = survivors(9);
  auto b = survivors(9);
  auto c = survivors(10);
  EXPECT_EQ(a[0], b[0]);  // same seed => same a->b survivors
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[0], a[1]);  // directions draw from independent streams
  EXPECT_NE(a[0], c[0]);  // different seed => different pattern
}

// ---------------------------------------------------------------------------
// Clos equivalence: a 3-tier Clos driven by the aggregated flow-class
// workload, with structural ECMP routes and a fault schedule. Covers the
// third topology of the seeds x {leaf_spine, ring, clos} x threads matrix,
// plus the multi-switch shard grouping (12 switches, uneven load) and the
// flow-class delivery ring's cross-shard determinism argument.
// ---------------------------------------------------------------------------

RunSignature run_clos(int threads, std::uint64_t seed, int groups = 0) {
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());

  const net::ClosSpec spec{2, 2, 2, 4, 1};
  net::FabricConfig fc;
  fc.base_seed = seed;
  fc.default_link.propagation = 1000;
  fc.default_link.loss = 0.01;  // ambient loss: every direction draws RNG
  fc.switch_cfg.num_ports = 8;
  net::Fabric fabric(loop, artifacts.prog, net::Topology::clos(spec), fc);

  // Structural ECMP routes for every host on every switch. The compiled
  // program's malleable `route` carries the isolation pass's vv column; no
  // agent runs here, so entries and packets stay on version 0.
  for (net::NodeId sw = 0; sw < fabric.num_switches(); ++sw) {
    auto& route = fabric.switch_at(sw).table("route");
    for (int g = 0; g < spec.num_leaves(); ++g) {
      const std::uint32_t addr = spec.host_addr(g, 0);
      const int port = spec.next_hop_port(sw, addr);
      if (port < 0) continue;
      p4::EntrySpec es;
      es.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
      es.key.push_back(p4::MatchValue{0, ~std::uint64_t{0}});
      es.action = "set_egress";
      es.action_args = {static_cast<std::uint64_t>(port)};
      route.add_entry(es);
    }
  }

  const Time horizon = 100 * kMicrosecond;

  // Aggregated flows: every leaf's host talks to the diagonally opposite
  // one, epochs sized to the lookahead contract.
  workload::FlowClassesConfig wc;
  wc.total_flows = 10'000;
  wc.epoch = 10 * kMicrosecond;
  wc.max_samples_per_epoch = 16;
  std::vector<workload::FlowClasses::Endpoint> eps;
  for (int g = 0; g < spec.num_leaves(); ++g) {
    eps.push_back({spec.host_addr(g, 0),
                   spec.host_addr(spec.num_leaves() - 1 - g, 0)});
  }
  workload::FlowClasses flows(fabric, wc, std::move(eps));

  // A gray fault on one leaf uplink mid-run: control events (fault
  // transitions) interleaving with flow-class rounds.
  net::FaultInjector inj(fabric);
  net::FaultSpec gray;
  gray.kind = net::FaultSpec::Kind::kGrayLoss;
  gray.link = 0;  // first leaf-agg link
  gray.at = 30 * kMicrosecond;
  gray.duration = 40 * kMicrosecond;
  gray.loss = 0.5;
  inj.schedule(gray);

  if (threads > 1) {
    net::ParallelFabricEngine::Options opt;
    opt.groups = groups;
    net::ParallelFabricEngine engine(fabric, threads, opt);
    flows.start(horizon, engine.lookahead());
    engine.run_until(horizon);
  } else {
    flows.start(horizon);
    loop.run_until(horizon);
  }
  fabric.sample_telemetry();

  RunSignature sig;
  sig.events = join(inj.log()) + "\nsent=" +
               std::to_string(flows.samples_sent()) +
               " delivered=" + std::to_string(flows.samples_delivered());
  sig.metrics = loop.telemetry().metrics().snapshot_json();
  sig.mfr = loop.telemetry().recorder().dump_text(loop.now(), "equivalence");
  sig.stats = link_stats_text(fabric);
  return sig;
}

TEST(ParallelFabricEquivalence, ClosWithFlowClasses) {
  for (std::uint64_t seed : {3ull, 9ull}) {
    const RunSignature base = run_clos(1, seed);
    for (int threads : {2, 4, 8}) {
      const RunSignature par = run_clos(threads, seed);
      EXPECT_EQ(par.events, base.events)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.metrics, base.metrics)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.mfr, base.mfr) << "seed " << seed << " threads "
                                   << threads;
      EXPECT_EQ(par.stats, base.stats)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelFabricEngine, ShardGroupingIsExecutionPlacementOnly) {
  // Grouping decides which worker runs a switch's events, never their
  // canonical keys: any group count — one group owning ALL 12 switches,
  // a prime count that splits pods unevenly, or one switch per group —
  // must match the sequential run byte-for-byte.
  const RunSignature base = run_clos(1, 4);
  for (const int groups : {1, 5, 13}) {
    const RunSignature par = run_clos(2, 4, groups);
    EXPECT_EQ(par.events, base.events) << "groups " << groups;
    EXPECT_EQ(par.metrics, base.metrics) << "groups " << groups;
    EXPECT_EQ(par.mfr, base.mfr) << "groups " << groups;
    EXPECT_EQ(par.stats, base.stats) << "groups " << groups;
  }
}

}  // namespace
}  // namespace mantis
