// Tests for the Mantis compiler passes: value/field transformations, load
// strategy, init-table packing/splitting, measurement packing, isolation
// (vv columns, register duplication), and the emitted artifacts.
#include <gtest/gtest.h>

#include "compile/compiler.hpp"
#include "compile/packing.hpp"
#include "p4/alloc/stage_alloc.hpp"

namespace mantis::compile {
namespace {

const char* kHeader = R"(
header_type h_t { fields { a : 32; b : 32; c : 16; d : 16; e : 8; } }
header h_t h;
)";

Artifacts compile_src(const std::string& body, Options opts = {}) {
  return compile_source(std::string(kHeader) + body, opts);
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

TEST(Packing, FirstFitDecreasingIsCompact) {
  std::vector<PackItem> items = {{"a", 20}, {"b", 10}, {"c", 30}, {"d", 2}};
  const auto bins = first_fit_decreasing(items, 32);
  // FFD: 30+2 | 20+10 -> two bins.
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].used, 32u);
  EXPECT_EQ(bins[1].used, 30u);
}

TEST(Packing, OversizedItemsGetDedicatedBins) {
  std::vector<PackItem> items = {{"big", 48}, {"small", 8}};
  const auto bins = first_fit_decreasing(items, 32);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].used, 48u);
}

TEST(Packing, PinnedItemsSeedFirstBin) {
  std::vector<PackItem> items = {{"x", 30}, {"vv", 1}, {"mv", 1}};
  const auto bins = first_fit_decreasing_pinned(items, 32, {1, 2});
  ASSERT_GE(bins.size(), 1u);
  EXPECT_EQ(bins[0].items[0], 1u);
  EXPECT_EQ(bins[0].items[1], 2u);
  // x (30 bits) still fits alongside the two pinned bits.
  EXPECT_EQ(bins.size(), 1u);
}

// ---------------------------------------------------------------------------
// Malleable values (paper Fig 4)
// ---------------------------------------------------------------------------

TEST(ValuePass, RewritesUsesAndRegistersInitParam) {
  const auto art = compile_src(R"(
malleable value knob { width : 16; init : 5; }
action bump() { add(h.c, h.c, ${knob}); }
table t { actions { bump; } default_action : bump; size : 1; }
control ingress { apply(t); }
control egress { }
)");
  // The use became a concrete read of p4r_meta_.knob.
  const auto* act = art.prog.find_action("bump");
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(act->body[0].args[2].kind, p4::OperandKind::kField);
  EXPECT_EQ(art.prog.fields.full_name(act->body[0].args[2].field),
            "p4r_meta_.knob");
  // Scalar slot with the right init.
  const auto& slot = art.bindings.scalars.at("knob");
  EXPECT_EQ(slot.init_value, 5u);
  EXPECT_EQ(slot.width, 16);
  EXPECT_FALSE(slot.is_selector);
  // Master init table exists and its default args include the init value.
  ASSERT_FALSE(art.bindings.init_tables.empty());
  const auto* init = art.prog.find_table("p4r_init_");
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->default_action_args[slot.param], 5u);
  // Init is applied first in ingress.
  const auto order = art.prog.tables_in(art.prog.ingress);
  EXPECT_EQ(order.front(), "p4r_init_");
}

TEST(InitPass, SplitsWhenExceedingActionBudget) {
  Options opts;
  opts.rmt.max_action_bits = 40;
  const auto art = compile_src(R"(
malleable value k1 { width : 32; init : 1; }
malleable value k2 { width : 32; init : 2; }
malleable value k3 { width : 32; init : 3; }
action bump() { add(h.a, ${k1}, ${k2}); add(h.b, h.b, ${k3}); }
table t { actions { bump; } default_action : bump; size : 1; }
control ingress { apply(t); }
control egress { }
)",
                               opts);
  ASSERT_GE(art.bindings.init_tables.size(), 2u);
  EXPECT_TRUE(art.bindings.init_tables[0].master);
  // vv/mv pinned to the master.
  const auto& mp = art.bindings.init_tables[0].params;
  EXPECT_NE(std::find(mp.begin(), mp.end(), "vv_"), mp.end());
  EXPECT_NE(std::find(mp.begin(), mp.end(), "mv_"), mp.end());
  // Overflow init tables read vv and hold two entries.
  for (std::size_t k = 1; k < art.bindings.init_tables.size(); ++k) {
    const auto* tbl = art.prog.find_table(art.bindings.init_tables[k].table);
    ASSERT_NE(tbl, nullptr);
    ASSERT_EQ(tbl->reads.size(), 1u);
    EXPECT_EQ(tbl->reads[0].field, art.bindings.vv_field);
    EXPECT_EQ(tbl->size, 2u);
  }
}

// ---------------------------------------------------------------------------
// Malleable fields (paper Figs 5-6)
// ---------------------------------------------------------------------------

TEST(FieldPass, WriteSideSpecialization) {
  const auto art = compile_src(R"(
malleable field wv { width : 32; init : h.a; alts { h.a, h.b } }
action store(x) { modify_field(${wv}, x); }
table tw { reads { h.c : ternary; } actions { store; } size : 64; }
control ingress { apply(tw); }
control egress { }
)");
  const auto& info = art.bindings.table("tw");
  // One specialized action per alternative.
  ASSERT_EQ(info.actions.size(), 1u);
  EXPECT_EQ(info.actions[0].dims, (std::vector<std::string>{"wv"}));
  ASSERT_EQ(info.actions[0].specialized.size(), 2u);
  // The specialized bodies write the concrete alternatives.
  const auto* a0 = art.prog.find_action(info.actions[0].specialized[0]);
  const auto* a1 = art.prog.find_action(info.actions[0].specialized[1]);
  ASSERT_NE(a0, nullptr);
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(art.prog.fields.full_name(a0->body[0].args[0].field), "h.a");
  EXPECT_EQ(art.prog.fields.full_name(a1->body[0].args[0].field), "h.b");
  // Table gained a ternary selector column and doubled its size budget.
  EXPECT_EQ(info.selector_cols.size(), 1u);
  EXPECT_EQ(info.expansion_product, 2u);
  EXPECT_EQ(art.prog.find_table("tw")->size, 128u);
  // The original action is gone from the program.
  EXPECT_EQ(art.prog.find_action("store"), nullptr);
}

TEST(FieldPass, ReadSideMatchExpansion) {
  const auto art = compile_src(R"(
malleable field rv { width : 32; init : h.a; alts { h.a, h.b } }
action use() { add(h.c, h.d, ${rv}); }
table tr {
  reads { h.e : exact; ${rv} : exact; }
  actions { use; }
  size : 64;
}
control ingress { apply(tr); }
control egress { }
)");
  const auto& info = art.bindings.table("tr");
  ASSERT_EQ(info.mbl_reads.size(), 1u);
  const auto& mri = info.mbl_reads[0];
  EXPECT_EQ(mri.original_index, 1u);
  ASSERT_EQ(mri.alt_cols.size(), 2u);
  // Exact malleable reads become ternary alternative columns (paper Fig 6).
  const auto* tbl = art.prog.find_table("tr");
  EXPECT_EQ(tbl->reads[mri.alt_cols[0]].kind, p4::MatchKind::kTernary);
  EXPECT_EQ(tbl->reads[mri.alt_cols[1]].kind, p4::MatchKind::kTernary);
  // Concrete reads keep their position mapping and kind.
  ASSERT_EQ(info.col_of_original.size(), 2u);
  EXPECT_GE(info.col_of_original[0], 0);
  EXPECT_EQ(info.col_of_original[1], -1);
  EXPECT_EQ(tbl->reads[static_cast<std::size_t>(info.col_of_original[0])].kind,
            p4::MatchKind::kExact);
  // Selector column is shared between match expansion and action dims.
  EXPECT_EQ(info.selector_cols.size(), 1u);
  EXPECT_EQ(mri.selector_col, info.selector_cols.at("rv"));
  EXPECT_EQ(info.expansion_product, 2u);
}

TEST(FieldPass, CompoundTwoFieldsInOneAction) {
  const auto art = compile_src(R"(
malleable field f1 { width : 32; init : h.a; alts { h.a, h.b } }
malleable field f2 { width : 16; init : h.c; alts { h.c, h.d } }
action mix() { modify_field(${f1}, h.b); add(h.d, h.c, 1); modify_field(${f2}, h.e); }
table tm { reads { h.e : ternary; } actions { mix; } size : 8; }
control ingress { apply(tm); }
control egress { }
)");
  const auto& info = art.bindings.table("tm");
  ASSERT_EQ(info.actions.size(), 1u);
  EXPECT_EQ(info.actions[0].dims.size(), 2u);
  EXPECT_EQ(info.actions[0].specialized.size(), 4u);  // 2 x 2 permutations
  EXPECT_EQ(info.expansion_product, 4u);
  EXPECT_EQ(info.selector_cols.size(), 2u);
  EXPECT_EQ(art.prog.find_table("tm")->size, 32u);
}

TEST(FieldPass, LoadStrategyForFieldLists) {
  const auto art = compile_src(R"(
malleable field hin { width : 32; init : h.a; alts { h.a, h.b } }
field_list fl { ${hin}; h.c; }
field_list_calculation hc { input { fl; } algorithm : crc32; output_width : 8; }
action pick() { modify_field_with_hash_based_offset(standard_metadata.egress_spec, 0, hc, 4); }
table tp { actions { pick; } default_action : pick; size : 1; }
control ingress { apply(tp); }
control egress { }
)");
  // A load table exists, applied after init, with one static entry per alt.
  const auto* load = art.prog.find_table("p4r_load_hin_");
  ASSERT_NE(load, nullptr);
  const auto order = art.prog.tables_in(art.prog.ingress);
  const auto pos_init = std::find(order.begin(), order.end(), "p4r_init_");
  const auto pos_load = std::find(order.begin(), order.end(), "p4r_load_hin_");
  const auto pos_user = std::find(order.begin(), order.end(), "tp");
  EXPECT_LT(pos_init, pos_load);
  EXPECT_LT(pos_load, pos_user);
  EXPECT_EQ(art.bindings.static_entries.size(), 2u);
  // The field_list now references the loaded value field, not the malleable.
  const auto* fl = art.prog.find_field_list("fl");
  ASSERT_NE(fl, nullptr);
  EXPECT_FALSE(fl->fields[0].is_malleable());
  EXPECT_EQ(art.prog.fields.full_name(fl->fields[0].field), "p4r_meta_.hin_val_");
  // No action specialization happened for a load-strategy field.
  EXPECT_TRUE(art.bindings.table("tp").actions[0].dims.empty());
}

TEST(FieldPass, WritingLoadedFieldRejected) {
  EXPECT_THROW(compile_src(R"(
malleable field hin { width : 32; init : h.a; alts { h.a, h.b } }
field_list fl { ${hin}; }
field_list_calculation hc { input { fl; } algorithm : crc32; output_width : 8; }
action bad() { modify_field(${hin}, 1); }
table tb { actions { bad; } default_action : bad; size : 1; }
control ingress { apply(tb); }
control egress { }
)"),
               UserError);
}

TEST(FieldPass, SpecializedDefaultActionRejected) {
  EXPECT_THROW(compile_src(R"(
malleable field f { width : 32; init : h.a; alts { h.a, h.b } }
action w() { modify_field(${f}, 1); }
table t { reads { h.c : exact; } actions { w; } default_action : w; size : 4; }
control ingress { apply(t); }
control egress { }
)"),
               UserError);
}

// ---------------------------------------------------------------------------
// Isolation (paper §5)
// ---------------------------------------------------------------------------

TEST(IsolationPass, MalleableTableGainsVvColumnAndDoubleSize) {
  const auto art = compile_src(R"(
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt { reads { h.a : exact; } actions { fwd; } size : 10; }
control ingress { apply(mt); }
control egress { }
)");
  const auto& info = art.bindings.table("mt");
  EXPECT_TRUE(info.malleable);
  ASSERT_GE(info.vv_col, 0);
  const auto* tbl = art.prog.find_table("mt");
  EXPECT_EQ(tbl->reads[static_cast<std::size_t>(info.vv_col)].field,
            art.bindings.vv_field);
  EXPECT_EQ(tbl->size, 20u);
}

TEST(IsolationPass, RegisterDuplicationWithTimestamps) {
  const auto art = compile_src(R"(
register cnt { width : 32; instance_count : 4; }
header_type m_t { fields { s : 32; } }
metadata m_t m;
action tally() {
  register_read(m.s, cnt, 1);
  add_to_field(m.s, 1);
  register_write(cnt, 1, m.s);
}
table t { actions { tally; } default_action : tally; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(reg cnt[0:3]) { }
)");
  // The data plane reads cnt, so the original stays; dup + ts appear.
  EXPECT_NE(art.prog.find_register("cnt"), nullptr);
  const auto* dup = art.prog.find_register("cnt__dup_");
  const auto* ts = art.prog.find_register("cnt__ts_");
  ASSERT_NE(dup, nullptr);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(dup->instance_count, 8u);
  EXPECT_EQ(ts->instance_count, 8u);
  // The tally action now mirrors writes into the duplicate.
  const auto* act = art.prog.find_action("tally");
  ASSERT_NE(act, nullptr);
  int dup_writes = 0, ts_writes = 0;
  for (const auto& ins : act->body) {
    if (ins.op == p4::PrimOp::kRegisterWrite && ins.object == "cnt__dup_") ++dup_writes;
    if (ins.op == p4::PrimOp::kRegisterWrite && ins.object == "cnt__ts_") ++ts_writes;
  }
  EXPECT_EQ(dup_writes, 1);
  EXPECT_EQ(ts_writes, 1);
  ASSERT_EQ(art.bindings.reactions.size(), 1u);
  EXPECT_FALSE(art.bindings.reactions[0].regs[0].original_eliminated);
}

TEST(IsolationPass, WriteOnlyRegisterEliminated) {
  const auto art = compile_src(R"(
register wonly { width : 32; instance_count : 2; }
action stamp() { register_write(wonly, 0, h.a); }
table t { actions { stamp; } default_action : stamp; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(reg wonly[0:1]) { }
)");
  EXPECT_EQ(art.prog.find_register("wonly"), nullptr);
  EXPECT_NE(art.prog.find_register("wonly__dup_"), nullptr);
  EXPECT_TRUE(art.bindings.reactions[0].regs[0].original_eliminated);
  // And the original write instruction is gone.
  const auto* act = art.prog.find_action("stamp");
  for (const auto& ins : act->body) {
    EXPECT_FALSE(ins.op == p4::PrimOp::kRegisterWrite && ins.object == "wonly");
  }
}

// ---------------------------------------------------------------------------
// Measurement (paper §4.2)
// ---------------------------------------------------------------------------

TEST(MeasurePass, PacksFieldsIntoWordsPerReaction) {
  const auto art = compile_src(R"(
control ingress { }
control egress { }
reaction rx(ing h.c, ing h.d, ing h.e, egr h.a) { }
)");
  const auto* rinfo = art.bindings.find_reaction("rx");
  ASSERT_NE(rinfo, nullptr);
  // c(16) + d(16) share one 32-bit word; e(8) in the same or next; a(32) in
  // its own egress word.
  ASSERT_EQ(rinfo->fields.size(), 4u);
  std::set<std::string> regs;
  for (const auto& f : rinfo->fields) regs.insert(f.reg);
  // 16+16 fills a word; 8 spills to a second ingress word; egress separate.
  EXPECT_EQ(regs.size(), 3u);
  for (const auto& name : rinfo->measure_regs) {
    const auto* reg = art.prog.find_register(name);
    ASSERT_NE(reg, nullptr);
    EXPECT_EQ(reg->instance_count, 2u);  // mv-gated working/checkpoint pair
  }
  // Measurement tables exist at the end of each pipeline.
  EXPECT_EQ(art.prog.tables_in(art.prog.ingress).back(), "p4r_measure_ing_");
  EXPECT_EQ(art.prog.tables_in(art.prog.egress).back(), "p4r_measure_egr_");
}

TEST(MeasurePass, OversizedFieldGetsWideRegister) {
  const auto art = compile_src(R"(
control ingress { }
control egress { }
reaction rx(ing standard_metadata.ingress_global_timestamp) { }
)");
  const auto* rinfo = art.bindings.find_reaction("rx");
  ASSERT_EQ(rinfo->fields.size(), 1u);
  const auto* reg = art.prog.find_register(rinfo->fields[0].reg);
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->width, 64);  // 48-bit timestamp cannot share a 32-bit word
}

TEST(MeasurePass, SeparatePackingPerReaction) {
  const auto art = compile_src(R"(
control ingress { }
control egress { }
reaction r1(ing h.c) { }
reaction r2(ing h.d) { }
)");
  const auto* r1 = art.bindings.find_reaction("r1");
  const auto* r2 = art.bindings.find_reaction("r2");
  // Each reaction polls only its own register (freshness optimization).
  ASSERT_EQ(r1->measure_regs.size(), 1u);
  ASSERT_EQ(r2->measure_regs.size(), 1u);
  EXPECT_NE(r1->measure_regs[0], r2->measure_regs[0]);
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

TEST(Artifacts, EmittedP4IsNonEmptyAndMentionsGeneratedObjects) {
  const auto art = compile_src(R"(
malleable value k { width : 8; init : 1; }
action bump() { add(h.c, h.c, ${k}); }
table t { actions { bump; } default_action : bump; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(ing h.a) { ${k} = 2; }
)");
  EXPECT_NE(art.p4_source.find("p4r_init_"), std::string::npos);
  EXPECT_NE(art.p4_source.find("p4r_meta_"), std::string::npos);
  EXPECT_NE(art.p4_source.find("p4r_meas_rx_ing_0_"), std::string::npos);
  EXPECT_NE(art.c_source.find("p4r_reaction_rx_"), std::string::npos);
  EXPECT_NE(art.c_source.find("p4r_set_k_"), std::string::npos);
  EXPECT_EQ(art.reactions.size(), 1u);
  // The transformed program revalidates and has no leftover malleables.
  EXPECT_NO_THROW(art.prog.validate());
}

TEST(Artifacts, StageAllocationSucceedsOnCompiledPrograms) {
  const auto art = compile_src(R"(
malleable field f { width : 32; init : h.a; alts { h.a, h.b } }
action use() { add(h.c, h.d, ${f}); }
table t { reads { ${f} : exact; } actions { use; } size : 32; }
control ingress { apply(t); }
control egress { }
reaction rx(ing h.a) { }
)");
  const auto stages = p4::allocate_program_stages(art.prog);
  EXPECT_GE(stages.ingress, 2);  // init must precede dependent tables
  EXPECT_LE(stages.total(), 24);
}

}  // namespace
}  // namespace mantis::compile

namespace mantis::compile {
namespace {

TEST(FieldPass, MaskQualifierOnMalleableRead) {
  const auto art = compile_src(R"(
malleable field mr { width : 32; init : h.a; alts { h.a, h.b } }
action use() { add(h.c, h.d, ${mr}); }
table tm2 {
  reads { ${mr} mask 0xff : exact; }
  actions { use; }
  size : 8;
}
control ingress { apply(tm2); }
control egress { }
)");
  const auto& info = art.bindings.table("tm2");
  ASSERT_EQ(info.mbl_reads.size(), 1u);
  EXPECT_EQ(info.mbl_reads[0].premask, 0xffu);
}

TEST(FieldPass, MaskQualifierOnConcreteReadRejected) {
  EXPECT_THROW(compile_src(R"(
action a2() { }
table t2 { reads { h.a mask 0xff : exact; } actions { a2; } size : 4; }
control ingress { apply(t2); }
control egress { }
)"),
               UserError);
}

}  // namespace
}  // namespace mantis::compile
