#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mantis {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const {
  expects(n_ > 0, "OnlineStats::mean: no samples");
  return mean_;
}

double OnlineStats::variance() const {
  expects(n_ > 1, "OnlineStats::variance: need >= 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  expects(n_ > 0, "OnlineStats::min: no samples");
  return min_;
}

double OnlineStats::max() const {
  expects(n_ > 0, "OnlineStats::max: no samples");
  return max_;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  expects(!values_.empty(), "Samples::mean: no samples");
  double total = 0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Samples::percentile(double q) const {
  expects(!values_.empty(), "Samples::percentile: no samples");
  expects(q >= 0.0 && q <= 100.0, "Samples::percentile: q out of [0,100]");
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double pos = q / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  expects(q > 0.0 && q < 1.0, "P2Quantile: q out of (0,1)");
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increment_[0] = 0;
  increment_[1] = q / 2;
  increment_[2] = q;
  increment_[3] = (1 + q) / 2;
  increment_[4] = 1;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
    }
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++n_;
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
        (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      const double sgn = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the new height.
      const double hp =
          heights_[i] +
          sgn / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + sgn) * (heights_[i + 1] - heights_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - sgn) * (heights_[i] - heights_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Parabolic step would violate monotonicity: fall back to linear.
        const int j = i + static_cast<int>(sgn);
        heights_[i] += sgn * (heights_[j] - heights_[i]) /
                       (pos_[j] - pos_[i]);
      }
      pos_[i] += sgn;
    }
  }
}

double P2Quantile::value() const {
  expects(n_ > 0, "P2Quantile::value: no samples");
  if (n_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    double buf[5];
    std::copy(heights_, heights_ + n_, buf);
    std::sort(buf, buf + n_);
    const double pos = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, n_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return buf[lo] * (1.0 - frac) + buf[hi] * frac;
  }
  return heights_[2];
}

double median_of(std::vector<double> values) {
  expects(!values.empty(), "median_of: no samples");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower =
        *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

double median_absolute_deviation(const std::vector<double>& values) {
  const double med = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - med));
  return median_of(std::move(deviations));
}

}  // namespace mantis
