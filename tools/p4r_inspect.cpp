// p4r_inspect: query flight-recorder .mfr dumps and live stack snapshots.
//
// Usage:
//   p4r_inspect show <dump.mfr>
//   p4r_inspect diff <dump.mfr> <t1> <t2>      # events in [t1,t2] virtual ns
//   p4r_inspect reaction <dump.mfr> <id>       # one reaction's provenance
//   p4r_inspect int <dump.mfr>                 # INT sink reports, per hop
//   p4r_inspect channel <dump.mfr>             # driver-channel utilization
//   p4r_inspect prof <report.json>             # hot-path profile breakdown
//   p4r_inspect export --chrome <dump.mfr> [-o out.json]
//   p4r_inspect snapshot <prog.p4r> [--iters N] [-o out.mfr]
//
// `show`/`diff`/`reaction` render text views over a dump produced by an
// anomaly trigger (check divergence, fabric fault, SLO breach — see
// docs/TELEMETRY.md). `export --chrome` converts a dump to Chrome trace JSON.
// `snapshot` builds the full stack from P4R source, runs the prologue plus N
// dialogue iterations, and dumps live state (registers, table entries, queue
// depths) — byte-identical across runs of the same input.
//
// Exit status: 0 on success, 1 on I/O or parse failure, 2 on usage errors.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "agent/agent.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "int/collector.hpp"
#include "sim/switch.hpp"
#include "telemetry/inspect.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s show <dump.mfr>\n"
               "       %s diff <dump.mfr> <t1> <t2>\n"
               "       %s reaction <dump.mfr> <id>\n"
               "       %s int <dump.mfr>\n"
               "       %s channel <dump.mfr>\n"
               "       %s prof <report.json>\n"
               "       %s export --chrome <dump.mfr> [-o out.json]\n"
               "       %s snapshot <prog.p4r> [--iters N] [-o out.mfr]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw mantis::UserError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void emit(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    mantis::telemetry::write_text_file(out_path, text);
    std::fprintf(stderr, "written to %s\n", out_path.c_str());
  }
}

/// Builds the full stack from P4R source, runs prologue + `iters` dialogue
/// iterations, and returns the flight-recorder dump of the final state.
std::string live_snapshot(const std::string& source, std::uint64_t iters) {
  using namespace mantis;
  const auto artifacts = compile::compile_source(source);
  sim::EventLoop loop;
  sim::Switch sw(loop, artifacts.prog);
  driver::Driver drv(sw);
  agent::Agent agent(drv, artifacts);
  agent.run_prologue();
  for (std::uint64_t i = 0; i < iters; ++i) agent.dialogue_iteration();
  loop.run();
  return loop.telemetry().recorder().dump_text(
      loop.now(), "snapshot iters=" + std::to_string(iters));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mantis;
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];

  try {
    if (cmd == "show") {
      const auto dump = telemetry::parse_mfr(slurp(argv[2]));
      std::fputs(telemetry::mfr_show_text(dump).c_str(), stdout);
      return 0;
    }
    if (cmd == "diff") {
      if (argc < 5) return usage(argv[0]);
      const auto dump = telemetry::parse_mfr(slurp(argv[2]));
      const Time t1 = std::strtoll(argv[3], nullptr, 0);
      const Time t2 = std::strtoll(argv[4], nullptr, 0);
      std::fputs(telemetry::mfr_diff_text(dump, t1, t2).c_str(), stdout);
      return 0;
    }
    if (cmd == "reaction") {
      if (argc < 4) return usage(argv[0]);
      const auto dump = telemetry::parse_mfr(slurp(argv[2]));
      const std::uint64_t id = std::strtoull(argv[3], nullptr, 0);
      std::fputs(telemetry::mfr_reaction_text(dump, id).c_str(), stdout);
      return 0;
    }
    if (cmd == "int") {
      const auto dump = telemetry::parse_mfr(slurp(argv[2]));
      std::fputs(telemetry::mfr_int_text(dump).c_str(), stdout);
      return 0;
    }
    if (cmd == "channel") {
      const auto dump = telemetry::parse_mfr(slurp(argv[2]));
      std::fputs(telemetry::mfr_channel_text(dump).c_str(), stdout);
      return 0;
    }
    if (cmd == "prof") {
      // Accepts a standalone ProfileReport JSON (example --prof / bench
      // --prof output) or a full bench report embedding a "prof" section.
      std::fputs(telemetry::prof_report_text(slurp(argv[2])).c_str(), stdout);
      return 0;
    }
    if (cmd == "export") {
      std::string in_path, out_path;
      bool chrome = false;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--chrome") == 0) {
          chrome = true;
        } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else {
          in_path = argv[i];
        }
      }
      if (!chrome || in_path.empty()) return usage(argv[0]);
      const auto dump = telemetry::parse_mfr(slurp(in_path));
      emit(out_path, telemetry::mfr_chrome_json(dump));
      return 0;
    }
    if (cmd == "snapshot") {
      std::string src_path, out_path;
      std::uint64_t iters = 3;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
          iters = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else {
          src_path = argv[i];
        }
      }
      if (src_path.empty()) return usage(argv[0]);
      emit(out_path, live_snapshot(slurp(src_path), iters));
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "p4r_inspect: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
