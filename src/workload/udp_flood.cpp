#include "workload/udp_flood.hpp"

#include <algorithm>

namespace mantis::workload {

UdpFloodSource::UdpFloodSource(sim::Switch& sw, UdpFloodConfig cfg)
    : sw_(&sw), cfg_(cfg) {
  const auto& prog = sw.program();
  f_src_ = prog.fields.find("ipv4.srcAddr");
  f_dst_ = prog.fields.find("ipv4.dstAddr");
  f_proto_ = prog.fields.find("ipv4.protocol");
  expects(f_src_ != p4::kInvalidField, "UdpFloodSource: needs ipv4.srcAddr");
}

void UdpFloodSource::start(Time until) {
  const Time now = sw_->loop().now();
  const Time at = std::max(now, cfg_.start_at);
  sw_->loop().schedule_at(at, [this, until] { emit(until); });
}

void UdpFloodSource::emit(Time until) {
  if (stopped_ || sw_->loop().now() > until) return;
  if (first_packet_at_ < 0) first_packet_at_ = sw_->loop().now();
  auto pkt = sw_->factory().make(cfg_.pkt_bytes);
  const auto& prog = sw_->program();
  pkt.set(f_src_, cfg_.src_ip, prog.fields.width(f_src_));
  if (f_dst_ != p4::kInvalidField) {
    pkt.set(f_dst_, cfg_.dst_ip, prog.fields.width(f_dst_));
  }
  if (f_proto_ != p4::kInvalidField) {
    pkt.set(f_proto_, 17, prog.fields.width(f_proto_));
  }
  sw_->inject(std::move(pkt), cfg_.in_port);
  ++sent_;
  const double bytes_per_ns = cfg_.rate_gbps / 8.0;
  const auto gap = static_cast<Duration>(
      std::max(1.0, static_cast<double>(cfg_.pkt_bytes) / bytes_per_ns));
  sw_->loop().schedule_in(gap, [this, until] { emit(until); });
}

}  // namespace mantis::workload
