// JSON emitter for compiled programs, in the spirit of p4c's bmv2 JSON
// artifact: a machine-readable description of the transformed data plane
// (header types, instances, actions, tables, registers, control flow) that
// external tooling — visualizers, rule checkers, other simulators — can
// consume without linking this library.
#pragma once

#include <string>

#include "p4/ir.hpp"

namespace mantis::p4 {

/// Serializes the program. Deterministic output (declaration order), 2-space
/// indentation, UTF-8; numbers are decimal.
std::string emit_json(const Program& prog);

}  // namespace mantis::p4
