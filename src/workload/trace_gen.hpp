// Synthetic ISP-backbone trace generator (substitute for the CAIDA trace of
// paper §8.3.1). Flow sizes follow a Zipf distribution fitted to the paper's
// stated chunk statistics (~8.9M packets over ~370K flows per 20s block, a
// heavy-tailed mix of elephants and mice); packet arrivals are Poisson.
// DESIGN.md documents why this preserves the Fig 14 mechanism (sampling
// error vs. collision error scale with the flow-size distribution).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace mantis::workload {

struct TraceConfig {
  std::size_t num_flows = 37'000;     ///< 1/10 of the paper's per-chunk flows
  std::size_t num_packets = 890'000;  ///< 1/10 of the paper's per-chunk packets
  double zipf_skew = 1.05;            ///< heavy-tail exponent
  double duration_s = 2.0;            ///< chunk length (scaled like the counts)
  std::uint32_t min_pkt_bytes = 64;
  std::uint32_t max_pkt_bytes = 1500;
  std::uint64_t seed = 1;
};

struct TracePacket {
  Time t = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;
  std::uint32_t bytes = 0;
};

struct Trace {
  std::vector<TracePacket> packets;  ///< sorted by time
  /// Ground truth: total bytes per source (the per-sender statistic the DoS
  /// use case estimates).
  std::map<std::uint32_t, std::uint64_t> bytes_per_src;
  std::map<std::uint32_t, std::uint64_t> packets_per_src;
};

/// Generates a trace. Sources are synthetic addresses 10.0.0.0 + flow rank,
/// so rank 1 (the top talker) is the biggest flow.
Trace generate_trace(const TraceConfig& cfg);

}  // namespace mantis::workload
