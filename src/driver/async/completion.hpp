// Typed completions for the asynchronous driver runtime: one record per
// batch, reaped strictly in submit order, carrying per-op status plus the
// op-kind-specific payloads (entry handles for adds, values for reads).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/async/batch_builder.hpp"
#include "util/time.hpp"

namespace mantis::driver {

using BatchId = std::uint64_t;

/// Outcome of one op inside a completed batch, in builder order.
struct OpResult {
  AsyncOp::Kind kind = AsyncOp::Kind::kAdd;
  bool ok = true;
  std::string error;            ///< empty when ok
  sim::EntryHandle handle = 0;  ///< kAdd: the installed entry's handle
  std::uint64_t value = 0;      ///< kRegRead: the cell's value at completion
};

/// One reaped batch. `ok` is the conjunction of the per-op statuses; in
/// batched mode a mid-batch failure aborts the whole transfer (no op
/// applies) so callers never see a half-applied batch.
struct BatchCompletion {
  BatchId id = 0;
  std::uint64_t reaction_id = 0;  ///< provenance stamp captured at submit
  bool ok = true;
  Time submitted = 0;   ///< submit() call instant
  Time prep_start = 0;  ///< driver-thread descriptor prep began
  Time dma_start = 0;   ///< transfer entered the channel
  Time completed = 0;   ///< completion instant (effects applied here)
  std::vector<OpResult> results;  ///< one per op, builder order
};

}  // namespace mantis::driver
