#include "p4/alloc/stage_alloc.hpp"

#include <algorithm>
#include <unordered_set>

namespace mantis::p4 {

namespace {

bool is_field_writing(PrimOp op) {
  switch (op) {
    case PrimOp::kModifyField:
    case PrimOp::kAdd:
    case PrimOp::kSubtract:
    case PrimOp::kAddToField:
    case PrimOp::kSubtractFromField:
    case PrimOp::kBitAnd:
    case PrimOp::kBitOr:
    case PrimOp::kBitXor:
    case PrimOp::kShiftLeft:
    case PrimOp::kShiftRight:
    case PrimOp::kRegisterRead:
    case PrimOp::kModifyFieldWithHash:
      return true;
    default:
      return false;
  }
}

void insert_unique(std::vector<FieldId>& vec, FieldId f) {
  if (std::find(vec.begin(), vec.end(), f) == vec.end()) vec.push_back(f);
}

}  // namespace

std::vector<FieldId> fields_written_by(const Program& prog, const TableDecl& tbl) {
  std::vector<FieldId> out;
  for (const auto& name : tbl.actions) {
    const auto* act = prog.find_action(name);
    ensures(act != nullptr, "fields_written_by: unknown action " + name);
    for (const auto& ins : act->body) {
      if (is_field_writing(ins.op) && !ins.args.empty() &&
          ins.args[0].kind == OperandKind::kField) {
        insert_unique(out, ins.args[0].field);
      }
    }
  }
  return out;
}

std::vector<FieldId> fields_read_by(const Program& prog, const TableDecl& tbl) {
  std::vector<FieldId> out;
  for (const auto& read : tbl.reads) insert_unique(out, read.field);
  for (const auto& name : tbl.actions) {
    const auto* act = prog.find_action(name);
    ensures(act != nullptr, "fields_read_by: unknown action " + name);
    for (const auto& ins : act->body) {
      const std::size_t first_src = is_field_writing(ins.op) ? 1 : 0;
      for (std::size_t i = first_src; i < ins.args.size(); ++i) {
        if (ins.args[i].kind == OperandKind::kField) {
          insert_unique(out, ins.args[i].field);
        }
      }
    }
    // Hash inputs are reads too.
    for (const auto& ins : act->body) {
      if (ins.op != PrimOp::kModifyFieldWithHash) continue;
      const auto* hc = prog.find_hash_calc(ins.object);
      ensures(hc != nullptr, "fields_read_by: unknown hash calc");
      const auto* fl = prog.find_field_list(hc->field_list);
      ensures(fl != nullptr, "fields_read_by: unknown field list");
      for (const auto& entry : fl->fields) {
        if (!entry.is_malleable()) insert_unique(out, entry.field);
      }
    }
  }
  return out;
}

std::vector<std::string> registers_used_by(const Program& prog, const TableDecl& tbl) {
  std::vector<std::string> out;
  for (const auto& name : tbl.actions) {
    const auto* act = prog.find_action(name);
    ensures(act != nullptr, "registers_used_by: unknown action " + name);
    for (const auto& ins : act->body) {
      if (ins.op == PrimOp::kRegisterRead || ins.op == PrimOp::kRegisterWrite) {
        if (std::find(out.begin(), out.end(), ins.object) == out.end()) {
          out.push_back(ins.object);
        }
      }
    }
  }
  return out;
}

TableDemand table_demand(const Program& prog, const TableDecl& tbl) {
  TableDemand d;

  const std::uint64_t key_bits = table_match_bits(prog, tbl);
  const std::uint64_t act_bits = table_action_data_bits(prog, tbl);
  const bool in_tcam = tbl.is_ternary() ||
                       std::any_of(tbl.reads.begin(), tbl.reads.end(),
                                   [](const MatchSpec& m) {
                                     return m.kind == MatchKind::kLpm;
                                   });
  d.tcam_bits = in_tcam ? tbl.size * key_bits : 0;
  d.sram_bits = in_tcam ? tbl.size * act_bits : tbl.size * (key_bits + act_bits);

  // ALU slots: RMT issues one action's field writes in parallel, so a table
  // needs as many slots as its widest action body (one even if empty — the
  // match result itself occupies a slot).
  int widest = 1;
  bool hash_action = false;
  for (const auto& name : tbl.actions) {
    const auto* act = prog.find_action(name);
    ensures(act != nullptr, "table_demand: unknown action " + name);
    widest = std::max(widest, static_cast<int>(act->body.size()));
    for (const auto& ins : act->body) {
      if (ins.op == PrimOp::kModifyFieldWithHash) hash_action = true;
    }
  }
  d.alus = widest;

  // Hash units: one to hash the key of any exact/LPM match, plus one for
  // hash-computing actions.
  const bool keyed_match =
      std::any_of(tbl.reads.begin(), tbl.reads.end(), [](const MatchSpec& m) {
        return m.kind == MatchKind::kExact || m.kind == MatchKind::kLpm;
      });
  d.hash_units = (keyed_match ? 1 : 0) + (hash_action ? 1 : 0);

  d.registers = registers_used_by(prog, tbl);
  return d;
}

StageAssignment allocate_stages(const Program& prog, const ControlBlock& block,
                                const RmtResourceModel& model) {
  const auto order = prog.tables_in(block);

  struct StageLoad {
    std::uint64_t sram = 0;
    std::uint64_t tcam = 0;
    int tables = 0;
    int alus = 0;
    int hash_units = 0;
    std::unordered_set<std::string> registers;
  };
  std::vector<StageLoad> load(
      static_cast<std::size_t>(std::max(model.stages, 0)));

  // register name -> stage that hosts it (RMT: one stage per register)
  std::unordered_map<std::string, int> register_stage;
  StageAssignment result;

  // Cache table read/write sets for dependency checks.
  std::unordered_map<std::string, std::vector<FieldId>> writes, reads;
  for (const auto& name : order) {
    const auto* tbl = prog.find_table(name);
    ensures(tbl != nullptr, "allocate_stages: unknown table " + name);
    writes[name] = fields_written_by(prog, *tbl);
    reads[name] = fields_read_by(prog, *tbl);
  }

  auto intersects = [](const std::vector<FieldId>& a, const std::vector<FieldId>& b) {
    return std::any_of(a.begin(), a.end(), [&](FieldId f) {
      return std::find(b.begin(), b.end(), f) != b.end();
    });
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& name = order[i];
    const auto* tbl = prog.find_table(name);
    const TableDemand need = table_demand(prog, *tbl);

    // Earliest legal stage from dependencies on earlier tables.
    int min_stage = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& prior = order[j];
      const int prior_stage = result.table_stage.at(prior);
      const bool match_dep = intersects(writes[prior], reads[name]);
      const bool write_dep = intersects(writes[prior], writes[name]);
      if (match_dep || write_dep) min_stage = std::max(min_stage, prior_stage + 1);
    }

    // Register co-location: all users of a register share its stage.
    int pinned_stage = -1;
    for (const auto& reg : need.registers) {
      auto it = register_stage.find(reg);
      if (it != register_stage.end()) {
        if (pinned_stage != -1 && pinned_stage != it->second) {
          throw ResourceExhausted(
              RmtResource::kRegisters,
              "stage allocation: table " + name +
                  " uses registers pinned to different stages");
        }
        pinned_stage = it->second;
      }
    }
    if (pinned_stage != -1 && pinned_stage < min_stage) {
      throw ResourceExhausted(
          RmtResource::kRegisters,
          "stage allocation: register placement conflicts with dependencies "
          "for table " + name);
    }

    // Which resource keeps the table out of stage s? Returns kStages when
    // everything fits (i.e. no blocker).
    auto blocker = [&](int s) -> RmtResource {
      const auto& sl = load[static_cast<std::size_t>(s)];
      if (sl.tables + 1 > model.tables_per_stage) return RmtResource::kTables;
      if (sl.sram + need.sram_bits > model.sram_bits_per_stage()) {
        return RmtResource::kSram;
      }
      if (sl.tcam + need.tcam_bits > model.tcam_bits_per_stage()) {
        return RmtResource::kTcam;
      }
      if (sl.alus + need.alus > model.alus_per_stage) return RmtResource::kAlus;
      if (sl.hash_units + need.hash_units > model.hash_units_per_stage) {
        return RmtResource::kHashUnits;
      }
      int new_regs = 0;
      for (const auto& reg : need.registers) {
        if (!sl.registers.count(reg)) ++new_regs;
      }
      if (static_cast<int>(sl.registers.size()) + new_regs >
          model.registers_per_stage) {
        return RmtResource::kRegisters;
      }
      return RmtResource::kStages;
    };
    auto fits = [&](int s) { return blocker(s) == RmtResource::kStages; };

    int chosen = -1;
    if (pinned_stage != -1) {
      if (!fits(pinned_stage)) {
        throw ResourceExhausted(
            blocker(pinned_stage),
            "stage allocation: pinned stage overflows for table " + name);
      }
      chosen = pinned_stage;
    } else {
      for (int s = min_stage; s < model.stages; ++s) {
        if (fits(s)) {
          chosen = s;
          break;
        }
      }
      if (chosen == -1) {
        // Name the real bottleneck: if the table cannot fit even an empty
        // stage, report that per-stage resource; otherwise the dependency
        // chain simply outruns the stage budget.
        RmtResource why = RmtResource::kStages;
        if (need.sram_bits > model.sram_bits_per_stage()) {
          why = RmtResource::kSram;
        } else if (need.tcam_bits > model.tcam_bits_per_stage()) {
          why = RmtResource::kTcam;
        } else if (model.tables_per_stage < 1) {
          why = RmtResource::kTables;
        } else if (need.alus > model.alus_per_stage) {
          why = RmtResource::kAlus;
        } else if (need.hash_units > model.hash_units_per_stage) {
          why = RmtResource::kHashUnits;
        } else if (static_cast<int>(need.registers.size()) >
                   model.registers_per_stage) {
          why = RmtResource::kRegisters;
        }
        throw ResourceExhausted(
            why, "stage allocation: program does not fit in " +
                     std::to_string(model.stages) + " stages (table " + name +
                     ")");
      }
    }

    auto& sl = load[static_cast<std::size_t>(chosen)];
    sl.tables += 1;
    sl.sram += need.sram_bits;
    sl.tcam += need.tcam_bits;
    sl.alus += need.alus;
    sl.hash_units += need.hash_units;
    result.table_stage[name] = chosen;
    result.stages_used = std::max(result.stages_used, chosen + 1);
    for (const auto& reg : need.registers) {
      sl.registers.insert(reg);
      register_stage.emplace(reg, chosen);
    }
  }
  return result;
}

ProgramStages allocate_program_stages(const Program& prog,
                                      const RmtResourceModel& model) {
  ProgramStages out;
  out.ingress = allocate_stages(prog, prog.ingress, model).stages_used;
  out.egress = allocate_stages(prog, prog.egress, model).stages_used;
  return out;
}

}  // namespace mantis::p4
