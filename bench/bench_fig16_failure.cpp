// Figure 16: time to detect a (gray) link failure and install recomputed
// routes.
//
//  16a — end-to-end reaction time distribution for several dialogue pacing
//        settings (which set T_d, the inter-poll window). Paper: 100-200us
//        restoration with low variance; variance comes from where in the
//        first T_d window the failure lands.
//  16b — reaction time vs eta (the delivery expectation): weak dependence,
//        because most of the latency is measurement + isolation, not the
//        threshold itself.
// Context row: a traditional control plane polling counters at 10ms.
#include "apps/gray_failure.hpp"
#include "bench_util.hpp"
#include "workload/heartbeat.hpp"

namespace {

using namespace mantis;

struct TrialResult {
  Samples reaction_us;
};

/// Runs `trials` fail-detect-reroute cycles; returns reaction times (failure
/// instant -> new routes committed to the data plane).
TrialResult run_trials(int trials, Duration pacing, double eta,
                       Duration ts = 1 * kMicrosecond) {
  TrialResult out;
  for (int trial = 0; trial < trials; ++trial) {
    agent::AgentOptions opts;
    opts.pacing_sleep = pacing;
    bench::Stack stack(apps::gray_failure_p4r_source(), {}, opts);
    auto state = std::make_shared<apps::GrayFailureState>();
    state->cfg.num_ports = 8;
    state->cfg.ts = ts;
    state->cfg.eta = eta;
    state->topo = apps::Topology::fat_tree_slice(8, 16);
    Time reroute_at = -1;
    state->on_routes_installed = [&](Time) {
      // Routes land in the data plane at the end of this iteration's commit;
      // sample the time after the iteration completes (below).
      reroute_at = -2;
    };
    stack.agent->set_native_reaction("gf_react",
                                     apps::make_gray_failure_reaction(state));
    stack.agent->run_prologue([&](agent::ReactionContext& ctx) {
      state->install_initial_routes(ctx);
    });

    std::vector<std::unique_ptr<workload::HeartbeatSource>> sources;
    for (int p = 0; p < 8; ++p) {
      workload::HeartbeatConfig cfg;
      cfg.port = p;
      cfg.period = ts;
      cfg.seed = static_cast<std::uint64_t>(trial) * 100 + static_cast<std::uint64_t>(p);
      sources.push_back(std::make_unique<workload::HeartbeatSource>(*stack.sw, cfg));
      sources.back()->start(stack.loop.now() + 60 * kMillisecond);
    }
    stack.agent->run_dialogue(30);  // settle baselines

    // Fail port (trial % 8) at a random phase within the dialogue period:
    // the paper attributes Fig 16a's variance exactly to where in the first
    // T_d window the failure lands.
    const int victim = trial % 8;
    Rng phase_rng(static_cast<std::uint64_t>(trial) + 1);
    const Duration period = 15 * kMicrosecond + pacing;
    const Time fail_at =
        stack.loop.now() +
        static_cast<Duration>(phase_rng.uniform(static_cast<std::uint64_t>(period)));
    stack.loop.schedule_at(fail_at, [&sources, victim] {
      sources[static_cast<std::size_t>(victim)]->stop();
    });

    while (reroute_at != -2 &&
           stack.loop.now() < fail_at + 20 * kMillisecond) {
      stack.agent->dialogue_iteration();
    }
    if (reroute_at == -2) {
      // Commit completed within this iteration; now() is post-commit.
      out.reaction_us.add(to_us(stack.loop.now() - fail_at));
    }
  }
  return out;
}

/// The other side of the eta tradeoff (paper: "a high eta will demand a more
/// reliable link and catch failures faster and a low eta will allow for more
/// outliers"): on a healthy-but-lossy link, high eta fires spuriously.
double false_positive_rate(double eta, double link_loss, int trials) {
  int spurious = 0;
  for (int trial = 0; trial < trials; ++trial) {
    bench::Stack stack(apps::gray_failure_p4r_source());
    auto state = std::make_shared<apps::GrayFailureState>();
    state->cfg.num_ports = 8;
    state->cfg.ts = 1 * kMicrosecond;
    state->cfg.eta = eta;
    state->topo = apps::Topology::fat_tree_slice(8, 8);
    bool detected = false;
    state->on_detect = [&](int, Time) { detected = true; };
    stack.agent->set_native_reaction("gf_react",
                                     apps::make_gray_failure_reaction(state));
    stack.agent->run_prologue([&](agent::ReactionContext& ctx) {
      state->install_initial_routes(ctx);
    });
    std::vector<std::unique_ptr<workload::HeartbeatSource>> sources;
    for (int p = 0; p < 8; ++p) {
      workload::HeartbeatConfig cfg;
      cfg.port = p;
      cfg.period = 1 * kMicrosecond;
      cfg.loss_prob = link_loss;  // healthy link with ambient loss
      cfg.seed = static_cast<std::uint64_t>(trial) * 31 +
                 static_cast<std::uint64_t>(p);
      sources.push_back(
          std::make_unique<workload::HeartbeatSource>(*stack.sw, cfg));
      sources.back()->start(stack.loop.now() + 10 * kMillisecond);
    }
    stack.agent->run_dialogue(200);
    if (detected) ++spurious;
  }
  return static_cast<double>(spurious) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig16_failure", argc, argv);
  report.params().set("trials", std::int64_t{16});
  bench::print_header(
      "Figure 16a: failure detect+reroute time vs dialogue pacing (eta=0.5, "
      "Ts=1us, 16 trials each)");
  bench::print_row({"pacing_us", "mean_us", "p5_us", "p95_us"});
  for (const Duration pacing_us : {0, 10, 25, 50}) {
    const auto r = run_trials(16, pacing_us * kMicrosecond, 0.5);
    bench::print_row({std::to_string(pacing_us),
                      bench::fmt(r.reaction_us.mean(), 1),
                      bench::fmt(r.reaction_us.percentile(5), 1),
                      bench::fmt(r.reaction_us.percentile(95), 1)});
    const std::string key = "fig16a.pacing_us" + std::to_string(pacing_us);
    report.set(key + ".mean_us", r.reaction_us.mean());
    report.set(key + ".p5_us", r.reaction_us.percentile(5));
    report.set(key + ".p95_us", r.reaction_us.percentile(95));
  }

  bench::print_header("Figure 16b: reaction time vs eta (busy loop, 16 trials)");
  bench::print_row({"eta", "mean_us", "p5_us", "p95_us"});
  for (const double eta : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const auto r = run_trials(16, 0, eta);
    bench::print_row({bench::fmt(eta, 2), bench::fmt(r.reaction_us.mean(), 1),
                      bench::fmt(r.reaction_us.percentile(5), 1),
                      bench::fmt(r.reaction_us.percentile(95), 1)});
    const std::string key = "fig16b.eta" + bench::fmt(eta, 2);
    report.set(key + ".mean_us", r.reaction_us.mean());
    report.set(key + ".p5_us", r.reaction_us.percentile(5));
    report.set(key + ".p95_us", r.reaction_us.percentile(95));
  }

  bench::print_header(
      "Figure 16b companion: spurious-detection rate on a healthy link with "
      "15% ambient loss (8 trials x 200 iterations)");
  bench::print_row({"eta", "false_positive_rate"});
  for (const double eta : {0.5, 0.7, 0.8, 0.9}) {
    const double fp = false_positive_rate(eta, 0.15, 8);
    bench::print_row({bench::fmt(eta, 2), bench::fmt(fp, 2)});
    report.set("fp_rate.eta" + bench::fmt(eta, 2), fp);
  }

  std::printf(
      "\nContext: a traditional control plane polling counters at 10ms would\n"
      "need >= 20ms for two below-threshold windows plus route pushes\n"
      "(paper: 10s of ms detection + ms rerouting). The idealized in-band\n"
      "detector bound for eta=0.2, Ts=1us is ~15us but forgoes control-plane\n"
      "route recomputation (paper 8.3.2).\n");
  report.write();
  return 0;
}
