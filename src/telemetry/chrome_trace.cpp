#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <sstream>

#include "telemetry/metrics.hpp"  // json_escape, write_text_file

namespace mantis::telemetry {

namespace {

/// Virtual ns -> trace microseconds, with sub-us precision preserved.
std::string us_from_ns(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000) : ns % 1000));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";

  bool first = true;
  auto emit_sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Lane names (chrome "thread_name" metadata events).
  for (std::size_t t = 0; t < kNumTracks; ++t) {
    emit_sep();
    out << R"({"ph": "M", "pid": 0, "tid": )" << t
        << R"(, "name": "thread_name", "args": {"name": ")"
        << track_name(static_cast<Track>(t)) << "\"}}";
  }

  for (const auto& ev : tracer.events()) {
    emit_sep();
    const char* ph = "X";
    switch (ev.phase) {
      case TraceEvent::Phase::kComplete: ph = "X"; break;
      case TraceEvent::Phase::kInstant: ph = "i"; break;
      case TraceEvent::Phase::kFlowStart: ph = "s"; break;
      case TraceEvent::Phase::kFlowStep: ph = "t"; break;
      case TraceEvent::Phase::kFlowEnd: ph = "f"; break;
    }
    out << "{\"name\": \"" << json_escape(ev.name) << "\", \"cat\": \""
        << json_escape(ev.category) << "\", \"ph\": \"" << ph
        << "\", \"pid\": 0, \"tid\": " << static_cast<unsigned>(ev.track)
        << ", \"ts\": " << us_from_ns(ev.vt_begin);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      out << ", \"dur\": " << us_from_ns(ev.vt_dur);
    } else if (ev.phase == TraceEvent::Phase::kInstant) {
      out << ", \"s\": \"t\"";
    } else {
      // Flow events carry the correlation id; the end event binds to the
      // enclosing slice ("bp": "e") so a dangling start stays valid JSON and
      // simply renders as an unterminated arrow.
      out << ", \"id\": " << ev.flow_id;
      if (ev.phase == TraceEvent::Phase::kFlowEnd) out << ", \"bp\": \"e\"";
    }
    out << ", \"args\": {\"wall_ns\": " << ev.wall_ns;
    if (ev.arg_name != nullptr) {
      out << ", \"" << json_escape(ev.arg_name) << "\": " << ev.arg;
    }
    out << "}}";
  }

  out << "\n]\n}\n";
  return out.str();
}

void write_chrome_trace(const std::string& path, const Tracer& tracer) {
  write_text_file(path, chrome_trace_json(tracer));
}

}  // namespace mantis::telemetry
