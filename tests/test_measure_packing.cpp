// Measurement packing details: odd widths, bit offsets, unpack correctness,
// and freshness across mv flips.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace mantis::test {
namespace {

// Odd-width fields (9 + 19 + 3 bits fit one 32-bit word exactly alongside
// nothing; FFD order is 19, 9, 3).
const char* kOddWidthSrc = R"P4R(
header_type h_t { fields { p : 9; q : 19; r : 3; } }
header h_t h;
control ingress { }
control egress { }
reaction rx(ing h.p, ing h.q, ing h.r) { }
)P4R";

TEST(MeasurePacking, OddWidthsPackIntoOneWordAndUnpackExactly) {
  Stack stack(kOddWidthSrc);
  const auto* rinfo = stack.artifacts.bindings.find_reaction("rx");
  ASSERT_NE(rinfo, nullptr);
  ASSERT_EQ(rinfo->measure_regs.size(), 1u) << "9+19+3 bits must share a word";

  std::int64_t p = -1, q = -1, r = -1;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    p = ctx.arg("h_p");
    q = ctx.arg("h_q");
    r = ctx.arg("h_r");
  });
  stack.agent->run_prologue();

  auto pkt = stack.sw->factory().make();
  stack.sw->factory().set(pkt, "h.p", 0x1ab);    // 9 bits, MSB set
  stack.sw->factory().set(pkt, "h.q", 0x7ffff);  // all 19 bits
  stack.sw->factory().set(pkt, "h.r", 0x5);      // 3 bits
  stack.sw->inject(std::move(pkt), 0);
  stack.loop.run();
  stack.agent->dialogue_iteration();

  EXPECT_EQ(p, 0x1ab);
  EXPECT_EQ(q, 0x7ffff);
  EXPECT_EQ(r, 0x5);
}

TEST(MeasurePacking, FreshValuesEachIteration) {
  Stack stack(kOddWidthSrc);
  std::vector<std::int64_t> seen;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    seen.push_back(ctx.arg("h_q"));
  });
  stack.agent->run_prologue();

  for (int round = 1; round <= 4; ++round) {
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.q", round * 1000);
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    stack.agent->dialogue_iteration();
  }
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1000, 2000, 3000, 4000}));
}

TEST(MeasurePacking, LastWriterWinsWithinAnInterval) {
  // The pull-based model only sees the most recent update (paper §4.2 "this
  // pull-based model will only see a subset of updates").
  Stack stack(kOddWidthSrc);
  std::int64_t q = -1;
  stack.agent->set_native_reaction(
      "rx", [&](agent::ReactionContext& ctx) { q = ctx.arg("h_q"); });
  stack.agent->run_prologue();
  for (int i = 1; i <= 5; ++i) {
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.q", i);
    stack.sw->inject(std::move(pkt), 0);
  }
  stack.loop.run();
  stack.agent->dialogue_iteration();
  EXPECT_EQ(q, 5);
}

// Width > 32 cannot share a word; width exactly 32 packs alone per word with
// another 32-bit neighbour in a second word.
const char* kWideSrc = R"P4R(
header_type h_t { fields { w : 48; a : 32; b : 32; } }
header h_t h;
control ingress { }
control egress { }
reaction rx(ing h.w, ing h.a, ing h.b) { }
)P4R";

TEST(MeasurePacking, WideFieldsGetOwnRegisters) {
  Stack stack(kWideSrc);
  const auto* rinfo = stack.artifacts.bindings.find_reaction("rx");
  ASSERT_EQ(rinfo->measure_regs.size(), 3u);

  std::int64_t w = 0, a = 0, b = 0;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    w = ctx.arg("h_w");
    a = ctx.arg("h_a");
    b = ctx.arg("h_b");
  });
  stack.agent->run_prologue();
  auto pkt = stack.sw->factory().make();
  stack.sw->factory().set(pkt, "h.w", 0xabcdef012345ull);
  stack.sw->factory().set(pkt, "h.a", 0xffffffff);
  stack.sw->factory().set(pkt, "h.b", 0x12345678);
  stack.sw->inject(std::move(pkt), 0);
  stack.loop.run();
  stack.agent->dialogue_iteration();
  EXPECT_EQ(static_cast<std::uint64_t>(w), 0xabcdef012345ull);
  EXPECT_EQ(static_cast<std::uint64_t>(a), 0xffffffffull);
  EXPECT_EQ(static_cast<std::uint64_t>(b), 0x12345678ull);
}

}  // namespace
}  // namespace mantis::test
