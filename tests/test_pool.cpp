// Lifecycle tests for the thread-local freelist pools (util/pool.*).
//
// The pools back every per-event hot-path allocation (SmallFn spills,
// packet field vectors, deferred telemetry ops), so their contract is
// load-bearing for both performance (test_prof pins allocs/event) and
// correctness: recycling must be per-thread, exhaustion must degrade to
// plain new/delete, and purge_thread_cache must return the thread to a
// cold, deterministic state. Under ASan the pools pass through; every test
// branches on pooling_active() so the suite is sanitizer-clean either way.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/pool.hpp"

namespace mantis::util::pool {
namespace {

TEST(Pool, RecyclesSameBlockOnSameThread) {
  purge_thread_cache();
  void* a = acquire(128);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xab, 128);  // blocks are real, writable memory
  release(a, 128);
  void* b = acquire(128);
  if (pooling_active()) {
    // LIFO freelist: the block just parked is the one handed back.
    EXPECT_EQ(b, a);
  } else {
    EXPECT_NE(b, nullptr);  // ASan pass-through: fresh block each time
  }
  release(b, 128);
  purge_thread_cache();
}

TEST(Pool, SizeClassRoundingSharesFreelists) {
  if (!pooling_active()) GTEST_SKIP() << "pass-through mode (ASan)";
  purge_thread_cache();
  // 65 and 100 bytes round to the same 128-byte class: a block released
  // at one request size serves the other.
  void* a = acquire(65);
  release(a, 65);
  void* b = acquire(100);
  EXPECT_EQ(b, a);
  release(b, 100);
  purge_thread_cache();
}

TEST(Pool, ExhaustionFallsBackToFreshAllocations) {
  if (!pooling_active()) GTEST_SKIP() << "pass-through mode (ASan)";
  purge_thread_cache();
  const PoolStats before = stats();
  // Drain the (empty) freelist far past its capacity: every acquire must
  // still succeed, counted as `fresh` (the graceful-growth signal).
  std::vector<void*> blocks;
  for (std::size_t i = 0; i < kFreelistCap + 64; ++i) {
    void* p = acquire(256);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, 256);
    blocks.push_back(p);
  }
  const PoolStats mid = stats();
  EXPECT_GE(mid.fresh - before.fresh, kFreelistCap + 64);

  // Releasing more blocks than the freelist holds: the first kFreelistCap
  // park (recycled), the excess frees (overflow) — never a leak or crash.
  for (void* p : blocks) release(p, 256);
  const PoolStats after = stats();
  EXPECT_GE(after.recycled - mid.recycled, kFreelistCap);
  EXPECT_GE(after.overflow - mid.overflow, 64u);
  purge_thread_cache();
}

TEST(Pool, OversizeRequestsPassThrough) {
  const PoolStats before = stats();
  void* p = acquire(kMaxBlockBytes + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, kMaxBlockBytes + 1);
  release(p, kMaxBlockBytes + 1);
  if (pooling_active()) {
    EXPECT_GE(stats().oversize - before.oversize, 1u);
  }
}

TEST(Pool, PurgeReturnsThreadToColdState) {
  if (!pooling_active()) GTEST_SKIP() << "pass-through mode (ASan)";
  purge_thread_cache();
  void* a = acquire(512);
  release(a, 512);
  purge_thread_cache();  // frees the parked block
  const PoolStats before = stats();
  void* b = acquire(512);
  // A purged freelist cannot serve a hit: the acquire is fresh again —
  // exactly the determinism test_prof needs between pinned runs.
  EXPECT_EQ(stats().hits, before.hits);
  EXPECT_GE(stats().fresh, before.fresh + 1);
  release(b, 512);
  purge_thread_cache();
}

TEST(Pool, FreelistsAreThreadLocal) {
  if (!pooling_active()) GTEST_SKIP() << "pass-through mode (ASan)";
  // A block parked on a worker thread must not be handed to this thread:
  // cross-thread recycling would need synchronization the pools
  // deliberately avoid.
  purge_thread_cache();
  void* worker_block = nullptr;
  std::thread worker([&] {
    worker_block = acquire(1024);
    release(worker_block, 1024);
    purge_thread_cache();  // worker frees its own parked blocks on exit
  });
  worker.join();
  void* mine = acquire(1024);
  ASSERT_NE(mine, nullptr);
  release(mine, 1024);
  purge_thread_cache();
}

TEST(Pool, AllocatorAdapterRecyclesContainerBuffers) {
  purge_thread_cache();
  {
    std::vector<int, PoolAllocator<int>> v;
    v.reserve(16);  // 64 bytes: the smallest class
    for (int i = 0; i < 16; ++i) v.push_back(i);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  }
  if (pooling_active()) {
    // The vector's buffer was parked on destruction; the next same-class
    // acquire is a hit.
    const PoolStats before = stats();
    void* p = acquire(64);
    EXPECT_GE(stats().hits, before.hits + 1);
    release(p, 64);
  }
  purge_thread_cache();
}

TEST(Pool, ReuseIsDeterministicAcrossIdenticalSequences) {
  if (!pooling_active()) GTEST_SKIP() << "pass-through mode (ASan)";
  // Two identical acquire/release sequences from the same cold state make
  // identical hit/fresh decisions — the property that lets test_prof pin
  // operator-new counts after a purge.
  auto run = [] {
    purge_thread_cache();
    const PoolStats before = stats();
    std::vector<void*> live;
    for (int i = 0; i < 32; ++i) {
      live.push_back(acquire(96));
      if (i % 3 == 2) {
        release(live.back(), 96);
        live.pop_back();
      }
    }
    for (void* p : live) release(p, 96);
    const PoolStats after = stats();
    purge_thread_cache();
    return std::pair(after.hits - before.hits, after.fresh - before.fresh);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mantis::util::pool
