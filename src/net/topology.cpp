#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "util/check.hpp"

namespace mantis::net {

std::map<std::uint32_t, int> Topology::compute_routes_from(
    NodeId src, const std::vector<bool>& port_down) const {
  expects(src >= 0 && src < num_nodes, "compute_routes_from: bad source node");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(num_nodes), kInf);
  std::vector<int> first_hop(static_cast<std::size_t>(num_nodes), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.emplace(0.0, src);

  auto relax = [&](int from, int to, int via_port_of_src, double cost) {
    if (dist[static_cast<std::size_t>(from)] + cost <
        dist[static_cast<std::size_t>(to)]) {
      dist[static_cast<std::size_t>(to)] =
          dist[static_cast<std::size_t>(from)] + cost;
      first_hop[static_cast<std::size_t>(to)] =
          from == src ? via_port_of_src
                      : first_hop[static_cast<std::size_t>(from)];
      pq.emplace(dist[static_cast<std::size_t>(to)], to);
    }
  };

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& link : links) {
      // A down port of `src` disables the link in both directions (the
      // detector only has local knowledge; remote faults surface as their
      // own ports' heartbeat deltas on the remote switch).
      const bool usable =
          !((link.a == src &&
             static_cast<std::size_t>(link.port_a) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_a)]) ||
            (link.b == src &&
             static_cast<std::size_t>(link.port_b) < port_down.size() &&
             port_down[static_cast<std::size_t>(link.port_b)]));
      if (!usable) continue;
      if (link.a == u) relax(u, link.b, link.port_a, link.cost);
      if (link.b == u) relax(u, link.a, link.port_b, link.cost);
    }
  }

  std::map<std::uint32_t, int> routes;
  for (const auto& [addr, node] : dst_node) {
    routes[addr] = dist[static_cast<std::size_t>(node)] == kInf
                       ? -1
                       : first_hop[static_cast<std::size_t>(node)];
  }
  return routes;
}

int Topology::link_at(NodeId node, int port) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if ((links[i].a == node && links[i].port_a == port) ||
        (links[i].b == node && links[i].port_b == port)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::link_between(NodeId a, NodeId b) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if ((links[i].a == a && links[i].b == b) ||
        (links[i].a == b && links[i].b == a)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> Topology::switch_facing_ports(NodeId node) const {
  std::vector<int> ports;
  for (const auto& link : links) {
    if (link.a == node && is_switch(link.b)) ports.push_back(link.port_a);
    if (link.b == node && is_switch(link.a)) ports.push_back(link.port_b);
  }
  std::sort(ports.begin(), ports.end());
  return ports;
}

Topology Topology::fat_tree_slice(int fanout, int num_dsts) {
  expects(fanout >= 2, "fat_tree_slice: need >= 2 uplinks");
  Topology topo;
  // node 0: this switch; nodes 1..fanout: aggregation neighbours;
  // nodes fanout+1..fanout+num_dsts: destinations, each dual-homed to two
  // consecutive aggregation nodes.
  topo.num_nodes = 1 + fanout + num_dsts;
  for (int a = 0; a < fanout; ++a) {
    topo.links.push_back(Link{0, 1 + a, a, 0, 1.0});
  }
  for (int d = 0; d < num_dsts; ++d) {
    const int node = 1 + fanout + d;
    const int agg1 = 1 + (d % fanout);
    const int agg2 = 1 + ((d + 1) % fanout);
    topo.links.push_back(Link{agg1, node, 1 + d, 0, 1.0});
    topo.links.push_back(Link{agg2, node, 1 + d, 0, 1.1});
    topo.dst_node.emplace(0xc0a80000u + static_cast<std::uint32_t>(d), node);
  }
  return topo;
}

Topology Topology::leaf_spine(int leaves, int spines, int hosts_per_leaf) {
  expects(leaves >= 1 && spines >= 1, "leaf_spine: need leaves and spines");
  expects(hosts_per_leaf >= 0, "leaf_spine: bad hosts_per_leaf");
  Topology topo;
  topo.num_switches = leaves + spines;
  topo.num_nodes = leaves + spines + leaves * hosts_per_leaf;
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      // leaf l port s <-> spine (leaves+s) port l
      topo.links.push_back(Link{l, leaves + s, s, l, 1.0});
    }
  }
  for (int l = 0; l < leaves; ++l) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = leaves + spines + l * hosts_per_leaf + h;
      topo.links.push_back(Link{l, host, spines + h, 0, 1.0});
      topo.dst_node.emplace(
          0x0a000000u + (static_cast<std::uint32_t>(l) << 8) +
              static_cast<std::uint32_t>(h),
          host);
    }
  }
  return topo;
}

Topology Topology::ring(int switches, int hosts_per_switch) {
  expects(switches >= 3, "ring: need >= 3 switches");
  expects(hosts_per_switch >= 0, "ring: bad hosts_per_switch");
  Topology topo;
  topo.num_switches = switches;
  topo.num_nodes = switches + switches * hosts_per_switch;
  for (int i = 0; i < switches; ++i) {
    // switch i port 0 -> next ring member's port 1.
    topo.links.push_back(Link{i, (i + 1) % switches, 0, 1, 1.0});
  }
  for (int i = 0; i < switches; ++i) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = switches + i * hosts_per_switch + h;
      topo.links.push_back(Link{i, host, 2 + h, 0, 1.0});
      topo.dst_node.emplace(
          0x0a000000u + (static_cast<std::uint32_t>(i) << 8) +
              static_cast<std::uint32_t>(h),
          host);
    }
  }
  return topo;
}

std::uint64_t ClosSpec::ecmp_hash(std::uint64_t sw, std::uint64_t dst) {
  // splitmix64 finalizer over the pair: avalanches enough that consecutive
  // (sw, dst) pairs spread across small modulus groups.
  std::uint64_t x = (sw << 32) ^ dst ^ 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

int ClosSpec::next_hop_port(NodeId sw, std::uint32_t dst) const {
  const int g = leaf_of_addr(dst);
  const int h = host_of_addr(dst);
  if (g < 0 || g >= num_leaves() || h < 0 || h >= hosts_per_leaf) return -1;
  const int dst_pod = g / leaves_per_pod;
  const int dst_leaf = g % leaves_per_pod;
  if (is_leaf(sw)) {
    if (sw == g) return aggs_per_pod + h;  // local host port
    // Any pod agg reaches every other leaf (same pod directly, other pods
    // via its cores) at equal cost: ECMP over the A uplinks.
    return static_cast<int>(ecmp_hash(static_cast<std::uint64_t>(sw), dst) %
                            static_cast<std::uint64_t>(aggs_per_pod));
  }
  if (is_agg(sw)) {
    const int idx = static_cast<int>(sw) - num_leaves();
    const int pod = idx / aggs_per_pod;
    if (pod == dst_pod) return dst_leaf;  // down port toward the leaf
    // Up: every owned core reaches the destination pod — ECMP over C/A.
    return leaves_per_pod +
           static_cast<int>(ecmp_hash(static_cast<std::uint64_t>(sw), dst) %
                            static_cast<std::uint64_t>(cores_per_agg()));
  }
  if (is_core(sw)) return dst_pod;  // one down port per pod
  return -1;  // hosts route implicitly (single uplink)
}

Topology Topology::clos(const ClosSpec& s) {
  expects(s.pods >= 1 && s.leaves_per_pod >= 1 && s.aggs_per_pod >= 1 &&
              s.cores >= 1,
          "clos: all tier sizes must be >= 1");
  expects(s.hosts_per_leaf >= 0 && s.hosts_per_leaf <= 256,
          "clos: hosts_per_leaf must be in [0, 256] (addressing uses 8 bits)");
  expects(s.cores % s.aggs_per_pod == 0,
          "clos: cores must divide evenly over aggs_per_pod");
  Topology topo;
  topo.num_switches = s.num_switches();
  topo.num_nodes = s.num_switches() + s.num_hosts();
  // Tier 1-2: each leaf to every agg in its pod.
  for (int p = 0; p < s.pods; ++p) {
    for (int l = 0; l < s.leaves_per_pod; ++l) {
      for (int a = 0; a < s.aggs_per_pod; ++a) {
        topo.links.push_back(Link{s.leaf_id(p, l), s.agg_id(p, a), a, l, 1.0});
      }
    }
  }
  // Tier 2-3: agg a (in every pod) to its contiguous core group.
  const int cpa = s.cores_per_agg();
  for (int p = 0; p < s.pods; ++p) {
    for (int a = 0; a < s.aggs_per_pod; ++a) {
      for (int j = 0; j < cpa; ++j) {
        const int core = a * cpa + j;
        topo.links.push_back(Link{s.agg_id(p, a), s.core_id(core),
                                  s.leaves_per_pod + j, p, 1.0});
      }
    }
  }
  // Hosts, one subtree per leaf.
  for (int g = 0; g < s.num_leaves(); ++g) {
    for (int h = 0; h < s.hosts_per_leaf; ++h) {
      topo.links.push_back(
          Link{g, s.host_id(g, h), s.aggs_per_pod + h, 0, 1.0});
      topo.dst_node.emplace(s.host_addr(g, h), s.host_id(g, h));
    }
  }
  return topo;
}

Topology Topology::clos(int pods, int leaves_per_pod, int aggs_per_pod,
                        int cores, int hosts_per_leaf) {
  return clos(ClosSpec{pods, leaves_per_pod, aggs_per_pod, cores,
                       hosts_per_leaf});
}

Topology Topology::fat_tree(int k) {
  expects(k >= 2 && k % 2 == 0, "fat_tree: k must be even and >= 2");
  return clos(ClosSpec{k, k / 2, k / 2, (k / 2) * (k / 2), k / 2});
}

}  // namespace mantis::net
