// Move-only callable for hot paths: the replacement for std::function as
// sim::EventLoop::Callback and telemetry::ShardLane's deferred-op type.
//
// std::function was responsible for most of the per-event allocations the
// profiler attributed to dispatch: every packet-carrying capture (a link
// delivery, a TM enqueue, an egress transmit) exceeds its small-buffer
// size, and copying an Event out of the priority queue duplicated the
// capture — packet and all — once more per pop.
//
// SmallFn fixes both:
//  * captures up to kInlineBytes live inline in the object (no heap at
//    all); larger captures go in one block from util::pool (recycled, so
//    steady-state packet events allocate nothing);
//  * it is move-only, so an Event can never be copied by accident — the
//    queue hands events out by moving them (EventLoop::step, the engine's
//    shard drains), and a heap-spilled SmallFn moves as a pointer swap.
//
// Unlike std::function the target need not be copyable, only movable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/pool.hpp"

namespace mantis::util {

class SmallFn {
 public:
  /// Inline capture budget. Sized so the common fabric callbacks — a few
  /// pointers, a port, a time — stay inline while packet-carrying captures
  /// (~100+ bytes) take the pooled path.
  static constexpr std::size_t kInlineBytes = 64;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "SmallFn target must be callable as void()");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      // pool::acquire only guarantees max_align_t alignment; over-aligned
      // captures must take plain aligned new (heap_ops' destroy mirrors
      // the choice).
      void* block;
      if constexpr (alignof(Fn) > alignof(std::max_align_t)) {
        block = ::operator new(sizeof(Fn), std::align_val_t{alignof(Fn)});
      } else {
        block = pool::acquire(sizeof(Fn));
      }
      ::new (block) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = block;
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's target.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (*static_cast<Fn*>(*reinterpret_cast<void**>(s)))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* s) noexcept {
        Fn* fn = static_cast<Fn*>(*reinterpret_cast<void**>(s));
        fn->~Fn();
        if constexpr (alignof(Fn) > alignof(std::max_align_t)) {
          ::operator delete(fn, std::align_val_t{alignof(Fn)});
        } else {
          pool::release(fn, sizeof(Fn));
        }
      },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mantis::util
