// Data-plane exact hash table baseline (paper Fig 14): a single-hash table
// of per-sender byte counters, as implementable with one register array and
// one field_list_calculation. On a collision, the slot keeps its original
// owner and the collider's bytes are misattributed to that owner — exactly
// the unbounded-error mechanism the paper contrasts with Mantis.
#pragma once

#include <cstdint>
#include <vector>

namespace mantis::baseline {

class DpHashTable {
 public:
  explicit DpHashTable(std::size_t slots);

  void add(std::uint32_t key, std::uint64_t amount);
  /// Estimate for `key`: the owner of its slot reports the slot total;
  /// a non-owner (collision victim) reports 0.
  std::uint64_t estimate(std::uint32_t key) const;

  std::uint64_t collisions() const { return collisions_; }

 private:
  struct Slot {
    bool used = false;
    std::uint32_t owner = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Slot> slots_;
  std::uint64_t collisions_ = 0;

  std::size_t index(std::uint32_t key) const;
};

}  // namespace mantis::baseline
