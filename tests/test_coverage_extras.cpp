// Additional focused coverage: xoshiro reference behaviour, event-loop
// advance_now contract, topology corner cases, cost-model helpers, JSON for
// all four use cases, and reaction read-your-writes semantics.
#include <gtest/gtest.h>

#include "agent/cost_equation.hpp"
#include "apps/gray_failure.hpp"
#include "apps/hash_polarization.hpp"
#include "apps/rl_dctcp.hpp"
#include "helpers.hpp"
#include "p4/json.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

TEST(EventLoopExtras, AdvanceNowContract) {
  sim::EventLoop loop;
  loop.advance_now(100);
  EXPECT_EQ(loop.now(), 100);
  loop.schedule_at(200, [] {});
  EXPECT_NO_THROW(loop.advance_now(150));
  // Jumping past a pending event is a caller bug.
  EXPECT_THROW(loop.advance_now(250), PreconditionError);
  loop.run();
  EXPECT_EQ(loop.now(), 200);
}

TEST(RngExtras, StreamsAreUncorrelatedAcrossSeeds) {
  // Weak independence check: agreement frequency of low bits across two
  // streams stays near 50%.
  Rng a(1), b(2);
  int agree = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    agree += static_cast<int>((a() & 1) == (b() & 1));
  }
  EXPECT_NEAR(agree / static_cast<double>(n), 0.5, 0.03);
}

TEST(TopologyExtras, CostsPreferPrimaryAgg) {
  // fat_tree_slice gives each destination a cheaper primary (cost 1.0) and
  // a pricier backup (1.1): healthy routing must pick the primary.
  const auto topo = apps::Topology::fat_tree_slice(4, 4);
  const auto routes = topo.compute_routes(std::vector<bool>(4, false));
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(routes.at(0xc0a80000u + static_cast<std::uint32_t>(d)),
              d % 4);  // primary agg of destination d
  }
}

TEST(CostModelExtras, HelperArithmetic) {
  driver::CostModel costs;
  EXPECT_EQ(costs.packed_words_read(1),
            costs.pcie_rtt + costs.reg_read_base + costs.reg_read_per_word);
  EXPECT_EQ(costs.range_read(0), costs.pcie_rtt + costs.reg_read_base);
  EXPECT_GT(costs.table_add(false), costs.table_add(true));
  EXPECT_GT(costs.table_mod(false), costs.table_mod(true));
  EXPECT_LE(costs.critical(1000), 1000);
  EXPECT_GE(costs.critical(1000), 0);
}

TEST(CostEquationExtras, BreakdownMatchesPhases) {
  Stack stack(figure1_style_source());
  stack.agent->set_native_reaction("my_reaction", [](agent::ReactionContext&) {},
                                   2000);
  stack.agent->run_prologue();
  stack.agent->dialogue_iteration();
  const auto& bd = stack.agent->last_breakdown();
  const auto* rinfo = stack.artifacts.bindings.find_reaction("my_reaction");
  const auto predicted = agent::predict_iteration(
      stack.drv->costs(), *rinfo, 2000, 0,
      stack.artifacts.bindings.init_tables.size());
  EXPECT_EQ(bd.mv_flip, predicted.mv_flip);
  EXPECT_EQ(bd.measure_and_react,
            predicted.measurement + predicted.reaction_compute);
  EXPECT_EQ(bd.update, predicted.commit);
}

class JsonAllApps : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonAllApps, SerializesBalanced) {
  const std::string name = GetParam();
  std::string src;
  if (name == "gray") src = apps::gray_failure_p4r_source();
  if (name == "hashpol") src = apps::hash_polarization_p4r_source();
  if (name == "rl") src = apps::rl_dctcp_p4r_source();
  const auto art = compile::compile_source(src);
  const auto json = p4::emit_json(art.prog);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    depth += (c == '{') + (c == '[') - (c == '}') - (c == ']');
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

INSTANTIATE_TEST_SUITE_P(Apps, JsonAllApps,
                         ::testing::Values("gray", "hashpol", "rl"),
                         [](const auto& info) { return std::string(info.param); });

const char* kRywSrc = R"P4R(
header_type h_t { fields { k : 16; } }
header h_t h;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt { reads { h.k : exact; } actions { fwd; } size : 16; }
control ingress { apply(mt); }
control egress { }
reaction rx() { }
)P4R";

TEST(ReadYourWrites, BufferedOpsVisibleWithinReaction) {
  Stack stack(kRywSrc);
  stack.agent->run_prologue();
  bool checked = false;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    if (checked) return;
    checked = true;
    p4::EntrySpec spec;
    spec.key = {{5, kFull}};
    spec.action = "fwd";
    spec.action_args = {2};
    const auto id = ctx.add_entry("mt", spec);
    // The buffered add is visible to find/count immediately...
    EXPECT_TRUE(ctx.find_entry("mt", spec.key).has_value());
    EXPECT_EQ(ctx.entry_count("mt"), 1u);
    // ...and so is a buffered delete.
    ctx.del_entry("mt", id);
    EXPECT_FALSE(ctx.find_entry("mt", spec.key).has_value());
    EXPECT_EQ(ctx.entry_count("mt"), 0u);
    // Double delete / post-delete modify are rejected at call time.
    EXPECT_THROW(ctx.del_entry("mt", id), UserError);
    EXPECT_THROW(ctx.mod_entry("mt", id, "fwd", {3}), UserError);
  });
  stack.agent->dialogue_iteration();
  EXPECT_TRUE(checked);
  EXPECT_EQ(stack.sw->table("mt").entry_count(), 0u);
}

TEST(ReadYourWrites, PendingDeleteRestoredNowhereAfterCommit) {
  Stack stack(kRywSrc);
  stack.agent->run_prologue();
  auto mgmt = stack.agent->management_context();
  p4::EntrySpec spec;
  spec.key = {{7, kFull}};
  spec.action = "fwd";
  spec.action_args = {2};
  const auto id = mgmt.add_entry("mt", spec);
  int phase = 0;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    if (++phase == 1) ctx.del_entry("mt", id);
  });
  stack.agent->run_dialogue(3);
  EXPECT_EQ(mgmt.entry_count("mt"), 0u);
  EXPECT_EQ(stack.sw->table("mt").entry_count(), 0u);
}

}  // namespace
}  // namespace mantis::test
