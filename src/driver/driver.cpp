#include "driver/driver.hpp"

namespace mantis::driver {

Driver::Driver(sim::Switch& sw, DriverOptions opts)
    : sw_(&sw), opts_(opts), channel_(sw.loop()) {
  auto& tel = sw.loop().telemetry();
  sync_ops_ctr_ = &tel.metrics().counter("driver.sync_ops");
  prov_ = &tel.provenance();
  telemetry::HistogramOptions lat;
  lat.first_bucket = 256;  // ns; legacy op latencies are ~1..50us
  legacy_latency_hist_ =
      &tel.metrics().histogram("driver.legacy.latency_ns", lat);
}

bool Driver::memoized(const std::string& table, const std::string& action) {
  if (!opts_.enable_memoization) return false;
  const std::string key = table + "\x1f" + action;
  // First touch establishes the memo (the prologue normally does this
  // explicitly; dialogue-time first touches pay the cold cost once).
  return !memo_.insert(key).second;
}

void Driver::memoize(const std::string& table, const std::string& action) {
  if (!opts_.enable_memoization) return;
  memo_.insert(table + "\x1f" + action);
}

void Driver::sync_submit(Duration cost, const char* op,
                         const std::string& detail,
                         const std::function<void()>& effect) {
  ++sync_ops_;
  sync_ops_ctr_->add();
  const Time submitted = sw_->loop().now();
  const Time completion =
      channel_.submit(cost, nullptr, opts_.costs.critical(cost));
  sw_->loop().run_until(completion);
  effect();
  // After the effect so table mutations performed inside it are already
  // stamped with this reaction's id when the op is logged.
  prov_->on_driver_op(op, detail, submitted, completion);
}

sim::EntryHandle Driver::add_entry(const std::string& table,
                                   const p4::EntrySpec& spec) {
  const Duration cost = opts_.costs.table_add(memoized(table, spec.action));
  sim::EntryHandle h = 0;
  sync_submit(cost, "driver.add_entry", table,
              [&] { h = sw_->table(table).add_entry(spec); });
  return h;
}

void Driver::modify_entry(const std::string& table, sim::EntryHandle h,
                          const std::string& action,
                          std::vector<std::uint64_t> args) {
  const Duration cost = opts_.costs.table_mod(memoized(table, action));
  sync_submit(cost, "driver.modify_entry", table, [&] {
    sw_->table(table).modify_entry(h, action, std::move(args));
  });
}

void Driver::delete_entry(const std::string& table, sim::EntryHandle h) {
  const Duration cost = opts_.costs.table_del(memoized(table, "\x1f""del"));
  sync_submit(cost, "driver.delete_entry", table,
              [&] { sw_->table(table).delete_entry(h); });
}

void Driver::set_default(const std::string& table, const std::string& action,
                         std::vector<std::uint64_t> args) {
  sync_submit(opts_.costs.set_default(), "driver.set_default", table,
              [&] { sw_->table(table).set_default(action, std::move(args)); });
}

std::uint64_t Driver::read_register(const std::string& reg, std::uint32_t index) {
  std::uint64_t value = 0;
  sync_submit(opts_.costs.packed_words_read(1), "driver.read_register", reg,
              [&] { value = sw_->registers().read(reg, index); });
  return value;
}

std::vector<std::uint64_t> Driver::read_register_range(const std::string& reg,
                                                       std::uint32_t first,
                                                       std::uint32_t last) {
  expects(first <= last, "Driver::read_register_range: first > last");
  const auto width_bytes = bits_to_bytes(sw_->registers().width(reg));
  const std::size_t bytes = static_cast<std::size_t>(last - first + 1) * width_bytes;
  std::vector<std::uint64_t> values;
  sync_submit(opts_.costs.range_read(bytes), "driver.read_register_range",
              reg,
              [&] { values = sw_->registers().read_range(reg, first, last); });
  return values;
}

std::vector<std::uint64_t> Driver::read_packed_words(
    const std::vector<WordRef>& words) {
  std::vector<std::uint64_t> values;
  sync_submit(opts_.costs.packed_words_read(words.size()),
              "driver.read_packed_words",
              words.empty() ? std::string() : words.front().reg, [&] {
    values.reserve(words.size());
    for (const auto& w : words) {
      values.push_back(sw_->registers().read(w.reg, w.index));
    }
  });
  return values;
}

void Driver::write_register(const std::string& reg, std::uint32_t index,
                            std::uint64_t value) {
  sync_submit(opts_.costs.register_write(), "driver.write_register", reg,
              [&] { sw_->registers().write(reg, index, value); });
}

std::uint64_t Driver::read_counter(const std::string& counter,
                                   std::uint32_t index) {
  std::uint64_t value = 0;
  sync_submit(opts_.costs.packed_words_read(1), "driver.read_counter",
              counter,
              [&] { value = sw_->registers().counter_value(counter, index); });
  return value;
}

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

void Driver::Batch::add(std::string table, p4::EntrySpec spec) {
  Op op;
  op.kind = Op::Kind::kAdd;
  op.table = std::move(table);
  op.spec = std::move(spec);
  ops_.push_back(std::move(op));
}

void Driver::Batch::modify(std::string table, sim::EntryHandle h,
                           std::string action, std::vector<std::uint64_t> args) {
  Op op;
  op.kind = Op::Kind::kMod;
  op.table = std::move(table);
  op.handle = h;
  op.action = std::move(action);
  op.args = std::move(args);
  ops_.push_back(std::move(op));
}

void Driver::Batch::erase(std::string table, sim::EntryHandle h) {
  Op op;
  op.kind = Op::Kind::kDel;
  op.table = std::move(table);
  op.handle = h;
  ops_.push_back(std::move(op));
}

std::vector<sim::EntryHandle> Driver::run_batch(Batch batch) {
  if (batch.empty()) return {};

  if (!opts_.enable_batching) {
    // Ablation: issue ops one by one (one channel occupancy each).
    std::vector<sim::EntryHandle> handles;
    for (auto& op : batch.ops_) {
      switch (op.kind) {
        case Batch::Op::Kind::kAdd:
          handles.push_back(add_entry(op.table, op.spec));
          break;
        case Batch::Op::Kind::kMod:
          modify_entry(op.table, op.handle, op.action, std::move(op.args));
          break;
        case Batch::Op::Kind::kDel:
          delete_entry(op.table, op.handle);
          break;
      }
    }
    return handles;
  }

  Duration cost = opts_.costs.batch_overhead;
  for (const auto& op : batch.ops_) {
    switch (op.kind) {
      case Batch::Op::Kind::kAdd:
        cost += opts_.costs.table_add(memoized(op.table, op.spec.action)) -
                opts_.costs.pcie_rtt;
        break;
      case Batch::Op::Kind::kMod:
        cost += opts_.costs.table_mod(memoized(op.table, op.action)) -
                opts_.costs.pcie_rtt;
        break;
      case Batch::Op::Kind::kDel:
        cost += opts_.costs.table_del(memoized(op.table, "\x1f""del")) -
                opts_.costs.pcie_rtt;
        break;
    }
  }
  cost += opts_.costs.pcie_rtt;  // the batch pays one shared round trip

  std::vector<sim::EntryHandle> handles;
  sync_submit(cost, "driver.batch", "ops=" + std::to_string(batch.size()),
              [&] {
    for (auto& op : batch.ops_) {
      switch (op.kind) {
        case Batch::Op::Kind::kAdd:
          handles.push_back(sw_->table(op.table).add_entry(op.spec));
          break;
        case Batch::Op::Kind::kMod:
          sw_->table(op.table).modify_entry(op.handle, op.action,
                                            std::move(op.args));
          break;
        case Batch::Op::Kind::kDel:
          sw_->table(op.table).delete_entry(op.handle);
          break;
      }
    }
  });
  return handles;
}

// ---------------------------------------------------------------------------
// Async (legacy clients)
// ---------------------------------------------------------------------------

void Driver::async_modify_entry(const std::string& table, sim::EntryHandle h,
                                const std::string& action,
                                std::vector<std::uint64_t> args,
                                std::function<void(Duration)> done) {
  const Time submitted = sw_->loop().now();
  const Duration cost = opts_.costs.table_mod(memoized(table, action));
  channel_.submit(
      cost,
      [this, table, h, action, args = std::move(args), submitted,
       done = std::move(done)]() mutable {
        sw_->table(table).modify_entry(h, action, std::move(args));
        const Duration latency = sw_->loop().now() - submitted;
        legacy_latency_hist_->record(static_cast<double>(latency));
        // Async completions can land inside another agent's run_until wait;
        // attributing them to that reaction would be wrong, so log with
        // reaction_id 0 instead of prov_->on_driver_op.
        auto& rec = sw_->loop().telemetry().recorder();
        if (rec.enabled()) {
          rec.record(sw_->loop().now(), telemetry::FlightEvent::Kind::kDriverOp,
                     0, "legacy.modify_entry", table, latency);
        }
#if MANTIS_TELEMETRY_ENABLED
        sw_->loop().telemetry().tracer().complete(
            "legacy.modify_entry", "driver", telemetry::Track::kLegacy,
            submitted, sw_->loop().now());
#endif
        if (done) done(latency);
      },
      opts_.costs.critical(cost));
}

void Driver::async_read_register_range(
    const std::string& reg, std::uint32_t first, std::uint32_t last,
    std::function<void(std::vector<std::uint64_t>, Duration)> done) {
  expects(first <= last, "Driver::async_read_register_range: first > last");
  const Time submitted = sw_->loop().now();
  const auto width_bytes = bits_to_bytes(sw_->registers().width(reg));
  const std::size_t bytes = static_cast<std::size_t>(last - first + 1) * width_bytes;
  const Duration cost = opts_.costs.range_read(bytes);
  channel_.submit(
      cost,
      [this, reg, first, last, submitted, done = std::move(done)] {
        auto values = sw_->registers().read_range(reg, first, last);
        auto& rec = sw_->loop().telemetry().recorder();
        if (rec.enabled()) {
          rec.record(sw_->loop().now(), telemetry::FlightEvent::Kind::kDriverOp,
                     0, "legacy.read_register_range", reg,
                     sw_->loop().now() - submitted);
        }
        if (done) {
          done(std::move(values), sw_->loop().now() - submitted);
        }
      },
      opts_.costs.critical(cost));
}

}  // namespace mantis::driver
