// Figure 14: average flow-size estimation error of Mantis vs the baselines:
// sFlow (1:30000 sampling), a data-plane exact hash table, and a 2-stage
// count-min sketch at 8K and 16K entries.
//
// Workload: a synthetic CAIDA-like trace (Zipf flow sizes; DESIGN.md
// documents the substitution). Mantis runs on the full stack: the trace is
// replayed into the simulated switch while the DoS reaction's estimation
// loop attributes total-byte-counter deltas to the last-seen source at its
// natural dialogue rate (~1-in-N packet sampling). The baselines consume the
// same trace offline, as pure algorithms — exactly what they are.
//
// Expected shape (paper): Mantis beats sFlow by orders of magnitude; data
// plane structures are comparable for elephants but orders of magnitude
// worse for mice (collision error vs bounded sampling error).
#include "apps/dos_mitigation.hpp"
#include "baseline/count_min.hpp"
#include "baseline/dp_hashtable.hpp"
#include "baseline/sflow.hpp"
#include "bench_util.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace mantis;

struct BucketStats {
  double err_sum = 0;
  int n = 0;
  void add(double e) {
    err_sum += e;
    ++n;
  }
  double avg() const { return n == 0 ? 0.0 : err_sum / n; }
};

double rel_error(std::uint64_t est, std::uint64_t truth) {
  return std::abs(static_cast<double>(est) - static_cast<double>(truth)) /
         static_cast<double>(truth);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig14_estimation", argc, argv);
  workload::TraceConfig cfg;
  cfg.num_flows = 20'000;
  cfg.num_packets = 250'000;
  // Replay pace chosen so the dialogue loop lands at the paper's ~1-in-5
  // packet sampling (tcpreplay pacing played the same role on the testbed).
  cfg.duration_s = 0.6;
  cfg.zipf_skew = 1.05;
  const auto trace = workload::generate_trace(cfg);
  report.params().set("num_flows", static_cast<std::int64_t>(cfg.num_flows));
  report.params().set("num_packets", static_cast<std::int64_t>(cfg.num_packets));
  report.params().set("zipf_skew", cfg.zipf_skew);

  // ---- Mantis on the full stack -------------------------------------------
  bench::Stack stack(apps::dos_p4r_source());
  auto state = std::make_shared<apps::DosState>();
  apps::DosConfig dos_cfg;
  dos_cfg.block_threshold_gbps = 1e9;  // estimation only: never block
  stack.agent->set_native_reaction("dos_react",
                                   apps::make_dos_reaction(state, dos_cfg));
  stack.agent->run_prologue(
      [&](agent::ReactionContext& ctx) { apps::install_dos_routes(ctx, 8); });

  const Time t0 = stack.loop.now();
  for (const auto& pkt : trace.packets) {
    stack.loop.schedule_at(t0 + pkt.t, [&stack, &pkt] {
      auto p = stack.sw->factory().make(pkt.bytes);
      stack.sw->factory().set(p, "ipv4.srcAddr", pkt.src_ip);
      stack.sw->factory().set(p, "ipv4.dstAddr", pkt.dst_ip);
      stack.sw->inject(std::move(p), 0);
    });
  }
  const Time end = t0 + static_cast<Time>(cfg.duration_s * 1e9) + kMillisecond;
  stack.agent->run_dialogue_until(end);
  stack.loop.run();

  const double sample_rate =
      static_cast<double>(state->samples_attributed) /
      static_cast<double>(trace.packets.size());
  std::printf("Mantis dialogue iterations: %llu (~1 in %.1f packets sampled)\n",
              static_cast<unsigned long long>(stack.agent->iterations()),
              1.0 / sample_rate);
  report.count("dialogue_iterations", stack.agent->iterations());
  report.set("sample_rate_inv", 1.0 / sample_rate);

  // ---- Baselines over the same trace --------------------------------------
  baseline::SflowEstimator sflow(30'000);
  baseline::DpHashTable ht8k(8192), ht16k(16384);
  baseline::CountMinSketch cms8k(2, 8192), cms16k(2, 16384);
  for (const auto& pkt : trace.packets) {
    sflow.observe(pkt.src_ip, pkt.bytes);
    ht8k.add(pkt.src_ip, pkt.bytes);
    ht16k.add(pkt.src_ip, pkt.bytes);
    cms8k.add(pkt.src_ip, pkt.bytes);
    cms16k.add(pkt.src_ip, pkt.bytes);
  }

  // ---- Error by flow-size bucket -------------------------------------------
  struct Estimator {
    std::string name;
    std::function<std::uint64_t(std::uint32_t)> estimate;
  };
  const std::vector<Estimator> estimators = {
      {"mantis", [&](std::uint32_t s) { return state->estimate(s); }},
      {"sflow_1:30k", [&](std::uint32_t s) { return sflow.estimate(s); }},
      {"hashtbl_8k", [&](std::uint32_t s) { return ht8k.estimate(s); }},
      {"hashtbl_16k", [&](std::uint32_t s) { return ht16k.estimate(s); }},
      {"cms_8k", [&](std::uint32_t s) { return cms8k.estimate(s); }},
      {"cms_16k", [&](std::uint32_t s) { return cms16k.estimate(s); }},
  };

  const std::vector<std::pair<std::string, std::uint64_t>> buckets = {
      {"<2KB", 2'000},
      {"2-20KB", 20'000},
      {"20-200KB", 200'000},
      {"0.2-2MB", 2'000'000},
      {">2MB", ~std::uint64_t{0}},
  };

  bench::print_header("Figure 14: avg relative estimation error by flow size");
  std::vector<std::string> header = {"bucket", "flows"};
  for (const auto& est : estimators) header.push_back(est.name);
  bench::print_row(header, 13);

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t lo = b == 0 ? 0 : buckets[b - 1].second;
    const std::uint64_t hi = buckets[b].second;
    std::vector<BucketStats> stats(estimators.size());
    int flows = 0;
    for (const auto& [src, truth] : trace.bytes_per_src) {
      if (truth < lo || truth >= hi) continue;
      ++flows;
      for (std::size_t e = 0; e < estimators.size(); ++e) {
        stats[e].add(rel_error(estimators[e].estimate(src), truth));
      }
    }
    std::vector<std::string> row = {buckets[b].first, std::to_string(flows)};
    for (const auto& s : stats) row.push_back(bench::fmt(s.avg(), 3));
    bench::print_row(row, 13);
    for (std::size_t e = 0; e < estimators.size(); ++e) {
      report.set("bucket" + std::to_string(b) + "." + estimators[e].name +
                     ".avg_rel_err",
                 stats[e].avg());
    }
  }

  std::printf(
      "\nShape check (paper Fig 14): mantis << sflow everywhere; mantis\n"
      "comparable to DP structures for big flows and far better for small\n"
      "flows, where collisions misattribute arbitrarily many bytes.\n");
  report.write();
  return 0;
}
