#include "apps/dos_mitigation.hpp"

#include "util/check.hpp"

namespace mantis::apps {

std::string dos_p4r_source() {
  return R"P4R(
// Use case #1: flow size estimation + DoS mitigation (paper 8.3.1).
header_type ipv4_t {
  fields {
    srcAddr : 32;
    dstAddr : 32;
    totalLen : 16;
    protocol : 8;
    ecn : 1;
  }
}
header ipv4_t ipv4;

header_type dos_meta_t {
  fields { total : 48; }
}
metadata dos_meta_t dos_meta;

// Running total of bytes received (read by the reaction).
register total_bytes_r { width : 48; instance_count : 1; }

action count_bytes() {
  register_read(dos_meta.total, total_bytes_r, 0);
  add_to_field(dos_meta.total, standard_metadata.packet_length);
  register_write(total_bytes_r, 0, dos_meta.total);
}
table tally {
  actions { count_bytes; }
  default_action : count_bytes;
  size : 1;
}

action allow() { }

// Reaction-managed drop list, updated with serializable three-phase commits.
malleable table block {
  reads { ipv4.srcAddr : exact; }
  actions { _drop; allow; }
  default_action : allow;
  size : 1024;
}

action set_egress(port) {
  modify_field(standard_metadata.egress_spec, port);
}
table route {
  reads { ipv4.dstAddr : lpm; }
  actions { set_egress; }
  default_action : set_egress(1);
  size : 256;
}

control ingress {
  apply(block);
  apply(route);
  apply(tally);
}
control egress { }

// Interpreted equivalent of the native reaction in dos_mitigation.cpp:
// attribute byte-count deltas to the last-seen source, block >1 Gbps senders.
reaction dos_react(ing ipv4.srcAddr, reg total_bytes_r[0:0]) {
  static uint64_t last_total = 0;
  static uint32_t keys[1024];
  static uint64_t flow_bytes[1024];
  static uint64_t first_us[1024];
  static uint8_t used[1024];
  static uint8_t blocked[1024];

  uint64_t total = total_bytes_r[0];
  uint32_t src = ipv4_srcAddr;
  uint64_t delta = total - last_total;
  last_total = total;
  if (src == 0) return;

  uint32_t h = (src * 2654435761) % 1024;
  int probes = 0;
  while (probes < 1024) {
    if (used[h] == 0) {
      used[h] = 1;
      keys[h] = src;
      flow_bytes[h] = 0;
      first_us[h] = now_us();
      break;
    }
    if (keys[h] == src) break;
    h = (h + 1) % 1024;
    probes = probes + 1;
  }
  if (probes >= 1024) return;

  flow_bytes[h] = flow_bytes[h] + delta;
  uint64_t age = now_us() - first_us[h];
  // rate > 1 Gbps  <=>  bits / age_us > 1000
  if (blocked[h] == 0 && age > 100 && flow_bytes[h] * 8 > age * 1000) {
    block.addEntry("_drop", src);
    blocked[h] = 1;
  }
}
)P4R";
}

std::uint64_t DosState::estimate(std::uint32_t src) const {
  auto it = flows.find(src);
  return it == flows.end() ? 0 : it->second.bytes;
}

agent::Agent::NativeFn make_dos_reaction(std::shared_ptr<DosState> state,
                                         DosConfig cfg) {
  expects(state != nullptr, "make_dos_reaction: null state");
  return [state, cfg](agent::ReactionContext& ctx) {
    ++state->iterations;
    const auto total =
        static_cast<std::uint64_t>(ctx.arg("total_bytes_r", 0));
    const auto src = static_cast<std::uint32_t>(ctx.arg("ipv4_srcAddr"));
    const std::uint64_t delta = total - state->last_total;
    state->last_total = total;
    if (src == 0) return;
    ++state->samples_attributed;

    auto [it, inserted] = state->flows.try_emplace(src);
    auto& flow = it->second;
    if (inserted) flow.first_seen = ctx.now();
    flow.bytes += delta;

    if (flow.blocked) return;
    const auto age_us =
        static_cast<std::uint64_t>((ctx.now() - flow.first_seen) / 1000);
    if (age_us <= cfg.min_age_us) return;
    const double gbps =
        static_cast<double>(flow.bytes) * 8.0 / (static_cast<double>(age_us) * 1000.0);
    if (gbps > cfg.block_threshold_gbps) {
      p4::EntrySpec spec;
      spec.key.push_back(p4::MatchValue{src, ~std::uint64_t{0}});
      spec.action = "_drop";
      ctx.add_entry("block", spec);
      flow.blocked = true;
      if (state->on_block) state->on_block(src, ctx.now());
    }
  };
}

void install_dos_routes(agent::ReactionContext& ctx, int egress_ports) {
  expects(egress_ports > 0, "install_dos_routes: need at least one port");
  for (std::uint32_t i = 0; i < 64; ++i) {
    p4::EntrySpec spec;
    spec.key.push_back(p4::MatchValue{0xc0a80000u + i, mask_for_width(32)});
    spec.action = "set_egress";
    spec.action_args = {1 + (i % static_cast<std::uint32_t>(egress_ports))};
    ctx.add_entry("route", spec);
  }
}

}  // namespace mantis::apps
