// User-entry expansion and per-table runtime state.
//
// Users (and reactions) operate on a table's *original* key/action space —
// the reads and actions declared in the .p4r source. The compiler may have
// expanded that space (alt columns, selector columns, action specialization,
// the vv version column); this module maps a user-level EntrySpec to the set
// of concrete entries the transformed table needs (paper §4.1's entry
// formula) and tracks the installed handles of both vv copies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compile/bindings.hpp"
#include "p4/ir.hpp"
#include "sim/table_state.hpp"

namespace mantis::agent {

/// Stable identifier for a user-level entry on one table.
using UserEntryId = std::uint64_t;

/// Alternative counts per malleable field, needed to enumerate expansions.
using AltCounts = std::map<std::string, std::size_t>;

/// Expands a user-level entry into the concrete entries to install.
/// `user` has one MatchValue per *original* read and names an *original*
/// action. `vv` selects the version-bit value (nullopt for non-malleable
/// tables). Every concrete entry carries the user's priority.
std::vector<p4::EntrySpec> expand_user_entry(const compile::TableInfo& info,
                                             const AltCounts& alts,
                                             const p4::EntrySpec& user,
                                             std::optional<int> vv);

/// Runtime bookkeeping for one user table.
struct TableRuntime {
  struct UserEntry {
    p4::EntrySpec user_spec;
    /// Concrete handles per vv value; non-malleable tables use only [0].
    std::vector<sim::EntryHandle> handles[2];
    /// Set while a buffered delete awaits commit/mirror, so reactions read
    /// their own writes (find/count skip flagged entries).
    bool pending_delete = false;
  };

  const compile::TableInfo* info = nullptr;
  AltCounts alts;
  std::map<UserEntryId, UserEntry> entries;
  UserEntryId next_id = 1;

  std::optional<UserEntryId> find_by_key(const std::vector<p4::MatchValue>& key) const;
};

}  // namespace mantis::agent
