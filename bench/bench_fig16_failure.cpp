// Figure 16: time to detect a (gray) link failure, install recomputed
// routes, and — new with the src/net fabric — *restore actual end-to-end
// delivery* over the alternate path.
//
// Every trial runs the full multi-switch scenario: a 2-leaf/2-spine fabric,
// one Mantis agent per switch, link-local heartbeats on the real
// (faultable) links, and a FaultInjector degrading the link the sender's
// traffic crosses. Reaction time is measured at the receiving host (first
// run of consecutive post-fault sequence numbers), not from the reaction's
// own bookkeeping.
//
//  16a — restoration time vs dialogue pacing. Four busy-looping agents
//        interleave on the shared virtual clock (~15us iterations), so an
//        agent's pacing sleep is hidden until it exceeds the other agents'
//        combined iteration time (~45us); the sweep therefore spans
//        {0, 25, 50, 100}us rather than the single-switch {0, 10, 25, 50}.
//  16b — restoration time vs eta (the delivery expectation), plus the
//        other side of the tradeoff: spurious detections on healthy links
//        with 15% ambient stochastic loss (real seeded per-link drop
//        processes, no injected fault).
// Context row: a traditional control plane polling counters at 10ms.
#include "bench_util.hpp"
#include "net/scenarios.hpp"

namespace {

using namespace mantis;

struct TrialResult {
  Samples reaction_us;
  int unrestored = 0;
};

/// `trials` full fail-detect-reroute-redeliver cycles. The fault lands at a
/// random phase within one dialogue cycle (paper: Fig 16a's variance comes
/// from where in the first T_d window the failure hits).
TrialResult run_trials(int trials, Duration pacing, double eta,
                       double fault_loss = 1.0) {
  TrialResult out;
  for (int trial = 0; trial < trials; ++trial) {
    net::GrayScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(trial) * 101 + 7;
    cfg.pacing = pacing;
    cfg.gf.eta = eta;
    cfg.fault_loss = fault_loss;
    // Four agents x ~15us iterations serialize on the shared clock; one
    // dialogue cycle is max(4 * iter, iter + pacing).
    const Duration cycle = std::max<Duration>(60 * kMicrosecond,
                                              15 * kMicrosecond + pacing);
    Rng phase_rng(static_cast<std::uint64_t>(trial) + 1);
    cfg.fault_at = 120 * kMicrosecond +
                   static_cast<Duration>(phase_rng.uniform(
                       static_cast<std::uint64_t>(cycle)));
    cfg.run_until = cfg.fault_at + 8 * cycle + 200 * kMicrosecond;

    net::GrayFabricScenario scenario(cfg);
    const auto res = scenario.run();
    if (res.restored()) {
      out.reaction_us.add(to_us(res.restoration_latency()));
    } else {
      ++out.unrestored;
    }
  }
  return out;
}

/// Healthy-but-lossy links, no injected fault (paper: "a high eta will
/// demand a more reliable link and catch failures faster and a low eta will
/// allow for more outliers"): counts trials where any switch spuriously
/// declares a port down.
double false_positive_rate(double eta, double link_loss, int trials) {
  int spurious = 0;
  for (int trial = 0; trial < trials; ++trial) {
    net::GrayScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(trial) * 31 + 3;
    cfg.inject_fault = false;
    cfg.link.loss = link_loss;  // ambient seeded drop process on every link
    cfg.gf.eta = eta;
    cfg.run_until = 500 * kMicrosecond;
    net::GrayFabricScenario scenario(cfg);
    const auto res = scenario.run();
    for (const auto& e : res.events) {
      if (e.find(" detect ") != std::string::npos) {
        ++spurious;
        break;
      }
    }
  }
  return static_cast<double>(spurious) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("fig16_failure", argc, argv);
  report.params().set("trials", std::int64_t{16});
  report.params().set("fabric", "leaf_spine_2x2");
  bench::print_header(
      "Figure 16a: end-to-end delivery restoration vs dialogue pacing "
      "(2x2 fabric, 4 agents, eta=0.5, Ts=1us, 16 trials each)");
  bench::print_row({"pacing_us", "mean_us", "p5_us", "p95_us", "unrestored"});
  for (const Duration pacing_us : {0, 25, 50, 100}) {
    const auto r = run_trials(16, pacing_us * kMicrosecond, 0.5);
    bench::print_row({std::to_string(pacing_us),
                      bench::fmt(r.reaction_us.mean(), 1),
                      bench::fmt(r.reaction_us.percentile(5), 1),
                      bench::fmt(r.reaction_us.percentile(95), 1),
                      std::to_string(r.unrestored)});
    const std::string key = "fig16a.pacing_us" + std::to_string(pacing_us);
    report.set(key + ".mean_us", r.reaction_us.mean());
    report.set(key + ".p5_us", r.reaction_us.percentile(5));
    report.set(key + ".p95_us", r.reaction_us.percentile(95));
  }

  bench::print_header(
      "Figure 16b: restoration time vs eta (busy loop, 16 trials)");
  bench::print_row({"eta", "mean_us", "p5_us", "p95_us"});
  for (const double eta : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    const auto r = run_trials(16, 0, eta);
    bench::print_row({bench::fmt(eta, 2), bench::fmt(r.reaction_us.mean(), 1),
                      bench::fmt(r.reaction_us.percentile(5), 1),
                      bench::fmt(r.reaction_us.percentile(95), 1)});
    const std::string key = "fig16b.eta" + bench::fmt(eta, 2);
    report.set(key + ".mean_us", r.reaction_us.mean());
    report.set(key + ".p5_us", r.reaction_us.percentile(5));
    report.set(key + ".p95_us", r.reaction_us.percentile(95));
  }

  bench::print_header(
      "Figure 16b companion: spurious-detection rate across the fabric with "
      "15% ambient link loss, no fault (8 trials x 500us)");
  bench::print_row({"eta", "false_positive_rate"});
  for (const double eta : {0.5, 0.7, 0.8, 0.9}) {
    const double fp = false_positive_rate(eta, 0.15, 8);
    bench::print_row({bench::fmt(eta, 2), bench::fmt(fp, 2)});
    report.set("fp_rate.eta" + bench::fmt(eta, 2), fp);
  }

  std::printf(
      "\nContext: a traditional control plane polling counters at 10ms would\n"
      "need >= 20ms for two below-threshold windows plus route pushes\n"
      "(paper: 10s of ms detection + ms rerouting). Restoration here is\n"
      "measured at the receiving host: the first run of consecutive\n"
      "post-fault sequence numbers arriving over the alternate spine.\n");
  report.write();
  return 0;
}
