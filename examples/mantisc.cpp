// mantisc: the Mantis compiler as a command-line tool.
//
// Reads a .p4r file and writes the two artifacts of paper Fig 2 next to it:
//   <name>.p4   — the valid-but-malleable P4-14 program
//   <name>.c    — the reaction library skeleton
// plus a summary of bindings (init-table layout, expansions, measurement
// registers) and the RMT stage allocation.
//
//   $ ./example_mantisc program.p4r
//   $ ./example_mantisc --demo          # compiles the built-in Figure 1
//   $ ./example_mantisc --demo --trace t.json --metrics m.json
//
// --trace / --metrics export host-side compile telemetry: wall-clock spans
// per compiler phase (Chrome trace_event JSON) and a metrics snapshot with
// artifact sizes (docs/TELEMETRY.md). mantisc has no simulation, so the
// tracer times against wall clock.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/dos_mitigation.hpp"
#include "compile/compiler.hpp"
#include "p4/alloc/stage_alloc.hpp"
#include "p4/json.hpp"
#include "p4/resources.hpp"
#include "telemetry/telemetry.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw mantis::UserError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

void summarize(const mantis::compile::Artifacts& art) {
  using namespace mantis;
  std::printf("\n-- init tables --\n");
  for (const auto& init : art.bindings.init_tables) {
    std::printf("  %s%s:", init.table.c_str(), init.master ? " (master)" : "");
    for (const auto& p : init.params) std::printf(" %s", p.c_str());
    std::printf("\n");
  }
  std::printf("-- malleable scalars --\n");
  for (const auto& [name, slot] : art.bindings.scalars) {
    std::printf("  %-20s %s, width %u, init %llu%s\n", name.c_str(),
                slot.is_selector ? "field-selector" : "value", slot.width,
                static_cast<unsigned long long>(slot.init_value),
                slot.is_selector
                    ? (" (" + std::to_string(slot.alt_count) + " alts)").c_str()
                    : "");
  }
  std::printf("-- user tables --\n");
  for (const auto& [name, info] : art.bindings.tables) {
    std::printf("  %-20s %s, %zu cols, expansion x%zu%s\n", name.c_str(),
                info.malleable ? "malleable" : "plain", info.total_cols,
                info.expansion_product,
                info.vv_col >= 0 ? ", vv column" : "");
  }
  std::printf("-- reactions --\n");
  for (const auto& rx : art.bindings.reactions) {
    std::printf("  %-20s %zu field params, %zu register params, %zu measure "
                "registers\n",
                rx.name.c_str(), rx.fields.size(), rx.regs.size(),
                rx.measure_regs.size());
  }

  const auto stages = p4::allocate_program_stages(art.prog);
  const auto res = p4::compute_resources(art.prog);
  std::printf("-- resources --\n");
  std::printf("  stages: %d ingress + %d egress; tables: %zu; registers: %zu\n",
              stages.ingress, stages.egress, res.num_tables, res.num_registers);
  std::printf("  SRAM: %llu KB, TCAM: %llu B, metadata: %llu bits\n",
              static_cast<unsigned long long>(res.total_sram_bytes() / 1024),
              static_cast<unsigned long long>(res.total_tcam_bytes()),
              static_cast<unsigned long long>(res.metadata_bits));
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (input.empty()) {
      input = argv[i];
    } else {
      input.clear();
      break;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: %s <file.p4r> | --demo [--trace <out.json>] "
                 "[--metrics <out.json>]\n",
                 argv[0]);
    return 2;
  }
  try {
    using mantis::telemetry::Track;
    // Standalone bundle: no event loop, so spans time against wall clock.
    mantis::telemetry::Telemetry tel;
    if (!trace_path.empty()) tel.tracer().set_enabled(true);
    auto& tracer = tel.tracer();

    std::string source;
    std::string stem;
    if (input == "--demo") {
      source = mantis::apps::dos_p4r_source();
      stem = "dos_demo";
      std::printf("compiling the built-in DoS-mitigation use case\n");
    } else {
      MANTIS_SPAN(tracer, "mantisc.read_source", "host", Track::kHost);
      source = read_file(input);
      stem = input;
      if (const auto dot = stem.rfind(".p4r"); dot != std::string::npos) {
        stem = stem.substr(0, dot);
      }
    }

    mantis::compile::Artifacts art;
    {
      MANTIS_SPAN(tracer, "mantisc.compile", "host", Track::kHost,
                  "source_bytes", static_cast<std::int64_t>(source.size()));
      art = mantis::compile::compile_source(source);
    }
    {
      MANTIS_SPAN(tracer, "mantisc.write_artifacts", "host", Track::kHost);
      write_file(stem + ".p4", art.p4_source);
      write_file(stem + ".c", art.c_source);
      write_file(stem + ".json", mantis::p4::emit_json(art.prog));
    }
    {
      MANTIS_SPAN(tracer, "mantisc.summarize", "host", Track::kHost);
      summarize(art);
    }

    auto& m = tel.metrics();
    m.counter("mantisc.source_bytes").add(source.size());
    m.counter("mantisc.p4_bytes").add(art.p4_source.size());
    m.counter("mantisc.c_bytes").add(art.c_source.size());
    m.counter("mantisc.reactions").add(art.reactions.size());
    m.counter("mantisc.init_tables").add(art.bindings.init_tables.size());
    if (!trace_path.empty()) {
      tel.write_trace_json(trace_path);
      std::printf("trace: %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      mantis::telemetry::ReportParams params;
      params.set("input", input);
      tel.write_metrics_json(metrics_path, "mantisc", params);
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mantisc: %s\n", e.what());
    return 1;
  }
}
