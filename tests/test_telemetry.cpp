// Tests for src/telemetry: metrics (histograms with P² streaming quantiles),
// the virtual-time tracer (ring buffer, spans, instants), the Chrome trace
// exporter, and the full-stack integration (a dialogue iteration produces
// the §6 phase spans in causal virtual-time order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace mantis {
namespace {

using telemetry::Histogram;
using telemetry::HistogramOptions;
using telemetry::MetricsRegistry;
using telemetry::TraceEvent;
using telemetry::Tracer;
using telemetry::Track;

// Cheap well-formedness: braces/brackets balance outside string literals.
void expect_balanced_json(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// ---------------------------------------------------------------------------
// P² streaming quantiles
// ---------------------------------------------------------------------------

TEST(P2Quantile, SmallSampleIsExact) {
  P2Quantile q(0.5);
  for (const double v : {5.0, 1.0, 3.0}) q.add(v);
  EXPECT_EQ(q.count(), 3u);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // exact median of {1,3,5}
}

TEST(P2Quantile, BootstrapMatchesExactOrderStatistics) {
  // Below 5 samples P² has no markers yet; value() must fall back to the
  // exact interpolated order statistic — pinned here against Samples, the
  // batch implementation benches report from.
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const std::vector<double> stream = {40.0, 10.0, 30.0, 20.0};
    P2Quantile est(q);
    Samples exact;
    for (std::size_t n = 0; n < stream.size(); ++n) {
      est.add(stream[n]);
      exact.add(stream[n]);
      EXPECT_DOUBLE_EQ(est.value(), exact.percentile(q * 100.0))
          << "q=" << q << " n=" << n + 1;
    }
  }
  EXPECT_THROW(P2Quantile(0.5).value(), PreconditionError);
}

TEST(P2Quantile, TracksUniformMedianClosely) {
  Rng rng(42);
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 20'000; ++i) {
    const double v = static_cast<double>(rng.uniform(1'000'000));
    p50.add(v);
    p90.add(v);
    p99.add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  auto exact = [&](double q) { return all[static_cast<std::size_t>(q * (all.size() - 1))]; };
  // P² on a uniform distribution stays within ~2% of the exact quantile.
  EXPECT_NEAR(p50.value(), exact(0.5), 0.02 * 1e6);
  EXPECT_NEAR(p90.value(), exact(0.9), 0.02 * 1e6);
  EXPECT_NEAR(p99.value(), exact(0.99), 0.02 * 1e6);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketsCountGeometrically) {
  HistogramOptions opts;
  opts.first_bucket = 10;  // bounds: 10, 20, 40, 80
  opts.buckets = 4;
  Histogram h(opts);
  h.record(5);    // <= 10
  h.record(10);   // <= 10 (bounds are inclusive upper)
  h.record(15);   // <= 20
  h.record(70);   // <= 80
  h.record(1e9);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);  // overflow slot
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(3), 80.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), 5.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 1e9);
}

TEST(Histogram, StreamingQuantilesMatchRawWithinTolerance) {
  HistogramOptions streaming;
  HistogramOptions raw_opts;
  raw_opts.keep_raw = true;
  Histogram stream(streaming), raw(raw_opts);
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    // Bimodal: the dialogue-latency shape (fast clean iterations + slow
    // update-heavy ones).
    const double v = (i % 4 == 0) ? 40'000.0 + static_cast<double>(rng.uniform(5'000))
                                  : 10'000.0 + static_cast<double>(rng.uniform(2'000));
    stream.record(v);
    raw.record(v);
  }
  EXPECT_NEAR(stream.quantile(0.5), raw.quantile(0.5), 0.05 * raw.quantile(0.5));
  EXPECT_NEAR(stream.quantile(0.99), raw.quantile(0.99),
              0.05 * raw.quantile(0.99));
}

TEST(Histogram, KeepRawGivesExactPercentilesAndView) {
  HistogramOptions opts;
  opts.keep_raw = true;
  Histogram h(opts);
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.raw().count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), h.raw().median());
  EXPECT_THROW(Histogram().raw(), PreconditionError);
}

TEST(MetricsRegistry, GetOrCreateAndKindConflicts) {
  MetricsRegistry reg;
  auto& c = reg.counter("x.ops");
  c.add(3);
  EXPECT_EQ(&reg.counter("x.ops"), &c);  // stable pointer
  EXPECT_EQ(reg.counter("x.ops").value(), 3u);
  EXPECT_THROW(reg.gauge("x.ops"), PreconditionError);
  EXPECT_THROW(reg.histogram("x.ops"), PreconditionError);
  EXPECT_EQ(reg.find_counter("x.ops")->value(), 3u);
  EXPECT_EQ(reg.find_gauge("x.ops"), nullptr);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("b.depth").set(3.25);
  auto& h = reg.histogram("c.latency_ns");
  for (int i = 0; i < 100; ++i) h.record(1000.0 * i);
  const auto json = reg.snapshot_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  telemetry::ReportParams params;
  params.set("trials", std::int64_t{16});
  params.set("label", "a \"quoted\" name");
  const auto report = telemetry::report_json("unit_test", params, reg);
  expect_balanced_json(report);
  EXPECT_NE(report.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(report.find("\"trials\": 16"), std::string::npos);
  EXPECT_NE(report.find("a \\\"quoted\\\" name"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer ring buffer
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  Tracer t;
  t.complete("x", "c", Track::kAgent, 0, 10);
  t.instant("y", "c", Track::kAgent, 5);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, RingBufferWrapsOldestFirst) {
  Tracer t(8);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    t.complete("ev", "c", Track::kAgent, i * 100, i * 100 + 50, "i", i);
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest retained is #12; order is strictly oldest -> newest.
  for (std::size_t k = 0; k < evs.size(); ++k) {
    EXPECT_EQ(evs[k].arg, static_cast<std::int64_t>(12 + k));
    EXPECT_EQ(evs[k].vt_begin, static_cast<Time>((12 + k) * 100));
    EXPECT_EQ(evs[k].vt_dur, 50);
  }
}

TEST(Tracer, ScopedSpanUsesInstalledClock) {
  Tracer t;
  Time now = 1000;
  t.set_clock([&now] { return now; });
  t.set_enabled(true);
  {
    telemetry::ScopedSpan span(t, "work", "c", Track::kHost);
    now = 1750;
  }
  ASSERT_EQ(t.size(), 1u);
  const auto evs = t.events();
  EXPECT_EQ(evs[0].vt_begin, 1000);
  EXPECT_EQ(evs[0].vt_dur, 750);
  EXPECT_EQ(evs[0].phase, TraceEvent::Phase::kComplete);
}

TEST(Tracer, FlowEventsSurviveRingWraparound) {
  Tracer t(4);
  t.set_enabled(true);
  // 3 complete flows + 1 dangling start = 10 events through a 4-slot ring.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    t.flow(TraceEvent::Phase::kFlowStart, "rx", "prov", Track::kAgent,
           id * 100, id);
    t.flow(TraceEvent::Phase::kFlowStep, "rx", "prov", Track::kDriverChannel,
           id * 100 + 10, id);
    t.flow(TraceEvent::Phase::kFlowEnd, "rx", "prov", Track::kSwitch,
           id * 100 + 20, id);
  }
  t.flow(TraceEvent::Phase::kFlowStart, "rx", "prov", Track::kAgent, 999, 4);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.size(), 4u);
  const auto evs = t.events();
  // Oldest retained is flow 3's start; order stays oldest -> newest.
  EXPECT_EQ(evs.front().flow_id, 3u);
  EXPECT_EQ(evs.front().phase, TraceEvent::Phase::kFlowStart);
  EXPECT_EQ(evs.back().flow_id, 4u);
  for (const auto& e : evs) EXPECT_TRUE(e.is_flow());
}

TEST(Tracer, ClearAndCapacityReset) {
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 6; ++i) t.instant("i", "c", Track::kSwitch, i);
  EXPECT_EQ(t.size(), 4u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  t.set_capacity(2);
  t.set_enabled(true);
  for (int i = 0; i < 3; ++i) t.instant("i", "c", Track::kSwitch, i);
  EXPECT_EQ(t.size(), 2u);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmitsWellFormedJsonWithTrackNames) {
  Tracer t;
  t.set_enabled(true);
  t.complete("span \"a\"", "cat", Track::kAgent, 1000, 3500, "n", 4);
  t.instant("mark", "cat", Track::kTrafficManager, 2000);
  const auto json = telemetry::chrome_trace_json(t);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"agent\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic_manager\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // ts/dur are microseconds: 1000ns begin -> 1.000us, 2500ns dur -> 2.500us.
  EXPECT_NE(json.find("\"ts\": 1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos);
  EXPECT_NE(json.find("span \\\"a\\\""), std::string::npos);
}

TEST(ChromeTrace, FlowEventsExportWithSharedIdAndBindingPoint) {
  Tracer t;
  t.set_enabled(true);
  t.flow(TraceEvent::Phase::kFlowStart, "rx", "prov", Track::kAgent, 1000, 42);
  t.flow(TraceEvent::Phase::kFlowStep, "rx", "prov", Track::kDriverChannel,
         2000, 42);
  t.flow(TraceEvent::Phase::kFlowEnd, "rx", "prov", Track::kSwitch, 3000, 42);
  const auto json = telemetry::chrome_trace_json(t);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 42"), std::string::npos);
  // The flow end binds to the enclosing slice ("bp":"e") per the trace spec.
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(ChromeTrace, DanglingFlowStartStaysWellFormed) {
  // A flow whose end was overwritten by ring wraparound (or never recorded —
  // e.g. no packet matched before the dump) must still export as valid JSON.
  Tracer t;
  t.set_enabled(true);
  t.flow(TraceEvent::Phase::kFlowStart, "rx", "prov", Track::kAgent, 100, 7);
  t.flow(TraceEvent::Phase::kFlowStep, "rx", "prov", Track::kDriverChannel,
         200, 7);
  const auto json = telemetry::chrome_trace_json(t);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"f\""), std::string::npos);

  // The converse — an end whose start fell out of the ring — as well.
  Tracer t2;
  t2.set_enabled(true);
  t2.flow(TraceEvent::Phase::kFlowEnd, "rx", "prov", Track::kSwitch, 300, 8);
  expect_balanced_json(telemetry::chrome_trace_json(t2));
}

// ---------------------------------------------------------------------------
// Full-stack integration
// ---------------------------------------------------------------------------

#if MANTIS_TELEMETRY_ENABLED
TEST(TelemetryIntegration, DialogueIterationEmitsPhaseSpansInCausalOrder) {
  test::Stack stack(test::figure1_style_source());
  stack.loop.telemetry().tracer().set_enabled(true);
  stack.agent->run_prologue();
  stack.loop.telemetry().tracer().clear();  // isolate one iteration
  stack.agent->dialogue_iteration();

  const auto evs = stack.loop.telemetry().tracer().events();
  const std::vector<std::string> phases = {
      "dialogue.mv_flip", "dialogue.measure", "dialogue.react",
      "dialogue.vv_commit", "dialogue.shadow_fill"};
  Time prev_end = -1;
  for (const auto& name : phases) {
    const auto it = std::find_if(evs.begin(), evs.end(), [&](const TraceEvent& e) {
      return name == e.name;
    });
    ASSERT_NE(it, evs.end()) << "missing span " << name;
    EXPECT_EQ(it->track, Track::kAgent);
    EXPECT_GE(it->vt_dur, 0) << name;
    // Causal order: each phase begins no earlier than the previous ended.
    // (prepare sits between react and vv_commit; the five named phases are
    // still monotone.)
    EXPECT_GE(it->vt_begin, prev_end) << name;
    prev_end = it->vt_begin + it->vt_dur;
  }

  // The enclosing iteration span covers all five phases.
  const auto iter = std::find_if(evs.begin(), evs.end(), [](const TraceEvent& e) {
    return std::string("dialogue.iteration") == e.name;
  });
  ASSERT_NE(iter, evs.end());
  EXPECT_GE(prev_end, iter->vt_begin);
  EXPECT_LE(prev_end, iter->vt_begin + iter->vt_dur);

  // Driver-channel occupancy spans ride along on their own track.
  EXPECT_TRUE(std::any_of(evs.begin(), evs.end(), [](const TraceEvent& e) {
    return e.track == Track::kDriverChannel;
  }));
}
#endif  // MANTIS_TELEMETRY_ENABLED

TEST(TelemetryIntegration, AgentAccessorsAreViewsOverRegistry) {
  test::Stack stack(test::figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->run_dialogue(5);

  const auto& m = stack.loop.telemetry().metrics();
  const auto* iters = m.find_counter("agent.dialogue.iterations");
  const auto* busy = m.find_counter("agent.dialogue.busy_ns");
  const auto* hist = m.find_histogram("agent.dialogue.iteration_ns");
  ASSERT_NE(iters, nullptr);
  ASSERT_NE(busy, nullptr);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(stack.agent->iterations(), iters->value());
  EXPECT_EQ(stack.agent->iterations(), 5u);
  EXPECT_EQ(static_cast<std::uint64_t>(stack.agent->busy_time()), busy->value());
  EXPECT_EQ(stack.agent->iteration_latencies().count(), hist->raw().count());
  EXPECT_EQ(hist->count(), 5u);

  // Phase histograms account for every iteration too.
  for (const char* name :
       {"agent.phase.mv_flip_ns", "agent.phase.measure_ns",
        "agent.phase.react_ns", "agent.phase.update_ns"}) {
    const auto* ph = m.find_histogram(name);
    ASSERT_NE(ph, nullptr) << name;
    EXPECT_EQ(ph->count(), 5u) << name;
  }

  // Driver/switch instrumentation registered under the same registry.
  EXPECT_NE(m.find_counter("driver.channel.ops"), nullptr);
  EXPECT_NE(m.find_histogram("driver.channel.occupancy_ns"), nullptr);
}

TEST(TelemetryIntegration, MetricsSnapshotExportsDialogueLatency) {
  test::Stack stack(test::figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->run_dialogue(3);
  const auto json = stack.loop.telemetry().metrics().snapshot_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"agent.dialogue.iteration_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"driver.channel.occupancy_ns\""), std::string::npos);
}

}  // namespace
}  // namespace mantis
