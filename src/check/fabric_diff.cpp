#include "check/fabric_diff.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "apps/gray_failure.hpp"
#include "compile/compiler.hpp"
#include "int/int_fabric.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "sim/event_loop.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace mantis::check {
namespace {

/// Everything the determinism contract promises is engine-independent.
struct Signature {
  std::string metrics;
  std::string fault_log;
  std::string link_stats;
  std::string mfr;
  std::string int_stream;  ///< rendered sink reports, collector order
};

std::string link_stats_text(net::Fabric& fabric) {
  std::ostringstream os;
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    net::Link& l = fabric.link(i);
    for (int dir = 0; dir < 2; ++dir) {
      const auto& s = l.dir_stats(dir);
      os << l.name() << (dir == 0 ? " ab " : " ba ") << s.tx_pkts << ' '
         << s.tx_bytes << ' ' << s.delivered_pkts << ' ' << s.dropped_pkts
         << ' ' << s.busy_ns << ' ' << s.int_pkts << ' ' << s.int_bytes
         << '\n';
    }
  }
  os << "host_tx=" << fabric.stats().host_tx_pkts.load()
     << " host_rx=" << fabric.stats().host_rx_pkts.load()
     << " unwired=" << fabric.stats().unwired_tx_pkts.load() << '\n';
  return os.str();
}

Signature run_one(const FabricScenarioSpec& spec, const p4::Program& prog,
                  int threads) {
  sim::EventLoop loop;

  net::FabricConfig fc;
  fc.base_seed = spec.seed;
  fc.default_link.loss = spec.ambient_loss;
  fc.default_link.propagation = spec.propagation;
  net::Topology topo =
      spec.topo == FabricScenarioSpec::Topo::kLeafSpine
          ? net::Topology::leaf_spine(spec.leaves, spec.spines, 1)
      : spec.topo == FabricScenarioSpec::Topo::kRing
          ? net::Topology::ring(spec.switches, 1)
          // 3-tier Clos: P pods x (2 leaves + 2 aggs) + 2P cores. Covers
          // multi-hop cross-shard chains (leaf->agg->core->agg->leaf) the
          // two-tier topologies never produce.
          : net::Topology::clos(spec.clos_pods, 2, 2, 2 * spec.clos_pods, 1);
  net::Fabric fabric(loop, prog, std::move(topo), fc);

  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    const auto& l = fabric.topo().links[i];
    if (!fabric.topo().is_switch(l.a) || !fabric.topo().is_switch(l.b))
      continue;
    auto make = [&fabric] {
      auto pkt = fabric.factory().make(64);
      fabric.factory().set(pkt, "ipv4.protocol", 253);
      return pkt;
    };
    fabric.start_periodic(l.a, l.b, spec.period_ab, spec.horizon, make);
    fabric.start_periodic(l.b, l.a, spec.period_ba, spec.horizon, make);
  }

  std::unique_ptr<int_tel::IntFabric> int_fabric;
  if (spec.int_enabled) {
    int_fabric = std::make_unique<int_tel::IntFabric>(fabric);
    if (spec.int_probe_period > 0) {
      int_fabric->start_probes(spec.int_probe_period, spec.horizon);
    }
  }

  net::FaultInjector inj(fabric);
  for (const auto& f : spec.faults) {
    net::FaultSpec fs;
    fs.kind = static_cast<net::FaultSpec::Kind>(f.kind);
    fs.link = f.link;
    fs.direction = f.direction;
    fs.at = f.at;
    fs.duration = f.duration;
    fs.loss = f.loss;
    fs.extra_latency = f.extra_latency;
    fs.flap_period = f.flap_period;
    inj.schedule(fs);
  }

  if (threads > 1) {
    net::ParallelFabricEngine engine(fabric, threads);
    engine.run_until(spec.horizon);
  } else {
    loop.run_until(spec.horizon);
  }
  fabric.sample_telemetry();

  Signature sig;
  sig.metrics = loop.telemetry().metrics().snapshot_json();
  std::string log;
  for (const auto& line : inj.log()) {
    log += line;
    log += '\n';
  }
  sig.fault_log = std::move(log);
  sig.link_stats = link_stats_text(fabric);
  sig.mfr = loop.telemetry().recorder().dump_text(loop.now(), "fabric-diff");
  if (int_fabric) {
    std::size_t cursor = 0;
    for (const auto* rep : int_fabric->collector().poll(cursor)) {
      sig.int_stream += rep->render();
      sig.int_stream += '\n';
    }
  }
  return sig;
}

/// First differing line of two newline-joined blobs, for the report.
std::string first_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return "identical";
    if (la != lb || ga != gb) {
      return "line " + std::to_string(line) + ": seq=\"" +
             (ga ? la : "<eof>") + "\" par=\"" + (gb ? lb : "<eof>") + "\"";
    }
  }
}

}  // namespace

std::string FabricScenarioSpec::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " topo=";
  if (topo == Topo::kLeafSpine) {
    os << "leaf_spine(" << leaves << "," << spines << ")";
  } else if (topo == Topo::kRing) {
    os << "ring(" << switches << ")";
  } else {
    os << "clos(" << clos_pods << ",2,2," << 2 * clos_pods << ",1)";
  }
  os << " loss=" << ambient_loss << " prop=" << propagation
     << " periods=" << period_ab << "/" << period_ba
     << " faults=" << faults.size() << " horizon=" << horizon
     << " threads=" << threads;
  if (int_enabled) os << " int_probe=" << int_probe_period;
  return os.str();
}

FabricScenarioSpec generate_fabric_scenario(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FabricScenarioSpec spec;
  spec.seed = seed;

  const std::uint64_t topo_pick = rng.uniform(3);
  if (topo_pick == 0) {
    spec.topo = FabricScenarioSpec::Topo::kLeafSpine;
    spec.leaves = static_cast<int>(rng.uniform_range(2, 4));
    spec.spines = static_cast<int>(rng.uniform_range(2, 4));
  } else if (topo_pick == 1) {
    spec.topo = FabricScenarioSpec::Topo::kRing;
    spec.switches = static_cast<int>(rng.uniform_range(3, 8));
  } else {
    spec.topo = FabricScenarioSpec::Topo::kClos;
    spec.clos_pods = static_cast<int>(rng.uniform_range(2, 3));
  }
  spec.ambient_loss = rng.chance(0.5) ? rng.uniform01() * 0.1 : 0.0;
  spec.propagation = static_cast<Duration>(rng.uniform_range(100, 2000));
  spec.period_ab = static_cast<Duration>(rng.uniform_range(200, 1500));
  spec.period_ba = static_cast<Duration>(rng.uniform_range(200, 1500));
  spec.horizon =
      static_cast<Time>(rng.uniform_range(20, 60)) * kMicrosecond;
  spec.threads = static_cast<int>(std::uint64_t{2}
                                  << rng.uniform_range(0, 2));  // 2/4/8
  if (rng.chance(0.4)) {
    spec.int_enabled = true;
    spec.int_probe_period =
        static_cast<Duration>(rng.uniform_range(500, 3000));
  }

  const int num_links =
      spec.topo == FabricScenarioSpec::Topo::kLeafSpine
          ? spec.leaves * spec.spines + spec.leaves  // + host uplinks
      : spec.topo == FabricScenarioSpec::Topo::kRing
          ? 2 * spec.switches
          // clos(P,2,2,2P,1): P*L*A leaf-agg + P*C agg-core + 2P leaf-host.
          : 4 * spec.clos_pods + 2 * spec.clos_pods * spec.clos_pods +
                2 * spec.clos_pods;
  const std::uint64_t num_faults = rng.uniform_range(0, 3);
  for (std::uint64_t i = 0; i < num_faults; ++i) {
    FabricScenarioSpec::Fault f;
    f.kind = static_cast<int>(rng.uniform(4));
    f.link = rng.uniform(static_cast<std::uint64_t>(num_links));
    f.direction = static_cast<int>(rng.uniform(3)) - 1;  // -1/0/1
    f.at = static_cast<Time>(
        rng.uniform_range(1, static_cast<std::uint64_t>(
                                 spec.horizon / kMicrosecond - 5))) *
           kMicrosecond;
    f.duration = static_cast<Duration>(rng.uniform_range(5, 20)) *
                 kMicrosecond;
    f.loss = 0.2 + rng.uniform01() * 0.8;
    f.extra_latency =
        static_cast<Duration>(rng.uniform_range(1, 5)) * kMicrosecond;
    f.flap_period =
        static_cast<Duration>(rng.uniform_range(2, 6)) * kMicrosecond;
    spec.faults.push_back(f);
  }
  return spec;
}

FabricDiffResult run_fabric_diff(const FabricScenarioSpec& spec,
                                 telemetry::MetricsRegistry* metrics) {
  // One shared program for both runs (compilation is deterministic, but
  // sharing removes it from the comparison entirely).
  const auto artifacts =
      compile::compile_source(apps::gray_failure_p4r_source());

  const Signature seq = run_one(spec, artifacts.prog, 1);
  const Signature par = run_one(spec, artifacts.prog, spec.threads);

  FabricDiffResult r;
  const auto check = [&](const char* surface, const std::string& a,
                         const std::string& b) {
    if (a == b) return;
    r.diverged = true;
    r.divergences.push_back(std::string(surface) + ": " + first_diff(a, b));
  };
  check("metrics", seq.metrics, par.metrics);
  check("fault-log", seq.fault_log, par.fault_log);
  check("link-stats", seq.link_stats, par.link_stats);
  check("flight-recorder", seq.mfr, par.mfr);
  check("int-reports", seq.int_stream, par.int_stream);

  if (metrics != nullptr) {
    metrics->counter("check.fabric.runs").add();
    if (r.diverged) metrics->counter("check.fabric.divergences").add();
  }
  return r;
}

}  // namespace mantis::check
