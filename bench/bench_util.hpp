// Shared helpers for the benchmark/experiment binaries. Each bench binary
// regenerates one table or figure from the paper's evaluation (§8), printing
// paper-style rows computed over virtual time AND writing the same numbers
// as a machine-readable JSON report ({bench, params, metrics}, schema in
// docs/TELEMETRY.md) — default BENCH_<name>.json, overridable with
// `--out <path>`.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "sim/switch.hpp"
#include "telemetry/telemetry.hpp"

namespace mantis::bench {

/// Full stack bundle (mirrors tests/helpers.hpp, duplicated to keep the
/// bench tree self-contained).
struct Stack {
  compile::Artifacts artifacts;
  sim::EventLoop loop;
  std::unique_ptr<sim::Switch> sw;
  std::unique_ptr<driver::Driver> drv;
  std::unique_ptr<agent::Agent> agent;

  explicit Stack(const std::string& p4r_source, sim::SwitchConfig sw_cfg = {},
                 agent::AgentOptions agent_opts = {},
                 driver::DriverOptions drv_opts = {},
                 compile::Options compile_opts = {}) {
    artifacts = compile::compile_source(p4r_source, compile_opts);
    sw = std::make_unique<sim::Switch>(loop, artifacts.prog, sw_cfg);
    drv = std::make_unique<driver::Driver>(*sw, drv_opts);
    agent = std::make_unique<agent::Agent>(*drv, artifacts, agent_opts);
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_us(Duration d) { return fmt(to_us(d), 2); }

/// Machine-readable results for one bench binary: a private MetricsRegistry
/// the figure functions record into (mirroring the rows they print), wrapped
/// in the {bench, params, metrics} report schema on write().
class Report {
 public:
  /// Parses `--out <path>` from argv (consuming nothing; google-benchmark
  /// ignores unknown flags only when told to, so benches pass argc/argv here
  /// BEFORE benchmark::Initialize).
  Report(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)), out_path_("BENCH_" + name_ + ".json") {
    for (int i = 1; argv != nullptr && i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--out") out_path_ = argv[i + 1];
    }
  }

  telemetry::ReportParams& params() { return params_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  /// Shorthand for the common "one figure cell = one number" case.
  void set(const std::string& metric, double value) {
    metrics_.gauge(metric).set(value);
  }
  void count(const std::string& metric, std::uint64_t n) {
    metrics_.counter(metric).add(n);
  }

  const std::string& out_path() const { return out_path_; }

  /// Attaches a hot-path profile (prof::ProfileReport::to_json()); write()
  /// embeds it as the report's "prof" section.
  void set_prof(std::string prof_json) { prof_json_ = std::move(prof_json); }

  void write() const {
    telemetry::write_text_file(
        out_path_,
        telemetry::report_json(name_, params_, metrics_, prof_json_));
    std::printf("\nresults: %s\n", out_path_.c_str());
  }

 private:
  std::string name_;
  std::string out_path_;
  telemetry::ReportParams params_;
  telemetry::MetricsRegistry metrics_;
  std::string prof_json_;
};

/// google-benchmark reporter that mirrors each run into Report gauges
/// ("bm.<name>.real_ns" / ".cpu_ns" / ".items_per_s") while still printing
/// the normal console table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(Report& report) : report_(&report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string base = "bm." + run.benchmark_name();
      report_->set(base + ".real_ns", run.GetAdjustedRealTime());
      report_->set(base + ".cpu_ns", run.GetAdjustedCPUTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_->set(base + ".items_per_s", items->second);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  Report* report_;
};

/// Runs the registered google-benchmark suite, mirroring results into
/// `report`. Call after the figure functions; the caller still owns
/// report.write().
inline void run_benchmarks(int argc, char** argv, Report& report) {
  benchmark::Initialize(&argc, argv);
  CapturingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace mantis::bench
