// Deterministic parallel discrete-event engine for the net::Fabric.
//
// Conservative (lookahead-based) parallel DES: per-switch shards execute
// concurrently inside synchronization rounds bounded by the fabric's
// minimum cross-shard delay — the smallest link propagation plus the 1 ns
// minimum serialization time. Any event one shard schedules onto another
// lands at least that far in the future, so a round of width `lookahead`
// can run every shard's events with no cross-shard communication at all;
// cross-shard deliveries park in per-shard outboxes and re-enter the global
// queue at the round barrier.
//
// Determinism contract (docs/NETWORK.md): for any seed, topology and fault
// schedule, a run with N worker threads is byte-identical to the sequential
// engine — same packet orders, same metrics snapshot, same trace ring, same
// .mfr flight-recorder dumps. Three mechanisms compose to guarantee it:
//   1. canonical event keys (t, src shard, per-src seq) assigned identically
//      by both engines (sim/event_loop.hpp),
//   2. per-shard heaps popping in canonical-key order, with control events
//      executing inline at barriers (they sort first among same-t ties, so
//      lowering the round horizon to the first control event keeps every
//      extracted event strictly earlier),
//   3. order-dependent telemetry sinks deferring into per-shard lanes that
//      merge in canonical order at each barrier (telemetry/shard_lane.hpp).
//
// Shard grouping: canonical tags stay one-per-switch forever (they are part
// of the event keys), but execution shards are GROUPS of switches — a
// datacenter-scale fabric has far more switches than cores, and one heap +
// lane + barrier slot per switch would drown the rounds in bookkeeping.
// The tag -> group map is load-aware (LPT greedy over per-switch weights:
// link degree by default, or measured per-shard event counts from a prior
// profiled run — the PR 9 imbalance telemetry) and purely an execution
// placement: regrouping cannot move an event's canonical key, so any group
// count is byte-identical to any other, threads=1 included.
//
// threads <= 1 is the sequential engine, verbatim: run_until delegates to
// EventLoop::run_until and no worker, lane, or frame machinery exists.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "telemetry/shard_lane.hpp"

namespace mantis::net {

class ParallelFabricEngine {
 public:
  struct Options {
    /// Execution shard groups; 0 = auto (2x threads, capped at the switch
    /// count — enough slack for round-robin workers to average out load).
    int groups = 0;
    /// Per-switch load weights for the LPT assignment (size must equal
    /// fabric.num_shards()); empty = link degree. Feed measured per-shard
    /// event counts from a calibration run via weights_from_profile.
    std::vector<std::uint64_t> weights;
  };

  /// `fabric` must outlive the engine. `threads` is the total worker count
  /// (the calling thread participates, so threads == 2 spawns one helper).
  ParallelFabricEngine(Fabric& fabric, int threads);
  ParallelFabricEngine(Fabric& fabric, int threads, Options options);
  ~ParallelFabricEngine();

  ParallelFabricEngine(const ParallelFabricEngine&) = delete;
  ParallelFabricEngine& operator=(const ParallelFabricEngine&) = delete;

  /// Runs fabric events up to and including `t`, then advances the clock to
  /// exactly `t`. Must be called from the thread that owns the EventLoop
  /// (the same thread every time); nests freely with sequential
  /// EventLoop::run_until calls (driver waits) between invocations.
  void run_until(Time t);

  int threads() const { return threads_; }
  Duration lookahead() const { return lookahead_; }
  std::uint64_t rounds() const { return rounds_; }
  /// Execution shard groups (1 when running sequentially).
  int num_groups() const;
  /// The execution group owning switch tag `tag` (engine must be parallel).
  int group_of(int tag) const;

  /// min over links of (propagation + 1 ns minimum serialization): the
  /// tightest provably-safe synchronization horizon for this fabric.
  static Duration compute_lookahead(Fabric& fabric);

  /// Deterministic LPT (longest-processing-time) greedy: tags sorted by
  /// descending weight (tag ascending among equals), each assigned to the
  /// lightest group so far (lowest id among equals). Returns tag -> group.
  static std::vector<std::int32_t> assign_groups(
      const std::vector<std::uint64_t>& weights, int groups);

  /// Per-switch weights out of a profiled run's per-shard event counts —
  /// usable when the profile was taken with groups == num_shards (e.g. a
  /// short calibration run); empty vector when the cell count differs.
  static std::vector<std::uint64_t> weights_from_profile(
      const telemetry::prof::ProfileReport& report, int num_shards);

 private:
  struct Group {
    int id = 0;
    sim::EventLoop::LocalQueue local;
    std::vector<sim::EventLoop::Event> outbox;
    telemetry::ShardLane lane;
    /// Events executed this round. Written by the owning worker, read and
    /// reset by the main thread after the done_ barrier (that acquire
    /// orders the read after the worker's release increment).
    std::uint64_t executed_round = 0;
  };

  void worker_main(int worker);
  /// Blocks until a round newer than `seen` is published (returns its
  /// number) or stop is requested (returns `seen`). Spins briefly, then
  /// parks on the condition variable.
  std::uint64_t wait_for_round(std::uint64_t seen);
  /// Drains one group's local heap with its ShardFrame + ShardLane
  /// installed. Runs on whichever thread owns the group this round.
  void run_group(Group& group, Time round_end);
  void run_group_range(int worker, Time round_end);

  sim::EventLoop* loop_;
  Fabric* fabric_;
  int threads_;
  Duration lookahead_;
  std::uint64_t rounds_ = 0;
  /// Hot-path profiler (the loop's bundle); shard/round/barrier accounting
  /// keys off this. Wall-clock only — never feeds back into event order.
  telemetry::prof::Profiler* prof_ = nullptr;

  std::vector<std::unique_ptr<Group>> groups_;
  /// tag (switch) -> execution group id; identity-free: only placement.
  std::vector<std::int32_t> group_of_;
  /// Base of the loop's per-tag sequence counter array (ShardFrame).
  std::uint64_t* seq_base_ = nullptr;
  std::vector<telemetry::ShardLane*> lanes_;
  std::vector<sim::EventLoop::Event> extract_buf_;

  // Round handoff: main publishes round_end_ + filled shard heaps, bumps
  // round_seq_ (mutex-guarded counter with an atomic mirror for the spin
  // path), and workers ack through done_.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t round_guard_ = 0;  ///< guarded by mu_
  bool stop_ = false;              ///< guarded by mu_
  std::atomic<std::uint64_t> round_seq_{0};
  std::atomic<bool> stop_flag_{false};
  std::atomic<int> done_{0};
  Time round_end_ = 0;  ///< published before round_seq_ (release) store
};

}  // namespace mantis::net
