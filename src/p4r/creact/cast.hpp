// AST for the C-subset reaction language embedded in `.p4r` files.
//
// The paper compiles reaction bodies with gcc and dlopens the result; here we
// interpret the same language so `.p4r` programs (e.g. Figure 1 verbatim) run
// end-to-end with no toolchain dependency. Native C++ reactions remain
// available through agent::Agent for performance-critical users.
//
// Supported subset: fixed-width integer types (int, bool, intN_t/uintN_t),
// local scalars and fixed-size arrays, `static` persistent variables, full C
// expression grammar over integers (including assignment operators, ++/--,
// ternary), if/else, for, while, break/continue/return, `${mbl}` reads and
// writes, `table.addEntry/modEntry/delEntry/setDefault(...)` calls, and a few
// builtins (abs/min/max/now_us/log).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "p4r/token.hpp"

namespace mantis::p4r::creact {

/// All reaction-language values are 64-bit signed integers; declared unsigned
/// widths wrap on assignment. (Register contents in the paper's use cases are
/// all < 2^48, so signed ordering matches unsigned ordering in practice.)
using CValue = std::int64_t;

struct CExpr;
using CExprPtr = std::unique_ptr<CExpr>;

struct CExpr {
  enum class Kind : std::uint8_t {
    kNum,      ///< literal (value)
    kString,   ///< string literal (text) — only valid as a call argument
    kVar,      ///< local/static/param scalar (name)
    kMbl,      ///< ${name}
    kIndex,    ///< a[b]
    kUnary,    ///< op a        (op in ! ~ - +)
    kPreIncDec,   ///< ++a / --a   (op)
    kPostIncDec,  ///< a++ / a--   (op)
    kBinary,   ///< a op b
    kAssign,   ///< a op b      (op in = += -= *= /= %= &= |= ^= <<= >>=)
    kTernary,  ///< a ? b : c
    kCall,     ///< name(args) or name.member(args)
  };

  Kind kind = Kind::kNum;
  CValue value = 0;
  std::string name;
  std::string member;  ///< kCall: method name for table calls
  std::string op;
  CExprPtr a, b, c;
  std::vector<CExprPtr> args;
  std::uint32_t line = 0, col = 0;
};

struct CStmt;
using CStmtPtr = std::unique_ptr<CStmt>;

struct CStmt {
  enum class Kind : std::uint8_t {
    kExpr,
    kDecl,
    kDeclGroup,  ///< comma-separated declarators; runs in the CURRENT scope
    kIf,
    kFor,
    kWhile,
    kBlock,
    kBreak,
    kContinue,
    kReturn,
  };

  Kind kind = Kind::kExpr;

  // kDecl
  std::string type;
  std::string name;
  bool is_static = false;
  std::int64_t array_size = -1;  ///< >= 0 for arrays
  CExprPtr init;                 ///< optional initializer (scalars only)

  // kExpr / kReturn
  CExprPtr expr;

  // kIf / kFor / kWhile
  CStmtPtr init_stmt;  ///< for
  CExprPtr cond;
  CExprPtr post;  ///< for
  std::vector<CStmtPtr> body;
  std::vector<CStmtPtr> else_body;

  std::uint32_t line = 0, col = 0;
};

/// A parsed reaction body.
struct CBody {
  std::vector<CStmtPtr> stmts;
};

}  // namespace mantis::p4r::creact
