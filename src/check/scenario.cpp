#include "check/scenario.hpp"

#include <sstream>

#include "util/check.hpp"

namespace mantis::check {

namespace {

constexpr const char* kHeader = "# p4r_fuzz repro v1";
constexpr const char* kChunkSep = "%%";

void put_list(std::ostringstream& out, const std::string& name,
              const std::vector<std::string>& items) {
  out << "--- " << name << " ---\n";
  for (const auto& item : items) {
    out << item;
    if (item.empty() || item.back() != '\n') out << "\n";
    out << kChunkSep << "\n";
  }
}

}  // namespace

std::string GenSpec::render() const {
  if (!raw.empty()) return raw;
  std::string out;
  auto cat = [&](const std::vector<std::string>& items) {
    for (const auto& item : items) {
      out += item;
      if (item.empty() || item.back() != '\n') out += "\n";
    }
  };
  cat(decls);
  cat(actions);
  cat(tables);
  out += "control ingress {\n";
  cat(ingress);
  out += "}\ncontrol egress {\n";
  cat(egress);
  out += "}\n";
  if (!reaction_sig.empty()) {
    out += reaction_sig + " {\n";
    cat(reaction_stmts);
    out += "}\n";
  }
  return out;
}

std::string serialize_scenario(const Scenario& s) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "seed " << s.seed << "\n";
  out << "epochs " << s.epochs << "\n";
  for (const auto& e : s.entries) {
    out << "entry " << e.table << " " << e.action << " " << e.priority
        << " key";
    for (const auto v : e.key) out << " " << v;
    out << " masks";
    for (const auto v : e.masks) out << " " << v;
    out << " args";
    for (const auto v : e.args) out << " " << v;
    out << "\n";
  }
  for (const auto& p : s.packets) {
    out << "packet " << p.epoch << " " << p.port << " " << p.length;
    for (const auto& [name, value] : p.fields) {
      out << " " << name << "=" << value;
    }
    out << "\n";
  }
  put_list(out, "decls", s.program.decls);
  put_list(out, "actions", s.program.actions);
  put_list(out, "tables", s.program.tables);
  put_list(out, "ingress", s.program.ingress);
  put_list(out, "egress", s.program.egress);
  put_list(out, "reaction_sig", {s.program.reaction_sig});
  put_list(out, "reaction_stmts", s.program.reaction_stmts);
  if (!s.program.raw.empty()) put_list(out, "raw", {s.program.raw});
  return out.str();
}

Scenario parse_scenario(const std::string& text) {
  Scenario s;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw UserError("repro: missing '" + std::string(kHeader) + "' header");
  }

  std::vector<std::string>* section = nullptr;
  std::vector<std::string> sig_holder;
  std::vector<std::string> raw_holder;
  std::string chunk;
  bool in_sections = false;

  auto flush_chunk = [&]() {
    // Chunks are closed by the %% separator; a trailing unterminated chunk
    // (no separator) is accepted too.
    if (section != nullptr && !chunk.empty()) {
      if (chunk.back() == '\n') chunk.pop_back();
      section->push_back(chunk);
    }
    chunk.clear();
  };

  while (std::getline(in, line)) {
    if (line.rfind("--- ", 0) == 0 && line.size() > 8 &&
        line.substr(line.size() - 4) == " ---") {
      flush_chunk();
      in_sections = true;
      const std::string name = line.substr(4, line.size() - 8);
      if (name == "decls") section = &s.program.decls;
      else if (name == "actions") section = &s.program.actions;
      else if (name == "tables") section = &s.program.tables;
      else if (name == "ingress") section = &s.program.ingress;
      else if (name == "egress") section = &s.program.egress;
      else if (name == "reaction_sig") section = &sig_holder;
      else if (name == "reaction_stmts") section = &s.program.reaction_stmts;
      else if (name == "raw") section = &raw_holder;
      else throw UserError("repro: unknown section '" + name + "'");
      continue;
    }
    if (in_sections) {
      if (line == kChunkSep) {
        flush_chunk();
      } else {
        chunk += line;
        chunk += "\n";
      }
      continue;
    }

    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "seed") {
      ls >> s.seed;
    } else if (kw == "epochs") {
      ls >> s.epochs;
    } else if (kw == "entry") {
      InitialEntry e;
      std::string marker;
      if (!(ls >> e.table >> e.action >> e.priority >> marker) ||
          marker != "key") {
        throw UserError("repro: malformed entry line: " + line);
      }
      std::string tok;
      std::vector<std::uint64_t>* dst = &e.key;
      while (ls >> tok) {
        if (tok == "masks") { dst = &e.masks; continue; }
        if (tok == "args") { dst = &e.args; continue; }
        dst->push_back(std::stoull(tok));
      }
      s.entries.push_back(std::move(e));
    } else if (kw == "packet") {
      PacketSpec p;
      if (!(ls >> p.epoch >> p.port >> p.length)) {
        throw UserError("repro: malformed packet line: " + line);
      }
      std::string tok;
      while (ls >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos) {
          throw UserError("repro: malformed field assignment: " + tok);
        }
        p.fields.emplace_back(tok.substr(0, eq),
                              std::stoull(tok.substr(eq + 1)));
      }
      s.packets.push_back(std::move(p));
    } else {
      throw UserError("repro: unknown directive '" + kw + "'");
    }
  }
  flush_chunk();
  if (!sig_holder.empty()) s.program.reaction_sig = sig_holder.front();
  if (!raw_holder.empty()) s.program.raw = raw_holder.front();
  return s;
}

}  // namespace mantis::check
