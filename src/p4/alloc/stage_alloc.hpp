// RMT stage allocation: places each pipeline's tables into match-action
// stages subject to data dependencies and per-stage capacity, mirroring how a
// Tofino-class compiler lays out a program. Backs Table 1's "Stgs" column.
//
// Dependency rules (standard match/action dependency analysis):
//  - MATCH dependency: B matches on (or its actions read) a field some action
//    of an earlier-applied table A writes => stage(B) > stage(A).
//  - WRITE-WRITE dependency on the same field also serializes A before B.
//  - Tables that share a stateful register must land in the same stage (RMT
//    restricts a register to one stage); if dependencies make that
//    impossible the allocator throws.
//  - Otherwise tables may share a stage up to the capacity limits.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ir.hpp"
#include "p4/resources.hpp"

namespace mantis::p4 {

/// Per-stage capacity of the modeled RMT switch. Defaults approximate one
/// Tofino-class pipeline (documented model, not vendor data).
struct StageModel {
  int max_stages = 12;
  std::uint64_t sram_bits_per_stage = 10ull * 1024 * 1024;  // 1.25 MiB
  std::uint64_t tcam_bits_per_stage = 512ull * 1024;        // 64 KiB
  int tables_per_stage = 16;
};

struct StageAssignment {
  /// table name -> stage index (0-based)
  std::unordered_map<std::string, int> table_stage;
  int stages_used = 0;
};

/// Allocates all tables applied by `block` (one pipeline). Throws UserError
/// if the program cannot fit within `model.max_stages`.
StageAssignment allocate_stages(const Program& prog, const ControlBlock& block,
                                const StageModel& model = StageModel{});

/// Convenience: max of ingress and egress stage counts... reported per
/// pipeline as ingress_stages + egress_stages (Tofino has separate gress
/// stage budgets; we report the sum as the program's stage footprint).
struct ProgramStages {
  int ingress = 0;
  int egress = 0;
  int total() const { return ingress + egress; }
};

ProgramStages allocate_program_stages(const Program& prog,
                                      const StageModel& model = StageModel{});

/// Fields written by any action of the table (destinations of field-writing
/// primitives). Exposed for tests.
std::vector<FieldId> fields_written_by(const Program& prog, const TableDecl& tbl);

/// Fields read by the table: match keys plus action source operands.
std::vector<FieldId> fields_read_by(const Program& prog, const TableDecl& tbl);

/// Registers accessed (read or written) by any action of the table.
std::vector<std::string> registers_used_by(const Program& prog, const TableDecl& tbl);

}  // namespace mantis::p4
