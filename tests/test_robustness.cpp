// Robustness: malformed and adversarial inputs must produce UserError
// diagnostics — never crashes, never other exception types — across the
// frontend, the compiler, and the reaction interpreter.
#include <gtest/gtest.h>

#include "check/diff.hpp"
#include "check/scenario.hpp"
#include "compile/compiler.hpp"
#include "helpers.hpp"
#include "p4r/sema.hpp"
#include "util/rng.hpp"

namespace mantis::test {
namespace {

/// Runs the frontend+compiler; the only acceptable outcomes are success or
/// UserError.
void expect_graceful(const std::string& source) {
  try {
    compile::compile_source(source);
  } catch (const UserError&) {
    // fine: a diagnostic
  } catch (const std::exception& e) {
    FAIL() << "non-diagnostic exception " << typeid(e).name() << ": "
           << e.what() << "\nsource:\n"
           << source;
  }
}

TEST(Robustness, TruncatedPrograms) {
  const std::string full = figure1_style_source();
  // Cut the program at many byte offsets; every prefix must be handled.
  for (std::size_t cut = 0; cut < full.size(); cut += 37) {
    expect_graceful(full.substr(0, cut));
  }
}

TEST(Robustness, TokenDeletionFuzz) {
  const std::string full = figure1_style_source();
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    // Delete a random slice.
    const std::size_t a = rng.uniform(full.size());
    const std::size_t len = 1 + rng.uniform(40);
    std::string mutated = full;
    mutated.erase(a, len);
    expect_graceful(mutated);
  }
}

TEST(Robustness, RandomCharacterCorruption) {
  const std::string full = figure1_style_source();
  const std::string charset = "{}();:,.${}<>=+-*/ abz019_\"";
  Rng rng(78);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = full;
    for (int k = 0; k < 5; ++k) {
      mutated[rng.uniform(mutated.size())] =
          charset[rng.uniform(charset.size())];
    }
    expect_graceful(mutated);
  }
}

TEST(Robustness, ReactionBodyFuzz) {
  const char* prefix = R"(
header_type h_t { fields { a : 32; } }
header h_t h;
control ingress { }
control egress { }
reaction rx(ing h.a) {
)";
  const std::string pieces[] = {
      "int x = 0;", "x += h_a;",       "for (;;) { break; }",
      "${v}",       "= 1;",            "while (x < 3) ++x;",
      "if (",       "x)",              "{ }",
      "log(x);",    "t.addEntry(\"a\"", ");",
      "} else {",   "return;",          "int a[4]; a[x] = 1;",
  };
  Rng rng(79);
  for (int trial = 0; trial < 80; ++trial) {
    std::string body;
    const int n = 1 + static_cast<int>(rng.uniform(8));
    for (int i = 0; i < n; ++i) {
      body += pieces[rng.uniform(std::size(pieces))];
      body += "\n";
    }
    expect_graceful(std::string(prefix) + body + "\n}\n");
  }
}

TEST(Robustness, InterpretedRuntimeFaultsSurfaceAsUserError) {
  // Compile-clean programs whose reactions fault at runtime.
  const char* bodies[] = {
      "int a[2]; ${out} = a[h_a + 5];",  // index out of range (h_a polls 0)
      "${out} = 10 / h_a;",          // div by zero when h_a == 0
      "while (h_a == 0) { }",        // runaway when h_a == 0
  };
  for (const char* body : bodies) {
    Stack stack(std::string(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value out { width : 16; init : 0; }
action use() { add(h.a, h.a, ${out}); }
table t { actions { use; } default_action : use; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(ing h.a) {
)") + body + "\n}\n");
    stack.agent->run_prologue();
    // h_a polls as 0 (no packets) -> each body faults.
    EXPECT_THROW(stack.agent->dialogue_iteration(), UserError) << body;
  }
}

TEST(Robustness, DegenerateRegisterWindowsAreDiagnosed) {
  // Inverted ([5:2]) and off-the-end ([8:8] on an 8-cell register)
  // measurement windows must be rejected by the frontend with a diagnostic,
  // not accepted into a zero-length or out-of-bounds poll loop.
  const char* windows[] = {"[5:2]", "[8:8]", "[0:8]"};
  for (const char* w : windows) {
    const std::string src = std::string(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
register r0 { width : 32; instance_count : 8; }
action w() { register_write(r0, 0, h.a); }
table t { actions { w; } default_action : w; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(reg r0)") + w + R"(, ing h.a) { log(r0[2]); }
)";
    try {
      compile::compile_source(src);
      FAIL() << "window " << w << " accepted";
    } catch (const UserError& e) {
      EXPECT_NE(std::string(e.what()).find("out of bounds"),
                std::string::npos)
          << w << ": " << e.what();
    }
  }
  // The one-cell window [7:7] is legal and must still compile.
  EXPECT_NO_THROW(compile::compile_source(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
register r0 { width : 32; instance_count : 8; }
action w() { register_write(r0, 0, h.a); }
table t { actions { w; } default_action : w; size : 1; }
control ingress { apply(t); }
control egress { }
reaction rx(reg r0[7:7], ing h.a) { log(r0[7]); }
)"));
}

TEST(Robustness, MaxWidthRegistersAndFieldsSurviveTheFullStack) {
  // 64-bit fields measured into the reaction and 64-bit register cells
  // polled through a window: values near 2^64 must round-trip without
  // truncation on either the compiled path or the reference interpreter.
  check::Scenario s;
  s.epochs = 1;
  s.program.decls = {
      "header_type h_t { fields { a : 64; b : 64; } }\nheader h_t hdr;",
      "register r0 { width : 64; instance_count : 2; }",
  };
  s.program.actions = {
      "action w() {\n  register_write(r0, 0, hdr.a);\n}",
      "action fwd(port) {\n"
      "  modify_field(standard_metadata.egress_spec, port);\n}",
  };
  s.program.tables = {
      "table t {\n  actions { w; }\n  default_action : w;\n  size : 1;\n}",
      "table forward {\n  actions { fwd; }\n  default_action : fwd(1);\n"
      "  size : 1;\n}",
  };
  s.program.ingress = {"  apply(t);", "  apply(forward);"};
  s.program.reaction_sig = "reaction rx(reg r0[0:1], ing hdr.a)";
  s.program.reaction_stmts = {"  log(r0[0]);"};
  check::PacketSpec p;
  p.epoch = 0;
  p.port = 0;
  p.fields = {{"hdr.a", 0xfedcba9876543210ull}, {"hdr.b", 0}};
  s.packets.push_back(p);
  const check::DiffResult r = run_diff(s);
  ASSERT_EQ(r.outcome, check::Outcome::kAgreed) << r.skip_reason;
  EXPECT_NE(r.digest.find("register r0 = 18364758544493064720 0"),
            std::string::npos)
      << r.digest;
  // The reaction log is int64-typed, so the digest renders the same 64-bit
  // pattern signed.
  EXPECT_NE(r.digest.find("log rx -81985529216486896"), std::string::npos)
      << r.digest;
}

TEST(Robustness, TableCapacityExhaustionDuringDialogue) {
  // A reaction that adds one entry per epoch to a size-2 table: the add
  // that overflows the capacity must surface as a UserError from
  // dialogue_iteration, not corrupt the update protocol or crash.
  Stack stack(R"(
header_type h_t { fields { a : 32; } }
header h_t h;
malleable value mv { width : 8; init : 0; }
action seta() { add(h.a, h.a, ${mv}); }
malleable table mtbl { reads { h.a : exact; } actions { seta; } size : 2; }
control ingress { apply(mtbl); }
control egress { }
reaction rx(ing h.a) {
  static long k;
  k += 1;
  mtbl.addEntry("seta", k);
}
)");
  stack.agent->run_prologue();
  EXPECT_NO_THROW(stack.agent->dialogue_iteration());
  EXPECT_NO_THROW(stack.agent->dialogue_iteration());
  try {
    stack.agent->dialogue_iteration();
    FAIL() << "third add exceeded size : 2 but was accepted";
  } catch (const UserError& e) {
    EXPECT_NE(std::string(e.what()).find("mtbl: full"), std::string::npos)
        << e.what();
  }
}

TEST(Robustness, AgentBreakdownSumsToIteration) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->dialogue_iteration();
  const auto& bd = stack.agent->last_breakdown();
  EXPECT_GT(bd.mv_flip, 0);
  EXPECT_GT(bd.measure_and_react, 0);
  EXPECT_GT(bd.update, 0);
  EXPECT_DOUBLE_EQ(static_cast<double>(bd.total()),
                   stack.agent->iteration_latencies().values().back());
}

}  // namespace
}  // namespace mantis::test
