// Figure 13: malleable field TCAM usage, computed from the real compiler's
// transformed tables (this experiment is hardware-independent: it measures
// what the compiler generates, exactly as the paper does).
//
//  tblWriteX — matches the 5-tuple (ternary) and *writes* ${X} in its action:
//              specialization adds a selector column; usage is linear in A.
//  tblReadX  — matches the 5-tuple plus ${X} and *reads* ${X} in its action:
//              match expansion adds A ternary columns of width K, so usage is
//              asymptotically quadratic in A (13a) and linear in K (13b).
#include <sstream>

#include "bench_util.hpp"
#include "p4/resources.hpp"

namespace {

using namespace mantis;

/// Builds the tblWriteX / tblReadX benchmark program for a K-bit malleable
/// field with A alternatives.
std::string program_for(unsigned k, unsigned a, bool read_side) {
  std::ostringstream src;
  src << "header_type ip_t { fields { src : 32; dst : 32; sport : 16; "
         "dport : 16; proto : 8;";
  for (unsigned i = 0; i < a; ++i) src << " alt" << i << " : " << k << ";";
  src << " extra : " << k << "; } }\n";
  src << "header ip_t ip;\n";
  src << "malleable field X { width : " << k << "; init : ip.alt0; alts {";
  for (unsigned i = 0; i < a; ++i) src << (i ? ", " : " ") << "ip.alt" << i;
  src << " } }\n";
  if (read_side) {
    src << "action useX() { add(ip.extra, ip.extra, ${X}); }\n";
    src << "table tiReadX {\n  reads { ip.src : ternary; ip.dst : ternary; "
           "ip.sport : ternary; ip.dport : ternary; ip.proto : ternary; "
           "${X} : ternary; }\n  actions { useX; }\n  size : OCC;\n}\n";
    src << "control ingress { apply(tiReadX); }\n";
  } else {
    src << "action writeX(v) { modify_field(${X}, v); }\n";
    src << "table tiWriteX {\n  reads { ip.src : ternary; ip.dst : ternary; "
           "ip.sport : ternary; ip.dport : ternary; ip.proto : ternary; }\n"
           "  actions { writeX; }\n  size : OCC;\n}\n";
    src << "control ingress { apply(tiWriteX); }\n";
  }
  src << "control egress { }\n";
  return src.str();
}

/// TCAM bits of the transformed user table for the given occupancy.
std::uint64_t tcam_bits(unsigned k, unsigned a, bool read_side,
                        std::size_t occupancy) {
  auto src = program_for(k, a, read_side);
  const std::string occ = std::to_string(occupancy);
  const auto pos = src.find("OCC");
  src = src.substr(0, pos) + occ + src.substr(pos + 3);

  const auto art = compile::compile_source(src);
  const std::string name = read_side ? "tiReadX" : "tiWriteX";
  const auto* tbl = art.prog.find_table(name);
  // The compiler already scaled tbl->size by the expansion product (the
  // "actual entries" of the paper); the resource model charges TCAM for
  // ternary columns at match width.
  const auto bits = p4::table_match_bits(art.prog, *tbl);
  return tbl->size * bits;
}

}  // namespace

int main(int argc, char** argv) {
  mantis::bench::Report report("fig13_tcam", argc, argv);
  for (const std::size_t occ : {512u, 1024u}) {
    mantis::bench::print_header(
        "Figure 13a: TCAM usage vs alternatives A (K=16, occupancy=" +
        std::to_string(occ) + ")");
    mantis::bench::print_row({"A", "tblWriteX_KB", "tblReadX_KB"});
    for (const unsigned a : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
      const double wkb = static_cast<double>(tcam_bits(16, a, false, occ)) / 8192.0;
      const double rkb = static_cast<double>(tcam_bits(16, a, true, occ)) / 8192.0;
      mantis::bench::print_row({std::to_string(a), mantis::bench::fmt(wkb, 1),
                                mantis::bench::fmt(rkb, 1)});
      const std::string key = "fig13a.occ" + std::to_string(occ) + ".alts" +
                              std::to_string(a);
      report.set(key + ".write_kb", wkb);
      report.set(key + ".read_kb", rkb);
    }
  }

  for (const std::size_t occ : {512u, 1024u}) {
    mantis::bench::print_header(
        "Figure 13b: TCAM usage vs field width K (A=4, occupancy=" +
        std::to_string(occ) + ")");
    mantis::bench::print_row({"K", "tblWriteX_KB", "tblReadX_KB"});
    for (const unsigned k : {8u, 16u, 24u, 32u, 48u, 64u}) {
      const double wkb = static_cast<double>(tcam_bits(k, 4, false, occ)) / 8192.0;
      const double rkb = static_cast<double>(tcam_bits(k, 4, true, occ)) / 8192.0;
      mantis::bench::print_row({std::to_string(k), mantis::bench::fmt(wkb, 1),
                                mantis::bench::fmt(rkb, 1)});
      const std::string key = "fig13b.occ" + std::to_string(occ) + ".width" +
                              std::to_string(k);
      report.set(key + ".write_kb", wkb);
      report.set(key + ".read_kb", rkb);
    }
  }
  std::printf(
      "\nShape check: tblWriteX grows linearly in A and is flat in K\n"
      "(selector column only); tblReadX is asymptotically quadratic in A\n"
      "(A entries x A alt columns) and linear in K.\n");
  report.write();
  return 0;
}
