// Unit tests for the simulator core: event loop, table match engines,
// register file, and action execution.
#include <gtest/gtest.h>

#include "p4/ir.hpp"
#include "sim/action_exec.hpp"
#include "sim/event_loop.hpp"
#include "sim/register_file.hpp"
#include "sim/table_state.hpp"

namespace mantis::sim {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoopTest, RunsInTimeOrderWithFifoTies) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(2); });
  loop.schedule_at(5, [&] { order.push_back(1); });
  loop.schedule_at(10, [&] { order.push_back(3); });  // same time, later seq
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoopTest, CallbacksCanSchedule) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1, [&] {
    loop.schedule_in(4, [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 5);
}

TEST(EventLoopTest, RunUntilAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(100, [&] { ++fired; });
  loop.run_until(50);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.now(), 50);
  loop.run_until(100);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, PastSchedulingRejected) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), PreconditionError);
  EXPECT_THROW(loop.run_until(5), PreconditionError);
}

// ---------------------------------------------------------------------------
// Fixtures for tables/actions
// ---------------------------------------------------------------------------

struct SimFixture {
  p4::Program prog;

  SimFixture() {
    p4::add_standard_metadata(prog);
    prog.add_metadata_instance("h_t", "h", {{"a", 16}, {"b", 32}, {"c", 8}});
    p4::ActionDecl noop;
    noop.name = "_no_op_";
    prog.actions.push_back(noop);
    p4::ActionDecl act;
    act.name = "set_c";
    act.params.push_back(p4::ActionParam{"v", 8});
    p4::Instruction ins;
    ins.op = p4::PrimOp::kModifyField;
    ins.args = {p4::Operand::of_field(prog.fields.require("h.c")),
                p4::Operand::of_param(0)};
    act.body.push_back(ins);
    prog.actions.push_back(act);
  }

  p4::TableDecl make_table(std::vector<p4::MatchSpec> reads, std::size_t size = 8) {
    p4::TableDecl tbl;
    tbl.name = "t";
    tbl.reads = std::move(reads);
    tbl.actions = {"set_c"};
    tbl.size = size;
    return tbl;
  }

  Packet packet(std::uint64_t a, std::uint64_t b) {
    Packet pkt(prog.fields.size());
    pkt.set(prog.fields.require("h.a"), a, 16);
    pkt.set(prog.fields.require("h.b"), b, 32);
    return pkt;
  }
};

p4::EntrySpec entry(std::vector<p4::MatchValue> key, std::uint64_t v,
                    std::int32_t prio = 0) {
  p4::EntrySpec spec;
  spec.key = std::move(key);
  spec.action = "set_c";
  spec.action_args = {v};
  spec.priority = prio;
  return spec;
}

// ---------------------------------------------------------------------------
// TableState
// ---------------------------------------------------------------------------

TEST(TableStateTest, ExactHitAndMiss) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}});
  TableState tbl(fx.prog, decl);
  tbl.add_entry(entry({{7, kFull}}, 42));

  auto hit = tbl.lookup(fx.packet(7, 0));
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(*hit.action, "set_c");
  EXPECT_EQ((*hit.args)[0], 42u);

  auto miss = tbl.lookup(fx.packet(8, 0));
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(*miss.action, "_no_op_");
}

TEST(TableStateTest, ExactDuplicateKeyRejected) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}});
  TableState tbl(fx.prog, decl);
  tbl.add_entry(entry({{7, kFull}}, 1));
  EXPECT_THROW(tbl.add_entry(entry({{7, kFull}}, 2)), UserError);
}

TEST(TableStateTest, ExactRequiresFullMask) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}});
  TableState tbl(fx.prog, decl);
  EXPECT_THROW(tbl.add_entry(entry({{7, 0xff}}, 1)), UserError);
}

TEST(TableStateTest, TernaryPriorityWins) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kTernary, ""}});
  TableState tbl(fx.prog, decl);
  tbl.add_entry(entry({{0, 0}}, 1, /*prio=*/0));        // match-all
  tbl.add_entry(entry({{7, kFull}}, 2, /*prio=*/10));   // specific, higher prio
  auto r7 = tbl.lookup(fx.packet(7, 0));
  EXPECT_EQ((*r7.args)[0], 2u);
  auto r8 = tbl.lookup(fx.packet(8, 0));
  EXPECT_EQ((*r8.args)[0], 1u);
}

TEST(TableStateTest, TernaryTieBreaksByInsertOrder) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kTernary, ""}});
  TableState tbl(fx.prog, decl);
  tbl.add_entry(entry({{0, 0}}, 1, 5));
  tbl.add_entry(entry({{0, 0}}, 2, 5));
  EXPECT_EQ((*tbl.lookup(fx.packet(0, 0)).args)[0], 1u);
}

TEST(TableStateTest, LpmLongestPrefixWins) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.b"), p4::MatchKind::kLpm, ""}});
  TableState tbl(fx.prog, decl);
  // /8 and /16 prefixes over the 32-bit field.
  const std::uint64_t m8 = 0xff000000, m16 = 0xffff0000;
  tbl.add_entry(entry({{0x0a000000, m8}}, 8));
  tbl.add_entry(entry({{0x0a0b0000, m16}}, 16));
  EXPECT_EQ((*tbl.lookup(fx.packet(0, 0x0a0b0c0d)).args)[0], 16u);
  EXPECT_EQ((*tbl.lookup(fx.packet(0, 0x0a990c0d)).args)[0], 8u);
  EXPECT_FALSE(tbl.lookup(fx.packet(0, 0x0b000000)).hit);
}

TEST(TableStateTest, ModifyAndDelete) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}});
  TableState tbl(fx.prog, decl);
  const auto h = tbl.add_entry(entry({{7, kFull}}, 1));
  tbl.modify_entry(h, "set_c", {9});
  EXPECT_EQ((*tbl.lookup(fx.packet(7, 0)).args)[0], 9u);
  tbl.delete_entry(h);
  EXPECT_FALSE(tbl.lookup(fx.packet(7, 0)).hit);
  EXPECT_THROW(tbl.delete_entry(h), UserError);
  EXPECT_THROW(tbl.modify_entry(h, "set_c", {1}), UserError);
}

TEST(TableStateTest, CapacityEnforced) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}},
                            /*size=*/2);
  TableState tbl(fx.prog, decl);
  tbl.add_entry(entry({{1, kFull}}, 1));
  tbl.add_entry(entry({{2, kFull}}, 1));
  EXPECT_THROW(tbl.add_entry(entry({{3, kFull}}, 1)), UserError);
  EXPECT_EQ(tbl.entry_count(), 2u);
  EXPECT_EQ(tbl.capacity(), 2u);
}

TEST(TableStateTest, FindEntryByKeySpec) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kTernary, ""}});
  TableState tbl(fx.prog, decl);
  const auto h = tbl.add_entry(entry({{7, 0xff}}, 1));
  EXPECT_EQ(tbl.find_entry({{7, 0xff}}), h);
  EXPECT_EQ(tbl.find_entry({{7, kFull}}), std::nullopt);
}

TEST(TableStateTest, UnboundActionRejected) {
  SimFixture fx;
  auto decl = fx.make_table({{fx.prog.fields.require("h.a"), p4::MatchKind::kExact, ""}});
  TableState tbl(fx.prog, decl);
  auto bad = entry({{7, kFull}}, 1);
  bad.action = "_no_op_";  // exists in program, not bound to table
  EXPECT_THROW(tbl.add_entry(bad), UserError);
  EXPECT_THROW(tbl.set_default("_no_op_", {}), UserError);
}

TEST(TableStateTest, DefaultActionOnDefaultOnlyTable) {
  SimFixture fx;
  auto decl = fx.make_table({});
  decl.default_action = "set_c";
  decl.default_action_args = {5};
  TableState tbl(fx.prog, decl);
  auto r = tbl.lookup(fx.packet(0, 0));
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(*r.action, "set_c");
  EXPECT_EQ((*r.args)[0], 5u);
  tbl.set_default("set_c", {6});
  EXPECT_EQ((*tbl.lookup(fx.packet(0, 0)).args)[0], 6u);
}

// ---------------------------------------------------------------------------
// RegisterFile
// ---------------------------------------------------------------------------

TEST(RegisterFileTest, ReadWriteRangeAndBounds) {
  p4::Program prog;
  prog.registers.push_back(p4::RegisterDecl{"r", 16, 8});
  RegisterFile regs(prog);
  regs.write("r", 3, 0x1ffff);  // truncated to 16 bits
  EXPECT_EQ(regs.read("r", 3), 0xffffu);
  const auto range = regs.read_range("r", 2, 4);
  EXPECT_EQ(range, (std::vector<std::uint64_t>{0, 0xffff, 0}));
  EXPECT_EQ(regs.instance_count("r"), 8u);
  EXPECT_EQ(regs.width("r"), 16);
  EXPECT_THROW(regs.read("r", 8), UserError);
  EXPECT_THROW(regs.write("nope", 0, 1), UserError);
  EXPECT_THROW(regs.read_range("r", 5, 8), UserError);
}

TEST(RegisterFileTest, Counters) {
  p4::Program prog;
  prog.counters.push_back(p4::CounterDecl{"c", 4});
  RegisterFile regs(prog);
  regs.count("c", 1);
  regs.count("c", 1);
  EXPECT_EQ(regs.counter_value("c", 1), 2u);
  EXPECT_EQ(regs.counter_value("c", 0), 0u);
  EXPECT_THROW(regs.count("c", 4), UserError);
}

// ---------------------------------------------------------------------------
// ActionExecutor & hashing
// ---------------------------------------------------------------------------

TEST(ActionExecTest, ArithmeticWrapsAtFieldWidth) {
  SimFixture fx;
  RegisterFile regs(fx.prog);
  ActionExecutor exec(fx.prog, regs);

  p4::ActionDecl act;
  act.name = "wrap";
  p4::Instruction add;
  add.op = p4::PrimOp::kAdd;
  add.args = {p4::Operand::of_field(fx.prog.fields.require("h.a")),
              p4::Operand::of_const(0xffff), p4::Operand::of_const(2)};
  act.body.push_back(add);
  auto pkt = fx.packet(0, 0);
  exec.execute(act, {}, pkt);
  EXPECT_EQ(pkt.get(fx.prog.fields.require("h.a")), 1u);  // 0x10001 mod 2^16
}

TEST(ActionExecTest, RegisterReadModifyWrite) {
  SimFixture fx;
  fx.prog.registers.push_back(p4::RegisterDecl{"r", 32, 4});
  RegisterFile regs(fx.prog);
  regs.write("r", 2, 100);
  ActionExecutor exec(fx.prog, regs);

  p4::ActionDecl act;
  act.name = "rmw";
  p4::Instruction rd;
  rd.op = p4::PrimOp::kRegisterRead;
  rd.object = "r";
  rd.args = {p4::Operand::of_field(fx.prog.fields.require("h.b")),
             p4::Operand::of_const(2)};
  p4::Instruction inc;
  inc.op = p4::PrimOp::kAddToField;
  inc.args = {p4::Operand::of_field(fx.prog.fields.require("h.b")),
              p4::Operand::of_const(1)};
  p4::Instruction wr;
  wr.op = p4::PrimOp::kRegisterWrite;
  wr.object = "r";
  wr.args = {p4::Operand::of_const(2),
             p4::Operand::of_field(fx.prog.fields.require("h.b"))};
  act.body = {rd, inc, wr};
  auto pkt = fx.packet(0, 0);
  exec.execute(act, {}, pkt);
  EXPECT_EQ(regs.read("r", 2), 101u);
}

TEST(ActionExecTest, DropMarksPacket) {
  SimFixture fx;
  RegisterFile regs(fx.prog);
  ActionExecutor exec(fx.prog, regs);
  p4::ActionDecl act;
  act.name = "d";
  p4::Instruction ins;
  ins.op = p4::PrimOp::kDrop;
  act.body.push_back(ins);
  auto pkt = fx.packet(0, 0);
  exec.execute(act, {}, pkt);
  EXPECT_TRUE(pkt.dropped());
}

TEST(HashTest, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(HashTest, Crc16KnownVector) {
  // CRC-16/ARC("123456789") = 0xBB3D.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0xBB3D);
}

TEST(HashTest, FieldListHashDependsOnSelectedFields) {
  SimFixture fx;
  fx.prog.field_lists.push_back(p4::FieldListDecl{
      "fl", {{fx.prog.fields.require("h.a"), ""}, {fx.prog.fields.require("h.b"), ""}}});
  fx.prog.hash_calcs.push_back(p4::HashCalcDecl{"hc", "fl", "crc32", 16});
  auto p1 = fx.packet(1, 100);
  auto p2 = fx.packet(1, 101);
  auto p3 = fx.packet(1, 100);
  const auto& calc = fx.prog.hash_calcs[0];
  EXPECT_NE(compute_hash(fx.prog, calc, p1), compute_hash(fx.prog, calc, p2));
  EXPECT_EQ(compute_hash(fx.prog, calc, p1), compute_hash(fx.prog, calc, p3));
  EXPECT_LE(compute_hash(fx.prog, calc, p1), 0xffffu);  // output width respected
}

class HashAlgoParam : public ::testing::TestWithParam<const char*> {};

TEST_P(HashAlgoParam, DeterministicAndWidthBounded) {
  SimFixture fx;
  fx.prog.field_lists.push_back(
      p4::FieldListDecl{"fl", {{fx.prog.fields.require("h.b"), ""}}});
  fx.prog.hash_calcs.push_back(p4::HashCalcDecl{"hc", "fl", GetParam(), 12});
  const auto& calc = fx.prog.hash_calcs[0];
  auto pkt = fx.packet(0, 0xdeadbeef);
  const auto h1 = compute_hash(fx.prog, calc, pkt);
  const auto h2 = compute_hash(fx.prog, calc, pkt);
  EXPECT_EQ(h1, h2);
  EXPECT_LT(h1, 1u << 12);
}

INSTANTIATE_TEST_SUITE_P(Algos, HashAlgoParam,
                         ::testing::Values("crc32", "crc16", "identity",
                                           "xor_fold"));

}  // namespace
}  // namespace mantis::sim
