#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "telemetry/metrics.hpp"  // write_text_file
#include "telemetry/shard_lane.hpp"
#include "util/check.hpp"

namespace mantis::telemetry {

namespace {

/// Event fields are tab-separated, one per line; keep payloads single-line.
void sanitize(std::string& s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
}

/// Malformed .mfr input is a user-data problem, not a caller bug.
void require(bool cond, const std::string& msg) {
  if (!cond) throw UserError(msg);
}

std::int64_t parse_i64(std::string_view s, const char* what) {
  std::int64_t v = 0;
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, v);
  require(ec == std::errc() && ptr == end,
          std::string("parse_mfr: bad integer in ") + what);
  return v;
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, v);
  require(ec == std::errc() && ptr == end,
          std::string("parse_mfr: bad integer in ") + what);
  return v;
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

const char* flight_kind_name(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kReaction: return "reaction";
    case FlightEvent::Kind::kMalleable: return "malleable";
    case FlightEvent::Kind::kDriverOp: return "driver_op";
    case FlightEvent::Kind::kFault: return "fault";
    case FlightEvent::Kind::kAnomaly: return "anomaly";
    case FlightEvent::Kind::kIntReport: return "int_report";
  }
  return "?";
}

std::optional<FlightEvent::Kind> flight_kind_from(std::string_view name) {
  if (name == "reaction") return FlightEvent::Kind::kReaction;
  if (name == "malleable") return FlightEvent::Kind::kMalleable;
  if (name == "driver_op") return FlightEvent::Kind::kDriverOp;
  if (name == "fault") return FlightEvent::Kind::kFault;
  if (name == "anomaly") return FlightEvent::Kind::kAnomaly;
  if (name == "int_report") return FlightEvent::Kind::kIntReport;
  return std::nullopt;
}

std::string render_mfr(const MfrDump& dump) {
  std::ostringstream out;
  out << "MFR/1\n";
  out << "reason " << dump.reason << "\n";
  out << "vt " << dump.vt << "\n";
  out << "recorded " << dump.recorded << " dropped " << dump.dropped << "\n";
  out << "events " << dump.events.size() << "\n";
  for (const auto& ev : dump.events) {
    out << ev.seq << '\t' << ev.t << '\t' << flight_kind_name(ev.kind) << '\t'
        << ev.reaction_id << '\t' << ev.value << '\t' << ev.name << '\t'
        << ev.detail << "\n";
  }
  for (const auto& snap : dump.snapshots) {
    out << "snapshot " << snap.label << " " << snap.lines.size() << "\n";
    for (const auto& line : snap.lines) out << line << "\n";
  }
  out << "end\n";
  return out.str();
}

MfrDump parse_mfr(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&](const char* what) {
    require(static_cast<bool>(std::getline(in, line)),
            std::string("parse_mfr: truncated file, expected ") + what);
    return std::string_view(line);
  };

  require(next_line("header") == "MFR/1", "parse_mfr: not an MFR/1 file");

  MfrDump dump;
  {
    auto l = next_line("reason");
    require(l.substr(0, 7) == "reason ", "parse_mfr: expected reason line");
    dump.reason = std::string(l.substr(7));
  }
  {
    auto l = next_line("vt");
    require(l.substr(0, 3) == "vt ", "parse_mfr: expected vt line");
    dump.vt = parse_i64(l.substr(3), "vt");
  }
  {
    auto l = next_line("recorded");
    require(l.substr(0, 9) == "recorded ", "parse_mfr: expected recorded line");
    const auto rest = l.substr(9);
    const auto sep = rest.find(" dropped ");
    require(sep != std::string_view::npos, "parse_mfr: expected dropped count");
    dump.recorded = parse_u64(rest.substr(0, sep), "recorded");
    dump.dropped = parse_u64(rest.substr(sep + 9), "dropped");
  }
  std::uint64_t count = 0;
  {
    auto l = next_line("events");
    require(l.substr(0, 7) == "events ", "parse_mfr: expected events line");
    count = parse_u64(l.substr(7), "events");
  }
  dump.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto fields = split_tabs(next_line("event row"));
    require(fields.size() == 7, "parse_mfr: event row needs 7 fields");
    FlightEvent ev;
    ev.seq = parse_u64(fields[0], "seq");
    ev.t = parse_i64(fields[1], "t");
    auto kind = flight_kind_from(fields[2]);
    require(kind.has_value(), "parse_mfr: unknown event kind");
    ev.kind = *kind;
    ev.reaction_id = parse_u64(fields[3], "reaction_id");
    ev.value = parse_i64(fields[4], "value");
    ev.name = std::string(fields[5]);
    ev.detail = std::string(fields[6]);
    dump.events.push_back(std::move(ev));
  }
  while (true) {
    auto l = next_line("snapshot or end");
    if (l == "end") break;
    require(l.substr(0, 9) == "snapshot ", "parse_mfr: expected snapshot/end");
    const auto rest = l.substr(9);
    const auto sep = rest.rfind(' ');
    require(sep != std::string_view::npos, "parse_mfr: bad snapshot header");
    MfrDump::Snapshot snap;
    snap.label = std::string(rest.substr(0, sep));
    const std::uint64_t lines = parse_u64(rest.substr(sep + 1), "snapshot");
    snap.lines.reserve(lines);
    for (std::uint64_t i = 0; i < lines; ++i) {
      snap.lines.emplace_back(next_line("snapshot line"));
    }
    dump.snapshots.push_back(std::move(snap));
  }
  return dump;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  expects(capacity > 0, "FlightRecorder: capacity must be positive");
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  expects(capacity > 0, "FlightRecorder: capacity must be positive");
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  recorded_ = 0;
}

void FlightRecorder::record(Time t, FlightEvent::Kind kind,
                            std::uint64_t reaction_id, std::string name,
                            std::string detail, std::int64_t value) {
  if (!enabled_) return;
  // Shard context (parallel fabric round): defer through the lane so ring
  // insertion — and therefore every seq number and .mfr dump — lands in
  // canonical event order, byte-identical to a sequential run.
  if (ShardLane* lane = ShardLane::current()) {
    lane->defer([this, t, kind, reaction_id, name = std::move(name),
                 detail = std::move(detail), value] {
      record(t, kind, reaction_id, name, detail, value);
    });
    return;
  }
  FlightEvent ev;
  ev.t = t;
  ev.seq = recorded_;
  ev.kind = kind;
  ev.reaction_id = reaction_id;
  ev.value = value;
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  sanitize(ev.name);
  sanitize(ev.detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[recorded_ % capacity_] = std::move(ev);
  }
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t head = recorded_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void FlightRecorder::clear() {
  ring_.clear();
  recorded_ = 0;
}

int FlightRecorder::add_snapshot_provider(std::string label, SnapshotFn fn) {
  const int id = next_provider_id_++;
  providers_.push_back(Provider{id, std::move(label), std::move(fn)});
  return id;
}

void FlightRecorder::remove_snapshot_provider(int id) {
  providers_.erase(
      std::remove_if(providers_.begin(), providers_.end(),
                     [id](const Provider& p) { return p.id == id; }),
      providers_.end());
}

std::string FlightRecorder::dump_text(Time t, const std::string& reason) const {
  MfrDump dump;
  dump.reason = reason;
  sanitize(dump.reason);
  dump.vt = t;
  dump.recorded = recorded_;
  dump.dropped = dropped();
  dump.events = events();
  for (const auto& p : providers_) {
    MfrDump::Snapshot snap;
    snap.label = p.label;
    std::string text;
    p.fn(text);
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t nl = text.find('\n', start);
      if (nl == std::string::npos) nl = text.size();
      snap.lines.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
    dump.snapshots.push_back(std::move(snap));
  }
  return render_mfr(dump);
}

std::string FlightRecorder::trigger(Time t, const std::string& reason) {
  record(t, FlightEvent::Kind::kAnomaly, 0, "anomaly", reason);
  const std::string text = dump_text(t, reason);
  ++triggers_;
  last_reason_ = reason;
  sanitize(last_reason_);
  if (!dump_path_.empty()) write_text_file(dump_path_, text);
  return text;
}

}  // namespace mantis::telemetry
