// Count-min sketch (paper Fig 14's data-plane sketch baseline, configured as
// in [44]: 2 stages of 8,192 or 16,384 counters). Collision-induced
// over-counting is the error mechanism the paper contrasts with Mantis's
// bounded sampling error.
#pragma once

#include <cstdint>
#include <vector>

namespace mantis::baseline {

class CountMinSketch {
 public:
  CountMinSketch(std::size_t depth, std::size_t width);

  void add(std::uint32_t key, std::uint64_t amount);
  std::uint64_t estimate(std::uint32_t key) const;

  std::size_t depth() const { return rows_.size(); }
  std::size_t width() const { return width_; }

 private:
  std::size_t width_;
  std::vector<std::vector<std::uint64_t>> rows_;

  std::size_t index(std::uint32_t key, std::size_t row) const;
};

}  // namespace mantis::baseline
