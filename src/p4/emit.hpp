// P4-14 text emitter: prints a Program back as a valid P4-14 v1.0.5 source
// file. This is the Mantis compiler's artifact #1 (paper Fig. 2) — the
// "valid but malleable" P4 program a user would hand to the vendor compiler.
#pragma once

#include <string>

#include "p4/ir.hpp"

namespace mantis::p4 {

/// Renders the whole program as P4-14 text.
std::string emit_p4(const Program& prog);

/// Renders a single action (exposed for tests and diff-friendly goldens).
std::string emit_action(const Program& prog, const ActionDecl& action);

/// Renders a single table declaration.
std::string emit_table(const Program& prog, const TableDecl& table);

}  // namespace mantis::p4
