#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <sstream>

#include "telemetry/metrics.hpp"  // json_escape, write_text_file
#include "telemetry/prof/prof.hpp"

namespace mantis::telemetry {

namespace {

/// Virtual ns -> trace microseconds, with sub-us precision preserved.
std::string us_from_ns(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000) : ns % 1000));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer,
                              const prof::Profiler* profiler) {
  std::ostringstream out;
  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";

  bool first = true;
  auto emit_sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Lane names (chrome "thread_name" metadata events).
  for (std::size_t t = 0; t < kNumTracks; ++t) {
    emit_sep();
    out << R"({"ph": "M", "pid": 0, "tid": )" << t
        << R"(, "name": "thread_name", "args": {"name": ")"
        << track_name(static_cast<Track>(t)) << "\"}}";
  }

  for (const auto& ev : tracer.events()) {
    emit_sep();
    const char* ph = "X";
    switch (ev.phase) {
      case TraceEvent::Phase::kComplete: ph = "X"; break;
      case TraceEvent::Phase::kInstant: ph = "i"; break;
      case TraceEvent::Phase::kFlowStart: ph = "s"; break;
      case TraceEvent::Phase::kFlowStep: ph = "t"; break;
      case TraceEvent::Phase::kFlowEnd: ph = "f"; break;
    }
    out << "{\"name\": \"" << json_escape(ev.name) << "\", \"cat\": \""
        << json_escape(ev.category) << "\", \"ph\": \"" << ph
        << "\", \"pid\": 0, \"tid\": " << static_cast<unsigned>(ev.track)
        << ", \"ts\": " << us_from_ns(ev.vt_begin);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      out << ", \"dur\": " << us_from_ns(ev.vt_dur);
    } else if (ev.phase == TraceEvent::Phase::kInstant) {
      out << ", \"s\": \"t\"";
    } else {
      // Flow events carry the correlation id; the end event binds to the
      // enclosing slice ("bp": "e") so a dangling start stays valid JSON and
      // simply renders as an unterminated arrow.
      out << ", \"id\": " << ev.flow_id;
      if (ev.phase == TraceEvent::Phase::kFlowEnd) out << ", \"bp\": \"e\"";
    }
    out << ", \"args\": {\"wall_ns\": " << ev.wall_ns;
    if (ev.arg_name != nullptr) {
      out << ", \"" << json_escape(ev.arg_name) << "\": " << ev.arg;
    }
    out << "}}";
  }

  // Profiler counter tracks: per-kind host-cycle burn rate over virtual
  // time, rendered as stacked area charts (ph "C") on a dedicated lane.
  // Counter events carry per-interval *deltas* of the cumulative per-kind
  // self-time so the chart shows where host time went in each window.
  if (profiler != nullptr) {
    const prof::ProfileReport rep = profiler->report();
    constexpr unsigned kProfTid = 6;  // one past the fixed tracer lanes
    if (!rep.samples.empty()) {
      emit_sep();
      out << R"({"ph": "M", "pid": 0, "tid": )" << kProfTid
          << R"(, "name": "thread_name", "args": {"name": "prof"}})";
    }
    prof::ProfileReport::Sample prev{};
    for (const auto& s : rep.samples) {
      emit_sep();
      out << "{\"name\": \"prof.self_ns\", \"cat\": \"prof\", \"ph\": \"C\", "
             "\"pid\": 0, \"tid\": "
          << kProfTid << ", \"ts\": " << us_from_ns(s.vt) << ", \"args\": {";
      bool first_arg = true;
      for (std::size_t k = 0; k < prof::kNumKinds; ++k) {
        const std::uint64_t cur = s.kind_self_ns[k];
        const std::uint64_t delta =
            cur >= prev.kind_self_ns[k] ? cur - prev.kind_self_ns[k] : 0;
        if (cur == 0 && delta == 0) continue;
        if (!first_arg) out << ", ";
        first_arg = false;
        out << "\"" << prof::kind_name(static_cast<prof::EventKind>(k))
            << "\": " << delta;
      }
      out << "}}";
      emit_sep();
      out << "{\"name\": \"prof.events\", \"cat\": \"prof\", \"ph\": \"C\", "
             "\"pid\": 0, \"tid\": "
          << kProfTid << ", \"ts\": " << us_from_ns(s.vt)
          << ", \"args\": {\"events\": " << (s.events - prev.events) << "}}";
      prev = s;
    }
  }

  out << "\n]\n}\n";
  return out.str();
}

void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const prof::Profiler* profiler) {
  write_text_file(path, chrome_trace_json(tracer, profiler));
}

}  // namespace mantis::telemetry
