#include "net/harness.hpp"

#include <utility>

#include "util/check.hpp"

namespace mantis::net {

FabricAgentHarness::FabricAgentHarness(Fabric& fabric,
                                       const compile::Artifacts& artifacts,
                                       HarnessOptions opts)
    : fabric_(&fabric), artifacts_(&artifacts), opts_(std::move(opts)) {
  // The harness owns pacing so sleeps overlap across agents; an agent-level
  // pacing_sleep would advance the shared clock with every other agent idle.
  pacing_ = opts_.agent.pacing_sleep;
  opts_.agent.pacing_sleep = 0;
}

agent::Agent& FabricAgentHarness::add_agent(NodeId node) {
  expects(!has_agent(node), "FabricAgentHarness: agent already attached");
  Member m;
  m.node = node;
  m.driver = std::make_unique<driver::Driver>(fabric_->switch_at(node),
                                              opts_.driver);
  m.agent = std::make_unique<agent::Agent>(*m.driver, *artifacts_, opts_.agent);
  m.next_due = fabric_->loop().now();
  members_.push_back(std::move(m));
  nodes_.push_back(node);
  return *members_.back().agent;
}

void FabricAgentHarness::add_all_switches() {
  for (NodeId n = 0; n < fabric_->num_switches(); ++n) add_agent(n);
}

bool FabricAgentHarness::has_agent(NodeId node) const {
  for (const auto& m : members_) {
    if (m.node == node) return true;
  }
  return false;
}

FabricAgentHarness::Member& FabricAgentHarness::member_at(NodeId node) {
  for (auto& m : members_) {
    if (m.node == node) return m;
  }
  throw UserError("FabricAgentHarness: no agent on node " +
                  std::to_string(node));
}

const FabricAgentHarness::Member& FabricAgentHarness::member_at(
    NodeId node) const {
  for (const auto& m : members_) {
    if (m.node == node) return m;
  }
  throw UserError("FabricAgentHarness: no agent on node " +
                  std::to_string(node));
}

agent::Agent& FabricAgentHarness::agent_at(NodeId node) {
  return *member_at(node).agent;
}

driver::Driver& FabricAgentHarness::driver_at(NodeId node) {
  return *member_at(node).driver;
}

void FabricAgentHarness::run_prologue(
    const std::function<void(NodeId, agent::ReactionContext&)>& user_init) {
  for (auto& m : members_) {
    const NodeId node = m.node;
    if (user_init) {
      m.agent->run_prologue(
          [&user_init, node](agent::ReactionContext& ctx) { user_init(node, ctx); });
    } else {
      m.agent->run_prologue();
    }
    m.next_due = fabric_->loop().now();
  }
}

void FabricAgentHarness::run_until(Time t) {
  auto& loop = fabric_->loop();
  const auto drain = [&](Time until) {
    if (engine_run_until_) {
      engine_run_until_(until);
    } else {
      loop.run_until(until);
    }
  };
  while (!members_.empty()) {
    Member* next = nullptr;
    for (auto& m : members_) {
      if (next == nullptr || m.next_due < next->next_due) next = &m;
    }
    if (next->next_due >= t) break;
    if (next->next_due > loop.now()) drain(next->next_due);
    next->agent->dialogue_iteration();
    ++next->iterations;
    next->next_due = loop.now() + pacing_;
  }
  // The last iteration may already have overrun `t`.
  if (t > loop.now()) drain(t);
}

std::uint64_t FabricAgentHarness::iterations(NodeId node) const {
  return member_at(node).iterations;
}

std::uint64_t FabricAgentHarness::total_iterations() const {
  std::uint64_t total = 0;
  for (const auto& m : members_) total += m.iterations;
  return total;
}

}  // namespace mantis::net
