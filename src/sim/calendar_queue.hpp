// Calendar queue for the event loop, plus the small binary heap the
// parallel engine uses for per-shard rounds.
//
// The canonical (t, src, seq) key is a strict total order (per-src sequence
// numbers never repeat), so ANY correct priority queue pops events in
// exactly one order — the data structure is free to change without moving
// a single event, which is what lets this replace std::priority_queue under
// the byte-identical determinism contract (docs/NETWORK.md). The
// equivalence suite pins that claim across seeds x topologies x threads.
//
// Structure (classic calendar queue, hardened for our workloads):
//  * A power-of-two ring of buckets, one virtual "day" (2^shift ns) per
//    bucket, covering the window [cursor, cursor + buckets) days. Every
//    event of one day lands in one bucket, kept as a small binary heap in
//    full (t, src, seq) order — so same-instant ties (control-first among
//    them) can never straddle buckets no matter where day boundaries fall.
//  * Events beyond the window — or behind the cursor, which a scheduler
//    running "in the past" relative to the queue minimum may produce — go
//    to an overflow heap. The head is min(first nonempty bucket's top,
//    overflow top) by the full comparator, so correctness never depends on
//    the window placement; the window only buys O(1)-amortized pops for
//    the dense fabric workload (tens of events per ns at the 1024-switch
//    scale).
//  * When the ring drains, the cursor jumps to the overflow minimum's day
//    and everything inside the new window migrates in (each event migrates
//    at most once). When occupancy outgrows the ring it doubles, up to
//    max_buckets. Both policies are pure functions of the push/pop
//    sequence: layout decisions are deterministic, and pop order is
//    layout-independent anyway.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/time.hpp"

namespace mantis::sim {

/// Binary min-heap handing events out by move (no top()-copy per pop —
/// std::priority_queue::top returns const& and forces one). Used for the
/// calendar buckets and the parallel engine's per-shard round queues.
template <typename Event, typename RunsAfter>
class EventHeap {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }

  void push(Event&& ev) {
    v_.push_back(std::move(ev));
    std::push_heap(v_.begin(), v_.end(), RunsAfter{});
  }

  const Event& top() const { return v_.front(); }

  Event pop_top() {
    std::pop_heap(v_.begin(), v_.end(), RunsAfter{});
    Event ev = std::move(v_.back());
    v_.pop_back();
    return ev;
  }

  /// The backing store, for wholesale redistribution (calendar resize).
  std::vector<Event>& raw() { return v_; }

 private:
  std::vector<Event> v_;
};

template <typename Event, typename RunsAfter>
class CalendarQueue {
 public:
  struct Config {
    /// Bucket width is 2^shift nanoseconds (day = t >> shift).
    int shift = 0;
    /// Initial ring size; must be a power of two.
    std::size_t buckets = 256;
    /// Ring growth cap (2^15 buckets * 24B vector header ~= 768 KiB).
    std::size_t max_buckets = std::size_t{1} << 15;
    /// Double the ring when in-window events exceed buckets * this.
    std::size_t resize_occupancy = 4;
  };

  CalendarQueue() : CalendarQueue(Config{}) {}
  explicit CalendarQueue(Config cfg) : cfg_(cfg) {
    expects(cfg_.buckets >= 2 && (cfg_.buckets & (cfg_.buckets - 1)) == 0,
            "CalendarQueue: buckets must be a power of two >= 2");
    expects(cfg_.max_buckets >= cfg_.buckets,
            "CalendarQueue: max_buckets below initial buckets");
    expects(cfg_.shift >= 0 && cfg_.shift < 63, "CalendarQueue: bad shift");
    ring_.resize(cfg_.buckets);
    mask_ = cfg_.buckets - 1;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Event&& ev) {
    if (ring_size_ > cfg_.resize_occupancy * ring_.size() &&
        ring_.size() < cfg_.max_buckets) {
      grow();
    }
    const std::uint64_t d = day(ev.t);
    if (d >= cursor_ && d < cursor_ + ring_.size()) {
      ring_[d & mask_].push(std::move(ev));
      ++ring_size_;
    } else {
      overflow_.push(std::move(ev));
    }
    ++size_;
  }

  /// The minimum event by the full (t, src, seq) comparator. Advances the
  /// cursor past empty buckets (cheap, never reorders anything), which is
  /// why the cursor is mutable.
  const Event& top() const {
    expects(size_ > 0, "CalendarQueue::top: empty queue");
    const Event* ring_min = ring_candidate();
    if (ring_min == nullptr) return overflow_.top();
    if (overflow_.empty()) return *ring_min;
    // Earlier of the two heads; RunsAfter(a, b) == "a runs after b".
    return RunsAfter{}(*ring_min, overflow_.top()) ? overflow_.top()
                                                   : *ring_min;
  }

  Event pop_top() {
    expects(size_ > 0, "CalendarQueue::pop_top: empty queue");
    if (ring_size_ == 0 && !overflow_.empty()) migrate();
    const Event* ring_min = ring_candidate();
    const bool from_ring =
        ring_min != nullptr &&
        (overflow_.empty() || !RunsAfter{}(*ring_min, overflow_.top()));
    --size_;
    if (from_ring) {
      --ring_size_;
      return ring_[cursor_ & mask_].pop_top();
    }
    return overflow_.pop_top();
  }

  // Introspection for tests: window placement and spill behavior.
  std::size_t buckets() const { return ring_.size(); }
  std::size_t overflow_size() const { return overflow_.size(); }
  std::uint64_t cursor_day() const { return cursor_; }

 private:
  std::uint64_t day(Time t) const {
    return static_cast<std::uint64_t>(t) >> cfg_.shift;
  }

  /// Top of the first nonempty bucket at/after the cursor — the ring
  /// minimum: later days hold strictly later times, and within a day the
  /// bucket heap orders by the full key. nullptr when the ring is empty.
  const Event* ring_candidate() const {
    if (ring_size_ == 0) return nullptr;
    // Buckets behind the cursor are empty by invariant (pushes below the
    // cursor spill to overflow), so each slot holds exactly one day and
    // this scan visits at most ring_.size() slots.
    while (ring_[cursor_ & mask_].empty()) ++cursor_;
    return &ring_[cursor_ & mask_].top();
  }

  /// Ring drained: jump the window to the overflow minimum's day and pull
  /// everything now inside it. Each event migrates at most once, so even a
  /// workload that always schedules beyond the window degrades to plain
  /// heap behavior, not worse.
  void migrate() {
    cursor_ = day(overflow_.top().t);
    while (!overflow_.empty() &&
           day(overflow_.top().t) < cursor_ + ring_.size()) {
      Event ev = overflow_.pop_top();
      ring_[day(ev.t) & mask_].push(std::move(ev));
      ++ring_size_;
    }
  }

  void grow() {
    std::vector<EventHeap<Event, RunsAfter>> old = std::move(ring_);
    ring_.clear();
    ring_.resize(std::min(old.size() * 2, cfg_.max_buckets));
    mask_ = ring_.size() - 1;
    ring_size_ = 0;
    for (auto& bucket : old) {
      for (auto& ev : bucket.raw()) {
        ring_[day(ev.t) & mask_].push(std::move(ev));
        ++ring_size_;
      }
    }
    // Overflow events the wider window now covers migrate in too.
    auto& spill = overflow_.raw();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < spill.size(); ++i) {
      const std::uint64_t d = day(spill[i].t);
      if (d >= cursor_ && d < cursor_ + ring_.size()) {
        ring_[d & mask_].push(std::move(spill[i]));
        ++ring_size_;
      } else {
        if (keep != i) spill[keep] = std::move(spill[i]);
        ++keep;
      }
    }
    spill.resize(keep);
    std::make_heap(spill.begin(), spill.end(), RunsAfter{});
  }

  Config cfg_;
  std::vector<EventHeap<Event, RunsAfter>> ring_;
  std::size_t mask_ = 0;
  mutable std::uint64_t cursor_ = 0;  ///< window start day
  std::size_t ring_size_ = 0;         ///< events currently in the ring
  std::size_t size_ = 0;
  EventHeap<Event, RunsAfter> overflow_;
};

}  // namespace mantis::sim
