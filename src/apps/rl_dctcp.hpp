// Use case #4 (paper §8.3.4): reinforcement learning over the reaction loop.
//
// The DCTCP ECN marking threshold is a malleable value; the reaction polls
// egress byte counters and queue depth (state s_i), picks the next threshold
// with an epsilon-greedy policy (action a_i), and updates a tabular Q
// function with the TD(0) rule from Sutton & Barto [46], maximizing
// utilization minus a queue-length penalty.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "util/rng.hpp"

namespace mantis::apps {

std::string rl_dctcp_p4r_source();

struct RlConfig {
  /// Candidate marking thresholds (packets) — the discrete action space.
  std::vector<std::uint64_t> thresholds = {4, 8, 16, 32, 64, 128};
  double epsilon = 0.1;      ///< exploration probability
  double alpha = 0.2;        ///< learning rate
  double gamma = 0.9;        ///< discount
  int util_buckets = 8;      ///< state discretization
  int qdepth_buckets = 8;
  double link_gbps = 10.0;   ///< for utilization normalization
  Duration step_interval = 0;  ///< min virtual time between RL steps (0 = every iteration)
  double queue_penalty = 0.5;
  std::uint64_t seed = 17;
};

struct RlState {
  RlConfig cfg;
  Rng rng{17};

  std::vector<std::vector<double>> q;  ///< [state][action]
  int last_state = -1;
  int last_action = -1;
  std::uint64_t last_bytes = 0;
  Time last_step_at = 0;

  std::uint64_t steps = 0;
  double cumulative_reward = 0;
  std::vector<double> reward_history;
  std::function<void(int, double)> on_step;  ///< (chosen action, reward)

  int state_index(double util, std::uint64_t qdepth) const;
};

agent::Agent::NativeFn make_rl_reaction(std::shared_ptr<RlState> state);

}  // namespace mantis::apps
