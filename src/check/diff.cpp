#include "check/diff.hpp"

#include <algorithm>
#include <sstream>

#include "agent/agent.hpp"
#include "check/ref_model.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "p4r/sema.hpp"
#include "sim/event_loop.hpp"
#include "sim/switch.hpp"
#include "util/check.hpp"

namespace mantis::check {

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kAgreed: return "agreed";
    case Outcome::kAgreedError: return "agreed_error";
    case Outcome::kDiverged: return "diverged";
    case Outcome::kSkipped: return "skipped";
  }
  return "?";
}

namespace {

using LogVec = std::vector<std::pair<std::string, std::int64_t>>;

p4::EntrySpec to_spec(const InitialEntry& e) {
  p4::EntrySpec spec;
  spec.action = e.action;
  spec.action_args = e.args;
  spec.priority = e.priority;
  for (std::size_t i = 0; i < e.key.size(); ++i) {
    const std::uint64_t mask =
        i < e.masks.size() ? e.masks[i] : ~std::uint64_t{0};
    spec.key.push_back(p4::MatchValue{e.key[i], mask});
  }
  return spec;
}

std::string verdict_str(const RefVerdict& v) {
  std::ostringstream o;
  o << "pid=" << v.pid;
  if (!v.forwarded) {
    o << " dropped";
    return o.str();
  }
  o << " port=" << v.port;
  for (const auto& [name, value] : v.fields) o << " " << name << "=" << value;
  return o.str();
}

/// Everything the compiled path exposes for comparison, collected per epoch.
struct DutState {
  sim::EventLoop loop;
  std::unique_ptr<sim::Switch> sw;
  std::unique_ptr<driver::Driver> drv;
  std::unique_ptr<agent::Agent> ag;
  LogVec log;
  std::vector<RefVerdict> transmitted;  ///< epoch-local, in tx order
  p4::FieldId f_pid = p4::kInvalidField;

  explicit DutState(const compile::Artifacts& art) {
    sw = std::make_unique<sim::Switch>(loop, art.prog);
    drv = std::make_unique<driver::Driver>(*sw);
    ag = std::make_unique<agent::Agent>(*drv, art);
    f_pid = art.prog.fields.find("pm.pid");
    ag->set_log_hook([this](const std::string& rx, std::int64_t v) {
      log.emplace_back(rx, v);
    });
    sw->set_on_transmit([this](const sim::Packet& pkt, int port, Time) {
      RefVerdict v;
      v.pid = f_pid != p4::kInvalidField ? pkt.get(f_pid)
                                         : transmitted.size();
      v.forwarded = true;
      v.port = port;
      const auto& cat = sw->program().fields;
      for (p4::FieldId f = 0; f < cat.size(); ++f) {
        if (cat.instance(f) == p4::intrinsics::kInstance) continue;
        v.fields.emplace_back(cat.full_name(f), pkt.get(f));
      }
      transmitted.push_back(std::move(v));
    });
  }
};

/// Restricts a DUT verdict to the fields the reference program declares (the
/// compiled catalog adds p4r_meta_ / measurement metadata the reference
/// never sees).
RefVerdict project(const RefVerdict& dut, const RefVerdict& ref_shape) {
  RefVerdict out;
  out.pid = dut.pid;
  out.forwarded = dut.forwarded;
  out.port = dut.port;
  for (const auto& [name, want] : ref_shape.fields) {
    (void)want;
    bool found = false;
    for (const auto& [dn, dv] : dut.fields) {
      if (dn == name) {
        out.fields.emplace_back(dn, dv);
        found = true;
        break;
      }
    }
    if (!found) out.fields.emplace_back(name, ~std::uint64_t{0});
  }
  return out;
}

class DiffRun {
 public:
  DiffRun(const Scenario& s, const DiffOptions& opts, DiffResult& out)
      : s_(s), opts_(opts), out_(out) {}

  void run() {
    // ---- build both paths ----
    // UserError is the designed rejection path; logic_error (Invariant /
    // Precondition) additionally surfaces from Program::validate() when the
    // minimizer hands us debris like an action referencing a deleted
    // register. Both mean "not a valid scenario", never a divergence.
    p4r::P4RProgram fp;
    try {
      fp = p4r::frontend(s_.program.render());
    } catch (const UserError& e) {
      return skip(std::string("frontend: ") + e.what());
    } catch (const std::logic_error& e) {
      return skip(std::string("frontend: ") + e.what());
    }
    compile::Artifacts art;
    try {
      art = compile::compile(fp, opts_.compile);
    } catch (const UserError& e) {
      return skip(std::string("compile: ") + e.what());
    } catch (const std::logic_error& e) {
      return skip(std::string("compile: ") + e.what());
    }
    std::unique_ptr<RefModel> ref;
    try {
      ref = std::make_unique<RefModel>(std::move(fp));
    } catch (const RefUnsupported& e) {
      return skip(std::string("ref: ") + e.what());
    } catch (const UserError& e) {
      return skip(std::string("ref: ") + e.what());
    } catch (const std::logic_error& e) {
      return skip(std::string("ref: ") + e.what());
    }

    // Packets must reference declared fields and in-range ports; anything
    // else is a malformed scenario (minimizer debris), not a divergence.
    for (const auto& p : s_.packets) {
      if (p.port < 0 || p.port >= 32) return skip("packet: port out of range");
      for (const auto& [name, v] : p.fields) {
        (void)v;
        if (ref->program().prog.fields.find(name) == p4::kInvalidField) {
          return skip("packet: unknown field " + name);
        }
      }
    }

    DutState dut(art);
    dut_ = &dut;
    dut.ag->run_prologue();

    // ---- initial entries (management plane, both paths) ----
    for (const auto& e : s_.entries) {
      bool ref_ok = true, dut_ok = true;
      std::string ref_err, dut_err;
      try {
        ref->add_entry(e.table, to_spec(e));
      } catch (const UserError& err) {
        ref_ok = false;
        ref_err = err.what();
      }
      try {
        dut.ag->management_context().add_entry(e.table, to_spec(e));
      } catch (const UserError& err) {
        dut_ok = false;
        dut_err = err.what();
      }
      if (ref_ok != dut_ok) {
        diverge(0, "setup",
                "initial entry on " + e.table + ": ref " +
                    (ref_ok ? "accepted" : "rejected (" + ref_err + ")") +
                    ", compiled " +
                    (dut_ok ? "accepted" : "rejected (" + dut_err + ")"));
        return;
      }
      if (!ref_ok) {
        out_.outcome = Outcome::kAgreedError;
        out_.skip_reason = "initial entry rejected by both: " + ref_err;
        return;
      }
    }

    // ---- epochs ----
    std::uint64_t pid = 0;
    std::size_t next_pkt = 0;
    for (std::uint32_t epoch = 0; epoch < s_.epochs; ++epoch) {
      dut.transmitted.clear();
      std::vector<RefVerdict> ref_fwd;

      while (next_pkt < s_.packets.size() &&
             s_.packets[next_pkt].epoch <= epoch) {
        const auto& p = s_.packets[next_pkt++];
        try {
          RefVerdict v = ref->process_packet(p, pid);
          if (v.forwarded) ref_fwd.push_back(std::move(v));
        } catch (const RefUnsupported& e) {
          return skip(std::string("ref: ") + e.what());
        }
        sim::PacketFactory fac(dut.sw->program());
        sim::Packet pkt = fac.make(p.length);
        for (const auto& [name, v] : p.fields) fac.set(pkt, name, v);
        if (dut.f_pid != p4::kInvalidField) fac.set(pkt, "pm.pid", pid);
        dut.sw->inject(std::move(pkt), p.port);
        dut.loop.run();  // drain: transmit order == injection order
        ++pid;
      }

      if (!compare_verdicts(epoch, ref_fwd, dut)) return;

      bool ref_ok = true, dut_ok = true;
      std::string ref_err, dut_err;
      try {
        ref->dialogue_iteration();
      } catch (const UserError& e) {
        ref_ok = false;
        ref_err = e.what();
      }
      try {
        dut.ag->dialogue_iteration();
      } catch (const UserError& e) {
        dut_ok = false;
        dut_err = e.what();
      }
      if (ref_ok != dut_ok) {
        diverge(epoch, "exception",
                std::string("dialogue: ref ") +
                    (ref_ok ? "succeeded" : "threw (" + ref_err + ")") +
                    ", compiled " +
                    (dut_ok ? "succeeded" : "threw (" + dut_err + ")"));
        return;
      }
      if (!ref_ok) {
        // Both rejected the same epoch. Agent state after a thrown iteration
        // is unspecified, so the run ends here with agreeing errors.
        out_.outcome = Outcome::kAgreedError;
        out_.skip_reason = "epoch " + std::to_string(epoch) +
                           " rejected by both: " + ref_err;
        out_.epochs_run = epoch;
        return;
      }

      if (!compare_state(epoch, *ref, dut)) return;
      out_.epochs_run = epoch + 1;
    }

    out_.outcome = Outcome::kAgreed;
    out_.digest = make_digest(*ref, dut);
  }

 private:
  void skip(std::string reason) {
    out_.outcome = Outcome::kSkipped;
    out_.skip_reason = std::move(reason);
  }

  void diverge(std::uint32_t epoch, std::string surface, std::string detail) {
    out_.outcome = Outcome::kDiverged;
    // First divergence: freeze the DUT's flight-recorder state (driver op
    // log, reaction records, live switch snapshot) for offline inspection.
    if (out_.flight_dump.empty() && dut_ != nullptr) {
      out_.flight_dump = dut_->loop.telemetry().recorder().trigger(
          dut_->loop.now(), "divergence epoch=" + std::to_string(epoch) + " [" +
                                surface + "] " + detail);
    }
    out_.divergences.push_back(
        Divergence{epoch, std::move(surface), std::move(detail)});
  }

  bool compare_verdicts(std::uint32_t epoch,
                        const std::vector<RefVerdict>& ref_fwd,
                        const DutState& dut) {
    if (ref_fwd.size() != dut.transmitted.size()) {
      diverge(epoch, "verdict",
              "forwarded packet count: ref " + std::to_string(ref_fwd.size()) +
                  ", compiled " + std::to_string(dut.transmitted.size()));
      return false;
    }
    for (std::size_t i = 0; i < ref_fwd.size(); ++i) {
      RefVerdict got = project(dut.transmitted[i], ref_fwd[i]);
      // Without a pm.pid metadata field the compiled path has no carrier for
      // the injection pid; ordering is still checked positionally above.
      if (dut.f_pid == p4::kInvalidField) got.pid = ref_fwd[i].pid;
      if (!(got == ref_fwd[i])) {
        diverge(epoch, "verdict",
                "ref [" + verdict_str(ref_fwd[i]) + "] vs compiled [" +
                    verdict_str(got) + "]");
        return false;
      }
    }
    return true;
  }

  bool compare_state(std::uint32_t epoch, const RefModel& ref, DutState& dut) {
    // Reaction log: cumulative on both sides; compare in full.
    if (ref.log() != dut.log) {
      std::ostringstream o;
      o << "log length ref=" << ref.log().size()
        << " compiled=" << dut.log.size();
      const std::size_t n = std::min(ref.log().size(), dut.log.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (ref.log()[i] != dut.log[i]) {
          o << "; first mismatch at " << i << ": ref " << ref.log()[i].first
            << "=" << ref.log()[i].second << " vs " << dut.log[i].first << "="
            << dut.log[i].second;
          break;
        }
      }
      diverge(epoch, "log", o.str());
      return false;
    }

    for (const auto& name : ref.scalar_names()) {
      const std::uint64_t want = ref.scalar(name);
      const std::uint64_t got = dut.ag->scalar(name);
      if (want != got) {
        diverge(epoch, "scalar",
                name + ": ref " + std::to_string(want) + ", compiled " +
                    std::to_string(got));
        return false;
      }
    }

    const auto& rf = dut.sw->registers();
    for (const auto& [name, cells] : ref.registers()) {
      if (!rf.has(name)) continue;  // write-only elimination pass removed it
      const auto got = rf.read_range(
          name, 0, static_cast<std::uint32_t>(cells.size() - 1));
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] != got[i]) {
          diverge(epoch, "register",
                  name + "[" + std::to_string(i) + "]: ref " +
                      std::to_string(cells[i]) + ", compiled " +
                      std::to_string(got[i]));
          return false;
        }
      }
    }

    for (const auto& name : ref.counter_names()) {
      for (std::uint32_t i = 0; i < ref.counter_count(name); ++i) {
        const std::uint64_t want = ref.counter_value(name, i);
        const std::uint64_t got = rf.counter_value(name, i);
        if (want != got) {
          diverge(epoch, "counter",
                  name + "[" + std::to_string(i) + "]: ref " +
                      std::to_string(want) + ", compiled " +
                      std::to_string(got));
          return false;
        }
      }
    }

    auto mgmt = dut.ag->management_context();
    for (const auto& table : ref.table_names()) {
      std::size_t got_count = 0;
      try {
        got_count = mgmt.entry_count(table);
      } catch (const UserError&) {
        continue;  // table exists only pre-compilation (not expected today)
      }
      if (ref.entry_count(table) != got_count) {
        diverge(epoch, "table",
                table + ": entry count ref " +
                    std::to_string(ref.entry_count(table)) + ", compiled " +
                    std::to_string(got_count));
        return false;
      }
      for (const auto& e : ref.entries(table)) {
        if (!mgmt.find_entry(table, e.key).has_value()) {
          std::ostringstream o;
          o << table << ": ref entry {";
          for (const auto& k : e.key) o << " " << k.value << "/" << k.mask;
          o << " } -> " << e.action << " missing from compiled table";
          diverge(epoch, "table", o.str());
          return false;
        }
      }
    }
    return true;
  }

  std::string make_digest(const RefModel& ref, DutState& dut) {
    std::ostringstream o;
    o << "epochs=" << out_.epochs_run << "\n";
    for (const auto& name : ref.scalar_names()) {
      o << "scalar " << name << "=" << ref.scalar(name) << "\n";
    }
    for (const auto& [name, cells] : ref.registers()) {
      o << "register " << name << " =";
      for (const auto c : cells) o << " " << c;
      o << "\n";
    }
    for (const auto& name : ref.counter_names()) {
      o << "counter " << name << " =";
      for (std::uint32_t i = 0; i < ref.counter_count(name); ++i) {
        o << " " << ref.counter_value(name, i);
      }
      o << "\n";
    }
    for (const auto& table : ref.table_names()) {
      o << "table " << table << " count=" << ref.entry_count(table) << "\n";
    }
    for (const auto& [rx, v] : ref.log()) o << "log " << rx << " " << v << "\n";
    o << "dut_iterations=" << dut.ag->iterations() << "\n";
    return o.str();
  }

  const Scenario& s_;
  const DiffOptions& opts_;
  DiffResult& out_;
  DutState* dut_ = nullptr;  ///< set once the DUT stack is built
};

}  // namespace

DiffResult run_diff(const Scenario& s, const DiffOptions& opts,
                    telemetry::MetricsRegistry* metrics) {
  DiffResult out;
  DiffRun(s, opts, out).run();
  if (metrics != nullptr) {
    metrics->counter("check.diff.runs").add();
    metrics->counter(std::string("check.diff.") +
                     std::string(outcome_name(out.outcome)))
        .add();
  }
  return out;
}

DiffResult run_diff(const Scenario& s, telemetry::MetricsRegistry* metrics) {
  return run_diff(s, DiffOptions{}, metrics);
}

}  // namespace mantis::check
