// Traffic manager: per-egress-port FIFO queues serviced at line rate, with
// tail drop and queue-depth gauges. Sits between the ingress and egress
// pipelines, like the TM of an RMT ASIC. Queue depth is where the DoS and RL
// use cases read congestion from.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/packet.hpp"

namespace mantis::sim {

class TrafficManager {
 public:
  /// `deliver` is invoked at dequeue time (start of egress processing).
  using Deliver = std::function<void(Packet, int port)>;

  TrafficManager(EventLoop& loop, int num_ports, double port_gbps,
                 std::uint64_t queue_capacity_bytes, Deliver deliver);

  /// Enqueues for transmission on `port`; tail-drops when the queue is full
  /// or the port is administratively down.
  void enqueue(Packet pkt, int port);

  std::uint32_t queue_depth_pkts(int port) const;
  std::uint64_t queue_depth_bytes(int port) const;

  void set_port_up(int port, bool up);
  bool port_up(int port) const;

  struct PortStats {
    std::uint64_t enq_pkts = 0;
    std::uint64_t deq_pkts = 0;
    std::uint64_t deq_bytes = 0;
    std::uint64_t tail_drops = 0;
  };
  const PortStats& stats(int port) const;

  int num_ports() const { return static_cast<int>(queues_.size()); }

  /// Serialization delay for `bytes` at the configured port rate.
  Duration transmission_time(std::uint32_t bytes) const;

 private:
  struct PortQueue {
    std::deque<Packet> packets;
    std::uint64_t bytes = 0;
    bool busy = false;
    bool up = true;
    PortStats stats;
    /// Lazily bound per-port depth gauge (created on first enqueue so idle
    /// ports do not clutter the registry).
    telemetry::Gauge* depth_gauge = nullptr;
  };

  EventLoop* loop_;
  double bytes_per_ns_;
  std::uint64_t capacity_bytes_;
  Deliver deliver_;
  std::vector<PortQueue> queues_;

  // Cached telemetry sinks.
  telemetry::Histogram* depth_hist_;
  telemetry::Counter* enq_ctr_;
  telemetry::Counter* deq_ctr_;
  telemetry::Counter* drop_ctr_;
  telemetry::prof::Profiler* prof_;  ///< hot-path cost attribution

  telemetry::Gauge& port_depth_gauge(int port, PortQueue& q);
  void record_depth(int port, PortQueue& q);
  void start_service(int port);
  PortQueue& queue(int port);
  const PortQueue& queue(int port) const;
};

}  // namespace mantis::sim
