// The Mantis compiler (paper §4–5): transforms a P4R program into
//  (1) a valid, malleable P4 program (runnable on the RMT simulator and
//      emittable as P4-14 text), and
//  (2) the bindings + reaction bodies the Mantis agent executes
//      (the counterpart of the paper's generated C library).
#pragma once

#include <string>
#include <string_view>

#include "compile/bindings.hpp"
#include "p4/rmt_model.hpp"
#include "p4r/sema.hpp"

namespace mantis::compile {

struct Options {
  /// The target's resource envelope. `rmt.max_action_bits` bounds a single
  /// init action (exceeding it splits the init table, paper §4.1/§5.1.1) and
  /// `rmt.measure_word_bits` sizes packed measurement registers; the
  /// remaining budgets gate stage allocation when `enforce_rmt` is set.
  p4::RmtResourceModel rmt;
  /// Run the full hardware checks as part of compile() — PHV container
  /// widths, per-action parameter budgets, and RMT stage allocation — and
  /// reject programs that exceed the model with a p4::ResourceExhausted
  /// naming the resource. Off by default: the simulator has no stages, and
  /// some valid-for-simulation programs (e.g. dependent tables sharing a
  /// register) are not stage-mappable under RMT co-location rules. The
  /// resource-budget fuzzer and hardware-fidelity checks turn this on.
  bool enforce_rmt = false;
};

struct Artifacts {
  p4::Program prog;     ///< transformed and validated
  Bindings bindings;
  std::vector<p4r::Reaction> reactions;  ///< reaction bodies (token streams)
  std::string p4_source;  ///< artifact #1: generated P4-14 text
  std::string c_source;   ///< artifact #2: generated C skeleton text
};

/// Compiles an analyzed P4R program. Throws UserError on programs the
/// transformation rules cannot handle (e.g. writing a malleable field that a
/// field_list reads).
Artifacts compile(const p4r::P4RProgram& src, const Options& opts = {});

/// Convenience: lex + parse + analyze + compile.
Artifacts compile_source(std::string_view p4r_source, const Options& opts = {});

}  // namespace mantis::compile
