// Use case #1 (paper §8.3.1): flow size estimation and DoS mitigation.
//
// The data plane tracks the current packet's source IP (measured field) and a
// running total byte counter (measured register). The reaction attributes
// each iteration's byte delta to the last-seen source, estimates per-sender
// rates, and installs a drop rule into the malleable `block` table for any
// sender exceeding the threshold (the Poseidon-style defense).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "agent/agent.hpp"

namespace mantis::apps {

struct DosConfig {
  double block_threshold_gbps = 1.0;  ///< paper's simple 1 Gbps threshold
  std::uint64_t min_age_us = 100;     ///< minimum flow age before blocking
};

/// The P4R program (with an embedded interpreted reaction equivalent to the
/// native one below).
std::string dos_p4r_source();

/// Shared state of the native reaction: per-sender estimates and block log.
struct DosState {
  struct Flow {
    Time first_seen = 0;
    std::uint64_t bytes = 0;
    bool blocked = false;
  };
  std::map<std::uint32_t, Flow> flows;
  std::uint64_t last_total = 0;
  std::uint64_t iterations = 0;
  std::uint64_t samples_attributed = 0;

  /// Invoked at block time: (source ip, virtual time of the buffered add).
  std::function<void(std::uint32_t, Time)> on_block;

  /// Mantis's estimate of bytes sent by `src` (0 if never sampled).
  std::uint64_t estimate(std::uint32_t src) const;
};

/// Builds the native reaction for the "dos_react" reaction slot.
agent::Agent::NativeFn make_dos_reaction(std::shared_ptr<DosState> state,
                                         DosConfig cfg = {});

/// Installs the routing entries the examples/benches use: dst 192.168.x.y
/// routes to port (x % egress_ports). Call from the agent prologue.
void install_dos_routes(agent::ReactionContext& ctx, int egress_ports);

}  // namespace mantis::apps
