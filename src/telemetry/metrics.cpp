#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace mantis::telemetry {

namespace {

/// Shortest round-trippable rendering; integers print without a fraction.
std::string fmt_double(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest form that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

std::string quantile_key(double q) {
  // 0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p99.9"
  const double pct = q * 100.0;
  char buf[32];
  if (pct == std::floor(pct)) {
    std::snprintf(buf, sizeof(buf), "p%.0f", pct);
  } else {
    std::snprintf(buf, sizeof(buf), "p%g", pct);
  }
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(HistogramOptions opts) : opts_(std::move(opts)) {
  expects(opts_.first_bucket > 0, "Histogram: first bucket must be positive");
  expects(opts_.growth > 1.0, "Histogram: growth must exceed 1");
  expects(opts_.buckets > 0, "Histogram: need at least one bucket");
  bounds_.reserve(opts_.buckets);
  double b = opts_.first_bucket;
  for (std::size_t i = 0; i < opts_.buckets; ++i) {
    bounds_.push_back(b);
    b *= opts_.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
  quantiles_.reserve(opts_.quantiles.size());
  for (const double q : opts_.quantiles) quantiles_.emplace_back(q);
}

void Histogram::record(double v) {
  if (ShardLane* lane = ShardLane::current()) {
    lane->defer([this, v] { record_direct(v); });
    return;
  }
  record_direct(v);
}

void Histogram::record_direct(double v) {
  ++total_;
  stats_.add(v);
  for (auto& est : quantiles_) est.add(v);
  if (opts_.keep_raw) raw_.add(v);
  // Geometric bounds: the first bucket >= v is found directly.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

double Histogram::quantile(double q) const {
  expects(total_ > 0, "Histogram::quantile: no samples");
  if (opts_.keep_raw) return raw_.percentile(q * 100.0);
  for (const auto& est : quantiles_) {
    if (est.q() == q) return est.value();
  }
  throw UserError("Histogram::quantile: q=" + std::to_string(q) +
                  " not tracked (configure it in HistogramOptions)");
}

const Samples& Histogram::raw() const {
  expects(opts_.keep_raw, "Histogram::raw: keep_raw not enabled");
  return raw_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& e = metrics_[name];
  if (!e.counter) {
    expects(!e.gauge && !e.histogram,
            "MetricsRegistry: " + name + " already registered as another kind");
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& e = metrics_[name];
  if (!e.gauge) {
    expects(!e.counter && !e.histogram,
            "MetricsRegistry: " + name + " already registered as another kind");
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& e = metrics_[name];
  if (!e.histogram) {
    expects(!e.counter && !e.gauge,
            "MetricsRegistry: " + name + " already registered as another kind");
    e.histogram = std::make_unique<Histogram>(std::move(opts));
  }
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.histogram.get();
}

std::string MetricsRegistry::snapshot_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << json_escape(name) << "\": ";
    if (e.counter) {
      out << "{\"type\": \"counter\", \"value\": " << e.counter->value() << "}";
    } else if (e.gauge) {
      out << "{\"type\": \"gauge\", \"value\": " << fmt_double(e.gauge->value())
          << "}";
    } else {
      const Histogram& h = *e.histogram;
      out << "{\"type\": \"histogram\", \"count\": " << h.count();
      if (h.count() > 0) {
        out << ", \"mean\": " << fmt_double(h.stats().mean())
            << ", \"min\": " << fmt_double(h.stats().min())
            << ", \"max\": " << fmt_double(h.stats().max());
        for (const double q : h.tracked_quantiles()) {
          out << ", \"" << quantile_key(q)
              << "\": " << fmt_double(h.quantile(q));
        }
        out << ", \"buckets\": [";
        bool bfirst = true;
        for (std::size_t i = 0; i <= h.buckets(); ++i) {
          if (h.bucket_count(i) == 0) continue;  // sparse: zeros add no info
          if (!bfirst) out << ", ";
          bfirst = false;
          out << "[";
          if (i < h.buckets()) {
            out << fmt_double(h.bucket_upper_bound(i));
          } else {
            out << "\"inf\"";
          }
          out << ", " << h.bucket_count(i) << "]";
        }
        out << "]";
      }
      out << "}";
    }
  }
  out << "\n}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

void ReportParams::set(const std::string& key, const std::string& value) {
  kv_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void ReportParams::set(const std::string& key, std::int64_t value) {
  kv_.emplace_back(key, std::to_string(value));
}

void ReportParams::set(const std::string& key, double value) {
  kv_.emplace_back(key, fmt_double(value));
}

std::string report_json(const std::string& bench, const ReportParams& params,
                        const MetricsRegistry& metrics) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n  \"params\": {";
  bool first = true;
  for (const auto& [k, v] : params.raw()) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << json_escape(k) << "\": " << v;
  }
  out << (params.raw().empty() ? "" : "\n  ") << "},\n  \"metrics\": ";
  // Indent the nested snapshot to keep the file readable.
  const std::string snap = metrics.snapshot_json();
  for (const char c : snap) {
    out << c;
    if (c == '\n') out << "  ";
  }
  out << "\n}\n";
  return out.str();
}

std::string report_json(const std::string& bench, const ReportParams& params,
                        const MetricsRegistry& metrics,
                        const std::string& prof_json) {
  if (prof_json.empty()) return report_json(bench, params, metrics);
  std::string base = report_json(bench, params, metrics);
  // Splice a "prof" section (a pre-rendered JSON object) before the closing
  // brace, indenting it one level.
  const auto close = base.rfind("\n}\n");
  expects(close != std::string::npos, "report_json: malformed base report");
  std::ostringstream out;
  out << base.substr(0, close) << ",\n  \"prof\": ";
  std::string trimmed = prof_json;
  while (!trimmed.empty() && (trimmed.back() == '\n' || trimmed.back() == ' ')) {
    trimmed.pop_back();
  }
  for (const char c : trimmed) {
    out << c;
    if (c == '\n') out << "  ";
  }
  out << "\n}\n";
  return out.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw UserError("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) throw UserError("write failed: " + path);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mantis::telemetry
