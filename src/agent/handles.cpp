#include "agent/handles.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mantis::agent {

namespace {

constexpr std::uint64_t kFullMask = ~std::uint64_t{0};

}  // namespace

std::vector<p4::EntrySpec> expand_user_entry(const compile::TableInfo& info,
                                             const AltCounts& alts,
                                             const p4::EntrySpec& user,
                                             std::optional<int> vv) {
  expects(user.key.size() == info.original_read_count,
          "expand_user_entry: key arity mismatch for " + info.name);
  const auto* action_info = info.find_action(user.action);
  if (action_info == nullptr) {
    throw UserError("table " + info.name + ": unknown original action '" +
                    user.action + "'");
  }

  // Dims relevant to this entry: every match-expanded field, plus every
  // field the entry's action is specialized over. (A field used in both
  // places contributes one dim — the paper's shared-selector case.)
  std::vector<std::string> dims;
  for (const auto& mri : info.mbl_reads) dims.push_back(mri.mbl);
  for (const auto& d : action_info->dims) {
    if (std::find(dims.begin(), dims.end(), d) == dims.end()) dims.push_back(d);
  }

  std::vector<std::size_t> dim_counts;
  std::size_t combos = 1;
  for (const auto& d : dims) {
    auto it = alts.find(d);
    expects(it != alts.end(), "expand_user_entry: missing alt count for " + d);
    dim_counts.push_back(it->second);
    combos *= it->second;
  }

  const std::size_t total_cols = info.total_cols;
  std::vector<p4::EntrySpec> out;
  out.reserve(combos);

  for (std::size_t c = 0; c < combos; ++c) {
    // Decode choice per dim (last dim fastest, consistent with ActionInfo).
    std::vector<std::size_t> choice(dims.size());
    std::size_t rem = c;
    for (std::size_t k = dims.size(); k-- > 0;) {
      choice[k] = rem % dim_counts[k];
      rem /= dim_counts[k];
    }
    auto choice_of = [&](const std::string& field) -> std::optional<std::size_t> {
      for (std::size_t k = 0; k < dims.size(); ++k) {
        if (dims[k] == field) return choice[k];
      }
      return std::nullopt;
    };

    p4::EntrySpec concrete;
    concrete.priority = user.priority;
    concrete.action_args = user.action_args;
    // Wildcard everything, then fill.
    concrete.key.assign(total_cols, p4::MatchValue{0, 0});

    // Plain columns.
    for (std::size_t i = 0; i < info.original_read_count; ++i) {
      if (info.col_of_original[i] >= 0) {
        concrete.key[static_cast<std::size_t>(info.col_of_original[i])] =
            user.key[i];
      }
    }
    // Match-expanded columns: the chosen alternative gets the user's
    // key component; the other alternatives stay wildcard.
    for (const auto& mri : info.mbl_reads) {
      const auto chosen = choice_of(mri.mbl);
      ensures(chosen.has_value(), "expand_user_entry: missing choice");
      const auto& user_mv = user.key[mri.original_index];
      concrete.key[mri.alt_cols[*chosen]] =
          p4::MatchValue{user_mv.value & mri.premask, user_mv.mask & mri.premask};
    }
    // Selector columns: concrete value for dims relevant to this entry,
    // wildcard for selector columns this entry does not care about.
    for (const auto& [field, col] : info.selector_cols) {
      const auto chosen = choice_of(field);
      if (chosen.has_value()) {
        concrete.key[col] = p4::MatchValue{*chosen, kFullMask};
      }
    }
    // Version column.
    if (vv.has_value()) {
      ensures(info.vv_col >= 0, "expand_user_entry: vv given for plain table");
      concrete.key[static_cast<std::size_t>(info.vv_col)] =
          p4::MatchValue{static_cast<std::uint64_t>(*vv), kFullMask};
    } else {
      ensures(info.vv_col < 0, "expand_user_entry: vv required for " + info.name);
    }

    // Specialized action for this combination (restricted to action dims).
    std::vector<std::size_t> action_choice;
    for (const auto& d : action_info->dims) {
      const auto chosen = choice_of(d);
      ensures(chosen.has_value(), "expand_user_entry: missing action choice");
      action_choice.push_back(*chosen);
    }
    concrete.action = action_info->specialized_for(action_choice);
    out.push_back(std::move(concrete));
  }
  return out;
}

std::optional<UserEntryId> TableRuntime::find_by_key(
    const std::vector<p4::MatchValue>& key) const {
  for (const auto& [id, entry] : entries) {
    if (!entry.pending_delete && entry.user_spec.key == key) return id;
  }
  return std::nullopt;
}

}  // namespace mantis::agent
