// Example: ECMP hash polarization mitigation (use case #3, §8.3.3).
//
// The ECMP hash inputs are malleable fields. A correlated workload (16 NAT'd
// flow tuples) polarizes the initial {src,dst,sport} hash; the reaction
// watches the MAD of per-port counters and, when the imbalance persists,
// shifts the hash inputs — one atomic init-table update — to a configuration
// that includes the high-entropy dstPort.
//
//   $ ./example_hash_polarization
#include <cstdio>
#include <memory>

#include "agent/agent.hpp"
#include "apps/hash_polarization.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "sim/switch.hpp"
#include "util/rng.hpp"

namespace {

void print_loads(mantis::sim::Switch& sw, const char* label,
                 const std::uint64_t* baseline) {
  std::printf("%s per-port packets:", label);
  for (int p = 0; p < 8; ++p) {
    std::printf(" %5llu",
                static_cast<unsigned long long>(sw.port_stats(p).tx_pkts -
                                                (baseline ? baseline[p] : 0)));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mantis;

  const auto artifacts =
      compile::compile_source(apps::hash_polarization_p4r_source());
  sim::EventLoop loop;
  sim::Switch sw(loop, artifacts.prog);
  driver::Driver drv(sw);
  agent::Agent agent(drv, artifacts);

  auto state = std::make_shared<apps::HashPolState>();
  state->on_shift = [&](std::size_t cfg, Time t) {
    std::printf("[%8.1f us] persistent imbalance -> shifted hash inputs to "
                "config %zu\n",
                to_us(t), cfg);
  };
  agent.set_native_reaction("hp_react", apps::make_hash_pol_reaction(state));
  agent.run_prologue();

  Rng rng(99);
  auto send_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const auto tuple = static_cast<std::uint32_t>(rng.uniform(16));
      auto pkt = sw.factory().make(200);
      sw.factory().set(pkt, "ipv4.srcAddr", 0x0a000000 + tuple);
      sw.factory().set(pkt, "ipv4.dstAddr", 0xc0a80000 + tuple * 7);
      sw.factory().set(pkt, "l4.srcPort", 4096);
      sw.factory().set(pkt, "l4.dstPort", rng.uniform(40000));
      sw.inject(std::move(pkt), 0);
      loop.run();
    }
  };

  std::printf("config 0 hashes {srcAddr, dstAddr, srcPort} — 16 correlated\n"
              "tuples polarize it:\n");
  for (int round = 0; round < 12 && state->shifts == 0; ++round) {
    send_burst(400);
    agent.dialogue_iteration();
    std::printf("  round %2d: MAD/mean = %.3f\n", round, state->last_ratio);
  }
  print_loads(sw, "pre-shift ", nullptr);

  std::uint64_t baseline[8];
  for (int p = 0; p < 8; ++p) baseline[p] = sw.port_stats(p).tx_pkts;
  send_burst(2000);
  agent.dialogue_iteration();
  print_loads(sw, "post-shift", baseline);
  std::printf("post-shift MAD/mean = %.3f (threshold %.2f)\n", state->last_ratio,
              state->cfg.imbalance_ratio);
  return 0;
}
