// Low-overhead virtual-time event tracer.
//
// Spans and instants land in a fixed-capacity ring buffer, each keyed to the
// simulation's virtual clock (sim::Time) plus the wall-clock instant it was
// recorded, so a trace shows both where virtual time went and how long the
// host took to simulate it. Recording is gated on a runtime flag that
// defaults to OFF — a disabled tracer costs one branch per site — and the
// MANTIS_SPAN/MANTIS_INSTANT macros compile to nothing entirely when the
// build sets MANTIS_TELEMETRY_ENABLED=0 (CMake option MANTIS_TELEMETRY=OFF).
//
// Export with telemetry/chrome_trace.hpp; open in chrome://tracing or
// Perfetto. Span taxonomy lives in docs/TELEMETRY.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"

#ifndef MANTIS_TELEMETRY_ENABLED
#define MANTIS_TELEMETRY_ENABLED 1
#endif

namespace mantis::telemetry {

/// Chrome-trace "thread" lanes: one per actor so spans stack sensibly.
enum class Track : std::uint8_t {
  kAgent = 0,          ///< dialogue phases
  kDriverChannel = 1,  ///< serialized PCIe channel occupancy
  kSwitch = 2,         ///< packet pipeline passes
  kTrafficManager = 3, ///< queueing / service
  kLegacy = 4,         ///< legacy control-plane clients
  kHost = 5,           ///< host-side work (compiler, tooling)
};
constexpr std::size_t kNumTracks = 6;
const char* track_name(Track t);

struct TraceEvent {
  /// kFlow* are Chrome flow events (ph "s"/"t"/"f"): same-id events render
  /// as one connected arc across tracks, binding to the enclosing slice at
  /// their timestamp. The provenance layer uses them to draw one reaction as
  /// agent span -> driver op spans -> sim commit -> first-effect packet.
  enum class Phase : std::uint8_t {
    kComplete,
    kInstant,
    kFlowStart,
    kFlowStep,
    kFlowEnd,
  };

  const char* name = "";      ///< static/interned strings only (no copy)
  const char* category = "";
  Phase phase = Phase::kComplete;
  Track track = Track::kAgent;
  Time vt_begin = 0;          ///< virtual ns
  Duration vt_dur = 0;        ///< virtual ns (0 for instants)
  std::int64_t wall_ns = 0;   ///< host wall clock at record time
  const char* arg_name = nullptr;  ///< optional single numeric argument
  std::int64_t arg = 0;
  std::uint64_t flow_id = 0;  ///< correlation id (kFlow* phases only)

  bool is_flow() const {
    return phase == Phase::kFlowStart || phase == Phase::kFlowStep ||
           phase == Phase::kFlowEnd;
  }
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_; }
  /// Enabling allocates the ring on first use; disabling keeps the contents.
  void set_enabled(bool on);
  /// Drops recorded events; next enable starts fresh.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// Virtual clock source; the owning event loop installs itself here.
  /// Unset, the tracer falls back to wall time since construction, which
  /// keeps standalone (no-simulation) tools like mantisc traceable.
  void set_clock(std::function<Time()> now);
  Time now() const;

  // ---- recording (no-ops when disabled) ----
  void complete(const char* name, const char* category, Track track,
                Time vt_begin, Time vt_end, const char* arg_name = nullptr,
                std::int64_t arg = 0);
  void instant(const char* name, const char* category, Track track, Time at,
               const char* arg_name = nullptr, std::int64_t arg = 0);
  /// Records one flow event (`phase` must be a kFlow* phase). All events of
  /// one flow share `flow_id` and, per the Chrome trace format, should share
  /// `name` and `category` too.
  void flow(TraceEvent::Phase phase, const char* name, const char* category,
            Track track, Time at, std::uint64_t flow_id);

  // ---- inspection ----
  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Total ever recorded; recorded() - size() have been overwritten.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - size(); }

  /// Retained events, oldest first (ring order resolved).
  std::vector<TraceEvent> events() const;
  void clear();

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::function<Time()> clock_;
  std::int64_t wall_epoch_ns_;

  /// Defers through the thread's ShardLane when one is installed (parallel
  /// fabric rounds) so ring insertion order stays canonical.
  void push(TraceEvent ev);
  void push_direct(TraceEvent ev);
  std::int64_t wall_now_ns() const;
};

/// RAII span: captures virtual begin-time at construction, records one
/// complete event at destruction. Cheap when the tracer is disabled (one
/// branch, no clock read).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, const char* category,
             Track track, const char* arg_name = nullptr, std::int64_t arg = 0)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        category_(category),
        arg_name_(arg_name),
        arg_(arg),
        track_(track) {
    if (tracer_ != nullptr) begin_ = tracer_->now();
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, category_, track_, begin_, tracer_->now(),
                        arg_name_, arg_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach/replace the numeric argument before the span closes.
  void set_arg(const char* name, std::int64_t value) {
    arg_name_ = name;
    arg_ = value;
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  const char* arg_name_;
  std::int64_t arg_;
  Track track_;
  Time begin_ = 0;
};

}  // namespace mantis::telemetry

// Instrumentation-site macros: compile to nothing when the build disables
// telemetry, so hot paths carry zero residue.
#if MANTIS_TELEMETRY_ENABLED
#define MANTIS_TELEMETRY_CAT2(a, b) a##b
#define MANTIS_TELEMETRY_CAT(a, b) MANTIS_TELEMETRY_CAT2(a, b)
#define MANTIS_SPAN(tracer, name, category, track, ...)                   \
  ::mantis::telemetry::ScopedSpan MANTIS_TELEMETRY_CAT(mantis_span_,      \
                                                       __LINE__)(         \
      (tracer), (name), (category), (track), ##__VA_ARGS__)
#define MANTIS_INSTANT(tracer, name, category, track, at, ...) \
  (tracer).instant((name), (category), (track), (at), ##__VA_ARGS__)
// For spans whose duration is modeled (schedule_in delays) rather than
// elapsed across the call site — records explicit [vt_begin, vt_end).
#define MANTIS_SPAN_RECORD(tracer, name, category, track, vt_begin, vt_end, \
                           ...)                                             \
  (tracer).complete((name), (category), (track), (vt_begin), (vt_end),      \
                    ##__VA_ARGS__)
// Flow-event trio: connect spans across tracks under one correlation id
// (chrome ph "s"/"t"/"f"). Same name/category/id for all three.
#define MANTIS_FLOW_START(tracer, name, category, track, at, id)            \
  (tracer).flow(::mantis::telemetry::TraceEvent::Phase::kFlowStart, (name), \
                (category), (track), (at), (id))
#define MANTIS_FLOW_STEP(tracer, name, category, track, at, id)            \
  (tracer).flow(::mantis::telemetry::TraceEvent::Phase::kFlowStep, (name), \
                (category), (track), (at), (id))
#define MANTIS_FLOW_END(tracer, name, category, track, at, id)            \
  (tracer).flow(::mantis::telemetry::TraceEvent::Phase::kFlowEnd, (name), \
                (category), (track), (at), (id))
#else
#define MANTIS_SPAN(tracer, name, category, track, ...) \
  do {                                                  \
  } while (false)
#define MANTIS_INSTANT(tracer, name, category, track, at, ...) \
  do {                                                         \
  } while (false)
#define MANTIS_SPAN_RECORD(tracer, name, category, track, vt_begin, vt_end, \
                           ...)                                             \
  do {                                                                      \
  } while (false)
#define MANTIS_FLOW_START(tracer, name, category, track, at, id) \
  do {                                                           \
  } while (false)
#define MANTIS_FLOW_STEP(tracer, name, category, track, at, id) \
  do {                                                          \
  } while (false)
#define MANTIS_FLOW_END(tracer, name, category, track, at, id) \
  do {                                                         \
  } while (false)
#endif
