// Documented-semantics tests for creact corners: static identity, scoping,
// step accounting, and expression edge cases.
#include <gtest/gtest.h>

#include "p4r/creact/cparser.hpp"
#include "p4r/creact/interp.hpp"
#include "p4r/lexer.hpp"
#include "util/check.hpp"

namespace mantis::p4r::creact {
namespace {

struct NullEnv : ReactionEnv {
  std::map<std::string, CValue> mbls;
  CValue mbl_get(const std::string& n) override { return mbls[n]; }
  void mbl_set(const std::string& n, CValue v) override { mbls[n] = v; }
  CValue table_call(const std::string&, const std::string&,
                    const std::vector<TableCallArg>&) override {
    return 0;
  }
};

CBody parse_src(const std::string& src) {
  auto toks = lex(src);
  toks.pop_back();
  return parse_body(toks);
}

TEST(CreactSemantics, StaticsAreKeyedByNameAcrossScopes) {
  // Statics persist by NAME for the whole reaction (matching a single
  // translation unit's DATA segment); a same-named static in another block
  // refers to the same storage. This is the documented model.
  const auto body = parse_src(R"(
if (1) { static int n = 0; n += 1; }
if (1) { static int n = 0; n += 10; }
${out} = 0;
)");
  Interp interp(body);
  NullEnv env;
  interp.run({}, env);
  interp.run({}, env);
  EXPECT_EQ(interp.static_value("n"), 22);
}

TEST(CreactSemantics, LocalShadowsStaticAndParam) {
  const auto body = parse_src(R"(
static int v = 100;
{
  int v = 1;
  v += 1;
  ${inner} = v;
}
v += 1;
${outer} = v;
${p} = qd;
{
  int qd = 7;
  ${shadowed} = qd;
}
)");
  Interp interp(body);
  NullEnv env;
  PolledParams params;
  params.scalars["qd"] = 42;
  interp.run(params, env);
  EXPECT_EQ(env.mbls["inner"], 2);
  EXPECT_EQ(env.mbls["outer"], 101);
  EXPECT_EQ(env.mbls["p"], 42);
  EXPECT_EQ(env.mbls["shadowed"], 7);
}

TEST(CreactSemantics, StaticInitializerRunsOnce) {
  const auto body = parse_src("static int n = 5 + 5; n += 1; ${out} = n;");
  Interp interp(body);
  NullEnv env;
  interp.run({}, env);
  interp.run({}, env);
  EXPECT_EQ(env.mbls["out"], 12);  // init 10, then +1 twice
}

TEST(CreactSemantics, StepCountScalesWithWork) {
  NullEnv env;
  const auto small = parse_src("int s = 0; for (int i = 0; i < 10; ++i) s += i;");
  const auto big = parse_src("int s = 0; for (int i = 0; i < 1000; ++i) s += i;");
  Interp si(small), bi(big);
  const auto a = si.run({}, env);
  const auto b = bi.run({}, env);
  EXPECT_GT(b, 50 * a);  // the agent charges CPU time proportionally
}

TEST(CreactSemantics, ParamsAreWritableLocalCopies) {
  // Like C function parameters: assignable, without affecting the next poll.
  const auto body = parse_src("qd += 1; ${out} = qd;");
  Interp interp(body);
  NullEnv env;
  PolledParams params;
  params.scalars["qd"] = 10;
  interp.run(params, env);
  EXPECT_EQ(env.mbls["out"], 11);
  interp.run(params, env);  // fresh copy each run
  EXPECT_EQ(env.mbls["out"], 11);
}

TEST(CreactSemantics, ArrayParamElementsWritable) {
  const auto body = parse_src(R"(
arr[3] = arr[3] * 2;
${out} = arr[3] + arr[4];
)");
  Interp interp(body);
  NullEnv env;
  PolledParams params;
  PolledParams::Array arr;
  arr.lo = 3;
  arr.values = {5, 6};
  params.arrays["arr"] = arr;
  interp.run(params, env);
  EXPECT_EQ(env.mbls["out"], 16);
}

TEST(CreactSemantics, DeepExpressionNesting) {
  std::string expr = "1";
  for (int i = 0; i < 60; ++i) expr = "(" + expr + " + 1)";
  const auto body = parse_src("${out} = " + expr + ";");
  Interp interp(body);
  NullEnv env;
  interp.run({}, env);
  EXPECT_EQ(env.mbls["out"], 61);
}

TEST(CreactSemantics, ForWithoutCondIsBoundedByStepLimit) {
  const auto body = parse_src("for (;;) { }");
  Interp interp(body);
  NullEnv env;
  EXPECT_THROW(interp.run({}, env), UserError);
}

TEST(CreactSemantics, NegativeNumbersAndUnaryChains) {
  const auto body = parse_src("${out} = - - -5 + ~~3 + !!7;");
  Interp interp(body);
  NullEnv env;
  interp.run({}, env);
  EXPECT_EQ(env.mbls["out"], -5 + 3 + 1);
}

}  // namespace
}  // namespace mantis::p4r::creact
