#include "int/header.hpp"

#include "util/check.hpp"

namespace mantis::int_tel {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void append_hop(std::vector<std::uint8_t>& out, const IntHop& hop) {
  put_u32(out, hop.switch_id);
  put_u32(out, hop.hop_latency_ns);
  put_u32(out, hop.queue_bytes);
  put_u16(out, hop.egress_port);
  put_u16(out, hop.ingress_port);
}

}  // namespace

std::vector<std::uint8_t> encode(const IntHeader& h) {
  expects(h.hop_count == h.hops.size(), "int_tel::encode: hop_count mismatch");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + h.hops.size() * kHopBytes);
  out.push_back(kMagic);
  out.push_back(static_cast<std::uint8_t>((h.version << 4) |
                                          (h.truncated ? 1 : 0)));
  out.push_back(h.max_hops);
  out.push_back(h.hop_count);
  put_u32(out, h.seq);
  for (const auto& hop : h.hops) append_hop(out, hop);
  return out;
}

std::optional<IntHeader> decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes || bytes[0] != kMagic) return std::nullopt;
  IntHeader h;
  h.version = static_cast<std::uint8_t>(bytes[1] >> 4);
  h.truncated = (bytes[1] & 1) != 0;
  if (h.version != kVersion) return std::nullopt;
  h.max_hops = bytes[2];
  h.hop_count = bytes[3];
  h.seq = get_u32(bytes.data() + 4);
  if (bytes.size() != kHeaderBytes + h.hop_count * kHopBytes) {
    return std::nullopt;
  }
  h.hops.reserve(h.hop_count);
  for (std::size_t i = 0; i < h.hop_count; ++i) {
    const std::uint8_t* p = bytes.data() + kHeaderBytes + i * kHopBytes;
    IntHop hop;
    hop.switch_id = get_u32(p);
    hop.hop_latency_ns = get_u32(p + 4);
    hop.queue_bytes = get_u32(p + 8);
    hop.egress_port = get_u16(p + 12);
    hop.ingress_port = get_u16(p + 14);
    h.hops.push_back(hop);
  }
  return h;
}

bool has_int(const sim::Packet& pkt) {
  const auto& stack = pkt.header_stack();
  return stack.size() >= kHeaderBytes && stack[0] == kMagic;
}

void push_int(sim::Packet& pkt, std::uint32_t seq, std::uint8_t max_hops) {
  expects(!pkt.has_header_stack(), "push_int: packet already carries a stack");
  IntHeader h;
  h.max_hops = max_hops;
  h.seq = seq;
  const auto bytes = encode(h);
  pkt.grow_header_stack(bytes.data(), bytes.size());
}

bool stamp_hop(sim::Packet& pkt, const IntHop& hop) {
  auto& stack = pkt.mutable_header_stack();
  expects(stack.size() >= kHeaderBytes && stack[0] == kMagic,
          "stamp_hop: packet carries no INT shim");
  const std::uint8_t max_hops = stack[2];
  if (stack[3] >= max_hops) {
    stack[1] |= 1;  // truncated: record the budget overrun, stamp nothing
    return false;
  }
  ++stack[3];
  std::vector<std::uint8_t> rec;
  rec.reserve(kHopBytes);
  append_hop(rec, hop);
  pkt.grow_header_stack(rec.data(), rec.size());
  return true;
}

}  // namespace mantis::int_tel
