// String interning. Field references, table names, and action names are
// compared and hashed constantly in the simulator's hot loop; interning turns
// those into integer operations.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mantis {

/// An interned string handle. Valid only with the Interner that produced it.
/// Value 0 is reserved as "invalid / none".
using Sym = std::uint32_t;

constexpr Sym kNoSym = 0;

/// Bidirectional string <-> Sym table. Not thread-safe; each simulation owns
/// one (usually via p4::Program).
class Interner {
 public:
  Interner();

  /// Returns the Sym for `s`, interning it on first use. Never returns kNoSym.
  Sym intern(std::string_view s);

  /// Returns the Sym for `s` if already interned, kNoSym otherwise.
  Sym lookup(std::string_view s) const;

  /// Returns the string for `sym`. Throws if `sym` is invalid.
  const std::string& str(Sym sym) const;

  std::size_t size() const { return strings_.size() - 1; }

 private:
  std::vector<std::string> strings_;  // index == Sym; [0] is a placeholder
  std::unordered_map<std::string, Sym> index_;
};

}  // namespace mantis
