// Stress: a 64-switch leaf-spine fabric, every switch running the
// gray-failure program under its own agent, with an injected gray loss on
// the sender's uplink. Asserts the fabric completes (no deadlock between
// the parallel engine's rounds and the control plane), keeps telemetry
// rings bounded, and recovers within the PR-2 SLO.
//
// SLO accounting at this scale: the harness serializes dialogue-iteration
// bodies on the shared virtual clock (see src/net/harness.hpp), so with 64
// busy-looping agents each switch's effective poll window T_d stretches to
// ~num_agents x iteration latency (~1.3 ms here) — detection latency is a
// property of that documented contention model, not of the recovery path.
// The PR-2 SLO (restored within 250 us, tests/test_net.cpp) therefore
// applies to the detection->restoration leg, and detection itself is pinned
// against the contention window so a scheduling regression still fails.
//
// Registered under the `stress` ctest label so sanitizer / quick runs can
// exclude it (`ctest -LE stress`).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/gray_failure.hpp"
#include "compile/compiler.hpp"
#include "net/engine.hpp"
#include "net/fabric.hpp"
#include "net/scenarios.hpp"
#include "net/topology.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/flow_classes.hpp"

namespace mantis {
namespace {

TEST(StressFabric, SixtyFourSwitchGrayFailure) {
  net::GrayScenarioConfig cfg;
  cfg.leaves = 8;
  cfg.spines = 56;
  cfg.hosts_per_leaf = 1;
  cfg.switch_cfg.num_ports = 58;  // leaves carry 56 uplinks + a host port
  cfg.seed = 1;
  cfg.threads = 8;
  // 64 agent prologues serialize on the virtual clock (each installs a full
  // route table + per-port heartbeat tallies over PCIe), so the fault must
  // land well after they finish; 5 us heartbeats keep the per-round event
  // volume tractable at 448 switch-switch links while the adaptive
  // delta_threshold (floor(eta*T_d/T_s)) still detects within ~2 poll
  // windows.
  cfg.hb_period = 5 * kMicrosecond;
  cfg.gf.ts = 5 * kMicrosecond;
  cfg.fault_at = 6000 * kMicrosecond;
  cfg.run_until = cfg.fault_at + 3000 * kMicrosecond;

  net::GrayFabricScenario scenario(cfg);
  auto res = scenario.run();

  // No deadlock / livelock: we got here, pre-fault delivery happened, the
  // fault fired, and every stage of the reaction pipeline ran.
  EXPECT_GT(res.delivered_before_fault, 0u);
  ASSERT_TRUE(res.restored()) << "delivery never restored; events:\n"
                              << [&] {
                                   std::string s;
                                   for (const auto& e : res.events)
                                     s += e + "\n";
                                   return s;
                                 }();
  ASSERT_GE(res.detected_at, res.fault_at);

  // PR-2 SLO on the recovery leg: detection -> reroute -> observed
  // end-to-end delivery within 250 us.
  EXPECT_LE(res.restored_at - res.detected_at, 250 * kMicrosecond)
      << "recovery_us=" << (res.restored_at - res.detected_at) / kMicrosecond;

  // Detection tracks the contention model: ~2 effective poll windows of
  // num_agents x iteration latency, with slack for the fault landing
  // mid-window. A harness scheduling regression blows through this.
  const auto& lat =
      scenario.harness().agent_at(0).iteration_latencies().values();
  ASSERT_FALSE(lat.empty());
  double mean_iter = 0;
  for (const double v : lat) mean_iter += v;
  mean_iter /= static_cast<double>(lat.size());
  const double window_ns =
      static_cast<double>(scenario.harness().num_agents()) * mean_iter;
  EXPECT_LE(static_cast<double>(res.detection_latency()), 3.0 * window_ns)
      << "detect_us=" << res.detection_latency() / kMicrosecond
      << " window_us=" << window_ns / 1000.0;

  // Bounded memory: the flight recorder is a fixed-capacity ring no matter
  // the fabric size or run length, and the scenario's event log stays
  // small (transitions + detections, not per-packet).
  auto& tel = scenario.loop().telemetry();
  EXPECT_LE(tel.recorder().size(), tel.recorder().capacity());
  EXPECT_LT(res.events.size(), 4096u);
}

// ---------------------------------------------------------------------------
// Datacenter-scale smoke: the bench's 1024-switch 3-tier Clos, shortened.
// Parallel execution with multi-switch shard groups must deliver the exact
// packet set the sequential loop does (the delivery-invariance half of the
// determinism contract; the byte-exact telemetry half runs on a small Clos
// in tests/test_parallel_fabric.cpp where it is cheap).
// ---------------------------------------------------------------------------

struct ClosRun {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t host_rx = 0;
};

ClosRun run_big_clos(int threads) {
  const net::ClosSpec spec{16, 32, 16, 256, 1};  // 1024 switches, 512 hosts
  sim::EventLoop loop;
  auto artifacts = compile::compile_source(apps::gray_failure_p4r_source());

  net::FabricConfig fc;
  fc.default_link.propagation = 2000;
  fc.switch_cfg.num_ports = 48;  // agg radix L + C/A
  net::Fabric fabric(loop, artifacts.prog, net::Topology::clos(spec), fc);

  // A 32-destination slice of the bench's endpoint plan keeps the smoke
  // inside CI time while still crossing pods, aggs and the core tier.
  std::vector<std::uint32_t> dst_addrs;
  for (int k = 0; k < 32; ++k) {
    dst_addrs.push_back(spec.host_addr((k * 8 + 3) % spec.num_leaves(), 0));
  }
  for (int sw = 0; sw < spec.num_switches(); ++sw) {
    auto& route = fabric.switch_at(sw).table("route");
    for (const std::uint32_t addr : dst_addrs) {
      const int port = spec.next_hop_port(sw, addr);
      if (port < 0) continue;
      p4::EntrySpec es;
      es.key.push_back(p4::MatchValue{addr, ~std::uint64_t{0}});
      es.key.push_back(p4::MatchValue{0, ~std::uint64_t{0}});  // vv column
      es.action = "set_egress";
      es.action_args = {static_cast<std::uint64_t>(port)};
      route.add_entry(es);
    }
  }

  workload::FlowClassesConfig wc;
  wc.total_flows = 1'048'576;
  wc.epoch = 20 * kMicrosecond;
  wc.max_samples_per_epoch = 8;
  std::vector<workload::FlowClasses::Endpoint> eps;
  for (int c = 0; c < 32; ++c) {
    const std::uint32_t dst = dst_addrs[static_cast<std::size_t>(c)];
    int src_leaf = (c * 37 + 11) % spec.num_leaves();
    if (spec.host_addr(src_leaf, 0) == dst) {
      src_leaf = (src_leaf + 1) % spec.num_leaves();
    }
    eps.push_back({spec.host_addr(src_leaf, 0), dst});
  }
  workload::FlowClasses flows(fabric, wc, std::move(eps));

  const Time horizon = 60 * kMicrosecond;  // 3 epochs
  if (threads > 1) {
    net::ParallelFabricEngine engine(fabric, threads);
    flows.start(horizon, engine.lookahead());
    engine.run_until(horizon + 30 * kMicrosecond);  // drain in-flight
  } else {
    flows.start(horizon);
    loop.run_until(horizon + 30 * kMicrosecond);
  }

  ClosRun r;
  r.sent = flows.samples_sent();
  r.delivered = flows.samples_delivered();
  r.host_rx = fabric.stats().host_rx_pkts.load();
  return r;
}

TEST(StressFabric, ThousandSwitchClosDeliveryInvariance) {
  const ClosRun seq = run_big_clos(1);
  EXPECT_GT(seq.sent, 0u);
  // Lossless links and fully drained queues: the structural routes carry
  // every sample across the fabric.
  EXPECT_EQ(seq.delivered, seq.sent);

  const ClosRun par = run_big_clos(8);
  EXPECT_EQ(par.sent, seq.sent);
  EXPECT_EQ(par.delivered, seq.delivered);
  EXPECT_EQ(par.host_rx, seq.host_rx);
}

}  // namespace
}  // namespace mantis
