#include "agent/update_protocol.hpp"

#include "util/check.hpp"

namespace mantis::agent {

TableRuntime& UpdateProtocol::runtime(const std::string& table) {
  auto it = tables_->find(table);
  if (it == tables_->end()) throw UserError("unknown user table: " + table);
  return it->second;
}

namespace {

/// Same specialization dims => same expanded keys => in-place modify is safe.
bool same_dims(const compile::TableInfo& info, const std::string& a,
               const std::string& b) {
  const auto* ai = info.find_action(a);
  const auto* bi = info.find_action(b);
  ensures(ai != nullptr && bi != nullptr, "same_dims: unknown action");
  return ai->dims == bi->dims;
}

}  // namespace

void UpdateProtocol::apply_copy(const std::vector<PendingOp>& ops, int vv) {
  driver::Driver::Batch batch;
  // Adds (and shape-changing mods) get handles back from run_batch in
  // order; remember where each op's handles land.
  struct AddRecord {
    UserEntryId id = 0;
    const std::string* table = nullptr;
    std::size_t count = 0;
  };
  std::vector<AddRecord> adds;

  for (const auto& op : ops) {
    auto& rt = runtime(op.table);
    ensures(rt.info->malleable, "update protocol used on non-malleable table " +
                                    op.table);
    ensures(vv == 0 || vv == 1, "apply_copy: bad vv");
    auto& entry = rt.entries.at(op.id);
    auto& handles = entry.handles[vv];

    switch (op.kind) {
      case PendingOp::Kind::kAdd: {
        const auto specs = expand_user_entry(*rt.info, rt.alts, op.user_spec, vv);
        for (const auto& spec : specs) batch.add(op.table, spec);
        adds.push_back(AddRecord{op.id, &op.table, specs.size()});
        break;
      }
      case PendingOp::Kind::kMod: {
        const auto specs = expand_user_entry(*rt.info, rt.alts, op.user_spec, vv);
        if (same_dims(*rt.info, op.old_action, op.user_spec.action)) {
          ensures(specs.size() == handles.size(),
                  "apply_copy: expansion count changed unexpectedly");
          for (std::size_t i = 0; i < specs.size(); ++i) {
            batch.modify(op.table, handles[i], specs[i].action,
                         specs[i].action_args);
          }
        } else {
          // Different specialization shape: replace the concrete entries.
          for (const auto h : handles) batch.erase(op.table, h);
          handles.clear();
          for (const auto& spec : specs) batch.add(op.table, spec);
          adds.push_back(AddRecord{op.id, &op.table, specs.size()});
        }
        break;
      }
      case PendingOp::Kind::kDel: {
        for (const auto h : handles) batch.erase(op.table, h);
        handles.clear();
        break;
      }
    }
  }

  const auto new_handles = drv_->run_batch(std::move(batch));
  std::size_t cursor = 0;
  for (const auto& rec : adds) {
    auto& rt = runtime(*rec.table);
    auto& entry = rt.entries.at(rec.id);
    auto& handles = entry.handles[vv];
    for (std::size_t i = 0; i < rec.count; ++i) {
      ensures(cursor < new_handles.size(), "apply_copy: handle underflow");
      handles.push_back(new_handles[cursor++]);
    }
  }
  ensures(cursor == new_handles.size(), "apply_copy: handle overflow");
}

void UpdateProtocol::prepare(const std::vector<PendingOp>& ops, int vv_next) {
  apply_copy(ops, vv_next);
}

void UpdateProtocol::mirror(const std::vector<PendingOp>& ops, int vv_old) {
  apply_copy(ops, vv_old);
  erase_deleted(ops);
}

UpdateProtocol::StagedCopy UpdateProtocol::stage_copy(
    const std::vector<PendingOp>& ops, int vv, driver::BatchBuilder& out) {
  StagedCopy staged;
  staged.vv = vv;
  for (const auto& op : ops) {
    auto& rt = runtime(op.table);
    ensures(rt.info->malleable, "update protocol used on non-malleable table " +
                                    op.table);
    ensures(vv == 0 || vv == 1, "stage_copy: bad vv");
    auto& entry = rt.entries.at(op.id);
    auto& handles = entry.handles[vv];

    switch (op.kind) {
      case PendingOp::Kind::kAdd: {
        const auto specs = expand_user_entry(*rt.info, rt.alts, op.user_spec, vv);
        for (const auto& spec : specs) out.add_entry(op.table, spec);
        staged.adds.push_back(StagedCopy::AddSlot{op.table, op.id, specs.size()});
        break;
      }
      case PendingOp::Kind::kMod: {
        const auto specs = expand_user_entry(*rt.info, rt.alts, op.user_spec, vv);
        if (same_dims(*rt.info, op.old_action, op.user_spec.action)) {
          ensures(specs.size() == handles.size(),
                  "stage_copy: expansion count changed unexpectedly");
          for (std::size_t i = 0; i < specs.size(); ++i) {
            out.modify_entry(op.table, handles[i], specs[i].action,
                             specs[i].action_args);
          }
        } else {
          for (const auto h : handles) out.delete_entry(op.table, h);
          handles.clear();
          for (const auto& spec : specs) out.add_entry(op.table, spec);
          staged.adds.push_back(
              StagedCopy::AddSlot{op.table, op.id, specs.size()});
        }
        break;
      }
      case PendingOp::Kind::kDel: {
        for (const auto h : handles) out.delete_entry(op.table, h);
        handles.clear();
        break;
      }
    }
  }
  return staged;
}

void UpdateProtocol::absorb_copy(const StagedCopy& staged,
                                 const driver::BatchCompletion& c) {
  std::size_t cursor = 0;
  std::vector<sim::EntryHandle> new_handles;
  for (const auto& r : c.results) {
    if (r.kind == driver::AsyncOp::Kind::kAdd) new_handles.push_back(r.handle);
  }
  for (const auto& slot : staged.adds) {
    auto eit = runtime(slot.table).entries.find(slot.id);
    ensures(eit != runtime(slot.table).entries.end(),
            "absorb_copy: user entry vanished before its handles arrived");
    auto& handles = eit->second.handles[static_cast<std::size_t>(staged.vv)];
    for (std::size_t i = 0; i < slot.count; ++i) {
      ensures(cursor < new_handles.size(), "absorb_copy: handle underflow");
      handles.push_back(new_handles[cursor++]);
    }
  }
  ensures(cursor == new_handles.size(), "absorb_copy: handle overflow");
}

void UpdateProtocol::erase_deleted(const std::vector<PendingOp>& ops) {
  for (const auto& op : ops) {
    if (op.kind == PendingOp::Kind::kDel) {
      runtime(op.table).entries.erase(op.id);
    }
  }
}

UserEntryId UpdateProtocol::immediate_add(const std::string& table,
                                          const p4::EntrySpec& user) {
  auto& rt = runtime(table);
  const UserEntryId id = rt.next_id++;
  TableRuntime::UserEntry entry;
  entry.user_spec = user;
  rt.entries.emplace(id, std::move(entry));

  if (rt.info->malleable) {
    driver::Driver::Batch batch;
    std::size_t per_copy = 0;
    for (const int vv : {0, 1}) {
      const auto specs = expand_user_entry(*rt.info, rt.alts, user, vv);
      per_copy = specs.size();
      for (const auto& spec : specs) batch.add(table, spec);
    }
    const auto handles = drv_->run_batch(std::move(batch));
    ensures(handles.size() == 2 * per_copy, "immediate_add: handle mismatch");
    auto& entry_ref = rt.entries.at(id);
    for (std::size_t i = 0; i < per_copy; ++i) {
      entry_ref.handles[0].push_back(handles[i]);
    }
    for (std::size_t i = 0; i < per_copy; ++i) {
      entry_ref.handles[1].push_back(handles[per_copy + i]);
    }
  } else {
    const auto specs = expand_user_entry(*rt.info, rt.alts, user, std::nullopt);
    driver::Driver::Batch batch;
    for (const auto& spec : specs) batch.add(table, spec);
    const auto handles = drv_->run_batch(std::move(batch));
    rt.entries.at(id).handles[0] = handles;
  }
  return id;
}

void UpdateProtocol::immediate_mod(const std::string& table, UserEntryId id,
                                   const std::string& action,
                                   std::vector<std::uint64_t> args) {
  auto& rt = runtime(table);
  auto it = rt.entries.find(id);
  if (it == rt.entries.end()) throw UserError("immediate_mod: bad entry id");
  const std::string old_action = it->second.user_spec.action;
  it->second.user_spec.action = action;
  it->second.user_spec.action_args = std::move(args);

  if (rt.info->malleable) {
    PendingOp op;
    op.kind = PendingOp::Kind::kMod;
    op.table = table;
    op.id = id;
    op.user_spec = it->second.user_spec;
    op.old_action = old_action;
    apply_copy({op}, 0);
    apply_copy({op}, 1);
    return;
  }
  const auto specs =
      expand_user_entry(*rt.info, rt.alts, it->second.user_spec, std::nullopt);
  auto& handles = it->second.handles[0];
  if (same_dims(*rt.info, old_action, it->second.user_spec.action)) {
    driver::Driver::Batch batch;
    ensures(specs.size() == handles.size(), "immediate_mod: expansion mismatch");
    for (std::size_t i = 0; i < specs.size(); ++i) {
      batch.modify(table, handles[i], specs[i].action, specs[i].action_args);
    }
    drv_->run_batch(std::move(batch));
  } else {
    driver::Driver::Batch batch;
    for (const auto h : handles) batch.erase(table, h);
    for (const auto& spec : specs) batch.add(table, spec);
    handles = drv_->run_batch(std::move(batch));
  }
}

void UpdateProtocol::immediate_del(const std::string& table, UserEntryId id) {
  auto& rt = runtime(table);
  auto it = rt.entries.find(id);
  if (it == rt.entries.end()) throw UserError("immediate_del: bad entry id");
  driver::Driver::Batch batch;
  for (const auto h : it->second.handles[0]) batch.erase(table, h);
  for (const auto h : it->second.handles[1]) batch.erase(table, h);
  drv_->run_batch(std::move(batch));
  rt.entries.erase(it);
}

}  // namespace mantis::agent
