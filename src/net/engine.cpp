#include "net/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mantis::net {

namespace {
/// Spin iterations before a waiter parks on the condition variable. Rounds
/// are microseconds of host work, so the common case stays in user space.
constexpr int kSpinIterations = 4096;
}  // namespace

Duration ParallelFabricEngine::compute_lookahead(Fabric& fabric) {
  Duration min_delay = -1;
  for (std::size_t i = 0; i < fabric.num_links(); ++i) {
    const auto& model = fabric.link(i).model();
    // +1: serialization_time() floors at 1 ns, so an arrival is always at
    // least propagation + 1 after the transmit instant.
    const Duration d = model.propagation + 1;
    if (min_delay < 0 || d < min_delay) min_delay = d;
  }
  return min_delay < 0 ? 1 : min_delay;
}

std::vector<std::int32_t> ParallelFabricEngine::assign_groups(
    const std::vector<std::uint64_t>& weights, int groups) {
  expects(groups >= 1, "assign_groups: need >= 1 group");
  const int n = static_cast<int>(weights.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weights[static_cast<std::size_t>(a)] >
           weights[static_cast<std::size_t>(b)];
  });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(groups), 0);
  std::vector<std::int32_t> group_of(static_cast<std::size_t>(n), 0);
  for (const int tag : order) {
    int best = 0;
    for (int g = 1; g < groups; ++g) {
      if (load[static_cast<std::size_t>(g)] <
          load[static_cast<std::size_t>(best)]) {
        best = g;
      }
    }
    group_of[static_cast<std::size_t>(tag)] = best;
    // +1 so zero-weight switches still spread instead of piling on group 0.
    load[static_cast<std::size_t>(best)] +=
        weights[static_cast<std::size_t>(tag)] + 1;
  }
  return group_of;
}

std::vector<std::uint64_t> ParallelFabricEngine::weights_from_profile(
    const telemetry::prof::ProfileReport& report, int num_shards) {
  if (static_cast<int>(report.shards.size()) != num_shards) return {};
  std::vector<std::uint64_t> weights;
  weights.reserve(report.shards.size());
  for (const auto& cell : report.shards) weights.push_back(cell.events);
  return weights;
}

ParallelFabricEngine::ParallelFabricEngine(Fabric& fabric, int threads)
    : ParallelFabricEngine(fabric, threads, Options()) {}

ParallelFabricEngine::ParallelFabricEngine(Fabric& fabric, int threads,
                                           Options options)
    : loop_(&fabric.loop()),
      fabric_(&fabric),
      threads_(std::max(1, threads)),
      lookahead_(compute_lookahead(fabric)) {
  expects(lookahead_ > 0, "ParallelFabricEngine: non-positive lookahead");
  if (threads_ <= 1) return;  // sequential: no machinery at all

  const int num_shards = fabric.num_shards();
  int groups = options.groups > 0 ? options.groups
                                  : std::min(num_shards, threads_ * 2);
  groups = std::min(groups, num_shards);
  groups = std::max(groups, 1);
  // Never more threads than groups; the remainder would only spin.
  threads_ = std::min(threads_, groups);
  if (threads_ <= 1) return;

  std::vector<std::uint64_t> weights = std::move(options.weights);
  if (weights.empty()) {
    // Default weight: link degree (hosts included — host events run on the
    // uplink switch's shard), a decent static proxy for event load.
    weights.assign(static_cast<std::size_t>(num_shards), 0);
    const auto& topo = fabric.topo();
    for (const auto& l : topo.links) {
      ++weights[static_cast<std::size_t>(fabric.shard_of(l.a))];
      ++weights[static_cast<std::size_t>(fabric.shard_of(l.b))];
    }
  }
  expects(static_cast<int>(weights.size()) == num_shards,
          "ParallelFabricEngine: weights size != num_shards");
  group_of_ = assign_groups(weights, groups);

  // Profiler shard cells must exist before workers start (the cell array
  // is grown only from this thread). Touching telemetry() here only forces
  // bundle creation, which components sharing the loop do anyway. Cells
  // are per execution GROUP: that is the unit of round imbalance.
  prof_ = &loop_->telemetry().prof();
  prof_->ensure_shards(static_cast<std::size_t>(groups));

  loop_->ensure_tags(num_shards);
  seq_base_ = loop_->seq_array();  // stable: tags can never grow the table
  groups_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    auto group = std::make_unique<Group>();
    group->id = g;
    lanes_.push_back(&group->lane);
    groups_.push_back(std::move(group));
  }
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelFabricEngine::~ParallelFabricEngine() {
  if (workers_.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    stop_flag_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

int ParallelFabricEngine::num_groups() const {
  return groups_.empty() ? 1 : static_cast<int>(groups_.size());
}

int ParallelFabricEngine::group_of(int tag) const {
  expects(tag >= 0 && tag < static_cast<int>(group_of_.size()),
          "ParallelFabricEngine::group_of: bad tag");
  return group_of_[static_cast<std::size_t>(tag)];
}

std::uint64_t ParallelFabricEngine::wait_for_round(std::uint64_t seen) {
  for (int spin = 0; spin < kSpinIterations; ++spin) {
    const std::uint64_t cur = round_seq_.load(std::memory_order_acquire);
    if (cur != seen) return cur;
    if (stop_flag_.load(std::memory_order_acquire)) return seen;
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return round_guard_ != seen || stop_; });
  return round_guard_ != seen ? round_guard_ : seen;
}

void ParallelFabricEngine::worker_main(int worker) {
  std::uint64_t seen = 0;
  while (true) {
    const std::uint64_t cur = wait_for_round(seen);
    if (cur == seen) return;  // stop requested, no newer round
    seen = cur;
    run_group_range(worker, round_end_);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ParallelFabricEngine::run_group_range(int worker, Time round_end) {
  for (int g = worker; g < static_cast<int>(groups_.size()); g += threads_) {
    run_group(*groups_[static_cast<std::size_t>(g)], round_end);
  }
}

void ParallelFabricEngine::run_group(Group& group, Time round_end) {
  if (group.local.empty()) return;
  sim::EventLoop::ShardFrame frame;
  frame.loop = loop_;
  frame.round_end = round_end;
  frame.seq_base = seq_base_;
  frame.local = &group.local;
  frame.outbox = &group.outbox;
  sim::EventLoop::set_shard_frame(&frame);
  telemetry::ShardLane::set_current(&group.lane);
  while (!group.local.empty()) {
    sim::EventLoop::Event ev = group.local.pop_top();
    frame.now = ev.t;
    // The frame tracks the running event's own tag — a group interleaves
    // several switches' events in canonical order, and each event's
    // schedules must stamp src = its switch, not "the group", to keep
    // canonical keys identical to the sequential engine's.
    frame.shard = ev.dst;
    // Deferred telemetry from this callback carries the event's own key.
    group.lane.begin_event(ev.t, ev.src, ev.seq);
    ++group.executed_round;
#if MANTIS_TELEMETRY_ENABLED
    {
      // Wall-clock/allocation attribution only; the virtual clock and event
      // order are untouched (parallel-equivalence contract).
      telemetry::prof::EventScope prof_scope(prof_, group.id);
      ev.cb();
    }
#else
    ev.cb();
#endif
  }
  telemetry::ShardLane::set_current(nullptr);
  sim::EventLoop::set_shard_frame(nullptr);
}

void ParallelFabricEngine::run_until(Time t) {
  auto& loop = *loop_;
  if (threads_ <= 1 || groups_.empty()) {
    loop.run_until(t);
    return;
  }
  while (!loop.queue_empty() && loop.next_time() <= t) {
    const Time start = loop.next_time();
    const Time cap = std::min(t, start + lookahead_);
    // Control events run inline (they may mutate shard state — table
    // commits, fault transitions — which is safe exactly because no round
    // is in flight). Events at t == cap <= start also run inline rather
    // than opening a zero-width round.
    if (cap <= start || loop.next_dst() == sim::EventLoop::kControlShard) {
      loop.step();
      continue;
    }
    extract_buf_.clear();
    const Time end = loop.extract_until(cap, extract_buf_);
    if (extract_buf_.empty()) {
      loop.step();
      continue;
    }
#if MANTIS_TELEMETRY_ENABLED
    const bool profiling = prof_ != nullptr && prof_->enabled();
    if (profiling) {
      prof_->count_local_push(
          static_cast<std::uint64_t>(extract_buf_.size()));
    }
#endif
    for (auto& ev : extract_buf_) {
      groups_[static_cast<std::size_t>(
                  group_of_[static_cast<std::size_t>(ev.dst)])]
          ->local.push(std::move(ev));
    }
    extract_buf_.clear();

    // Publish the round: group heaps and round_end_ are written before the
    // release store on round_seq_, acquired by each worker's spin/wait.
    round_end_ = end;
    done_.store(0, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++round_guard_;
      round_seq_.store(round_guard_, std::memory_order_release);
    }
    cv_.notify_all();
    // The calling thread takes worker slot 0.
    run_group_range(0, end);
#if MANTIS_TELEMETRY_ENABLED
    const std::int64_t stall_t0 =
        profiling ? telemetry::prof::Profiler::wall_now_ns() : 0;
#endif
    while (done_.load(std::memory_order_acquire) < threads_ - 1) {
      std::this_thread::yield();
    }
    ++rounds_;
#if MANTIS_TELEMETRY_ENABLED
    if (profiling) {
      const std::int64_t stall =
          telemetry::prof::Profiler::wall_now_ns() - stall_t0;
      // Round load shape: busiest group vs mean (imbalance), groups with no
      // work at all (lookahead-limited idle windows).
      std::uint64_t total = 0, max_events = 0;
      std::size_t idle = 0;
      for (auto& group : groups_) {
        const std::uint64_t e = group->executed_round;
        total += e;
        if (e > max_events) max_events = e;
        if (e == 0) ++idle;
      }
      prof_->note_round(max_events, total, idle,
                        stall > 0 ? static_cast<std::uint64_t>(stall) : 0);
      // Bounded counter-track samples for the Chrome export, every 256
      // rounds so sampling never shows up in the profile itself.
      if ((rounds_ & 0xFFu) == 0) prof_->sample(end);
    }
    for (auto& group : groups_) group->executed_round = 0;
#else
    for (auto& group : groups_) group->executed_round = 0;
#endif

    // Barrier: outbox reinsertion (keys pre-assigned, insertion order
    // irrelevant) and canonical-order telemetry replay.
    for (auto& group : groups_) {
      for (auto& ev : group->outbox) loop.reinsert(std::move(ev));
      group->outbox.clear();
    }
    telemetry::ShardLane::merge_apply(lanes_);
  }
  loop.run_until(t);
}

}  // namespace mantis::net
