#include "agent/cost_equation.hpp"

#include "util/bits.hpp"

namespace mantis::agent {

CostBreakdown predict_iteration(const driver::CostModel& costs,
                                const compile::ReactionInfo& rinfo,
                                Duration reaction_compute,
                                std::size_t table_entry_mods,
                                std::size_t n_init_tables,
                                std::size_t dirty_init_overflow) {
  CostBreakdown out;

  // F10b(1 tblMod): the mv flip is one master (default-entry) update.
  out.mv_flip = costs.set_default();

  // sum over args of F10a: one scattered-word read covering the packed field
  // registers, plus a pair of range DMAs per register parameter.
  if (!rinfo.measure_regs.empty()) {
    out.measurement += costs.packed_words_read(rinfo.measure_regs.size());
  }
  for (const auto& reg : rinfo.regs) {
    const std::size_t cells = 2 * (reg.hi - reg.lo + 1);
    const std::size_t bytes = cells * 4;  // duplicated registers are polled
    out.measurement += costs.range_read(bytes);      // values
    out.measurement += costs.range_read(cells * 4);  // timestamps
  }

  out.reaction_compute = reaction_compute;

  // sum over tblMods of 2*F10b(t): prepare + mirror batches.
  if (table_entry_mods > 0) {
    const Duration batch =
        costs.batch_overhead + costs.pcie_rtt +
        static_cast<Duration>(table_entry_mods) *
            (costs.table_mod(true) - costs.pcie_rtt);
    out.prepare_and_mirror = 2 * batch;
  }

  // 2*F10b(N_init - 1): overflow init tables touched in prepare and mirror.
  if (dirty_init_overflow > 0 && n_init_tables > 1) {
    const Duration batch =
        costs.batch_overhead + costs.pcie_rtt +
        static_cast<Duration>(dirty_init_overflow) *
            (costs.table_mod(true) - costs.pcie_rtt);
    out.init_overflow = 2 * batch;
  }

  // F10b(1 tblMod): the vv commit on the master.
  out.commit = costs.set_default();
  return out;
}

}  // namespace mantis::agent
