// AIMD fluid TCP flow model (substitute for the 250 real TCP flows of paper
// Fig 15 and the DCTCP senders of §8.3.4).
//
// Each flow emits fixed-size packets at its current rate (Poisson gaps) into
// the switch, observes deliveries via the transmit hook, and every RTT:
//   * additive-increases its rate when everything it sent arrived unmarked,
//   * halves on loss (or, in DCTCP mode, reduces proportionally to the ECN
//     mark fraction).
#pragma once

#include <cstdint>

#include "sim/switch.hpp"
#include "util/rng.hpp"

namespace mantis::workload {

struct FluidTcpConfig {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  int in_port = 0;
  double init_rate_gbps = 0.01;
  double min_rate_gbps = 0.01;
  double max_rate_gbps = 25.0;
  double additive_gbps = 0.008;      ///< per-RTT additive increase
  Duration rtt = 40 * kMicrosecond;  ///< control-loop interval
  std::uint32_t pkt_bytes = 1500;
  bool dctcp = false;                ///< react to ECN marks instead of loss
  std::uint64_t seed = 11;
};

class FluidTcpFlow {
 public:
  FluidTcpFlow(sim::Switch& sw, FluidTcpConfig cfg);

  void start(Time until);
  void stop() { stopped_ = true; }

  /// Must be called (by the experiment harness) for every packet the switch
  /// transmits, so flows can attribute deliveries/marks to themselves.
  void on_transmit(const sim::Packet& pkt);

  double rate_gbps() const { return rate_gbps_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint32_t src_ip() const { return cfg_.src_ip; }

 private:
  sim::Switch* sw_;
  FluidTcpConfig cfg_;
  Rng rng_;
  bool stopped_ = false;
  double rate_gbps_;

  // Cumulative counters; loss is judged one RTT behind so in-flight packets
  // are not mistaken for drops.
  std::uint64_t sent_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t marked_total_ = 0;
  std::uint64_t sent_asof_prev_adjust_ = 0;
  std::uint64_t sent_asof_prev2_adjust_ = 0;
  std::uint64_t delivered_asof_prev_adjust_ = 0;
  std::uint64_t marked_asof_prev_adjust_ = 0;
  std::uint64_t delivered_bytes_ = 0;

  p4::FieldId f_src_ = p4::kInvalidField;
  p4::FieldId f_dst_ = p4::kInvalidField;
  p4::FieldId f_ecn_ = p4::kInvalidField;

  void emit(Time until);
  void adjust(Time until);
  Duration gap() const;
};

}  // namespace mantis::workload
