// Odds and ends: counter reads through the driver, hot-swap with user-init
// re-execution, emitted mask qualifiers, transmission timing at different
// port speeds.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "p4/emit.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

TEST(Counters, CountPrimitiveAndDriverRead) {
  Stack stack(R"P4R(
header_type h_t { fields { a : 8; } }
header h_t h;
counter per_class { type : packets; instance_count : 4; }
action tally() { count(per_class, h.a); }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table tc { actions { tally; } default_action : tally; size : 1; }
table o { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(tc); apply(o); }
control egress { }
)P4R");
  for (const std::uint64_t cls : {1u, 1u, 3u, 1u}) {
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "h.a", cls);
    stack.sw->inject(std::move(pkt), 0);
  }
  stack.loop.run();
  EXPECT_EQ(stack.drv->read_counter("per_class", 1), 3u);
  EXPECT_EQ(stack.drv->read_counter("per_class", 3), 1u);
  EXPECT_EQ(stack.drv->read_counter("per_class", 0), 0u);
  EXPECT_THROW(stack.drv->read_counter("ghost", 0), UserError);
}

TEST(HotSwap, RerunUserInitReinstallsState) {
  Stack stack(figure1_style_source());
  int init_runs = 0;
  stack.agent->run_prologue([&](agent::ReactionContext& ctx) {
    ++init_runs;
    // Idempotent init: (re)install a known entry if absent.
    std::vector<p4::MatchValue> key{{static_cast<std::uint64_t>(init_runs), kFull}};
    p4::EntrySpec spec;
    spec.key = key;
    spec.action = "my_action";
    if (!ctx.find_entry("table_var", key).has_value()) {
      ctx.add_entry("table_var", spec);
    }
  });
  EXPECT_EQ(init_runs, 1);
  // Swap in a native reaction and request re-initialization, as the paper's
  // dlopen reload flow allows.
  stack.agent->set_native_reaction("my_reaction", [](agent::ReactionContext&) {});
  stack.agent->rerun_user_init();
  EXPECT_EQ(init_runs, 2);
  auto ctx = stack.agent->management_context();
  EXPECT_EQ(ctx.entry_count("table_var"), 2u);
}

TEST(EmitMask, PreCompileDumpShowsQualifier) {
  const auto analyzed = p4r::frontend(R"P4R(
header_type h_t { fields { a : 32; b : 32; } }
header h_t h;
malleable field m { width : 32; init : h.a; alts { h.a, h.b } }
action x() { }
table t { reads { ${m} mask 255 : exact; } actions { x; } size : 4; }
control ingress { apply(t); }
control egress { }
)P4R");
  const auto text = p4::emit_table(analyzed.prog, *analyzed.prog.find_table("t"));
  EXPECT_NE(text.find("${m} mask 255 : exact;"), std::string::npos);
}

TEST(PortSpeeds, TransmissionScalesWithConfiguredRate) {
  for (const double gbps : {1.0, 10.0, 100.0}) {
    sim::SwitchConfig cfg;
    cfg.port_gbps = gbps;
    Stack stack(R"P4R(
header_type h_t { fields { a : 8; } }
header h_t h;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
table o { actions { fwd; } default_action : fwd(1); size : 1; }
control ingress { apply(o); }
control egress { }
)P4R",
                cfg);
    Time tx = -1;
    stack.sw->set_on_transmit([&](const sim::Packet&, int, Time t) { tx = t; });
    stack.sw->inject(stack.sw->factory().make(1250), 0);
    stack.loop.run();
    const auto serialization = static_cast<Duration>(1250 * 8 / gbps);
    EXPECT_EQ(tx, 400 + serialization + 300) << gbps << " Gbps";
  }
}

}  // namespace
}  // namespace mantis::test
