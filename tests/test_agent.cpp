// Agent tests: entry expansion, dialogue mechanics (mv/vv flips), scalar
// commits, three-phase updates, hot swap, register cache.
#include <gtest/gtest.h>

#include <set>

#include "agent/cost_equation.hpp"
#include "agent/handles.hpp"
#include "helpers.hpp"

namespace mantis::test {
namespace {

constexpr std::uint64_t kFull = ~std::uint64_t{0};

// ---------------------------------------------------------------------------
// expand_user_entry
// ---------------------------------------------------------------------------

struct ExpandFixture {
  compile::TableInfo info;
  agent::AltCounts alts;

  ExpandFixture() {
    // A table with reads {h.x exact, ${f} exact} + selector(f) + selector(g)
    // + vv, where action "w" is specialized over g and "plain" is not.
    info.name = "t";
    info.malleable = true;
    info.original_read_count = 2;
    info.col_of_original = {0, -1};
    compile::MblReadInfo mri;
    mri.mbl = "f";
    mri.original_index = 1;
    mri.alt_cols = {1, 2};
    mri.selector_col = 3;
    info.mbl_reads.push_back(mri);
    info.selector_cols = {{"f", 3}, {"g", 4}};
    info.vv_col = 5;
    info.total_cols = 6;

    compile::ActionInfo plain;
    plain.original = "plain";
    plain.specialized = {"plain"};
    info.actions.push_back(plain);

    compile::ActionInfo w;
    w.original = "w";
    w.dims = {"g"};
    w.dim_alts = {3};
    w.specialized = {"w__0_", "w__1_", "w__2_"};
    info.actions.push_back(w);

    info.expansion_product = 6;
    alts = {{"f", 2}, {"g", 3}};
  }
};

TEST(ExpandUserEntry, MatchOnlyExpansion) {
  ExpandFixture fx;
  p4::EntrySpec user;
  user.key = {{10, kFull}, {99, kFull}};
  user.action = "plain";
  user.priority = 4;
  const auto specs = agent::expand_user_entry(fx.info, fx.alts, user, 1);
  ASSERT_EQ(specs.size(), 2u);  // one per alternative of f
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& s = specs[i];
    EXPECT_EQ(s.action, "plain");
    EXPECT_EQ(s.priority, 4);
    EXPECT_EQ(s.key.size(), 6u);
    EXPECT_EQ(s.key[0].value, 10u);             // plain column
    EXPECT_EQ(s.key[1 + i].value, 99u);         // chosen alt carries the key
    EXPECT_EQ(s.key[2 - i].mask, 0u);           // other alt wildcarded
    EXPECT_EQ(s.key[3].value, i);               // f selector
    EXPECT_EQ(s.key[4].mask, 0u);               // g selector wildcarded
    EXPECT_EQ(s.key[5].value, 1u);              // vv
    EXPECT_NE(s.key[5].mask, 0u);
  }
}

TEST(ExpandUserEntry, SharedMatchAndActionDims) {
  ExpandFixture fx;
  p4::EntrySpec user;
  user.key = {{10, kFull}, {99, kFull}};
  user.action = "w";
  user.action_args = {7};
  const auto specs = agent::expand_user_entry(fx.info, fx.alts, user, 0);
  // f (match) x g (action) = 2 * 3 combos.
  ASSERT_EQ(specs.size(), 6u);
  std::set<std::string> actions;
  for (const auto& s : specs) {
    actions.insert(s.action);
    EXPECT_EQ(s.action_args, (std::vector<std::uint64_t>{7}));
    EXPECT_NE(s.key[4].mask, 0u);  // g selector concrete for a g-using action
  }
  EXPECT_EQ(actions, (std::set<std::string>{"w__0_", "w__1_", "w__2_"}));
}

TEST(ExpandUserEntry, Validation) {
  ExpandFixture fx;
  p4::EntrySpec user;
  user.key = {{10, kFull}};
  user.action = "plain";
  EXPECT_THROW(agent::expand_user_entry(fx.info, fx.alts, user, 0),
               PreconditionError);  // key arity
  user.key = {{10, kFull}, {99, kFull}};
  user.action = "ghost";
  EXPECT_THROW(agent::expand_user_entry(fx.info, fx.alts, user, 0), UserError);
}

// ---------------------------------------------------------------------------
// Dialogue mechanics
// ---------------------------------------------------------------------------

TEST(AgentTest, VersionBitsFlipPerIteration) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  EXPECT_EQ(stack.agent->vv(), 0);
  EXPECT_EQ(stack.agent->mv(), 0);
  stack.agent->dialogue_iteration();
  EXPECT_EQ(stack.agent->vv(), 1);
  EXPECT_EQ(stack.agent->mv(), 1);
  stack.agent->dialogue_iteration();
  EXPECT_EQ(stack.agent->vv(), 0);
  EXPECT_EQ(stack.agent->mv(), 0);
  EXPECT_EQ(stack.agent->iterations(), 2u);
  // The data plane's master init entry tracks the committed bits.
  const auto& master = stack.sw->table("p4r_init_");
  auto probe = stack.sw->factory().make();
  auto r = master.lookup(probe);
  const auto& bind = stack.artifacts.bindings;
  EXPECT_EQ((*r.args)[bind.vv_param], 0u);
  EXPECT_EQ((*r.args)[bind.mv_param], 0u);
}

TEST(AgentTest, CleanIterationSkipsCommitWhenConfigured) {
  agent::AgentOptions opts;
  opts.commit_every_iteration = false;
  Stack stack(figure1_style_source(), {}, opts);
  stack.agent->run_prologue();
  stack.agent->dialogue_iteration();
  // The reaction wrote ${value_var} = 0 (no register data), which differs
  // from init 1 -> dirty -> still commits. Reset to the same value and the
  // next iteration is clean: vv must NOT flip.
  const int vv_after = stack.agent->vv();
  stack.agent->dialogue_iteration();
  EXPECT_EQ(stack.agent->vv(), vv_after);
}

TEST(AgentTest, ScalarSetOutsideReactionCommitsImmediately) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->set_scalar("value_var", 9);
  EXPECT_EQ(stack.agent->scalar("value_var"), 9u);
  const auto& master = stack.sw->table("p4r_init_");
  auto probe = stack.sw->factory().make();
  const auto& bind = stack.artifacts.bindings;
  const auto slot = bind.scalars.at("value_var");
  EXPECT_EQ((*master.lookup(probe).args)[slot.param], 9u);
}

TEST(AgentTest, ScalarValidation) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  EXPECT_THROW(stack.agent->set_scalar("ghost", 1), UserError);
  EXPECT_THROW(stack.agent->set_scalar("value_var", 1 << 16), UserError);
  // field_var selector has 2 alts; index 2 is invalid.
  EXPECT_THROW(stack.agent->set_scalar("field_var", 2), UserError);
  EXPECT_NO_THROW(stack.agent->set_scalar("field_var", 1));
}

TEST(AgentTest, ShiftFieldChangesMatchedAlternative) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();
  // Entry matching ${field_var} == 5 with my_action.
  p4::EntrySpec spec;
  spec.key = {{5, kFull}};
  spec.action = "my_action";
  ctx.add_entry("table_var", spec);

  auto send = [&](std::uint64_t foo, std::uint64_t bar) {
    auto pkt = stack.sw->factory().make();
    stack.sw->factory().set(pkt, "hdr.foo", foo);
    stack.sw->factory().set(pkt, "hdr.bar", bar);
    stack.sw->factory().set(pkt, "hdr.baz", 0);
    std::uint64_t baz_out = kFull;
    stack.sw->set_on_transmit([&](const sim::Packet& out, int, Time) {
      baz_out = stack.sw->factory().get(out, "hdr.baz");
    });
    stack.sw->inject(std::move(pkt), 0);
    stack.loop.run();
    return baz_out;
  };

  // init: field_var -> hdr.foo. foo==5 matches (baz += value_var == 1).
  EXPECT_EQ(send(5, 0), 1u);
  EXPECT_EQ(send(0, 5), 0u);  // bar==5 does not match yet

  stack.agent->set_scalar("field_var", 1);  // shift to hdr.bar
  EXPECT_EQ(send(0, 5), 1u);
  EXPECT_EQ(send(5, 0), 0u);
}

TEST(AgentTest, HotSwapBetweenNativeAndInterpreted) {
  Stack stack(figure1_style_source());
  int native_calls = 0;
  stack.agent->run_prologue();
  stack.agent->dialogue_iteration();  // interpreted
  stack.agent->set_native_reaction("my_reaction",
                                   [&](agent::ReactionContext&) { ++native_calls; });
  stack.agent->dialogue_iteration();
  EXPECT_EQ(native_calls, 1);
  stack.agent->swap_to_interpreted("my_reaction", /*reinit_statics=*/true);
  stack.agent->dialogue_iteration();
  EXPECT_EQ(native_calls, 1);
  EXPECT_THROW(stack.agent->set_native_reaction("nope", [](auto&) {}), UserError);
}

TEST(AgentTest, IterationLatencyInTensOfMicroseconds) {
  // The headline claim: dialogue iterations at 10s-of-us granularity.
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  stack.agent->run_dialogue(50);
  const auto& lat = stack.agent->iteration_latencies();
  EXPECT_LT(lat.median(), 100.0 * kMicrosecond);
  EXPECT_GT(lat.median(), 1.0 * kMicrosecond);
}

TEST(AgentTest, PacingSleepTradesLatencyForUtilization) {
  agent::AgentOptions busy_opts;
  Stack busy(figure1_style_source(), {}, busy_opts);
  busy.agent->run_prologue();
  const Time t0 = busy.loop.now();
  busy.agent->run_dialogue(20);
  const double busy_util = static_cast<double>(busy.agent->busy_time()) /
                           static_cast<double>(busy.loop.now() - t0);
  EXPECT_GT(busy_util, 0.95);

  agent::AgentOptions paced_opts;
  paced_opts.pacing_sleep = 100 * kMicrosecond;
  Stack paced(figure1_style_source(), {}, paced_opts);
  paced.agent->run_prologue();
  const Time t1 = paced.loop.now();
  paced.agent->run_dialogue(20);
  const double paced_util = static_cast<double>(paced.agent->busy_time()) /
                            static_cast<double>(paced.loop.now() - t1);
  EXPECT_LT(paced_util, 0.4);
}

TEST(AgentTest, CostEquationPredictsIterationLatency) {
  Stack stack(figure1_style_source());
  stack.agent->set_native_reaction("my_reaction", [](agent::ReactionContext&) {},
                                   /*cost=*/1000);
  stack.agent->run_prologue();
  stack.agent->run_dialogue(10);
  const auto measured = stack.agent->iteration_latencies().median();

  const auto* rinfo = stack.artifacts.bindings.find_reaction("my_reaction");
  ASSERT_NE(rinfo, nullptr);
  const auto predicted = agent::predict_iteration(
      stack.drv->costs(), *rinfo, /*reaction_compute=*/1000,
      /*table_entry_mods=*/0,
      stack.artifacts.bindings.init_tables.size());
  EXPECT_NEAR(measured, static_cast<double>(predicted.total()),
              0.25 * measured);
}

TEST(AgentTest, ManagementTableOpsOnMalleableTableImmediate) {
  Stack stack(figure1_style_source());
  stack.agent->run_prologue();
  auto ctx = stack.agent->management_context();
  p4::EntrySpec spec;
  spec.key = {{7, kFull}};
  spec.action = "my_action";
  const auto id = ctx.add_entry("table_var", spec);
  // Both vv copies are installed (2 alts x 2 vv = 4 concrete entries).
  EXPECT_EQ(stack.sw->table("table_var").entry_count(), 4u);
  ctx.mod_entry("table_var", id, "_drop", {});
  ctx.del_entry("table_var", id);
  EXPECT_EQ(stack.sw->table("table_var").entry_count(), 0u);
  EXPECT_EQ(ctx.entry_count("table_var"), 0u);
}

}  // namespace
}  // namespace mantis::test
