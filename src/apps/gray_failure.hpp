// Use case #2 (paper §8.3.2): gray-failure detection + route recomputation.
//
// Neighbours emit heartbeats every T_s; the data plane counts them per port.
// The reaction polls the counts and the data-plane timestamp, compares each
// port's delta against delta_threshold = floor(eta * T_d / T_s), and after
// two consecutive violations marks the link down, recomputes shortest paths
// over the modeled topology, and rewrites the malleable route table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace mantis::apps {

std::string gray_failure_p4r_source();

/// A small network around the monitored switch (node 0). Used for genuine
/// route recomputation (Dijkstra), not just static backup flipping.
struct Topology {
  struct Link {
    int a = 0;
    int b = 0;
    int port_a = 0;  ///< egress port on `a` toward `b`
    int port_b = 0;
    double cost = 1.0;
  };
  int num_nodes = 0;
  std::vector<Link> links;
  std::map<std::uint32_t, int> dst_node;  ///< destination address -> node

  /// First-hop port (from node 0) per destination, avoiding down ports of
  /// node 0. Unreachable destinations map to -1.
  std::map<std::uint32_t, int> compute_routes(
      const std::vector<bool>& port_down) const;

  /// A two-tier test topology: `fanout` neighbours each reaching every
  /// destination, destinations multi-homed so any single port failure is
  /// survivable.
  static Topology fat_tree_slice(int fanout, int num_dsts);
};

struct GrayFailureConfig {
  int num_ports = 8;                  ///< monitored heartbeat ports
  Duration ts = 1 * kMicrosecond;     ///< heartbeat period T_s
  double eta = 0.5;                   ///< delivery expectation
  int consecutive_required = 2;       ///< violations before declaring failure
};

struct GrayFailureState {
  GrayFailureConfig cfg;
  Topology topo;

  std::vector<std::uint64_t> last_counts;
  std::uint64_t last_ts_us = 0;
  std::vector<int> below_streak;
  std::vector<bool> port_down;
  std::map<std::uint32_t, agent::UserEntryId> route_ids;
  std::map<std::uint32_t, int> current_port;

  std::function<void(int, Time)> on_detect;    ///< port declared down
  std::function<void(Time)> on_routes_installed;

  /// Prologue helper: installs initial routes and remembers entry ids.
  void install_initial_routes(agent::ReactionContext& ctx);
};

agent::Agent::NativeFn make_gray_failure_reaction(
    std::shared_ptr<GrayFailureState> state);

}  // namespace mantis::apps
