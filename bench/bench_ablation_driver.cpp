// Ablation: the driver optimizations the paper calls out in §6-§7 —
// prologue memoization of device instructions and request batching — plus
// the batched async runtime (src/driver/async) swept over batch size x
// pipeline depth, including the enable_batching=false degrade path (the
// async runtime falls back to one transfer per op).
// Measures the dialogue iteration latency of a reaction that updates table
// entries, with each optimization disabled in turn.
#include "bench_util.hpp"

namespace {

using namespace mantis;

const char* kSrc = R"P4R(
header_type h_t { fields { k : 32; } }
header h_t h;
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
malleable table mt { reads { h.k : exact; } actions { fwd; } size : 128; }
control ingress { apply(mt); }
control egress { }
reaction rx(ing h.k) { }
)P4R";

double iteration_latency_us(bool memoization, bool batching, int mods,
                            bool async_push = false,
                            std::size_t pipeline_depth = 2) {
  driver::DriverOptions dopts;
  dopts.enable_memoization = memoization;
  dopts.enable_batching = batching;
  agent::AgentOptions aopts;
  aopts.async_push = async_push;
  aopts.async_pipeline_depth = pipeline_depth;
  bench::Stack stack(kSrc, {}, aopts, dopts);

  std::vector<agent::UserEntryId> ids;
  stack.agent->run_prologue([&](agent::ReactionContext& ctx) {
    for (int i = 0; i < mods; ++i) {
      p4::EntrySpec spec;
      spec.key = {{static_cast<std::uint64_t>(i), ~std::uint64_t{0}}};
      spec.action = "fwd";
      spec.action_args = {1};
      ids.push_back(ctx.add_entry("mt", spec));
    }
  });
  std::uint64_t round = 0;
  stack.agent->set_native_reaction("rx", [&](agent::ReactionContext& ctx) {
    ++round;
    for (const auto id : ids) {
      ctx.mod_entry("mt", id, "fwd", {1 + (round % 4)});
    }
  });
  stack.agent->run_dialogue(20);
  stack.agent->drain_pending_pushes();  // no-op in sync mode
  // Skip the first (cold) iterations when judging the steady state.
  Samples steady;
  const auto& all = stack.agent->iteration_latencies().values();
  for (std::size_t i = 5; i < all.size(); ++i) steady.add(all[i]);
  return steady.median() / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report("ablation_driver", argc, argv);
  bench::print_header(
      "Ablation: driver memoization + batching (steady-state dialogue "
      "latency, reaction modifies N user entries/iteration)");
  bench::print_row({"N_mods", "full_us", "no_memo_us", "no_batch_us",
                    "neither_us"});
  for (const int mods : {1, 4, 16}) {
    const double full = iteration_latency_us(true, true, mods);
    const double no_memo = iteration_latency_us(false, true, mods);
    const double no_batch = iteration_latency_us(true, false, mods);
    const double neither = iteration_latency_us(false, false, mods);
    bench::print_row({std::to_string(mods), bench::fmt(full, 1),
                      bench::fmt(no_memo, 1), bench::fmt(no_batch, 1),
                      bench::fmt(neither, 1)});
    const std::string key = "mods" + std::to_string(mods);
    report.set(key + ".full_us", full);
    report.set(key + ".no_memo_us", no_memo);
    report.set(key + ".no_batch_us", no_batch);
    report.set(key + ".neither_us", neither);
  }
  std::printf(
      "\nMemoization removes the cold driver-instruction cost from every\n"
      "repeated op; batching amortizes the PCIe round trip across the\n"
      "prepare and mirror groups. Both are load-bearing for the paper's\n"
      "10s-of-us claim once reactions touch more than a couple of entries.\n");

  // Async-runtime sweep: batch size (entries the reaction touches, i.e. ops
  // per prepare/mirror batch) x pipeline depth. The last column degrades the
  // runtime with enable_batching=false — one transfer per op, no coalescing
  // discount — isolating how much of the win is the batch itself.
  bench::print_header(
      "Async push sweep: batch size x pipeline depth (steady-state dialogue "
      "latency, us)");
  bench::print_row({"batch", "sync_us", "k1_us", "k2_us", "k4_us",
                    "k2_degraded_us"});
  for (const int batch : {1, 4, 16, 64}) {
    const double sync_us = iteration_latency_us(true, true, batch);
    const std::string key = "async.batch" + std::to_string(batch);
    report.set(key + ".sync_us", sync_us);
    std::vector<std::string> cells = {std::to_string(batch),
                                      bench::fmt(sync_us, 1)};
    for (const std::size_t depth : {1u, 2u, 4u}) {
      const double v = iteration_latency_us(true, true, batch, true, depth);
      report.set(key + ".k" + std::to_string(depth) + "_us", v);
      cells.push_back(bench::fmt(v, 1));
    }
    const double degraded = iteration_latency_us(true, false, batch, true, 2);
    report.set(key + ".k2_degraded_us", degraded);
    cells.push_back(bench::fmt(degraded, 1));
    bench::print_row(cells);
  }
  std::printf(
      "\nThe async win grows with batch size (the per-op prep/DMA discounts\n"
      "compound) and saturates quickly in depth: the dialogue submits three\n"
      "batches per iteration (prepare, commit, mirror) and blocks on the\n"
      "commit, so depth beyond 2 mostly helps the mirror overlap the next\n"
      "poll. Degraded (batching off) keeps the overlap but pays a full\n"
      "round trip per op.\n");
  report.write();
  return 0;
}
