// The serialized driver channel.
//
// The real switch has one driver/PCIe path; concurrent control-plane clients
// (the Mantis agent, legacy applications) contend for it. We model it as a
// FIFO resource: an operation occupies [start, start+cost) and its effect
// (table/register mutation or read) happens at the completion instant.
// Queueing delay behind the in-flight op is what produces Fig 12's bimodal
// legacy-latency distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/event_loop.hpp"
#include "util/time.hpp"

namespace mantis::driver {

class Channel {
 public:
  explicit Channel(sim::EventLoop& loop);
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Submits an operation of duration `cost`, of which only the trailing
  /// `critical` nanoseconds hold the channel exclusively (the lock + device
  /// kick); the leading remainder is thread-local preparation that runs
  /// concurrently with other clients' ops. `apply` runs at the completion
  /// instant (after any queueing). Returns the completion time.
  /// `critical` defaults to the whole cost (fully exclusive); a provided
  /// value must satisfy 0 <= critical <= cost — a miscomputed critical
  /// fraction fails loudly instead of silently occupying the channel.
  Time submit(Duration cost, std::function<void()> apply,
              std::optional<Duration> critical = std::nullopt);

  /// Like submit, but the operation starts at `t` (>= now): the async
  /// driver runtime reserves the channel for a batch whose descriptor
  /// preparation finishes in the future, so the DMA of batch N can overlap
  /// the preparation of batch N+1. The reservation takes effect immediately
  /// (later submitters queue behind it, exactly like a claimed DMA ring
  /// slot).
  Time submit_at(Time t, Duration cost, std::function<void()> apply,
                 std::optional<Duration> critical = std::nullopt);

  /// Earliest time a newly submitted op could start.
  Time free_at() const;

  /// Total busy time accumulated so far (for utilization accounting).
  Duration busy_time() const { return busy_time_; }

  std::uint64_t ops_submitted() const { return ops_; }

  /// Ops submitted whose completion instant has not yet executed.
  std::uint64_t depth() const { return depth_; }

 private:
  sim::EventLoop* loop_;
  Time free_at_ = 0;
  Duration busy_time_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t depth_ = 0;
  int snapshot_provider_ = 0;

  // Cached telemetry sinks (owned by the loop's registry): channel occupancy
  // and the queueing delay legacy clients experience behind in-flight ops.
  telemetry::Counter* ops_ctr_;
  telemetry::Histogram* occupancy_hist_;
  telemetry::Histogram* queue_wait_hist_;
  telemetry::Histogram* depth_hist_;
  telemetry::Gauge* depth_gauge_;
  telemetry::Tracer* tracer_;
  telemetry::prof::Profiler* prof_;  ///< hot-path cost attribution
};

}  // namespace mantis::driver
