// Shared test scaffolding: builds the full stack (compile -> simulated
// switch -> driver -> agent) from P4R source.
#pragma once

#include <memory>
#include <string>

#include "agent/agent.hpp"
#include "compile/compiler.hpp"
#include "driver/driver.hpp"
#include "sim/switch.hpp"

namespace mantis::test {

struct Stack {
  compile::Artifacts artifacts;
  sim::EventLoop loop;
  std::unique_ptr<sim::Switch> sw;
  std::unique_ptr<driver::Driver> drv;
  std::unique_ptr<agent::Agent> agent;

  Stack(const std::string& p4r_source, sim::SwitchConfig sw_cfg = {},
        agent::AgentOptions agent_opts = {},
        driver::DriverOptions drv_opts = {},
        compile::Options compile_opts = {}) {
    artifacts = compile::compile_source(p4r_source, compile_opts);
    sw = std::make_unique<sim::Switch>(loop, artifacts.prog, sw_cfg);
    drv = std::make_unique<driver::Driver>(*sw, drv_opts);
    agent = std::make_unique<agent::Agent>(*drv, artifacts, agent_opts);
  }
};

/// A minimal malleable-value program in the shape of paper Figure 1.
inline std::string figure1_style_source() {
  return R"P4R(
header_type hdr_t {
  fields {
    foo : 32;
    bar : 32;
    baz : 16;
    qux : 32;
  }
}
header hdr_t hdr;

malleable value value_var { width : 16; init : 1; }
malleable field field_var {
  width : 32;
  init : hdr.foo;
  alts { hdr.foo, hdr.bar }
}

register qdepths_r { width : 32; instance_count : 16; }

action my_action() {
  add(hdr.baz, hdr.baz, ${value_var});
  modify_field(${field_var}, hdr.qux);
}
action set_out(port) {
  modify_field(standard_metadata.egress_spec, port);
}

malleable table table_var {
  reads { ${field_var} : exact; }
  actions { my_action; _drop; }
  size : 64;
}
table forward {
  actions { set_out; }
  default_action : set_out(1);
  size : 1;
}

control ingress {
  apply(table_var);
  apply(forward);
}
control egress { }

reaction my_reaction(reg qdepths_r[1:10]) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 1; i <= 10; ++i) {
    if (qdepths_r[i] > current_max) {
      current_max = qdepths_r[i];
      max_port = i;
    }
  }
  ${value_var} = max_port;
}
)P4R";
}

}  // namespace mantis::test
