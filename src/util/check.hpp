// Lightweight precondition / invariant checking.
//
// Following the Core Guidelines (I.6, E.12), violated expectations throw; the
// library never calls std::abort. All checks stay enabled in release builds:
// the simulator is a correctness tool, not a fast path.
#pragma once

#include <stdexcept>
#include <string>

namespace mantis {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown for errors in user-supplied programs (P4R source, reaction code).
class UserError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Checks a caller-facing precondition.
inline void expects(bool cond, const std::string& msg) {
  if (!cond) throw PreconditionError(msg);
}

/// Checks an internal invariant.
inline void ensures(bool cond, const std::string& msg) {
  if (!cond) throw InvariantError(msg);
}

// Literal-message overloads: the std::string (one heap allocation) is only
// built when the check fails. Checks stay on in release builds, and many sit
// on per-packet paths — the profiler attributed ~40% of hot-path allocations
// to passing string literals through the const std::string& overloads above.
inline void expects(bool cond, const char* msg) {
  if (!cond) [[unlikely]] throw PreconditionError(msg);
}

inline void ensures(bool cond, const char* msg) {
  if (!cond) [[unlikely]] throw InvariantError(msg);
}

}  // namespace mantis
